/// \file staged_arrivals.cpp
/// \brief The paper's Sec. IX injection program, executed: messages are NOT
///        all present at time 0 — they are released over time by the staged
///        injection method, and still every message is injected within its
///        bound and evacuates.
///
/// Usage: staged_arrivals [width] [height] [waves] [trace.csv]
///
/// "We are working on the proof that all messages are eventually injected.
/// This proof entails a generic bound on the injection time of each
/// message … Deadlock-freedom is necessary, since otherwise there is no
/// guarantee that an unavailable injection buffer eventually becomes
/// available."
#include <cstdlib>
#include <iostream>

#include "core/hermes.hpp"
#include "core/injection_time.hpp"
#include "core/theorems.hpp"
#include "sim/trace.hpp"
#include "workload/traffic.hpp"

int main(int argc, char** argv) {
  const std::int32_t width = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::int32_t height = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::size_t waves =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 4;

  const genoc::HermesInstance hermes(width, height, 2);
  genoc::Config config(hermes.mesh(), 2);

  // Release one wave of traffic every 6 steps.
  genoc::Rng rng(2010);
  genoc::TravelId id = 1;
  std::size_t staged_count = 0;
  for (std::size_t wave = 0; wave < waves; ++wave) {
    const auto pairs =
        genoc::uniform_random_traffic(hermes.mesh(), 8, rng);
    for (const genoc::TrafficPair& pair : pairs) {
      const genoc::Travel travel = genoc::make_travel(
          id++, hermes.routing(), pair.source, pair.dest, 4);
      if (wave == 0) {
        config.add_travel(travel);
      } else {
        config.add_staged_travel(travel, wave * 6);
        ++staged_count;
      }
    }
  }
  std::cout << "Releasing " << (id - 1) << " messages in " << waves
            << " waves (" << staged_count << " staged) on a " << width << "x"
            << height << " HERMES mesh\n\n";

  // Staged injection replaces Iid; everything else is the HERMES instance.
  const genoc::StagedInjection staged;
  const genoc::GenocInterpreter interpreter(staged, hermes.switching(),
                                            hermes.measure());
  genoc::TraceRecorder recorder(hermes.measure());
  genoc::GenocOptions options;
  options.max_steps = 100000;  // staged release may idle between waves
  options.observer = recorder.observer();
  const genoc::GenocRunResult run = interpreter.run(config, options);

  std::cout << "steps: " << run.steps << ", "
            << (run.evacuated ? "evacuated" : "NOT evacuated") << ", "
            << run.measure_violations << " (C-5) violations in injected "
            << "phases\n";

  const genoc::TheoremReport evac = genoc::check_evacuation(config, run);
  const genoc::InjectionBoundReport bound =
      genoc::check_injection_bound(config, run);
  std::cout << evac.summary() << "\n" << bound.summary() << "\n";

  // Entry timeline: how late did each wave actually enter?
  std::size_t wave_max[16] = {};
  for (const genoc::Arrival& e : config.entered()) {
    const std::size_t wave = (e.id - 1) / 8;
    if (wave < 16) {
      wave_max[wave] = std::max(wave_max[wave], e.step);
    }
  }
  std::cout << "\nLast entry per wave:";
  for (std::size_t wave = 0; wave < waves; ++wave) {
    std::cout << " w" << wave << "=" << wave_max[wave];
  }
  std::cout << "\n";

  if (argc > 4) {
    recorder.write_csv(argv[4]);
    std::cout << "\nPer-step trace written to " << argv[4] << "\n";
  }
  return run.evacuated && evac.holds && bound.all_within_generic_bound ? 0
                                                                       : 1;
}
