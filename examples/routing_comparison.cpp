/// \file routing_comparison.cpp
/// \brief The Sec. IX extension in action: run the whole routing-function
///        family — deterministic, turn-model adaptive, and the deadlock-
///        prone baseline — through the static checkers and the simulator.
///
/// Ported to the instance layer: the family comes from known_routings()
/// and each row is a NetworkInstance built from a spec, so this example
/// stays in sync with whatever the registry's spec grammar can express.
///
/// Usage: routing_comparison [width] [height] [messages]
#include <cstdlib>
#include <iostream>
#include <string>

#include "instance/network_instance.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const int width = argc > 1 ? std::atoi(argv[1]) : 4;
  const int height = argc > 2 ? std::atoi(argv[2]) : 4;
  const unsigned messages =
      argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 48;

  genoc::Table table({"Routing", "Kind", "Dep edges", "(C-3)", "Verdict",
                      "Evacuated", "Steps", "Mean latency"});

  for (const std::string& routing_name : genoc::known_routings()) {
    // The concentrated-mesh and dragonfly functions route their own
    // topologies, not the grid this comparison sweeps.
    if (routing_name == "cmesh_dor" || routing_name == "dragonfly_min") {
      continue;
    }
    genoc::InstanceSpec spec;
    // torus_xy is the one family member that needs wrap links.
    spec.topology = routing_name == "torus_xy" ? "torus" : "mesh";
    spec.width = width;
    spec.height = height;
    spec.routing = routing_name;
    spec.messages = messages;
    const genoc::NetworkInstance network(spec);
    const genoc::InstanceVerdict verdict = network.verify();

    std::string evacuated = "unsafe";
    std::string steps = "-";
    std::string latency = "-";
    if (verdict.dep_acyclic) {
      const genoc::SimulationReport report =
          network.simulate(network.make_traffic());
      evacuated = report.run.evacuated ? "yes" : "NO";
      steps = std::to_string(report.run.steps);
      latency = genoc::format_double(report.latency.mean, 1);
    }

    table.add_row({network.routing().name(),
                   verdict.deterministic ? "deterministic" : "adaptive",
                   std::to_string(verdict.edges),
                   verdict.dep_acyclic ? "acyclic" : "CYCLE",
                   verdict.dep_acyclic ? "deadlock-free" : "deadlock-PRONE",
                   evacuated, steps, latency});
  }

  std::cout << "Routing-function family on a " << width << "x" << height
            << " mesh (torus for torus_xy), " << messages
            << " uniform-random messages:\n\n"
            << table.render() << "\n";
  std::cout << "Deterministic and turn-model functions discharge (C-3); the "
               "wrapped dimension-order and unrestricted baselines do not "
               "and are excluded from simulation (Theorem 1 guarantees a "
               "reachable deadlock there).\n";
  return 0;
}
