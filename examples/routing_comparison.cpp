/// \file routing_comparison.cpp
/// \brief The Sec. IX extension in action: run the whole routing-function
///        family — deterministic, turn-model adaptive, and the deadlock-
///        prone baseline — through the static checkers and the simulator.
///
/// Usage: routing_comparison [width] [height] [messages]
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "deadlock/constraints.hpp"
#include "deadlock/flows.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/negative_first.hpp"
#include "routing/north_last.hpp"
#include "routing/odd_even.hpp"
#include "routing/west_first.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

int main(int argc, char** argv) {
  const std::int32_t width = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::int32_t height = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::size_t messages =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 48;

  const genoc::Mesh2D mesh(width, height);
  std::vector<std::unique_ptr<genoc::RoutingFunction>> family;
  family.push_back(std::make_unique<genoc::XYRouting>(mesh));
  family.push_back(std::make_unique<genoc::YXRouting>(mesh));
  family.push_back(std::make_unique<genoc::WestFirstRouting>(mesh));
  family.push_back(std::make_unique<genoc::NorthLastRouting>(mesh));
  family.push_back(std::make_unique<genoc::NegativeFirstRouting>(mesh));
  family.push_back(std::make_unique<genoc::OddEvenRouting>(mesh));
  family.push_back(std::make_unique<genoc::FullyAdaptiveRouting>(mesh));

  genoc::Table table({"Routing", "Kind", "Dep edges", "(C-3)", "Verdict",
                      "Evacuated", "Steps", "Mean latency"});

  for (const auto& routing : family) {
    const genoc::PortDepGraph dep = genoc::build_dep_graph(*routing);
    const genoc::ConstraintReport c3 = genoc::check_c3(dep);

    std::string evacuated = "-";
    std::string steps = "-";
    std::string latency = "-";
    if (c3.satisfied) {
      genoc::Rng rng(2010);
      const auto pairs =
          genoc::uniform_random_traffic(mesh, messages, rng);
      genoc::SimulationOptions options;
      options.flit_count = 4;
      const genoc::SimulationReport report = genoc::simulate_routing(
          mesh, *routing, pairs, /*buffers_per_port=*/2, rng, options);
      evacuated = report.run.evacuated ? "yes" : "NO";
      steps = std::to_string(report.run.steps);
      latency = genoc::format_double(report.latency.mean, 1);
    } else {
      evacuated = "unsafe";
    }

    table.add_row({routing->name(),
                   routing->is_deterministic() ? "deterministic" : "adaptive",
                   std::to_string(dep.graph.edge_count()),
                   c3.satisfied ? "acyclic" : "CYCLE",
                   c3.satisfied ? "deadlock-free" : "deadlock-PRONE",
                   evacuated, steps, latency});
  }

  std::cout << "Routing-function family on a " << width << "x" << height
            << " mesh, " << messages << " uniform-random messages:\n\n"
            << table.render() << "\n";
  std::cout << "Deterministic and turn-model functions discharge (C-3); the "
               "unrestricted baseline does not and is excluded from "
               "simulation (Theorem 1 guarantees a reachable deadlock).\n";
  return 0;
}
