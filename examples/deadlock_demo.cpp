/// \file deadlock_demo.cpp
/// \brief Theorem 1, live: find a cycle in a deadlock-prone routing
///        function's dependency graph, BUILD the deadlock the cycle
///        promises, watch Ω hold in the simulator, then recover the cycle
///        back from the stuck configuration.
///
/// Usage: deadlock_demo [width] [height]
///
/// The positive side (XY is deadlock-free) is covered by verify_hermes;
/// this demo exercises the negative side of the iff: unrestricted minimal
/// adaptive routing has cyclic port dependencies, and every such cycle is
/// realizable as a concrete wormhole deadlock.
#include <cstdlib>
#include <iostream>

#include "deadlock/constraints.hpp"
#include "deadlock/escape.hpp"
#include "deadlock/impact.hpp"
#include "deadlock/scc_checker.hpp"
#include "deadlock/witness.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/xy.hpp"
#include "sim/render.hpp"
#include "switching/wormhole.hpp"

int main(int argc, char** argv) {
  const std::int32_t width = argc > 1 ? std::atoi(argv[1]) : 3;
  const std::int32_t height = argc > 2 ? std::atoi(argv[2]) : 3;

  const genoc::Mesh2D mesh(width, height);
  const genoc::FullyAdaptiveRouting adaptive(mesh);
  std::cout << "Routing function: " << adaptive.name() << " on a " << width
            << "x" << height << " mesh\n\n";

  // 1. Static analysis: the dependency graph has cycles ((C-3) fails).
  const genoc::PortDepGraph dep = genoc::build_dep_graph(adaptive);
  std::optional<genoc::CycleWitness> cycle;
  const genoc::ConstraintReport c3 = genoc::check_c3(dep, &cycle);
  std::cout << "(C-3): " << c3.summary() << "\n";
  const genoc::SccAnalysis scc = genoc::analyze_dependencies(dep, 4);
  std::cout << "SCC analysis (Taktak-style): " << scc.summary() << "\n\n";
  if (!cycle) {
    std::cout << "No cycle found — nothing to demonstrate.\n";
    return 1;
  }

  std::cout << "Witness cycle (" << cycle->size() << " ports):\n";
  for (const std::size_t v : *cycle) {
    std::cout << "  " << dep.label(v) << "\n";
  }

  // 2. Sufficiency: fill the cycle ports per the (C-2) witnesses.
  genoc::DeadlockConstruction witness =
      genoc::build_deadlock_from_cycle(adaptive, dep, *cycle, /*capacity=*/2);
  std::cout << "\nConstructed " << witness.packets.size()
            << " packets, one filling each cycle port:\n";
  for (std::size_t i = 0; i < witness.packets.size(); ++i) {
    const genoc::PacketSpec& p = witness.packets[i];
    std::cout << "  packet " << p.id << " at " << to_string(p.route.front())
              << " destined " << to_string(witness.destinations[i]) << " ("
              << p.flit_count << " flits)\n";
  }

  // 3. Ω holds: no flit can move.
  const genoc::WormholeSwitching wormhole;
  const bool deadlocked = genoc::is_deadlock(wormhole, witness.state);
  std::cout << "\nΩ(σ) = " << (deadlocked ? "true" : "false")
            << " — the configuration is "
            << (deadlocked ? "a deadlock, as Theorem 1 predicts."
                           : "NOT a deadlock?!")
            << "\n";
  if (!deadlocked) {
    return 1;
  }

  // 4. Necessity: recover a dependency cycle from the stuck state.
  const genoc::DeadlockCycle recovered =
      genoc::extract_cycle_from_deadlock(wormhole, witness.state);
  std::cout << "\nCycle recovered from the deadlock ("
            << recovered.ports.size() << " ports):\n";
  for (std::size_t i = 0; i < recovered.ports.size(); ++i) {
    std::cout << "  " << to_string(recovered.ports[i]) << " (held by packet "
              << recovered.packets[i] << ")\n";
  }
  const bool in_graph = genoc::cycle_lies_in_dep_graph(dep, recovered.ports);
  std::cout << "\nRecovered cycle lies in the dependency graph: "
            << (in_graph ? "yes" : "NO") << "\n";

  // 5. Impact: who is stuck, and how badly?
  const genoc::DeadlockImpact impact =
      genoc::analyze_deadlock_impact(wormhole, witness.state);
  std::cout << "\nImpact: " << impact.summary() << "\n";
  std::cout << "\nBuffer occupancy (y grows southward; '*' = full port):\n"
            << genoc::render_occupancy(witness.state);

  // 6. The cure (paper Sec. IX / Duato): one XY-routed escape lane per
  //    port makes the SAME adaptive function provably deadlock-free.
  const genoc::XYRouting xy(mesh);
  const genoc::EscapeAnalysis cure = genoc::analyze_escape(adaptive, xy);
  std::cout << "\nWith an XY escape lane: " << cure.summary() << "\n";
  return in_graph && cure.deadlock_free ? 0 : 1;
}
