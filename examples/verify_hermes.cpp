/// \file verify_hermes.cpp
/// \brief The paper's full verification pipeline (Fig. 2) on a parametric
///        HERMES instance: discharge every proof obligation and print the
///        per-row effort report next to the paper's Table I.
///
/// Usage: verify_hermes [width] [height] [buffers]
///
/// This is the executable analog of "the user input consists of giving a
/// definition to functions I, R, and S and discharging the corresponding
/// instances of the proof obligations. Once the proof obligations have
/// been discharged, it automatically follows that the concrete instance of
/// GeNoC satisfies the corresponding instances of the three global
/// theorems."
#include <cstdlib>
#include <iostream>

#include "core/obligations.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::int32_t width = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::int32_t height = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::size_t buffers =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 2;

  std::cout << "Discharging the HERMES proof obligations on a " << width
            << "x" << height << " mesh (" << buffers << " buffers/port)\n\n";

  const genoc::HermesInstance hermes(width, height, buffers);
  genoc::ObligationOptions options;
  options.workloads = 3;
  options.messages_per_workload = 24;
  const genoc::ObligationSuite suite =
      genoc::run_hermes_obligations(hermes, options);

  genoc::Table table({"Obligation", "Checks", "Props", "CPU ms", "Status",
                      "Paper: Lines/Thms/CPUmin"});
  const auto& paper = genoc::paper_table1();
  for (std::size_t i = 0; i < suite.rows.size(); ++i) {
    const genoc::ObligationRow& row = suite.rows[i];
    const genoc::PaperEffortRow& ref = paper[i];
    table.add_row({row.label, genoc::format_count(row.checks),
                   std::to_string(row.properties),
                   genoc::format_double(row.cpu_ms, 2),
                   row.satisfied ? "DISCHARGED" : "VIOLATED",
                   std::to_string(ref.lines) + "/" +
                       std::to_string(ref.theorems) + "/" +
                       std::to_string(ref.cpu_minutes)});
  }
  table.add_separator();
  const genoc::ObligationRow overall = suite.overall();
  const genoc::PaperEffortRow& ref = paper.back();
  table.add_row({overall.label, genoc::format_count(overall.checks),
                 std::to_string(overall.properties),
                 genoc::format_double(overall.cpu_ms, 2),
                 overall.satisfied ? "DISCHARGED" : "VIOLATED",
                 std::to_string(ref.lines) + "/" +
                     std::to_string(ref.theorems) + "/" +
                     std::to_string(ref.cpu_minutes)});
  std::cout << table.render() << "\n";

  for (const genoc::ObligationRow& row : suite.rows) {
    std::cout << "  " << row.label << ": " << row.note << "\n";
  }

  std::cout << "\n"
            << (suite.all_satisfied()
                    ? "All obligations discharged: this instance satisfies "
                      "CorrThm, DeadThm and EvacThm."
                    : "OBLIGATION VIOLATED — see the rows above.")
            << "\n";
  return suite.all_satisfied() ? 0 : 1;
}
