/// \file instance_matrix.cpp
/// \brief The instance registry end to end: verify every registered network
///        on the shared BatchRunner pool and print the Table-I-style
///        per-instance matrix — the library form of `genoc verify --all`.
///
/// Usage: instance_matrix [threads]
#include <cstdlib>
#include <iostream>

#include "instance/batch_runner.hpp"
#include "instance/registry.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::size_t threads =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 0;

  const genoc::InstanceRegistry& registry = genoc::InstanceRegistry::global();
  genoc::BatchRunner runner(threads);
  // The demo population: everything up to the 64x64 scale. The full sweep
  // (`genoc verify --all`) now covers mesh128-xy too, but a smoke-tested
  // demo need not spend the extra seconds a 128x128 pass costs.
  std::vector<genoc::InstanceSpec> specs = registry.sweep_presets();
  std::erase_if(specs, [](const genoc::InstanceSpec& spec) {
    return spec.node_count() > genoc::InstanceRegistry::kOracleNodeLimit;
  });
  const std::vector<genoc::InstanceVerdict> verdicts =
      genoc::verify_instances(specs, &runner);

  genoc::Table table({"Instance", "Topology", "Routing", "Ports", "Dep edges",
                      "Method", "Verdict"});
  bool all_expected = true;
  for (const genoc::InstanceVerdict& verdict : verdicts) {
    all_expected = all_expected && verdict.as_expected();
    // A negative fixture (dragonfly-minimal without VCs) registers the
    // deadlock: finding the cycle is its pass.
    std::string word = verdict.deadlock_free ? "deadlock-free"
                                             : "deadlock-PRONE";
    if (!verdict.as_expected()) {
      word = "NOT AS REGISTERED";
    }
    table.add_row({verdict.instance, verdict.topology, verdict.routing,
                   genoc::format_count(verdict.ports),
                   genoc::format_count(verdict.edges), verdict.method, word});
  }
  std::cout << "Registered instances verified on " << runner.thread_count()
            << " thread(s):\n\n"
            << table.render() << "\n";
  std::cout << (all_expected
                    ? "Every registered instance discharges its registered "
                      "obligation (Theorem 1, escape-lane, or an expected "
                      "cycle witness)."
                    : "Some instance failed — see the matrix.")
            << "\n";
  return all_expected ? 0 : 1;
}
