/// \file depgraph_export.cpp
/// \brief Reproduce Fig. 3 for any registered instance: build its port
///        dependency graph and emit Graphviz DOT (to stdout or a file).
///        For XY-on-mesh instances the paper's closed-form Exy_dep is
///        cross-checked against the generic construction and the Fig. 4
///        flow decomposition is printed.
///
/// Usage: depgraph_export [instance-or-spec] [dot-file]
///   e.g. depgraph_export hermes fig3.dot
///        depgraph_export "topology=torus size=4x4 routing=torus_xy"
///
/// Render with: dot -Tpdf fig3.dot -o fig3.pdf
#include <fstream>
#include <iostream>
#include <string>

#include "deadlock/flows.hpp"
#include "graph/cycle.hpp"
#include "instance/network_instance.hpp"
#include "instance/registry.hpp"

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "hermes";

  std::string error;
  const auto spec = genoc::InstanceRegistry::global().resolve(which, &error);
  if (!spec) {
    std::cerr << "depgraph_export: " << error << "\n";
    return 2;
  }
  const genoc::NetworkInstance network(*spec);
  const genoc::PortDepGraph dep = network.dependency_graph();

  std::cout << "Port dependency graph of " << network.name() << " ("
            << network.routing().name() << " on " << spec->topology << " "
            << spec->width << "x" << spec->height << "):\n"
            << "  " << dep.graph.vertex_count() << " ports, "
            << dep.graph.edge_count() << " dependency edges, "
            << (genoc::is_acyclic(dep.graph) ? "acyclic" : "CYCLIC") << "\n\n";

  if (spec->routing == "xy" && spec->topology == "mesh") {
    // The paper's closed form exists for this family: cross-check it and
    // show the Fig. 4 flow structure.
    const genoc::PortDepGraph closed = genoc::build_exy_dep(network.mesh());
    std::cout << "Closed-form Exy_dep agrees with the generic construction: "
              << (closed.graph.edges() == dep.graph.edges() ? "yes"
                                                            : "NO (BUG)")
              << "\n";
    const genoc::FlowDecomposition flows = genoc::decompose_flows(dep);
    std::cout << "Flow decomposition (paper Fig. 4):\n  " << flows.summary()
              << "\n";
    std::cout << "Flow certificate (closed-form rank strictly increasing "
                 "along every edge): "
              << (genoc::verify_flow_certificate(dep) ? "VALID — (C-3) holds"
                                                      : "INVALID")
              << "\n";
  }

  const std::string dot = dep.to_dot("dep_graph");
  if (argc > 2) {
    std::ofstream out(argv[2]);
    out << dot;
    std::cout << "\nDOT written to " << argv[2] << " (render with: dot -Tpdf "
              << argv[2] << " -o fig3.pdf)\n";
  } else {
    std::cout << "\n" << dot;
  }
  return 0;
}
