/// \file depgraph_export.cpp
/// \brief Reproduce Fig. 3: build the port dependency graph of a mesh and
///        emit it as Graphviz DOT (to stdout or a file), plus the flow
///        decomposition of Fig. 4.
///
/// Usage: depgraph_export [width] [height] [dot-file]
///
/// Render with: dot -Tpdf fig3.dot -o fig3.pdf
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "deadlock/depgraph.hpp"
#include "deadlock/flows.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const std::int32_t width = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::int32_t height = argc > 2 ? std::atoi(argv[2]) : 2;

  const genoc::Mesh2D mesh(width, height);
  const genoc::PortDepGraph dep = genoc::build_exy_dep(mesh);

  std::cout << "Port dependency graph Exy_dep of a " << width << "x" << height
            << " mesh (paper Fig. 3 shows 2x2):\n"
            << "  " << dep.graph.vertex_count() << " ports, "
            << dep.graph.edge_count() << " dependency edges\n\n";

  const genoc::FlowDecomposition flows = genoc::decompose_flows(dep);
  std::cout << "Flow decomposition (paper Fig. 4):\n  " << flows.summary()
            << "\n\n";
  std::cout << "Flow certificate (closed-form rank strictly increasing "
               "along every edge): "
            << (genoc::verify_flow_certificate(dep) ? "VALID — (C-3) holds"
                                                    : "INVALID")
            << "\n";

  const std::string dot = dep.to_dot("Exy_dep");
  if (argc > 3) {
    std::ofstream out(argv[3]);
    out << dot;
    std::cout << "\nDOT written to " << argv[3] << " (render with: dot -Tpdf "
              << argv[3] << " -o fig3.pdf)\n";
  } else {
    std::cout << "\n" << dot;
  }
  return 0;
}
