/// \file quickstart.cpp
/// \brief Quickstart: build a HERMES instance, prove it deadlock-free,
///        simulate traffic, and watch every message evacuate.
///
/// Usage: quickstart [width] [height] [messages]
///
/// This is the 60-second tour of the library: the same Config/NetworkState
/// model is first *verified* (the paper's proof obligations) and then
/// *simulated* (the paper's executable specification) — "the same model is
/// used for simulation and validation".
#include <cstdlib>
#include <iostream>

#include "core/hermes.hpp"
#include "core/theorems.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic.hpp"

int main(int argc, char** argv) {
  const std::int32_t width = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::int32_t height = argc > 2 ? std::atoi(argv[2]) : 4;
  const std::size_t messages =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 32;

  std::cout << "GeNoC-CPP quickstart — HERMES " << width << "x" << height
            << " mesh, wormhole switching, XY routing\n\n";

  // 1. Build the instance (mesh + Rxy + Swh + Iid, paper Sec. V).
  const genoc::HermesInstance hermes(width, height, /*buffers_per_port=*/2);
  std::cout << "Topology: " << hermes.mesh().node_count() << " nodes, "
            << hermes.mesh().port_count() << " ports, 2 buffers/port\n";

  // 2. Discharge the Deadlock Theorem: (C-1), (C-2), (C-3).
  const genoc::TheoremReport dead = hermes.verify_deadlock_free();
  std::cout << "DeadThm: " << dead.summary() << "\n";

  // 3. Generate traffic and run GeNoC2D with full auditing.
  genoc::Rng rng(2010);
  const auto pairs =
      genoc::uniform_random_traffic(hermes.mesh(), messages, rng);
  genoc::SimulationOptions options;
  options.flit_count = 4;
  const genoc::SimulationReport report = genoc::simulate(hermes, pairs, options);

  // 4. Every message left the network (EvacThm), every arrival was
  //    legitimate (CorrThm), and the measure decreased every step (C-5).
  std::cout << "Simulation: " << report.summary() << "\n";
  std::cout << "\nAll " << messages
            << " messages evacuated; the run audited CorrThm, EvacThm and "
               "(C-5) online.\n";
  return report.run.evacuated && report.correctness_ok && report.evacuation_ok
             ? 0
             : 1;
}
