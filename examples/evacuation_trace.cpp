/// \file evacuation_trace.cpp
/// \brief The Evacuation Theorem, visualized: run GeNoC2D step by step and
///        print the termination measure μ shrinking to zero (constraint
///        (C-5) in action), together with the arrival log A filling up to
///        equal the sent list T.
///
/// Usage: evacuation_trace [width] [height] [pattern]
///   pattern: uniform | transpose | hotspot | all-to-one (default transpose)
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/hermes.hpp"
#include "core/injection_time.hpp"
#include "core/theorems.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

int main(int argc, char** argv) {
  const std::int32_t width = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::int32_t height = argc > 2 ? std::atoi(argv[2]) : 4;
  const char* pattern_name = argc > 3 ? argv[3] : "transpose";

  const genoc::HermesInstance hermes(width, height, 2);
  genoc::Rng rng(2010);
  genoc::TrafficPattern pattern = genoc::TrafficPattern::kTranspose;
  if (std::strcmp(pattern_name, "uniform") == 0) {
    pattern = genoc::TrafficPattern::kUniformRandom;
  } else if (std::strcmp(pattern_name, "hotspot") == 0) {
    pattern = genoc::TrafficPattern::kHotspot;
  } else if (std::strcmp(pattern_name, "all-to-one") == 0) {
    pattern = genoc::TrafficPattern::kAllToOne;
  }
  const auto pairs = genoc::generate_traffic(pattern, hermes.mesh(),
                                             2 * hermes.mesh().node_count(),
                                             rng);

  genoc::Config config = hermes.make_config(pairs, /*flit_count=*/4);
  genoc::GenocOptions options;
  options.keep_measure_trace = true;
  const genoc::GenocRunResult run = hermes.run(config, options);

  std::cout << "Evacuating " << pairs.size() << " "
            << genoc::traffic_pattern_name(pattern) << " messages on a "
            << width << "x" << height << " HERMES mesh\n\n";

  // Render the measure trace as a simple bar chart (sampled).
  const std::size_t samples = 24;
  const std::size_t stride =
      std::max<std::size_t>(1, run.measure_trace.size() / samples);
  const double scale =
      60.0 / static_cast<double>(std::max<std::uint64_t>(1,
                                                         run.initial_measure));
  std::cout << "step    μ(σ)  (each '#' ≈ " << 1.0 / scale << " hops)\n";
  for (std::size_t i = 0; i < run.measure_trace.size(); i += stride) {
    const std::uint64_t mu = run.measure_trace[i];
    std::cout << genoc::format_count(i);
    std::cout << std::string(8 - std::min<std::size_t>(7,
                                 std::to_string(i).size()),
                             ' ')
              << std::string(static_cast<std::size_t>(mu * scale), '#') << " "
              << mu << "\n";
  }
  std::cout << genoc::format_count(run.steps) << "        0 (evacuated)\n\n";

  std::cout << "steps: " << run.steps
            << ", flit moves: " << run.total_flit_moves
            << ", (C-5) violations: " << run.measure_violations << "\n";
  const genoc::TheoremReport evac = genoc::check_evacuation(config, run);
  const genoc::TheoremReport corr =
      genoc::check_correctness(config, hermes.routing());
  std::cout << evac.summary() << "\n" << corr.summary() << "\n";

  // The Sec. IX injection-time analysis: every travel entered within the
  // generic bound μ(σ0).
  const genoc::InjectionBoundReport injection =
      genoc::check_injection_bound(config, run);
  std::cout << injection.summary() << "\n";

  std::cout << "\nGeNoC(σ).A = σ.T: every one of the " << pairs.size()
            << " sent messages arrived, exactly once.\n";
  return evac.holds && corr.holds && injection.all_within_generic_bound ? 0
                                                                        : 1;
}
