// Tests for the simulation driver and its reports.
#include <gtest/gtest.h>

#include <memory>

#include "routing/negative_first.hpp"
#include "routing/north_last.hpp"
#include "routing/odd_even.hpp"
#include "routing/west_first.hpp"
#include "routing/yx.hpp"
#include "sim/simulator.hpp"

namespace genoc {
namespace {

TEST(Stats, SummarizeOrderStatistics) {
  const SummaryStats s = summarize({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_FALSE(s.to_string().empty());
  const SummaryStats empty = summarize({});
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(Simulator, ReportIsConsistent) {
  const HermesInstance hermes(4, 4, 2);
  Rng rng(42);
  const auto pairs = uniform_random_traffic(hermes.mesh(), 24, rng);
  SimulationOptions options;
  options.flit_count = 4;
  const SimulationReport report = simulate(hermes, pairs, options);
  EXPECT_TRUE(report.run.evacuated);
  EXPECT_FALSE(report.run.deadlocked);
  EXPECT_EQ(report.messages, 24u);
  EXPECT_EQ(report.total_flits, 24u * 4u);
  EXPECT_EQ(report.latency.count, 24u);
  EXPECT_GT(report.throughput, 0.0);
  EXPECT_TRUE(report.correctness_ok);
  EXPECT_TRUE(report.evacuation_ok);
  EXPECT_NE(report.summary().find("evacuated"), std::string::npos);
  // Latency is bounded below by the uncontended pipeline latency of the
  // shortest travel: route length 2 for self... here all distinct pairs,
  // min route length 4 => at least 4+flits-1 steps? Not in general (multi-
  // buffer compression); but it is at least the route port count.
  EXPECT_GE(report.latency.min, 4.0);
}

TEST(Simulator, LatencyGrowsWithCongestion) {
  const HermesInstance hermes(4, 4, 2);
  // One lonely message vs. the same message among all-to-one congestion.
  const TrafficPair lone{{0, 0}, {3, 3}};
  SimulationOptions options;
  options.flit_count = 4;
  const SimulationReport solo = simulate(hermes, {lone}, options);

  std::vector<TrafficPair> congested;
  for (const NodeCoord n : hermes.mesh().nodes()) {
    if (!(n == NodeCoord{3, 3})) {
      congested.push_back({n, NodeCoord{3, 3}});
    }
  }
  const SimulationReport busy = simulate(hermes, congested, options);
  EXPECT_GT(busy.latency.max, solo.latency.max);
}

TEST(Simulator, SampleRouteIsValidAndCoversChoices) {
  const Mesh2D mesh(4, 4);
  const WestFirstRouting wf(mesh);
  Rng rng(3);
  const Port from = mesh.local_in(0, 0);
  const Port to = mesh.local_out(3, 3);
  std::set<std::string> distinct;
  for (int i = 0; i < 64; ++i) {
    const Route r = sample_route(wf, from, to, rng);
    EXPECT_TRUE(is_valid_route(wf, r, from, to));
    std::string key;
    for (const Port& p : r) {
      key += to_string(p);
    }
    distinct.insert(key);
  }
  EXPECT_GT(distinct.size(), 1u);  // adaptivity actually explored
}

TEST(Simulator, AllDeadlockFreeRoutingsEvacuateEveryPattern) {
  const Mesh2D mesh(4, 4);
  const std::vector<std::unique_ptr<RoutingFunction>> functions = [&] {
    std::vector<std::unique_ptr<RoutingFunction>> fs;
    fs.push_back(std::make_unique<YXRouting>(mesh));
    fs.push_back(std::make_unique<WestFirstRouting>(mesh));
    fs.push_back(std::make_unique<NorthLastRouting>(mesh));
    fs.push_back(std::make_unique<NegativeFirstRouting>(mesh));
    fs.push_back(std::make_unique<OddEvenRouting>(mesh));
    return fs;
  }();
  Rng rng(2026);
  for (const auto& routing : functions) {
    const auto pairs = uniform_random_traffic(mesh, 20, rng);
    SimulationOptions options;
    options.flit_count = 3;
    const SimulationReport report =
        simulate_routing(mesh, *routing, pairs, 2, rng, options);
    EXPECT_TRUE(report.run.evacuated) << routing->name();
    EXPECT_TRUE(report.correctness_ok) << routing->name();
    EXPECT_TRUE(report.evacuation_ok) << routing->name();
    EXPECT_EQ(report.run.measure_violations, 0u) << routing->name();
  }
}

}  // namespace
}  // namespace genoc
