// Stress and scale tests: larger meshes, heavier traffic, longer worms.
// These exist to catch quadratic blowups and invariant violations that
// only appear under load; runtimes are kept to a few seconds total.
#include <gtest/gtest.h>

#include "core/hermes.hpp"
#include "core/injection_time.hpp"
#include "core/theorems.hpp"
#include "deadlock/constraints.hpp"
#include "deadlock/flows.hpp"
#include "routing/yx.hpp"
#include "sim/simulator.hpp"

namespace genoc {
namespace {

TEST(Stress, EightByEightHeavyUniformTraffic) {
  const HermesInstance hermes(8, 8, 2);
  Rng rng(1234);
  const auto pairs = uniform_random_traffic(hermes.mesh(), 256, rng);
  Config config = hermes.make_config(pairs, 8);
  const GenocRunResult run = hermes.run(config);
  EXPECT_TRUE(run.evacuated);
  EXPECT_EQ(run.measure_violations, 0u);
  EXPECT_TRUE(check_correctness(config, hermes.routing()).holds);
  EXPECT_TRUE(check_evacuation(config, run).holds);
  EXPECT_TRUE(check_injection_bound(config, run).all_within_generic_bound);
  config.state().validate();
}

TEST(Stress, LongWormsOnTinyBuffers) {
  // Worms far longer than any buffer chain: maximal pipelining pressure.
  const HermesInstance hermes(4, 4, 1);
  Rng rng(77);
  const auto pairs = uniform_random_traffic(hermes.mesh(), 32, rng);
  Config config = hermes.make_config(pairs, 64);
  const GenocRunResult run = hermes.run(config);
  EXPECT_TRUE(run.evacuated);
  EXPECT_EQ(run.measure_violations, 0u);
}

TEST(Stress, ConstraintDischargeOnTwelveByTwelve) {
  const Mesh2D mesh(12, 12);
  const XYRouting xy(mesh);
  const PortDepGraph dep = build_exy_dep(mesh);
  EXPECT_TRUE(check_c1(xy, dep).satisfied);
  EXPECT_TRUE(check_c3(dep).satisfied);
  EXPECT_TRUE(verify_flow_certificate(dep));
}

TEST(Stress, FlowCertificateOnHugeMeshes) {
  // The closed-form certificate is the cheap path to (C-3) at scale: a
  // 64x64 mesh has ~40k ports and ~100k edges; certification is O(E).
  for (const std::int32_t side : {32, 64}) {
    const Mesh2D mesh(side, side);
    const PortDepGraph dep = build_exy_dep(mesh);
    EXPECT_TRUE(verify_flow_certificate(dep)) << side;
    EXPECT_TRUE(verify_flow_certificate(build_dep_graph(YXRouting(mesh)),
                                        &yx_flow_rank))
        << side;
  }
}

TEST(Stress, ManySmallRunsStayDeterministic) {
  // The whole pipeline is deterministic: identical seeds, identical runs.
  const HermesInstance hermes(5, 5, 2);
  auto run_once = [&](std::uint64_t seed) {
    Rng rng(seed);
    const auto pairs = uniform_random_traffic(hermes.mesh(), 40, rng);
    Config config = hermes.make_config(pairs, 4);
    const GenocRunResult run = hermes.run(config);
    return std::make_tuple(run.steps, run.total_flit_moves, config.digest());
  };
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << "seed " << seed;
  }
}

TEST(Stress, ExtremeAspectRatios) {
  for (const auto& [w, h] : {std::pair{16, 1}, std::pair{1, 16},
                            std::pair{16, 2}, std::pair{2, 16}}) {
    const HermesInstance hermes(w, h, 1);
    EXPECT_TRUE(hermes.verify_deadlock_free().holds) << w << "x" << h;
    Rng rng(5);
    const auto pairs = uniform_random_traffic(hermes.mesh(), 24, rng);
    Config config = hermes.make_config(pairs, 3);
    const GenocRunResult run = hermes.run(config);
    EXPECT_TRUE(run.evacuated) << w << "x" << h;
  }
}

}  // namespace
}  // namespace genoc
