// Registry tests: every named preset must construct into a live
// NetworkInstance and verify deadlock-free — the executable form of the
// acceptance bar "`genoc verify --all` verifies every registered instance".
// Also covers resolve() (preset name vs ad-hoc spec vs garbage) and the
// determinism of instance workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "instance/network_instance.hpp"
#include "instance/registry.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

const InstanceRegistry& registry() { return InstanceRegistry::global(); }

TEST(InstanceRegistry, HasTheRequiredCoverage) {
  const auto& presets = registry().presets();
  EXPECT_GE(presets.size(), 8u);

  std::set<std::string> names;
  std::set<std::string> turn_models;
  bool has_torus = false;
  std::size_t cmesh_count = 0;
  bool has_dragonfly = false;
  bool has_negative = false;
  for (const InstanceSpec& spec : presets) {
    EXPECT_FALSE(spec.name.empty());
    EXPECT_FALSE(spec.summary.empty()) << spec.name;
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate preset name " << spec.name;
    EXPECT_EQ(validate_spec(spec), "") << spec.name;
    has_torus = has_torus || spec.topology == "torus";
    cmesh_count += spec.topology == "cmesh" ? 1 : 0;
    has_dragonfly = has_dragonfly || spec.topology == "dragonfly";
    has_negative = has_negative || !spec.expect_deadlock_free;
    if (std::find(turn_model_routings().begin(), turn_model_routings().end(),
                  spec.routing) != turn_model_routings().end()) {
      turn_models.insert(spec.routing);
    }
  }
  EXPECT_TRUE(has_torus) << "no torus preset registered";
  EXPECT_GE(turn_models.size(), 4u) << "turn-model family not covered";
  EXPECT_GE(cmesh_count, 3u) << "concentrated-mesh presets not covered";
  EXPECT_TRUE(has_dragonfly) << "no dragonfly preset registered";
  EXPECT_TRUE(has_negative) << "no negative (expect=deadlock) fixture";
}

TEST(InstanceRegistry, EveryPresetConstructsAndVerifiesAsRegistered) {
  for (const InstanceSpec& spec : registry().presets()) {
    const NetworkInstance network(spec);
    EXPECT_EQ(network.name(), spec.name);
    if (spec.is_grid()) {
      EXPECT_EQ(network.mesh().width(), spec.width) << spec.name;
      EXPECT_EQ(network.mesh().wraps_x(), spec.wrap_x()) << spec.name;
    } else {
      EXPECT_THROW(network.mesh(), ContractViolation) << spec.name;
    }
    EXPECT_EQ(network.topology().node_count(), spec.node_count()) << spec.name;
    const InstanceVerdict verdict = network.verify();
    // Positive presets verify deadlock-free; negative fixtures
    // (expect=deadlock) must reproduce their registered cycle.
    EXPECT_EQ(verdict.deadlock_free, spec.expect_deadlock_free)
        << spec.name << ": " << verdict.note;
    EXPECT_TRUE(verdict.as_expected()) << spec.name;
    EXPECT_GT(verdict.edges, 0u) << spec.name;
    EXPECT_EQ(verdict.instance, spec.name);
  }
}

TEST(InstanceRegistry, TorusPresetIsCuredByTheEscapeLane) {
  const InstanceSpec* spec = registry().find("torus8-xy");
  ASSERT_NE(spec, nullptr);
  const NetworkInstance network(*spec);
  ASSERT_NE(network.escape(), nullptr);
  const InstanceVerdict verdict = network.verify();
  // The primary graph is cyclic (topology-induced ring dependencies) —
  // deadlock freedom comes from the Duato escape analysis, not (C-3).
  EXPECT_FALSE(verdict.dep_acyclic);
  EXPECT_TRUE(verdict.deadlock_free) << verdict.note;
  EXPECT_NE(verdict.method.find("escape"), std::string::npos);
}

TEST(InstanceRegistry, ResolveAcceptsNamesAndSpecsAndRejectsGarbage) {
  std::string error;
  const auto preset = registry().resolve("hermes", &error);
  ASSERT_TRUE(preset.has_value()) << error;
  EXPECT_EQ(preset->name, "hermes");
  EXPECT_EQ(preset->routing, "xy");

  const auto adhoc =
      registry().resolve("topology=torus size=6x6 routing=torus_xy escape=yx",
                         &error);
  ASSERT_TRUE(adhoc.has_value()) << error;
  EXPECT_TRUE(adhoc->name.empty());
  EXPECT_EQ(adhoc->escape, "yx");

  EXPECT_FALSE(registry().resolve("no-such-instance", &error).has_value());
  // The message must list the actual alternatives.
  EXPECT_NE(error.find("hermes"), std::string::npos);
  EXPECT_NE(error.find("torus8-xy"), std::string::npos);
  EXPECT_FALSE(registry().resolve("topology=banana", &error).has_value());
  EXPECT_NE(error.find("banana"), std::string::npos);
  EXPECT_EQ(registry().find("no-such-instance"), nullptr);
}

TEST(InstanceRegistry, WorkloadsAreDeterministic) {
  const InstanceSpec* spec = registry().find("mesh8-xy");
  ASSERT_NE(spec, nullptr);
  const NetworkInstance a(*spec);
  const NetworkInstance b(*spec);
  const auto traffic_a = a.make_traffic();
  const auto traffic_b = b.make_traffic();
  ASSERT_EQ(traffic_a.size(), traffic_b.size());
  EXPECT_EQ(traffic_a.size(), spec->messages);
  for (std::size_t i = 0; i < traffic_a.size(); ++i) {
    EXPECT_EQ(traffic_a[i].source, traffic_b[i].source);
    EXPECT_EQ(traffic_a[i].dest, traffic_b[i].dest);
  }
}

TEST(InstanceRegistry, TorusInstanceSimulatesWithAuditsGreen) {
  // The HERMES-style torus instance is usable end to end from `genoc sim`:
  // torus-XY routes over the wrap links and the run evacuates with the
  // CorrThm/EvacThm/(C-5) audits green.
  const InstanceSpec* spec = registry().find("hermes-torus");
  ASSERT_NE(spec, nullptr);
  const NetworkInstance network(*spec);
  const SimulationReport report = network.simulate(network.make_traffic());
  EXPECT_TRUE(report.run.evacuated);
  EXPECT_FALSE(report.run.deadlocked);
  EXPECT_TRUE(report.correctness_ok);
  EXPECT_TRUE(report.evacuation_ok);
  EXPECT_EQ(report.run.measure_violations, 0u);
}

TEST(InstanceRegistry, StoreForwardInstanceSimulates) {
  const InstanceSpec* spec = registry().find("mesh8-xy-sf");
  ASSERT_NE(spec, nullptr);
  const NetworkInstance network(*spec);
  EXPECT_EQ(network.switching().name(), "store-and-forward");
  const SimulationReport report = network.simulate(network.make_traffic());
  EXPECT_TRUE(report.run.evacuated);
  EXPECT_TRUE(report.correctness_ok);
  EXPECT_TRUE(report.evacuation_ok);
}

TEST(InstanceRegistry, InvalidSpecIsRejectedAtConstruction) {
  InstanceSpec spec;
  spec.routing = "torus_xy";  // on an unwrapped mesh
  EXPECT_THROW(NetworkInstance{spec}, ContractViolation);
}

}  // namespace
}  // namespace genoc
