// The Topology port-graph abstraction and its first non-grid clients.
//
// Three claims are pinned here. (1) The base-class tables MIRROR the grid
// Port-tuple API bit-for-bit on Mesh2D — same PortIds, same labels, same
// destination list — so the refactor cannot have moved a single grid port.
// (2) The concentrated mesh and dragonfly obey the enumeration/link
// contract the sweepers rely on (terminal OUT ports drain, cardinal and
// global links are involutions, destinations ascend node-major). (3) The
// new presets verify to their registered verdicts with results identical
// across builders and thread counts — including the dragonfly cycle
// witness, which must name the same port on 1, 4 and 8 threads.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "deadlock/depgraph.hpp"
#include "instance/batch_runner.hpp"
#include "instance/network_instance.hpp"
#include "instance/registry.hpp"
#include "topology/cmesh.hpp"
#include "topology/dragonfly.hpp"
#include "topology/mesh.hpp"
#include "verify/artifacts.hpp"

namespace genoc {
namespace {

TEST(TopologyFamilies, MeshBaseTablesMirrorTheGridTupleApi) {
  const Mesh2D mesh(5, 4);
  ASSERT_EQ(mesh.name_count(), 5u);
  EXPECT_EQ(mesh.terminal_name_mask(),
            std::uint64_t{1} << static_cast<std::size_t>(PortName::kLocal));
  for (PortId pid = 0; pid < mesh.port_count(); ++pid) {
    const Port& p = mesh.port(pid);
    const auto node = static_cast<std::size_t>(p.y) * 5 +
                      static_cast<std::size_t>(p.x);
    EXPECT_EQ(mesh.slot_id(node, static_cast<std::size_t>(p.name), p.dir),
              pid);
    EXPECT_EQ(mesh.node_of(pid), node);
    EXPECT_EQ(mesh.port_label(pid), to_string(p));
    if (p.dir == Direction::kOut) {
      if (p.name == PortName::kLocal) {
        EXPECT_EQ(mesh.link_target(pid), kInvalidPort) << to_string(p);
      } else {
        EXPECT_EQ(mesh.link_target(pid), mesh.id(mesh.next_in(p)))
            << to_string(p);
      }
    }
  }
  const std::vector<Port> dests = mesh.destinations();
  ASSERT_EQ(mesh.destination_count(), dests.size());
  for (std::size_t i = 0; i < dests.size(); ++i) {
    EXPECT_EQ(mesh.destination_id(i), mesh.id(dests[i]));
    EXPECT_EQ(mesh.dest_index_of(mesh.id(dests[i])), i);
  }
}

TEST(TopologyFamilies, CMeshEnumerationAndLinksHoldTheContract) {
  const CMeshTopology cmesh(4, 3, 4);
  EXPECT_EQ(cmesh.family(), "cmesh");
  EXPECT_EQ(cmesh.node_count(), 12u);
  ASSERT_EQ(cmesh.name_count(), 8u);  // E, W, N, S, T0..T3
  EXPECT_EQ(cmesh.terminal_name_mask(), std::uint64_t{0xF} << 4);
  // Destinations are TERMINALS, node-major ascending: nodes * c of them,
  // the count the (C-3) check formula is keyed on.
  EXPECT_EQ(cmesh.destination_count(), 48u);
  std::size_t previous = 0;
  for (std::size_t i = 0; i < cmesh.destination_count(); ++i) {
    const PortId pid = cmesh.destination_id(i);
    EXPECT_EQ(cmesh.dest_index_of(pid), i);
    EXPECT_EQ(cmesh.link_target(pid), kInvalidPort)
        << "terminal OUT ports drain into the IP core";
    const std::size_t node = cmesh.node_of(pid);
    EXPECT_GE(node, previous) << "destinations must ascend node-major";
    previous = node;
  }
  // Cardinal links are an involution: E,OUT of (x,y) drives W,IN of
  // (x+1,y), whose W,OUT drives back into E,IN of (x,y).
  for (std::size_t node = 0; node < cmesh.node_count(); ++node) {
    for (std::size_t name = 0; name < 4; ++name) {
      const PortId out = cmesh.slot_id(node, name, Direction::kOut);
      if (out == kInvalidPort) {
        continue;  // boundary routers omit off-mesh cardinals, like grids
      }
      const PortId in = cmesh.link_target(out);
      ASSERT_NE(in, kInvalidPort);
      const PortId back = cmesh.slot_id(cmesh.node_of(in),
                                        cmesh.name_of(in), Direction::kOut);
      ASSERT_NE(back, kInvalidPort);
      EXPECT_EQ(cmesh.link_target(back),
                cmesh.slot_id(node, name, Direction::kIn));
    }
  }
}

TEST(TopologyFamilies, DragonflyGlobalChannelsAreOnePhysicalLinkEach) {
  const DragonflyTopology dragonfly(4, 2, 2, 9);
  EXPECT_EQ(dragonfly.node_count(), 36u);
  EXPECT_EQ(dragonfly.port_count(), 504u);
  EXPECT_EQ(dragonfly.destination_count(), 72u);  // p per router
  EXPECT_EQ(dragonfly.node_label(13), "g3r1");
  for (std::size_t node = 0; node < dragonfly.node_count(); ++node) {
    for (std::size_t j = 0; j < dragonfly.global_ports(); ++j) {
      const PortId out =
          dragonfly.slot_id(node, dragonfly.global_name(j), Direction::kOut);
      if (out == kInvalidPort) {
        continue;  // channels k >= g-1 leave their ports non-existent
      }
      const PortId in = dragonfly.link_target(out);
      ASSERT_NE(in, kInvalidPort);
      // The palmtree involution: the far router's paired global OUT port
      // drives straight back into this router's matching IN port.
      const std::size_t far = dragonfly.node_of(in);
      EXPECT_NE(dragonfly.group_of(far), dragonfly.group_of(node));
      const PortId back = dragonfly.slot_id(far, dragonfly.name_of(in),
                                            Direction::kOut);
      ASSERT_NE(back, kInvalidPort);
      EXPECT_EQ(dragonfly.link_target(back),
                dragonfly.slot_id(node, dragonfly.global_name(j),
                                  Direction::kIn));
    }
  }
}

TEST(TopologyFamilies, CMeshPresetsVerifyDeadlockFreeByTheoremOne) {
  std::size_t seen = 0;
  for (const InstanceSpec& spec : InstanceRegistry::global().presets()) {
    if (spec.topology != "cmesh") {
      continue;
    }
    ++seen;
    SCOPED_TRACE(spec.name);
    const NetworkInstance instance(spec);
    const InstanceVerdict verdict = instance.verify();
    EXPECT_TRUE(verdict.dep_acyclic) << verdict.note;
    EXPECT_TRUE(verdict.deadlock_free) << verdict.note;
    EXPECT_EQ(verdict.nodes, spec.node_count());
    EXPECT_EQ(verdict.ports, instance.topology().port_count());
  }
  EXPECT_GE(seen, 3u);
}

TEST(TopologyFamilies, DragonflyCycleWitnessIsStableAcrossThreadCounts) {
  // The flagship negative fixture: minimal routing without VCs closes a
  // local->global->local dependency cycle. The witness (length and the
  // named port) must be byte-identical however the build is sharded —
  // a racy parallel builder would surface here first.
  std::string error;
  const auto spec =
      InstanceRegistry::global().resolve("dragonfly9-min", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_FALSE(spec->expect_deadlock_free);
  const NetworkInstance instance(*spec);
  const InstanceVerdict sequential = instance.verify();
  EXPECT_FALSE(sequential.deadlock_free);
  EXPECT_TRUE(sequential.as_expected());
  EXPECT_EQ(sequential.method, "cycle");
  EXPECT_NE(sequential.note.find("dependency cycle of length"),
            std::string::npos)
      << sequential.note;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    BatchRunner runner(threads);
    InstanceVerifyOptions options;
    options.runner = &runner;
    const InstanceVerdict sharded = instance.verify(options);
    EXPECT_EQ(sharded.note, sequential.note) << threads << " threads";
    EXPECT_EQ(sharded.edges, sequential.edges) << threads << " threads";
    EXPECT_EQ(sharded.method, sequential.method) << threads << " threads";
  }
}

TEST(TopologyFamilies, NewPresetsBuildBitIdenticalOnFourThreads) {
  // Fast, generic and 4-thread destination-sharded builds of the id-native
  // families must agree edge-for-edge (the grid presets get the same
  // treatment in test_depgraph_fast.cpp).
  BatchRunner runner(4);
  for (const InstanceSpec& spec : InstanceRegistry::global().presets()) {
    if (spec.is_grid()) {
      continue;
    }
    SCOPED_TRACE(spec.name);
    const NetworkInstance instance(spec);
    const PortDepGraph fast = build_dep_graph_fast(instance.routing());
    const PortDepGraph generic = build_dep_graph(instance.routing());
    const PortDepGraph parallel =
        build_dep_graph_parallel(instance.routing(), runner);
    EXPECT_EQ(fast.graph.edges(), generic.graph.edges());
    EXPECT_EQ(fast.graph.edges(), parallel.graph.edges());
  }
}

TEST(TopologyFamilies, SpecRoundTripsAndExpectationParse) {
  const InstanceRegistry& registry = InstanceRegistry::global();
  std::string error;
  for (const char* name :
       {"cmesh4-dor", "cmesh8-dor", "cmesh8-c2", "dragonfly9-min"}) {
    SCOPED_TRACE(name);
    const InstanceSpec* spec = registry.find(name);
    ASSERT_NE(spec, nullptr);
    const auto parsed = registry.resolve(to_spec_string(*spec), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(to_spec_string(*parsed), to_spec_string(*spec));
    EXPECT_EQ(parsed->expect_deadlock_free, spec->expect_deadlock_free);
  }
  // expect= parses both spellings per polarity and rejects garbage.
  const auto prone = registry.resolve(
      "topology=dragonfly routers=4 globals=2 terminals=2 groups=9 "
      "routing=dragonfly_min expect=cycle",
      &error);
  ASSERT_TRUE(prone.has_value()) << error;
  EXPECT_FALSE(prone->expect_deadlock_free);
  EXPECT_NE(to_spec_string(*prone).find(" expect=deadlock"),
            std::string::npos);
  EXPECT_FALSE(registry
                   .resolve("topology=mesh size=4x4 routing=xy expect=maybe",
                            &error)
                   .has_value());
  EXPECT_NE(error.find("expect"), std::string::npos);
}

TEST(TopologyFamilies, UnknownTopologyErrorListsTheRegisteredFamilies) {
  std::string error;
  EXPECT_FALSE(InstanceRegistry::global()
                   .resolve("topology=hypercube size=4x4 routing=xy", &error)
                   .has_value());
  EXPECT_NE(error.find("registered families:"), std::string::npos) << error;
  for (const TopologyFamilyInfo& family : topology_families()) {
    EXPECT_NE(error.find(family.name), std::string::npos) << family.name;
  }
}

TEST(TopologyFamilies, ArtifactKeysSeparateEveryAnalysisContext) {
  // The batch store must never alias two different networks: every new
  // preset (and a same-size grid neighbour) gets a distinct sharing key,
  // and the key ignores the expectation (it is not an analysis input).
  std::set<std::string> keys;
  for (const char* name : {"cmesh4-dor", "cmesh8-dor", "cmesh8-c2",
                           "dragonfly9-min", "mesh8-xy"}) {
    const InstanceSpec* spec = InstanceRegistry::global().find(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_TRUE(keys.insert(AnalysisArtifacts::key(*spec)).second) << name;
  }
  InstanceSpec flipped = *InstanceRegistry::global().find("dragonfly9-min");
  flipped.expect_deadlock_free = true;
  EXPECT_EQ(AnalysisArtifacts::key(flipped),
            AnalysisArtifacts::key(
                *InstanceRegistry::global().find("dragonfly9-min")));
}

}  // namespace
}  // namespace genoc
