// Static-analyzer suite: every rule has a positive run (a clean preset-shaped
// spec analyzes clean) and a seeded-mutant negative (a deliberately broken
// model trips exactly that rule, with its stable diagnostic code). The
// mutants inject through Analyzer::run(spec, topology, routing, escape) — the
// documented injection point — so no fake instances are registered. Also
// covers the --rules selection contract (from_rule_names) and the registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/rule.hpp"
#include "cli/analyze_json.hpp"
#include "instance/spec.hpp"
#include "routing/torus_xy.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"
#include "topology/mesh.hpp"
#include "topology/port.hpp"
#include "topology/topology.hpp"
#include "verify/diagnostics.hpp"

namespace genoc {
namespace {

using cli::analyze_report_json;

InstanceSpec spec_or_die(const std::string& text) {
  std::string error;
  const std::optional<InstanceSpec> spec = parse_instance_spec(text, &error);
  EXPECT_TRUE(spec.has_value()) << text << ": " << error;
  return spec.value_or(InstanceSpec{});
}

bool has_code(const AnalyzeReport& report, const std::string& code) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

/// True iff every warning/error finding came from \p stage — the "trips
/// exactly its rule" property of a seeded mutant.
bool findings_only_from(const AnalyzeReport& report, const std::string& stage) {
  return std::all_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.severity == Severity::kInfo || d.stage == stage;
                     });
}

const StageStats& stats_of(const AnalyzeReport& report,
                           const std::string& rule) {
  for (const StageStats& stats : report.rules) {
    if (stats.stage == rule) {
      return stats;
    }
  }
  ADD_FAILURE() << "no stats for rule " << rule;
  static const StageStats kEmpty;
  return kEmpty;
}

// ---------------------------------------------------------------------------
// Seeded mutants. Each breaks exactly one modelled property; the spec's
// routing key is chosen so the unrelated rules skip or stay clean.
// ---------------------------------------------------------------------------

/// Grid mutant base: cardinal OUT ports forward along their link, Local OUT
/// terminates — only the IN-port decision differs per mutant.
class GridMutant : public RoutingFunction {
 public:
  explicit GridMutant(const Mesh2D& mesh) : RoutingFunction(mesh) {}
  bool is_deterministic() const override { return true; }

 protected:
  bool forward_out(const Port& p, std::vector<Port>& out) const {
    if (p.dir != Direction::kOut) {
      return false;
    }
    if (p.name != PortName::kLocal) {
      // The topology-aware next_in: wrap links exist on tori.
      out.push_back(mesh().next_in(p));
    }
    return true;
  }
};

/// Totality mutant: messages entering node (2,1) toward any other node are
/// simply dropped — the reachable state yields no next hop.
class DropAtNode final : public GridMutant {
 public:
  using GridMutant::GridMutant;
  std::string name() const override { return "drop-at-node"; }
  void append_next_hops(const Port& p, const Port& d,
                        std::vector<Port>& out) const override {
    if (forward_out(p, out)) {
      return;
    }
    if (p.x == 2 && p.y == 1 && !(d.x == 2 && d.y == 1)) {
      return;  // the seeded hole
    }
    XYRouting xy(mesh());
    xy.append_next_hops(p, d, out);
  }
};

/// Minimality mutant: injections at (0,0) toward the same column overshoot
/// East first (distance grows), then XY recovers. is_minimal() stays true —
/// the lie the totality rule must catch.
class OvershootInjection final : public GridMutant {
 public:
  using GridMutant::GridMutant;
  std::string name() const override { return "overshoot-injection"; }
  void append_next_hops(const Port& p, const Port& d,
                        std::vector<Port>& out) const override {
    if (forward_out(p, out)) {
      return;
    }
    if (p.name == PortName::kLocal && p.x == 0 && p.y == 0 && d.x == 0 &&
        d.y > 0) {
      out.push_back(trans(p, PortName::kEast, Direction::kOut));
      return;
    }
    XYRouting xy(mesh());
    xy.append_next_hops(p, d, out);
  }
};

/// Uniformity mutant: routes exactly like XY but the published node mask of
/// node (0,0) claims an extra East hop — the mask/hop-set divergence that
/// would silently corrupt the zero-storage closure tier.
class LyingMask final : public GridMutant {
 public:
  explicit LyingMask(const Mesh2D& mesh) : GridMutant(mesh), inner_(mesh) {}
  std::string name() const override { return "lying-mask"; }
  bool node_uniform() const override { return true; }
  void append_next_hops(const Port& p, const Port& d,
                        std::vector<Port>& out) const override {
    inner_.append_next_hops(p, d, out);
  }
  std::uint8_t node_out_mask(std::int32_t x, std::int32_t y,
                             const Port& dest) const override {
    std::uint8_t mask = inner_.node_out_mask(x, y, dest);
    if (x == 0 && y == 0) {
      mask |= port_name_bit(PortName::kEast);
    }
    return mask;
  }

 private:
  XYRouting inner_;
};

/// Escape mutant 1: an escape lane that only ever moves East. On a torus
/// that is a ring of dependencies — the cyclic sub-network the Duato
/// precondition forbids.
class AlwaysEast final : public GridMutant {
 public:
  using GridMutant::GridMutant;
  std::string name() const override { return "always-east"; }
  void append_next_hops(const Port& p, const Port& d,
                        std::vector<Port>& out) const override {
    if (forward_out(p, out)) {
      return;
    }
    if (p.x == d.x && p.y == d.y) {
      out.push_back(trans(p, PortName::kLocal, Direction::kOut));
    } else {
      out.push_back(trans(p, PortName::kEast, Direction::kOut));
    }
  }
};

/// Escape mutant 2: an XY escape lane whose published mask selects nothing
/// at node (1,1) — a coverage hole in the claimed sub-network.
class HoleyEscape final : public GridMutant {
 public:
  explicit HoleyEscape(const Mesh2D& mesh) : GridMutant(mesh), inner_(mesh) {}
  std::string name() const override { return "holey-escape"; }
  bool node_uniform() const override { return true; }
  void append_next_hops(const Port& p, const Port& d,
                        std::vector<Port>& out) const override {
    inner_.append_next_hops(p, d, out);
  }
  std::uint8_t node_out_mask(std::int32_t x, std::int32_t y,
                             const Port& dest) const override {
    if (x == 1 && y == 1) {
      return 0;
    }
    return inner_.node_out_mask(x, y, dest);
  }

 private:
  XYRouting inner_;
};

/// A routing that is never consulted (for topology-only rule tests).
class NullRouting final : public RoutingFunction {
 public:
  using RoutingFunction::RoutingFunction;
  std::string name() const override { return "null"; }
  bool is_deterministic() const override { return true; }
  bool id_native() const override { return true; }
  void append_next_hop_ids(PortId, std::size_t,
                           std::vector<PortId>&) const override {}
};

/// A hand-built port graph with one unreachable ejection port and one
/// sink-less branch: node 0 injects, node 1 has an in-port but no way out,
/// node 2 has an ejection port nothing drives.
class BrokenTopology final : public Topology {
 public:
  BrokenTopology() {
    begin_topology(3, {"E", "W", "L"}, /*terminal_mask=*/0b100);
    const PortId e_out0 = add_port(0, 0, Direction::kOut);
    add_port(0, 2, Direction::kIn);                         // L-IN(0): source
    add_port(0, 2, Direction::kOut);                        // L-OUT(0): dest
    const PortId w_in1 = add_port(1, 1, Direction::kIn);    // the dead end
    add_port(2, 2, Direction::kOut);                        // orphan dest
    set_link(e_out0, w_in1);
    finish_topology();
  }
  std::string family() const override { return "broken"; }
  std::string node_label(std::size_t node) const override {
    return std::to_string(node);
  }
};

// ---------------------------------------------------------------------------
// Registry and selection contract.
// ---------------------------------------------------------------------------

TEST(RuleRegistry, RegistersTheEightRulesInOrder) {
  const std::vector<std::string> expected = {
      "spec_sanity", "dead_ports", "turns",         "uniformity",
      "totality",    "escape",     "fault_sanity",  "connectivity"};
  EXPECT_EQ(RuleRegistry::global().names(), expected);
  EXPECT_EQ(Analyzer::default_rule_names(), expected);
  for (const AnalysisRule* rule : RuleRegistry::global().rules()) {
    EXPECT_NE(rule->description()[0], '\0') << rule->name();
    EXPECT_EQ(RuleRegistry::global().find(rule->name()), rule);
  }
  EXPECT_EQ(RuleRegistry::global().find("nope"), nullptr);
}

TEST(RuleRegistry, CheapSubsetSkipsTheClosureHeavySweeps) {
  const std::vector<std::string> expected = {"spec_sanity", "dead_ports",
                                             "turns", "uniformity"};
  EXPECT_EQ(Analyzer::cheap_rule_names(), expected);
  EXPECT_EQ(Analyzer::cheap().rule_names(), expected);
}

TEST(AnalyzerSelection, UnknownRuleIsRejected) {
  std::string error;
  EXPECT_FALSE(Analyzer::from_rule_names({"turns", "nope"}, &error));
  EXPECT_NE(error.find("unknown analysis rule 'nope'"), std::string::npos)
      << error;
}

TEST(AnalyzerSelection, DuplicateRuleIsRejected) {
  std::string error;
  EXPECT_FALSE(Analyzer::from_rule_names({"turns", "turns"}, &error));
  EXPECT_NE(error.find("duplicate analysis rule 'turns'"), std::string::npos)
      << error;
}

TEST(AnalyzerSelection, EmptySelectionIsRejected) {
  std::string error;
  EXPECT_FALSE(Analyzer::from_rule_names({}, &error));
  EXPECT_NE(error.find("empty rule selection"), std::string::npos) << error;
}

TEST(AnalyzerSelection, SelectionPreservesTheGivenOrder) {
  std::string error;
  const std::optional<Analyzer> analyzer =
      Analyzer::from_rule_names({"uniformity", "spec_sanity"}, &error);
  ASSERT_TRUE(analyzer.has_value()) << error;
  const std::vector<std::string> expected = {"uniformity", "spec_sanity"};
  EXPECT_EQ(analyzer->rule_names(), expected);
}

// ---------------------------------------------------------------------------
// Positive runs: clean preset-shaped specs analyze clean.
// ---------------------------------------------------------------------------

TEST(AnalyzerPositive, MeshXyIsCleanUnderEveryRule) {
  const AnalyzeReport report =
      Analyzer::standard().run(spec_or_die("topology=mesh size=8x8 routing=xy"));
  EXPECT_TRUE(report.clean()) << analyze_report_json(report);
  ASSERT_EQ(report.rules.size(), 8u);
  EXPECT_GT(report.checks, 0u);
  EXPECT_TRUE(has_code(report, "sanity-ok"));
  EXPECT_TRUE(has_code(report, "ports-live"));
  EXPECT_TRUE(has_code(report, "turns-conform"));
  EXPECT_TRUE(has_code(report, "uniformity-audited"));
  EXPECT_TRUE(has_code(report, "totality-holds"));
  EXPECT_TRUE(has_code(report, "net-connected"));
  EXPECT_FALSE(stats_of(report, "escape").ran);        // no escape lane declared
  EXPECT_FALSE(stats_of(report, "fault_sanity").ran);  // no failed= links
}

TEST(AnalyzerPositive, TorusEscapeLaneIsCoveredAndAcyclic) {
  const AnalyzeReport report = Analyzer::standard().run(
      spec_or_die("topology=torus size=4x4 routing=torus_xy escape=xy"));
  EXPECT_TRUE(report.clean()) << analyze_report_json(report);
  EXPECT_TRUE(stats_of(report, "escape").ran);
  EXPECT_TRUE(stats_of(report, "escape").passed);
  EXPECT_TRUE(has_code(report, "escape-covered"));
}

TEST(AnalyzerPositive, CheapSubsetIsCleanOnAdaptiveTurnModel) {
  const AnalyzeReport report = Analyzer::cheap().run(
      spec_or_die("topology=mesh size=6x6 routing=west_first"));
  EXPECT_TRUE(report.clean()) << analyze_report_json(report);
  ASSERT_EQ(report.rules.size(), 4u);
  EXPECT_TRUE(stats_of(report, "turns").ran);
  EXPECT_TRUE(has_code(report, "turns-conform"));
}

// ---------------------------------------------------------------------------
// Seeded mutants: each trips exactly its rule, with its stable code.
// ---------------------------------------------------------------------------

TEST(AnalyzerMutant, InvalidSpecTripsSpecSanity) {
  InstanceSpec spec = spec_or_die("topology=mesh size=4x4 routing=xy");
  spec.routing = "bogus";  // programmatic specs bypass the parser
  const Mesh2D mesh(4, 4);
  const XYRouting routing(mesh);
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, nullptr);
  EXPECT_EQ(report.findings(), 1u) << analyze_report_json(report);
  EXPECT_TRUE(has_code(report, "sanity-invalid-spec"));
  EXPECT_TRUE(findings_only_from(report, "spec_sanity"));
}

TEST(AnalyzerMutant, RedundantEscapeTripsSpecSanity) {
  InstanceSpec spec = spec_or_die("topology=mesh size=4x4 routing=xy");
  spec.escape = "xy";
  const Mesh2D mesh(4, 4);
  const XYRouting routing(mesh);
  const XYRouting escape(mesh);
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, &escape);
  EXPECT_EQ(report.findings(), 1u) << analyze_report_json(report);
  EXPECT_TRUE(has_code(report, "sanity-escape-redundant"));
  EXPECT_TRUE(findings_only_from(report, "spec_sanity"));
}

TEST(AnalyzerMutant, EmptyWorkloadTripsSpecSanity) {
  InstanceSpec spec = spec_or_die("topology=mesh size=4x4 routing=xy");
  spec.messages = 0;
  const Mesh2D mesh(4, 4);
  const XYRouting routing(mesh);
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, nullptr);
  EXPECT_EQ(report.findings(), 1u) << analyze_report_json(report);
  EXPECT_TRUE(has_code(report, "sanity-empty-workload"));
}

TEST(AnalyzerMutant, EscapeOnNegativeFixtureTripsSpecSanity) {
  InstanceSpec spec =
      spec_or_die("topology=mesh size=4x4 routing=fully_adaptive escape=xy");
  spec.expect_deadlock_free = false;
  const Mesh2D mesh(4, 4);
  const XYRouting routing(mesh);
  const XYRouting escape(mesh);
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, &escape);
  EXPECT_EQ(report.findings(), 1u) << analyze_report_json(report);
  EXPECT_TRUE(has_code(report, "sanity-escape-expects-deadlock"));
  EXPECT_TRUE(has_code(report, "sanity-negative-fixture"));
}

TEST(AnalyzerMutant, BrokenPortGraphTripsDeadPorts) {
  const BrokenTopology topo;
  const NullRouting routing(topo);
  InstanceSpec spec = spec_or_die("topology=mesh size=4x4 routing=xy");
  std::string error;
  const std::optional<Analyzer> analyzer =
      Analyzer::from_rule_names({"dead_ports"}, &error);
  ASSERT_TRUE(analyzer.has_value()) << error;
  const AnalyzeReport report = analyzer->run(spec, topo, routing, nullptr);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_code(report, "port-unreachable"));  // the orphan ejection
  EXPECT_TRUE(has_code(report, "port-dead-end"));     // the sink-less branch
  EXPECT_TRUE(has_code(report, "dead-ports-found"));
}

TEST(AnalyzerMutant, ProhibitedTurnTripsTurnConformance) {
  // YX routing audited against the west_first discipline: the vertical
  // phase runs first, so the later turn into West is exactly the turn
  // west-first forbids — and it is closure-reachable.
  const InstanceSpec spec =
      spec_or_die("topology=mesh size=4x4 routing=west_first");
  const Mesh2D mesh(4, 4);
  const YXRouting routing(mesh);
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, nullptr);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_code(report, "turn-prohibited"));
  EXPECT_TRUE(has_code(report, "turns-violated"));
  EXPECT_TRUE(findings_only_from(report, "turns"))
      << analyze_report_json(report);
}

TEST(AnalyzerMutant, LyingNodeMaskTripsUniformity) {
  const InstanceSpec spec =
      spec_or_die("topology=mesh size=4x4 routing=fully_adaptive");
  const Mesh2D mesh(4, 4);
  const LyingMask routing(mesh);
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, nullptr);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_code(report, "uniformity-violated"));
  EXPECT_TRUE(has_code(report, "uniformity-refuted"));
  EXPECT_TRUE(findings_only_from(report, "uniformity"))
      << analyze_report_json(report);
}

TEST(AnalyzerMutant, DroppedMessagesTripTotality) {
  const InstanceSpec spec =
      spec_or_die("topology=mesh size=4x4 routing=fully_adaptive");
  const Mesh2D mesh(4, 4);
  const DropAtNode routing(mesh);
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, nullptr);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_code(report, "route-dead-end"));
  EXPECT_TRUE(has_code(report, "totality-violated"));
  EXPECT_TRUE(findings_only_from(report, "totality"))
      << analyze_report_json(report);
}

TEST(AnalyzerMutant, OvershootingHopTripsMinimality) {
  const InstanceSpec spec =
      spec_or_die("topology=mesh size=4x4 routing=fully_adaptive");
  const Mesh2D mesh(4, 4);
  const OvershootInjection routing(mesh);
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, nullptr);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_code(report, "route-nonminimal"));
  EXPECT_TRUE(findings_only_from(report, "totality"))
      << analyze_report_json(report);
}

TEST(AnalyzerMutant, CyclicEscapeLaneTripsEscapeCoverage) {
  const InstanceSpec spec =
      spec_or_die("topology=torus size=4x4 routing=torus_xy escape=xy");
  const Mesh2D mesh(4, 4, /*wrap_x=*/true, /*wrap_y=*/true);
  const TorusXYRouting routing(mesh);
  const AlwaysEast escape(mesh);
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, &escape);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_code(report, "escape-cyclic"));
  EXPECT_TRUE(findings_only_from(report, "escape"))
      << analyze_report_json(report);
}

TEST(AnalyzerMutant, EscapeCoverageHoleTripsEscapeCoverage) {
  const InstanceSpec spec =
      spec_or_die("topology=mesh size=4x4 routing=fully_adaptive escape=xy");
  const Mesh2D mesh(4, 4);
  const XYRouting routing(mesh);
  const HoleyEscape escape(mesh);
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, &escape);
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(has_code(report, "escape-partial"));
  EXPECT_TRUE(has_code(report, "escape-uncovered"));
  EXPECT_TRUE(findings_only_from(report, "escape"))
      << analyze_report_json(report);
}

// ---------------------------------------------------------------------------
// Report plumbing.
// ---------------------------------------------------------------------------

TEST(AnalyzeReportTest, FindingsCountIgnoresInfoRecords) {
  AnalyzeReport report;
  report.diagnostics.push_back({"spec_sanity", Severity::kInfo, "sanity-ok",
                                "fine", {}});
  EXPECT_TRUE(report.clean());
  report.diagnostics.push_back({"totality", Severity::kError,
                                "route-dead-end", "stuck", {}});
  EXPECT_EQ(report.findings(), 1u);
  EXPECT_FALSE(report.clean());
}

TEST(AnalyzeReportTest, CapAndBudgetOptionsBoundTheFindings) {
  // A drop-everything mutant on a bigger mesh floods route-dead-end; the
  // per-code cap keeps the report bounded while the summary keeps totals.
  const InstanceSpec spec =
      spec_or_die("topology=mesh size=4x4 routing=fully_adaptive");
  const Mesh2D mesh(4, 4);
  const DropAtNode routing(mesh);
  AnalyzeOptions options;
  options.max_findings_per_code = 2;
  const AnalyzeReport report =
      Analyzer::standard().run(spec, mesh, routing, nullptr, options);
  std::size_t dead_end_records = 0;
  for (const Diagnostic& diagnostic : report.diagnostics) {
    dead_end_records += diagnostic.code == "route-dead-end" ? 1 : 0;
  }
  EXPECT_EQ(dead_end_records, 2u);
  EXPECT_TRUE(has_code(report, "totality-violated"));
}

TEST(AnalyzeReportTest, JsonRowCarriesRulesAndDiagnostics) {
  const AnalyzeReport report =
      Analyzer::cheap().run(spec_or_die("topology=mesh size=4x4 routing=xy"));
  const std::string json = analyze_report_json(report);
  EXPECT_NE(json.find("\"instance\":"), std::string::npos);
  EXPECT_NE(json.find("\"rules\":"), std::string::npos);
  EXPECT_NE(json.find("\"diagnostics\":"), std::string::npos);
  EXPECT_NE(json.find("\"clean\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("sanity-ok"), std::string::npos);
}

}  // namespace
}  // namespace genoc
