// End-to-end tests for the HERMES instance (GeNoC2D).
#include <gtest/gtest.h>

#include "core/hermes.hpp"
#include "core/theorems.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

TEST(Hermes, ConstructionAndAccessors) {
  const HermesInstance hermes(4, 3, 2);
  EXPECT_EQ(hermes.mesh().width(), 4);
  EXPECT_EQ(hermes.mesh().height(), 3);
  EXPECT_EQ(hermes.buffers_per_port(), 2u);
  EXPECT_EQ(hermes.routing().name(), "XY");
  EXPECT_EQ(hermes.switching().name(), "wormhole");
  EXPECT_EQ(hermes.injection().name(), "Iid");
  EXPECT_THROW(HermesInstance(2, 2, 0), ContractViolation);
}

TEST(Hermes, HeterogeneousLocalBuffers) {
  // Deeper injection/ejection queues: Local ports get their own depth.
  const HermesInstance hermes(3, 3, 1, /*local_buffers=*/4);
  EXPECT_EQ(hermes.local_buffers(), 4u);
  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 2}}, {NodeCoord{0, 0}, NodeCoord{2, 0}}},
      4);
  const Mesh2D& mesh = hermes.mesh();
  EXPECT_EQ(config.state().capacity(mesh.id(mesh.local_in(0, 0))), 4u);
  EXPECT_EQ(config.state().capacity(
                mesh.id(Port{0, 0, PortName::kEast, Direction::kOut})),
            1u);
  const GenocRunResult run = hermes.run(config);
  EXPECT_TRUE(run.evacuated);
  EXPECT_EQ(run.measure_violations, 0u);
}

TEST(Hermes, DeeperLocalBuffersSpeedUpInjection) {
  // Same traffic, same switch buffers; deeper L-IN queues let waiting
  // worms stage closer to the network, so evacuation is no slower and the
  // last entry happens no later.
  std::vector<TrafficPair> pairs;
  for (int i = 0; i < 6; ++i) {
    pairs.push_back({NodeCoord{0, 0}, NodeCoord{2, 2}});
  }
  auto last_entry = [&](std::size_t local) {
    const HermesInstance hermes(3, 3, 1, local);
    Config config = hermes.make_config(pairs, 4);
    hermes.run(config);
    std::size_t last = 0;
    for (const Arrival& e : config.entered()) {
      last = std::max(last, e.step);
    }
    return last;
  };
  EXPECT_LE(last_entry(8), last_entry(1));
}

TEST(Hermes, MakeConfigAssignsSequentialIds) {
  const HermesInstance hermes(3, 3, 2);
  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{1, 1}}, {NodeCoord{2, 2}, NodeCoord{0, 0}}},
      3);
  ASSERT_EQ(config.travels().size(), 2u);
  EXPECT_EQ(config.travels()[0].id, 1u);
  EXPECT_EQ(config.travels()[1].id, 2u);
  EXPECT_EQ(config.travels()[0].flit_count, 3u);
}

TEST(Hermes, VerifyDeadlockFreeAcrossSizes) {
  for (const auto& [w, h] :
       {std::pair{2, 2}, std::pair{3, 3}, std::pair{5, 4}, std::pair{1, 7}}) {
    const HermesInstance hermes(w, h, 2);
    const TheoremReport report = hermes.verify_deadlock_free();
    EXPECT_TRUE(report.holds) << w << "x" << h << ": " << report.summary();
  }
}

TEST(Hermes, FullPipelineOnAllToOneTraffic) {
  // The congested pattern: everyone sends to the centre.
  const HermesInstance hermes(4, 4, 2);
  std::vector<TrafficPair> pairs;
  for (const NodeCoord n : hermes.mesh().nodes()) {
    if (!(n == NodeCoord{2, 2})) {
      pairs.push_back({n, NodeCoord{2, 2}});
    }
  }
  Config config = hermes.make_config(pairs, 4);
  const GenocRunResult run = hermes.run(config);
  EXPECT_TRUE(run.evacuated);
  EXPECT_EQ(run.measure_violations, 0u);
  EXPECT_TRUE(check_correctness(config, hermes.routing()).holds);
  EXPECT_TRUE(check_evacuation(config, run).holds);
}

TEST(Hermes, DependencyGraphIsTheClosedForm) {
  const HermesInstance hermes(3, 2, 1);
  const PortDepGraph dep = hermes.dependency_graph();
  const PortDepGraph expected = build_exy_dep(hermes.mesh());
  EXPECT_EQ(dep.graph.edges(), expected.graph.edges());
}

TEST(Hermes, ArrivalOrderRespectsCausality) {
  // A message to a nearby node arrives no later than an identical-length
  // competitor injected behind it at the same source.
  const HermesInstance hermes(4, 1, 1);
  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{3, 0}}, {NodeCoord{0, 0}, NodeCoord{3, 0}}},
      2);
  const GenocRunResult run = hermes.run(config);
  ASSERT_TRUE(run.evacuated);
  ASSERT_EQ(config.arrived().size(), 2u);
  // Travel 1 was registered first and shares the entire route: it must
  // complete strictly earlier.
  std::size_t step1 = 0;
  std::size_t step2 = 0;
  for (const Arrival& a : config.arrived()) {
    (a.id == 1 ? step1 : step2) = a.step;
  }
  EXPECT_LT(step1, step2);
}

}  // namespace
}  // namespace genoc
