// Tests for the destination-sharded escape-lane analysis: the pooled sweep
// must be BIT-IDENTICAL to the sequential one — graph edges, counters,
// availability verdict and the missing-escape witness — at every thread
// count, across every escape-lane preset of the instance registry.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "deadlock/escape.hpp"
#include "instance/network_instance.hpp"
#include "instance/registry.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/xy.hpp"
#include "util/thread_pool.hpp"

namespace genoc {
namespace {

void expect_identical(const EscapeAnalysis& pooled,
                      const EscapeAnalysis& sequential) {
  EXPECT_EQ(pooled.escape_always_available, sequential.escape_always_available);
  EXPECT_EQ(pooled.states_checked, sequential.states_checked);
  EXPECT_EQ(pooled.missing_states, sequential.missing_states);
  EXPECT_EQ(pooled.missing_escape, sequential.missing_escape);
  EXPECT_EQ(pooled.escape_graph.graph.vertex_count(),
            sequential.escape_graph.graph.vertex_count());
  EXPECT_EQ(pooled.escape_graph.graph.edges(),
            sequential.escape_graph.graph.edges());
  EXPECT_EQ(pooled.escape_graph_acyclic, sequential.escape_graph_acyclic);
  EXPECT_EQ(pooled.deadlock_free, sequential.deadlock_free);
  EXPECT_EQ(pooled.summary(), sequential.summary());
}

TEST(EscapeParallel, BitIdenticalOnEveryEscapePreset) {
  // Every registry preset that names an escape lane, including the 64x64
  // torus this PR's sharding targets. 1/4/8 threads all reduce to the same
  // merged analysis.
  std::size_t covered = 0;
  for (const InstanceSpec& spec : InstanceRegistry::global().presets()) {
    if (spec.escape.empty()) {
      continue;
    }
    SCOPED_TRACE(spec.name);
    ++covered;
    const NetworkInstance instance(spec);
    ASSERT_NE(instance.escape(), nullptr);
    const EscapeAnalysis sequential =
        analyze_escape(instance.routing(), *instance.escape());
    for (const std::size_t threads : {1u, 4u, 8u}) {
      SCOPED_TRACE(threads);
      ThreadPool pool(threads);
      const EscapeAnalysis pooled =
          analyze_escape(instance.routing(), *instance.escape(), &pool);
      expect_identical(pooled, sequential);
    }
  }
  EXPECT_GE(covered, 4u) << "escape-lane presets disappeared from the registry";
}

/// A deliberately broken escape lane: XY everywhere except that every
/// in-port state at nodes with x == 1 gets no hop at all. Deterministic
/// (at most one hop) but unavailable on many states spread across
/// destinations — exactly the shape that would expose witness
/// nondeterminism in a sharded sweep.
class HolePuncturedXY final : public RoutingFunction {
 public:
  explicit HolePuncturedXY(const Mesh2D& mesh)
      : RoutingFunction(mesh), xy_(mesh) {}

  std::string name() const override { return "XY (punctured)"; }
  bool is_deterministic() const override { return true; }

  void append_next_hops(const Port& current, const Port& dest,
                        std::vector<Port>& out) const override {
    if (current.x == 1 && current.dir == Direction::kIn) {
      return;  // no escape hop from any in-port of column 1
    }
    xy_.append_next_hops(current, dest, out);
  }

 private:
  XYRouting xy_;
};

TEST(EscapeParallel, MissingWitnessIsShardOrderInvariant) {
  const Mesh2D mesh(5, 4);
  const FullyAdaptiveRouting adaptive(mesh);
  const HolePuncturedXY escape(mesh);
  const EscapeAnalysis sequential = analyze_escape(adaptive, escape);
  ASSERT_FALSE(sequential.escape_always_available);
  ASSERT_GT(sequential.missing_states, 1u);
  ASSERT_FALSE(sequential.missing_escape.empty());
  for (const std::size_t threads : {2u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    ThreadPool pool(threads);
    const EscapeAnalysis pooled = analyze_escape(adaptive, escape, &pool);
    expect_identical(pooled, sequential);
  }
}

TEST(EscapeParallel, SummaryIsBoundedWithManyMissingStates) {
  // The summary must report the first witness and a count — never one
  // entry per missing state.
  const Mesh2D mesh(5, 4);
  const FullyAdaptiveRouting adaptive(mesh);
  const HolePuncturedXY escape(mesh);
  const EscapeAnalysis analysis = analyze_escape(adaptive, escape);
  const std::string text = analysis.summary();
  EXPECT_NE(text.find("missing at"), std::string::npos) << text;
  EXPECT_NE(text.find("more"), std::string::npos) << text;
  EXPECT_LT(text.size(), 256u) << text;
  EXPECT_NE(text.find(analysis.missing_escape), std::string::npos);
}

TEST(EscapeParallel, PoolOfOneMatchesNullptr) {
  // thread_count() == 1 still goes through the sharded code path; it must
  // degrade to the sequential result exactly.
  const Mesh2D mesh(4, 4);
  const FullyAdaptiveRouting adaptive(mesh);
  const XYRouting xy(mesh);
  ThreadPool pool(1);
  expect_identical(analyze_escape(adaptive, xy, &pool),
                   analyze_escape(adaptive, xy));
}

TEST(EscapeParallel, RepeatedPooledRunsAreStable) {
  const Mesh2D mesh(6, 6);
  const FullyAdaptiveRouting adaptive(mesh);
  const XYRouting xy(mesh);
  ThreadPool pool(4);
  const EscapeAnalysis first = analyze_escape(adaptive, xy, &pool);
  for (int i = 0; i < 3; ++i) {
    expect_identical(analyze_escape(adaptive, xy, &pool), first);
  }
}

}  // namespace
}  // namespace genoc
