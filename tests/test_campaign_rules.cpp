// The two campaign screening rules, each with a clean positive and seeded
// mutant negatives on their stable diagnostic codes:
//   - connectivity: node-level BFS over surviving links (net-disconnected)
//     plus the routing coverage audit (route-disconnected), and
//   - fault_sanity: the failed= token lint (sanity-fault-invalid /
//     -duplicate / -noncanonical / -count).
// Mutant fault lists are injected programmatically through the borrowing
// Analyzer::run overload where building the faulted topology itself would
// throw (invalid tokens), mirroring the test_analyze injection idiom.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "analyze/analyzer.hpp"
#include "analyze/rule.hpp"
#include "campaign/fault_model.hpp"
#include "instance/spec.hpp"
#include "routing/xy.hpp"
#include "topology/mesh.hpp"
#include "verify/artifacts.hpp"
#include "verify/diagnostics.hpp"

namespace genoc {
namespace {

InstanceSpec spec_or_die(const std::string& text) {
  std::string error;
  const std::optional<InstanceSpec> spec = parse_instance_spec(text, &error);
  EXPECT_TRUE(spec.has_value()) << text << ": " << error;
  return spec.value_or(InstanceSpec{});
}

Analyzer one_rule(const std::string& name) {
  std::string error;
  auto analyzer = Analyzer::from_rule_names({name}, &error);
  EXPECT_TRUE(analyzer.has_value()) << error;
  return std::move(analyzer).value();
}

AnalyzeReport run_rule(const std::string& rule, const InstanceSpec& spec) {
  AnalysisArtifacts artifacts(spec);
  return one_rule(rule).run(spec, artifacts, AnalyzeOptions{});
}

bool has_code(const AnalyzeReport& report, const std::string& code,
              Severity severity) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return d.code == code && d.severity == severity;
                     });
}

// ---------------------------------------------------------------------------
// connectivity
// ---------------------------------------------------------------------------

TEST(ConnectivityRule, CleanMeshAndCleanFaultedMeshPass) {
  const AnalyzeReport clean =
      run_rule("connectivity", spec_or_die("topology=mesh size=4x4 routing=xy"));
  EXPECT_EQ(clean.findings(), 0u);
  EXPECT_TRUE(has_code(clean, "net-connected", Severity::kInfo));

  // One failed link keeps the 4x4 connected: the node-level BFS still
  // reaches every terminal node, so the connectivity half stays positive
  // even though deterministic XY strands some traffic (the routing half
  // warns — covered by StrandedRoutingIsAWarningNotAScreen below).
  const AnalyzeReport faulted = run_rule(
      "connectivity",
      spec_or_die("topology=mesh size=4x4 routing=xy failed=1:E"));
  EXPECT_FALSE(has_code(faulted, "net-disconnected", Severity::kError));
  EXPECT_FALSE(has_code(faulted, "connectivity-broken", Severity::kError));
}

TEST(ConnectivityRule, ShatteredMeshIsAnError) {
  // Removing both links of a 2x2 corner isolates that node: the node-level
  // BFS finds two components, an error-severity net-disconnected (the code
  // the campaign screens on) plus the connectivity-broken summary.
  const AnalyzeReport report = run_rule(
      "connectivity",
      spec_or_die("topology=mesh size=2x2 routing=xy failed=1:S,2:E"));
  EXPECT_TRUE(has_code(report, "net-disconnected", Severity::kError));
  EXPECT_TRUE(has_code(report, "connectivity-broken", Severity::kError));
  EXPECT_GT(report.findings(), 0u);
}

TEST(ConnectivityRule, StrandedRoutingIsAWarningNotAScreen) {
  // failed=1:E keeps the 4x4 connected, but deterministic XY has no detour:
  // traffic that needed the link is stranded — route-disconnected, WARNING
  // severity (the campaign still verifies such variants: their deadlock
  // verdict on routed traffic stays well-posed).
  const AnalyzeReport report = run_rule(
      "connectivity",
      spec_or_die("topology=mesh size=4x4 routing=xy failed=1:E"));
  EXPECT_TRUE(has_code(report, "route-disconnected", Severity::kWarning));
  EXPECT_TRUE(has_code(report, "route-uncovered", Severity::kWarning));
  EXPECT_FALSE(has_code(report, "net-disconnected", Severity::kError));
  // Warnings only — nothing error-severity for the screen to reject.
  for (const Diagnostic& d : report.diagnostics) {
    EXPECT_NE(d.severity, Severity::kError) << d.code << ": " << d.message;
  }
}

// ---------------------------------------------------------------------------
// fault_sanity
// ---------------------------------------------------------------------------

TEST(FaultSanityRule, CanonicalFaultSetIsClean) {
  const AnalyzeReport report = run_rule(
      "fault_sanity",
      spec_or_die("topology=mesh size=4x4 routing=xy failed=0:E,2:S"));
  EXPECT_EQ(report.findings(), 0u);
  EXPECT_TRUE(has_code(report, "sanity-fault-ok", Severity::kInfo));
}

TEST(FaultSanityRule, UnfaultedSpecSkips) {
  const AnalyzeReport report = run_rule(
      "fault_sanity", spec_or_die("topology=mesh size=4x4 routing=xy"));
  ASSERT_EQ(report.rules.size(), 1u);
  EXPECT_FALSE(report.rules.front().ran);
  EXPECT_EQ(report.findings(), 0u);
}

TEST(FaultSanityRule, InvalidTokensAreErrors) {
  // Tokens that parse but name no physical link (off-grid node, boundary
  // side) cannot build a topology, so inject via the borrowing overload
  // over the unfaulted mesh.
  const Mesh2D mesh(4, 4);
  const XYRouting routing(mesh);
  InstanceSpec spec = spec_or_die("topology=mesh size=4x4 routing=xy");
  spec.failed_links = {"99:E", "not-a-token", "3:E"};
  const AnalyzeReport report =
      one_rule("fault_sanity").run(spec, mesh, routing, nullptr);
  EXPECT_TRUE(has_code(report, "sanity-fault-invalid", Severity::kError));
}

TEST(FaultSanityRule, DuplicateFaultsAreErrors) {
  // "0:E" and "1:W" are the two directed endpoints of the SAME physical
  // link — a duplicate after canonicalization, even though the raw tokens
  // differ.
  const Mesh2D mesh(4, 4);
  const XYRouting routing(mesh);
  InstanceSpec spec = spec_or_die("topology=mesh size=4x4 routing=xy");
  spec.failed_links = {"0:E", "1:W"};
  const AnalyzeReport report =
      one_rule("fault_sanity").run(spec, mesh, routing, nullptr);
  EXPECT_TRUE(has_code(report, "sanity-fault-duplicate", Severity::kError));
}

TEST(FaultSanityRule, NonCanonicalTokensAreWarnings) {
  // A lone "1:W" names a real link from its larger endpoint; the canonical
  // anchor is "0:E". parse_instance_spec would re-anchor it, so inject the
  // raw list programmatically.
  const Mesh2D mesh(4, 4);
  const XYRouting routing(mesh);
  InstanceSpec spec = spec_or_die("topology=mesh size=4x4 routing=xy");
  spec.failed_links = {"1:W"};
  const AnalyzeReport report =
      one_rule("fault_sanity").run(spec, mesh, routing, nullptr);
  EXPECT_TRUE(has_code(report, "sanity-fault-noncanonical", Severity::kWarning));
  EXPECT_FALSE(has_code(report, "sanity-fault-invalid", Severity::kError));
}

TEST(FaultSanityRule, ImplausiblyLargeFaultSetIsAWarning) {
  // More than half the fabric gone (a 4x4 has 24 links) is almost always a
  // generator bug, not a scenario — warn, don't block.
  InstanceSpec base = spec_or_die("topology=mesh size=4x4 routing=xy");
  const FaultModel model(base);
  const std::vector<std::string> many(model.links().begin(),
                                      model.links().begin() + 13);
  const AnalyzeReport report =
      run_rule("fault_sanity", base.with_failed_links(many));
  EXPECT_TRUE(has_code(report, "sanity-fault-count", Severity::kWarning));
  EXPECT_FALSE(has_code(report, "sanity-fault-duplicate", Severity::kError));
}

}  // namespace
}  // namespace genoc
