// Tests for the parametric HERMES mesh (paper Fig. 1): port existence at
// boundaries, dense id mapping, and node/port censuses.
#include <gtest/gtest.h>

#include "topology/mesh.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

// Expected number of existing ports: every node has 2 Local ports; each
// cardinal direction contributes 2 ports (IN and OUT) on each side of each
// internal link. A W x H mesh has W*(H-1) vertical and (W-1)*H horizontal
// links; each link has 2 ports at both ends (one IN, one OUT per end) -> 4.
std::size_t expected_port_count(std::int32_t w, std::int32_t h) {
  const std::size_t nodes = static_cast<std::size_t>(w) * h;
  const std::size_t links = static_cast<std::size_t>(w) * (h - 1) +
                            static_cast<std::size_t>(w - 1) * h;
  return 2 * nodes + 4 * links;
}

TEST(Mesh, RejectsDegenerateDimensions) {
  EXPECT_THROW(Mesh2D(0, 3), ContractViolation);
  EXPECT_THROW(Mesh2D(3, 0), ContractViolation);
  EXPECT_THROW(Mesh2D(1, 1), ContractViolation);
  EXPECT_NO_THROW(Mesh2D(1, 2));
  EXPECT_NO_THROW(Mesh2D(2, 1));
}

TEST(Mesh, PortCensusMatchesClosedForm) {
  for (std::int32_t w = 1; w <= 6; ++w) {
    for (std::int32_t h = 1; h <= 6; ++h) {
      if (w * h < 2) {
        continue;
      }
      const Mesh2D mesh(w, h);
      EXPECT_EQ(mesh.port_count(), expected_port_count(w, h))
          << w << "x" << h;
      EXPECT_EQ(mesh.node_count(), static_cast<std::size_t>(w) * h);
    }
  }
}

TEST(Mesh, TwoByTwoHasTwentyFourPorts) {
  // Each 2x2 node has L(2) + two cardinal directions (4 ports) = 6.
  const Mesh2D mesh(2, 2);
  EXPECT_EQ(mesh.port_count(), 24u);
}

TEST(Mesh, BoundaryPortsDoNotExist) {
  const Mesh2D mesh(3, 3);
  // North row (y = 0) has no North ports; south row none South; etc.
  EXPECT_FALSE(mesh.exists(Port{1, 0, PortName::kNorth, Direction::kIn}));
  EXPECT_FALSE(mesh.exists(Port{1, 0, PortName::kNorth, Direction::kOut}));
  EXPECT_FALSE(mesh.exists(Port{1, 2, PortName::kSouth, Direction::kOut}));
  EXPECT_FALSE(mesh.exists(Port{0, 1, PortName::kWest, Direction::kIn}));
  EXPECT_FALSE(mesh.exists(Port{2, 1, PortName::kEast, Direction::kOut}));
  // Interior node has all ten ports.
  for (const PortName name : {PortName::kEast, PortName::kWest,
                              PortName::kNorth, PortName::kSouth,
                              PortName::kLocal}) {
    for (const Direction d : {Direction::kIn, Direction::kOut}) {
      EXPECT_TRUE(mesh.exists(Port{1, 1, name, d}));
    }
  }
  // Local ports exist everywhere.
  for (const NodeCoord n : mesh.nodes()) {
    EXPECT_TRUE(mesh.exists(mesh.local_in(n.x, n.y)));
    EXPECT_TRUE(mesh.exists(mesh.local_out(n.x, n.y)));
  }
}

TEST(Mesh, OffMeshPortsDoNotExist) {
  const Mesh2D mesh(2, 2);
  EXPECT_FALSE(mesh.exists(Port{-1, 0, PortName::kLocal, Direction::kIn}));
  EXPECT_FALSE(mesh.exists(Port{0, 5, PortName::kLocal, Direction::kIn}));
  EXPECT_FALSE(mesh.contains_node(2, 0));
  EXPECT_TRUE(mesh.contains_node(1, 1));
}

TEST(Mesh, IdsAreDenseAndRoundTrip) {
  const Mesh2D mesh(4, 3);
  std::vector<bool> seen(mesh.port_count(), false);
  for (const Port& p : mesh.ports()) {
    const PortId id = mesh.id(p);
    ASSERT_LT(id, mesh.port_count());
    EXPECT_FALSE(seen[id]) << "duplicate id " << id;
    seen[id] = true;
    EXPECT_EQ(mesh.port(id), p);
  }
  for (const bool s : seen) {
    EXPECT_TRUE(s);
  }
}

TEST(Mesh, IdOfMissingPortThrows) {
  const Mesh2D mesh(2, 2);
  EXPECT_THROW(mesh.id(Port{0, 0, PortName::kWest, Direction::kIn}),
               ContractViolation);
  EXPECT_THROW(mesh.id(Port{7, 7, PortName::kLocal, Direction::kIn}),
               ContractViolation);
  EXPECT_THROW(mesh.port(static_cast<PortId>(mesh.port_count())),
               ContractViolation);
}

TEST(Mesh, SourcesAndDestinationsAreTheLocalPorts) {
  const Mesh2D mesh(3, 2);
  const auto sources = mesh.sources();
  const auto dests = mesh.destinations();
  ASSERT_EQ(sources.size(), mesh.node_count());
  ASSERT_EQ(dests.size(), mesh.node_count());
  for (const Port& s : sources) {
    EXPECT_EQ(s.name, PortName::kLocal);
    EXPECT_EQ(s.dir, Direction::kIn);
  }
  for (const Port& d : dests) {
    EXPECT_EQ(d.name, PortName::kLocal);
    EXPECT_EQ(d.dir, Direction::kOut);
  }
}

TEST(Mesh, DegenerateRowAndColumnMeshes) {
  const Mesh2D row(5, 1);
  EXPECT_EQ(row.port_count(), expected_port_count(5, 1));
  EXPECT_FALSE(row.exists(Port{2, 0, PortName::kNorth, Direction::kIn}));
  EXPECT_FALSE(row.exists(Port{2, 0, PortName::kSouth, Direction::kIn}));
  EXPECT_TRUE(row.exists(Port{2, 0, PortName::kEast, Direction::kIn}));

  const Mesh2D column(1, 5);
  EXPECT_FALSE(column.exists(Port{0, 2, PortName::kEast, Direction::kIn}));
  EXPECT_TRUE(column.exists(Port{0, 2, PortName::kSouth, Direction::kOut}));
}

TEST(Mesh, NodesAreRowMajor) {
  const Mesh2D mesh(3, 2);
  const auto nodes = mesh.nodes();
  ASSERT_EQ(nodes.size(), 6u);
  EXPECT_EQ(nodes[0], (NodeCoord{0, 0}));
  EXPECT_EQ(nodes[1], (NodeCoord{1, 0}));
  EXPECT_EQ(nodes[3], (NodeCoord{0, 1}));
  EXPECT_EQ(nodes[5], (NodeCoord{2, 1}));
}

}  // namespace
}  // namespace genoc
