// Tests for the GeNoC interpreter (paper Sec. III.B): termination,
// evacuation, deadlock detection, and the (C-5) runtime audit.
#include <gtest/gtest.h>

#include "core/genoc.hpp"
#include "core/hermes.hpp"
#include "deadlock/witness.hpp"
#include "routing/fully_adaptive.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

TEST(Genoc, EmptyConfigurationTerminatesImmediately) {
  const HermesInstance hermes(2, 2, 1);
  Config config = hermes.make_config({}, 1);
  const GenocRunResult result = hermes.run(config);
  EXPECT_TRUE(result.evacuated);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_EQ(result.initial_measure, 0u);
}

TEST(Genoc, SingleTravelEvacuates) {
  const HermesInstance hermes(3, 3, 2);
  Config config =
      hermes.make_config({{NodeCoord{0, 0}, NodeCoord{2, 2}}}, 4);
  GenocOptions options;
  options.keep_measure_trace = true;
  const GenocRunResult result = hermes.run(config, options);
  EXPECT_TRUE(result.evacuated);
  EXPECT_EQ(result.measure_violations, 0u);
  EXPECT_EQ(result.final_measure, 0u);
  EXPECT_EQ(config.arrived().size(), 1u);
  // The measure trace is strictly decreasing.
  ASSERT_EQ(result.measure_trace.size(), result.steps + 1);
  for (std::size_t i = 1; i < result.measure_trace.size(); ++i) {
    EXPECT_LT(result.measure_trace[i], result.measure_trace[i - 1]);
  }
  // Total flit moves equal the initial measure (each move costs one hop).
  EXPECT_EQ(result.total_flit_moves, result.initial_measure);
}

TEST(Genoc, ManyTravelsOnTinyBuffersStillEvacuate) {
  const HermesInstance hermes(4, 4, 1);
  std::vector<TrafficPair> pairs;
  for (const NodeCoord n : hermes.mesh().nodes()) {
    pairs.push_back({n, NodeCoord{3 - n.x, 3 - n.y}});
  }
  Config config = hermes.make_config(pairs, 6);
  const GenocRunResult result = hermes.run(config);
  EXPECT_TRUE(result.evacuated);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(result.measure_violations, 0u);
  EXPECT_EQ(config.arrived().size(), pairs.size());
}

TEST(Genoc, DetectsTheClassicFourPacketWormholeDeadlock) {
  // Four worms chasing each other around the 2x2 ring with 1-flit buffers:
  // the canonical wormhole deadlock, built from ordinary travels (not
  // placed mid-network) and reached by honest simulation.
  const Mesh2D mesh(2, 2);
  const FullyAdaptiveRouting fa(mesh);
  Config config(mesh, 1);
  auto add = [&](TravelId id, NodeCoord s, NodeCoord d,
                 std::initializer_list<Port> via) {
    Route route{mesh.local_in(s.x, s.y)};
    route.insert(route.end(), via.begin(), via.end());
    route.push_back(mesh.local_out(d.x, d.y));
    config.add_travel(make_travel_with_route(id, fa, route, 4));
  };
  using P = Port;
  // Each packet turns one corner of the ring clockwise.
  add(1, {0, 0}, {1, 1},
      {P{0, 0, PortName::kEast, Direction::kOut},
       P{1, 0, PortName::kWest, Direction::kIn},
       P{1, 0, PortName::kSouth, Direction::kOut},
       P{1, 1, PortName::kNorth, Direction::kIn}});
  add(2, {1, 0}, {0, 1},
      {P{1, 0, PortName::kSouth, Direction::kOut},
       P{1, 1, PortName::kNorth, Direction::kIn},
       P{1, 1, PortName::kWest, Direction::kOut},
       P{0, 1, PortName::kEast, Direction::kIn}});
  add(3, {1, 1}, {0, 0},
      {P{1, 1, PortName::kWest, Direction::kOut},
       P{0, 1, PortName::kEast, Direction::kIn},
       P{0, 1, PortName::kNorth, Direction::kOut},
       P{0, 0, PortName::kSouth, Direction::kIn}});
  add(4, {0, 1}, {1, 0},
      {P{0, 1, PortName::kNorth, Direction::kOut},
       P{0, 0, PortName::kSouth, Direction::kIn},
       P{0, 0, PortName::kEast, Direction::kOut},
       P{1, 0, PortName::kWest, Direction::kIn}});

  const IdentityInjection iid;
  const WormholeSwitching wh;
  const FlitLevelMeasure mu;
  const GenocInterpreter interpreter(iid, wh, mu);
  const GenocRunResult result = interpreter.run(config);
  EXPECT_TRUE(result.deadlocked);
  EXPECT_FALSE(result.evacuated);
  EXPECT_EQ(result.measure_violations, 0u);

  // Necessity direction of Theorem 1 on the honestly-reached deadlock: the
  // blocked ports form a cycle of the fully-adaptive dependency graph.
  const DeadlockCycle cycle = extract_cycle_from_deadlock(wh, config.state());
  EXPECT_GE(cycle.ports.size(), 4u);
  const PortDepGraph dep = build_dep_graph(fa);
  EXPECT_TRUE(cycle_lies_in_dep_graph(dep, cycle.ports));
}

TEST(Genoc, TerminationGuardFiresOnNonDecreasingMeasure) {
  // A (deliberately broken) measure that never decreases must trip the
  // interpreter's hard termination bound rather than loop forever.
  class ConstantMeasure final : public TerminationMeasure {
   public:
    std::string name() const override { return "constant"; }
    std::uint64_t value(const Config&) const override { return 42; }
  };
  const HermesInstance hermes(3, 3, 2);
  Config config =
      hermes.make_config({{NodeCoord{0, 0}, NodeCoord{2, 2}}}, 2);
  const IdentityInjection iid;
  const ConstantMeasure broken;
  const GenocInterpreter interpreter(iid, hermes.switching(), broken);
  GenocOptions options;
  options.max_steps = 3;  // too few to finish
  EXPECT_THROW(interpreter.run(config, options), ContractViolation);
}

TEST(Genoc, AuditCountsViolationsOfABrokenMeasure) {
  class ConstantMeasure final : public TerminationMeasure {
   public:
    std::string name() const override { return "constant"; }
    std::uint64_t value(const Config&) const override { return 42; }
  };
  const HermesInstance hermes(3, 3, 2);
  Config config =
      hermes.make_config({{NodeCoord{0, 0}, NodeCoord{1, 0}}}, 1);
  const IdentityInjection iid;
  const ConstantMeasure broken;
  const GenocInterpreter interpreter(iid, hermes.switching(), broken);
  GenocOptions options;
  options.max_steps = 1000;
  const GenocRunResult result = interpreter.run(config, options);
  EXPECT_TRUE(result.evacuated);
  EXPECT_GT(result.measure_violations, 0u);
}

}  // namespace
}  // namespace genoc
