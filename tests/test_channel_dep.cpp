// Tests for the Dally–Seitz channel dependency graph baseline and its
// agreement with the port-level graph on acyclicity (ablation A2).
#include <gtest/gtest.h>

#include "deadlock/channel_dep.hpp"
#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/west_first.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"

namespace genoc {
namespace {

std::size_t expected_channel_count(std::int32_t w, std::int32_t h) {
  // One channel per direction per link: 2 * (#horizontal + #vertical links).
  return 2 * (static_cast<std::size_t>(w - 1) * h +
              static_cast<std::size_t>(w) * (h - 1));
}

TEST(ChannelDep, VertexCensus) {
  for (const auto& [w, h] : {std::pair{2, 2}, std::pair{3, 3}, std::pair{4, 2}}) {
    const Mesh2D mesh(w, h);
    const XYRouting xy(mesh);
    const ChannelDepGraph cdg = build_channel_dep_graph(xy);
    EXPECT_EQ(cdg.channels.size(), expected_channel_count(w, h));
    EXPECT_EQ(cdg.graph.vertex_count(), cdg.channels.size());
    for (const Port& c : cdg.channels) {
      EXPECT_EQ(c.dir, Direction::kOut);
      EXPECT_NE(c.name, PortName::kLocal);
    }
  }
}

TEST(ChannelDep, XYChannelGraphIsAcyclic) {
  const Mesh2D mesh(4, 4);
  const XYRouting xy(mesh);
  const ChannelDepGraph cdg = build_channel_dep_graph(xy);
  EXPECT_TRUE(is_acyclic(cdg.graph));
  EXPECT_GT(cdg.graph.edge_count(), 0u);
}

TEST(ChannelDep, XYHasNoVerticalToHorizontalChannelEdges) {
  const Mesh2D mesh(3, 3);
  const XYRouting xy(mesh);
  const ChannelDepGraph cdg = build_channel_dep_graph(xy);
  auto vertical = [](const Port& c) {
    return c.name == PortName::kNorth || c.name == PortName::kSouth;
  };
  for (const auto& [from, to] : cdg.graph.edges()) {
    if (vertical(cdg.channels[from])) {
      EXPECT_TRUE(vertical(cdg.channels[to]))
          << cdg.label(from) << " -> " << cdg.label(to);
    }
  }
}

TEST(ChannelDep, AgreementWithPortGraphOnAcyclicity) {
  // The channel graph is the out-port projection of the port graph, so both
  // must agree on the deadlock verdict for every routing function.
  for (const auto& [w, h] : {std::pair{2, 2}, std::pair{3, 3}, std::pair{4, 3}}) {
    const Mesh2D mesh(w, h);
    const XYRouting xy(mesh);
    const YXRouting yx(mesh);
    const WestFirstRouting wf(mesh);
    const FullyAdaptiveRouting fa(mesh);
    for (const RoutingFunction* routing :
         std::initializer_list<const RoutingFunction*>{&xy, &yx, &wf, &fa}) {
      const bool port_acyclic = is_acyclic(build_dep_graph(*routing).graph);
      const bool channel_acyclic =
          is_acyclic(build_channel_dep_graph(*routing).graph);
      EXPECT_EQ(port_acyclic, channel_acyclic)
          << routing->name() << " on " << w << "x" << h;
    }
  }
}

TEST(ChannelDep, PortGraphRefinesChannelGraph) {
  // Granularity comparison (ablation A2): the port graph has strictly more
  // vertices — it adds IN ports and the Local source/sink structure.
  const Mesh2D mesh(4, 4);
  const XYRouting xy(mesh);
  const PortDepGraph port = build_exy_dep(mesh);
  const ChannelDepGraph channel = build_channel_dep_graph(xy);
  EXPECT_GT(port.graph.vertex_count(), channel.graph.vertex_count());
  EXPECT_GT(port.graph.edge_count(), channel.graph.edge_count());
}

TEST(ChannelDep, DotRendering) {
  const Mesh2D mesh(2, 2);
  const XYRouting xy(mesh);
  const ChannelDepGraph cdg = build_channel_dep_graph(xy);
  const std::string dot = cdg.to_dot("cdg");
  EXPECT_NE(dot.find("digraph \"cdg\""), std::string::npos);
  EXPECT_NE(dot.find("OUT"), std::string::npos);
}

}  // namespace
}  // namespace genoc
