// BatchRunner tests: the shared pool's parallel_for contract (full
// coverage, nesting without deadlock, exception propagation) and the
// headline determinism guarantee — the sharded dependency-graph build and
// the parallel instance sweep are bit-identical to their sequential
// counterparts.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "instance/batch_runner.hpp"
#include "instance/network_instance.hpp"
#include "instance/registry.hpp"
#include "routing/odd_even.hpp"
#include "routing/torus_xy.hpp"
#include "routing/xy.hpp"
#include "topology/torus.hpp"

namespace genoc {
namespace {

TEST(BatchRunner, ParallelForCoversEveryIndexExactlyOnce) {
  BatchRunner runner(4);
  EXPECT_EQ(runner.thread_count(), 4u);
  for (const std::size_t count : {0u, 1u, 7u, 64u, 1000u}) {
    for (const std::size_t grain : {1u, 3u, 64u, 5000u}) {
      std::vector<std::atomic<int>> hits(count);
      runner.parallel_for(count, grain,
                          [&hits](std::size_t begin, std::size_t end) {
                            for (std::size_t i = begin; i < end; ++i) {
                              hits[i].fetch_add(1);
                            }
                          });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " count " << count
                                     << " grain " << grain;
      }
    }
  }
}

TEST(BatchRunner, NestedParallelForDoesNotDeadlock) {
  BatchRunner runner(4);
  std::atomic<int> total{0};
  runner.parallel_for(8, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      runner.parallel_for(16, 4, [&total](std::size_t b, std::size_t e) {
        total.fetch_add(static_cast<int>(e - b));
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(BatchRunner, PropagatesTheFirstException) {
  BatchRunner runner(3);
  EXPECT_THROW(
      runner.parallel_for(32, 1,
                          [](std::size_t begin, std::size_t) {
                            if (begin == 17) {
                              throw std::runtime_error("shard failed");
                            }
                          }),
      std::runtime_error);
  // The pool survives a throwing loop and remains usable.
  std::atomic<int> sum{0};
  runner.parallel_for(10, 2, [&sum](std::size_t b, std::size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 10);
}

TEST(BatchRunner, SingleThreadedPoolStillWorks) {
  BatchRunner runner(1);  // caller-only: no workers at all
  EXPECT_EQ(runner.thread_count(), 1u);
  std::atomic<int> sum{0};
  runner.parallel_for(100, 7, [&sum](std::size_t b, std::size_t e) {
    sum.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(sum.load(), 100);
}

/// The determinism bar from the issue: parallel results bit-identical to
/// sequential — equal vertex counts, equal CSR edge lists.
void expect_identical(const RoutingFunction& routing, BatchRunner& runner) {
  const PortDepGraph sequential = build_dep_graph(routing);
  const PortDepGraph parallel = build_dep_graph_parallel(routing, runner);
  ASSERT_EQ(parallel.graph.vertex_count(), sequential.graph.vertex_count());
  ASSERT_EQ(parallel.graph.edge_count(), sequential.graph.edge_count());
  EXPECT_EQ(parallel.graph.edges(), sequential.graph.edges())
      << routing.name();
}

TEST(BatchRunner, ParallelDepGraphIsBitIdenticalToSequential) {
  BatchRunner runner(4);
  {
    const Mesh2D mesh(12, 12);
    expect_identical(XYRouting(mesh), runner);
  }
  {
    const Mesh2D mesh(9, 7);
    expect_identical(OddEvenRouting(mesh), runner);  // lazy-closure path
  }
  {
    const Torus2D torus(6);
    expect_identical(TorusXYRouting(torus), runner);  // cyclic graph
  }
}

TEST(BatchRunner, RepeatedParallelBuildsAreStable) {
  BatchRunner runner(4);
  const Mesh2D mesh(8, 8);
  const XYRouting routing(mesh);
  const PortDepGraph first = build_dep_graph_parallel(routing, runner);
  for (int i = 0; i < 3; ++i) {
    const PortDepGraph again = build_dep_graph_parallel(routing, runner);
    EXPECT_EQ(again.graph.edges(), first.graph.edges());
  }
}

TEST(BatchRunner, BatchVerifyMatchesSequentialVerdicts) {
  // The sweep population, capped at the 64x64 scale: mesh128-xy (now in
  // the default sweep — the heavy jail is retired) costs ~10 s per
  // sequential+parallel pass under ASan and adds no determinism coverage
  // the 64x64 presets don't already provide.
  auto presets = InstanceRegistry::global().sweep_presets();
  std::erase_if(presets, [](const InstanceSpec& spec) {
    return spec.node_count() > InstanceRegistry::kOracleNodeLimit;
  });
  BatchRunner runner(4);
  const std::vector<InstanceVerdict> parallel =
      verify_instances(presets, &runner);
  const std::vector<InstanceVerdict> sequential =
      verify_instances(presets, nullptr);
  ASSERT_EQ(parallel.size(), presets.size());
  ASSERT_EQ(sequential.size(), presets.size());
  for (std::size_t i = 0; i < presets.size(); ++i) {
    EXPECT_EQ(parallel[i].instance, presets[i].name);
    EXPECT_EQ(parallel[i].instance, sequential[i].instance);
    EXPECT_EQ(parallel[i].deadlock_free, sequential[i].deadlock_free);
    EXPECT_EQ(parallel[i].dep_acyclic, sequential[i].dep_acyclic);
    EXPECT_EQ(parallel[i].edges, sequential[i].edges);
    EXPECT_EQ(parallel[i].ports, sequential[i].ports);
    EXPECT_EQ(parallel[i].method, sequential[i].method);
    EXPECT_EQ(parallel[i].note, sequential[i].note);
    EXPECT_EQ(parallel[i].checks, sequential[i].checks);
  }
}

TEST(BatchRunner, LargeInstanceVerifiesOnThePool) {
  // The acceptance-bar shape: a 32x32 spec through the parallel pipeline.
  std::string error;
  const auto spec = InstanceRegistry::global().resolve(
      "topology=mesh size=32x32 routing=xy", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  BatchRunner runner(4);
  InstanceVerifyOptions options;
  options.runner = &runner;
  const InstanceVerdict verdict = NetworkInstance(*spec).verify(options);
  EXPECT_TRUE(verdict.deadlock_free) << verdict.note;
  EXPECT_EQ(verdict.ports, NetworkInstance(*spec).mesh().port_count());
}

}  // namespace
}  // namespace genoc
