// Tests for the port dependency graph (paper Sec. IV.A, V.6, Fig. 3):
// next_outs, the closed-form Exy_dep, and its equality with the generic
// construction.
#include <gtest/gtest.h>

#include <algorithm>

#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "routing/xy.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

TEST(NextOuts, MatchesPaperCaseStructureOnInteriorNode) {
  const Mesh2D mesh(3, 3);
  auto outs_of = [&](PortName name) {
    const Port p{1, 1, name, Direction::kIn};
    auto outs = next_outs_xy(mesh, p);
    std::vector<PortName> names;
    for (const Port& q : outs) {
      EXPECT_EQ(q.dir, Direction::kOut);
      EXPECT_EQ(q.x, 1);
      EXPECT_EQ(q.y, 1);
      names.push_back(q.name);
    }
    std::sort(names.begin(), names.end());
    return names;
  };
  auto sorted = [](std::vector<PortName> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  // L-in depends on every out-port.
  EXPECT_EQ(outs_of(PortName::kLocal),
            sorted({PortName::kEast, PortName::kWest, PortName::kNorth,
                    PortName::kSouth, PortName::kLocal}));
  // E-in (westbound): W, N, S, L — never E (no U-turn).
  EXPECT_EQ(outs_of(PortName::kEast),
            sorted({PortName::kWest, PortName::kNorth, PortName::kSouth,
                    PortName::kLocal}));
  // W-in (eastbound): E, N, S, L.
  EXPECT_EQ(outs_of(PortName::kWest),
            sorted({PortName::kEast, PortName::kNorth, PortName::kSouth,
                    PortName::kLocal}));
  // N-in (southbound): S, L only — XY forbids vertical-to-horizontal turns.
  EXPECT_EQ(outs_of(PortName::kNorth),
            sorted({PortName::kSouth, PortName::kLocal}));
  // S-in (northbound): N, L only.
  EXPECT_EQ(outs_of(PortName::kSouth),
            sorted({PortName::kNorth, PortName::kLocal}));
}

TEST(NextOuts, FiltersBoundaryPorts) {
  const Mesh2D mesh(2, 2);
  // L-in at the north-west corner (0,0): only E, S, L out-ports exist.
  const auto outs = next_outs_xy(mesh, mesh.local_in(0, 0));
  EXPECT_EQ(outs.size(), 3u);
  for (const Port& q : outs) {
    EXPECT_TRUE(mesh.exists(q));
  }
}

TEST(NextOuts, RequiresInPort) {
  const Mesh2D mesh(2, 2);
  EXPECT_THROW(next_outs_xy(mesh, mesh.local_out(0, 0)), ContractViolation);
}

TEST(DepGraph, Fig3CensusFor2x2) {
  // The paper's Fig. 3 renders Exy_dep of a 2x2 mesh: 24 vertices.
  const Mesh2D mesh(2, 2);
  const PortDepGraph dep = build_exy_dep(mesh);
  EXPECT_EQ(dep.graph.vertex_count(), 24u);
  // Count edges by the closed form: each in-port contributes
  // |next_outs|, each cardinal out-port exactly 1, Local OUT nothing.
  std::size_t expected_edges = 0;
  for (const Port& p : mesh.ports()) {
    if (p.dir == Direction::kIn) {
      expected_edges += next_outs_xy(mesh, p).size();
    } else if (p.name != PortName::kLocal) {
      expected_edges += 1;
    }
  }
  EXPECT_EQ(dep.graph.edge_count(), expected_edges);
  EXPECT_EQ(dep.graph.edge_count(), 32u);  // the census of the figure
  // And it is acyclic (the content of (C-3)).
  EXPECT_TRUE(is_acyclic(dep.graph));
}

TEST(DepGraph, LocalOutIsASink) {
  const Mesh2D mesh(3, 3);
  const PortDepGraph dep = build_exy_dep(mesh);
  for (const Port& p : mesh.ports()) {
    if (p.name == PortName::kLocal && p.dir == Direction::kOut) {
      EXPECT_EQ(dep.graph.out_degree(mesh.id(p)), 0u);
    }
  }
}

TEST(DepGraph, EveryVertexExceptSinksHasAnOutEdge) {
  const Mesh2D mesh(3, 3);
  const PortDepGraph dep = build_exy_dep(mesh);
  for (const Port& p : mesh.ports()) {
    const bool sink = p.name == PortName::kLocal && p.dir == Direction::kOut;
    if (!sink) {
      EXPECT_GT(dep.graph.out_degree(mesh.id(p)), 0u) << to_string(p);
    }
  }
}

class DepGraphSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DepGraphSweep, GenericConstructionEqualsClosedForm) {
  const auto [w, h] = GetParam();
  const Mesh2D mesh(w, h);
  const XYRouting xy(mesh);
  const PortDepGraph generic = build_dep_graph(xy);
  const PortDepGraph closed = build_exy_dep(mesh);
  EXPECT_EQ(generic.graph.edges(), closed.graph.edges())
      << "on " << w << "x" << h;
}

INSTANTIATE_TEST_SUITE_P(Meshes, DepGraphSweep,
                         ::testing::Values(std::pair{1, 2}, std::pair{2, 1},
                                           std::pair{2, 2}, std::pair{3, 2},
                                           std::pair{3, 3}, std::pair{4, 4},
                                           std::pair{5, 2}, std::pair{2, 5},
                                           std::pair{6, 6}));

TEST(DepGraph, DotRenderingContainsPaperNotation) {
  const Mesh2D mesh(2, 2);
  const PortDepGraph dep = build_exy_dep(mesh);
  const std::string dot = dep.to_dot("fig3");
  EXPECT_NE(dot.find("digraph \"fig3\""), std::string::npos);
  EXPECT_NE(dot.find("<0,0,L,IN>"), std::string::npos);
  EXPECT_NE(dot.find("<1,1,L,OUT>"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace genoc
