// Tests for the injection constituent: Iid and (C-4), plus the staged
// extension (paper Sec. IX future work).
#include <gtest/gtest.h>

#include "core/hermes.hpp"
#include "core/injection.hpp"
#include "sim/simulator.hpp"

namespace genoc {
namespace {

TEST(Injection, IdentityLeavesEveryConfigurationUntouched) {
  // Constraint (C-4): I(σ) = σ, across fresh / mid-run / finished states.
  const HermesInstance hermes(3, 3, 2);
  const IdentityInjection iid;
  EXPECT_EQ(iid.name(), "Iid");

  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 2}}, {NodeCoord{1, 0}, NodeCoord{0, 2}}},
      3);
  for (int step = 0; step < 40; ++step) {
    const std::uint64_t before = config.digest();
    iid.inject(config);
    EXPECT_EQ(config.digest(), before) << "at step " << step;
    if (config.all_arrived()) {
      break;
    }
    const StepResult res = hermes.switching().step(config.state());
    config.record_arrivals(res.delivered);
    config.advance_step();
  }
  EXPECT_TRUE(config.all_arrived());
}

TEST(Injection, StagedReleasesAtTheScheduledStep) {
  const HermesInstance hermes(3, 3, 2);
  const StagedInjection staged;
  const XYRouting& xy = hermes.routing();
  Config config(hermes.mesh(), 2);
  config.add_travel(make_travel(1, xy, {0, 0}, {2, 2}, 2));
  config.add_staged_travel(make_travel(2, xy, {2, 2}, {0, 0}, 2), 5);

  staged.inject(config);  // step 0 < 5: not yet
  EXPECT_FALSE(config.state().has_packet(2));
  for (int s = 0; s < 5; ++s) {
    config.advance_step();
  }
  staged.inject(config);
  EXPECT_TRUE(config.state().has_packet(2));
}

TEST(Injection, StagedRunEvacuatesEverything) {
  // The future-work scenario: travels arriving over time still all leave
  // the network.
  const HermesInstance hermes(3, 3, 2);
  const StagedInjection staged;
  const FlitLevelMeasure measure;
  Config config(hermes.mesh(), 2);
  const XYRouting& xy = hermes.routing();
  config.add_travel(make_travel(1, xy, {0, 0}, {2, 1}, 3));
  config.add_staged_travel(make_travel(2, xy, {1, 2}, {0, 0}, 3), 4);
  config.add_staged_travel(make_travel(3, xy, {2, 0}, {0, 2}, 3), 9);

  const GenocInterpreter interpreter(staged, hermes.switching(), measure);
  GenocOptions options;
  options.max_steps = 500;
  const GenocRunResult result = interpreter.run(config, options);
  EXPECT_TRUE(result.evacuated);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_EQ(config.arrived().size(), 3u);
  EXPECT_EQ(result.measure_violations, 0u);
}

}  // namespace
}  // namespace genoc
