// Tests for the Theorem-1 witness constructions: cycle -> deadlock
// configuration (sufficiency) and deadlock -> cycle (necessity), executed
// on the real network state with the real wormhole policy.
#include <gtest/gtest.h>

#include "deadlock/constraints.hpp"
#include "deadlock/witness.hpp"
#include "graph/johnson.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/xy.hpp"
#include "switching/wormhole.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

class WitnessTest : public ::testing::Test {
 protected:
  WormholeSwitching wh_;
};

TEST_F(WitnessTest, CycleBecomesDeadlockBecomesCycle) {
  // Full round trip on the deadlock-prone baseline, across buffer depths.
  const Mesh2D mesh(2, 2);
  const FullyAdaptiveRouting adaptive(mesh);
  const PortDepGraph dep = build_dep_graph(adaptive);
  const auto cycle = find_cycle(dep.graph);
  ASSERT_TRUE(cycle.has_value());

  for (const std::size_t capacity : {1u, 2u, 4u}) {
    DeadlockConstruction witness =
        build_deadlock_from_cycle(adaptive, dep, *cycle, capacity);
    // Sufficiency: the constructed configuration satisfies Ω.
    EXPECT_TRUE(is_deadlock(wh_, witness.state)) << "capacity " << capacity;
    EXPECT_EQ(witness.packets.size(), cycle->size());
    // Every cycle port is completely full.
    for (const std::size_t v : *cycle) {
      EXPECT_TRUE(witness.state.port_full(static_cast<PortId>(v)));
    }
    // Necessity: a dependency cycle is recoverable from the deadlock.
    const DeadlockCycle recovered =
        extract_cycle_from_deadlock(wh_, witness.state);
    EXPECT_GE(recovered.ports.size(), 2u);
    EXPECT_TRUE(cycle_lies_in_dep_graph(dep, recovered.ports));
  }
}

TEST_F(WitnessTest, EveryEnumeratedCycleIsRealizable) {
  // Theorem 1's sufficiency direction holds for EVERY cycle, not just the
  // first one found: sample several and realize each as a deadlock.
  const Mesh2D mesh(3, 2);
  const FullyAdaptiveRouting adaptive(mesh);
  const PortDepGraph dep = build_dep_graph(adaptive);
  const auto cycles = enumerate_cycles(dep.graph, 12);
  ASSERT_GE(cycles.size(), 3u);
  for (const CycleWitness& cycle : cycles) {
    DeadlockConstruction witness =
        build_deadlock_from_cycle(adaptive, dep, cycle, 2);
    EXPECT_TRUE(is_deadlock(wh_, witness.state));
  }
}

TEST_F(WitnessTest, WitnessPacketsFollowValidRoutes) {
  const Mesh2D mesh(2, 2);
  const FullyAdaptiveRouting adaptive(mesh);
  const PortDepGraph dep = build_dep_graph(adaptive);
  const auto cycle = find_cycle(dep.graph);
  ASSERT_TRUE(cycle.has_value());
  const DeadlockConstruction witness =
      build_deadlock_from_cycle(adaptive, dep, *cycle, 2);
  ASSERT_EQ(witness.destinations.size(), witness.packets.size());
  for (std::size_t i = 0; i < witness.packets.size(); ++i) {
    const PacketSpec& spec = witness.packets[i];
    // The (C-2) witness: the route's first hop is the next cycle port.
    EXPECT_EQ(spec.route[0], dep.port_of((*cycle)[i]));
    EXPECT_EQ(spec.route[1],
              dep.port_of((*cycle)[(i + 1) % cycle->size()]));
    EXPECT_EQ(spec.route.back(), witness.destinations[i]);
    EXPECT_TRUE(is_valid_route(adaptive, spec.route, spec.route.front(),
                               spec.route.back()));
  }
}

TEST_F(WitnessTest, RejectsInvalidCycleInput) {
  const Mesh2D mesh(2, 2);
  const FullyAdaptiveRouting adaptive(mesh);
  const PortDepGraph dep = build_dep_graph(adaptive);
  EXPECT_THROW(build_deadlock_from_cycle(adaptive, dep, {}, 2),
               ContractViolation);
  EXPECT_THROW(build_deadlock_from_cycle(adaptive, dep, {0, 1, 2}, 2),
               ContractViolation);  // almost surely not a real cycle
}

TEST_F(WitnessTest, UnrealizableCycleIsRejectedViaC2) {
  // A cycle that exists as a graph cycle but is NOT realizable by the
  // routing function: take the fully-adaptive cycle but pair it with XY
  // routing — (C-2) witnesses are missing and the builder must refuse.
  const Mesh2D mesh(2, 2);
  const FullyAdaptiveRouting adaptive(mesh);
  const XYRouting xy(mesh);
  const PortDepGraph adaptive_dep = build_dep_graph(adaptive);
  const auto cycle = find_cycle(adaptive_dep.graph);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_THROW(build_deadlock_from_cycle(xy, adaptive_dep, *cycle, 2),
               ContractViolation);
}

TEST_F(WitnessTest, ExtractRequiresActualDeadlock) {
  const Mesh2D mesh(2, 2);
  const XYRouting xy(mesh);
  NetworkState st(mesh, 2);
  st.register_packet(
      {1, compute_route(xy, mesh.local_in(0, 0), mesh.local_out(1, 1)), 2});
  // Not a deadlock: the packet can still move.
  EXPECT_THROW(extract_cycle_from_deadlock(wh_, st), ContractViolation);
}

TEST_F(WitnessTest, CycleLiesInDepGraphRejectsJunk) {
  const Mesh2D mesh(2, 2);
  const PortDepGraph dep = build_exy_dep(mesh);
  EXPECT_FALSE(cycle_lies_in_dep_graph(dep, {}));
  // An XY-legal chain is a path, not a cycle: the closing edge is missing.
  EXPECT_FALSE(cycle_lies_in_dep_graph(
      dep, {mesh.local_in(0, 0),
            Port{0, 0, PortName::kEast, Direction::kOut}}));
}

}  // namespace
}  // namespace genoc
