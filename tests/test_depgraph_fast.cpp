// The fast per-destination dependency-graph builder against its oracle.
//
// The acceptance bar of the perf issue: build_dep_graph_fast (and its
// destination-sharded parallel twin) must produce a finalized Digraph
// BIT-IDENTICAL to the generic (port, destination)-product construction on
// every registry preset — torus and adaptive instances included — and the
// node-uniform sweep must agree with the generic port-level BFS it
// specializes. The node_out_mask closed forms are additionally
// cross-validated against append_next_hops on every in-port, which is the
// uniformity claim the node sweep rests on.
#include <gtest/gtest.h>

#include <vector>

#include "deadlock/depgraph.hpp"
#include "instance/batch_runner.hpp"
#include "instance/network_instance.hpp"
#include "instance/registry.hpp"
#include "routing/sweep.hpp"

namespace genoc {
namespace {

Digraph digraph_from_sweeper(RouteSweeper& sweeper, const Topology& topo) {
  std::vector<RouteSweeper::Edge> edges;
  for (std::size_t dest = 0; dest < topo.destination_count(); ++dest) {
    sweeper.sweep(dest, &edges, nullptr);
  }
  Digraph graph(topo.port_count());
  graph.reserve_edges(edges.size());
  for (const auto& [from, to] : edges) {
    graph.add_edge(from, to);
  }
  graph.finalize();
  return graph;
}

void expect_fast_equals_generic(const InstanceSpec& spec) {
  SCOPED_TRACE(spec.name);
  const NetworkInstance instance(spec);
  const PortDepGraph fast = build_dep_graph_fast(instance.routing());
  ASSERT_EQ(fast.graph.vertex_count(), instance.topology().port_count());
  const PortDepGraph generic = build_dep_graph(instance.routing());
  EXPECT_EQ(fast.graph.edge_count(), generic.graph.edge_count());
  EXPECT_EQ(fast.graph.edges(), generic.graph.edges());
}

TEST(DepGraphFast, BitIdenticalToGenericOnEverySmallPreset) {
  const InstanceRegistry& registry = InstanceRegistry::global();
  for (const InstanceSpec& spec : registry.presets()) {
    if (spec.width > 32 || spec.height > 32) {
      continue;  // the 64x64 oracle runs get their own (timed) test cases
    }
    expect_fast_equals_generic(spec);
  }
}

// The 64x64 oracle comparisons are minutes-scale under sanitizers, so
// each runs as its own test case (the CTest timeout applies per test).
TEST(DepGraphFast, BitIdenticalToGenericAt64x64Mesh) {
  std::string error;
  const auto spec = InstanceRegistry::global().resolve("mesh64-xy", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  expect_fast_equals_generic(*spec);
}

TEST(DepGraphFast, BitIdenticalToGenericAt64x64Torus) {
  std::string error;
  const auto spec =
      InstanceRegistry::global().resolve("torus64-xy-escape", &error);
  ASSERT_TRUE(spec.has_value()) << error;
  expect_fast_equals_generic(*spec);
}

TEST(DepGraphFast, LargestPresetFastMatchesParallel) {
  // The 128x128 oracle run costs minutes even in release; the fast
  // builder is instead cross-checked against the sharded build, and both
  // sweep modes (size-generic code) agree with the oracle on every other
  // preset up to 64x64. (Selected by size, not by the heavy tag — the
  // heavy jail is retired and the tag list is empty today.)
  const InstanceRegistry& registry = InstanceRegistry::global();
  for (const InstanceSpec& spec : registry.presets()) {
    if (spec.node_count() <= InstanceRegistry::kOracleNodeLimit) {
      continue;
    }
    SCOPED_TRACE(spec.name);
    const NetworkInstance instance(spec);
    const PortDepGraph fast = build_dep_graph_fast(instance.routing());
    BatchRunner runner(4);
    const PortDepGraph parallel =
        build_dep_graph_parallel(instance.routing(), runner);
    EXPECT_EQ(fast.graph.edges(), parallel.graph.edges());
  }
}

TEST(DepGraphFast, PortModeSweepMatchesGenericOnEveryPreset) {
  // The generic BFS fallback (what non-node-uniform functions like
  // Odd-Even always use) must itself reproduce the oracle, on every
  // preset — this is also the path that vouches for the heavy presets
  // whose oracle run is skipped above.
  const InstanceRegistry& registry = InstanceRegistry::global();
  for (const InstanceSpec& spec : registry.presets()) {
    if (spec.node_count() > InstanceRegistry::kOracleNodeLimit) {
      // A 128x128 port-level BFS costs ~20 s for no extra code coverage:
      // both sweep modes are size-generic and already agree at 64x64.
      continue;
    }
    SCOPED_TRACE(spec.name);
    const NetworkInstance instance(spec);
    RouteSweeper sweeper(instance.routing());
    sweeper.force_port_mode();
    const Digraph swept =
        digraph_from_sweeper(sweeper, instance.topology());
    const PortDepGraph fast = build_dep_graph_fast(instance.routing());
    EXPECT_EQ(swept.edges(), fast.graph.edges());
    if (spec.width <= 16 && spec.height <= 16) {
      const PortDepGraph generic = build_dep_graph(instance.routing());
      EXPECT_EQ(swept.edges(), generic.graph.edges());
    }
  }
}

TEST(DepGraphFast, NodeMaskMatchesAppendNextHopsOnEveryInPort) {
  // The node-uniformity contract, checked literally: for every node and
  // destination, node_out_mask equals the hop set append_next_hops yields
  // from EVERY in-port of the node; cardinal OUT ports forward along
  // their link and Local OUT ports terminate.
  for (const InstanceSpec& spec : InstanceRegistry::global().presets()) {
    if (spec.width > 16 || spec.height > 16) {
      continue;  // the small presets cover every routing family
    }
    if (!spec.is_grid()) {
      continue;  // node_out_mask/append_next_hops are the grid dialect
    }
    const NetworkInstance instance(spec);
    const RoutingFunction& routing = instance.routing();
    if (!routing.node_uniform()) {
      continue;  // Odd-Even: turns read the in-port name by design
    }
    SCOPED_TRACE(spec.name);
    const Mesh2D& mesh = instance.mesh();
    std::vector<Port> hops;
    for (const Port& d : mesh.destinations()) {
      for (const Port& p : mesh.ports()) {
        hops.clear();
        routing.append_next_hops(p, d, hops);
        if (p.dir == Direction::kOut) {
          if (p.name == PortName::kLocal) {
            EXPECT_TRUE(hops.empty()) << to_string(p);
          } else {
            ASSERT_EQ(hops.size(), 1u) << to_string(p);
            EXPECT_EQ(hops.front(), mesh.next_in(p)) << to_string(p);
          }
          continue;
        }
        std::uint8_t seen = 0;
        for (const Port& hop : hops) {
          EXPECT_EQ(hop.dir, Direction::kOut) << to_string(p);
          EXPECT_EQ(hop.x, p.x);
          EXPECT_EQ(hop.y, p.y);
          seen |= port_name_bit(hop.name);
        }
        EXPECT_EQ(seen, routing.node_out_mask(p.x, p.y, d))
            << "in-port " << to_string(p) << " dest " << to_string(d);
      }
    }
  }
}

TEST(DepGraphFast, NodeAndPortModeClosureRowsAgree) {
  // The bitset closure (RoutingFunction::prime) is built by whichever
  // sweep mode the routing selects; the two must mark the same visited
  // set per destination.
  for (const InstanceSpec& spec : InstanceRegistry::global().presets()) {
    if (spec.width > 16 || spec.height > 16) {
      continue;
    }
    const NetworkInstance instance(spec);
    if (!instance.routing().node_uniform()) {
      continue;
    }
    SCOPED_TRACE(spec.name);
    const Topology& topo = instance.topology();
    RouteSweeper nodes(instance.routing());
    RouteSweeper ports(instance.routing());
    ports.force_port_mode();
    ASSERT_TRUE(nodes.node_mode());
    std::vector<std::uint64_t> node_row(nodes.row_words());
    std::vector<std::uint64_t> port_row(ports.row_words());
    for (std::size_t dest = 0; dest < topo.destination_count(); ++dest) {
      std::fill(node_row.begin(), node_row.end(), 0);
      std::fill(port_row.begin(), port_row.end(), 0);
      nodes.sweep(dest, nullptr, node_row.data());
      ports.sweep(dest, nullptr, port_row.data());
      EXPECT_EQ(node_row, port_row) << "destination node " << dest;
    }
  }
}

TEST(DepGraphFast, ParallelBuildBitIdenticalAcrossThreadCounts) {
  std::string error;
  const auto spec64 =
      InstanceRegistry::global().resolve("mesh64-xy", &error);
  ASSERT_TRUE(spec64.has_value()) << error;
  const NetworkInstance instance(*spec64);
  const PortDepGraph fast = build_dep_graph_fast(instance.routing());
  for (const std::size_t threads : {1u, 4u, 8u}) {
    BatchRunner runner(threads);
    const PortDepGraph parallel =
        build_dep_graph_parallel(instance.routing(), runner);
    EXPECT_EQ(parallel.graph.edges(), fast.graph.edges())
        << threads << " threads";
  }
}

TEST(DepGraphFast, VerdictIdenticalWithGenericBuilder) {
  // The oracle escape hatch (`genoc verify --generic`) must change
  // nothing observable but cpu_ms.
  for (const char* name :
       {"hermes", "mesh8-adaptive", "hermes-torus", "mesh16-oddeven"}) {
    SCOPED_TRACE(name);
    std::string error;
    const auto spec = InstanceRegistry::global().resolve(name, &error);
    ASSERT_TRUE(spec.has_value()) << error;
    const NetworkInstance instance(*spec);
    InstanceVerifyOptions fast_options;
    InstanceVerifyOptions generic_options;
    generic_options.generic_builder = true;
    const InstanceVerdict fast = instance.verify(fast_options);
    const InstanceVerdict generic = instance.verify(generic_options);
    EXPECT_EQ(fast.deadlock_free, generic.deadlock_free);
    EXPECT_EQ(fast.dep_acyclic, generic.dep_acyclic);
    EXPECT_EQ(fast.edges, generic.edges);
    EXPECT_EQ(fast.method, generic.method);
    EXPECT_EQ(fast.note, generic.note);
    EXPECT_EQ(fast.checks, generic.checks);
  }
}

}  // namespace
}  // namespace genoc
