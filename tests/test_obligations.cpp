// Tests for the Table I obligation harness: the full suite discharges on
// HERMES instances and its rows mirror the paper's table.
#include <gtest/gtest.h>

#include "core/obligations.hpp"

namespace genoc {
namespace {

TEST(Obligations, FullSuiteDischargesOn3x3) {
  const HermesInstance hermes(3, 3, 2);
  ObligationOptions options;
  options.workloads = 3;
  options.messages_per_workload = 12;
  const ObligationSuite suite = run_hermes_obligations(hermes, options);
  ASSERT_EQ(suite.rows.size(), 9u);
  for (const ObligationRow& row : suite.rows) {
    EXPECT_TRUE(row.satisfied) << row.label << ": " << row.note;
    EXPECT_GT(row.checks, 0u) << row.label;
  }
  EXPECT_TRUE(suite.all_satisfied());
}

TEST(Obligations, RowLabelsMatchThePaperTable) {
  const HermesInstance hermes(2, 2, 1);
  ObligationOptions options;
  options.workloads = 1;
  options.messages_per_workload = 4;
  const ObligationSuite suite = run_hermes_obligations(hermes, options);
  const auto& paper = paper_table1();
  ASSERT_EQ(paper.size(), suite.rows.size() + 1);  // + "Overall"
  for (std::size_t i = 0; i < suite.rows.size(); ++i) {
    EXPECT_EQ(suite.rows[i].label, paper[i].label);
  }
  EXPECT_EQ(paper.back().label, "Overall");
  EXPECT_EQ(paper.back().lines, 13261);
  EXPECT_EQ(paper.back().theorems, 1008);
  EXPECT_EQ(paper.back().human_days, 20);
}

TEST(Obligations, OverallSumsTheColumns) {
  const HermesInstance hermes(2, 2, 1);
  ObligationOptions options;
  options.workloads = 1;
  options.messages_per_workload = 4;
  const ObligationSuite suite = run_hermes_obligations(hermes, options);
  const ObligationRow overall = suite.overall();
  std::uint64_t checks = 0;
  for (const ObligationRow& row : suite.rows) {
    checks += row.checks;
  }
  EXPECT_EQ(overall.checks, checks);
  EXPECT_TRUE(overall.satisfied);
  EXPECT_EQ(overall.label, "Overall");
}

TEST(Obligations, C1AndC2DominateTheCheckCounts) {
  // The paper notes (C-1)/(C-2) "basically consist of many case
  // distinctions" — the shape preserved here: those rows perform the most
  // elementary checks among the constraint rows.
  const HermesInstance hermes(4, 4, 2);
  ObligationOptions options;
  options.workloads = 1;
  options.messages_per_workload = 8;
  const ObligationSuite suite = run_hermes_obligations(hermes, options);
  auto row = [&](const std::string& label) -> const ObligationRow& {
    for (const ObligationRow& r : suite.rows) {
      if (r.label == label) {
        return r;
      }
    }
    ADD_FAILURE() << "missing row " << label;
    static ObligationRow dummy;
    return dummy;
  };
  // (C-2) is the heavyweight case-split row (51 CPU minutes in the paper,
  // the largest constraint row) — it dominates both other constraints.
  EXPECT_GT(row("(C-2)xy").checks, row("(C-3)xy").checks);
  EXPECT_GT(row("(C-2)xy").checks, row("(C-1)xy").checks);
}

TEST(Obligations, SuiteScalesAcrossMeshSizes) {
  for (const auto& [w, h] : {std::pair{2, 3}, std::pair{4, 2}}) {
    const HermesInstance hermes(w, h, 2);
    ObligationOptions options;
    options.workloads = 1;
    options.messages_per_workload = 6;
    const ObligationSuite suite = run_hermes_obligations(hermes, options);
    EXPECT_TRUE(suite.all_satisfied()) << w << "x" << h;
  }
}

}  // namespace
}  // namespace genoc
