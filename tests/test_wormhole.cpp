// Tests for the wormhole switching policy Swh (paper Sec. V.4): pipelined
// worm advance, contention, the Ω predicate, and the equivalence
// can_any_move <=> step moves something.
#include <gtest/gtest.h>

#include "routing/xy.hpp"
#include "switching/wormhole.hpp"
#include "util/rng.hpp"

namespace genoc {
namespace {

class WormholeTest : public ::testing::Test {
 protected:
  WormholeTest() : mesh_(4, 4), xy_(mesh_) {}

  Route route(NodeCoord s, NodeCoord d) const {
    return compute_route(xy_, mesh_.local_in(s.x, s.y),
                         mesh_.local_out(d.x, d.y));
  }

  Mesh2D mesh_;
  XYRouting xy_;
  WormholeSwitching wh_;
};

TEST_F(WormholeTest, SinglePacketPipelineLatency) {
  // One packet, route of length L ports, F flits, 1-flit buffers: the
  // header needs L moves (entry + L-2 hops + consumption), one per step;
  // each following flit trails one step behind, so the tail is consumed
  // after L + F - 1 steps. (With deeper buffers several flits share a
  // port and delivery is faster; see MultiBufferPortsCompressTheWorm.)
  NetworkState st(mesh_, 1);
  const Route r = route({0, 0}, {3, 0});  // length 2 + 2*3 = 8
  const std::uint32_t flits = 3;
  st.register_packet({1, r, flits});
  std::size_t steps = 0;
  while (!st.packet_delivered(1)) {
    const StepResult res = wh_.step(st);
    ASSERT_GT(res.flits_moved, 0u);
    ++steps;
    ASSERT_LT(steps, 100u);
  }
  EXPECT_EQ(steps, r.size() + flits - 1);
}

TEST_F(WormholeTest, WormOccupiesAChainOfPorts) {
  NetworkState st(mesh_, 1);
  const Route r = route({0, 0}, {3, 0});
  st.register_packet({1, r, 4});
  // After 4 steps with 1-flit buffers the worm is fully pipelined: flits at
  // route positions 3,2,1,0.
  for (int s = 0; s < 4; ++s) {
    wh_.step(st);
  }
  EXPECT_EQ(st.flit_pos(1, 0), 3);
  EXPECT_EQ(st.flit_pos(1, 1), 2);
  EXPECT_EQ(st.flit_pos(1, 2), 1);
  EXPECT_EQ(st.flit_pos(1, 3), 0);
  st.validate();
}

TEST_F(WormholeTest, MultiBufferPortsCompressTheWorm) {
  // With 2-flit buffers a blocked worm compresses: two flits per port.
  NetworkState st(mesh_, 2);
  // Block the path by placing another packet that owns W-in(2,0).
  const Port blocker_start{2, 0, PortName::kWest, Direction::kIn};
  Route blocker_route{blocker_start,
                      Port{2, 0, PortName::kEast, Direction::kOut},
                      Port{3, 0, PortName::kWest, Direction::kIn},
                      mesh_.local_out(3, 0)};
  st.place_packet({9, blocker_route, 2});
  // Freeze the blocker by filling its next hop too.
  const Port blocker2_start{2, 0, PortName::kEast, Direction::kOut};
  Route blocker2_route{blocker2_start,
                       Port{3, 0, PortName::kWest, Direction::kIn},
                       mesh_.local_out(3, 0)};
  (void)blocker2_route;  // E-out(2,0) full => 9 blocked after it fills

  st.register_packet({1, route({0, 0}, {3, 0}), 6});
  for (int s = 0; s < 20; ++s) {
    wh_.step(st);
  }
  st.validate();
  // Packet 1's head is stuck behind W-in(2,0) (owned by 9 until 9 drains).
  // Since 9 CAN drain (its path ahead is free), eventually everything
  // evacuates; just assert no overtaking happened and state stays sound.
  int guard = 0;
  while (!(st.packet_delivered(1) && st.packet_delivered(9))) {
    const StepResult res = wh_.step(st);
    ASSERT_GT(res.flits_moved, 0u);
    ASSERT_LT(++guard, 200);
  }
}

TEST_F(WormholeTest, ContentionSerializesByTravelOrder) {
  // Two packets want the same L-in; the lower id (registered first) wins.
  NetworkState st(mesh_, 1);
  st.register_packet({1, route({0, 0}, {1, 0}), 1});
  st.register_packet({2, route({0, 0}, {2, 0}), 1});
  const StepResult res = wh_.step(st);
  EXPECT_EQ(res.flits_moved, 1u);
  EXPECT_TRUE(st.packet_in_network(1));
  EXPECT_FALSE(st.packet_in_network(2));
}

TEST_F(WormholeTest, StepReportsEnteredAndDelivered) {
  NetworkState st(mesh_, 2);
  st.register_packet({1, route({0, 0}, {0, 0}), 1});
  StepResult res = wh_.step(st);
  ASSERT_EQ(res.entered.size(), 1u);
  EXPECT_EQ(res.entered[0], 1u);
  EXPECT_TRUE(res.delivered.empty());
  res = wh_.step(st);
  ASSERT_EQ(res.delivered.size(), 1u);
  EXPECT_EQ(res.delivered[0], 1u);
}

TEST_F(WormholeTest, CanAnyMoveMatchesStepEffect) {
  // Property: on a randomly evolved state, can_any_move() is true iff
  // step() moves at least one flit.
  Rng rng(123);
  for (int trial = 0; trial < 20; ++trial) {
    NetworkState st(mesh_, 1 + trial % 3);
    const std::size_t packets = 1 + rng.below(6);
    for (std::size_t i = 0; i < packets; ++i) {
      const NodeCoord s{static_cast<std::int32_t>(rng.below(4)),
                        static_cast<std::int32_t>(rng.below(4))};
      const NodeCoord d{static_cast<std::int32_t>(rng.below(4)),
                        static_cast<std::int32_t>(rng.below(4))};
      st.register_packet({static_cast<TravelId>(i + 1), route(s, d),
                          1 + static_cast<std::uint32_t>(rng.below(4))});
    }
    const std::size_t evolve = rng.below(30);
    for (std::size_t s = 0; s < evolve; ++s) {
      wh_.step(st);
    }
    const bool movable = wh_.can_any_move(st);
    const StepResult res = wh_.step(st);
    EXPECT_EQ(movable, res.flits_moved > 0);
    st.validate();
  }
}

TEST_F(WormholeTest, XYTrafficAlwaysEvacuates) {
  // Under XY routing there is no deadlock: Ω never holds while packets are
  // pending (the DeadThm in action at the simulation level).
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    NetworkState st(mesh_, 1 + trial % 2);
    for (TravelId id = 1; id <= 8; ++id) {
      const NodeCoord s{static_cast<std::int32_t>(rng.below(4)),
                        static_cast<std::int32_t>(rng.below(4))};
      const NodeCoord d{static_cast<std::int32_t>(rng.below(4)),
                        static_cast<std::int32_t>(rng.below(4))};
      st.register_packet({id, route(s, d), 4});
    }
    int guard = 0;
    while (st.undelivered_count() > 0) {
      ASSERT_FALSE(is_deadlock(wh_, st)) << "XY deadlocked?!";
      wh_.step(st);
      ASSERT_LT(++guard, 2000);
    }
  }
}

TEST_F(WormholeTest, OmegaOnEmptyStateIsFalse) {
  NetworkState st(mesh_, 1);
  EXPECT_FALSE(is_deadlock(wh_, st));  // no undelivered packets
  const StepResult res = wh_.step(st);
  EXPECT_EQ(res.flits_moved, 0u);
}

}  // namespace
}  // namespace genoc
