// Tests for cycle detection with witnesses — the engine behind (C-3).
#include <gtest/gtest.h>

#include "graph/cycle.hpp"

namespace genoc {
namespace {

Digraph path_graph(std::size_t n) {
  Digraph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(i, i + 1);
  }
  g.finalize();
  return g;
}

Digraph ring_graph(std::size_t n) {
  Digraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(i, (i + 1) % n);
  }
  g.finalize();
  return g;
}

TEST(Cycle, AcyclicGraphsHaveNoCycle) {
  EXPECT_TRUE(is_acyclic(path_graph(1)));
  EXPECT_TRUE(is_acyclic(path_graph(10)));
  Digraph diamond(4);
  diamond.add_edge(0, 1);
  diamond.add_edge(0, 2);
  diamond.add_edge(1, 3);
  diamond.add_edge(2, 3);
  diamond.finalize();
  EXPECT_TRUE(is_acyclic(diamond));
  EXPECT_FALSE(find_cycle(diamond).has_value());
}

TEST(Cycle, RingYieldsFullCycleWitness) {
  const Digraph g = ring_graph(5);
  const auto cycle = find_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 5u);
  EXPECT_TRUE(is_valid_cycle(g, *cycle));
}

TEST(Cycle, SelfLoopIsACycle) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  g.finalize();
  const auto cycle = find_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 1u);
  EXPECT_EQ(cycle->front(), 1u);
  EXPECT_TRUE(is_valid_cycle(g, *cycle));
}

TEST(Cycle, CycleBehindALongTail) {
  // 0 -> 1 -> ... -> 7 -> 4 (cycle 4..7).
  Digraph g(8);
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    g.add_edge(i, i + 1);
  }
  g.add_edge(7, 4);
  g.finalize();
  const auto cycle = find_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 4u);
  EXPECT_TRUE(is_valid_cycle(g, *cycle));
}

TEST(Cycle, DisconnectedComponents) {
  // Component A acyclic, component B a 3-ring.
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.finalize();
  const auto cycle = find_cycle(g);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_EQ(cycle->size(), 3u);
  EXPECT_TRUE(is_valid_cycle(g, *cycle));
}

TEST(Cycle, WitnessValidationRejectsJunk) {
  const Digraph g = ring_graph(4);
  EXPECT_FALSE(is_valid_cycle(g, {}));                // empty
  EXPECT_FALSE(is_valid_cycle(g, {0, 2}));            // not edges
  EXPECT_FALSE(is_valid_cycle(g, {0, 1, 1, 2, 3}));   // repeated vertex
  EXPECT_FALSE(is_valid_cycle(g, {0, 1, 9}));         // out of range
  EXPECT_FALSE(is_valid_cycle(g, {0, 1, 2}));         // 2->0 missing
  EXPECT_TRUE(is_valid_cycle(g, {0, 1, 2, 3}));
  EXPECT_TRUE(is_valid_cycle(g, {2, 3, 0, 1}));       // rotation also valid
}

TEST(Cycle, LargeSparseAcyclicGraphIsFast) {
  // A layered DAG with 50k vertices; mostly a smoke test for the iterative
  // DFS (no stack overflow, linear time).
  constexpr std::size_t kLayers = 500;
  constexpr std::size_t kWidth = 100;
  Digraph g(kLayers * kWidth);
  for (std::size_t layer = 0; layer + 1 < kLayers; ++layer) {
    for (std::size_t i = 0; i < kWidth; ++i) {
      g.add_edge(layer * kWidth + i, (layer + 1) * kWidth + i);
      g.add_edge(layer * kWidth + i, (layer + 1) * kWidth + (i + 1) % kWidth);
    }
  }
  g.finalize();
  EXPECT_TRUE(is_acyclic(g));
}

}  // namespace
}  // namespace genoc
