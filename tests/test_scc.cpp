// Tests for the Taktak-style SCC dependency analysis (paper Sec. VIII).
#include <gtest/gtest.h>

#include "deadlock/scc_checker.hpp"
#include "graph/cycle.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/odd_even.hpp"
#include "routing/west_first.hpp"
#include "routing/xy.hpp"

namespace genoc {
namespace {

TEST(SccChecker, XYIsDeadlockFree) {
  const Mesh2D mesh(4, 4);
  const XYRouting xy(mesh);
  const PortDepGraph dep = build_dep_graph(xy);
  const SccAnalysis analysis = analyze_dependencies(dep, 4);
  EXPECT_TRUE(analysis.deadlock_free);
  EXPECT_EQ(analysis.nontrivial_scc_count, 0u);
  EXPECT_EQ(analysis.ports_in_cycles, 0u);
  EXPECT_TRUE(analysis.sample_cycles.empty());
  // Every port is its own trivial SCC.
  EXPECT_EQ(analysis.scc_count, mesh.port_count());
  EXPECT_NE(analysis.summary().find("deadlock-free"), std::string::npos);
}

TEST(SccChecker, FullyAdaptiveIsCyclic) {
  const Mesh2D mesh(3, 3);
  const FullyAdaptiveRouting adaptive(mesh);
  const PortDepGraph dep = build_dep_graph(adaptive);
  const SccAnalysis analysis = analyze_dependencies(dep, 8);
  EXPECT_FALSE(analysis.deadlock_free);
  EXPECT_GT(analysis.nontrivial_scc_count, 0u);
  EXPECT_GT(analysis.largest_scc_size, 1u);
  EXPECT_GE(analysis.ports_in_cycles, analysis.largest_scc_size);
  ASSERT_FALSE(analysis.sample_cycles.empty());
  EXPECT_LE(analysis.sample_cycles.size(), 8u);
  for (const CycleWitness& cycle : analysis.sample_cycles) {
    EXPECT_TRUE(is_valid_cycle(dep.graph, cycle));
  }
  EXPECT_NE(analysis.summary().find("CYCLIC"), std::string::npos);
}

TEST(SccChecker, TurnModelsPassTheAdaptiveCheck) {
  // The future-work direction of Sec. IX: adaptive routing functions with
  // turn restrictions pass the SCC-based condition.
  const Mesh2D mesh(4, 4);
  const WestFirstRouting wf(mesh);
  const OddEvenRouting oe(mesh);
  for (const RoutingFunction* routing :
       std::initializer_list<const RoutingFunction*>{&wf, &oe}) {
    const PortDepGraph dep = build_dep_graph(*routing);
    const SccAnalysis analysis = analyze_dependencies(dep, 4);
    EXPECT_TRUE(analysis.deadlock_free) << routing->name() << ": "
                                        << analysis.summary();
  }
}

TEST(SccChecker, SampleBudgetIsRespected) {
  const Mesh2D mesh(3, 3);
  const FullyAdaptiveRouting adaptive(mesh);
  const PortDepGraph dep = build_dep_graph(adaptive);
  EXPECT_EQ(analyze_dependencies(dep, 0).sample_cycles.size(), 0u);
  EXPECT_EQ(analyze_dependencies(dep, 1).sample_cycles.size(), 1u);
  EXPECT_LE(analyze_dependencies(dep, 3).sample_cycles.size(), 3u);
}

}  // namespace
}  // namespace genoc
