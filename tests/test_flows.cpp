// Tests for the flows argument (paper Sec. VI.A, Fig. 4): classification,
// the closed-form rank certificate, and flow decomposition.
#include <gtest/gtest.h>

#include "deadlock/flows.hpp"
#include "graph/cycle.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/xy.hpp"

namespace genoc {
namespace {

TEST(Flows, ClassificationMatchesPaperFig4) {
  // "The Northern-flow consists solely of South-In and North-Out ports."
  EXPECT_EQ(classify_flow(Port{1, 1, PortName::kSouth, Direction::kIn}),
            FlowClass::kNorthern);
  EXPECT_EQ(classify_flow(Port{1, 1, PortName::kNorth, Direction::kOut}),
            FlowClass::kNorthern);
  // Westbound traffic: West-Out and East-In ports.
  EXPECT_EQ(classify_flow(Port{1, 1, PortName::kWest, Direction::kOut}),
            FlowClass::kWestern);
  EXPECT_EQ(classify_flow(Port{1, 1, PortName::kEast, Direction::kIn}),
            FlowClass::kWestern);
  // Eastbound: West-In and East-Out.
  EXPECT_EQ(classify_flow(Port{1, 1, PortName::kWest, Direction::kIn}),
            FlowClass::kEastern);
  EXPECT_EQ(classify_flow(Port{1, 1, PortName::kEast, Direction::kOut}),
            FlowClass::kEastern);
  // Southbound: North-In and South-Out.
  EXPECT_EQ(classify_flow(Port{1, 1, PortName::kNorth, Direction::kIn}),
            FlowClass::kSouthern);
  EXPECT_EQ(classify_flow(Port{1, 1, PortName::kSouth, Direction::kOut}),
            FlowClass::kSouthern);
  // Local ports are pure source/sink.
  EXPECT_EQ(classify_flow(Port{1, 1, PortName::kLocal, Direction::kIn}),
            FlowClass::kLocalSource);
  EXPECT_EQ(classify_flow(Port{1, 1, PortName::kLocal, Direction::kOut}),
            FlowClass::kLocalSink);
}

class FlowSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(FlowSweep, RankCertificateDischargesC3OnEveryMesh) {
  // The executable shadow of the arbitrary-size ACL2 proof: the SAME
  // closed-form rank works for every W x H.
  const auto [w, h] = GetParam();
  const Mesh2D mesh(w, h);
  const PortDepGraph dep = build_exy_dep(mesh);
  EXPECT_TRUE(verify_flow_certificate(dep)) << w << "x" << h;
}

TEST_P(FlowSweep, RankStrictlyIncreasesAlongEveryEdge) {
  const auto [w, h] = GetParam();
  const Mesh2D mesh(w, h);
  const PortDepGraph dep = build_exy_dep(mesh);
  for (const auto& [from, to] : dep.graph.edges()) {
    EXPECT_LT(xy_flow_rank(mesh, dep.port_of(from)),
              xy_flow_rank(mesh, dep.port_of(to)))
        << dep.label(from) << " -> " << dep.label(to);
  }
}

INSTANTIATE_TEST_SUITE_P(Meshes, FlowSweep,
                         ::testing::Values(std::pair{1, 2}, std::pair{2, 1},
                                           std::pair{2, 2}, std::pair{3, 3},
                                           std::pair{4, 2}, std::pair{2, 4},
                                           std::pair{6, 6}, std::pair{9, 4},
                                           std::pair{12, 12}));

TEST(Flows, RankBoundsAndExtremes) {
  const Mesh2D mesh(4, 3);
  // Local IN is the global minimum, Local OUT the global maximum.
  const std::int64_t source = xy_flow_rank(mesh, mesh.local_in(2, 1));
  const std::int64_t sink = xy_flow_rank(mesh, mesh.local_out(2, 1));
  EXPECT_EQ(source, 0);
  for (const Port& p : mesh.ports()) {
    EXPECT_GE(xy_flow_rank(mesh, p), source);
    EXPECT_LE(xy_flow_rank(mesh, p), sink);
  }
}

TEST(Flows, DecompositionOfXyGraphHasNoViolations) {
  const Mesh2D mesh(4, 4);
  const PortDepGraph dep = build_exy_dep(mesh);
  const FlowDecomposition decomposition = decompose_flows(dep);
  EXPECT_EQ(decomposition.violating_edges, 0u);
  EXPECT_GT(decomposition.intra_flow_edges, 0u);
  EXPECT_GT(decomposition.horizontal_to_vertical, 0u);
  EXPECT_GT(decomposition.into_local_sink, 0u);
  EXPECT_GT(decomposition.out_of_local_source, 0u);
  // Every edge is classified exactly once.
  EXPECT_EQ(decomposition.intra_flow_edges +
                decomposition.horizontal_to_vertical +
                decomposition.into_local_sink +
                decomposition.out_of_local_source +
                decomposition.violating_edges,
            dep.graph.edge_count());
  // Port census: one Local source and sink per node; flows share the rest.
  EXPECT_EQ(decomposition.ports_per_flow[static_cast<int>(
                FlowClass::kLocalSource)],
            mesh.node_count());
  EXPECT_EQ(
      decomposition.ports_per_flow[static_cast<int>(FlowClass::kLocalSink)],
      mesh.node_count());
  EXPECT_FALSE(decomposition.summary().empty());
}

TEST(Flows, FullyAdaptiveGraphViolatesTheFlowDiscipline) {
  const Mesh2D mesh(3, 3);
  const FullyAdaptiveRouting adaptive(mesh);
  const PortDepGraph dep = build_dep_graph(adaptive);
  // Vertical-to-horizontal turns break the flow discipline...
  EXPECT_GT(decompose_flows(dep).violating_edges, 0u);
  // ...and the rank certificate necessarily fails (the graph is cyclic).
  EXPECT_FALSE(verify_flow_certificate(dep));
  EXPECT_FALSE(is_acyclic(dep.graph));
}

TEST(Flows, FlowClassNamesAreDistinct) {
  for (int a = 0; a < 6; ++a) {
    for (int b = a + 1; b < 6; ++b) {
      EXPECT_STRNE(flow_class_name(static_cast<FlowClass>(a)),
                   flow_class_name(static_cast<FlowClass>(b)));
    }
  }
}

}  // namespace
}  // namespace genoc
