// JSON reader tests: the parser backing `verify --baseline` and the typed
// Diagnostic/StageStats round-trip through the exact serialization the
// driver ships (cli/verify_json.hpp) — writer -> parser -> struct equality.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "cli/json_reader.hpp"
#include "cli/json_writer.hpp"
#include "cli/verify_json.hpp"
#include "instance/network_instance.hpp"
#include "instance/registry.hpp"
#include "verify/pipeline.hpp"

namespace genoc::cli {
namespace {

JsonValue parse_ok(const std::string& text) {
  std::string error;
  const std::optional<JsonValue> value = JsonValue::parse(text, &error);
  EXPECT_TRUE(value.has_value()) << text << " -> " << error;
  return value.value_or(JsonValue{});
}

void expect_parse_fails(const std::string& text, const std::string& what) {
  std::string error;
  const std::optional<JsonValue> value = JsonValue::parse(text, &error);
  EXPECT_FALSE(value.has_value()) << text;
  EXPECT_NE(error.find(what), std::string::npos)
      << text << " -> '" << error << "' (wanted '" << what << "')";
}

TEST(JsonReader, ParsesScalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_TRUE(parse_ok("true").as_bool());
  EXPECT_FALSE(parse_ok("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_ok("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_ok("-17.5").as_number(), -17.5);
  EXPECT_DOUBLE_EQ(parse_ok("6.25e3").as_number(), 6250.0);
  EXPECT_DOUBLE_EQ(parse_ok("0").as_number(), 0.0);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
  EXPECT_EQ(parse_ok("  \"ws\"  ").as_string(), "ws");
}

TEST(JsonReader, ParsesContainersPreservingOrder) {
  const JsonValue doc = parse_ok(
      R"({"b": [1, 2, {"x": true}], "a": "second", "c": {}})");
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.members().size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "b");
  EXPECT_EQ(doc.members()[1].first, "a");
  EXPECT_EQ(doc.members()[2].first, "c");
  const JsonValue* array = doc.find("b");
  ASSERT_NE(array, nullptr);
  ASSERT_EQ(array->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(array->as_array()[1].as_number(), 2.0);
  EXPECT_EQ(array->as_array()[2].get_bool("x"), true);
  EXPECT_EQ(doc.get_string("a"), "second");
  EXPECT_EQ(doc.get_string("missing"), std::nullopt);
  EXPECT_EQ(doc.get_number("a"), std::nullopt);  // kind mismatch
}

TEST(JsonReader, DecodesEscapes) {
  EXPECT_EQ(parse_ok(R"("a\"b\\c\/d\n\t\r\b\f")").as_string(),
            "a\"b\\c/d\n\t\r\b\f");
  EXPECT_EQ(parse_ok(R"("\u0041\u00e9\u20ac")").as_string(),
            "A\xC3\xA9\xE2\x82\xAC");  // A, e-acute, euro sign
}

TEST(JsonReader, RejectsMalformedDocuments) {
  expect_parse_fails("", "unexpected end");
  expect_parse_fails("tru", "invalid literal");
  expect_parse_fails("01", "trailing garbage");
  expect_parse_fails("1.", "digit required after");
  expect_parse_fails("1e", "digit required in exponent");
  expect_parse_fails("\"unterminated", "unterminated string");
  expect_parse_fails("\"bad\\q\"", "invalid escape");
  expect_parse_fails("\"\\ud800\"", "surrogate");
  expect_parse_fails("[1, 2", "unterminated array");
  expect_parse_fails("[1 2]", "expected ',' or ']'");
  expect_parse_fails("{\"a\" 1}", "expected ':'");
  expect_parse_fails("{a: 1}", "quoted member name");
  expect_parse_fails("{} []", "trailing garbage");
  expect_parse_fails("\"ctrl\x01\"", "control character");
}

TEST(JsonReader, RoundTripsJsonNumberPrecision) {
  // The shortest-round-trip doubles json_number emits (the PR-4 contract)
  // must come back bit-equal through the parser.
  for (const double value : {0.0, 1.0, -1.0, 1e-3, 1234567.890625,
                             3.141592653589793, 2.3e9, 5e-324, 1.7e308}) {
    const std::string text = json_number(value);
    const JsonValue parsed = parse_ok(text);
    ASSERT_TRUE(parsed.is_number()) << text;
    EXPECT_EQ(parsed.as_number(), value) << text;
  }
}

TEST(JsonReader, ParsesTheWritersObjectOutput) {
  JsonObject obj;
  obj.add("name", "quote\" backslash\\ newline\n")
      .add("count", std::uint64_t{18446744073709551615ull})
      .add("ratio", 0.375)
      .add("flag", true);
  const JsonValue doc = parse_ok(obj.to_string());
  EXPECT_EQ(doc.get_string("name"), "quote\" backslash\\ newline\n");
  EXPECT_DOUBLE_EQ(*doc.get_number("count"), 1.8446744073709552e19);
  EXPECT_DOUBLE_EQ(*doc.get_number("ratio"), 0.375);
  EXPECT_EQ(doc.get_bool("flag"), true);
}

TEST(JsonReader, DiagnosticRoundTrip) {
  genoc::Diagnostic original;
  original.stage = "escape";
  original.severity = genoc::Severity::kError;
  original.code = "escape-refuted";
  original.message = "missing at <1,0,N,IN> / <5,2,L,OUT>; \"quoted\"\n";
  original.witness = {{"states_checked", "11264"},
                      {"first_missing", "<1,0,N,IN> / <5,2,L,OUT>"},
                      {"tricky", "back\\slash and \ttab"}};
  const std::string text = diagnostic_json(original);
  const JsonValue doc = parse_ok(text);
  std::string error;
  const std::optional<genoc::Diagnostic> round =
      diagnostic_from_json(doc, &error);
  ASSERT_TRUE(round.has_value()) << error;
  EXPECT_EQ(*round, original);
}

TEST(JsonReader, DiagnosticFromJsonRejectsMalformedRecords) {
  std::string error;
  EXPECT_FALSE(
      diagnostic_from_json(parse_ok("[1, 2]"), &error).has_value());
  EXPECT_FALSE(diagnostic_from_json(
                   parse_ok(R"({"stage": "escape", "code": "x"})"), &error)
                   .has_value());
  EXPECT_FALSE(
      diagnostic_from_json(
          parse_ok(R"({"stage": "s", "severity": "fatal", "code": "c",)"
                   R"( "message": "m", "witness": {}})"),
          &error)
          .has_value());
  EXPECT_NE(error.find("severity"), std::string::npos);
}

TEST(JsonReader, StageStatsRoundTrip) {
  genoc::StageStats original;
  original.stage = "scc_acyclicity";
  original.ran = true;
  original.passed = false;
  original.skip_reason = "";
  original.checks = 123456789;
  original.wall_ms = 7654321.015625;
  original.cpu_ms = 1234567.890625;  // exercises the >= 1e6 precision fix
  const JsonValue doc = parse_ok(stage_stats_json(original));
  std::string error;
  const std::optional<genoc::StageStats> round =
      stage_stats_from_json(doc, &error);
  ASSERT_TRUE(round.has_value()) << error;
  EXPECT_EQ(*round, original);
}

TEST(JsonReader, StageStatsV1RowWithoutWallMsFallsBackToCpuMs) {
  // Schema-v1 artifacts have no wall_ms field; cpu_ms held the wall-clock
  // figure back then, so the parser must map it over instead of rejecting.
  const JsonValue doc =
      parse_ok(R"({"stage": "escape", "ran": true, "passed": true,)"
               R"( "skip_reason": "", "checks": 42, "cpu_ms": 12.5})");
  std::string error;
  const std::optional<genoc::StageStats> stats =
      stage_stats_from_json(doc, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_DOUBLE_EQ(stats->wall_ms, 12.5);
  EXPECT_DOUBLE_EQ(stats->cpu_ms, 12.5);
}

TEST(JsonReader, EveryPipelineDiagnosticRoundTripsThroughTheWireFormat) {
  // End to end: run the real pipeline on a cyclic escape instance (the
  // richest diagnostic mix), serialize the full report, parse it back and
  // rebuild every typed record.
  const genoc::InstanceSpec* spec =
      genoc::InstanceRegistry::global().find("torus8-xy");
  ASSERT_NE(spec, nullptr);
  const genoc::VerifyReport report = genoc::VerifyPipeline::standard().run(
      genoc::NetworkInstance(*spec), genoc::InstanceVerifyOptions{});
  const JsonValue doc = parse_ok(report_json(report));
  EXPECT_EQ(doc.get_string("instance"), report.verdict.instance);
  EXPECT_EQ(doc.get_bool("deadlock_free"), report.verdict.deadlock_free);
  EXPECT_EQ(doc.get_string("method"), report.verdict.method);
  EXPECT_EQ(doc.get_string("note"), report.verdict.note);

  const JsonValue* diagnostics = doc.find("diagnostics");
  ASSERT_NE(diagnostics, nullptr);
  ASSERT_EQ(diagnostics->as_array().size(), report.diagnostics.size());
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    std::string error;
    const std::optional<genoc::Diagnostic> round =
        diagnostic_from_json(diagnostics->as_array()[i], &error);
    ASSERT_TRUE(round.has_value()) << error;
    EXPECT_EQ(*round, report.diagnostics[i]) << "diagnostic " << i;
  }
  const JsonValue* stages = doc.find("stages");
  ASSERT_NE(stages, nullptr);
  ASSERT_EQ(stages->as_array().size(), report.stages.size());
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    std::string error;
    const std::optional<genoc::StageStats> round =
        stage_stats_from_json(stages->as_array()[i], &error);
    ASSERT_TRUE(round.has_value()) << error;
    EXPECT_EQ(*round, report.stages[i]) << "stage " << i;
  }
  const JsonValue* cache = doc.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("dep_graph")->get_number("misses"), 1.0);
}

}  // namespace
}  // namespace genoc::cli
