// Torus (wrap-around) topology tests: the classic TOPOLOGY-induced deadlock
// — dimension-order routing is deadlock-free on a mesh but deadlock-PRONE on
// a torus, because wrap links close the ring dependency cycles. The whole
// Theorem-1 pipeline must detect it, realize it, and the escape-lane
// analysis must certify the classic cure.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/genoc.hpp"
#include "core/travel.hpp"
#include "deadlock/channel_dep.hpp"
#include "deadlock/constraints.hpp"
#include "deadlock/scc_checker.hpp"
#include "deadlock/escape.hpp"
#include "deadlock/witness.hpp"
#include "routing/route.hpp"
#include "routing/torus_xy.hpp"
#include "routing/xy.hpp"
#include "switching/wormhole.hpp"
#include "topology/torus.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

TEST(Torus, WrappedMeshKeepsBoundaryPorts) {
  const Mesh2D torus(4, 3, /*wrap_x=*/true, /*wrap_y=*/true);
  EXPECT_TRUE(torus.wraps_x());
  EXPECT_TRUE(torus.wraps_y());
  // Every node has all ten ports on a full torus.
  EXPECT_EQ(torus.port_count(), 4u * 3u * 10u);
  EXPECT_TRUE(torus.exists(Port{0, 0, PortName::kWest, Direction::kIn}));
  EXPECT_TRUE(torus.exists(Port{3, 2, PortName::kEast, Direction::kOut}));
  // Partial wrap: only the wrapped dimension keeps its boundary ports.
  const Mesh2D ring(4, 3, /*wrap_x=*/true, /*wrap_y=*/false);
  EXPECT_TRUE(ring.exists(Port{0, 0, PortName::kWest, Direction::kOut}));
  EXPECT_FALSE(ring.exists(Port{0, 0, PortName::kNorth, Direction::kOut}));
  EXPECT_THROW(Mesh2D(1, 3, /*wrap_x=*/true, false), ContractViolation);
}

TEST(Torus, NextInWrapsAroundTheRing) {
  const Mesh2D torus(4, 3, true, true);
  EXPECT_EQ(torus.next_in(Port{3, 1, PortName::kEast, Direction::kOut}),
            (Port{0, 1, PortName::kWest, Direction::kIn}));
  EXPECT_EQ(torus.next_in(Port{0, 1, PortName::kWest, Direction::kOut}),
            (Port{3, 1, PortName::kEast, Direction::kIn}));
  EXPECT_EQ(torus.next_in(Port{2, 0, PortName::kNorth, Direction::kOut}),
            (Port{2, 2, PortName::kSouth, Direction::kIn}));
  // Interior links are unchanged.
  EXPECT_EQ(torus.next_in(Port{1, 1, PortName::kEast, Direction::kOut}),
            (Port{2, 1, PortName::kWest, Direction::kIn}));
  // On a plain mesh the method equals the free function.
  const Mesh2D mesh(4, 3);
  const Port p{1, 1, PortName::kSouth, Direction::kOut};
  EXPECT_EQ(mesh.next_in(p), next_in(p));
}

TEST(Torus, RoutesTakeTheShorterWay) {
  const Mesh2D torus(6, 6, true, true);
  const TorusXYRouting routing(torus);
  // From (0,0) to (5,0): one westward wrap hop beats five eastward hops.
  const Route west = compute_route(routing, torus.local_in(0, 0),
                                   torus.local_out(5, 0));
  EXPECT_EQ(west.size(), 4u);  // L-in, W-out, E-in, L-out
  EXPECT_EQ(west[1].name, PortName::kWest);
  // From (0,0) to (2,0): plain eastward routing.
  const Route east = compute_route(routing, torus.local_in(0, 0),
                                   torus.local_out(2, 0));
  EXPECT_EQ(east.size(), 6u);
  EXPECT_EQ(east[1].name, PortName::kEast);
  // Every pair routes in at most ceil(W/2)+ceil(H/2) hops.
  for (const NodeCoord s : torus.nodes()) {
    for (const NodeCoord d : torus.nodes()) {
      const Route r = compute_route(routing, torus.local_in(s.x, s.y),
                                    torus.local_out(d.x, d.y));
      EXPECT_LE(r.size(), 2u + 2u * (3u + 3u));
      EXPECT_TRUE(is_valid_route(routing, r, r.front(), r.back()));
    }
  }
}

TEST(Torus, DimensionOrderIsDeadlockProneOnTheTorus) {
  // The headline: identical dimension-order discipline, opposite verdicts
  // on mesh vs torus.
  const Mesh2D mesh(4, 4);
  const XYRouting mesh_xy(mesh);
  EXPECT_TRUE(check_c3(build_dep_graph(mesh_xy)).satisfied);

  const Mesh2D torus(4, 4, true, true);
  const TorusXYRouting torus_xy(torus);
  const PortDepGraph dep = build_dep_graph(torus_xy);
  std::optional<CycleWitness> cycle;
  EXPECT_FALSE(check_c3(dep, &cycle).satisfied);
  ASSERT_TRUE(cycle.has_value());
  // (C-1) and (C-2) still hold — the function is honest about its edges;
  // only acyclicity fails, exactly the Theorem-1 shape.
  EXPECT_TRUE(check_c1(torus_xy, dep).satisfied);
  EXPECT_TRUE(check_c2(torus_xy, dep).satisfied);
}

TEST(Torus, RingCycleIsRealizableAsAWormholeDeadlock) {
  const Mesh2D torus(4, 2, /*wrap_x=*/true, /*wrap_y=*/false);
  const TorusXYRouting routing(torus);
  const PortDepGraph dep = build_dep_graph(routing);
  const auto cycle = find_cycle(dep.graph);
  ASSERT_TRUE(cycle.has_value());
  DeadlockConstruction witness =
      build_deadlock_from_cycle(routing, dep, *cycle, 2);
  const WormholeSwitching wh;
  EXPECT_TRUE(is_deadlock(wh, witness.state));
  const DeadlockCycle recovered = extract_cycle_from_deadlock(wh, witness.state);
  EXPECT_TRUE(cycle_lies_in_dep_graph(dep, recovered.ports));
}

TEST(Torus, MeshXyEscapeLaneCuresTheTorus) {
  // The dateline-style cure in escape-lane form: route the escape lane
  // with plain (non-wrapping) mesh XY — it never requests a wrap link, so
  // its dependency graph is the acyclic mesh graph, and it is available
  // from every torus-reachable state (all ports exist on the torus).
  for (const auto& [w, h] : {std::pair{4, 2}, std::pair{4, 4},
                             std::pair{3, 5}}) {
    const Mesh2D torus(w, h, true, h >= 3);
    const TorusXYRouting adaptive(torus);
    const XYRouting escape(torus);
    const EscapeAnalysis analysis = analyze_escape(adaptive, escape);
    EXPECT_TRUE(analysis.deadlock_free)
        << w << "x" << h << ": " << analysis.summary();
    // And no escape edge uses a wrap link.
    for (const auto& [from, to] : analysis.escape_graph.graph.edges()) {
      const Port a = analysis.escape_graph.port_of(from);
      const Port b = analysis.escape_graph.port_of(to);
      EXPECT_LE(std::abs(a.x - b.x) + std::abs(a.y - b.y), 1)
          << to_string(a) << " -> " << to_string(b);
    }
  }
}

TEST(Torus, UncontendedTrafficStillEvacuates) {
  // Deadlock-prone ≠ always deadlocked: light traffic on the torus runs to
  // completion, and the (C-5) audit stays green on those runs.
  const Mesh2D torus(4, 4, true, true);
  const TorusXYRouting routing(torus);
  Config config(torus, 2);
  config.add_travel(make_travel(1, routing, {0, 0}, {3, 3}, 4));
  config.add_travel(make_travel(2, routing, {2, 2}, {0, 1}, 4));
  const IdentityInjection iid;
  const WormholeSwitching wh;
  const FlitLevelMeasure mu;
  const GenocInterpreter interpreter(iid, wh, mu);
  const GenocRunResult run = interpreter.run(config);
  EXPECT_TRUE(run.evacuated);
  EXPECT_EQ(run.measure_violations, 0u);
}

TEST(Torus, RingCensusMatchesTheTopology) {
  // Each closed ring direction forms one SCC of 2*side ports (an out-port
  // and an in-port per hop). On a 4x4 torus the backward (West/North)
  // directions never sustain more than one hop (the maximal wrap delta is
  // -1, after which the packet turns), so only the forward rings close:
  // W + H = 8 SCCs. On a 6x6 torus two-hop backward journeys exist, both
  // directions ring, and the census doubles to 2(W + H) = 24.
  {
    const Mesh2D torus(4, 4, true, true);
    const SccAnalysis scc =
        analyze_dependencies(build_dep_graph(TorusXYRouting(torus)), 0);
    EXPECT_EQ(scc.nontrivial_scc_count, 8u);
    EXPECT_EQ(scc.largest_scc_size, 8u);
  }
  {
    const Mesh2D torus(6, 6, true, true);
    const SccAnalysis scc =
        analyze_dependencies(build_dep_graph(TorusXYRouting(torus)), 0);
    EXPECT_EQ(scc.nontrivial_scc_count, 24u);
    EXPECT_EQ(scc.largest_scc_size, 12u);
  }
}

TEST(Torus, ChannelGraphAgreesOnTheTorusVerdict) {
  // The Dally–Seitz projection keeps agreeing with the port graph when the
  // cycles come from the topology rather than the routing.
  const Mesh2D torus(4, 4, true, true);
  const TorusXYRouting routing(torus);
  const bool port_acyclic = is_acyclic(build_dep_graph(routing).graph);
  const bool chan_acyclic =
      is_acyclic(build_channel_dep_graph(routing).graph);
  EXPECT_FALSE(port_acyclic);
  EXPECT_EQ(port_acyclic, chan_acyclic);
}

TEST(Torus, PlainRoutingFunctionsStillWorkOnUnwrappedMeshes) {
  // Regression guard for the next_in refactor: nothing changed for plain
  // meshes.
  const Mesh2D mesh(3, 3);
  const XYRouting xy(mesh);
  EXPECT_TRUE(check_c1(xy, build_exy_dep(mesh)).satisfied);
  EXPECT_TRUE(check_c3(build_exy_dep(mesh)).satisfied);
  EXPECT_THROW(TorusXYRouting{mesh}, ContractViolation);
}

TEST(Torus, Torus2DIsTheFullyWrappedMesh) {
  const Torus2D torus(5, 4);
  EXPECT_TRUE(torus.wraps_x());
  EXPECT_TRUE(torus.wraps_y());
  EXPECT_EQ(torus.port_count(), 5u * 4u * 10u);
  const Torus2D square(3);
  EXPECT_EQ(square.width(), 3);
  EXPECT_EQ(square.height(), 3);
  // make_torus builds the identical plain-value topology.
  const Mesh2D value = make_torus(5, 4);
  EXPECT_EQ(value.port_count(), torus.port_count());
  EXPECT_EQ(value.ports(), torus.ports());
  EXPECT_THROW(Torus2D(1, 4), ContractViolation);
}

TEST(Torus, WrapLinksEnumerateExactlyTheDatelineCrossings) {
  const Torus2D torus(4, 3);
  const auto links = wrap_links(torus);
  // 2 directed x-wraps per row + 2 directed y-wraps per column.
  EXPECT_EQ(links.size(), 2u * 3u + 2u * 4u);
  for (const auto& [out, in] : links) {
    EXPECT_EQ(out.dir, Direction::kOut);
    EXPECT_EQ(in.dir, Direction::kIn);
    EXPECT_EQ(torus.next_in(out), in);
    // A wrap link really crosses the dateline: the hop is not +-1.
    EXPECT_GT(std::abs(out.x - in.x) + std::abs(out.y - in.y), 1);
  }
  // Partial wrap only reports its own dimension's links.
  EXPECT_EQ(wrap_links(Mesh2D(4, 3, true, false)).size(), 2u * 3u);
  EXPECT_EQ(wrap_links(Mesh2D(4, 3)).size(), 0u);
}

}  // namespace
}  // namespace genoc
