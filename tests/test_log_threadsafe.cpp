// log_line thread-safety: pool workers log concurrently (GENOC_LOG from
// escape shards and artifact computes), so lines must reach stderr whole —
// never interleaved mid-record — and none may be lost.
#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"

namespace genoc {
namespace {

TEST(LogThreadSafe, ConcurrentInfoLinesNeverInterleaveOrDrop) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();

  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int line = 0; line < kLinesPerThread; ++line) {
        GENOC_INFO("worker " << t << " line " << line);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }

  const std::string captured = testing::internal::GetCapturedStderr();
  set_log_level(previous);

  // Every captured line must be one complete log record; a torn write
  // would produce a fragment (or a doubled prefix) that fails the match.
  const std::regex record(R"(^\[genoc INFO \] worker [0-7] line \d+$)");
  std::istringstream lines(captured);
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_TRUE(std::regex_match(line, record))
        << "torn or foreign log line: '" << line << "'";
    ++count;
  }
  EXPECT_EQ(count, kThreads * kLinesPerThread);
}

}  // namespace
}  // namespace genoc
