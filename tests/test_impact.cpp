// Tests for deadlock impact analysis, injection-time bounds, and the state
// renderer.
#include <gtest/gtest.h>

#include "core/hermes.hpp"
#include "core/injection_time.hpp"
#include "deadlock/impact.hpp"
#include "deadlock/witness.hpp"
#include "graph/cycle.hpp"
#include "routing/fully_adaptive.hpp"
#include "sim/render.hpp"
#include "switching/wormhole.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

TEST(Impact, ClassifiesCycleAndBystanders) {
  // Build the witness deadlock, then add an innocent packet queued behind
  // one of the cycle ports and one that never entered.
  const Mesh2D mesh(2, 2);
  const FullyAdaptiveRouting fa(mesh);
  const PortDepGraph dep = build_dep_graph(fa);
  const auto cycle = find_cycle(dep.graph);
  ASSERT_TRUE(cycle.has_value());
  DeadlockConstruction witness = build_deadlock_from_cycle(fa, dep, *cycle, 2);

  // A packet whose entire journey waits on a cycle port: route it into one.
  const Port blocked_target = dep.port_of(cycle->front());
  // Find a travel from L-in(0,0) whose first hops reach the blocked port's
  // node; simplest: a packet stuck outside (its L-in is free, but we keep
  // it outside by picking an L-in owned by nobody — it *will* enter). To
  // keep it genuinely stuck, aim its second hop at a full cycle port.
  (void)blocked_target;
  const WormholeSwitching wh;
  ASSERT_TRUE(is_deadlock(wh, witness.state));

  const DeadlockImpact impact = analyze_deadlock_impact(wh, witness.state);
  EXPECT_FALSE(impact.cycle_packets.empty());
  EXPECT_FALSE(impact.cycle_ports.empty());
  // Every undelivered packet is classified exactly once.
  EXPECT_EQ(impact.cycle_packets.size() + impact.blocked_behind.size() +
                impact.never_entered.size(),
            witness.state.undelivered_count());
  EXPECT_NE(impact.summary().find("cyclic wait"), std::string::npos);
}

TEST(Impact, RequiresDeadlockedState) {
  const HermesInstance hermes(2, 2, 1);
  Config config = hermes.make_config({{NodeCoord{0, 0}, NodeCoord{1, 1}}}, 1);
  const WormholeSwitching wh;
  EXPECT_THROW(analyze_deadlock_impact(wh, config.state()),
               ContractViolation);
}

TEST(InjectionBound, AllTravelsEnterWithinTheGenericBound) {
  const HermesInstance hermes(4, 4, 1);
  // Heavy same-source pressure: eight packets from one node.
  std::vector<TrafficPair> pairs;
  for (int i = 0; i < 8; ++i) {
    pairs.push_back({NodeCoord{0, 0}, NodeCoord{3, (i % 4)}});
  }
  Config config = hermes.make_config(pairs, 4);
  const GenocRunResult run = hermes.run(config);
  ASSERT_TRUE(run.evacuated);
  const InjectionBoundReport report = check_injection_bound(config, run);
  EXPECT_TRUE(report.all_within_generic_bound) << report.summary();
  EXPECT_EQ(report.per_travel.size(), pairs.size());
  EXPECT_LE(report.max_entry_step, report.generic_bound);
  // Entries are strictly ordered per source (FIFO by id at the L-in).
  for (std::size_t i = 1; i < report.per_travel.size(); ++i) {
    EXPECT_GT(report.per_travel[i].entry_step,
              report.per_travel[i - 1].entry_step);
  }
}

TEST(InjectionBound, UncontendedTravelsMeetTheLocalEstimate) {
  const HermesInstance hermes(3, 3, 2);
  // Distinct sources, no contention: everyone enters at step 0 and the
  // local estimate (0 predecessors) trivially holds.
  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 2}}, {NodeCoord{2, 0}, NodeCoord{0, 2}}},
      3);
  const GenocRunResult run = hermes.run(config);
  const InjectionBoundReport report = check_injection_bound(config, run);
  EXPECT_DOUBLE_EQ(report.local_estimate_hit_rate, 1.0);
  EXPECT_EQ(report.max_entry_step, 0u);
}

TEST(InjectionBound, RequiresEvacuatedRun) {
  const HermesInstance hermes(2, 2, 1);
  Config config = hermes.make_config({{NodeCoord{0, 0}, NodeCoord{1, 1}}}, 1);
  GenocRunResult unfinished;
  EXPECT_THROW(check_injection_bound(config, unfinished), ContractViolation);
}

TEST(Render, OccupancyGridShowsFlitsAndFullPorts) {
  const HermesInstance hermes(3, 2, 1);
  Config config = hermes.make_config({{NodeCoord{0, 0}, NodeCoord{2, 1}}}, 2);
  // Empty network: all dots.
  const std::string empty = render_occupancy(config.state());
  EXPECT_NE(empty.find('.'), std::string::npos);
  EXPECT_EQ(empty.find('*'), std::string::npos);
  // Step until something is buffered.
  hermes.switching().step(config.state());
  const std::string busy = render_occupancy(config.state());
  EXPECT_NE(busy.find('1'), std::string::npos);
  // Capacity-1 ports holding a flit are full -> '*' appears.
  EXPECT_NE(busy.find('*'), std::string::npos);
}

TEST(Render, PacketWormShowsHeaderAndBody) {
  const HermesInstance hermes(3, 2, 2);
  Config config = hermes.make_config({{NodeCoord{0, 0}, NodeCoord{2, 0}}}, 3);
  hermes.switching().step(config.state());
  hermes.switching().step(config.state());
  const std::string worm = render_packet(config.state(), 1);
  EXPECT_NE(worm.find('H'), std::string::npos);
  EXPECT_NE(worm.find("travel 1"), std::string::npos);
  EXPECT_NE(worm.find("<0,0,L,IN>"), std::string::npos);
  EXPECT_THROW(render_packet(config.state(), 99), ContractViolation);
}

}  // namespace
}  // namespace genoc
