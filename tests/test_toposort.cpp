// Tests for topological orders and rank certificates — the machinery of the
// executable flow argument for (C-3).
#include <gtest/gtest.h>

#include "graph/toposort.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

Digraph diamond() {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  g.finalize();
  return g;
}

TEST(Toposort, OrderRespectsEdges) {
  const Digraph g = diamond();
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  ASSERT_EQ(order->size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order->size(); ++i) {
    position[(*order)[i]] = i;
  }
  for (const auto& [from, to] : g.edges()) {
    EXPECT_LT(position[from], position[to]);
  }
}

TEST(Toposort, DeterministicTieBreaking) {
  Digraph g(3);  // no edges: order must be 0,1,2
  g.finalize();
  const auto order = topological_order(g);
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Toposort, CycleYieldsNullopt) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.finalize();
  EXPECT_FALSE(topological_order(g).has_value());
  EXPECT_FALSE(longest_path_ranks(g).has_value());
}

TEST(Toposort, LongestPathRanks) {
  const Digraph g = diamond();
  const auto rank = longest_path_ranks(g);
  ASSERT_TRUE(rank.has_value());
  EXPECT_EQ((*rank)[0], 0u);
  EXPECT_EQ((*rank)[1], 1u);
  EXPECT_EQ((*rank)[2], 1u);
  EXPECT_EQ((*rank)[3], 2u);
}

TEST(RankCertificate, AcceptsValidRanks) {
  const Digraph g = diamond();
  EXPECT_TRUE(verify_rank_certificate(g, {0, 1, 1, 2}));
  EXPECT_TRUE(verify_rank_certificate(g, {-5, 0, 7, 100}));
}

TEST(RankCertificate, RejectsViolations) {
  const Digraph g = diamond();
  EXPECT_FALSE(verify_rank_certificate(g, {0, 0, 1, 2}));  // edge 0->1 flat
  const auto violation = find_rank_violation(g, {0, 0, 1, 2});
  ASSERT_TRUE(violation.has_value());
  using Edge = std::pair<std::size_t, std::size_t>;
  EXPECT_EQ(*violation, (Edge{0, 1}));
}

TEST(RankCertificate, NoValidRankForCyclicGraph) {
  // Any rank assignment must fail on some edge of a cycle.
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.finalize();
  EXPECT_FALSE(verify_rank_certificate(g, {0, 1, 2}));
  EXPECT_FALSE(verify_rank_certificate(g, {2, 1, 0}));
}

TEST(RankCertificate, SizeMismatchThrows) {
  const Digraph g = diamond();
  EXPECT_THROW(verify_rank_certificate(g, {0, 1}), ContractViolation);
}

}  // namespace
}  // namespace genoc
