// Tests for the CSR digraph substrate.
#include <gtest/gtest.h>

#include "graph/digraph.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

TEST(Digraph, EmptyGraph) {
  Digraph g(0);
  g.finalize();
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.edges().empty());
}

TEST(Digraph, BuildAndQuery) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.finalize();
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  const auto succ = g.out(0);
  ASSERT_EQ(succ.size(), 2u);
  EXPECT_EQ(succ[0], 1u);
  EXPECT_EQ(succ[1], 2u);
}

TEST(Digraph, ParallelEdgesCoalesce) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, SelfLoopsKept) {
  Digraph g(2);
  g.add_edge(1, 1);
  g.finalize();
  EXPECT_TRUE(g.has_edge(1, 1));
}

TEST(Digraph, FinalizeIsIdempotent) {
  Digraph g(2);
  g.add_edge(0, 1);
  g.finalize();
  g.finalize();
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, ContractChecks) {
  Digraph g(2);
  EXPECT_THROW(g.add_edge(0, 2), ContractViolation);
  EXPECT_THROW(g.out(0), ContractViolation);  // not finalized yet
  g.finalize();
  EXPECT_THROW(g.add_edge(0, 1), ContractViolation);  // already finalized
  EXPECT_THROW(g.out(5), ContractViolation);
}

TEST(Digraph, EdgesInCsrOrder) {
  Digraph g(3);
  g.add_edge(2, 0);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  g.finalize();
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  using Edge = std::pair<std::size_t, std::size_t>;
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2}));
  EXPECT_EQ(edges[2], (Edge{2, 0}));
}

TEST(Digraph, Reversed) {
  Digraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  const Digraph r = g.reversed();
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_FALSE(r.has_edge(0, 1));
  EXPECT_EQ(r.edge_count(), 2u);
}

TEST(Digraph, InducedSubgraph) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  g.finalize();
  const Digraph sub = g.induced({1, 1, 0, 1});
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(3, 0));
  EXPECT_FALSE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(2, 3));
  EXPECT_EQ(sub.edge_count(), 2u);
  EXPECT_THROW(g.induced({1, 1}), ContractViolation);
}

}  // namespace
}  // namespace genoc
