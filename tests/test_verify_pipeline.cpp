// VerifyPipeline tests: the api_redesign acceptance bars.
//
//  1. BIT-IDENTITY — the pipeline's verdicts equal a verbatim reimplementation
//     of the pre-pipeline NetworkInstance::verify (the "legacy oracle" below)
//     on every registry preset, sequentially and on 4/8-thread pools, with
//     and without a shared artifact store.
//  2. ARTIFACT-CACHE ACCOUNTING — `verify --all` style sweeps prime each
//     distinct topology x routing x escape closure exactly once; duplicate
//     prefixes are cache hits, counted and asserted.
//  3. The stage registry: names, unknown-stage rejection, subset pipelines
//     (skip reasons, the "undecided" verdict) and typed Diagnostics.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "deadlock/constraints.hpp"
#include "deadlock/escape.hpp"
#include "graph/cycle.hpp"
#include "graph/tarjan.hpp"
#include "instance/batch_runner.hpp"
#include "instance/network_instance.hpp"
#include "instance/registry.hpp"
#include "verify/artifacts.hpp"
#include "verify/pipeline.hpp"

namespace genoc {
namespace {

/// The pre-pipeline NetworkInstance::verify, reproduced verbatim from the
/// last monolithic revision. This is the oracle the redesign must match
/// bit-for-bit (modulo cpu_ms): if a pipeline stage ever drifts — a changed
/// note string, a different check count, a witness from another cycle — the
/// comparison below catches it.
InstanceVerdict legacy_verify(const NetworkInstance& instance,
                              const InstanceVerifyOptions& options) {
  InstanceVerdict verdict;
  verdict.instance = instance.name();
  verdict.spec = to_spec_string(instance.spec());
  verdict.topology = instance.spec().topology;
  verdict.routing = instance.routing().name();
  verdict.switching = instance.switching().name();
  verdict.nodes = instance.topology().node_count();
  verdict.ports = instance.topology().port_count();
  verdict.deterministic = instance.routing().is_deterministic();
  verdict.expected_deadlock_free = instance.spec().expect_deadlock_free;

  const PortDepGraph dep = options.generic_builder
                               ? build_dep_graph(instance.routing())
                               : instance.dependency_graph(options.runner);
  verdict.edges = dep.graph.edge_count();
  verdict.checks =
      static_cast<std::uint64_t>(instance.topology().port_count()) *
          instance.topology().destination_count() +
      verdict.edges;

  std::optional<CycleWitness> cycle;
  if (options.runner != nullptr) {
    if (has_nontrivial_scc(dep.graph, *options.runner)) {
      cycle = find_cycle(dep.graph);
    }
  } else {
    cycle = find_cycle(dep.graph);
  }
  verdict.dep_acyclic = !cycle.has_value();
  if (verdict.dep_acyclic) {
    verdict.deadlock_free = true;
    verdict.method = "Theorem 1 (C-3)";
    verdict.note = "dependency graph acyclic";
  } else if (instance.escape() != nullptr) {
    const EscapeAnalysis analysis = analyze_escape(
        instance.routing(), *instance.escape(), options.runner);
    verdict.deadlock_free = analysis.deadlock_free;
    verdict.method = "escape(" + instance.spec().escape + ")";
    verdict.note = analysis.summary();
    verdict.checks += analysis.states_checked;
  } else {
    verdict.deadlock_free = false;
    verdict.method = "cycle";
    verdict.note = "dependency cycle of length " +
                   std::to_string(cycle->size()) + " through " +
                   dep.label(cycle->front()) +
                   " and no escape lane (Theorem 1: deadlock reachable)";
  }

  if (options.check_constraints) {
    const ConstraintReport c1 = check_c1(instance.routing(), dep);
    const ConstraintReport c2 = check_c2(instance.routing(), dep);
    verdict.constraints_ok = c1.satisfied && c2.satisfied;
    verdict.checks += c1.checks + c2.checks;
    if (!verdict.constraints_ok) {
      verdict.deadlock_free = false;
      verdict.note += "; constraint violation: " +
                      (c1.satisfied ? c2.summary() : c1.summary());
    }
  }
  return verdict;
}

void expect_verdicts_equal(const InstanceVerdict& got,
                           const InstanceVerdict& want,
                           const std::string& context) {
  EXPECT_EQ(got.instance, want.instance) << context;
  EXPECT_EQ(got.spec, want.spec) << context;
  EXPECT_EQ(got.topology, want.topology) << context;
  EXPECT_EQ(got.routing, want.routing) << context;
  EXPECT_EQ(got.switching, want.switching) << context;
  EXPECT_EQ(got.nodes, want.nodes) << context;
  EXPECT_EQ(got.ports, want.ports) << context;
  EXPECT_EQ(got.edges, want.edges) << context;
  EXPECT_EQ(got.deterministic, want.deterministic) << context;
  EXPECT_EQ(got.dep_acyclic, want.dep_acyclic) << context;
  EXPECT_EQ(got.deadlock_free, want.deadlock_free) << context;
  EXPECT_EQ(got.method, want.method) << context;
  EXPECT_EQ(got.note, want.note) << context;
  EXPECT_EQ(got.constraints_ok, want.constraints_ok) << context;
  EXPECT_EQ(got.checks, want.checks) << context;
}

/// The sweep population every equality test ranges over: the non-heavy
/// registry capped at the 64x64 oracle scale (mesh128-xy has its own test —
/// a sequential legacy pass there costs ~10 s under ASan per thread count
/// and adds no logic the 64x64 presets lack).
std::vector<InstanceSpec> equality_presets() {
  auto presets = InstanceRegistry::global().sweep_presets();
  std::erase_if(presets, [](const InstanceSpec& spec) {
    return spec.node_count() > InstanceRegistry::kOracleNodeLimit;
  });
  return presets;
}

TEST(VerifyPipeline, MatchesLegacyAcrossThreadCountsOnSmallPresets) {
  // 1/4/8-thread pools on every preset up to 16x16 (the 64x64-class presets
  // get their own single-pass tests below: on this container each escape
  // analysis there costs seconds, and the thread axis adds no logic the
  // small escape presets don't already cover).
  auto presets = equality_presets();
  std::erase_if(presets, [](const InstanceSpec& spec) {
    return spec.node_count() > 16 * 16;
  });
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    BatchRunner runner(threads);
    for (const InstanceSpec& spec : presets) {
      const NetworkInstance instance(spec);
      InstanceVerifyOptions options;
      options.runner = &runner;
      const InstanceVerdict want = legacy_verify(instance, options);
      // Wrapper path (instance-borrowed artifacts).
      expect_verdicts_equal(
          instance.verify(options), want,
          spec.name + " wrapper @" + std::to_string(threads) + "t");
      // Explicit pipeline over a store-shared context.
      ArtifactStore store;
      const std::shared_ptr<AnalysisArtifacts> artifacts =
          store.acquire(spec);
      const VerifyReport report =
          VerifyPipeline::standard().run(instance, *artifacts, options);
      expect_verdicts_equal(
          report.verdict, want,
          spec.name + " store @" + std::to_string(threads) + "t");
    }
  }
}

TEST(VerifyPipeline, MatchesLegacyOnThePoolOnEveryPreset) {
  BatchRunner runner(4);
  for (const InstanceSpec& spec : equality_presets()) {
    const NetworkInstance instance(spec);
    InstanceVerifyOptions options;
    options.runner = &runner;
    expect_verdicts_equal(instance.verify(options),
                          legacy_verify(instance, options),
                          spec.name + " @4t");
  }
}

TEST(VerifyPipeline, MatchesLegacyVerdictsSequentially) {
  for (const InstanceSpec& spec : equality_presets()) {
    const NetworkInstance instance(spec);
    const InstanceVerifyOptions options;  // no pool
    expect_verdicts_equal(instance.verify(options),
                          legacy_verify(instance, options),
                          spec.name + " sequential");
  }
}

TEST(VerifyPipeline, MatchesLegacyWithConstraintsAndGenericBuilder) {
  // The option axes the sweep tests leave off, on presets small enough for
  // the quadratic (C-2) witness search and the generic oracle builder.
  for (const std::string& name :
       {std::string("hermes"), std::string("mesh8-adaptive"),
        std::string("hermes-torus")}) {
    const InstanceSpec* spec = InstanceRegistry::global().find(name);
    ASSERT_NE(spec, nullptr) << name;
    const NetworkInstance instance(*spec);
    for (const bool generic : {false, true}) {
      InstanceVerifyOptions options;
      options.check_constraints = true;
      options.generic_builder = generic;
      expect_verdicts_equal(instance.verify(options),
                            legacy_verify(instance, options),
                            name + (generic ? " generic" : " fast"));
    }
  }
}

TEST(VerifyPipeline, Mesh128MatchesLegacyOnThePool) {
  const InstanceSpec* spec = InstanceRegistry::global().find("mesh128-xy");
  ASSERT_NE(spec, nullptr);
  BatchRunner runner(4);
  InstanceVerifyOptions options;
  options.runner = &runner;
  const NetworkInstance instance(*spec);
  expect_verdicts_equal(instance.verify(options),
                        legacy_verify(instance, options), "mesh128-xy @4t");
}

TEST(VerifyPipeline, BatchSweepPrimesEachDistinctClosureExactlyOnce) {
  // The acceptance bar: a `verify --all` shaped sweep over a shared store
  // builds each distinct topology x routing x escape context exactly once.
  const std::vector<InstanceSpec> presets = equality_presets();
  std::set<std::string> keys;
  for (const InstanceSpec& spec : presets) {
    keys.insert(AnalysisArtifacts::key(spec));
  }
  ASSERT_LT(keys.size(), presets.size())
      << "the registry should contain at least one duplicate analysis "
         "prefix (mesh8-xy vs mesh8-xy-sf) for this test to bite";

  BatchRunner runner(4);
  InstanceVerifyOptions base;
  ArtifactStore store;
  base.artifacts = &store;
  const std::vector<VerifyReport> reports = verify_instance_reports(
      presets, VerifyPipeline::standard(), &runner, base);
  ASSERT_EQ(reports.size(), presets.size());

  // Distinct contexts materialized once; duplicates acquired as hits.
  EXPECT_EQ(store.context_count(), keys.size());
  const ArtifactCacheStats stats = store.stats();
  EXPECT_EQ(stats.contexts.misses, keys.size());
  EXPECT_EQ(stats.contexts.hits, presets.size() - keys.size());
  // One dependency-graph build per distinct context — never per instance.
  EXPECT_EQ(stats.dep_graph.misses, keys.size());
  EXPECT_EQ(stats.acyclicity.misses, keys.size());
  // One primed closure per distinct context that needed one (= reached the
  // escape analysis), and zero redundant re-primes anywhere in the sweep.
  std::set<std::string> escape_keys;
  for (std::size_t i = 0; i < presets.size(); ++i) {
    if (reports[i].verdict.method.rfind("escape(", 0) == 0) {
      escape_keys.insert(AnalysisArtifacts::key(presets[i]));
    }
  }
  EXPECT_EQ(stats.primed.misses, escape_keys.size());
  EXPECT_EQ(stats.primed.hits, 0u);
  EXPECT_EQ(stats.escape.misses, escape_keys.size());
}

TEST(VerifyPipeline, DuplicateSpecsInOneBatchShareEveryArtifact) {
  const InstanceSpec* torus = InstanceRegistry::global().find("torus8-xy");
  ASSERT_NE(torus, nullptr);
  // Same analysis prefix three times (one under a different workload), plus
  // one unrelated preset.
  InstanceSpec other_workload = *torus;
  other_workload.name = "torus8-xy-alt";
  other_workload.messages = 7;
  other_workload.pattern = "transpose";
  const InstanceSpec* mesh = InstanceRegistry::global().find("mesh8-xy");
  ASSERT_NE(mesh, nullptr);
  const std::vector<InstanceSpec> specs = {*torus, other_workload, *torus,
                                           *mesh};

  InstanceVerifyOptions base;
  ArtifactStore store;
  base.artifacts = &store;
  const std::vector<VerifyReport> reports = verify_instance_reports(
      specs, VerifyPipeline::standard(), nullptr, base);
  EXPECT_EQ(store.context_count(), 2u);
  const ArtifactCacheStats stats = store.stats();
  EXPECT_EQ(stats.contexts.misses, 2u);
  EXPECT_EQ(stats.contexts.hits, 2u);
  EXPECT_EQ(stats.dep_graph.misses, 2u);
  EXPECT_EQ(stats.escape.misses, 1u);   // the torus context, once
  EXPECT_EQ(stats.escape.hits, 2u);     // reused by both torus duplicates
  EXPECT_EQ(stats.primed.misses, 1u);
  // And the shared-artifact verdicts still equal the solo ones.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    expect_verdicts_equal(reports[i].verdict,
                          NetworkInstance(specs[i]).verify({}),
                          "duplicate-batch row " + std::to_string(i));
  }
}

TEST(VerifyPipeline, StageRegistryExposesTheStandardOrder) {
  const std::vector<std::string> names = VerifyPipeline::default_stage_names();
  const std::vector<std::string> want = {"build_depgraph", "scc_acyclicity",
                                         "escape", "constraints"};
  EXPECT_EQ(names, want);
  for (const std::string& name : want) {
    EXPECT_NE(CheckRegistry::global().find(name), nullptr) << name;
  }
  EXPECT_EQ(CheckRegistry::global().find("no-such-stage"), nullptr);
}

TEST(VerifyPipeline, UnknownStageNamesAreRejectedWithTheKnownList) {
  std::string error;
  EXPECT_FALSE(VerifyPipeline::from_stage_names({"escape", "banana"}, &error)
                   .has_value());
  EXPECT_NE(error.find("banana"), std::string::npos);
  EXPECT_NE(error.find("scc_acyclicity"), std::string::npos);
  EXPECT_FALSE(VerifyPipeline::from_stage_names({}, &error).has_value());
  // Duplicates would re-run a stage's verdict mutations (double-counted
  // checks, duplicated diagnostics).
  EXPECT_FALSE(VerifyPipeline::from_stage_names({"escape", "escape"}, &error)
                   .has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(VerifyPipeline, SubsetWithoutDecidingStageIsUndecided) {
  const InstanceSpec* spec = InstanceRegistry::global().find("mesh8-xy");
  ASSERT_NE(spec, nullptr);
  std::string error;
  const auto pipeline =
      VerifyPipeline::from_stage_names({"build_depgraph"}, &error);
  ASSERT_TRUE(pipeline.has_value()) << error;
  const VerifyReport report =
      pipeline->run(NetworkInstance(*spec), InstanceVerifyOptions{});
  EXPECT_FALSE(report.verdict.deadlock_free);
  EXPECT_EQ(report.verdict.method, "undecided");
  ASSERT_EQ(report.stages.size(), 1u);
  EXPECT_TRUE(report.stages[0].ran);
  const auto undecided = std::find_if(
      report.diagnostics.begin(), report.diagnostics.end(),
      [](const Diagnostic& d) { return d.code == "undecided"; });
  ASSERT_NE(undecided, report.diagnostics.end());
  EXPECT_EQ(undecided->severity, Severity::kWarning);
}

TEST(VerifyPipeline, SubsetStagesStillPublishTheGraphFactsTheyComputed) {
  // --stages escape omits build_depgraph/scc_acyclicity, but the artifact
  // cache computes the graph on demand — the report must carry its real
  // shape, not zero-initialized defaults.
  const InstanceSpec* spec = InstanceRegistry::global().find("torus8-xy");
  ASSERT_NE(spec, nullptr);
  std::string error;
  const auto pipeline = VerifyPipeline::from_stage_names({"escape"}, &error);
  ASSERT_TRUE(pipeline.has_value()) << error;
  const VerifyReport report =
      pipeline->run(NetworkInstance(*spec), InstanceVerifyOptions{});
  const InstanceVerdict full =
      NetworkInstance(*spec).verify(InstanceVerifyOptions{});
  EXPECT_EQ(report.verdict.edges, full.edges);
  EXPECT_EQ(report.verdict.dep_acyclic, full.dep_acyclic);
  EXPECT_EQ(report.verdict.deadlock_free, full.deadlock_free);
  EXPECT_EQ(report.verdict.method, full.method);
}

TEST(VerifyPipeline, ConstraintsOnlySubsetStaysUndecidedWhenTheyPass) {
  // (C-1)/(C-2) holding does not prove deadlock-freedom: a subset without a
  // deciding stage must still report "undecided" — but with the constraint
  // evidence accounted.
  const InstanceSpec* spec = InstanceRegistry::global().find("hermes");
  ASSERT_NE(spec, nullptr);
  std::string error;
  const auto pipeline = VerifyPipeline::from_stage_names(
      {"build_depgraph", "constraints"}, &error);
  ASSERT_TRUE(pipeline.has_value()) << error;
  InstanceVerifyOptions options;
  options.check_constraints = true;
  const VerifyReport report =
      pipeline->run(NetworkInstance(*spec), options);
  EXPECT_TRUE(report.verdict.constraints_ok);
  EXPECT_FALSE(report.verdict.deadlock_free);
  EXPECT_EQ(report.verdict.method, "undecided");
  ASSERT_EQ(report.stages.size(), 2u);
  EXPECT_TRUE(report.stages[1].ran);
  EXPECT_TRUE(report.stages[1].passed);
  EXPECT_GT(report.stages[1].checks, 0u);
}

TEST(VerifyPipeline, EscapeStageSkipsOnAcyclicGraphsAndExplainsWhy) {
  const InstanceSpec* spec = InstanceRegistry::global().find("mesh8-xy");
  ASSERT_NE(spec, nullptr);
  const VerifyReport report = VerifyPipeline::standard().run(
      NetworkInstance(*spec), InstanceVerifyOptions{});
  const auto escape_stats = std::find_if(
      report.stages.begin(), report.stages.end(),
      [](const StageStats& s) { return s.stage == "escape"; });
  ASSERT_NE(escape_stats, report.stages.end());
  EXPECT_FALSE(escape_stats->ran);
  EXPECT_NE(escape_stats->skip_reason.find("acyclic"), std::string::npos);
  const auto constraints_stats = std::find_if(
      report.stages.begin(), report.stages.end(),
      [](const StageStats& s) { return s.stage == "constraints"; });
  ASSERT_NE(constraints_stats, report.stages.end());
  EXPECT_FALSE(constraints_stats->ran);
  EXPECT_NE(constraints_stats->skip_reason.find("--constraints"),
            std::string::npos);
}

TEST(VerifyPipeline, TypedDiagnosticsCarryTheEvidence) {
  // Cyclic primary graph cured by the escape lane: expect the info build
  // record, the warning cycle, and the info escape verification.
  const InstanceSpec* cured = InstanceRegistry::global().find("torus8-xy");
  ASSERT_NE(cured, nullptr);
  const VerifyReport cured_report = VerifyPipeline::standard().run(
      NetworkInstance(*cured), InstanceVerifyOptions{});
  std::vector<std::string> codes;
  for (const Diagnostic& diagnostic : cured_report.diagnostics) {
    codes.push_back(diagnostic.code);
  }
  const std::vector<std::string> want = {"depgraph-built", "dep-cyclic",
                                         "escape-verified"};
  EXPECT_EQ(codes, want);
  const Diagnostic& cyclic = cured_report.diagnostics[1];
  EXPECT_EQ(cyclic.severity, Severity::kWarning);
  ASSERT_FALSE(cyclic.witness.empty());
  EXPECT_EQ(cyclic.witness[0].first, "cycle_length");

  // Cyclic with NO escape lane: the error diagnostic carries the legacy
  // note verbatim.
  std::string error;
  const auto prone = InstanceRegistry::global().resolve(
      "topology=torus size=4x4 routing=torus_xy", &error);
  ASSERT_TRUE(prone.has_value()) << error;
  const VerifyReport prone_report = VerifyPipeline::standard().run(
      NetworkInstance(*prone), InstanceVerifyOptions{});
  const auto no_lane = std::find_if(
      prone_report.diagnostics.begin(), prone_report.diagnostics.end(),
      [](const Diagnostic& d) { return d.code == "no-escape-lane"; });
  ASSERT_NE(no_lane, prone_report.diagnostics.end());
  EXPECT_EQ(no_lane->severity, Severity::kError);
  EXPECT_EQ(no_lane->message, prone_report.verdict.note);
}

TEST(VerifyPipeline, ReportCacheCountersAreTheRunsOwnDelta) {
  const InstanceSpec* spec = InstanceRegistry::global().find("torus8-xy");
  ASSERT_NE(spec, nullptr);
  const NetworkInstance instance(*spec);
  ArtifactStore store;
  InstanceVerifyOptions options;
  options.artifacts = &store;
  const VerifyReport first =
      VerifyPipeline::standard().run(instance, options);
  EXPECT_EQ(first.cache.dep_graph.misses, 1u);
  EXPECT_EQ(first.cache.escape.misses, 1u);
  const VerifyReport second =
      VerifyPipeline::standard().run(instance, options);
  // The second run over the same store recomputes nothing.
  EXPECT_EQ(second.cache.dep_graph.misses, 0u);
  EXPECT_EQ(second.cache.escape.misses, 0u);
  EXPECT_EQ(second.cache.escape.hits, 1u);
  expect_verdicts_equal(second.verdict, first.verdict, "warm rerun");
}

TEST(VerifyPipeline, ArtifactKeyIgnoresWorkloadAndSwitching) {
  const InstanceSpec* a = InstanceRegistry::global().find("mesh8-xy");
  const InstanceSpec* b = InstanceRegistry::global().find("mesh8-xy-sf");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(AnalysisArtifacts::key(*a), AnalysisArtifacts::key(*b));
  const InstanceSpec* c = InstanceRegistry::global().find("mesh8-yx");
  ASSERT_NE(c, nullptr);
  EXPECT_NE(AnalysisArtifacts::key(*a), AnalysisArtifacts::key(*c));
}

}  // namespace
}  // namespace genoc
