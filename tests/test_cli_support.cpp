// Tests for the CLI support layer: round-trip JSON number formatting (the
// BENCH_*.json perf-trajectory contract) and the hardened integer flag
// parsing (malformed values surface as errors, never as silent defaults).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/json_writer.hpp"

namespace genoc::cli {
namespace {

double reparse(const std::string& text) {
  return std::strtod(text.c_str(), nullptr);
}

TEST(JsonNumber, RoundTripsLargeNsPerOpValues) {
  // The regression this guards: %.6g collapsed every ns/op >= 1e6 (the
  // 64x64-class benchmarks) to six significant digits, so the JSON
  // artifacts drifted from the measured values.
  const std::vector<double> values = {
      2312419276.75,     // ~2.3 s/op in ns — the escape 64x64 scale
      184467440.125,     // 64x64 depgraph scale
      1048576.0 + 0.25,  // just past the %.6g cliff
      1e15 + 1.0,
  };
  for (const double value : values) {
    EXPECT_EQ(reparse(json_number(value)), value) << json_number(value);
  }
}

TEST(JsonNumber, KeepsShortFormsWhenExact) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(-3.25), "-3.25");
  EXPECT_EQ(json_number(123456.0), "123456");
}

TEST(JsonNumber, RoundTripsArbitraryDoubles) {
  // Deterministic LCG sweep over magnitudes; every emitted literal must
  // parse back to the exact bit pattern.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 1000; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const double mantissa =
        static_cast<double>(state >> 11) / static_cast<double>(1ull << 53);
    const int exponent = static_cast<int>(state % 61) - 30;
    const double value = std::ldexp(mantissa + 1.0, exponent);
    EXPECT_EQ(reparse(json_number(value)), value) << json_number(value);
  }
}

TEST(JsonNumber, NonFiniteBecomesZero) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "0");
}

TEST(JsonObject, EmitsFieldsInOrder) {
  JsonObject obj;
  obj.add("name", "escape_parallel_64x64")
      .add("ns_per_op", 2312419276.75)
      .add("ok", true);
  const std::string text = obj.to_string();
  EXPECT_NE(text.find("\"name\": \"escape_parallel_64x64\""),
            std::string::npos);
  EXPECT_NE(text.find("2312419276.75"), std::string::npos);
  EXPECT_LT(text.find("name"), text.find("ns_per_op"));
}

Args make_args(std::vector<std::string> tokens) {
  static std::vector<std::string> storage;
  storage = std::move(tokens);
  static std::vector<char*> argv;
  argv.clear();
  argv.push_back(const_cast<char*>("genoc"));
  for (std::string& token : storage) {
    argv.push_back(token.data());
  }
  return Args(static_cast<int>(argv.size()), argv.data(), 1);
}

TEST(Args, RejectsGarbageIntegers) {
  const Args args = make_args({"--threads", "banana"});
  EXPECT_EQ(args.get_int_in("threads", 0, 0, 256), 0);
  ASSERT_EQ(args.errors().size(), 1u);
  EXPECT_NE(args.errors()[0].find("--threads"), std::string::npos);
}

TEST(Args, RejectsTrailingGarbage) {
  const Args args = make_args({"--threads", "4abc"});
  args.get_int_in("threads", 0, 0, 256);
  EXPECT_EQ(args.errors().size(), 1u);
}

TEST(Args, RejectsNegativesOutOfRange) {
  const Args args = make_args({"--threads", "-4"});
  EXPECT_EQ(args.get_int_in("threads", 0, 0, 256), 0);
  ASSERT_EQ(args.errors().size(), 1u);
  EXPECT_NE(args.errors()[0].find("[0, 256]"), std::string::npos);
}

TEST(Args, RejectsOverflow) {
  const Args args = make_args({"--seed", "99999999999999999999999"});
  args.get_int_in("seed", 2010, 0, std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(args.errors().size(), 1u);
}

TEST(Args, AcceptsValidIntegersAndFlags) {
  const Args args = make_args({"--threads", "8", "--sequential"});
  EXPECT_EQ(args.get_int_in("threads", 0, 0, 256), 8);
  EXPECT_TRUE(args.has("sequential"));
  EXPECT_TRUE(args.errors().empty());
  EXPECT_TRUE(args.unknown_flags().empty());
}

}  // namespace
}  // namespace genoc::cli
