// Tests for Tarjan SCC and the condensation (Taktak-style analysis core).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/cycle.hpp"
#include "graph/tarjan.hpp"

namespace genoc {
namespace {

TEST(Tarjan, SingletonComponentsInDag) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.finalize();
  const SccResult scc = tarjan_scc(g);
  EXPECT_EQ(scc.components.size(), 4u);
  for (const auto& comp : scc.components) {
    EXPECT_EQ(comp.size(), 1u);
  }
  EXPECT_FALSE(has_nontrivial_scc(g));
}

TEST(Tarjan, RingIsOneComponent) {
  Digraph g(5);
  for (std::size_t i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);
  }
  g.finalize();
  const SccResult scc = tarjan_scc(g);
  EXPECT_EQ(scc.components.size(), 1u);
  EXPECT_EQ(scc.components[0].size(), 5u);
  EXPECT_TRUE(has_nontrivial_scc(g));
}

TEST(Tarjan, MixedComponents) {
  // Two 2-cycles bridged by a path: {0,1}, {3,4} non-trivial; 2 trivial.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 3);
  g.finalize();
  const SccResult scc = tarjan_scc(g);
  EXPECT_EQ(scc.components.size(), 3u);
  std::vector<std::size_t> sizes;
  for (const auto& comp : scc.components) {
    sizes.push_back(comp.size());
  }
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<std::size_t>{1, 2, 2}));
  // Vertices of one 2-cycle share a component id.
  EXPECT_EQ(scc.component[0], scc.component[1]);
  EXPECT_EQ(scc.component[3], scc.component[4]);
  EXPECT_NE(scc.component[0], scc.component[3]);
}

TEST(Tarjan, SelfLoopIsNontrivial) {
  Digraph g(2);
  g.add_edge(0, 0);
  g.finalize();
  EXPECT_TRUE(has_nontrivial_scc(g));
  const SccResult scc = tarjan_scc(g);
  EXPECT_EQ(scc.components.size(), 2u);
}

TEST(Tarjan, CondensationIsAcyclicDag) {
  // Build a graph with several interleaved cycles; its condensation must
  // always be a DAG.
  Digraph g(8);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // SCC {0,1,2}
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);  // SCC {3,4,5}
  g.add_edge(5, 6);
  g.add_edge(6, 7);
  g.finalize();
  const SccResult scc = tarjan_scc(g);
  const Digraph dag = condensation(g, scc);
  EXPECT_EQ(dag.vertex_count(), 4u);
  EXPECT_TRUE(is_acyclic(dag));
  // The bridge edges survive.
  EXPECT_EQ(dag.edge_count(), 3u);
}

TEST(Tarjan, DeepChainDoesNotOverflow) {
  constexpr std::size_t n = 200000;
  Digraph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(i, i + 1);
  }
  g.finalize();
  const SccResult scc = tarjan_scc(g);
  EXPECT_EQ(scc.components.size(), n);
}

}  // namespace
}  // namespace genoc
