// Tests for the paper's Rxy (Sec. V.3) and its closed-form reachability
// relation, cross-validated against the semantic route closure.
#include <gtest/gtest.h>

#include "routing/route.hpp"
#include "routing/xy.hpp"

namespace genoc {
namespace {

TEST(XYRouting, FollowsThePaperCaseStructure) {
  const Mesh2D mesh(4, 4);
  const XYRouting xy(mesh);
  const Port dest = mesh.local_out(3, 2);

  // dir(p) = OUT -> next_in(p).
  const Port e_out{1, 1, PortName::kEast, Direction::kOut};
  ASSERT_EQ(xy.next_hops(e_out, dest).size(), 1u);
  EXPECT_EQ(xy.next_hops(e_out, dest)[0], next_in(e_out));

  // x(d) > x(p) -> East out.
  const Port l_in = mesh.local_in(1, 2);
  EXPECT_EQ(xy.next_hops(l_in, dest)[0],
            (Port{1, 2, PortName::kEast, Direction::kOut}));

  // x(d) < x(p) -> West out.
  EXPECT_EQ(xy.next_hops(mesh.local_in(3, 0), mesh.local_out(0, 0))[0],
            (Port{3, 0, PortName::kWest, Direction::kOut}));

  // Column correct, y(d) < y(p) -> North out (decreasing y).
  EXPECT_EQ(xy.next_hops(mesh.local_in(3, 3), dest)[0],
            (Port{3, 3, PortName::kNorth, Direction::kOut}));

  // Column correct, y(d) > y(p) -> South out.
  EXPECT_EQ(xy.next_hops(mesh.local_in(3, 0), dest)[0],
            (Port{3, 0, PortName::kSouth, Direction::kOut}));

  // At destination node -> Local out.
  EXPECT_EQ(xy.next_hops(mesh.local_in(3, 2), dest)[0], dest);

  // Delivered (Local OUT) -> no hops.
  EXPECT_TRUE(xy.next_hops(dest, dest).empty());
}

TEST(XYRouting, XBeforeY) {
  const Mesh2D mesh(4, 4);
  const XYRouting xy(mesh);
  // From (0,0) to (2,2): route must finish all x-hops before any y-hop.
  const Route route =
      compute_route(xy, mesh.local_in(0, 0), mesh.local_out(2, 2));
  bool seen_vertical = false;
  for (const Port& p : route) {
    if (p.name == PortName::kNorth || p.name == PortName::kSouth) {
      seen_vertical = true;
    }
    if (seen_vertical) {
      EXPECT_NE(p.name, PortName::kEast);
      EXPECT_NE(p.name, PortName::kWest);
    }
  }
  EXPECT_TRUE(seen_vertical);
}

TEST(XYRouting, RoutesAreMinimalAndWellFormed) {
  const Mesh2D mesh(5, 3);
  const XYRouting xy(mesh);
  for (const NodeCoord s : mesh.nodes()) {
    for (const NodeCoord d : mesh.nodes()) {
      const Port from = mesh.local_in(s.x, s.y);
      const Port to = mesh.local_out(d.x, d.y);
      const Route route = compute_route(xy, from, to);
      EXPECT_EQ(route.size(), minimal_route_length(from, to));
      EXPECT_TRUE(is_valid_route(xy, route, from, to));
      // Ports alternate IN/OUT along the route.
      for (std::size_t i = 0; i < route.size(); ++i) {
        EXPECT_EQ(route[i].dir,
                  i % 2 == 0 ? Direction::kIn : Direction::kOut);
      }
    }
  }
}

TEST(XYRouting, IsDeterministicEverywhereReachable) {
  const Mesh2D mesh(4, 4);
  const XYRouting xy(mesh);
  for (const Port& p : mesh.ports()) {
    for (const Port& d : mesh.destinations()) {
      if (!xy.reachable(p, d)) {
        continue;
      }
      if (p == d) {
        EXPECT_TRUE(xy.next_hops(p, d).empty());
        continue;
      }
      EXPECT_EQ(xy.next_hops(p, d).size(), 1u)
          << to_string(p) << " -> " << to_string(d);
    }
  }
  EXPECT_TRUE(xy.is_deterministic());
  EXPECT_TRUE(xy.is_minimal());
}

TEST(XYRouting, ReachabilityClosedFormCases) {
  const Mesh2D mesh(4, 4);
  const XYRouting xy(mesh);
  const auto L = [&](std::int32_t x, std::int32_t y) {
    return mesh.local_out(x, y);
  };
  // Local IN reaches everything.
  for (const Port& d : mesh.destinations()) {
    EXPECT_TRUE(xy.reachable(mesh.local_in(2, 1), d));
  }
  // West IN travels east: x(d) >= x(s), any y.
  const Port w_in{2, 1, PortName::kWest, Direction::kIn};
  EXPECT_TRUE(xy.reachable(w_in, L(2, 3)));
  EXPECT_TRUE(xy.reachable(w_in, L(3, 0)));
  EXPECT_FALSE(xy.reachable(w_in, L(1, 1)));
  // East IN travels west.
  const Port e_in{2, 1, PortName::kEast, Direction::kIn};
  EXPECT_TRUE(xy.reachable(e_in, L(0, 3)));
  EXPECT_FALSE(xy.reachable(e_in, L(3, 1)));
  // North IN holds southbound traffic: same column, y(d) >= y.
  const Port n_in{2, 1, PortName::kNorth, Direction::kIn};
  EXPECT_TRUE(xy.reachable(n_in, L(2, 3)));
  EXPECT_TRUE(xy.reachable(n_in, L(2, 1)));
  EXPECT_FALSE(xy.reachable(n_in, L(2, 0)));
  EXPECT_FALSE(xy.reachable(n_in, L(1, 2)));
  // Out-ports commit to the hop.
  const Port e_out{2, 1, PortName::kEast, Direction::kOut};
  EXPECT_TRUE(xy.reachable(e_out, L(3, 1)));
  EXPECT_FALSE(xy.reachable(e_out, L(2, 1)));
  // Local OUT reaches only itself.
  EXPECT_TRUE(xy.reachable(L(2, 1), L(2, 1)));
  EXPECT_FALSE(xy.reachable(L(2, 1), L(2, 2)));
  // Destinations must be existing Local OUT ports.
  EXPECT_FALSE(xy.reachable(w_in, Port{2, 2, PortName::kEast, Direction::kOut}));
  EXPECT_FALSE(xy.reachable(w_in, Port{9, 9, PortName::kLocal, Direction::kOut}));
}

// The closed-form s R d must coincide with the semantic route closure
// ("some route of Rxy passes through s on its way to d") on every mesh.
class XYReachabilitySweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(XYReachabilitySweep, ClosedFormEqualsRouteClosure) {
  const auto [w, h] = GetParam();
  const Mesh2D mesh(w, h);
  const XYRouting xy(mesh);
  for (const Port& p : mesh.ports()) {
    for (const Port& d : mesh.destinations()) {
      EXPECT_EQ(xy.reachable(p, d), xy.closure_reachable(p, d))
          << to_string(p) << " R " << to_string(d) << " on " << w << "x" << h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Meshes, XYReachabilitySweep,
                         ::testing::Values(std::pair{1, 2}, std::pair{2, 1},
                                           std::pair{2, 2}, std::pair{3, 2},
                                           std::pair{2, 3}, std::pair{3, 3},
                                           std::pair{4, 4}, std::pair{5, 3},
                                           std::pair{1, 6}, std::pair{6, 1}));

}  // namespace
}  // namespace genoc
