// build_dep_graph_delta exactness: for every node-uniform grid preset the
// delta-built dependency graph of every single-link-faulted variant is
// BIT-IDENTICAL to a full per-destination rebuild — same vertex count, same
// edge count, same CSR adjacency, edge for edge. Non-node-uniform presets
// (odd_even) exercise the documented fallback: the variant constructor
// degrades to a full build and equality holds trivially. mesh64-xy is
// covered by a sampled sweep (every 97th link) to bound runtime.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "campaign/fault_model.hpp"
#include "deadlock/depgraph.hpp"
#include "instance/registry.hpp"
#include "instance/spec.hpp"
#include "obs/metrics.hpp"
#include "verify/artifacts.hpp"

namespace genoc {
namespace {

void expect_identical(const PortDepGraph& delta, const PortDepGraph& full,
                      const std::string& context) {
  ASSERT_EQ(delta.graph.vertex_count(), full.graph.vertex_count()) << context;
  ASSERT_EQ(delta.graph.edge_count(), full.graph.edge_count()) << context;
  for (std::uint32_t v = 0; v < full.graph.vertex_count(); ++v) {
    const auto d = delta.graph.out(v);
    const auto f = full.graph.out(v);
    ASSERT_EQ(d.size(), f.size()) << context << " vertex " << v;
    for (std::size_t i = 0; i < f.size(); ++i) {
      ASSERT_EQ(d[i], f[i]) << context << " vertex " << v << " slot " << i;
    }
  }
}

/// Sweeps every single-link variant of \p base (every \p stride-th link),
/// comparing the delta-derived graph against a from-scratch rebuild.
/// stride == 0 selects automatically: exhaustive where the delta path is
/// live (node-uniform routing), sampled where the variant constructor can
/// only fall back to full builds anyway. Returns the variants compared.
std::size_t sweep_single_faults(const InstanceSpec& base, std::size_t stride) {
  const FaultModel model(base);
  FaultPlan plan;  // kSingle
  const std::vector<InstanceSpec> variants = model.variants(plan);
  auto base_artifacts = std::make_shared<AnalysisArtifacts>(base);
  base_artifacts->dep_graph(false, nullptr);
  if (stride == 0) {
    stride = base_artifacts->routing().node_uniform() ? 1 : 24;
  }
  std::size_t compared = 0;
  for (std::size_t i = 0; i < variants.size(); i += stride) {
    const InstanceSpec& vspec = variants[i];
    const std::string context =
        base.name + " failed=" + join_failed_links(vspec.failed_links);
    AnalysisArtifacts delta_artifacts(vspec, base_artifacts);
    AnalysisArtifacts full_artifacts(vspec);
    expect_identical(delta_artifacts.dep_graph(false, nullptr),
                     full_artifacts.dep_graph(false, nullptr), context);
    ++compared;
  }
  return compared;
}

TEST(DepGraphDelta, BitIdenticalOnEveryGridPresetSingleFault) {
  // Every registered grid preset small enough for an exhaustive sweep:
  // XY/YX, the turn models, torus dimension-order with escape lanes, the
  // adaptive families — whatever the registry grows, the delta must match.
  std::size_t presets = 0;
  for (const InstanceSpec& spec : InstanceRegistry::global().presets()) {
    if (!spec.is_grid() || !spec.failed_links.empty() ||
        spec.node_count() > 16 * 16) {
      continue;
    }
    SCOPED_TRACE(spec.name);
    const std::size_t compared = sweep_single_faults(spec, 0);
    EXPECT_GT(compared, 0u) << spec.name;
    ++presets;
  }
  // The registry must actually feed the sweep (mesh8-xy, mesh16-xy, the
  // turn models, both toruses at minimum).
  EXPECT_GE(presets, 8u);
}

TEST(DepGraphDelta, SampledSweepOnMesh64) {
  const InstanceSpec* spec = InstanceRegistry::global().find("mesh64-xy");
  ASSERT_NE(spec, nullptr);
  EXPECT_GE(sweep_single_faults(*spec, 97), 80u);
}

TEST(DepGraphDelta, DeltaPathIsActuallyTaken) {
  // The exactness sweep would pass vacuously if the variant constructor
  // silently fell back to full rebuilds; pin the counter.
  obs::Counter& delta_builds =
      obs::MetricsRegistry::global().counter("artifacts.dep_graph.delta_builds");
  const std::uint64_t before = delta_builds.value();
  const InstanceSpec* spec = InstanceRegistry::global().find("mesh8-xy");
  ASSERT_NE(spec, nullptr);
  const std::size_t compared = sweep_single_faults(*spec, 1);
  EXPECT_EQ(compared, 112u);  // 7*8 + 7*8 links of an 8x8 mesh
  EXPECT_EQ(delta_builds.value() - before, compared);
}

TEST(DepGraphDelta, NonNodeUniformRoutingFallsBackToFullBuild) {
  // odd_even is not node-uniform: the variant constructor must degrade to
  // the plain owning path (no delta state), and the graphs still agree
  // because both sides are full builds.
  const InstanceSpec* spec = InstanceRegistry::global().find("mesh16-oddeven");
  ASSERT_NE(spec, nullptr);
  obs::Counter& delta_builds =
      obs::MetricsRegistry::global().counter("artifacts.dep_graph.delta_builds");
  const std::uint64_t before = delta_builds.value();
  EXPECT_GT(sweep_single_faults(*spec, 24), 0u);
  EXPECT_EQ(delta_builds.value(), before);
}

}  // namespace
}  // namespace genoc
