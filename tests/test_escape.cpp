// Tests for the Duato-style escape-channel analysis (Sec. IX extension).
#include <gtest/gtest.h>

#include "deadlock/escape.hpp"
#include "graph/cycle.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/west_first.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

TEST(Escape, FullyAdaptiveWithXyEscapeIsDeadlockFree) {
  // The headline result of the extension: the unrestricted adaptive
  // function — cyclic on its own — becomes provably deadlock-free with one
  // XY-routed escape lane per port.
  for (const auto& [w, h] : {std::pair{2, 2}, std::pair{3, 3}, std::pair{4, 4},
                            std::pair{5, 3}}) {
    const Mesh2D mesh(w, h);
    const FullyAdaptiveRouting adaptive(mesh);
    const XYRouting xy(mesh);
    // Sanity: the adaptive lanes alone are cyclic.
    ASSERT_FALSE(is_acyclic(build_dep_graph(adaptive).graph));
    const EscapeAnalysis analysis = analyze_escape(adaptive, xy);
    EXPECT_TRUE(analysis.escape_always_available)
        << w << "x" << h << ": " << analysis.summary();
    EXPECT_TRUE(analysis.escape_graph_acyclic) << analysis.summary();
    EXPECT_TRUE(analysis.deadlock_free);
    EXPECT_GT(analysis.states_checked, 0u);
  }
}

TEST(Escape, EscapeGraphIsSubgraphOfExyDep) {
  // Escape states are XY-consistent after the first hop, so the escape
  // closure must live inside the paper's Exy_dep.
  const Mesh2D mesh(3, 3);
  const FullyAdaptiveRouting adaptive(mesh);
  const XYRouting xy(mesh);
  const EscapeAnalysis analysis = analyze_escape(adaptive, xy);
  const PortDepGraph exy = build_exy_dep(mesh);
  for (const auto& [from, to] : analysis.escape_graph.graph.edges()) {
    EXPECT_TRUE(exy.graph.has_edge(from, to))
        << analysis.escape_graph.label(from) << " -> "
        << analysis.escape_graph.label(to);
  }
}

TEST(Escape, WestFirstWithYxEscapeAlsoWorks) {
  // A second combination: turn-model adaptive lanes with a YX escape.
  const Mesh2D mesh(4, 4);
  const WestFirstRouting adaptive(mesh);
  const YXRouting yx(mesh);
  const EscapeAnalysis analysis = analyze_escape(adaptive, yx);
  EXPECT_TRUE(analysis.deadlock_free) << analysis.summary();
}

TEST(Escape, CyclicEscapeFunctionIsRejected) {
  // Using the fully-adaptive function as its own "escape" must fail the
  // determinism precondition.
  const Mesh2D mesh(3, 3);
  const FullyAdaptiveRouting adaptive(mesh);
  EXPECT_THROW(analyze_escape(adaptive, adaptive), ContractViolation);
}

TEST(Escape, MeshMismatchIsRejected) {
  const Mesh2D a(2, 2);
  const Mesh2D b(3, 3);
  const FullyAdaptiveRouting adaptive(a);
  const XYRouting xy(b);
  EXPECT_THROW(analyze_escape(adaptive, xy), ContractViolation);
}

TEST(Escape, SummaryIsInformative) {
  const Mesh2D mesh(2, 2);
  const FullyAdaptiveRouting adaptive(mesh);
  const XYRouting xy(mesh);
  const EscapeAnalysis analysis = analyze_escape(adaptive, xy);
  EXPECT_NE(analysis.summary().find("deadlock-free"), std::string::npos);
  EXPECT_NE(analysis.summary().find("acyclic"), std::string::npos);
}

}  // namespace
}  // namespace genoc
