// Tests for the traffic generators.
#include <gtest/gtest.h>

#include <set>

#include "util/require.hpp"
#include "workload/traffic.hpp"

namespace genoc {
namespace {

void expect_pairs_in_mesh(const Mesh2D& mesh,
                          const std::vector<TrafficPair>& pairs) {
  for (const TrafficPair& p : pairs) {
    EXPECT_TRUE(mesh.contains_node(p.source.x, p.source.y));
    EXPECT_TRUE(mesh.contains_node(p.dest.x, p.dest.y));
  }
}

TEST(Traffic, UniformRandomBasics) {
  const Mesh2D mesh(4, 4);
  Rng rng(1);
  const auto pairs = uniform_random_traffic(mesh, 50, rng);
  EXPECT_EQ(pairs.size(), 50u);
  expect_pairs_in_mesh(mesh, pairs);
  for (const TrafficPair& p : pairs) {
    EXPECT_NE(p.source, p.dest);
  }
  // Deterministic given the seed.
  Rng rng2(1);
  const auto again = uniform_random_traffic(mesh, 50, rng2);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(pairs[i].source, again[i].source);
    EXPECT_EQ(pairs[i].dest, again[i].dest);
  }
  // allow_self admits self-pairs eventually.
  Rng rng3(3);
  const auto with_self = uniform_random_traffic(mesh, 500, rng3, true);
  bool any_self = false;
  for (const TrafficPair& p : with_self) {
    any_self |= (p.source == p.dest);
  }
  EXPECT_TRUE(any_self);
}

TEST(Traffic, TransposeMapsXYToYX) {
  const Mesh2D mesh(4, 4);
  const auto pairs = transpose_traffic(mesh);
  // Diagonal nodes are skipped: 16 - 4 = 12 pairs on a square mesh.
  EXPECT_EQ(pairs.size(), 12u);
  for (const TrafficPair& p : pairs) {
    EXPECT_EQ(p.dest.x, p.source.y);
    EXPECT_EQ(p.dest.y, p.source.x);
  }
}

TEST(Traffic, BitReversalIsAPermutationImage) {
  const Mesh2D mesh(4, 4);  // 16 nodes, 4 bits
  const auto pairs = bit_reversal_traffic(mesh);
  expect_pairs_in_mesh(mesh, pairs);
  for (const TrafficPair& p : pairs) {
    EXPECT_NE(p.source, p.dest);
  }
  // Node (1,0) = index 1 = 0b0001 -> 0b1000 = index 8 = (0,2).
  bool found = false;
  for (const TrafficPair& p : pairs) {
    if (p.source == NodeCoord{1, 0}) {
      EXPECT_EQ(p.dest, (NodeCoord{0, 2}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Traffic, HotspotSkewsDestinations) {
  const Mesh2D mesh(4, 4);
  Rng rng(5);
  const NodeCoord hotspot{1, 1};
  const auto pairs = hotspot_traffic(mesh, 400, hotspot, 0.7, rng);
  EXPECT_EQ(pairs.size(), 400u);
  std::size_t to_hotspot = 0;
  for (const TrafficPair& p : pairs) {
    if (p.dest == hotspot) {
      ++to_hotspot;
    }
  }
  EXPECT_GT(to_hotspot, 200u);
  EXPECT_THROW(hotspot_traffic(mesh, 1, NodeCoord{9, 9}, 0.5, rng),
               ContractViolation);
  EXPECT_THROW(hotspot_traffic(mesh, 1, hotspot, 1.5, rng),
               ContractViolation);
}

TEST(Traffic, AllToOneAndOneToAll) {
  const Mesh2D mesh(3, 3);
  const auto in = all_to_one_traffic(mesh, NodeCoord{1, 1});
  EXPECT_EQ(in.size(), 8u);
  for (const TrafficPair& p : in) {
    EXPECT_EQ(p.dest, (NodeCoord{1, 1}));
  }
  const auto out = one_to_all_traffic(mesh, NodeCoord{0, 0});
  EXPECT_EQ(out.size(), 8u);
  for (const TrafficPair& p : out) {
    EXPECT_EQ(p.source, (NodeCoord{0, 0}));
  }
}

TEST(Traffic, NeighborWrapsRows) {
  const Mesh2D mesh(3, 2);
  const auto pairs = neighbor_traffic(mesh);
  EXPECT_EQ(pairs.size(), 6u);
  for (const TrafficPair& p : pairs) {
    EXPECT_EQ(p.dest.x, (p.source.x + 1) % 3);
    EXPECT_EQ(p.dest.y, p.source.y);
  }
}

TEST(Traffic, PermutationHasDistinctDestinations) {
  const Mesh2D mesh(4, 4);
  Rng rng(11);
  const auto pairs = permutation_traffic(mesh, rng);
  std::set<std::pair<int, int>> dests;
  for (const TrafficPair& p : pairs) {
    EXPECT_NE(p.source, p.dest);
    dests.emplace(p.dest.x, p.dest.y);
  }
  EXPECT_EQ(dests.size(), pairs.size());
}

TEST(Traffic, RingCoversThePerimeter) {
  const Mesh2D mesh(4, 3);
  const auto pairs = ring_traffic(mesh, 2);
  // Perimeter of a 4x3 mesh: 2*4 + 2*3 - 4 = 10 nodes.
  EXPECT_EQ(pairs.size(), 10u);
  expect_pairs_in_mesh(mesh, pairs);
  for (const TrafficPair& p : pairs) {
    const bool on_border = p.source.x == 0 || p.source.x == 3 ||
                           p.source.y == 0 || p.source.y == 2;
    EXPECT_TRUE(on_border);
  }
  EXPECT_THROW(ring_traffic(mesh, 0), ContractViolation);
}

TEST(Traffic, DispatcherCoversEveryPattern) {
  const Mesh2D mesh(4, 4);
  for (const TrafficPattern pattern :
       {TrafficPattern::kUniformRandom, TrafficPattern::kTranspose,
        TrafficPattern::kBitReversal, TrafficPattern::kHotspot,
        TrafficPattern::kAllToOne, TrafficPattern::kNeighbor,
        TrafficPattern::kPermutation, TrafficPattern::kRing}) {
    Rng rng(2);
    const auto pairs = generate_traffic(pattern, mesh, 20, rng);
    EXPECT_FALSE(pairs.empty()) << traffic_pattern_name(pattern);
    expect_pairs_in_mesh(mesh, pairs);
    EXPECT_STRNE(traffic_pattern_name(pattern), "?");
  }
}

}  // namespace
}  // namespace genoc
