// Tests for the termination measures (paper Sec. VI.B): the paper's μxy and
// the flit-granular refinement used for (C-5).
#include <gtest/gtest.h>

#include "core/hermes.hpp"
#include "core/measure.hpp"

namespace genoc {
namespace {

class MeasureTest : public ::testing::Test {
 protected:
  MeasureTest() : hermes_(3, 3, 2) {}
  HermesInstance hermes_;
  RouteLengthMeasure mu_xy_;
  FlitLevelMeasure mu_flit_;
};

TEST_F(MeasureTest, InitialValues) {
  Config config = hermes_.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 1}}}, 3);
  // Route length 2 + 2*3 = 8 ports.
  EXPECT_EQ(mu_xy_.value(config), 8u);
  // Flit level: 3 flits x 8 moves each.
  EXPECT_EQ(mu_flit_.value(config), 24u);
}

TEST_F(MeasureTest, ZeroIffEvacuated) {
  Config config = hermes_.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 2}}, {NodeCoord{2, 0}, NodeCoord{0, 1}}},
      2);
  EXPECT_GT(mu_flit_.value(config), 0u);
  EXPECT_GT(mu_xy_.value(config), 0u);
  hermes_.run(config);
  ASSERT_TRUE(config.all_arrived());
  EXPECT_EQ(mu_flit_.value(config), 0u);
  EXPECT_EQ(mu_xy_.value(config), 0u);
}

TEST_F(MeasureTest, FlitMeasureStrictlyDecreasesEveryStep) {
  // (C-5) with the flit-level measure: strict decrease on EVERY step.
  Config config = hermes_.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 2}},
       {NodeCoord{2, 2}, NodeCoord{0, 0}},
       {NodeCoord{1, 0}, NodeCoord{1, 2}},
       {NodeCoord{0, 2}, NodeCoord{2, 0}}},
      4);
  std::uint64_t previous = mu_flit_.value(config);
  while (!config.all_arrived()) {
    ASSERT_FALSE(is_deadlock(hermes_.switching(), config.state()));
    const StepResult res = hermes_.switching().step(config.state());
    config.record_arrivals(res.delivered);
    config.advance_step();
    const std::uint64_t current = mu_flit_.value(config);
    EXPECT_LT(current, previous);
    previous = current;
  }
}

TEST_F(MeasureTest, RouteMeasureIsNonIncreasingAndTracksHeaders) {
  // The paper's μxy is non-increasing in our flit-granular model (strict
  // decrease is only guaranteed when some header advances).
  Config config = hermes_.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 2}},
       {NodeCoord{0, 1}, NodeCoord{2, 1}},
       {NodeCoord{0, 2}, NodeCoord{2, 0}}},
      5);
  std::uint64_t previous = mu_xy_.value(config);
  bool strictly_decreased_somewhere = false;
  while (!config.all_arrived()) {
    const StepResult res = hermes_.switching().step(config.state());
    config.record_arrivals(res.delivered);
    config.advance_step();
    const std::uint64_t current = mu_xy_.value(config);
    EXPECT_LE(current, previous);
    if (current < previous) {
      strictly_decreased_somewhere = true;
    }
    previous = current;
  }
  EXPECT_TRUE(strictly_decreased_somewhere);
}

TEST_F(MeasureTest, StagedTravelsCountTowardBothMeasures) {
  Config config(hermes_.mesh(), 2);
  config.add_staged_travel(
      make_travel(1, hermes_.routing(), {0, 0}, {1, 0}, 2), 4);
  // Route has 4 ports; μxy counts it fully while staged.
  EXPECT_EQ(mu_xy_.value(config), 4u);
  EXPECT_EQ(mu_flit_.value(config), 8u);
}

TEST_F(MeasureTest, Names) {
  EXPECT_FALSE(mu_xy_.name().empty());
  EXPECT_FALSE(mu_flit_.name().empty());
  EXPECT_NE(mu_xy_.name(), mu_flit_.name());
}

}  // namespace
}  // namespace genoc
