// Tests for the adaptive routing extensions (paper Sec. IX future work):
// YX, West-First, North-Last, Negative-First, Odd-Even and the
// fully-adaptive baseline.
#include <gtest/gtest.h>

#include <memory>

#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/negative_first.hpp"
#include "routing/north_last.hpp"
#include "routing/odd_even.hpp"
#include "routing/route.hpp"
#include "routing/west_first.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"

namespace genoc {
namespace {

std::size_t node_distance(const Port& a, const Port& b) {
  return manhattan_distance(a, b);
}

/// Shared property: every hop of a minimal routing function makes progress.
void expect_minimal_and_productive(const RoutingFunction& routing) {
  const Mesh2D& mesh = routing.mesh();
  for (const Port& p : mesh.ports()) {
    for (const Port& d : mesh.destinations()) {
      if (!routing.reachable(p, d)) {
        continue;
      }
      for (const Port& q : routing.next_hops(p, d)) {
        ASSERT_TRUE(mesh.exists(q))
            << routing.name() << ": R(" << to_string(p) << ", "
            << to_string(d) << ") -> " << to_string(q);
        // Crossing a link (OUT -> IN) strictly reduces distance; switching
        // inside a node keeps it unchanged.
        if (p.dir == Direction::kOut) {
          EXPECT_LT(node_distance(q, d), node_distance(p, d));
        } else {
          EXPECT_EQ(node_distance(q, d), node_distance(p, d));
        }
      }
    }
  }
}

TEST(AdaptiveRouting, AllFunctionsAreMinimalAndProductive) {
  const Mesh2D mesh(4, 3);
  expect_minimal_and_productive(XYRouting(mesh));
  expect_minimal_and_productive(YXRouting(mesh));
  expect_minimal_and_productive(WestFirstRouting(mesh));
  expect_minimal_and_productive(NorthLastRouting(mesh));
  expect_minimal_and_productive(NegativeFirstRouting(mesh));
  expect_minimal_and_productive(OddEvenRouting(mesh));
  expect_minimal_and_productive(FullyAdaptiveRouting(mesh));
}

TEST(AdaptiveRouting, EveryRouteTerminatesAtTheDestination) {
  const Mesh2D mesh(4, 4);
  const std::vector<std::unique_ptr<RoutingFunction>> functions = [&] {
    std::vector<std::unique_ptr<RoutingFunction>> fs;
    fs.push_back(std::make_unique<WestFirstRouting>(mesh));
    fs.push_back(std::make_unique<NorthLastRouting>(mesh));
    fs.push_back(std::make_unique<NegativeFirstRouting>(mesh));
    fs.push_back(std::make_unique<OddEvenRouting>(mesh));
    fs.push_back(std::make_unique<FullyAdaptiveRouting>(mesh));
    return fs;
  }();
  for (const auto& routing : functions) {
    EXPECT_FALSE(routing->is_deterministic());
    for (const NodeCoord s : mesh.nodes()) {
      for (const NodeCoord d : mesh.nodes()) {
        const Port from = mesh.local_in(s.x, s.y);
        const Port to = mesh.local_out(d.x, d.y);
        const auto routes = enumerate_routes(*routing, from, to, 64);
        ASSERT_FALSE(routes.empty()) << routing->name();
        for (const Route& r : routes) {
          EXPECT_EQ(r.size(), minimal_route_length(from, to))
              << routing->name();
          EXPECT_TRUE(is_valid_route(*routing, r, from, to));
        }
      }
    }
  }
}

TEST(AdaptiveRouting, WestFirstTakesWestHopsFirst) {
  const Mesh2D mesh(4, 4);
  const WestFirstRouting wf(mesh);
  const Port from = mesh.local_in(3, 0);
  const Port to = mesh.local_out(0, 3);
  for (const Route& r : enumerate_routes(wf, from, to, 64)) {
    bool west_phase_over = false;
    for (const Port& p : r) {
      if (p.name != PortName::kWest && p.dir == Direction::kOut &&
          p.name != PortName::kLocal) {
        west_phase_over = true;
      }
      if (p.name == PortName::kWest && p.dir == Direction::kOut) {
        EXPECT_FALSE(west_phase_over) << "west hop after non-west hop";
      }
    }
  }
}

TEST(AdaptiveRouting, NorthLastNeverLeavesNorth) {
  const Mesh2D mesh(4, 4);
  const NorthLastRouting nl(mesh);
  const Port from = mesh.local_in(0, 3);
  const Port to = mesh.local_out(3, 0);  // needs east + north
  for (const Route& r : enumerate_routes(nl, from, to, 64)) {
    bool north_started = false;
    for (const Port& p : r) {
      if (p.name == PortName::kNorth && p.dir == Direction::kOut) {
        north_started = true;
      } else if (north_started && p.dir == Direction::kOut &&
                 p.name != PortName::kLocal) {
        FAIL() << "turn out of North in " << to_string(p);
      }
    }
    EXPECT_TRUE(north_started);
  }
}

TEST(AdaptiveRouting, NegativeFirstOrdersPhases) {
  const Mesh2D mesh(4, 4);
  const NegativeFirstRouting nf(mesh);
  const Port from = mesh.local_in(2, 1);
  const Port to = mesh.local_out(1, 3);  // needs West (negative) + South
  for (const Route& r : enumerate_routes(nf, from, to, 64)) {
    bool positive_started = false;
    for (const Port& p : r) {
      if (p.dir != Direction::kOut || p.name == PortName::kLocal) {
        continue;
      }
      const bool negative =
          p.name == PortName::kWest || p.name == PortName::kNorth;
      if (!negative) {
        positive_started = true;
      } else {
        EXPECT_FALSE(positive_started) << "negative hop after positive hop";
      }
    }
  }
}

TEST(AdaptiveRouting, OddEvenRestrictsTurnsByColumnParity) {
  const Mesh2D mesh(5, 4);
  const OddEvenRouting oe(mesh);
  for (const NodeCoord s : mesh.nodes()) {
    for (const NodeCoord d : mesh.nodes()) {
      const Port from = mesh.local_in(s.x, s.y);
      const Port to = mesh.local_out(d.x, d.y);
      for (const Route& r : enumerate_routes(oe, from, to, 128)) {
        for (std::size_t i = 0; i + 1 < r.size(); ++i) {
          const Port& a = r[i];
          const Port& b = r[i + 1];
          if (a.dir != Direction::kIn || b.dir != Direction::kOut) {
            continue;
          }
          // Rule 1/2 of the Odd-Even turn model: EN/ES turns (eastbound
          // packet starting vertical movement) only in odd columns; NW/SW
          // turns (vertical packet heading west) only in even columns.
          const bool en_es = a.name == PortName::kWest &&
                             (b.name == PortName::kNorth ||
                              b.name == PortName::kSouth);
          EXPECT_FALSE(en_es && a.x % 2 == 0)
              << "EN/ES turn at even column " << to_string(a);
          const bool nw_sw = (a.name == PortName::kNorth ||
                              a.name == PortName::kSouth) &&
                             b.name == PortName::kWest;
          EXPECT_FALSE(nw_sw && a.x % 2 != 0)
              << "NW/SW turn at odd column " << to_string(a);
        }
      }
    }
  }
}

TEST(AdaptiveRouting, FullyAdaptiveOffersAllProductiveDirections) {
  const Mesh2D mesh(4, 4);
  const FullyAdaptiveRouting fa(mesh);
  const Port p = mesh.local_in(1, 1);
  const Port d = mesh.local_out(3, 3);  // east + south both productive
  const auto hops = fa.next_hops(p, d);
  EXPECT_EQ(hops.size(), 2u);
  // Number of minimal routes from (0,0) to (2,2) at node level is
  // C(4,2) = 6 — the port-level enumeration matches.
  const auto routes = enumerate_routes(fa, mesh.local_in(0, 0),
                                       mesh.local_out(2, 2), 100);
  EXPECT_EQ(routes.size(), 6u);
}

TEST(AdaptiveRouting, DeadlockVerdictsAcrossTheFamily) {
  // The punchline table of the extension: all turn-model functions are
  // deadlock-free; unrestricted adaptivity is not.
  const Mesh2D mesh(4, 4);
  EXPECT_TRUE(is_acyclic(build_dep_graph(XYRouting(mesh)).graph));
  EXPECT_TRUE(is_acyclic(build_dep_graph(YXRouting(mesh)).graph));
  EXPECT_TRUE(is_acyclic(build_dep_graph(WestFirstRouting(mesh)).graph));
  EXPECT_TRUE(is_acyclic(build_dep_graph(NorthLastRouting(mesh)).graph));
  EXPECT_TRUE(is_acyclic(build_dep_graph(NegativeFirstRouting(mesh)).graph));
  EXPECT_TRUE(is_acyclic(build_dep_graph(OddEvenRouting(mesh)).graph));
  EXPECT_FALSE(is_acyclic(build_dep_graph(FullyAdaptiveRouting(mesh)).graph));
}

TEST(YXRouting, ReachabilityClosedFormEqualsClosure) {
  for (const auto& [w, h] : {std::pair{2, 2}, std::pair{3, 3}, std::pair{4, 2}}) {
    const Mesh2D mesh(w, h);
    const YXRouting yx(mesh);
    for (const Port& p : mesh.ports()) {
      for (const Port& d : mesh.destinations()) {
        EXPECT_EQ(yx.reachable(p, d), yx.closure_reachable(p, d))
            << to_string(p) << " R " << to_string(d);
      }
    }
  }
}

TEST(YXRouting, YBeforeX) {
  const Mesh2D mesh(4, 4);
  const YXRouting yx(mesh);
  const Route route =
      compute_route(yx, mesh.local_in(0, 0), mesh.local_out(2, 2));
  bool seen_horizontal = false;
  for (const Port& p : route) {
    if (p.name == PortName::kEast || p.name == PortName::kWest) {
      seen_horizontal = true;
    }
    if (seen_horizontal) {
      EXPECT_NE(p.name, PortName::kNorth);
      EXPECT_NE(p.name, PortName::kSouth);
    }
  }
  EXPECT_TRUE(seen_horizontal);
}

}  // namespace
}  // namespace genoc
