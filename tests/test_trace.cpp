// Tests for the per-step trace recorder.
#include <gtest/gtest.h>

#include "core/hermes.hpp"
#include "sim/trace.hpp"

namespace genoc {
namespace {

TEST(Trace, RecordsEveryStepConsistently) {
  const HermesInstance hermes(3, 3, 2);
  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 2}}, {NodeCoord{2, 0}, NodeCoord{0, 2}}},
      3);
  TraceRecorder recorder(hermes.measure());
  GenocOptions options;
  options.observer = recorder.observer();
  const GenocRunResult run = hermes.run(config, options);
  ASSERT_TRUE(run.evacuated);
  ASSERT_EQ(recorder.rows().size(), run.steps);

  std::size_t total_moves = 0;
  std::size_t total_entered = 0;
  std::size_t total_delivered = 0;
  std::uint64_t previous_measure = run.initial_measure;
  for (std::size_t i = 0; i < recorder.rows().size(); ++i) {
    const TraceRow& row = recorder.rows()[i];
    EXPECT_EQ(row.step, i + 1);
    total_moves += row.flits_moved;
    total_entered += row.packets_entered;
    total_delivered += row.packets_delivered;
    // The measure trace is strictly decreasing and each step's decrease
    // equals its flit moves (each move is one hop).
    EXPECT_EQ(previous_measure - row.measure, row.flits_moved);
    previous_measure = row.measure;
  }
  EXPECT_EQ(total_moves, run.total_flit_moves);
  EXPECT_EQ(total_entered, config.travels().size());
  EXPECT_EQ(total_delivered, config.travels().size());
  EXPECT_EQ(recorder.rows().back().measure, 0u);
  EXPECT_EQ(recorder.rows().back().pending_travels, 0u);
  EXPECT_EQ(recorder.rows().back().flits_in_flight, 0u);
}

TEST(Trace, CsvSerialization) {
  const HermesInstance hermes(2, 2, 1);
  Config config = hermes.make_config({{NodeCoord{0, 0}, NodeCoord{1, 1}}}, 2);
  TraceRecorder recorder(hermes.measure());
  GenocOptions options;
  options.observer = recorder.observer();
  hermes.run(config, options);
  const std::string csv = recorder.to_csv();
  EXPECT_NE(csv.find("step,flits_moved"), std::string::npos);
  // Header + one line per step.
  const std::size_t lines =
      static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, recorder.rows().size() + 1);
}

TEST(Trace, ClearResets) {
  const HermesInstance hermes(2, 2, 1);
  Config config = hermes.make_config({{NodeCoord{0, 0}, NodeCoord{1, 0}}}, 1);
  TraceRecorder recorder(hermes.measure());
  GenocOptions options;
  options.observer = recorder.observer();
  hermes.run(config, options);
  EXPECT_FALSE(recorder.rows().empty());
  recorder.clear();
  EXPECT_TRUE(recorder.rows().empty());
}

}  // namespace
}  // namespace genoc
