// Tests for the util substrate: contracts, RNG, table, CSV, DOT, stopwatch.
#include <gtest/gtest.h>

#include <set>

#include "util/csv.hpp"
#include "util/dot.hpp"
#include "util/log.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace genoc {
namespace {

TEST(Require, ThrowsWithContext) {
  try {
    GENOC_REQUIRE(1 == 2, "the impossible happened");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("the impossible happened"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
  EXPECT_NO_THROW(GENOC_REQUIRE(true, ""));
}

TEST(Rng, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  Rng c(43);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_THROW(rng.below(0), ContractViolation);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_THROW(rng.range(2, 1), ContractViolation);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(9);
  const auto perm = rng.permutation(50);
  std::set<std::size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Table, RendersAlignedCells) {
  Table t({"File", "Lines"});
  t.add_row({"Rxy", "1173"});
  t.add_separator();
  t.add_row({"Overall", "13261"});
  EXPECT_EQ(t.row_count(), 2u);
  const std::string out = t.render();
  EXPECT_NE(out.find("Rxy"), std::string::npos);
  EXPECT_NE(out.find("13261"), std::string::npos);
  EXPECT_NE(out.find("| File"), std::string::npos);
  EXPECT_THROW(t.add_row({"too", "many", "cells"}), ContractViolation);
  EXPECT_THROW(Table({}), ContractViolation);
}

TEST(Table, Formatters) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_count(13261), "13,261");
  EXPECT_EQ(format_count(7), "7");
  EXPECT_EQ(format_count(1000000), "1,000,000");
}

TEST(Csv, QuotesOnlyWhenNeeded) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"plain", "with,comma"});
  csv.add_row({"with\"quote", "with\nnewline"});
  const std::string out = csv.render();
  EXPECT_NE(out.find("a,b\n"), std::string::npos);
  EXPECT_NE(out.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
  EXPECT_THROW(csv.add_row({"one"}), ContractViolation);
}

TEST(Dot, RendersAndEscapes) {
  const std::vector<std::pair<std::size_t, std::size_t>> edges{{0, 1}};
  const std::string dot =
      to_dot(2, edges, [](std::size_t v) {
        return v == 0 ? std::string("a\"b") : std::string("<1,0,W,IN>");
      });
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("a\\\"b"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  EXPECT_THROW(to_dot(1, edges, [](std::size_t) { return ""; }),
               ContractViolation);
}

TEST(Stopwatch, Monotone) {
  Stopwatch sw;
  const double t1 = sw.elapsed_ms();
  const double t2 = sw.elapsed_ms();
  EXPECT_GE(t2, t1);
  EXPECT_GE(t1, 0.0);
  sw.reset();
  EXPECT_GE(sw.elapsed_s(), 0.0);
}

TEST(Log, LevelsFilter) {
  const LogLevel old = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  GENOC_INFO("this is filtered, nothing to assert beyond no crash");
  set_log_level(old);
}

}  // namespace
}  // namespace genoc
