// MetricsRegistry tests: the sharded-counter fold under real thread
// contention, gauge high-water and histogram bucketing semantics, the
// name-sorted snapshot, and the headline determinism guarantee — every
// analysis-layer counter totals identically whether a verify sweep ran
// sequentially or on a 1/4/8-thread BatchRunner (only the threadpool.*
// scheduling metrics are allowed to vary with thread count).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "instance/batch_runner.hpp"
#include "instance/registry.hpp"
#include "obs/metrics.hpp"
#include "verify/artifacts.hpp"
#include "verify/pipeline.hpp"

namespace genoc {
namespace {

TEST(Metrics, CounterFoldsConcurrentIncrements) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.increment();
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Metrics, GaugeRecordMaxKeepsTheHighWaterUnderContention) {
  obs::Gauge gauge;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&gauge, t] {
      for (std::int64_t v = 0; v < 1000; ++v) {
        gauge.record_max(t * 1000 + v);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(gauge.value(), 7999);
  gauge.set(5);
  EXPECT_EQ(gauge.value(), 5);
  gauge.record_max(3);  // lower than current: no-op
  EXPECT_EQ(gauge.value(), 5);
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  obs::Histogram histogram;
  for (const std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 100u}) {
    histogram.observe(v);
  }
  const obs::Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, 110u);
  EXPECT_EQ(snap.max, 100u);
  // Non-empty buckets by inclusive upper bound: 0 -> {0}, 1 -> {1},
  // 3 -> {2,3}, 7 -> {4}, 127 -> {100}.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {0, 1}, {1, 1}, {3, 2}, {7, 1}, {127, 1}};
  EXPECT_EQ(snap.buckets, expected);
}

TEST(Metrics, RegistrySnapshotIsNameSortedAndResetKeepsRegistrations) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.reset();
  obs::Counter& zebra = registry.counter("test.zebra");
  obs::Counter& apple = registry.counter("test.apple");
  // Same name resolves to the same object, not a duplicate registration.
  EXPECT_EQ(&registry.counter("test.zebra"), &zebra);
  zebra.add(2);
  apple.add(1);
  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
  EXPECT_EQ(snap.counter_value("test.zebra"), 2u);
  EXPECT_EQ(snap.counter_value("test.apple"), 1u);
  EXPECT_EQ(snap.counter_value("test.never-ticked"), 0u);
  registry.reset();
  // The cached reference survives reset and keeps ticking.
  zebra.increment();
  EXPECT_EQ(registry.snapshot().counter_value("test.zebra"), 1u);
}

/// Analysis-layer counters after one verify sweep, with the threadpool.*
/// scheduling metrics (legitimately thread-count-dependent: chunk counts,
/// per-worker busy time) filtered out.
std::vector<std::pair<std::string, std::uint64_t>> sweep_counters(
    std::size_t threads) {
  obs::MetricsRegistry::global().reset();
  const InstanceRegistry& instances = InstanceRegistry::global();
  std::vector<InstanceSpec> specs;
  for (const char* name : {"mesh8-xy", "torus8-xy", "mesh16-xy"}) {
    const InstanceSpec* spec = instances.find(name);
    EXPECT_NE(spec, nullptr) << name;
    specs.push_back(*spec);
  }
  InstanceVerifyOptions options;
  ArtifactStore store;
  options.artifacts = &store;
  if (threads == 0) {
    verify_instance_reports(specs, VerifyPipeline::standard(), nullptr,
                            options);
  } else {
    BatchRunner runner(threads);
    verify_instance_reports(specs, VerifyPipeline::standard(), &runner,
                            options);
  }
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  for (const auto& [name, value] :
       obs::MetricsRegistry::global().snapshot().counters) {
    if (name.rfind("threadpool.", 0) != 0) {
      counters.emplace_back(name, value);
    }
  }
  return counters;
}

TEST(Metrics, SweepCounterTotalsAreThreadCountInvariant) {
  const auto sequential = sweep_counters(0);
  // The sweep must actually have ticked the pipeline and analysis layers —
  // an empty comparison would vacuously pass.
  const auto value = [&sequential](const std::string& name) {
    for (const auto& [key, count] : sequential) {
      if (key == name) {
        return count;
      }
    }
    return std::uint64_t{0};
  };
  EXPECT_EQ(value("verify.pipeline_runs"), 3u);
  EXPECT_GT(value("depgraph.edges_built"), 0u);
  EXPECT_GT(value("escape.states_checked"), 0u);
  EXPECT_GT(value("artifacts.dep_graph.misses"), 0u);

  EXPECT_EQ(sweep_counters(1), sequential);
  EXPECT_EQ(sweep_counters(4), sequential);
  EXPECT_EQ(sweep_counters(8), sequential);
}

}  // namespace
}  // namespace genoc
