// Tests for reachability helpers.
#include <gtest/gtest.h>

#include "graph/reach.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

Digraph sample() {
  // 0 -> 1 -> 2, 0 -> 3, 4 isolated.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.finalize();
  return g;
}

TEST(Reach, MaskFromSource) {
  const Digraph g = sample();
  const auto mask = reachable_from(g, 0);
  EXPECT_EQ(mask, (std::vector<std::uint8_t>{1, 1, 1, 1, 0}));
  const auto mask1 = reachable_from(g, 1);
  EXPECT_EQ(mask1, (std::vector<std::uint8_t>{0, 1, 1, 0, 0}));
}

TEST(Reach, IsReachable) {
  const Digraph g = sample();
  EXPECT_TRUE(is_reachable(g, 0, 2));
  EXPECT_FALSE(is_reachable(g, 2, 0));
  EXPECT_TRUE(is_reachable(g, 4, 4));  // trivially reachable from itself
}

TEST(Reach, ShortestPath) {
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 5);
  g.add_edge(0, 3);
  g.add_edge(3, 5);  // shorter: 0-3-5
  g.finalize();
  const auto path = shortest_path(g, 0, 5);
  EXPECT_EQ(path, (std::vector<std::size_t>{0, 3, 5}));
  EXPECT_TRUE(shortest_path(g, 5, 0).empty());
  EXPECT_EQ(shortest_path(g, 2, 2), (std::vector<std::size_t>{2}));
}

TEST(Reach, OutOfRangeThrows) {
  const Digraph g = sample();
  EXPECT_THROW(reachable_from(g, 9), ContractViolation);
  EXPECT_THROW(shortest_path(g, 0, 9), ContractViolation);
}

}  // namespace
}  // namespace genoc
