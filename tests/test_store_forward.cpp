// Tests for the store-and-forward switching baseline.
#include <gtest/gtest.h>

#include "core/hermes.hpp"
#include "routing/xy.hpp"
#include "switching/store_forward.hpp"
#include "switching/wormhole.hpp"

namespace genoc {
namespace {

class StoreForwardTest : public ::testing::Test {
 protected:
  StoreForwardTest() : mesh_(4, 2), xy_(mesh_) {}

  Route route(NodeCoord s, NodeCoord d) const {
    return compute_route(xy_, mesh_.local_in(s.x, s.y),
                         mesh_.local_out(d.x, d.y));
  }

  Mesh2D mesh_;
  XYRouting xy_;
  StoreForwardSwitching sf_;
};

TEST_F(StoreForwardTest, PacketMovesAsAUnitOneFlitPerStep) {
  NetworkState st(mesh_, 4);
  st.register_packet({1, route({0, 0}, {3, 0}), 3});
  // A link carries one flit per step: the packet needs 3 steps to enter.
  for (int s = 0; s < 3; ++s) {
    const StepResult res = sf_.step(st);
    EXPECT_EQ(res.flits_moved, 1u);
  }
  for (std::uint32_t k = 0; k < 3; ++k) {
    EXPECT_EQ(st.flit_pos(1, k), 0);
  }
  // The next hop again takes 3 steps; no flit reaches position 2 before
  // the whole packet has accumulated at position 1 (no pipelining).
  for (int s = 0; s < 3; ++s) {
    sf_.step(st);
    EXPECT_LE(st.flit_pos(1, 0), 1);
  }
  for (std::uint32_t k = 0; k < 3; ++k) {
    EXPECT_EQ(st.flit_pos(1, k), 1);
  }
  st.validate();
}

TEST_F(StoreForwardTest, RequiresRoomForTheWholePacket) {
  // Capacity 2 < 3 flits: the packet can never advance (nor enter).
  NetworkState st(mesh_, 2);
  st.register_packet({1, route({0, 0}, {3, 0}), 3});
  EXPECT_FALSE(sf_.can_any_move(st));
  EXPECT_TRUE(is_deadlock(sf_, st));
  const StepResult res = sf_.step(st);
  EXPECT_EQ(res.flits_moved, 0u);
}

TEST_F(StoreForwardTest, DeliveryAndLatency) {
  // Each of the P transfers (entry, P-2 internal hops, consumption) costs
  // flit_count steps: total = P * F.
  NetworkState st(mesh_, 4);
  const Route r = route({0, 0}, {3, 0});
  st.register_packet({1, r, 4});
  std::size_t steps = 0;
  while (!st.packet_delivered(1)) {
    const StepResult res = sf_.step(st);
    ASSERT_GT(res.flits_moved, 0u);
    ++steps;
    ASSERT_LT(steps, 100u);
  }
  EXPECT_EQ(steps, r.size() * 4);
}

TEST_F(StoreForwardTest, WormholeBeatsStoreAndForwardOnLongRoutes) {
  // The classic pipelining advantage (why HERMES uses wormhole, Sec. II):
  // same traffic, same buffers sized to fit the packet, wormhole needs
  // fewer steps because flits stream instead of waiting for the full
  // packet at every hop.
  const std::uint32_t flits = 4;
  const Route r = route({0, 0}, {3, 0});

  NetworkState wh_state(mesh_, flits);
  wh_state.register_packet({1, r, flits});
  const WormholeSwitching wh;
  std::size_t wh_steps = 0;
  while (!wh_state.packet_delivered(1)) {
    wh.step(wh_state);
    ++wh_steps;
    ASSERT_LT(wh_steps, 100u);
  }

  NetworkState sf_state(mesh_, flits);
  sf_state.register_packet({1, r, flits});
  std::size_t sf_steps = 0;
  while (!sf_state.packet_delivered(1)) {
    sf_.step(sf_state);
    ++sf_steps;
    ASSERT_LT(sf_steps, 100u);
  }
  EXPECT_LT(wh_steps, sf_steps);
}

TEST_F(StoreForwardTest, ContentionIsExclusivePerPort) {
  NetworkState st(mesh_, 2);
  st.register_packet({1, route({0, 0}, {2, 0}), 2});
  st.register_packet({2, route({0, 0}, {3, 0}), 2});
  for (int s = 0; s < 2; ++s) {
    sf_.step(st);  // packet 1 enters L-in(0,0) flit by flit
  }
  EXPECT_TRUE(st.packet_in_network(1));
  EXPECT_FALSE(st.packet_in_network(2));  // port owned by packet 1
  // Eventually both evacuate.
  int guard = 0;
  while (st.undelivered_count() > 0) {
    ASSERT_FALSE(is_deadlock(sf_, st));
    sf_.step(st);
    ASSERT_LT(++guard, 100);
  }
}

TEST_F(StoreForwardTest, CanAnyMoveMatchesStep) {
  NetworkState st(mesh_, 3);
  st.register_packet({1, route({0, 0}, {3, 1}), 3});
  st.register_packet({2, route({3, 0}, {0, 0}), 3});
  int guard = 0;
  while (st.undelivered_count() > 0) {
    const bool movable = sf_.can_any_move(st);
    const StepResult res = sf_.step(st);
    EXPECT_EQ(movable, res.flits_moved > 0);
    ASSERT_TRUE(movable);
    ASSERT_LT(++guard, 100);
  }
}

}  // namespace
}  // namespace genoc
