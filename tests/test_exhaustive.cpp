// Exhaustive small-model checks: on the 2x2 mesh the configuration space of
// one and two packets is small enough to enumerate COMPLETELY. Every cell
// must evacuate under XY (DeadThm + EvacThm have no counterexample in the
// whole space), with the (C-5) audit green and the worm invariants intact
// at every step.
#include <gtest/gtest.h>

#include "core/hermes.hpp"
#include "core/theorems.hpp"

namespace genoc {
namespace {

TEST(Exhaustive, EverySinglePacketJourneyOn2x2) {
  for (const std::size_t buffers : {1u, 2u}) {
    for (const std::uint32_t flits : {1u, 2u, 3u, 5u}) {
      const HermesInstance hermes(2, 2, buffers);
      for (const NodeCoord s : hermes.mesh().nodes()) {
        for (const NodeCoord d : hermes.mesh().nodes()) {
          Config config = hermes.make_config({{s, d}}, flits);
          const GenocRunResult run = hermes.run(config);
          ASSERT_TRUE(run.evacuated)
              << "src=(" << s.x << "," << s.y << ") dst=(" << d.x << ","
              << d.y << ") flits=" << flits << " buffers=" << buffers;
          ASSERT_EQ(run.measure_violations, 0u);
          config.state().validate();
        }
      }
    }
  }
}

TEST(Exhaustive, EveryTwoPacketCombinationOn2x2) {
  // 16 x 16 = 256 source/destination combinations for the pair, at two worm
  // lengths and two buffer depths: 1024 complete runs, each audited.
  for (const std::size_t buffers : {1u, 2u}) {
    for (const std::uint32_t flits : {1u, 4u}) {
      const HermesInstance hermes(2, 2, buffers);
      const auto nodes = hermes.mesh().nodes();
      for (const NodeCoord s1 : nodes) {
        for (const NodeCoord d1 : nodes) {
          for (const NodeCoord s2 : nodes) {
            for (const NodeCoord d2 : nodes) {
              Config config = hermes.make_config({{s1, d1}, {s2, d2}}, flits);
              const GenocRunResult run = hermes.run(config);
              ASSERT_TRUE(run.evacuated)
                  << "(" << s1.x << s1.y << "->" << d1.x << d1.y << ", "
                  << s2.x << s2.y << "->" << d2.x << d2.y
                  << ") flits=" << flits << " buffers=" << buffers;
              ASSERT_EQ(run.measure_violations, 0u);
              ASSERT_TRUE(check_evacuation(config, run).holds);
            }
          }
        }
      }
    }
  }
}

TEST(Exhaustive, FullCrossTrafficOn2x3) {
  // All twelve ordered node pairs at once: the densest one-message-per-pair
  // configuration on a 2x3 mesh.
  const HermesInstance hermes(2, 3, 1);
  std::vector<TrafficPair> pairs;
  for (const NodeCoord s : hermes.mesh().nodes()) {
    for (const NodeCoord d : hermes.mesh().nodes()) {
      if (!(s == d)) {
        pairs.push_back({s, d});
      }
    }
  }
  Config config = hermes.make_config(pairs, 3);
  const GenocRunResult run = hermes.run(config);
  EXPECT_TRUE(run.evacuated);
  EXPECT_EQ(config.arrived().size(), pairs.size());
  EXPECT_TRUE(check_correctness(config, hermes.routing()).holds);
}

TEST(Exhaustive, FlitsNeverMoveBackward) {
  // Worm monotonicity over a complete run: every flit's route position is
  // non-decreasing step over step.
  const HermesInstance hermes(2, 2, 1);
  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{1, 1}}, {NodeCoord{1, 1}, NodeCoord{0, 0}},
       {NodeCoord{1, 0}, NodeCoord{0, 1}}},
      3);
  auto snapshot = [&]() {
    std::vector<std::int32_t> pos;
    for (const Travel& t : config.travels()) {
      for (std::uint32_t k = 0; k < t.flit_count; ++k) {
        pos.push_back(config.state().flit_pos(t.id, k));
      }
    }
    return pos;
  };
  auto effective = [](std::int32_t p) {
    return p == kFlitDelivered ? 1000 : p;
  };
  std::vector<std::int32_t> previous = snapshot();
  int guard = 0;
  while (!config.all_arrived()) {
    hermes.switching().step(config.state());
    const std::vector<std::int32_t> current = snapshot();
    for (std::size_t i = 0; i < current.size(); ++i) {
      ASSERT_GE(effective(current[i]), effective(previous[i]));
    }
    previous = current;
    ASSERT_LT(++guard, 500);
  }
}

}  // namespace
}  // namespace genoc
