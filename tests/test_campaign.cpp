// Fault-injection campaign suite: the FaultModel population (deterministic
// link enumeration, single/double/random plans), the canonical failed=
// spec machinery (with_failed_links, shared artifact keys, round-trips),
// and the campaign engine itself — outcome accounting, the batch-shared
// base context (store hit counters), screening on a shattered 2x2, and
// byte-identical reports at any thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/fault_model.hpp"
#include "cli/campaign_json.hpp"
#include "instance/registry.hpp"
#include "instance/spec.hpp"
#include "topology/mesh.hpp"
#include "util/require.hpp"
#include "verify/artifacts.hpp"

namespace genoc {
namespace {

InstanceSpec spec_or_die(const std::string& text) {
  std::string error;
  const std::optional<InstanceSpec> spec = parse_instance_spec(text, &error);
  EXPECT_TRUE(spec.has_value()) << text << ": " << error;
  return spec.value_or(InstanceSpec{});
}

FaultPlan plan_or_die(const std::string& text) {
  std::string error;
  const std::optional<FaultPlan> plan = parse_fault_plan(text, &error);
  EXPECT_TRUE(plan.has_value()) << text << ": " << error;
  return plan.value_or(FaultPlan{});
}

// ---------------------------------------------------------------------------
// Fault-plan grammar.
// ---------------------------------------------------------------------------

TEST(FaultPlan, ParsesAndRoundTrips) {
  EXPECT_EQ(plan_or_die("single").kind, FaultPlan::Kind::kSingle);
  EXPECT_EQ(plan_or_die("double").kind, FaultPlan::Kind::kDouble);
  const FaultPlan random = plan_or_die("random:3,7");
  EXPECT_EQ(random.kind, FaultPlan::Kind::kRandom);
  EXPECT_EQ(random.count, 3u);
  EXPECT_EQ(random.seed, 7u);
  for (const char* text : {"single", "double", "random:3,7"}) {
    EXPECT_EQ(to_string(plan_or_die(text)), text);
  }
}

TEST(FaultPlan, RejectsMalformedPlans) {
  std::string error;
  for (const char* text :
       {"", "banana", "single,double", "random", "random:", "random:3",
        "random:3,", "random:,7", "random:0,7", "random:-1,7",
        "random:3,7,9", "random:3x,7"}) {
    EXPECT_FALSE(parse_fault_plan(text, &error).has_value()) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

// ---------------------------------------------------------------------------
// FaultModel enumeration.
// ---------------------------------------------------------------------------

TEST(FaultModel, EnumeratesCanonicalSortedLinks) {
  const FaultModel model(spec_or_die("topology=mesh size=4x4 routing=xy"));
  // A 4x4 mesh has 3*4 horizontal + 3*4 vertical bidirectional links; the
  // terminal (L) links are excluded by construction.
  ASSERT_EQ(model.links().size(), 24u);
  std::vector<LinkFault> faults;
  for (const std::string& token : model.links()) {
    std::string error;
    const std::optional<LinkFault> fault = parse_link_fault(token, &error);
    ASSERT_TRUE(fault.has_value()) << token << ": " << error;
    EXPECT_TRUE(link_fault_exists(*fault, 4, 4, false, false)) << token;
    EXPECT_EQ(canonical_link_fault(*fault, 4, 4, false, false), *fault)
        << token << " is not canonical";
    faults.push_back(*fault);
  }
  // Sorted by (node, name) — the LinkFault order, not token strings.
  EXPECT_TRUE(std::is_sorted(faults.begin(), faults.end()));
  EXPECT_EQ(std::adjacent_find(faults.begin(), faults.end()), faults.end());
}

TEST(FaultModel, TorusWrapLinksAreEnumerated) {
  const FaultModel model(
      spec_or_die("topology=torus size=4x4 routing=torus_xy escape=xy"));
  // Every node has an E and an N link once the wraps close the rings.
  EXPECT_EQ(model.links().size(), 32u);
}

TEST(FaultModel, PlanPopulations) {
  const FaultModel model(spec_or_die("topology=mesh size=4x4 routing=xy"));
  const FaultPlan single = plan_or_die("single");
  const FaultPlan pairs = plan_or_die("double");
  EXPECT_EQ(model.variant_count(single), 24u);
  EXPECT_EQ(model.variant_count(pairs), 24u * 23u / 2u);
  EXPECT_EQ(model.variants(single).size(), model.variant_count(single));
  EXPECT_EQ(model.variants(pairs).size(), model.variant_count(pairs));
  for (const InstanceSpec& vspec : model.variants(single)) {
    EXPECT_EQ(vspec.failed_links.size(), 1u);
    EXPECT_TRUE(vspec.name.empty());  // display names show the fault set
  }
  std::set<std::vector<std::string>> seen;
  for (const InstanceSpec& vspec : model.variants(pairs)) {
    ASSERT_EQ(vspec.failed_links.size(), 2u);
    // Each pair is two DISTINCT links in canonical (node, name) order.
    const auto a = parse_link_fault(vspec.failed_links[0], nullptr);
    const auto b = parse_link_fault(vspec.failed_links[1], nullptr);
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_LT(*a, *b);
    EXPECT_TRUE(seen.insert(vspec.failed_links).second) << "duplicate pair";
  }
}

TEST(FaultModel, RandomPlanIsSeedDeterministic) {
  const FaultModel model(spec_or_die("topology=mesh size=4x4 routing=xy"));
  const FaultPlan plan = plan_or_die("random:5,42");
  const auto a = model.variants(plan);
  const auto b = model.variants(plan);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a.front().failed_links, b.front().failed_links);
  EXPECT_EQ(a.front().failed_links.size(), 5u);
  const std::set<std::string> distinct(a.front().failed_links.begin(),
                                       a.front().failed_links.end());
  EXPECT_EQ(distinct.size(), 5u) << "random plan drew a duplicate link";
  // Drawing more links than the base has is a contract violation (the CLI
  // pre-checks and exits 2).
  EXPECT_THROW(model.variants(plan_or_die("random:25,42")),
               ContractViolation);
}

TEST(FaultModel, RejectsNonGridAndPreFaultedBases) {
  EXPECT_THROW(FaultModel(*InstanceRegistry::global().find("dragonfly9-min")),
               ContractViolation);
  EXPECT_THROW(
      FaultModel(spec_or_die("topology=mesh size=4x4 routing=xy failed=0:E")),
      ContractViolation);
}

// ---------------------------------------------------------------------------
// Canonical failed= specs share one artifact key.
// ---------------------------------------------------------------------------

TEST(FaultSpec, EqualFaultSetsShareOneArtifactKey) {
  const InstanceSpec base = spec_or_die("topology=mesh size=4x4 routing=xy");
  // "1:W" names the same physical link as "0:E" from the other endpoint;
  // with_failed_links re-anchors both to the canonical "0:E".
  const InstanceSpec a = base.with_failed_links({"0:E"});
  const InstanceSpec b = base.with_failed_links({"1:W"});
  EXPECT_EQ(a.failed_links, b.failed_links);
  EXPECT_EQ(AnalysisArtifacts::key(a), AnalysisArtifacts::key(b));
  EXPECT_NE(AnalysisArtifacts::key(a), AnalysisArtifacts::key(base));
  // Order never matters either: the canonical list is sorted.
  const InstanceSpec c = base.with_failed_links({"2:S", "0:E"});
  const InstanceSpec d = base.with_failed_links({"0:E", "2:S"});
  EXPECT_EQ(AnalysisArtifacts::key(c), AnalysisArtifacts::key(d));
}

TEST(FaultSpec, VariantSpecStringsRoundTrip) {
  const FaultModel model(spec_or_die("topology=mesh size=4x4 routing=xy"));
  for (const InstanceSpec& vspec :
       model.variants(plan_or_die("random:3,7"))) {
    const InstanceSpec reparsed = spec_or_die(to_spec_string(vspec));
    EXPECT_EQ(reparsed, vspec);
  }
}

TEST(FaultSpec, FailedLinkRemovesAllFourChannelPorts) {
  const Mesh2D whole(4, 4);
  const Mesh2D faulted(4, 4, false, false, {LinkFault{0, PortName::kEast}});
  EXPECT_EQ(faulted.port_count() + 4, whole.port_count());
  EXPECT_TRUE(faulted.has_faults());
  // The four ports of the 0<->1 link are gone; everything else survives.
  EXPECT_FALSE(faulted.exists(Port{0, 0, PortName::kEast, Direction::kOut}));
  EXPECT_FALSE(faulted.exists(Port{0, 0, PortName::kEast, Direction::kIn}));
  EXPECT_FALSE(faulted.exists(Port{1, 0, PortName::kWest, Direction::kOut}));
  EXPECT_FALSE(faulted.exists(Port{1, 0, PortName::kWest, Direction::kIn}));
  EXPECT_TRUE(faulted.exists(Port{1, 0, PortName::kEast, Direction::kOut}));
}

// ---------------------------------------------------------------------------
// The campaign engine.
// ---------------------------------------------------------------------------

TEST(Campaign, SingleFaultMeshIsFullyVerifiedOffOneBaseContext) {
  CampaignOptions options;
  options.plan = plan_or_die("single");
  options.threads = 2;
  const CampaignReport report =
      run_campaign(spec_or_die("topology=mesh size=6x6 routing=xy"), options);
  EXPECT_EQ(report.links, 60u);
  EXPECT_EQ(report.variants_total, 60u);
  EXPECT_TRUE(report.all_accounted());
  EXPECT_EQ(report.screened, 0u);
  EXPECT_EQ(report.verified, 60u);
  EXPECT_EQ(report.deadlock_free, 60u);
  EXPECT_EQ(report.deadlocked, 0u);
  EXPECT_FALSE(report.any_deadlock());
  // The batch-sharing guarantee: the base dependency graph is built exactly
  // once, and every variant's delta build reads it as a cache hit.
  EXPECT_EQ(report.cache.dep_graph.misses, 1u);
  EXPECT_EQ(report.cache.dep_graph.hits, report.variants_total);
  EXPECT_EQ(report.cache.contexts.misses, 1u);
  for (const VariantOutcome& out : report.variants) {
    EXPECT_FALSE(out.screened);
    EXPECT_TRUE(out.screen_codes.empty());
    EXPECT_TRUE(out.deadlock_free) << "failed=" << out.faults;
    EXPECT_GT(out.edges, 0u);
  }
}

TEST(Campaign, DoubleFaultsOnA3x3ScreenTheShatteredVariants) {
  CampaignOptions options;
  options.plan = plan_or_die("double");
  const CampaignReport report =
      run_campaign(spec_or_die("topology=mesh size=3x3 routing=xy"), options);
  EXPECT_EQ(report.links, 12u);
  EXPECT_EQ(report.variants_total, 66u);
  EXPECT_TRUE(report.all_accounted());
  // Pairs that strip both links of a corner node isolate it: those
  // variants are screened on net-disconnected without spending a verify;
  // the rest stay connected and verify.
  EXPECT_GT(report.screened, 0u);
  EXPECT_GT(report.verified, 0u);
  EXPECT_EQ(report.deadlocked, 0u);
  bool disconnected_counted = false;
  for (const auto& [code, count] : report.screen_code_counts) {
    if (code == "net-disconnected") {
      disconnected_counted = count > 0;
    }
  }
  EXPECT_TRUE(disconnected_counted);
  for (const VariantOutcome& out : report.variants) {
    if (out.screened) {
      EXPECT_FALSE(out.screen_codes.empty()) << "failed=" << out.faults;
      EXPECT_FALSE(out.deadlock_free);
    } else {
      EXPECT_TRUE(out.screen_codes.empty()) << "failed=" << out.faults;
    }
  }
}

TEST(Campaign, ReportIsByteIdenticalAtAnyThreadCount) {
  const InstanceSpec base = spec_or_die("topology=mesh size=6x6 routing=xy");
  CampaignOptions options;
  options.plan = plan_or_die("single");
  std::vector<std::string> rendered;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    options.threads = threads;
    const CampaignReport report = run_campaign(base, options);
    // include_timing=false drops threads/wall_ms — the determinism contract
    // covers everything else, byte for byte.
    rendered.push_back(cli::campaign_report_json(report, false));
  }
  EXPECT_EQ(rendered[0], rendered[1]);
  EXPECT_EQ(rendered[0], rendered[2]);
}

TEST(Campaign, RandomPlanReportsItsCanonicalPlanString) {
  CampaignOptions options;
  options.plan = plan_or_die("random:2,9");
  const CampaignReport report =
      run_campaign(spec_or_die("topology=mesh size=4x4 routing=xy"), options);
  EXPECT_EQ(report.plan, "random:2,9");
  EXPECT_EQ(report.variants_total, 1u);
  EXPECT_TRUE(report.all_accounted());
  ASSERT_EQ(report.variants.size(), 1u);
  // The faults token is the canonical comma-joined failed= value: two
  // sorted tokens, no whitespace.
  const std::string& faults = report.variants.front().faults;
  EXPECT_EQ(std::count(faults.begin(), faults.end(), ','), 1);
  EXPECT_EQ(faults.find(' '), std::string::npos);
}

}  // namespace
}  // namespace genoc
