// Tests for bounded simple-cycle enumeration (witness sampling).
#include <gtest/gtest.h>

#include "graph/johnson.hpp"

namespace genoc {
namespace {

Digraph ring(std::size_t n) {
  Digraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(i, (i + 1) % n);
  }
  g.finalize();
  return g;
}

TEST(Johnson, AcyclicGraphHasNoCycles) {
  Digraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.finalize();
  EXPECT_TRUE(enumerate_cycles(g, 100).empty());
  EXPECT_EQ(count_cycles(g, 100), 0u);
}

TEST(Johnson, RingHasExactlyOneCycle) {
  const Digraph g = ring(6);
  const auto cycles = enumerate_cycles(g, 100);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 6u);
  EXPECT_TRUE(is_valid_cycle(g, cycles[0]));
}

TEST(Johnson, CompleteDigraphOnThreeVertices) {
  // K3 with all 6 directed edges: three 2-cycles and two 3-cycles.
  Digraph g(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i != j) {
        g.add_edge(i, j);
      }
    }
  }
  g.finalize();
  const auto cycles = enumerate_cycles(g, 100);
  EXPECT_EQ(cycles.size(), 5u);
  for (const auto& cycle : cycles) {
    EXPECT_TRUE(is_valid_cycle(g, cycle));
  }
}

TEST(Johnson, SelfLoopCounts) {
  Digraph g(2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.finalize();
  const auto cycles = enumerate_cycles(g, 10);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], CycleWitness{0});
}

TEST(Johnson, CapSaturates) {
  // Two disjoint rings: cap at 1 returns exactly one cycle.
  Digraph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 2);
  g.add_edge(4, 5);
  g.add_edge(5, 4);
  g.finalize();
  EXPECT_EQ(enumerate_cycles(g, 1).size(), 1u);
  EXPECT_EQ(enumerate_cycles(g, 2).size(), 2u);
  EXPECT_EQ(enumerate_cycles(g, 100).size(), 3u);
  EXPECT_TRUE(enumerate_cycles(g, 0).empty());
}

TEST(Johnson, CyclesAreDistinct) {
  // Figure-eight: two triangles sharing vertex 0.
  Digraph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 0);
  g.finalize();
  const auto cycles = enumerate_cycles(g, 10);
  ASSERT_EQ(cycles.size(), 2u);
  EXPECT_NE(cycles[0], cycles[1]);
}

}  // namespace
}  // namespace genoc
