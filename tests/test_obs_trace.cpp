// TraceRecorder tests: the zero-cost-when-disabled contract, the Chrome
// trace-event serialization (parsed back with the repo's own JsonValue —
// the same reader the --baseline machinery trusts), span nesting across a
// real multi-threaded verify, and bit-identical verdicts with tracing on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cli/json_reader.hpp"
#include "instance/batch_runner.hpp"
#include "instance/registry.hpp"
#include "obs/trace.hpp"
#include "verify/artifacts.hpp"
#include "verify/pipeline.hpp"

namespace genoc {
namespace {

/// Clears the process-wide recorder on entry AND exit so traced tests never
/// leak an enabled recorder into a neighboring test.
struct RecorderGuard {
  RecorderGuard() { obs::TraceRecorder::global().clear(); }
  ~RecorderGuard() { obs::TraceRecorder::global().clear(); }
};

cli::JsonValue parse_trace() {
  const std::string text = obs::TraceRecorder::global().to_json();
  std::string error;
  const std::optional<cli::JsonValue> doc = cli::JsonValue::parse(text, &error);
  EXPECT_TRUE(doc.has_value()) << error;
  return doc.value_or(cli::JsonValue{});
}

struct Span {
  std::string name;
  double ts = 0.0;
  double dur = 0.0;
};

/// The "X" spans per tid, in serialization order.
std::map<std::int64_t, std::vector<Span>> spans_by_tid(
    const cli::JsonValue& doc) {
  std::map<std::int64_t, std::vector<Span>> tracks;
  const cli::JsonValue* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  for (const cli::JsonValue& event : events->as_array()) {
    if (event.get_string("ph").value_or("") != "X") {
      continue;
    }
    Span span;
    span.name = event.get_string("name").value_or("");
    span.ts = event.get_number("ts").value_or(-1.0);
    span.dur = event.get_number("dur").value_or(-1.0);
    const auto tid =
        static_cast<std::int64_t>(event.get_number("tid").value_or(-1.0));
    tracks[tid].push_back(span);
  }
  return tracks;
}

TEST(ObsTrace, DisabledTracingRecordsNothing) {
  RecorderGuard guard;
  ASSERT_FALSE(obs::TraceRecorder::enabled());
  {
    obs::TraceSpan span("never_recorded");
    EXPECT_FALSE(span.active());
    obs::TraceSpan nested("also_never_recorded");
  }
  EXPECT_EQ(obs::TraceRecorder::global().event_count(), 0u);
  // The empty document is still well-formed.
  const cli::JsonValue doc = parse_trace();
  EXPECT_TRUE(spans_by_tid(doc).empty());
}

TEST(ObsTrace, NestedSpansSerializeContainedInTheirParent) {
  RecorderGuard guard;
  obs::TraceRecorder::global().start();
  {
    obs::TraceSpan outer("outer");
    EXPECT_TRUE(outer.active());
    {
      obs::TraceSpan inner("inner");
      inner.set_detail("payload");
    }
  }
  obs::TraceRecorder::global().stop();
  // Spans after stop() are dropped again.
  { obs::TraceSpan late("late"); }
  EXPECT_EQ(obs::TraceRecorder::global().event_count(), 2u);

  const cli::JsonValue doc = parse_trace();
  const auto tracks = spans_by_tid(doc);
  ASSERT_EQ(tracks.size(), 1u);
  const std::vector<Span>& track = tracks.begin()->second;
  ASSERT_EQ(track.size(), 2u);
  // Start-sorted with longer-duration-first ties: the parent leads.
  EXPECT_EQ(track[0].name, "outer");
  EXPECT_EQ(track[1].name, "inner");
  EXPECT_GE(track[1].ts, track[0].ts);
  EXPECT_LE(track[1].ts + track[1].dur, track[0].ts + track[0].dur + 1e-3);
}

TEST(ObsTrace, ParallelVerifyTraceNestsAndLeavesVerdictsBitIdentical) {
  const InstanceSpec* spec = InstanceRegistry::global().find("mesh16-xy");
  ASSERT_NE(spec, nullptr);
  const std::vector<InstanceSpec> specs = {*spec};

  const auto run_verify = [&specs] {
    InstanceVerifyOptions options;
    ArtifactStore store;
    options.artifacts = &store;
    BatchRunner runner(4);
    return verify_instance_reports(specs, VerifyPipeline::standard(), &runner,
                                   options);
  };

  RecorderGuard guard;
  const std::vector<VerifyReport> untraced = run_verify();
  obs::TraceRecorder::global().start();
  const std::vector<VerifyReport> traced = run_verify();
  obs::TraceRecorder::global().stop();

  // Tracing must not perturb the verdict: every non-timing field matches.
  ASSERT_EQ(traced.size(), untraced.size());
  const InstanceVerdict& a = traced[0].verdict;
  const InstanceVerdict& b = untraced[0].verdict;
  EXPECT_EQ(a.instance, b.instance);
  EXPECT_EQ(a.deadlock_free, b.deadlock_free);
  EXPECT_EQ(a.dep_acyclic, b.dep_acyclic);
  EXPECT_EQ(a.constraints_ok, b.constraints_ok);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.ports, b.ports);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.note, b.note);

  const cli::JsonValue doc = parse_trace();
  const auto tracks = spans_by_tid(doc);
  ASSERT_FALSE(tracks.empty());

  std::set<std::string> names;
  for (const auto& [tid, track] : tracks) {
    for (const Span& span : track) {
      names.insert(span.name);
    }
  }
  // The pipeline stages and the sharded builder both show up.
  for (const char* expected :
       {"verify_instance", "verify_pipeline", "build_depgraph",
        "scc_acyclicity", "pool_chunk"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span " << expected;
  }

  // Per-track stack discipline: start-sorted, and each span either nests in
  // the enclosing open span or starts after it ends (what makes Perfetto
  // render a flame stack). Small epsilon: boundaries are µs-rounded.
  for (const auto& [tid, track] : tracks) {
    std::vector<double> open_ends;
    double last_ts = -1.0;
    for (const Span& span : track) {
      EXPECT_GE(span.ts + 1e-3, last_ts) << "tid " << tid << " regresses";
      last_ts = span.ts;
      while (!open_ends.empty() && span.ts >= open_ends.back() - 1e-3) {
        open_ends.pop_back();
      }
      if (!open_ends.empty()) {
        EXPECT_LE(span.ts + span.dur, open_ends.back() + 1e-3)
            << "tid " << tid << " span " << span.name
            << " overlaps its parent without nesting";
      }
      open_ends.push_back(span.ts + span.dur);
    }
  }
}

}  // namespace
}  // namespace genoc
