// Cross-cutting property sweeps: the paper's theorems verified across the
// (mesh size x routing function x buffer depth x worm length) grid.
#include <gtest/gtest.h>

#include <memory>

#include "core/hermes.hpp"
#include "core/obligations.hpp"
#include "core/theorems.hpp"
#include "deadlock/constraints.hpp"
#include "deadlock/flows.hpp"
#include "deadlock/witness.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/negative_first.hpp"
#include "routing/north_last.hpp"
#include "routing/odd_even.hpp"
#include "routing/west_first.hpp"
#include "routing/yx.hpp"
#include "sim/simulator.hpp"

namespace genoc {
namespace {

enum class Fn { kXY, kYX, kWestFirst, kNorthLast, kNegativeFirst, kOddEven };

std::unique_ptr<RoutingFunction> make_fn(Fn fn, const Mesh2D& mesh) {
  switch (fn) {
    case Fn::kXY:
      return std::make_unique<XYRouting>(mesh);
    case Fn::kYX:
      return std::make_unique<YXRouting>(mesh);
    case Fn::kWestFirst:
      return std::make_unique<WestFirstRouting>(mesh);
    case Fn::kNorthLast:
      return std::make_unique<NorthLastRouting>(mesh);
    case Fn::kNegativeFirst:
      return std::make_unique<NegativeFirstRouting>(mesh);
    case Fn::kOddEven:
      return std::make_unique<OddEvenRouting>(mesh);
  }
  return nullptr;
}

using SweepParam = std::tuple<std::pair<int, int>, Fn>;

class DeadlockFreeSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DeadlockFreeSweep, ConstraintsDischargeAndGraphIsAcyclic) {
  const auto [dims, fn] = GetParam();
  const Mesh2D mesh(dims.first, dims.second);
  const auto routing = make_fn(fn, mesh);
  const PortDepGraph dep = build_dep_graph(*routing);
  EXPECT_TRUE(check_c1(*routing, dep).satisfied) << routing->name();
  EXPECT_TRUE(check_c2(*routing, dep).satisfied) << routing->name();
  EXPECT_TRUE(check_c3(dep).satisfied) << routing->name();
}

TEST_P(DeadlockFreeSweep, RandomTrafficEvacuatesWithC5Audit) {
  const auto [dims, fn] = GetParam();
  const Mesh2D mesh(dims.first, dims.second);
  const auto routing = make_fn(fn, mesh);
  Rng rng(static_cast<std::uint64_t>(dims.first * 100 + dims.second * 10 +
                                     static_cast<int>(fn)));
  for (const std::size_t buffers : {1u, 2u}) {
    for (const std::uint32_t flits : {1u, 5u}) {
      const auto pairs = uniform_random_traffic(mesh, 12, rng);
      SimulationOptions options;
      options.flit_count = flits;
      const SimulationReport report =
          simulate_routing(mesh, *routing, pairs, buffers, rng, options);
      EXPECT_TRUE(report.run.evacuated)
          << routing->name() << " buffers=" << buffers << " flits=" << flits;
      EXPECT_EQ(report.run.measure_violations, 0u);
      EXPECT_TRUE(report.correctness_ok);
      EXPECT_TRUE(report.evacuation_ok);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DeadlockFreeSweep,
    ::testing::Combine(::testing::Values(std::pair{2, 2}, std::pair{3, 3},
                                         std::pair{4, 3}, std::pair{2, 5}),
                       ::testing::Values(Fn::kXY, Fn::kYX, Fn::kWestFirst,
                                         Fn::kNorthLast, Fn::kNegativeFirst,
                                         Fn::kOddEven)));

class AdversarySweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AdversarySweep, FullyAdaptiveWitnessRoundTrip) {
  // On every mesh with a 2x2 sub-block the unrestricted baseline has a
  // cycle, realizable as a concrete Ω-configuration, from which a
  // dependency cycle is recoverable. All three steps on every size.
  const auto [w, h] = GetParam();
  const Mesh2D mesh(w, h);
  const FullyAdaptiveRouting fa(mesh);
  const PortDepGraph dep = build_dep_graph(fa);
  const auto cycle = find_cycle(dep.graph);
  ASSERT_TRUE(cycle.has_value());
  const WormholeSwitching wh;
  DeadlockConstruction witness = build_deadlock_from_cycle(fa, dep, *cycle, 2);
  ASSERT_TRUE(is_deadlock(wh, witness.state));
  const DeadlockCycle recovered = extract_cycle_from_deadlock(wh, witness.state);
  EXPECT_TRUE(cycle_lies_in_dep_graph(dep, recovered.ports));
  // And the flow certificate must reject the cyclic graph.
  EXPECT_FALSE(verify_flow_certificate(dep));
}

INSTANTIATE_TEST_SUITE_P(Meshes, AdversarySweep,
                         ::testing::Values(std::pair{2, 2}, std::pair{3, 2},
                                           std::pair{2, 3}, std::pair{3, 3},
                                           std::pair{4, 4}));

class HermesSweep : public ::testing::TestWithParam<
                        std::tuple<std::pair<int, int>, int, int>> {};

TEST_P(HermesSweep, EndToEndTheoremsHold) {
  const auto [dims, buffers, flits] = GetParam();
  const HermesInstance hermes(dims.first, dims.second, buffers);
  Rng rng(2010);
  const auto pairs = uniform_random_traffic(hermes.mesh(), 16, rng);
  Config config = hermes.make_config(pairs,
                                     static_cast<std::uint32_t>(flits));
  const GenocRunResult run = hermes.run(config);
  EXPECT_TRUE(run.evacuated);
  EXPECT_EQ(run.measure_violations, 0u);
  EXPECT_TRUE(check_correctness(config, hermes.routing()).holds);
  EXPECT_TRUE(check_evacuation(config, run).holds);
  EXPECT_TRUE(hermes.verify_deadlock_free().holds);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HermesSweep,
    ::testing::Combine(::testing::Values(std::pair{2, 2}, std::pair{4, 4},
                                         std::pair{5, 3}, std::pair{1, 8}),
                       ::testing::Values(1, 3),
                       ::testing::Values(1, 6)));

TEST(PropertySweep, ObligationSuiteOnTheFig3Instance) {
  // The paper's running example: 2x2 with 2 buffers per port (Fig. 1b).
  const HermesInstance hermes(2, 2, 2);
  ObligationOptions options;
  options.workloads = 2;
  options.messages_per_workload = 8;
  const ObligationSuite suite = run_hermes_obligations(hermes, options);
  EXPECT_TRUE(suite.all_satisfied());
}

}  // namespace
}  // namespace genoc
