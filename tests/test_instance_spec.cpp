// Spec-parser tests: the booksim2-style `key=value` grammar that makes
// arbitrary instances constructible from the CLI. Round-trip fidelity,
// normalization of spelling variants, and precise rejection messages are
// the contract — `genoc verify --instance` maps a parse failure to exit 2
// by printing exactly the message checked here.
#include <gtest/gtest.h>

#include <algorithm>

#include "instance/spec.hpp"
#include "workload/traffic.hpp"

namespace genoc {
namespace {

InstanceSpec parse_ok(const std::string& text) {
  std::string error;
  const auto spec = parse_instance_spec(text, &error);
  EXPECT_TRUE(spec.has_value()) << "'" << text << "' rejected: " << error;
  return spec.value_or(InstanceSpec{});
}

std::string parse_err(const std::string& text) {
  std::string error;
  const auto spec = parse_instance_spec(text, &error);
  EXPECT_FALSE(spec.has_value()) << "'" << text << "' unexpectedly accepted";
  EXPECT_FALSE(error.empty()) << "rejection of '" << text
                              << "' carries no message";
  return error;
}

TEST(InstanceSpec, ParsesEveryKey) {
  const InstanceSpec spec = parse_ok(
      "topology=torus size=16x8 routing=odd_even switching=store_forward "
      "buffers=8 escape=xy pattern=transpose messages=99 flits=3 seed=7");
  EXPECT_EQ(spec.topology, "torus");
  EXPECT_EQ(spec.width, 16);
  EXPECT_EQ(spec.height, 8);
  EXPECT_EQ(spec.routing, "odd_even");
  EXPECT_EQ(spec.switching, "store_forward");
  EXPECT_EQ(spec.buffers, 8u);
  EXPECT_EQ(spec.escape, "xy");
  EXPECT_EQ(spec.pattern, "transpose");
  EXPECT_EQ(spec.messages, 99u);
  EXPECT_EQ(spec.flits, 3u);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_TRUE(spec.wrap_x());
  EXPECT_TRUE(spec.wrap_y());
}

TEST(InstanceSpec, SizeForms) {
  EXPECT_EQ(parse_ok("size=8").width, 8);
  EXPECT_EQ(parse_ok("size=8").height, 8);
  const InstanceSpec rect = parse_ok("size=16x4");
  EXPECT_EQ(rect.width, 16);
  EXPECT_EQ(rect.height, 4);
  // width/height override size; later tokens win.
  const InstanceSpec late = parse_ok("size=8x8 width=6 height=3");
  EXPECT_EQ(late.width, 6);
  EXPECT_EQ(late.height, 3);
  EXPECT_EQ(parse_ok("width=6 size=8x8").width, 8);
}

TEST(InstanceSpec, NormalizesSpellingVariants) {
  EXPECT_EQ(parse_ok("routing=west-first size=4").routing, "west_first");
  EXPECT_EQ(parse_ok("routing=Odd_Even size=4").routing, "odd_even");
  EXPECT_EQ(parse_ok("switching=store-and-forward flits=2 buffers=2").switching,
            "store_forward");
  EXPECT_EQ(parse_ok("switching=sf flits=2 buffers=2").switching,
            "store_forward");
  EXPECT_EQ(parse_ok("pattern=bit_reversal").pattern, "bit-reversal");
  EXPECT_EQ(parse_ok("pattern=bitrev").pattern, "bit-reversal");
  EXPECT_EQ(parse_ok("pattern=uniform").pattern, "uniform-random");
  EXPECT_EQ(parse_ok("escape=none size=4").escape, "");
}

TEST(InstanceSpec, RoundTripsThroughCanonicalString) {
  const char* texts[] = {
      "topology=mesh size=4x4 routing=xy",
      "topology=torus size=8x8 routing=torus_xy escape=xy flits=2",
      "topology=ring size=5x3 routing=torus_xy escape=yx",
      "topology=mesh size=6x6 routing=fully_adaptive escape=xy "
      "pattern=hotspot messages=17 seed=99",
      "topology=mesh size=8x8 routing=xy switching=store_forward buffers=4",
  };
  for (const char* text : texts) {
    const InstanceSpec spec = parse_ok(text);
    const std::string canonical = to_spec_string(spec);
    const InstanceSpec again = parse_ok(canonical);
    EXPECT_EQ(spec, again) << "round trip changed '" << canonical << "'";
    EXPECT_EQ(canonical, to_spec_string(again));
  }
}

TEST(InstanceSpec, RejectsUnknownKeysAndValues) {
  EXPECT_NE(parse_err("topology=banana").find("unknown topology"),
            std::string::npos);
  EXPECT_NE(parse_err("routing=banana").find("unknown routing"),
            std::string::npos);
  EXPECT_NE(parse_err("switching=banana").find("unknown switching"),
            std::string::npos);
  EXPECT_NE(parse_err("pattern=banana").find("unknown pattern"),
            std::string::npos);
  EXPECT_NE(parse_err("escape=banana").find("unknown escape"),
            std::string::npos);
  const std::string unknown_key = parse_err("fnords=3");
  EXPECT_NE(unknown_key.find("unknown key"), std::string::npos);
  EXPECT_NE(unknown_key.find("fnords"), std::string::npos);
}

TEST(InstanceSpec, RejectsMalformedTokensAndNumbers) {
  EXPECT_NE(parse_err("").find("empty"), std::string::npos);
  EXPECT_NE(parse_err("mesh").find("key=value"), std::string::npos);
  EXPECT_NE(parse_err("size=").find("key=value"), std::string::npos);
  EXPECT_NE(parse_err("=8").find("key=value"), std::string::npos);
  EXPECT_NE(parse_err("width=abc").find("not a number"), std::string::npos);
  EXPECT_NE(parse_err("size=8xx8").find("not a number"), std::string::npos);
  EXPECT_NE(parse_err("width=-3").find("not a number"), std::string::npos);
  EXPECT_NE(parse_err("width=4096").find("outside"), std::string::npos);
  EXPECT_NE(parse_err("buffers=0").find("outside"), std::string::npos);
  EXPECT_NE(parse_err("flits=0").find("outside"), std::string::npos);
}

TEST(InstanceSpec, ValidatesCrossFieldConsistency) {
  // torus_xy needs wrap links to route over.
  EXPECT_NE(parse_err("topology=mesh routing=torus_xy").find("torus_xy"),
            std::string::npos);
  // Wrapped dimensions need at least 2 nodes.
  EXPECT_NE(parse_err("topology=torus size=1x4 routing=torus_xy")
                .find("wrapping x"),
            std::string::npos);
  EXPECT_NE(parse_err("topology=torus width=4 height=1 routing=torus_xy")
                .find("wrapping y"),
            std::string::npos);
  // A ring only wraps x, so height 1 is fine but width 1 is not.
  EXPECT_TRUE(parse_ok("topology=ring size=4x1 routing=torus_xy escape=xy")
                  .wrap_x());
  // Escape lanes must be deterministic deadlock-free functions.
  EXPECT_NE(parse_err("size=4 escape=fully_adaptive").find("escape"),
            std::string::npos);
  EXPECT_NE(parse_err("size=4 escape=torus_xy").find("escape"),
            std::string::npos);
  // Store-and-forward cannot ever move packets longer than a buffer.
  EXPECT_NE(
      parse_err("switching=store_forward buffers=2 flits=4").find("flits"),
      std::string::npos);
  EXPECT_NE(parse_err("size=1x1").find("1x1"), std::string::npos);
}

TEST(InstanceSpec, ValidateSpecCatchesHandBuiltSpecs) {
  InstanceSpec spec;
  EXPECT_EQ(validate_spec(spec), "");
  spec.routing = "nonsense";
  EXPECT_FALSE(validate_spec(spec).empty());
  spec.routing = "xy";
  spec.pattern = "nonsense";
  EXPECT_FALSE(validate_spec(spec).empty());
}

TEST(InstanceSpec, TurnModelFamilyIsKnown) {
  for (const std::string& name : turn_model_routings()) {
    EXPECT_NE(std::find(known_routings().begin(), known_routings().end(),
                        name),
              known_routings().end())
        << name;
  }
  EXPECT_EQ(turn_model_routings().size(), 4u);
}

}  // namespace
}  // namespace genoc
