// Tests for the paper's port model (Sec. V.1): the <x,y,P,D> tuple, trans,
// next_in, and the coordinate convention (North decreases y).
#include <gtest/gtest.h>

#include "topology/port.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

TEST(Port, PaperNotationRoundTrip) {
  const Port p{1, 0, PortName::kWest, Direction::kIn};
  EXPECT_EQ(to_string(p), "<1,0,W,IN>");
  EXPECT_EQ(x_of(p), 1);
  EXPECT_EQ(y_of(p), 0);
  EXPECT_EQ(port_name(p), PortName::kWest);
  EXPECT_EQ(dir(p), Direction::kIn);
}

TEST(Port, TransStaysInNode) {
  const Port p{3, 2, PortName::kEast, Direction::kIn};
  const Port q = trans(p, PortName::kLocal, Direction::kOut);
  EXPECT_EQ(q.x, 3);
  EXPECT_EQ(q.y, 2);
  EXPECT_EQ(q.name, PortName::kLocal);
  EXPECT_EQ(q.dir, Direction::kOut);
}

TEST(Port, NextInMatchesPaperExample) {
  // Paper Sec. V.1: next_in(<0,0,E,OUT>) = <1,0,W,IN>.
  const Port p{0, 0, PortName::kEast, Direction::kOut};
  const Port q = next_in(p);
  EXPECT_EQ(q, (Port{1, 0, PortName::kWest, Direction::kIn}));
}

TEST(Port, NorthDecreasesY) {
  const Port n{2, 3, PortName::kNorth, Direction::kOut};
  EXPECT_EQ(next_in(n), (Port{2, 2, PortName::kSouth, Direction::kIn}));
  const Port s{2, 3, PortName::kSouth, Direction::kOut};
  EXPECT_EQ(next_in(s), (Port{2, 4, PortName::kNorth, Direction::kIn}));
  const Port w{2, 3, PortName::kWest, Direction::kOut};
  EXPECT_EQ(next_in(w), (Port{1, 3, PortName::kEast, Direction::kIn}));
}

TEST(Port, NextInRequiresCardinalOutPort) {
  EXPECT_FALSE(has_next_in(Port{0, 0, PortName::kLocal, Direction::kOut}));
  EXPECT_FALSE(has_next_in(Port{0, 0, PortName::kEast, Direction::kIn}));
  EXPECT_TRUE(has_next_in(Port{0, 0, PortName::kEast, Direction::kOut}));
  EXPECT_THROW(next_in(Port{0, 0, PortName::kLocal, Direction::kOut}),
               ContractViolation);
  EXPECT_THROW(next_in(Port{0, 0, PortName::kEast, Direction::kIn}),
               ContractViolation);
}

TEST(Port, NextInIsInverseAcrossTheLink) {
  // Crossing a link and crossing back via the opposite out-port returns to
  // the mirror port of the origin.
  for (const PortName name : {PortName::kEast, PortName::kWest,
                              PortName::kNorth, PortName::kSouth}) {
    const Port out{5, 5, name, Direction::kOut};
    const Port far_in = next_in(out);
    EXPECT_EQ(far_in.name, opposite(name));
    const Port back = next_in(trans(far_in, far_in.name, Direction::kOut));
    EXPECT_EQ(back, (Port{5, 5, name, Direction::kIn}));
  }
}

TEST(Port, OppositeIsAnInvolutionOnCardinals) {
  for (const PortName name : {PortName::kEast, PortName::kWest,
                              PortName::kNorth, PortName::kSouth}) {
    EXPECT_EQ(opposite(opposite(name)), name);
    EXPECT_NE(opposite(name), name);
  }
  EXPECT_THROW(opposite(PortName::kLocal), ContractViolation);
}

TEST(Port, OrderingAndHashingAreConsistent) {
  const Port a{0, 0, PortName::kEast, Direction::kIn};
  const Port b{0, 0, PortName::kEast, Direction::kOut};
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
  const std::hash<Port> h;
  EXPECT_EQ(h(a), h(Port{0, 0, PortName::kEast, Direction::kIn}));
}

TEST(Port, LetterNames) {
  EXPECT_EQ(port_name_letter(PortName::kEast), 'E');
  EXPECT_EQ(port_name_letter(PortName::kWest), 'W');
  EXPECT_EQ(port_name_letter(PortName::kNorth), 'N');
  EXPECT_EQ(port_name_letter(PortName::kSouth), 'S');
  EXPECT_EQ(port_name_letter(PortName::kLocal), 'L');
  EXPECT_STREQ(direction_name(Direction::kIn), "IN");
  EXPECT_STREQ(direction_name(Direction::kOut), "OUT");
}

}  // namespace
}  // namespace genoc
