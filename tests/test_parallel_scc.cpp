// parallel_scc against sequential Tarjan: identical partitions (up to the
// documented relabeling — Tarjan numbers components in DFS order, the
// parallel decomposition canonically by smallest vertex) on hand-built
// graphs, random digraphs, and real dependency graphs, at 1, 4 and 8
// threads; and bit-identical results across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "deadlock/depgraph.hpp"
#include "deadlock/scc_checker.hpp"
#include "graph/tarjan.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/torus_xy.hpp"
#include "routing/xy.hpp"
#include "topology/mesh.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace genoc {
namespace {

/// Partition in canonical order: components sorted by smallest vertex
/// (each component is already internally sorted by both algorithms).
std::vector<std::vector<std::size_t>> canonical(const SccResult& scc) {
  std::vector<std::vector<std::size_t>> comps = scc.components;
  std::sort(comps.begin(), comps.end(),
            [](const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
              return a.front() < b.front();
            });
  return comps;
}

void expect_same_partition(const Digraph& graph, std::size_t threads) {
  ThreadPool pool(threads);
  const SccResult parallel = parallel_scc(graph, pool);
  const SccResult sequential = tarjan_scc(graph);
  ASSERT_EQ(parallel.component.size(), graph.vertex_count());
  EXPECT_EQ(canonical(parallel), canonical(sequential));
  // The parallel ids ARE canonical: component i holds the i-th smallest
  // leading vertex, and component[v] points into it.
  EXPECT_EQ(parallel.components, canonical(parallel));
  for (std::size_t i = 0; i < parallel.components.size(); ++i) {
    for (const std::size_t v : parallel.components[i]) {
      EXPECT_EQ(parallel.component[v], i);
    }
  }
  EXPECT_EQ(has_nontrivial_scc(graph, pool), has_nontrivial_scc(graph));
}

Digraph random_digraph(std::size_t vertices, std::size_t edges,
                       std::uint64_t seed) {
  Rng rng(seed);
  Digraph graph(vertices);
  for (std::size_t i = 0; i < edges; ++i) {
    graph.add_edge(rng.below(vertices), rng.below(vertices));
  }
  graph.finalize();
  return graph;
}

TEST(ParallelScc, HandGraphs) {
  {
    Digraph empty(0);
    empty.finalize();
    ThreadPool pool(2);
    EXPECT_TRUE(parallel_scc(empty, pool).components.empty());
  }
  {
    Digraph single(1);
    single.finalize();
    expect_same_partition(single, 2);
  }
  {
    Digraph self_loop(2);  // 0->0 survives the trim as a non-trivial SCC
    self_loop.add_edge(0, 0);
    self_loop.add_edge(0, 1);
    self_loop.finalize();
    expect_same_partition(self_loop, 2);
    ThreadPool pool(2);
    EXPECT_TRUE(has_nontrivial_scc(self_loop, pool));
  }
  {
    Digraph path(6);  // pure DAG: fully trimmed
    for (std::size_t v = 0; v + 1 < 6; ++v) {
      path.add_edge(v, v + 1);
    }
    path.finalize();
    expect_same_partition(path, 2);
    ThreadPool pool(2);
    EXPECT_FALSE(has_nontrivial_scc(path, pool));
  }
  {
    // Two 3-cycles joined by a bridge, plus a dangling tail: trim peels
    // the tail, the bridge keeps both cycles in one weak bucket.
    Digraph g(8);
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 0);
    g.add_edge(2, 3);
    g.add_edge(3, 4);
    g.add_edge(4, 5);
    g.add_edge(5, 3);
    g.add_edge(5, 6);
    g.add_edge(6, 7);
    g.finalize();
    expect_same_partition(g, 2);
  }
}

TEST(ParallelScc, RandomDigraphs) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const Digraph sparse = random_digraph(3000, 4500, seed);
    SCOPED_TRACE(seed);
    expect_same_partition(sparse, 4);
  }
  // Dense enough for a giant SCC: the bucket crosses the FW-BW threshold,
  // so the recursion (median pivot, region relabeling) gets real coverage.
  const Digraph giant = random_digraph(12000, 30000, 2010);
  expect_same_partition(giant, 4);
  expect_same_partition(giant, 1);
}

TEST(ParallelScc, DependencyGraphs) {
  {
    const Mesh2D mesh(16, 16);
    const XYRouting xy(mesh);
    const PortDepGraph dep = build_dep_graph_fast(xy);
    for (const std::size_t threads : {1u, 4u, 8u}) {
      expect_same_partition(dep.graph, threads);
    }
  }
  {
    const Mesh2D torus(8, 8, true, true);
    const TorusXYRouting routing(torus);
    const PortDepGraph dep = build_dep_graph_fast(routing);  // cyclic rings
    for (const std::size_t threads : {1u, 4u, 8u}) {
      expect_same_partition(dep.graph, threads);
    }
  }
  {
    const Mesh2D mesh(8, 8);
    const FullyAdaptiveRouting adaptive(mesh);
    const PortDepGraph dep = build_dep_graph_fast(adaptive);  // big SCC
    expect_same_partition(dep.graph, 4);
  }
}

TEST(ParallelScc, SixtyFourBySixtyFourMatchesTarjan) {
  const Mesh2D mesh(64, 64);
  const XYRouting xy(mesh);
  const PortDepGraph dep = build_dep_graph_fast(xy);
  expect_same_partition(dep.graph, 8);
}

TEST(ParallelScc, LevelSynchronousTrimOnCyclicTorus64) {
  // Above kParallelTrimMin the trim peels run as level-synchronous
  // sharded frontier rounds instead of the single-threaded worklist; the
  // 64x64 torus graph is the scale that path targets, and its wrap rings
  // are vertices the trim must NOT strip (they survive to the
  // Tarjan/FW-BW stage). The acyclic 64x64 mesh above covers the
  // everything-trims case.
  const Mesh2D torus(64, 64, true, true);
  const TorusXYRouting routing(torus);
  const PortDepGraph dep = build_dep_graph_fast(routing);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    expect_same_partition(dep.graph, threads);
  }
}

TEST(ParallelScc, AnalyzeDependenciesSameVerdictWithPool) {
  // The SCC-checker entry point the verify pipeline uses: the pooled
  // analysis must agree with the sequential one on every aggregate (the
  // sampled cycles may differ — component order is canonical vs DFS).
  const Mesh2D torus(8, 8, true, true);
  const TorusXYRouting routing(torus);
  const PortDepGraph dep = build_dep_graph_fast(routing);
  const SccAnalysis sequential = analyze_dependencies(dep, 4);
  ThreadPool pool(4);
  const SccAnalysis pooled = analyze_dependencies(dep, 4, &pool);
  EXPECT_EQ(pooled.deadlock_free, sequential.deadlock_free);
  EXPECT_EQ(pooled.scc_count, sequential.scc_count);
  EXPECT_EQ(pooled.nontrivial_scc_count, sequential.nontrivial_scc_count);
  EXPECT_EQ(pooled.largest_scc_size, sequential.largest_scc_size);
  EXPECT_EQ(pooled.ports_in_cycles, sequential.ports_in_cycles);
  EXPECT_EQ(pooled.sample_cycles.size(), sequential.sample_cycles.size());
}

TEST(ParallelScc, IdenticalAcrossThreadCounts) {
  const Mesh2D torus(16, 16, true, true);
  const TorusXYRouting routing(torus);
  const PortDepGraph dep = build_dep_graph_fast(routing);
  ThreadPool one(1);
  const SccResult base = parallel_scc(dep.graph, one);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    const SccResult again = parallel_scc(dep.graph, pool);
    EXPECT_EQ(again.component, base.component) << threads << " threads";
    EXPECT_EQ(again.components, base.components) << threads << " threads";
  }
}

}  // namespace
}  // namespace genoc
