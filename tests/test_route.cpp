// Tests for route computation: the R : Σ -> Σ generalization machinery.
#include <gtest/gtest.h>

#include "routing/fully_adaptive.hpp"
#include "routing/route.hpp"
#include "routing/xy.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

TEST(Route, ComputeRouteEndpoints) {
  const Mesh2D mesh(3, 3);
  const XYRouting xy(mesh);
  const Port from = mesh.local_in(0, 2);
  const Port to = mesh.local_out(2, 0);
  const Route r = compute_route(xy, from, to);
  EXPECT_EQ(r.front(), from);
  EXPECT_EQ(r.back(), to);
  EXPECT_EQ(r.size(), minimal_route_length(from, to));
}

TEST(Route, ComputeRouteFromMidNetworkPort) {
  // Routes can start anywhere reachability allows (used by the witness
  // builder): from an in-port mid-mesh.
  const Mesh2D mesh(3, 3);
  const XYRouting xy(mesh);
  const Port from{1, 1, PortName::kWest, Direction::kIn};
  const Port to = mesh.local_out(2, 2);
  ASSERT_TRUE(xy.reachable(from, to));
  const Route r = compute_route(xy, from, to);
  EXPECT_EQ(r.front(), from);
  EXPECT_EQ(r.back(), to);
  EXPECT_TRUE(is_valid_route(xy, r, from, to));
}

TEST(Route, ComputeRouteRejectsUnreachablePairs) {
  const Mesh2D mesh(3, 3);
  const XYRouting xy(mesh);
  const Port e_in{1, 1, PortName::kEast, Direction::kIn};
  EXPECT_THROW(compute_route(xy, e_in, mesh.local_out(2, 1)),
               ContractViolation);
}

TEST(Route, ComputeRouteRejectsAdaptiveFunctions) {
  const Mesh2D mesh(3, 3);
  const FullyAdaptiveRouting fa(mesh);
  EXPECT_THROW(
      compute_route(fa, mesh.local_in(0, 0), mesh.local_out(2, 2)),
      ContractViolation);
}

TEST(Route, EnumerateRoutesDeterministicGivesOne) {
  const Mesh2D mesh(3, 3);
  const XYRouting xy(mesh);
  const auto routes = enumerate_routes(xy, mesh.local_in(0, 0),
                                       mesh.local_out(2, 2), 10);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0],
            compute_route(xy, mesh.local_in(0, 0), mesh.local_out(2, 2)));
}

TEST(Route, EnumerateRoutesHonoursCap) {
  const Mesh2D mesh(4, 4);
  const FullyAdaptiveRouting fa(mesh);
  const Port from = mesh.local_in(0, 0);
  const Port to = mesh.local_out(3, 3);  // C(6,3) = 20 minimal node paths
  EXPECT_EQ(enumerate_routes(fa, from, to, 1000).size(), 20u);
  EXPECT_EQ(enumerate_routes(fa, from, to, 5).size(), 5u);
  EXPECT_TRUE(enumerate_routes(fa, from, to, 0).empty());
}

TEST(Route, IsValidRouteRejectsCorruptedPaths) {
  const Mesh2D mesh(3, 3);
  const XYRouting xy(mesh);
  const Port from = mesh.local_in(0, 0);
  const Port to = mesh.local_out(2, 0);
  Route r = compute_route(xy, from, to);
  EXPECT_TRUE(is_valid_route(xy, r, from, to));
  // Wrong start/end.
  EXPECT_FALSE(is_valid_route(xy, r, mesh.local_in(1, 1), to));
  EXPECT_FALSE(is_valid_route(xy, r, from, mesh.local_out(1, 1)));
  // A skipped hop breaks the chain.
  Route skipped = r;
  skipped.erase(skipped.begin() + 1);
  EXPECT_FALSE(is_valid_route(xy, skipped, from, to));
  // Empty route.
  EXPECT_FALSE(is_valid_route(xy, {}, from, to));
}

TEST(Route, ManhattanAndMinimalLength) {
  const Port a{0, 0, PortName::kLocal, Direction::kIn};
  const Port b{3, 2, PortName::kLocal, Direction::kOut};
  EXPECT_EQ(manhattan_distance(a, b), 5u);
  EXPECT_EQ(minimal_route_length(a, b), 12u);
  EXPECT_EQ(minimal_route_length(a, Port{0, 0, PortName::kLocal,
                                         Direction::kOut}),
            2u);
}

}  // namespace
}  // namespace genoc
