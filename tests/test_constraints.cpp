// Tests for the proof obligations (C-1), (C-2), (C-3) — positive discharge
// for XY on mesh sweeps, and negative detection for mismatched/cyclic
// instances.
#include <gtest/gtest.h>

#include "deadlock/constraints.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"

namespace genoc {
namespace {

class ConstraintSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ConstraintSweep, XYDischargesAllThree) {
  const auto [w, h] = GetParam();
  const Mesh2D mesh(w, h);
  const XYRouting xy(mesh);
  const PortDepGraph dep = build_exy_dep(mesh);

  const ConstraintReport c1 = check_c1(xy, dep);
  EXPECT_TRUE(c1.satisfied) << c1.summary();
  EXPECT_GT(c1.checks, 0u);

  const ConstraintReport c2 = check_c2(xy, dep);
  EXPECT_TRUE(c2.satisfied) << c2.summary();
  // (C-2) examines every edge at least once.
  EXPECT_GE(c2.checks, dep.graph.edge_count());

  const ConstraintReport c2cf = check_c2_xy_closed_form(xy, dep);
  EXPECT_TRUE(c2cf.satisfied) << c2cf.summary();
  EXPECT_EQ(c2cf.checks, dep.graph.edge_count());

  std::optional<CycleWitness> cycle;
  const ConstraintReport c3 = check_c3(dep, &cycle);
  EXPECT_TRUE(c3.satisfied) << c3.summary();
  EXPECT_FALSE(cycle.has_value());
}

INSTANTIATE_TEST_SUITE_P(Meshes, ConstraintSweep,
                         ::testing::Values(std::pair{1, 2}, std::pair{2, 2},
                                           std::pair{3, 2}, std::pair{3, 3},
                                           std::pair{4, 4}, std::pair{5, 5},
                                           std::pair{8, 8}, std::pair{2, 7}));

TEST(Constraints, C1CatchesRoutingGraphMismatch) {
  // YX routing checked against the XY dependency graph: YX takes
  // vertical-to-horizontal turns that Exy_dep forbids, so (C-1) must fail.
  const Mesh2D mesh(3, 3);
  const YXRouting yx(mesh);
  const PortDepGraph xy_dep = build_exy_dep(mesh);
  const ConstraintReport c1 = check_c1(yx, xy_dep);
  EXPECT_FALSE(c1.satisfied);
  EXPECT_FALSE(c1.violations.empty());
}

TEST(Constraints, C2CatchesOverApproximatedGraph) {
  // Add a fabricated edge (an XY-illegal N-in -> E-out turn) to the
  // dependency graph: (C-2) must report it unwitnessed.
  const Mesh2D mesh(3, 3);
  const XYRouting xy(mesh);
  PortDepGraph dep;
  dep.mesh = &mesh;
  dep.graph = Digraph(mesh.port_count());
  for (const auto& [from, to] : build_exy_dep(mesh).graph.edges()) {
    dep.graph.add_edge(from, to);
  }
  dep.graph.add_edge(
      mesh.id(Port{1, 1, PortName::kNorth, Direction::kIn}),
      mesh.id(Port{1, 1, PortName::kEast, Direction::kOut}));
  dep.graph.finalize();
  const ConstraintReport c2 = check_c2(xy, dep);
  EXPECT_FALSE(c2.satisfied);
  ASSERT_FALSE(c2.violations.empty());
  EXPECT_NE(c2.violations.front().find("N,IN"), std::string::npos);
  // (C-1) still holds: the real edges are all present.
  EXPECT_TRUE(check_c1(xy, dep).satisfied);
}

TEST(Constraints, C3FindsTheFullyAdaptiveCycle) {
  const Mesh2D mesh(2, 2);
  const FullyAdaptiveRouting adaptive(mesh);
  const PortDepGraph dep = build_dep_graph(adaptive);
  std::optional<CycleWitness> cycle;
  const ConstraintReport c3 = check_c3(dep, &cycle);
  EXPECT_FALSE(c3.satisfied);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(is_valid_cycle(dep.graph, *cycle));
  ASSERT_FALSE(c3.violations.empty());
  EXPECT_NE(c3.violations.front().find("cycle"), std::string::npos);
}

TEST(Constraints, FullyAdaptiveStillSatisfiesC1AndC2) {
  // The generic dependency graph is built FROM the routing function, so
  // (C-1) and (C-2) hold even for deadlock-prone functions — only (C-3)
  // distinguishes them. This is exactly the paper's structure.
  const Mesh2D mesh(3, 2);
  const FullyAdaptiveRouting adaptive(mesh);
  const PortDepGraph dep = build_dep_graph(adaptive);
  EXPECT_TRUE(check_c1(adaptive, dep).satisfied);
  EXPECT_TRUE(check_c2(adaptive, dep).satisfied);
}

TEST(Constraints, XyEdgeWitnessMatchesPaperFindDest) {
  const Mesh2D mesh(3, 3);
  // Edge out-port -> in-port: witness is the in-port's node.
  const Port e_out{0, 1, PortName::kEast, Direction::kOut};
  const Port w_in{1, 1, PortName::kWest, Direction::kIn};
  EXPECT_EQ(xy_edge_witness(mesh, e_out, w_in), mesh.local_out(1, 1));
  // Edge in-port -> cardinal out-port: witness is just across the link.
  const Port n_out{1, 1, PortName::kNorth, Direction::kOut};
  EXPECT_EQ(xy_edge_witness(mesh, w_in, n_out), mesh.local_out(1, 0));
  // Edge in-port -> Local OUT: the witness is that port itself.
  EXPECT_EQ(xy_edge_witness(mesh, w_in, mesh.local_out(1, 1)),
            mesh.local_out(1, 1));
}

TEST(Constraints, ReportSummariesAreInformative) {
  const Mesh2D mesh(2, 2);
  const XYRouting xy(mesh);
  const PortDepGraph dep = build_exy_dep(mesh);
  const ConstraintReport c1 = check_c1(xy, dep);
  EXPECT_NE(c1.summary().find("(C-1)XY"), std::string::npos);
  EXPECT_NE(c1.summary().find("DISCHARGED"), std::string::npos);
}

}  // namespace
}  // namespace genoc
