// The tiered reachability closure against its dense oracle.
//
// The acceptance bar of the compressed-closure pass: every tier — the
// node-granular closed form (kNodeMask), the lazily built hybrid-compressed
// rows (kCompressed) and whatever kAuto resolves to — must be BIT-IDENTICAL
// to the legacy dense bitset (kDense, kept exactly for this role), per
// destination row and per membership query, on every registry preset; lazy
// first-touch row building must equal eager prime() at 1, 4 and 8 threads;
// and the tiers must realize the >= 4x memory reduction over the dense
// layout that retired it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "instance/batch_runner.hpp"
#include "instance/network_instance.hpp"
#include "instance/registry.hpp"
#include "routing/routing.hpp"
#include "routing/odd_even.hpp"
#include "routing/west_first.hpp"
#include "topology/mesh.hpp"

namespace genoc {
namespace {

/// Every destination row of \p a must equal \p b's (same scratch-reuse
/// pattern the escape sweep runs), and so must every per-port membership
/// answer on a sample of destinations.
void expect_closures_identical(const RoutingFunction& a,
                               const RoutingFunction& b,
                               const char* what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(a.closure_row_words(), b.closure_row_words());
  const std::size_t words = a.closure_row_words();
  const std::size_t dests = a.topology().destination_count();
  ClosureRowScratch scratch_a;
  ClosureRowScratch scratch_b;
  for (std::size_t dest = 0; dest < dests; ++dest) {
    const std::uint64_t* row_a = a.closure_row(dest, scratch_a);
    const std::uint64_t* row_b = b.closure_row(dest, scratch_b);
    ASSERT_EQ(0, std::memcmp(row_a, row_b, words * sizeof(std::uint64_t)))
        << "destination " << dest;
  }
  // Membership queries go through a different code path (list rows binary
  // search; node tier answers without materializing) — spot-check them on
  // the first/middle/last destinations, every port.
  const std::size_t ports = a.topology().port_count();
  for (const std::size_t dest :
       {std::size_t{0}, dests / 2, dests - 1}) {
    for (PortId p = 0; p < ports; ++p) {
      ASSERT_EQ(a.closure_reachable_id(p, dest),
                b.closure_reachable_id(p, dest))
          << "port " << p << " destination " << dest;
    }
  }
}

std::unique_ptr<RoutingFunction> fresh_routing(const NetworkInstance& inst) {
  return make_routing(inst.spec().routing, inst.topology());
}

TEST(ClosureCompressed, EveryTierMatchesDenseOnEverySmallPreset) {
  for (const InstanceSpec& spec : InstanceRegistry::global().presets()) {
    if (spec.node_count() > 1024) {
      continue;  // 32x32 and the non-grid families cover every tier
    }
    SCOPED_TRACE(spec.name);
    const NetworkInstance instance(spec);
    const auto dense = fresh_routing(instance);
    dense->force_closure_mode(ClosureMode::kDense);
    const auto resolved = fresh_routing(instance);
    expect_closures_identical(*resolved, *dense, "auto vs dense");
    const auto compressed = fresh_routing(instance);
    compressed->force_closure_mode(ClosureMode::kCompressed);
    expect_closures_identical(*compressed, *dense, "compressed vs dense");
    if (dense->node_uniform()) {
      const auto node_mask = fresh_routing(instance);
      node_mask->force_closure_mode(ClosureMode::kNodeMask);
      expect_closures_identical(*node_mask, *dense, "node-mask vs dense");
    }
  }
}

TEST(ClosureCompressed, LazyFirstTouchEqualsEagerPrimeAcrossThreadCounts) {
  // Odd-Even is the port-mode function: kAuto lands on the compressed
  // tier, so this pins lazy CAS-published rows against the eager sharded
  // prime at every pool size — and that the sharding changes nothing.
  const Mesh2D mesh(16, 16);
  OddEvenRouting lazy(mesh);
  ASSERT_EQ(lazy.closure_mode(), ClosureMode::kCompressed);
  for (const std::size_t threads : {1u, 4u, 8u}) {
    SCOPED_TRACE(threads);
    BatchRunner pool(threads);
    OddEvenRouting primed(mesh);
    primed.prime(pool);
    EXPECT_EQ(primed.closure_rows_built(), mesh.destination_count());
    expect_closures_identical(lazy, primed, "lazy vs eager");
  }
}

TEST(ClosureCompressed, ForcedCompressedOnNodeUniformRoundTrips) {
  // West-First is node-uniform (kAuto -> kNodeMask, zero storage); forcing
  // the compressed tier onto it must reproduce the same closure — the
  // hybrid list/bitset encoding round-trips the node-granular rows.
  const Mesh2D mesh(16, 16);
  WestFirstRouting node_tier(mesh);
  ASSERT_EQ(node_tier.closure_mode(), ClosureMode::kNodeMask);
  EXPECT_EQ(node_tier.closure_bytes(), 0u);
  WestFirstRouting compressed(mesh);
  compressed.force_closure_mode(ClosureMode::kCompressed);
  compressed.prime();
  EXPECT_GT(compressed.closure_bytes(), 0u);
  expect_closures_identical(compressed, node_tier, "compressed vs node");
}

TEST(ClosureCompressed, ForceModeRejectsNodeMaskOnPortModeRouting) {
  const Mesh2D mesh(8, 8);
  OddEvenRouting routing(mesh);
  EXPECT_THROW(routing.force_closure_mode(ClosureMode::kNodeMask),
               ContractViolation);
}

TEST(ClosureCompressed, NodeTierMeetsFourTimesMemoryBarAt128) {
  // The headline memory win: on the 128x128 mesh the node-granular tier
  // stores nothing, against the ~168 MB the dense layout allocated —
  // trivially past the >= 4x acceptance bar, asserted in the same
  // closure_bytes()/closure_dense_bytes() terms the gauges report.
  const Mesh2D mesh(128, 128);
  const WestFirstRouting routing(mesh);
  ASSERT_EQ(routing.closure_mode(), ClosureMode::kNodeMask);
  const std::uint64_t dense = routing.closure_dense_bytes();
  EXPECT_GT(dense, 100u * 1024 * 1024);
  EXPECT_EQ(routing.closure_bytes(), 0u);
  // Touch rows through a scratch: the tier must stay storage-free.
  ClosureRowScratch scratch;
  for (const std::size_t dest : {std::size_t{0}, std::size_t{8191}}) {
    ASSERT_NE(routing.closure_row(dest, scratch), nullptr);
  }
  EXPECT_EQ(routing.closure_bytes(), 0u);
  EXPECT_GE(dense, 4 * std::max<std::uint64_t>(routing.closure_bytes(), 1));
}

TEST(ClosureCompressed, PrimePoolOverloadIsIdempotent) {
  const Mesh2D mesh(8, 8);
  OddEvenRouting routing(mesh);
  BatchRunner pool(4);
  routing.prime(pool);
  const std::uint64_t rows = routing.closure_rows_built();
  const std::uint64_t bytes = routing.closure_bytes();
  EXPECT_EQ(rows, mesh.destination_count());
  routing.prime(pool);
  routing.prime();
  EXPECT_EQ(routing.closure_rows_built(), rows);
  EXPECT_EQ(routing.closure_bytes(), bytes);
}

}  // namespace
}  // namespace genoc
