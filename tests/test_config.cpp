// Tests for configurations σ = <T, ST, A> and travels.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "routing/xy.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

class ConfigTest : public ::testing::Test {
 protected:
  ConfigTest() : mesh_(3, 3), xy_(mesh_) {}

  Travel travel(TravelId id, NodeCoord s, NodeCoord d,
                std::uint32_t flits = 2) const {
    return make_travel(id, xy_, s, d, flits);
  }

  Mesh2D mesh_;
  XYRouting xy_;
};

TEST_F(ConfigTest, MakeTravelPrecomputesTheRoute) {
  const Travel t = travel(7, {0, 0}, {2, 1}, 3);
  EXPECT_EQ(t.id, 7u);
  EXPECT_EQ(t.source, mesh_.local_in(0, 0));
  EXPECT_EQ(t.dest, mesh_.local_out(2, 1));
  EXPECT_EQ(t.flit_count, 3u);
  EXPECT_EQ(t.route.size(), minimal_route_length(t.source, t.dest));
  EXPECT_TRUE(is_valid_route(xy_, t.route, t.source, t.dest));
}

TEST_F(ConfigTest, MakeTravelWithRouteValidates) {
  Route r = compute_route(xy_, mesh_.local_in(0, 0), mesh_.local_out(2, 0));
  EXPECT_NO_THROW(make_travel_with_route(1, xy_, r, 2));
  Route corrupted = r;
  corrupted.erase(corrupted.begin() + 1);
  EXPECT_THROW(make_travel_with_route(1, xy_, corrupted, 2),
               ContractViolation);
}

TEST_F(ConfigTest, AddTravelRegistersPacket) {
  Config config(mesh_, 2);
  config.add_travel(travel(1, {0, 0}, {2, 2}));
  config.add_travel(travel(2, {1, 1}, {0, 0}));
  EXPECT_EQ(config.travels().size(), 2u);
  EXPECT_TRUE(config.state().has_packet(1));
  EXPECT_TRUE(config.state().has_packet(2));
  EXPECT_EQ(config.pending(), (std::vector<TravelId>{1, 2}));
  EXPECT_FALSE(config.all_arrived());
  EXPECT_EQ(config.travel(2).source, mesh_.local_in(1, 1));
  EXPECT_THROW(config.travel(9), ContractViolation);
  EXPECT_THROW(config.add_travel(travel(1, {0, 1}, {1, 0})),
               ContractViolation);  // duplicate id
}

TEST_F(ConfigTest, EmptyConfigIsTriviallyEvacuated) {
  Config config(mesh_, 2);
  EXPECT_TRUE(config.all_arrived());
  EXPECT_TRUE(config.pending().empty());
}

TEST_F(ConfigTest, ArrivalRecording) {
  Config config(mesh_, 2);
  config.add_travel(travel(1, {0, 0}, {0, 0}, 1));
  // Drive the packet to delivery manually.
  config.state().move_flit(1, 0);
  config.advance_step();
  config.state().move_flit(1, 0);
  ASSERT_TRUE(config.state().packet_delivered(1));
  config.record_arrivals({1});
  ASSERT_EQ(config.arrived().size(), 1u);
  EXPECT_EQ(config.arrived()[0].id, 1u);
  EXPECT_EQ(config.arrived()[0].step, 1u);
  EXPECT_TRUE(config.all_arrived());
  EXPECT_TRUE(config.pending().empty());
}

TEST_F(ConfigTest, RecordingUndeliveredArrivalThrows) {
  Config config(mesh_, 2);
  config.add_travel(travel(1, {0, 0}, {2, 2}));
  EXPECT_THROW(config.record_arrivals({1}), ContractViolation);
}

TEST_F(ConfigTest, StagedTravelsStayOutOfTheStateUntilRelease) {
  Config config(mesh_, 2);
  config.add_staged_travel(travel(1, {0, 0}, {1, 1}), 3);
  EXPECT_EQ(config.staged_remaining(), 1u);
  EXPECT_FALSE(config.state().has_packet(1));
  EXPECT_FALSE(config.all_arrived());
  EXPECT_EQ(config.pending(), (std::vector<TravelId>{1}));
  // Releases nothing before its step.
  EXPECT_TRUE(config.release_due_travels().empty());
  config.advance_step();
  config.advance_step();
  config.advance_step();
  const auto released = config.release_due_travels();
  ASSERT_EQ(released.size(), 1u);
  EXPECT_TRUE(config.state().has_packet(1));
  EXPECT_EQ(config.staged_remaining(), 0u);
  EXPECT_THROW(config.add_staged_travel(travel(1, {0, 0}, {1, 1}), 9),
               ContractViolation);  // duplicate id
}

TEST_F(ConfigTest, DigestReflectsEveryComponent) {
  Config a(mesh_, 2);
  Config b(mesh_, 2);
  EXPECT_EQ(a.digest(), b.digest());
  a.add_travel(travel(1, {0, 0}, {2, 2}));
  EXPECT_NE(a.digest(), b.digest());
  b.add_travel(travel(1, {0, 0}, {2, 2}));
  EXPECT_EQ(a.digest(), b.digest());
  a.advance_step();
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace genoc
