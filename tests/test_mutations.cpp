// Mutation suite: deliberately broken variants of XY routing, each of which
// must be caught by some piece of the verification machinery. This is the
// "does the checker actually check anything" test — every mutant dies.
#include <gtest/gtest.h>

#include "deadlock/constraints.hpp"
#include "deadlock/depgraph.hpp"
#include "deadlock/flows.hpp"
#include "routing/route.hpp"
#include "routing/xy.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

/// Base for mutants: closure-based reachability (the semantic default), so
/// reachability always matches whatever broken behaviour the mutant has —
/// the *constraints* must do the catching, not a mismatched s R d.
class MutantBase : public RoutingFunction {
 public:
  explicit MutantBase(const Mesh2D& mesh) : RoutingFunction(mesh) {}
  bool is_deterministic() const override { return true; }
};

/// Mutant 1: vertical phase runs AWAY from the destination (sign flip).
/// Routes toward a vertical destination never terminate (they walk off the
/// mesh edge and stall).
class SignFlipXY final : public MutantBase {
 public:
  using MutantBase::MutantBase;
  std::string name() const override { return "XY-sign-flip"; }
  void append_next_hops(const Port& p, const Port& d,
                        std::vector<Port>& out) const override {
    if (p.dir == Direction::kOut) {
      if (p.name != PortName::kLocal) {
        out.push_back(next_in(p));
      }
      return;
    }
    if (d.x < p.x) {
      out.push_back(trans(p, PortName::kWest, Direction::kOut));
    } else if (d.x > p.x) {
      out.push_back(trans(p, PortName::kEast, Direction::kOut));
    } else if (d.y < p.y) {  // should go North; goes South
      out.push_back(trans(p, PortName::kSouth, Direction::kOut));
    } else if (d.y > p.y) {
      out.push_back(trans(p, PortName::kNorth, Direction::kOut));
    } else {
      out.push_back(trans(p, PortName::kLocal, Direction::kOut));
    }
  }
};

/// Mutant 2: allows a vertical-to-horizontal turn (YX-style) when the
/// packet is already in a vertical port — the exact turn whose absence
/// makes Exy_dep acyclic. Creates real dependency cycles.
class TurnLeakXY final : public MutantBase {
 public:
  using MutantBase::MutantBase;
  std::string name() const override { return "XY-turn-leak"; }
  void append_next_hops(const Port& p, const Port& d,
                        std::vector<Port>& out) const override {
    if (p.dir == Direction::kOut) {
      if (p.name != PortName::kLocal) {
        out.push_back(next_in(p));
      }
      return;
    }
    // Vertical in-ports may resume horizontal movement (illegal under XY).
    if ((p.name == PortName::kNorth || p.name == PortName::kSouth)) {
      if (d.x < p.x) {
        out.push_back(trans(p, PortName::kWest, Direction::kOut));
        return;
      }
      if (d.x > p.x) {
        out.push_back(trans(p, PortName::kEast, Direction::kOut));
        return;
      }
    }
    XYRouting xy(mesh());
    xy.append_next_hops(p, d, out);
  }
  /// The leak is only exercised when a vertical port holds a packet with a
  /// horizontal displacement, which honest XY routes never create — so we
  /// claim (incorrectly, and the checkers must notice) the YX-ish
  /// reachability that admits those states.
  bool reachable(const Port& s, const Port& d) const override {
    if (!mesh().exists(s) || d.name != PortName::kLocal ||
        d.dir != Direction::kOut || !mesh().exists(d)) {
      return false;
    }
    return true;  // grossly over-approximated on purpose
  }
};

/// Mutant 3: a U-turn — the West OUT port sends back into the SAME node's
/// West IN port is impossible at port level, so instead: East IN turns
/// back East when the destination is east (a 180-degree turn through the
/// switch). Dependency E,IN -> E,OUT closes cycles with the neighbour.
class UTurnXY final : public MutantBase {
 public:
  using MutantBase::MutantBase;
  std::string name() const override { return "XY-u-turn"; }
  void append_next_hops(const Port& p, const Port& d,
                        std::vector<Port>& out) const override {
    if (p.dir == Direction::kIn && p.name == PortName::kEast && d.x > p.x) {
      out.push_back(trans(p, PortName::kEast, Direction::kOut));
      return;
    }
    XYRouting xy(mesh());
    xy.append_next_hops(p, d, out);
  }
  bool reachable(const Port& s, const Port& d) const override {
    if (!mesh().exists(s) || d.name != PortName::kLocal ||
        d.dir != Direction::kOut || !mesh().exists(d)) {
      return false;
    }
    return true;
  }
};

/// Mutant 4: drops the Local delivery case — packets at their destination
/// node are routed East forever (or stall at the boundary).
class NoDeliveryXY final : public MutantBase {
 public:
  using MutantBase::MutantBase;
  std::string name() const override { return "XY-no-delivery"; }
  void append_next_hops(const Port& p, const Port& d,
                        std::vector<Port>& out) const override {
    XYRouting xy(mesh());
    const auto hops = xy.next_hops(p, d);
    if (hops.size() == 1 && hops[0].name == PortName::kLocal &&
        hops[0].dir == Direction::kOut) {
      out.push_back(trans(p, PortName::kEast, Direction::kOut));
      return;
    }
    out.insert(out.end(), hops.begin(), hops.end());
  }
};

TEST(Mutations, SignFlipIsCaughtByRouteTermination) {
  const Mesh2D mesh(3, 3);
  const SignFlipXY mutant(mesh);
  // Routing away from the destination either walks off the mesh (caught by
  // (C-1)'s existence check) or never terminates (caught by the route
  // bound).
  const ConstraintReport c1 =
      check_c1(mutant, build_dep_graph(mutant));
  const bool c1_caught = !c1.satisfied;
  bool termination_caught = false;
  try {
    // A purely vertical journey exercises the flipped case. Use the
    // closure-reachable pair (L-in is always reachable).
    compute_route(mutant, mesh.local_in(1, 0), mesh.local_out(1, 2));
  } catch (const ContractViolation&) {
    termination_caught = true;
  }
  EXPECT_TRUE(c1_caught || termination_caught);
}

TEST(Mutations, TurnLeakIsCaughtByC3) {
  const Mesh2D mesh(3, 3);
  const TurnLeakXY mutant(mesh);
  const PortDepGraph dep = build_dep_graph(mutant);
  // Its own graph is cyclic: (C-3) fails...
  std::optional<CycleWitness> cycle;
  const ConstraintReport c3 = check_c3(dep, &cycle);
  EXPECT_FALSE(c3.satisfied);
  ASSERT_TRUE(cycle.has_value());
  // ...and the flow certificate rejects it too.
  EXPECT_FALSE(verify_flow_certificate(dep));
  // And against the SPEC graph (Exy_dep), the leak is a (C-1) violation.
  EXPECT_FALSE(check_c1(mutant, build_exy_dep(mesh)).satisfied);
}

TEST(Mutations, UTurnIsCaughtByC3AndC1) {
  const Mesh2D mesh(3, 3);
  const UTurnXY mutant(mesh);
  const PortDepGraph dep = build_dep_graph(mutant);
  EXPECT_FALSE(check_c3(dep).satisfied);
  EXPECT_FALSE(check_c1(mutant, build_exy_dep(mesh)).satisfied);
  EXPECT_FALSE(verify_flow_certificate(dep));
}

TEST(Mutations, NoDeliveryIsCaughtByTerminationOrC1) {
  const Mesh2D mesh(3, 3);
  const NoDeliveryXY mutant(mesh);
  bool caught = false;
  try {
    const Route r =
        compute_route(mutant, mesh.local_in(0, 1), mesh.local_out(2, 1));
    caught = r.back() != mesh.local_out(2, 1);
  } catch (const ContractViolation&) {
    caught = true;  // non-termination or off-mesh hop
  }
  if (!caught) {
    caught = !check_c1(mutant, build_exy_dep(mesh)).satisfied;
  }
  EXPECT_TRUE(caught);
}

TEST(Mutations, HonestXYSurvivesEverything) {
  // Control: the real function passes every check the mutants fail.
  const Mesh2D mesh(3, 3);
  const XYRouting xy(mesh);
  const PortDepGraph dep = build_dep_graph(xy);
  EXPECT_TRUE(check_c1(xy, build_exy_dep(mesh)).satisfied);
  EXPECT_TRUE(check_c3(dep).satisfied);
  EXPECT_TRUE(verify_flow_certificate(dep));
  EXPECT_NO_THROW(compute_route(xy, mesh.local_in(1, 0),
                                mesh.local_out(1, 2)));
}

}  // namespace
}  // namespace genoc
