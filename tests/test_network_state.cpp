// Tests for the network state ST: buffers, ownership, the flit movement
// rules, witness placement and failure injection (malformed inputs).
#include <gtest/gtest.h>

#include "routing/xy.hpp"
#include "switching/network_state.hpp"
#include "util/require.hpp"

namespace genoc {
namespace {

class NetworkStateTest : public ::testing::Test {
 protected:
  NetworkStateTest() : mesh_(3, 3), xy_(mesh_) {}

  Route route(NodeCoord s, NodeCoord d) const {
    return compute_route(xy_, mesh_.local_in(s.x, s.y),
                         mesh_.local_out(d.x, d.y));
  }

  Mesh2D mesh_;
  XYRouting xy_;
};

TEST_F(NetworkStateTest, RegisterStartsOutside) {
  NetworkState st(mesh_, 2);
  st.register_packet({1, route({0, 0}, {2, 0}), 3});
  EXPECT_EQ(st.packet_count(), 1u);
  EXPECT_FALSE(st.packet_in_network(1));
  EXPECT_FALSE(st.packet_delivered(1));
  EXPECT_EQ(st.flit_pos(1, 0), kFlitOutside);
  EXPECT_EQ(st.flits_in_flight(), 0u);
  EXPECT_FALSE(st.header_port(1).has_value());
  st.validate();
}

TEST_F(NetworkStateTest, RejectsMalformedPackets) {
  NetworkState st(mesh_, 2);
  // Zero flits.
  EXPECT_THROW(st.register_packet({1, route({0, 0}, {1, 0}), 0}),
               ContractViolation);
  // Route through a non-existent port.
  Route bad = route({0, 0}, {1, 0});
  bad[1] = Port{0, 0, PortName::kWest, Direction::kOut};
  EXPECT_THROW(st.register_packet({1, bad, 1}), ContractViolation);
  // Route not ending at a Local OUT.
  Route truncated = route({0, 0}, {1, 0});
  truncated.pop_back();
  EXPECT_THROW(st.register_packet({1, truncated, 1}), ContractViolation);
  // Too-short route.
  EXPECT_THROW(st.register_packet({1, {mesh_.local_out(0, 0)}, 1}),
               ContractViolation);
  // Duplicate id.
  st.register_packet({7, route({0, 0}, {1, 0}), 1});
  EXPECT_THROW(st.register_packet({7, route({1, 1}, {2, 2}), 1}),
               ContractViolation);
}

TEST_F(NetworkStateTest, EntryAndDeliverySingleFlit) {
  NetworkState st(mesh_, 1);
  st.register_packet({1, route({0, 0}, {0, 0}), 1});  // L-in -> L-out
  ASSERT_TRUE(st.can_flit_move(1, 0));
  EXPECT_FALSE(st.move_flit(1, 0));  // entered L-in, not yet delivered
  EXPECT_TRUE(st.packet_in_network(1));
  EXPECT_EQ(st.header_port(1), mesh_.local_in(0, 0));
  ASSERT_TRUE(st.can_flit_move(1, 0));
  EXPECT_TRUE(st.move_flit(1, 0));  // L-in -> L-out is consumption
  EXPECT_TRUE(st.packet_delivered(1));
  EXPECT_EQ(st.flit_pos(1, 0), kFlitDelivered);
  EXPECT_EQ(st.flits_in_flight(), 0u);
  EXPECT_FALSE(st.can_flit_move(1, 0));
  st.validate();
}

TEST_F(NetworkStateTest, FlitsEnterInWormOrder) {
  NetworkState st(mesh_, 2);
  st.register_packet({1, route({0, 0}, {2, 2}), 3});
  // Flit 1 cannot enter before flit 0.
  EXPECT_FALSE(st.can_flit_move(1, 1));
  EXPECT_TRUE(st.can_flit_move(1, 0));
  st.move_flit(1, 0);
  EXPECT_TRUE(st.can_flit_move(1, 1));
  EXPECT_FALSE(st.can_flit_move(1, 2));
  st.move_flit(1, 1);
  // L-in now holds 2 flits (capacity 2): flit 2 blocked by a full buffer.
  EXPECT_FALSE(st.can_flit_move(1, 2));
  st.validate();
}

TEST_F(NetworkStateTest, FifoHeadDisciplineWithinAPort) {
  NetworkState st(mesh_, 2);
  st.register_packet({1, route({0, 0}, {2, 0}), 2});
  st.move_flit(1, 0);
  st.move_flit(1, 1);  // both flits in L-in(0,0)
  // Flit 1 is not the FIFO head; only flit 0 may leave.
  EXPECT_TRUE(st.can_flit_move(1, 0));
  EXPECT_FALSE(st.can_flit_move(1, 1));
  st.move_flit(1, 0);
  EXPECT_TRUE(st.can_flit_move(1, 1));
  st.validate();
}

TEST_F(NetworkStateTest, SinglePacketPortOwnership) {
  NetworkState st(mesh_, 2);
  // Two packets from different sources converge on W-in(1,0) en route east.
  st.register_packet({1, route({0, 0}, {2, 0}), 1});
  Route second = route({0, 0}, {1, 0});
  st.register_packet({2, second, 1});
  // Move packet 1 to E-out(0,0) then W-in(1,0).
  st.move_flit(1, 0);  // L-in
  st.move_flit(1, 0);  // E-out
  st.move_flit(1, 0);  // W-in(1,0)
  EXPECT_EQ(st.header_port(1),
            (Port{1, 0, PortName::kWest, Direction::kIn}));
  // Move packet 2 toward the same port.
  st.move_flit(2, 0);  // L-in
  st.move_flit(2, 0);  // E-out(0,0)
  // W-in(1,0) has a free buffer but is owned by packet 1.
  EXPECT_EQ(st.port_owner(mesh_.id(Port{1, 0, PortName::kWest,
                                        Direction::kIn})),
            std::optional<TravelId>(1));
  EXPECT_FALSE(st.can_flit_move(2, 0));
  // Once packet 1 vacates, packet 2 may proceed.
  st.move_flit(1, 0);  // W-in -> S-out? no: route to (2,0) goes E-out(1,0)
  EXPECT_TRUE(st.can_flit_move(2, 0));
  st.validate();
}

TEST_F(NetworkStateTest, PlacePacketFillsEntryPort) {
  NetworkState st(mesh_, 2);
  const Port start{1, 1, PortName::kWest, Direction::kIn};
  Route r{start, Port{1, 1, PortName::kEast, Direction::kOut},
          Port{2, 1, PortName::kWest, Direction::kIn},
          mesh_.local_out(2, 1)};
  st.place_packet({5, r, 2});
  EXPECT_TRUE(st.packet_in_network(5));
  EXPECT_TRUE(st.port_full(mesh_.id(start)));
  EXPECT_EQ(st.port_owner(mesh_.id(start)), std::optional<TravelId>(5));
  EXPECT_EQ(st.flit_pos(5, 0), 0);
  EXPECT_EQ(st.flit_pos(5, 1), 0);
  st.validate();
  // Overfilling is rejected.
  NetworkState st2(mesh_, 2);
  EXPECT_THROW(st2.place_packet({5, r, 3}), ContractViolation);
}

TEST_F(NetworkStateTest, PlacePacketRespectsOwnership) {
  NetworkState st(mesh_, 4);
  const Port start{1, 1, PortName::kWest, Direction::kIn};
  Route r{start, Port{1, 1, PortName::kEast, Direction::kOut},
          Port{2, 1, PortName::kWest, Direction::kIn},
          mesh_.local_out(2, 1)};
  st.place_packet({5, r, 2});
  Route r2 = r;
  EXPECT_THROW(st.place_packet({6, r2, 1}), ContractViolation);
}

TEST_F(NetworkStateTest, RemainingHopsDecreasesByExactlyOnePerMove) {
  NetworkState st(mesh_, 2);
  st.register_packet({1, route({0, 0}, {2, 1}), 3});
  std::uint64_t previous = st.total_remaining_hops();
  // Route length 2 + 2*3 = 8; 3 flits, each needing 8 moves -> 24.
  EXPECT_EQ(previous, 24u);
  int guard = 0;
  while (!st.packet_delivered(1)) {
    bool moved = false;
    for (std::uint32_t k = 0; k < 3; ++k) {
      if (st.can_flit_move(1, k)) {
        st.move_flit(1, k);
        const std::uint64_t now = st.total_remaining_hops();
        EXPECT_EQ(now + 1, previous);
        previous = now;
        moved = true;
      }
    }
    ASSERT_TRUE(moved);
    ASSERT_LT(++guard, 100);
  }
  EXPECT_EQ(st.total_remaining_hops(), 0u);
}

TEST_F(NetworkStateTest, DigestDetectsChangesAndMatchesEqualStates) {
  NetworkState a(mesh_, 2);
  NetworkState b(mesh_, 2);
  a.register_packet({1, route({0, 0}, {2, 0}), 2});
  b.register_packet({1, route({0, 0}, {2, 0}), 2});
  EXPECT_EQ(a.digest(), b.digest());
  a.move_flit(1, 0);
  EXPECT_NE(a.digest(), b.digest());
  b.move_flit(1, 0);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST_F(NetworkStateTest, CapacityConfiguration) {
  NetworkState st(mesh_, 2);
  EXPECT_THROW(NetworkState(mesh_, 0), ContractViolation);
  st.set_capacity(mesh_.local_in(0, 0), 5);
  EXPECT_EQ(st.capacity(mesh_.id(mesh_.local_in(0, 0))), 5u);
  st.register_packet({1, route({0, 0}, {1, 0}), 1});
  // Capacities are frozen once packets exist.
  EXPECT_THROW(st.set_capacity(mesh_.local_in(0, 0), 3), ContractViolation);
  EXPECT_THROW(st.set_capacity(mesh_.local_in(1, 0), 0), ContractViolation);
}

TEST_F(NetworkStateTest, UndeliveredTracking) {
  NetworkState st(mesh_, 2);
  st.register_packet({3, route({0, 0}, {0, 0}), 1});
  st.register_packet({1, route({1, 1}, {1, 1}), 1});
  EXPECT_EQ(st.undelivered_count(), 2u);
  EXPECT_EQ(st.undelivered_ids(), (std::vector<TravelId>{1, 3}));
  st.move_flit(3, 0);
  st.move_flit(3, 0);
  EXPECT_EQ(st.undelivered_count(), 1u);
  EXPECT_EQ(st.undelivered_ids(), (std::vector<TravelId>{1}));
}

TEST_F(NetworkStateTest, QueriesRejectUnknownIds) {
  NetworkState st(mesh_, 2);
  EXPECT_THROW(st.packet(9), ContractViolation);
  EXPECT_THROW(st.flit_pos(9, 0), ContractViolation);
  st.register_packet({1, route({0, 0}, {1, 0}), 1});
  EXPECT_THROW(st.flit_pos(1, 5), ContractViolation);
  EXPECT_THROW(st.move_flit(1, 5), ContractViolation);
}

}  // namespace
}  // namespace genoc
