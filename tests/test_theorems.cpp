// Tests for the three global theorem checkers: CorrThm, DeadThm, EvacThm.
#include <gtest/gtest.h>

#include "core/hermes.hpp"
#include "core/theorems.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/yx.hpp"

namespace genoc {
namespace {

TEST(Theorems, CorrectnessHoldsOnAnHonestRun) {
  const HermesInstance hermes(3, 3, 2);
  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 2}},
       {NodeCoord{2, 0}, NodeCoord{0, 2}},
       {NodeCoord{1, 1}, NodeCoord{1, 1}}},
      3);
  hermes.run(config);
  const TheoremReport report = check_correctness(config, hermes.routing());
  EXPECT_TRUE(report.holds) << report.summary();
  EXPECT_EQ(report.checks, 3u);
  EXPECT_NE(report.summary().find("CorrThm"), std::string::npos);
}

TEST(Theorems, CorrectnessFailsForRoutesOfAnotherFunction) {
  // Travels routed by fully-adaptive choices that XY would never make:
  // CorrThm's "followed a valid path" clause must fire when audited
  // against XY.
  const Mesh2D mesh(3, 3);
  const FullyAdaptiveRouting fa(mesh);
  const HermesInstance hermes(3, 3, 2);
  Config config(mesh, 2);
  // A route that goes South first, then East — valid for FA, illegal for XY.
  Route route{mesh.local_in(0, 0),
              Port{0, 0, PortName::kSouth, Direction::kOut},
              Port{0, 1, PortName::kNorth, Direction::kIn},
              Port{0, 1, PortName::kEast, Direction::kOut},
              Port{1, 1, PortName::kWest, Direction::kIn},
              mesh.local_out(1, 1)};
  config.add_travel(make_travel_with_route(1, fa, route, 2));
  const IdentityInjection iid;
  const WormholeSwitching wh;
  const FlitLevelMeasure mu;
  const GenocInterpreter interpreter(iid, wh, mu);
  interpreter.run(config);
  EXPECT_TRUE(check_correctness(config, fa).holds);
  const TheoremReport against_xy =
      check_correctness(config, hermes.routing());
  EXPECT_FALSE(against_xy.holds);
  ASSERT_FALSE(against_xy.failures.empty());
  EXPECT_NE(against_xy.failures.front().find("path"), std::string::npos);
}

TEST(Theorems, DeadThmHoldsForDeterministicDeadlockFreeFunctions) {
  const Mesh2D mesh(4, 3);
  const HermesInstance hermes(4, 3, 2);
  const TheoremReport xy_report = hermes.verify_deadlock_free();
  EXPECT_TRUE(xy_report.holds) << xy_report.summary();

  const YXRouting yx(mesh);
  const PortDepGraph yx_dep = build_dep_graph(yx);
  EXPECT_TRUE(check_deadlock_theorem(yx, yx_dep).holds);
}

TEST(Theorems, DeadThmFailsForFullyAdaptive) {
  const Mesh2D mesh(3, 3);
  const FullyAdaptiveRouting fa(mesh);
  const PortDepGraph dep = build_dep_graph(fa);
  const TheoremReport report = check_deadlock_theorem(fa, dep);
  EXPECT_FALSE(report.holds);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures.front().find("C-3"), std::string::npos);
}

TEST(Theorems, EvacThmHoldsOnFinishedRuns) {
  const HermesInstance hermes(3, 3, 1);
  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 1}}, {NodeCoord{2, 2}, NodeCoord{0, 0}}},
      5);
  const GenocRunResult run = hermes.run(config);
  const TheoremReport report = check_evacuation(config, run);
  EXPECT_TRUE(report.holds) << report.summary();
}

TEST(Theorems, EvacThmFailsOnAnUnfinishedRun) {
  const HermesInstance hermes(3, 3, 1);
  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{2, 1}}}, 2);
  GenocRunResult fake_run;  // zero steps, nothing arrived
  fake_run.evacuated = false;
  const TheoremReport report = check_evacuation(config, fake_run);
  EXPECT_FALSE(report.holds);
}

TEST(Theorems, EvacThmFlagsMeasureViolations) {
  const HermesInstance hermes(2, 2, 1);
  Config config = hermes.make_config(
      {{NodeCoord{0, 0}, NodeCoord{1, 1}}}, 1);
  GenocRunResult run = hermes.run(config);
  ASSERT_TRUE(run.evacuated);
  run.measure_violations = 2;  // simulate a (C-5) breach
  const TheoremReport report = check_evacuation(config, run);
  EXPECT_FALSE(report.holds);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_NE(report.failures.front().find("C-5"), std::string::npos);
}

}  // namespace
}  // namespace genoc
