// The GeNoC promise is genericity: the SAME obligations, discharged for a
// different instance, yield the same theorems. This suite runs the full
// user-input story of Sections V–VI for the YX instance: closed-form
// reachability, (C-1)/(C-2) (including the find_dest-style witness, which
// is instance-independent), and (C-3) via a YX-specific flow certificate.
#include <gtest/gtest.h>

#include "deadlock/constraints.hpp"
#include "deadlock/flows.hpp"
#include "deadlock/witness.hpp"
#include "routing/yx.hpp"
#include "sim/simulator.hpp"
#include "workload/traffic.hpp"

namespace genoc {
namespace {

class YxInstanceSweep : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(YxInstanceSweep, AllThreeConstraintsDischarge) {
  const auto [w, h] = GetParam();
  const Mesh2D mesh(w, h);
  const YXRouting yx(mesh);
  const PortDepGraph dep = build_dep_graph(yx);
  EXPECT_TRUE(check_c1(yx, dep).satisfied);
  EXPECT_TRUE(check_c2(yx, dep).satisfied);
  EXPECT_TRUE(check_c3(dep).satisfied);
}

TEST_P(YxInstanceSweep, FindDestWitnessIsInstanceIndependent) {
  // The paper's find_dest ("nearest destination") witness works verbatim
  // for YX: the closest Local OUT beyond an edge realizes it under any
  // minimal deterministic dimension-order function.
  const auto [w, h] = GetParam();
  const Mesh2D mesh(w, h);
  const YXRouting yx(mesh);
  const PortDepGraph dep = build_dep_graph(yx);
  const ConstraintReport closed = check_c2_xy_closed_form(yx, dep);
  EXPECT_TRUE(closed.satisfied) << closed.summary();
  EXPECT_EQ(closed.checks, dep.graph.edge_count());
}

TEST_P(YxInstanceSweep, YxFlowCertificateDischargesC3) {
  const auto [w, h] = GetParam();
  const Mesh2D mesh(w, h);
  const YXRouting yx(mesh);
  const PortDepGraph dep = build_dep_graph(yx);
  EXPECT_TRUE(verify_flow_certificate(dep, &yx_flow_rank))
      << w << "x" << h;
}

INSTANTIATE_TEST_SUITE_P(Meshes, YxInstanceSweep,
                         ::testing::Values(std::pair{1, 2}, std::pair{2, 1},
                                           std::pair{2, 2}, std::pair{3, 3},
                                           std::pair{5, 2}, std::pair{4, 4},
                                           std::pair{6, 6}));

TEST(GenericInstance, CertificatesAreInstanceSpecific) {
  // The XY rank does NOT certify the YX graph and vice versa (on meshes
  // with both dimensions >= 2, where the graphs genuinely differ): each
  // instance needs its own flow argument, exactly as each ACL2 instance
  // needs its own (C-3) proof.
  const Mesh2D mesh(3, 3);
  const YXRouting yx(mesh);
  const XYRouting xy(mesh);
  const PortDepGraph yx_dep = build_dep_graph(yx);
  const PortDepGraph xy_dep = build_dep_graph(xy);
  EXPECT_FALSE(verify_flow_certificate(yx_dep, &xy_flow_rank));
  EXPECT_FALSE(verify_flow_certificate(xy_dep, &yx_flow_rank));
  // ...while the matching pairs hold.
  EXPECT_TRUE(verify_flow_certificate(xy_dep, &xy_flow_rank));
  EXPECT_TRUE(verify_flow_certificate(yx_dep, &yx_flow_rank));
}

TEST(GenericInstance, YxGraphIsTheMirrorOfXy) {
  // Exchanging the roles of the axes maps one dependency graph onto the
  // other: (x, y) -> (y, x) with port names rotated 90 degrees.
  const Mesh2D mesh(4, 4);  // square so the mirror stays within the mesh
  const XYRouting xy(mesh);
  const YXRouting yx(mesh);
  const PortDepGraph xy_dep = build_dep_graph(xy);
  const PortDepGraph yx_dep = build_dep_graph(yx);
  auto mirror = [](const Port& p) {
    PortName name = p.name;
    switch (p.name) {
      case PortName::kEast:
        name = PortName::kSouth;
        break;
      case PortName::kSouth:
        name = PortName::kEast;
        break;
      case PortName::kWest:
        name = PortName::kNorth;
        break;
      case PortName::kNorth:
        name = PortName::kWest;
        break;
      case PortName::kLocal:
        break;
    }
    return Port{p.y, p.x, name, p.dir};
  };
  EXPECT_EQ(xy_dep.graph.edge_count(), yx_dep.graph.edge_count());
  for (const auto& [from, to] : xy_dep.graph.edges()) {
    const Port mf = mirror(xy_dep.port_of(from));
    const Port mt = mirror(xy_dep.port_of(to));
    EXPECT_TRUE(yx_dep.graph.has_edge(mesh.id(mf), mesh.id(mt)))
        << xy_dep.label(from) << " -> " << xy_dep.label(to);
  }
}

TEST(GenericInstance, YxWitnessMachineryWorks) {
  // The Theorem-1 tooling is equally generic: feed it a YX-graph "cycle"
  // (there is none) and a real adaptive cycle, and everything behaves.
  const Mesh2D mesh(3, 3);
  const YXRouting yx(mesh);
  const PortDepGraph dep = build_dep_graph(yx);
  EXPECT_FALSE(find_cycle(dep.graph).has_value());
}

TEST(GenericInstance, YxEvacuatesAllPatterns) {
  const Mesh2D mesh(4, 4);
  const YXRouting yx(mesh);
  Rng rng(99);
  for (const TrafficPattern pattern :
       {TrafficPattern::kTranspose, TrafficPattern::kAllToOne,
        TrafficPattern::kRing}) {
    const auto pairs = generate_traffic(pattern, mesh, 24, rng);
    SimulationOptions options;
    options.flit_count = 3;
    const SimulationReport report =
        simulate_routing(mesh, yx, pairs, 2, rng, options);
    EXPECT_TRUE(report.run.evacuated) << traffic_pattern_name(pattern);
    EXPECT_TRUE(report.evacuation_ok);
  }
}

}  // namespace
}  // namespace genoc
