/// \file ablation_evacuation.cpp
/// \brief Ablation A4: evacuation cost as a function of the parameters the
///        paper leaves uninterpreted — the number of messages, the worm
///        length (flits/message), and the buffers per port.
///
/// EvacThm guarantees every run terminates with A = T; this ablation
/// quantifies HOW LONG evacuation takes across the parameter space, and
/// confirms the (C-5) audit holds on every cell.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/hermes.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

namespace {

void print_report() {
  std::cout << "=== Ablation A4: evacuation cost sweeps (4x4 HERMES) ===\n\n";

  {
    genoc::Table table({"Messages", "Steps", "Flit moves", "Mean latency",
                        "(C-5) violations"});
    for (const std::size_t messages : {8u, 16u, 32u, 64u, 128u}) {
      const genoc::HermesInstance hermes(4, 4, 2);
      genoc::Rng rng(1);
      const auto pairs =
          genoc::uniform_random_traffic(hermes.mesh(), messages, rng);
      genoc::SimulationOptions options;
      options.flit_count = 4;
      const genoc::SimulationReport r = genoc::simulate(hermes, pairs, options);
      table.add_row({std::to_string(messages), std::to_string(r.run.steps),
                     genoc::format_count(r.run.total_flit_moves),
                     genoc::format_double(r.latency.mean, 1),
                     std::to_string(r.run.measure_violations)});
    }
    std::cout << "Message-count sweep (4 flits, 2 buffers):\n"
              << table.render() << "\n";
  }
  {
    genoc::Table table({"Flits/message", "Steps", "Mean latency",
                        "Throughput (flits/step)"});
    for (const std::uint32_t flits : {1u, 2u, 4u, 8u, 16u}) {
      const genoc::HermesInstance hermes(4, 4, 2);
      genoc::Rng rng(2);
      const auto pairs = genoc::uniform_random_traffic(hermes.mesh(), 32, rng);
      genoc::SimulationOptions options;
      options.flit_count = flits;
      const genoc::SimulationReport r = genoc::simulate(hermes, pairs, options);
      table.add_row({std::to_string(flits), std::to_string(r.run.steps),
                     genoc::format_double(r.latency.mean, 1),
                     genoc::format_double(r.throughput, 2)});
    }
    std::cout << "Worm-length sweep (32 messages, 2 buffers):\n"
              << table.render() << "\n";
  }
  {
    genoc::Table table({"Buffers/port", "Steps", "Mean latency",
                        "Max latency"});
    for (const std::size_t buffers : {1u, 2u, 4u, 8u}) {
      const genoc::HermesInstance hermes(4, 4, buffers);
      genoc::Rng rng(3);
      const auto pairs = genoc::uniform_random_traffic(hermes.mesh(), 32, rng);
      genoc::SimulationOptions options;
      options.flit_count = 4;
      const genoc::SimulationReport r = genoc::simulate(hermes, pairs, options);
      table.add_row({std::to_string(buffers), std::to_string(r.run.steps),
                     genoc::format_double(r.latency.mean, 1),
                     genoc::format_double(r.latency.max, 1)});
    }
    std::cout << "Buffer-depth sweep (32 messages, 4 flits) — deeper\n"
              << "buffers relieve head-of-line pressure:\n"
              << table.render() << "\n";
  }
}

void BM_Evacuation_Messages(benchmark::State& state) {
  const auto messages = static_cast<std::size_t>(state.range(0));
  const genoc::HermesInstance hermes(4, 4, 2);
  genoc::Rng rng(1);
  const auto pairs =
      genoc::uniform_random_traffic(hermes.mesh(), messages, rng);
  for (auto _ : state) {
    genoc::Config config = hermes.make_config(pairs, 4);
    benchmark::DoNotOptimize(hermes.run(config).steps);
  }
  state.SetComplexityN(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_Evacuation_Messages)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond)->Complexity(benchmark::oNSquared);

void BM_Evacuation_Flits(benchmark::State& state) {
  const auto flits = static_cast<std::uint32_t>(state.range(0));
  const genoc::HermesInstance hermes(4, 4, 2);
  genoc::Rng rng(2);
  const auto pairs = genoc::uniform_random_traffic(hermes.mesh(), 32, rng);
  for (auto _ : state) {
    genoc::Config config = hermes.make_config(pairs, flits);
    benchmark::DoNotOptimize(hermes.run(config).steps);
  }
}
BENCHMARK(BM_Evacuation_Flits)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_Evacuation_Buffers(benchmark::State& state) {
  const auto buffers = static_cast<std::size_t>(state.range(0));
  const genoc::HermesInstance hermes(4, 4, buffers);
  genoc::Rng rng(3);
  const auto pairs = genoc::uniform_random_traffic(hermes.mesh(), 32, rng);
  for (auto _ : state) {
    genoc::Config config = hermes.make_config(pairs, 4);
    benchmark::DoNotOptimize(hermes.run(config).steps);
  }
}
BENCHMARK(BM_Evacuation_Buffers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
