/// \file fig1_topology.cpp
/// \brief Reproduction of Fig. 1: the HERMES 2D mesh and its node/port/
///        buffer structure, across mesh sizes.
///
/// Fig. 1a is the 2D mesh of switches; Fig. 1b the node with five
/// bidirectional ports and per-port buffers. The report prints the port
/// inventory (with boundary pruning) per size; the benchmarks measure mesh
/// construction and port-id lookup.
#include <benchmark/benchmark.h>

#include <iostream>

#include "topology/mesh.hpp"
#include "util/table.hpp"

namespace {

void print_report() {
  std::cout << "=== Fig. 1 reproduction: HERMES topology inventory ===\n\n";
  genoc::Table table({"Mesh", "Nodes", "Ports", "Interior node ports",
                      "Corner node ports", "Links", "Buffers (2/port)"});
  for (const auto& [w, h] : {std::pair{2, 2}, std::pair{3, 3}, std::pair{4, 4},
                            std::pair{8, 8}, std::pair{16, 16}}) {
    const genoc::Mesh2D mesh(w, h);
    std::size_t corner_ports = 0;
    std::size_t interior_ports = 0;
    for (const genoc::Port& p : mesh.ports()) {
      if (p.x == 0 && p.y == 0) {
        ++corner_ports;
      }
      if (p.x == 1 && p.y == 1) {
        ++interior_ports;
      }
    }
    const std::size_t links = static_cast<std::size_t>(w) * (h - 1) +
                              static_cast<std::size_t>(w - 1) * h;
    table.add_row({std::to_string(w) + "x" + std::to_string(h),
                   genoc::format_count(mesh.node_count()),
                   genoc::format_count(mesh.port_count()),
                   std::to_string(interior_ports),
                   std::to_string(corner_ports),
                   genoc::format_count(links),
                   genoc::format_count(2 * mesh.port_count())});
  }
  std::cout << table.render()
            << "\nInterior nodes expose all 10 ports (5 names x IN/OUT, "
               "Fig. 1b); corner switches prune the off-mesh links to 6.\n\n";
}

void BM_MeshConstruction(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    const genoc::Mesh2D mesh(side, side);
    benchmark::DoNotOptimize(mesh.port_count());
  }
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_MeshConstruction)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity(benchmark::oN);

void BM_PortIdLookup(benchmark::State& state) {
  const genoc::Mesh2D mesh(16, 16);
  std::size_t i = 0;
  const auto& ports = mesh.ports();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh.id(ports[i % ports.size()]));
    ++i;
  }
}
BENCHMARK(BM_PortIdLookup);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
