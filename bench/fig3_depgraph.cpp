/// \file fig3_depgraph.cpp
/// \brief Reproduction of Fig. 3: the port dependency graph of the 2x2
///        mesh, plus the generic-vs-closed-form construction comparison.
#include <benchmark/benchmark.h>

#include <iostream>

#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "routing/xy.hpp"
#include "util/table.hpp"

namespace {

void print_report() {
  std::cout << "=== Fig. 3 reproduction: port dependency graph ===\n\n";
  {
    const genoc::Mesh2D mesh(2, 2);
    const genoc::PortDepGraph dep = genoc::build_exy_dep(mesh);
    std::cout << "2x2 mesh (the figure's instance): "
              << dep.graph.vertex_count() << " ports, "
              << dep.graph.edge_count() << " edges, "
              << (genoc::is_acyclic(dep.graph) ? "acyclic" : "CYCLIC")
              << ".\nDOT output (render with graphviz):\n\n"
              << dep.to_dot("Exy_dep_2x2") << "\n";
  }

  genoc::Table table({"Mesh", "Ports", "Edges (closed form)",
                      "Edges (generic)", "Equal", "Acyclic"});
  for (const auto& [w, h] : {std::pair{2, 2}, std::pair{3, 3}, std::pair{4, 4},
                            std::pair{6, 6}, std::pair{8, 8}}) {
    const genoc::Mesh2D mesh(w, h);
    const genoc::XYRouting xy(mesh);
    const genoc::PortDepGraph closed = genoc::build_exy_dep(mesh);
    const genoc::PortDepGraph generic = genoc::build_dep_graph(xy);
    table.add_row({std::to_string(w) + "x" + std::to_string(h),
                   genoc::format_count(closed.graph.vertex_count()),
                   genoc::format_count(closed.graph.edge_count()),
                   genoc::format_count(generic.graph.edge_count()),
                   closed.graph.edges() == generic.graph.edges() ? "yes"
                                                                 : "NO",
                   genoc::is_acyclic(closed.graph) ? "yes" : "NO"});
  }
  std::cout << table.render()
            << "\nThe generic enumeration over all reachable (p, d) pairs "
               "reconstructs the paper's next_outs closed form exactly — "
               "the executable content of (C-1) + (C-2).\n\n";
}

void BM_BuildClosedForm(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  for (auto _ : state) {
    const genoc::PortDepGraph dep = genoc::build_exy_dep(mesh);
    benchmark::DoNotOptimize(dep.graph.edge_count());
  }
  state.SetComplexityN(state.range(0) * state.range(0));
}
BENCHMARK(BM_BuildClosedForm)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Complexity(benchmark::oN);

void BM_BuildGeneric(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::XYRouting xy(mesh);
  for (auto _ : state) {
    const genoc::PortDepGraph dep = genoc::build_dep_graph(xy);
    benchmark::DoNotOptimize(dep.graph.edge_count());
  }
  state.SetLabel("O(ports x nodes): the brute-force (C-1)/(C-2) route");
}
BENCHMARK(BM_BuildGeneric)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
