/// \file ablation_adaptive.cpp
/// \brief Ablation A3: the Sec. IX future-work direction — adaptive routing
///        through the SCC-based (Taktak-style) detector, and the Theorem-1
///        witness machinery on the deadlock-prone baseline.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "deadlock/escape.hpp"
#include "deadlock/scc_checker.hpp"
#include "deadlock/witness.hpp"
#include "routing/xy.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/negative_first.hpp"
#include "routing/north_last.hpp"
#include "routing/odd_even.hpp"
#include "routing/torus_xy.hpp"
#include "routing/west_first.hpp"
#include "switching/wormhole.hpp"
#include "util/table.hpp"

namespace {

void print_report() {
  std::cout << "=== Ablation A3: adaptive routing deadlock analysis ===\n\n";
  const genoc::Mesh2D mesh(4, 4);
  std::vector<std::unique_ptr<genoc::RoutingFunction>> family;
  family.push_back(std::make_unique<genoc::WestFirstRouting>(mesh));
  family.push_back(std::make_unique<genoc::NorthLastRouting>(mesh));
  family.push_back(std::make_unique<genoc::NegativeFirstRouting>(mesh));
  family.push_back(std::make_unique<genoc::OddEvenRouting>(mesh));
  family.push_back(std::make_unique<genoc::FullyAdaptiveRouting>(mesh));

  genoc::Table table({"Routing", "SCCs", "Non-trivial", "Largest",
                      "Cyclic ports", "Verdict"});
  for (const auto& routing : family) {
    const genoc::PortDepGraph dep = genoc::build_dep_graph(*routing);
    const genoc::SccAnalysis scc = genoc::analyze_dependencies(dep, 2);
    table.add_row({routing->name(), std::to_string(scc.scc_count),
                   std::to_string(scc.nontrivial_scc_count),
                   std::to_string(scc.largest_scc_size),
                   std::to_string(scc.ports_in_cycles),
                   scc.deadlock_free ? "deadlock-free" : "deadlock-PRONE"});
  }
  std::cout << table.render() << "\n";

  // Witness round trip on the baseline.
  const genoc::FullyAdaptiveRouting fa(mesh);
  const genoc::PortDepGraph dep = genoc::build_dep_graph(fa);
  const auto cycle = genoc::find_cycle(dep.graph);
  if (cycle) {
    genoc::DeadlockConstruction witness =
        genoc::build_deadlock_from_cycle(fa, dep, *cycle, 2);
    const genoc::WormholeSwitching wh;
    const bool omega = genoc::is_deadlock(wh, witness.state);
    const genoc::DeadlockCycle recovered =
        genoc::extract_cycle_from_deadlock(wh, witness.state);
    std::cout << "Theorem-1 round trip on Fully-Adaptive: cycle of "
              << cycle->size() << " ports -> " << witness.packets.size()
              << " packets placed -> Ω = " << (omega ? "true" : "false")
              << " -> cycle of " << recovered.ports.size()
              << " ports recovered ("
              << (genoc::cycle_lies_in_dep_graph(dep, recovered.ports)
                      ? "in the dependency graph"
                      : "NOT in the graph")
              << ").\n\n";
  }

  // Duato-style cure: fully-adaptive lanes + one XY escape lane per port.
  const genoc::XYRouting xy(mesh);
  const genoc::EscapeAnalysis escape = genoc::analyze_escape(fa, xy);
  std::cout << "Escape-lane analysis (Fully-Adaptive + XY escape): "
            << escape.summary() << "\n";

  // Topology-induced deadlock: the same dimension-order discipline that is
  // safe on the mesh becomes deadlock-prone on a 4x4 torus, and the
  // mesh-XY escape lane cures it.
  const genoc::Mesh2D torus(4, 4, /*wrap_x=*/true, /*wrap_y=*/true);
  const genoc::TorusXYRouting torus_xy(torus);
  const genoc::PortDepGraph torus_dep = genoc::build_dep_graph(torus_xy);
  const genoc::SccAnalysis torus_scc =
      genoc::analyze_dependencies(torus_dep, 1);
  const genoc::XYRouting torus_escape(torus);
  const genoc::EscapeAnalysis torus_cure =
      genoc::analyze_escape(torus_xy, torus_escape);
  std::cout << "Torus-XY on a 4x4 torus: " << torus_scc.summary() << "\n"
            << "Torus-XY + mesh-XY escape lane: " << torus_cure.summary()
            << "\n\n";
}

void BM_SccAnalysis(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::FullyAdaptiveRouting fa(mesh);
  const genoc::PortDepGraph dep = genoc::build_dep_graph(fa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        genoc::analyze_dependencies(dep, 1).deadlock_free);
  }
}
BENCHMARK(BM_SccAnalysis)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_WitnessConstruction(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::FullyAdaptiveRouting fa(mesh);
  const genoc::PortDepGraph dep = genoc::build_dep_graph(fa);
  const auto cycle = genoc::find_cycle(dep.graph);
  for (auto _ : state) {
    genoc::DeadlockConstruction witness =
        genoc::build_deadlock_from_cycle(fa, dep, *cycle, 2);
    benchmark::DoNotOptimize(witness.packets.size());
  }
}
BENCHMARK(BM_WitnessConstruction)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CycleExtraction(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::FullyAdaptiveRouting fa(mesh);
  const genoc::PortDepGraph dep = genoc::build_dep_graph(fa);
  const auto cycle = genoc::find_cycle(dep.graph);
  const genoc::DeadlockConstruction witness =
      genoc::build_deadlock_from_cycle(fa, dep, *cycle, 2);
  const genoc::WormholeSwitching wh;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        genoc::extract_cycle_from_deadlock(wh, witness.state).ports.size());
  }
}
BENCHMARK(BM_CycleExtraction)->Arg(4)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
