/// \file ablation_cycle_algos.cpp
/// \brief Ablation A1: the paper's Sec. VII claim that on fixed instances
///        "a simple search for a cycle suffices … in linear time".
///
/// Compares the four (C-3) discharge strategies — DFS cycle search, Tarjan
/// SCC, Kahn toposort, and the closed-form flow certificate — across mesh
/// sizes, confirming they agree and all scale linearly in the number of
/// dependency edges.
#include <benchmark/benchmark.h>

#include <iostream>

#include "deadlock/depgraph.hpp"
#include "deadlock/flows.hpp"
#include "graph/cycle.hpp"
#include "graph/tarjan.hpp"
#include "graph/toposort.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace {

void print_report() {
  std::cout << "=== Ablation A1: (C-3) discharge strategies ===\n\n";
  genoc::Table table({"Mesh", "Edges", "DFS ms", "Tarjan ms", "Kahn ms",
                      "FlowCert ms", "All agree (acyclic)"});
  for (const std::int32_t side : {4, 8, 16, 32, 64}) {
    const genoc::Mesh2D mesh(side, side);
    const genoc::PortDepGraph dep = genoc::build_exy_dep(mesh);

    genoc::Stopwatch sw;
    const bool dfs = genoc::is_acyclic(dep.graph);
    const double dfs_ms = sw.elapsed_ms();

    sw.reset();
    const bool tarjan = !genoc::has_nontrivial_scc(dep.graph);
    const double tarjan_ms = sw.elapsed_ms();

    sw.reset();
    const bool kahn = genoc::topological_order(dep.graph).has_value();
    const double kahn_ms = sw.elapsed_ms();

    sw.reset();
    const bool cert = genoc::verify_flow_certificate(dep);
    const double cert_ms = sw.elapsed_ms();

    table.add_row({std::to_string(side) + "x" + std::to_string(side),
                   genoc::format_count(dep.graph.edge_count()),
                   genoc::format_double(dfs_ms, 3),
                   genoc::format_double(tarjan_ms, 3),
                   genoc::format_double(kahn_ms, 3),
                   genoc::format_double(cert_ms, 3),
                   (dfs && tarjan && kahn && cert) ? "yes" : "NO"});
  }
  std::cout << table.render()
            << "\nAll four agree on every size; the flow certificate "
               "additionally certifies the verdict with a size-independent "
               "formula.\n\n";
}

template <bool (*Check)(const genoc::Digraph&)>
void run_check(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::PortDepGraph dep = genoc::build_exy_dep(mesh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Check(dep.graph));
  }
  state.SetComplexityN(static_cast<std::int64_t>(dep.graph.edge_count()));
}

bool check_dfs(const genoc::Digraph& g) { return genoc::is_acyclic(g); }
bool check_tarjan(const genoc::Digraph& g) {
  return !genoc::has_nontrivial_scc(g);
}
bool check_kahn(const genoc::Digraph& g) {
  return genoc::topological_order(g).has_value();
}

void BM_C3_Dfs(benchmark::State& state) { run_check<check_dfs>(state); }
void BM_C3_Tarjan(benchmark::State& state) { run_check<check_tarjan>(state); }
void BM_C3_Kahn(benchmark::State& state) { run_check<check_kahn>(state); }
void BM_C3_FlowCertificate(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::PortDepGraph dep = genoc::build_exy_dep(mesh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(genoc::verify_flow_certificate(dep));
  }
  state.SetComplexityN(static_cast<std::int64_t>(dep.graph.edge_count()));
}

BENCHMARK(BM_C3_Dfs)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_C3_Tarjan)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_C3_Kahn)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity(benchmark::oN);
BENCHMARK(BM_C3_FlowCertificate)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity(benchmark::oN);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
