/// \file table1_effort.cpp
/// \brief Reproduction of the paper's Table I ("Overview of verification
///        effort").
///
/// The paper reports the ACL2 effort per proof artifact (lines, theorems,
/// functions, CPU minutes, human days). This harness discharges the same
/// obligations mechanically and reports, per row: elementary checks,
/// distinct properties, CPU time and the verdict, next to the paper's
/// numbers. The preserved *shape*: (C-1)/(C-2) are huge case-splits that
/// machines chew through, (C-3) needs the clever argument (here: the flow
/// certificate), and everything discharges.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/obligations.hpp"
#include "util/table.hpp"

namespace {

void print_report() {
  const genoc::HermesInstance hermes(4, 4, 2);
  genoc::ObligationOptions options;
  options.workloads = 3;
  options.messages_per_workload = 24;
  const genoc::ObligationSuite suite =
      genoc::run_hermes_obligations(hermes, options);

  std::cout << "=== Table I reproduction (4x4 HERMES, 2 buffers/port) ===\n"
            << "Paper columns: ACL2 Lines/Thms/Fns/CPU-minutes/Human-days.\n"
            << "Ours: mechanical checks + CPU ms per obligation (human\n"
            << "effort has no runtime analog; see DESIGN.md).\n\n";

  genoc::Table table({"File (row)", "Paper Lines", "Paper Thms", "Paper Fns",
                      "Paper CPU", "Paper Hmn", "Our checks", "Our CPU ms",
                      "Verdict"});
  const auto& paper = genoc::paper_table1();
  for (std::size_t i = 0; i < suite.rows.size(); ++i) {
    const genoc::ObligationRow& row = suite.rows[i];
    const genoc::PaperEffortRow& ref = paper[i];
    table.add_row(
        {ref.label, std::to_string(ref.lines), std::to_string(ref.theorems),
         std::to_string(ref.functions), std::to_string(ref.cpu_minutes),
         ref.human_days < 0 ? "N/A" : std::to_string(ref.human_days),
         genoc::format_count(row.checks), genoc::format_double(row.cpu_ms, 2),
         row.satisfied ? "DISCHARGED" : "VIOLATED"});
  }
  table.add_separator();
  const genoc::ObligationRow overall = suite.overall();
  const genoc::PaperEffortRow& total = paper.back();
  table.add_row({total.label, std::to_string(total.lines),
                 std::to_string(total.theorems),
                 std::to_string(total.functions),
                 std::to_string(total.cpu_minutes),
                 std::to_string(total.human_days),
                 genoc::format_count(overall.checks),
                 genoc::format_double(overall.cpu_ms, 2),
                 overall.satisfied ? "DISCHARGED" : "VIOLATED"});
  std::cout << table.render() << "\n";
}

void BM_ObligationSuite(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::HermesInstance hermes(side, side, 2);
  genoc::ObligationOptions options;
  options.workloads = 1;
  options.messages_per_workload = 8;
  for (auto _ : state) {
    const genoc::ObligationSuite suite =
        genoc::run_hermes_obligations(hermes, options);
    benchmark::DoNotOptimize(suite.all_satisfied());
  }
  state.SetLabel(std::to_string(side) + "x" + std::to_string(side));
}
BENCHMARK(BM_ObligationSuite)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
