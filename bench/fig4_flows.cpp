/// \file fig4_flows.cpp
/// \brief Reproduction of Fig. 4: the Northern/Western flows and the
///        escape structure that proves (C-3) for arbitrary mesh sizes.
#include <benchmark/benchmark.h>

#include <iostream>

#include "deadlock/flows.hpp"
#include "graph/cycle.hpp"
#include "util/table.hpp"

namespace {

void print_report() {
  std::cout << "=== Fig. 4 reproduction: flows and escapes ===\n"
            << "A flow monotonically progresses one coordinate; horizontal\n"
            << "flows escape only into vertical flows or a Local sink,\n"
            << "vertical flows only into a Local sink -> no cycle.\n\n";

  genoc::Table table({"Mesh", "E-flow", "W-flow", "N-flow", "S-flow",
                      "intra-flow", "H->V escapes", "sink escapes",
                      "violations", "certificate"});
  for (const auto& [w, h] : {std::pair{2, 2}, std::pair{4, 4}, std::pair{8, 8},
                            std::pair{16, 16}}) {
    const genoc::Mesh2D mesh(w, h);
    const genoc::PortDepGraph dep = genoc::build_exy_dep(mesh);
    const genoc::FlowDecomposition flows = genoc::decompose_flows(dep);
    table.add_row(
        {std::to_string(w) + "x" + std::to_string(h),
         std::to_string(
             flows.ports_per_flow[static_cast<int>(genoc::FlowClass::kEastern)]),
         std::to_string(
             flows.ports_per_flow[static_cast<int>(genoc::FlowClass::kWestern)]),
         std::to_string(flows.ports_per_flow[static_cast<int>(
             genoc::FlowClass::kNorthern)]),
         std::to_string(flows.ports_per_flow[static_cast<int>(
             genoc::FlowClass::kSouthern)]),
         genoc::format_count(flows.intra_flow_edges),
         genoc::format_count(flows.horizontal_to_vertical),
         genoc::format_count(flows.into_local_sink),
         std::to_string(flows.violating_edges),
         genoc::verify_flow_certificate(dep) ? "VALID" : "INVALID"});
  }
  std::cout << table.render()
            << "\nThe closed-form rank (one formula for every W x H) "
               "strictly increases along every edge: the executable shadow "
               "of the paper's arbitrary-size (C-3) proof.\n\n";
}

void BM_FlowCertificate(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::PortDepGraph dep = genoc::build_exy_dep(mesh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(genoc::verify_flow_certificate(dep));
  }
  state.SetComplexityN(
      static_cast<std::int64_t>(dep.graph.edge_count()));
}
BENCHMARK(BM_FlowCertificate)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity(benchmark::oN);

void BM_DfsCycleSearch(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::PortDepGraph dep = genoc::build_exy_dep(mesh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(genoc::is_acyclic(dep.graph));
  }
  state.SetComplexityN(
      static_cast<std::int64_t>(dep.graph.edge_count()));
}
BENCHMARK(BM_DfsCycleSearch)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)
    ->Complexity(benchmark::oN);

void BM_FlowDecomposition(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::PortDepGraph dep = genoc::build_exy_dep(mesh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(genoc::decompose_flows(dep).violating_edges);
  }
}
BENCHMARK(BM_FlowDecomposition)->Arg(8)->Arg(32);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
