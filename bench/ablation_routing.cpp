/// \file ablation_routing.cpp
/// \brief Ablation A5: the routing-function family under identical traffic
///        — deterministic vs turn-model adaptive, across patterns.
///
/// All functions here are certified deadlock-free by (C-3) first; the
/// sweep then compares evacuation steps and latency. Wormhole vs
/// store-and-forward is included as the switching-policy dimension.
#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "deadlock/constraints.hpp"
#include "routing/negative_first.hpp"
#include "routing/north_last.hpp"
#include "routing/odd_even.hpp"
#include "routing/west_first.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"
#include "sim/simulator.hpp"
#include "switching/store_forward.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

namespace {

std::vector<std::unique_ptr<genoc::RoutingFunction>> make_family(
    const genoc::Mesh2D& mesh) {
  std::vector<std::unique_ptr<genoc::RoutingFunction>> family;
  family.push_back(std::make_unique<genoc::XYRouting>(mesh));
  family.push_back(std::make_unique<genoc::YXRouting>(mesh));
  family.push_back(std::make_unique<genoc::WestFirstRouting>(mesh));
  family.push_back(std::make_unique<genoc::NorthLastRouting>(mesh));
  family.push_back(std::make_unique<genoc::NegativeFirstRouting>(mesh));
  family.push_back(std::make_unique<genoc::OddEvenRouting>(mesh));
  return family;
}

void print_report() {
  std::cout << "=== Ablation A5: routing functions under identical traffic "
               "(4x4, 4 flits, 2 buffers) ===\n\n";
  const genoc::Mesh2D mesh(4, 4);
  const auto family = make_family(mesh);

  for (const genoc::TrafficPattern pattern :
       {genoc::TrafficPattern::kUniformRandom,
        genoc::TrafficPattern::kTranspose, genoc::TrafficPattern::kHotspot}) {
    genoc::Table table({"Routing", "(C-3)", "Steps", "Mean lat", "P95 lat",
                        "Max lat"});
    for (const auto& routing : family) {
      const genoc::PortDepGraph dep = genoc::build_dep_graph(*routing);
      const bool safe = genoc::check_c3(dep).satisfied;
      genoc::Rng rng(2010);
      const auto pairs = genoc::generate_traffic(pattern, mesh, 48, rng);
      genoc::SimulationOptions options;
      options.flit_count = 4;
      const genoc::SimulationReport r = genoc::simulate_routing(
          mesh, *routing, pairs, 2, rng, options);
      table.add_row({routing->name(), safe ? "acyclic" : "CYCLE",
                     std::to_string(r.run.steps),
                     genoc::format_double(r.latency.mean, 1),
                     genoc::format_double(r.latency.p95, 1),
                     genoc::format_double(r.latency.max, 1)});
    }
    std::cout << genoc::traffic_pattern_name(pattern) << ":\n"
              << table.render() << "\n";
  }

  // Switching-policy dimension: wormhole vs store-and-forward.
  {
    genoc::Table table({"Switching", "Steps", "Flit moves", "Evacuated"});
    const genoc::XYRouting xy(mesh);
    genoc::Rng rng(5);
    const auto pairs = genoc::uniform_random_traffic(mesh, 24, rng);
    for (const bool wormhole : {true, false}) {
      genoc::Config config(mesh, /*buffers_per_port=*/4);
      genoc::TravelId id = 1;
      for (const genoc::TrafficPair& pair : pairs) {
        config.add_travel(genoc::make_travel(id++, xy, pair.source,
                                             pair.dest, /*flit_count=*/4));
      }
      const genoc::IdentityInjection iid;
      const genoc::WormholeSwitching wh;
      const genoc::StoreForwardSwitching sf;
      const genoc::FlitLevelMeasure mu;
      const genoc::SwitchingPolicy& policy =
          wormhole ? static_cast<const genoc::SwitchingPolicy&>(wh)
                   : static_cast<const genoc::SwitchingPolicy&>(sf);
      const genoc::GenocInterpreter interpreter(iid, policy, mu);
      genoc::GenocOptions options;
      options.max_steps = 100000;
      const genoc::GenocRunResult run = interpreter.run(config, options);
      table.add_row({wormhole ? "wormhole" : "store-and-forward",
                     std::to_string(run.steps),
                     genoc::format_count(run.total_flit_moves),
                     run.evacuated ? "yes" : "NO"});
    }
    std::cout << "Switching policies (XY, 24 messages, 4 flits, 4 buffers) — "
                 "wormhole pipelines, store-and-forward pays F steps per "
                 "hop:\n"
              << table.render() << "\n";
  }
}

void BM_Routing(benchmark::State& state) {
  const genoc::Mesh2D mesh(4, 4);
  const auto family = make_family(mesh);
  const auto& routing = family[static_cast<std::size_t>(state.range(0))];
  genoc::Rng rng(2010);
  const auto pairs = genoc::uniform_random_traffic(mesh, 48, rng);
  genoc::SimulationOptions options;
  options.flit_count = 4;
  for (auto _ : state) {
    genoc::Rng route_rng(7);
    const genoc::SimulationReport r = genoc::simulate_routing(
        mesh, *routing, pairs, 2, route_rng, options);
    benchmark::DoNotOptimize(r.run.steps);
  }
  state.SetLabel(routing->name());
}
BENCHMARK(BM_Routing)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
