/// \file fig2_pipeline.cpp
/// \brief Reproduction of Fig. 2: the specification-method pipeline
///        σ = <T, ST, A> -> I -> R -> S, iterated to completion, with the
///        three theorems audited on the way out.
///
/// The report runs the full GeNoC2D loop on each traffic pattern and shows
/// the pipeline verdicts; the benchmarks measure interpreter throughput
/// (switching steps and flit moves per second).
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/hermes.hpp"
#include "core/theorems.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

namespace {

void print_report() {
  std::cout << "=== Fig. 2 reproduction: the GeNoC pipeline ===\n"
            << "I (Iid) -> R (pre-computed Rxy) -> S (Swh) iterated until\n"
            << "T = empty or deadlock; CorrThm/DeadThm/EvacThm audited.\n\n";
  const genoc::HermesInstance hermes(4, 4, 2);
  const bool dead_thm = hermes.verify_deadlock_free().holds;

  genoc::Table table({"Workload (T)", "Messages", "Steps", "Flit moves",
                      "CorrThm", "DeadThm", "EvacThm"});
  for (const genoc::TrafficPattern pattern :
       {genoc::TrafficPattern::kUniformRandom, genoc::TrafficPattern::kTranspose,
        genoc::TrafficPattern::kBitReversal, genoc::TrafficPattern::kHotspot,
        genoc::TrafficPattern::kAllToOne, genoc::TrafficPattern::kNeighbor,
        genoc::TrafficPattern::kPermutation, genoc::TrafficPattern::kRing}) {
    genoc::Rng rng(2010);
    const auto pairs =
        genoc::generate_traffic(pattern, hermes.mesh(), 32, rng);
    genoc::Config config = hermes.make_config(pairs, 4);
    const genoc::GenocRunResult run = hermes.run(config);
    const bool corr =
        genoc::check_correctness(config, hermes.routing()).holds;
    const bool evac = genoc::check_evacuation(config, run).holds;
    table.add_row({genoc::traffic_pattern_name(pattern),
                   std::to_string(pairs.size()), std::to_string(run.steps),
                   genoc::format_count(run.total_flit_moves),
                   corr ? "holds" : "FAILS", dead_thm ? "holds" : "FAILS",
                   evac ? "holds" : "FAILS"});
  }
  std::cout << table.render() << "\n";
}

void BM_PipelineEndToEnd(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::HermesInstance hermes(side, side, 2);
  genoc::Rng rng(7);
  const auto pairs = genoc::uniform_random_traffic(
      hermes.mesh(), static_cast<std::size_t>(2 * side * side), rng);
  std::uint64_t steps = 0;
  std::uint64_t moves = 0;
  for (auto _ : state) {
    genoc::Config config = hermes.make_config(pairs, 4);
    const genoc::GenocRunResult run = hermes.run(config);
    steps += run.steps;
    moves += run.total_flit_moves;
    benchmark::DoNotOptimize(run.evacuated);
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
  state.counters["flit_moves/s"] = benchmark::Counter(
      static_cast<double>(moves), benchmark::Counter::kIsRate);
  state.SetLabel(std::to_string(side) + "x" + std::to_string(side));
}
BENCHMARK(BM_PipelineEndToEnd)->Arg(2)->Arg(4)->Arg(6)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SingleSwitchingStep(benchmark::State& state) {
  const genoc::HermesInstance hermes(8, 8, 2);
  genoc::Rng rng(9);
  const auto pairs = genoc::uniform_random_traffic(hermes.mesh(), 64, rng);
  genoc::Config config = hermes.make_config(pairs, 4);
  // Warm the network up so the step has real work.
  for (int i = 0; i < 5; ++i) {
    hermes.switching().step(config.state());
  }
  for (auto _ : state) {
    state.PauseTiming();
    genoc::Config fresh = hermes.make_config(pairs, 4);
    for (int i = 0; i < 5; ++i) {
      hermes.switching().step(fresh.state());
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(hermes.switching().step(fresh.state()));
  }
}
BENCHMARK(BM_SingleSwitchingStep)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
