/// \file ablation_dep_granularity.cpp
/// \brief Ablation A2: the paper's port-level dependency graph vs Dally &
///        Seitz' channel-level graph (Sec. IV.A).
///
/// Both agree on the deadlock verdict (the channel graph is the out-port
/// projection of the port graph); the port graph is the one that supports
/// the buffer-level switching proofs and carries the Local source/sink
/// structure. The report quantifies the size cost of the refinement.
#include <benchmark/benchmark.h>

#include <iostream>

#include "deadlock/channel_dep.hpp"
#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/west_first.hpp"
#include "routing/xy.hpp"
#include "util/table.hpp"

namespace {

void print_report() {
  std::cout << "=== Ablation A2: port-level vs channel-level graphs ===\n\n";
  genoc::Table table({"Routing", "Mesh", "Port V", "Port E", "Chan V",
                      "Chan E", "Port verdict", "Chan verdict", "Agree"});
  for (const std::int32_t side : {4, 8}) {
    const genoc::Mesh2D mesh(side, side);
    const genoc::XYRouting xy(mesh);
    const genoc::WestFirstRouting wf(mesh);
    const genoc::FullyAdaptiveRouting fa(mesh);
    for (const genoc::RoutingFunction* routing :
         std::initializer_list<const genoc::RoutingFunction*>{&xy, &wf, &fa}) {
      const genoc::PortDepGraph port = genoc::build_dep_graph(*routing);
      const genoc::ChannelDepGraph chan =
          genoc::build_channel_dep_graph(*routing);
      const bool port_ok = genoc::is_acyclic(port.graph);
      const bool chan_ok = genoc::is_acyclic(chan.graph);
      table.add_row({routing->name(),
                     std::to_string(side) + "x" + std::to_string(side),
                     genoc::format_count(port.graph.vertex_count()),
                     genoc::format_count(port.graph.edge_count()),
                     genoc::format_count(chan.graph.vertex_count()),
                     genoc::format_count(chan.graph.edge_count()),
                     port_ok ? "acyclic" : "CYCLIC",
                     chan_ok ? "acyclic" : "CYCLIC",
                     port_ok == chan_ok ? "yes" : "NO"});
    }
  }
  std::cout << table.render()
            << "\nThe paper's port graph refines the classic channel graph "
               "(~2.6x vertices) without changing the verdict — the price "
               "of reasoning at the buffer level.\n\n";
}

void BM_BuildPortGraph(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::XYRouting xy(mesh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(genoc::build_dep_graph(xy).graph.edge_count());
  }
}
BENCHMARK(BM_BuildPortGraph)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_BuildChannelGraph(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const genoc::Mesh2D mesh(side, side);
  const genoc::XYRouting xy(mesh);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        genoc::build_channel_dep_graph(xy).graph.edge_count());
  }
}
BENCHMARK(BM_BuildChannelGraph)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
