#!/usr/bin/env python3
"""Run clang-tidy over the GeNoC sources with the tracked .clang-tidy profile.

Drives clang-tidy from the compile_commands.json of an existing build tree
(configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON), in parallel, and fails
on any diagnostic from the enabled bundles (WarningsAsErrors in .clang-tidy
promotes them). CI runs this as the lint leg; locally:

    cmake -S . -B build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    python3 tools/run_clang_tidy.py --build-dir build

Exits 0 when clean, 1 on findings, 2 on usage/environment errors. When no
clang-tidy binary is available (e.g. a gcc-only container) the script
reports the fact and exits 0 under --skip-missing (the default for local
convenience is OFF: CI must hard-fail if its tidy install broke).
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys

# Generated/third-party sources never linted. compile_commands entries are
# matched by substring on their absolute path.
EXCLUDE_FRAGMENTS = (
    "/build",
    "/_deps/",
    "googletest",
    "googlebenchmark",
)


def find_tidy(explicit):
    """The clang-tidy binary: --clang-tidy wins, then versioned fallbacks."""
    candidates = [explicit] if explicit else []
    candidates += ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(20, 13, -1)]
    for name in candidates:
        path = shutil.which(name)
        if path:
            return path
    return None


def load_sources(build_dir):
    """First-party .cpp entries of the build's compile_commands.json."""
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        sys.stderr.write(
            f"run_clang_tidy: no {db_path}; configure the build tree with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first\n")
        sys.exit(2)
    with open(db_path, encoding="utf-8") as handle:
        database = json.load(handle)
    sources = []
    for entry in database:
        path = os.path.normpath(
            os.path.join(entry.get("directory", ""), entry["file"]))
        if not path.endswith(".cpp"):
            continue
        if any(fragment in path for fragment in EXCLUDE_FRAGMENTS):
            continue
        sources.append(path)
    return sorted(set(sources))


def run_one(tidy, build_dir, source):
    """One clang-tidy invocation; returns (source, returncode, output)."""
    result = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", source],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        check=False,
    )
    # Drop the noise clang-tidy prints even with --quiet when a TU is clean.
    lines = [
        line
        for line in result.stdout.splitlines()
        if line.strip() and "warnings generated" not in line
        and not line.startswith("Suppressed ")
        and "non-user code" not in line
    ]
    return source, result.returncode, "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="build tree holding compile_commands.json")
    parser.add_argument("--clang-tidy", default=None,
                        help="clang-tidy binary (default: search PATH)")
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2,
                        help="parallel clang-tidy processes")
    parser.add_argument("--filter", default=None,
                        help="only lint sources whose path contains this")
    parser.add_argument("--skip-missing", action="store_true",
                        help="exit 0 (with a notice) when no clang-tidy "
                             "binary exists instead of failing — for "
                             "gcc-only containers; CI must NOT pass this")
    args = parser.parse_args()

    tidy = find_tidy(args.clang_tidy)
    if tidy is None:
        message = ("run_clang_tidy: no clang-tidy binary found on PATH "
                   "(install clang-tidy, or pass --clang-tidy)\n")
        if args.skip_missing:
            sys.stderr.write(message + "run_clang_tidy: --skip-missing set; "
                             "skipping the lint pass\n")
            return 0
        sys.stderr.write(message)
        return 2

    sources = load_sources(args.build_dir)
    if args.filter:
        sources = [s for s in sources if args.filter in s]
    if not sources:
        sys.stderr.write("run_clang_tidy: no sources matched\n")
        return 2

    print(f"run_clang_tidy: {tidy} over {len(sources)} sources "
          f"({args.jobs} jobs)")
    failures = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for source, returncode, output in pool.map(
                lambda s: run_one(tidy, args.build_dir, s), sources):
            if returncode != 0 or output:
                failures += 1
                rel = os.path.relpath(source)
                print(f"--- {rel}")
                if output:
                    print(output)
    if failures:
        print(f"run_clang_tidy: findings in {failures}/{len(sources)} "
              "translation units")
        return 1
    print(f"run_clang_tidy: all {len(sources)} translation units clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
