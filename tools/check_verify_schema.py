#!/usr/bin/env python3
"""Schema validation for `genoc verify ... --json` artifacts.

Validates the schema-versioned instance-mode report the VerifyPipeline
emits: the top-level envelope, every verdict row, the typed per-stage stats
and Diagnostic records, and the artifact-cache counters. CI runs this over
the `verify --all --json` artifact of every matrix job so an accidental
field rename or shape change fails the build instead of silently breaking
downstream tooling (the --baseline trend report reads these artifacts back).

Usage: tools/check_verify_schema.py report.json [--expect-baseline]
"""
import argparse
import json
import pathlib
import sys

SCHEMA_VERSION = 2

SEVERITIES = {"info", "warning", "error"}

TOP_LEVEL = {
    "command": str,
    "schema_version": int,
    "mode": str,
    "threads": int,
    "stages": list,
    "constraints": bool,
    "instances_total": int,
    "all_deadlock_free": bool,
    "analysis_prescreen": bool,
    "cache": dict,
    "metrics": dict,
    "instances": list,
}

INSTANCE_ROW = {
    "instance": str,
    "spec": str,
    "topology": str,
    "routing": str,
    "switching": str,
    "nodes": int,
    "ports": int,
    "dep_edges": int,
    "deterministic": bool,
    "dep_acyclic": bool,
    "method": str,
    "deadlock_free": bool,
    "constraints_ok": bool,
    "checks": int,
    "wall_ms": (int, float),
    "cpu_ms": (int, float),
    "max_rss_kb": int,
    "note": str,
    "stages": list,
    "diagnostics": list,
    "cache": dict,
}

STAGE_ROW = {
    "stage": str,
    "ran": bool,
    "passed": bool,
    "skip_reason": str,
    "checks": int,
    "wall_ms": (int, float),
    "cpu_ms": (int, float),
}

DIAGNOSTIC_ROW = {
    "stage": str,
    "severity": str,
    "code": str,
    "message": str,
    "witness": dict,
}

# The analyzer pre-screen row attached per instance when the cheap-rule
# subset ran before the verify (absent under --no-analyze). Same shape as
# an `analyze --json` instance row; the full validation lives in
# check_analyze_schema.py — here only the envelope the verify report
# embeds is checked.
ANALYSIS_ROW = {
    "instance": str,
    "spec": str,
    "clean": bool,
    "findings": int,
    "checks": int,
    "rules": list,
    "diagnostics": list,
}

CACHE_KINDS = ("contexts", "primed", "dep_graph", "acyclicity", "escape",
               "constraints")

BASELINE = {
    "file": str,
    "instances_compared": int,
    "verdict_regression": bool,
    "regressions": list,
    "improvements": list,
    "added": list,
    "removed": list,
    "wall_ms_before": (int, float),
    "wall_ms_now": (int, float),
    "wall_ms_delta": (int, float),
    "rows": list,
}

METRICS_SECTION = {
    "counters": dict,
    "gauges": dict,
    "histograms": dict,
}

HISTOGRAM_ENTRY = {
    "count": int,
    "sum": int,
    "max": int,
    "buckets": list,
}


def fail(context: str, message: str) -> None:
    sys.exit(f"check_verify_schema: {context}: {message}")


def check_fields(obj: dict, spec: dict, context: str) -> None:
    if not isinstance(obj, dict):
        fail(context, f"expected an object, got {type(obj).__name__}")
    for key, kind in spec.items():
        if key not in obj:
            fail(context, f"missing field '{key}'")
        value = obj[key]
        # bool is an int subclass in Python; keep the kinds strict.
        if kind is int and isinstance(value, bool):
            fail(context, f"field '{key}' is a bool, wanted an integer")
        if not isinstance(value, kind):
            fail(context, f"field '{key}' has type {type(value).__name__}")


def check_cache(cache: dict, context: str) -> None:
    for kind in CACHE_KINDS:
        if kind not in cache:
            fail(context, f"cache is missing the '{kind}' counter")
        counter = cache[kind]
        check_fields(counter, {"misses": int, "hits": int},
                     f"{context}.cache.{kind}")


def check_metrics(metrics: dict, context: str) -> None:
    """The MetricsRegistry snapshot: counters/gauges are name -> integer
    maps, histograms are {count, sum, max, buckets: [{le, count}]}."""
    check_fields(metrics, METRICS_SECTION, context)
    for name, value in metrics["counters"].items():
        if isinstance(value, bool) or not isinstance(value, int):
            fail(f"{context}.counters", f"'{name}' is not an integer")
    for name, value in metrics["gauges"].items():
        if isinstance(value, bool) or not isinstance(value, int):
            fail(f"{context}.gauges", f"'{name}' is not an integer")
    for name, entry in metrics["histograms"].items():
        check_fields(entry, HISTOGRAM_ENTRY, f"{context}.histograms.{name}")
        for i, bucket in enumerate(entry["buckets"]):
            check_fields(bucket, {"le": int, "count": int},
                         f"{context}.histograms.{name}.buckets[{i}]")
    # The pipeline always runs under instance mode, so its counters must be
    # present — an empty metrics block means the registry got disconnected.
    if "verify.pipeline_runs" not in metrics["counters"]:
        fail(context, "counters are missing 'verify.pipeline_runs'")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=pathlib.Path)
    parser.add_argument("--expect-baseline", action="store_true",
                        help="additionally require the --baseline trend "
                             "section")
    args = parser.parse_args()

    try:
        doc = json.loads(args.report.read_text())
    except (OSError, json.JSONDecodeError) as error:
        fail(str(args.report), f"unreadable or invalid JSON: {error}")

    check_fields(doc, TOP_LEVEL, "top level")
    if doc["schema_version"] != SCHEMA_VERSION:
        fail("top level", f"schema_version {doc['schema_version']}, this "
                          f"validator speaks {SCHEMA_VERSION}")
    if doc["command"] != "verify":
        fail("top level", f"command '{doc['command']}', wanted 'verify'")
    if len(doc["instances"]) != doc["instances_total"]:
        fail("top level", "instances_total does not match the array length")
    check_cache(doc["cache"], "top level")
    check_metrics(doc["metrics"], "metrics")
    stage_names = set(doc["stages"])

    for i, row in enumerate(doc["instances"]):
        context = f"instances[{i}]"
        check_fields(row, INSTANCE_ROW, context)
        check_cache(row["cache"], context)
        if len(row["stages"]) != len(doc["stages"]):
            fail(context, "per-instance stage list does not match the "
                          "pipeline's stage selection")
        for j, stage in enumerate(row["stages"]):
            check_fields(stage, STAGE_ROW, f"{context}.stages[{j}]")
            if stage["stage"] not in stage_names:
                fail(f"{context}.stages[{j}]",
                     f"unknown stage '{stage['stage']}'")
        for j, diagnostic in enumerate(row["diagnostics"]):
            check_fields(diagnostic, DIAGNOSTIC_ROW,
                         f"{context}.diagnostics[{j}]")
            if diagnostic["severity"] not in SEVERITIES:
                fail(f"{context}.diagnostics[{j}]",
                     f"unknown severity '{diagnostic['severity']}'")
            for key, value in diagnostic["witness"].items():
                if not isinstance(value, str):
                    fail(f"{context}.diagnostics[{j}]",
                         f"witness '{key}' is not a string")
        # The analyzer pre-screen attaches per row iff the top-level flag
        # says it ran — a mismatch means the attach wiring regressed.
        if doc["analysis_prescreen"] != ("analysis" in row):
            fail(context, "analysis row presence contradicts the top-level "
                          "analysis_prescreen flag")
        if "analysis" in row:
            check_fields(row["analysis"], ANALYSIS_ROW, f"{context}.analysis")

    if args.expect_baseline:
        if "baseline" not in doc:
            fail("top level", "--expect-baseline: no 'baseline' section")
        check_fields(doc["baseline"], BASELINE, "baseline")
        if doc["baseline"]["verdict_regression"]:
            fail("baseline", "verdict regression flagged: "
                             f"{doc['baseline']['regressions']}")

    print(f"check_verify_schema: OK — schema_version {SCHEMA_VERSION}, "
          f"{doc['instances_total']} instances, "
          f"{len(doc['stages'])} stages"
          + (", baseline section present" if args.expect_baseline else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
