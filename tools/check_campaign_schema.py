#!/usr/bin/env python3
"""Schema validation for `genoc campaign ... --json` artifacts.

Validates the schema-versioned report the fault-injection campaign engine
emits: the top-level envelope, the screened/verified arithmetic (every
variant is accounted exactly once), the per-code screen histogram against
the per-variant code lists, and every variant row. CI runs this over a
`campaign --instance mesh16-xy --faults single --json` artifact on every
matrix job so a field rename or a variant that silently drops out of the
accounting fails the build.

Usage: tools/check_campaign_schema.py report.json [--require-free]
"""
import argparse
import collections
import json
import pathlib
import sys

SCHEMA_VERSION = 1

# Stable diagnostic codes the screening rule subset (spec_sanity,
# fault_sanity, connectivity) can reject a variant on. A report may
# never carry an unknown screen code.
KNOWN_SCREEN_CODES = {
    "sanity-invalid-spec",
    "sanity-fault-invalid",
    "sanity-fault-duplicate",
    "net-disconnected",
    "connectivity-broken",
}

TOP_LEVEL = {
    "command": str,
    "schema_version": int,
    "instance": str,
    "spec": str,
    "plan": str,
    "links": int,
    "variants_total": int,
    "screened": int,
    "verified": int,
    "deadlock_free": int,
    "deadlocked": int,
    "any_deadlock": bool,
    "screen_codes": dict,
    "cache": dict,
    "variants": list,
}

VARIANT_ROW = {
    "faults": str,
    "screened": bool,
    "codes": list,
    "deadlock_free": bool,
    "method": str,
    "edges": int,
    "checks": int,
}


def fail(context: str, message: str) -> None:
    sys.exit(f"check_campaign_schema: {context}: {message}")


def check_fields(obj: dict, spec: dict, context: str) -> None:
    if not isinstance(obj, dict):
        fail(context, f"expected an object, got {type(obj).__name__}")
    for key, kind in spec.items():
        if key not in obj:
            fail(context, f"missing field '{key}'")
        value = obj[key]
        # bool is an int subclass in Python; keep the kinds strict.
        if kind is int and isinstance(value, bool):
            fail(context, f"field '{key}' is a bool, wanted an integer")
        if not isinstance(value, kind):
            fail(context, f"field '{key}' has type {type(value).__name__}")


def check_variant_row(row: dict, context: str) -> None:
    """One VariantOutcome: screened rows carry codes and no verdict,
    verified rows carry a verdict and no codes."""
    check_fields(row, VARIANT_ROW, context)
    if not row["faults"]:
        fail(context, "empty faults token list")
    codes = row["codes"]
    for code in codes:
        if not isinstance(code, str) or not code:
            fail(context, "screen codes must be non-empty strings")
        if code not in KNOWN_SCREEN_CODES:
            fail(context, f"unknown screen code '{code}'")
    if codes != sorted(set(codes)):
        fail(context, "screen codes are not sorted and deduplicated")
    if row["screened"]:
        if not codes:
            fail(context, "a screened variant must name at least one code")
        if row["deadlock_free"]:
            fail(context, "a screened variant carries a verify verdict")
    else:
        if codes:
            fail(context, "a verified variant must not carry screen codes")
        if not row["method"]:
            fail(context, "a verified variant must name its deciding stage")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=pathlib.Path)
    parser.add_argument("--require-free", action="store_true",
                        help="additionally fail when any verified variant "
                             "deadlocks (the mesh16-xy single-fault CI gate)")
    args = parser.parse_args()

    try:
        doc = json.loads(args.report.read_text())
    except (OSError, json.JSONDecodeError) as error:
        fail(str(args.report), f"unreadable or invalid JSON: {error}")

    check_fields(doc, TOP_LEVEL, "top level")
    if doc["schema_version"] != SCHEMA_VERSION:
        fail("top level", f"schema_version {doc['schema_version']}, this "
                          f"validator speaks {SCHEMA_VERSION}")
    if doc["command"] != "campaign":
        fail("top level", f"command '{doc['command']}', wanted 'campaign'")
    if len(doc["variants"]) != doc["variants_total"]:
        fail("top level", "variants_total does not match the array length")

    # The accounting invariants: every variant is screened XOR verified,
    # and every verified variant has exactly one verdict.
    if doc["screened"] + doc["verified"] != doc["variants_total"]:
        fail("top level", f"screened ({doc['screened']}) + verified "
                          f"({doc['verified']}) != variants_total "
                          f"({doc['variants_total']})")
    if doc["deadlock_free"] + doc["deadlocked"] != doc["verified"]:
        fail("top level", "deadlock_free + deadlocked != verified")
    if doc["any_deadlock"] != (doc["deadlocked"] > 0):
        fail("top level", "any_deadlock contradicts the deadlocked count")

    screened = verified = free = deadlocked = 0
    code_counts: collections.Counter = collections.Counter()
    for i, row in enumerate(doc["variants"]):
        check_variant_row(row, f"variants[{i}]")
        if row["screened"]:
            screened += 1
            code_counts.update(row["codes"])
        else:
            verified += 1
            if row["deadlock_free"]:
                free += 1
            else:
                deadlocked += 1
    for name, count in (("screened", screened), ("verified", verified),
                        ("deadlock_free", free), ("deadlocked", deadlocked)):
        if doc[name] != count:
            fail("top level", f"{name} says {doc[name]}, the variant rows "
                              f"hold {count}")
    if dict(code_counts) != {k: int(v)
                             for k, v in doc["screen_codes"].items()}:
        fail("top level", "screen_codes histogram does not match the "
                          "per-variant code lists")

    cache = doc["cache"]
    if "dep_graph" not in cache or not isinstance(cache["dep_graph"], dict):
        fail("cache", "missing dep_graph hit/miss ledger")

    if args.require_free and doc["any_deadlock"]:
        bad = [row["faults"] for row in doc["variants"]
               if not row["screened"] and not row["deadlock_free"]]
        fail("top level", f"--require-free: deadlocks on failed={bad}")

    print(f"check_campaign_schema: OK — schema_version {SCHEMA_VERSION}, "
          f"plan {doc['plan']} over {doc['instance']}: "
          f"{doc['variants_total']} variants = {doc['screened']} screened "
          f"+ {doc['verified']} verified ({doc['deadlocked']} deadlocked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
