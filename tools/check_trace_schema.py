#!/usr/bin/env python3
"""Schema validation for `genoc verify/bench --trace` artifacts.

Validates the Chrome trace-event JSON the obs::TraceRecorder emits: the
{"traceEvents": [...]} envelope, the per-event fields Perfetto and
chrome://tracing require, non-decreasing start timestamps within each
thread track, and proper span nesting (a later span on the same track
either starts after the previous one ends or is fully contained in it —
the invariant that makes the flame graph render as a stack rather than
as overlapping slabs).

Usage: tools/check_trace_schema.py trace.json [--require-events]
"""
import argparse
import json
import pathlib
import sys

# Complete ("X") spans and metadata ("M") records are all the recorder
# emits; anything else means the writer changed shape under us.
KNOWN_PHASES = {"X", "M"}

# Span boundaries are derived from float microseconds; allow a hair of
# slack before calling two timestamps out of order.
EPSILON_US = 0.002


def fail(context: str, message: str) -> None:
    sys.exit(f"check_trace_schema: {context}: {message}")


def check_event(event: dict, context: str) -> None:
    if not isinstance(event, dict):
        fail(context, f"expected an object, got {type(event).__name__}")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        fail(context, "missing or empty 'name'")
    phase = event.get("ph")
    if phase not in KNOWN_PHASES:
        fail(context, f"unknown phase {phase!r} (recorder emits X and M)")
    for key in ("pid", "tid"):
        value = event.get(key)
        if isinstance(value, bool) or not isinstance(value, int):
            fail(context, f"'{key}' is not an integer")
    if phase == "X":
        for key in ("ts", "dur"):
            value = event.get(key)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                fail(context, f"'{key}' is not a number")
            if value < 0:
                fail(context, f"'{key}' is negative ({value})")


def check_track(tid: int, spans: list) -> None:
    """Timestamps non-decreasing and spans properly nested per thread."""
    context = f"tid {tid}"
    last_ts = -1.0
    # Stack of (end_ts, name) of still-open ancestors.
    stack = []
    for event in spans:
        ts = event["ts"]
        end = ts + event["dur"]
        if ts + EPSILON_US < last_ts:
            fail(context, f"timestamps regress: span '{event['name']}' "
                          f"starts at {ts} after a span starting at {last_ts}")
        last_ts = ts
        while stack and ts >= stack[-1][0] - EPSILON_US:
            stack.pop()
        if stack and end > stack[-1][0] + EPSILON_US:
            fail(context, f"span '{event['name']}' [{ts}, {end}] overlaps "
                          f"its enclosing '{stack[-1][1]}' (ends at "
                          f"{stack[-1][0]}) without nesting inside it")
        stack.append((end, event["name"]))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", type=pathlib.Path)
    parser.add_argument("--require-events", action="store_true",
                        help="fail if the trace holds no X spans (a capture "
                             "that silently recorded nothing)")
    args = parser.parse_args()

    try:
        doc = json.loads(args.trace.read_text())
    except (OSError, json.JSONDecodeError) as error:
        fail(str(args.trace), f"unreadable or invalid JSON: {error}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level", "no 'traceEvents' key")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("top level", "'traceEvents' is not a list")

    tracks = {}
    span_count = 0
    for i, event in enumerate(events):
        check_event(event, f"traceEvents[{i}]")
        if event["ph"] == "X":
            span_count += 1
            tracks.setdefault(event["tid"], []).append(event)

    for tid, spans in sorted(tracks.items()):
        check_track(tid, spans)

    if args.require_events and span_count == 0:
        fail("top level", "--require-events: the trace holds no X spans")

    print(f"check_trace_schema: OK — {span_count} spans across "
          f"{len(tracks)} thread tracks "
          f"({len(events) - span_count} metadata records)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
