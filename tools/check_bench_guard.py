#!/usr/bin/env python3
"""Perf regression guards over the BENCH_*.json artifacts.

Reads the artifacts `genoc bench --json` wrote into the given directory and
fails (exit 1) when a guarded ratio regresses:

  1. Always: depgraph_fast_8x8 must finish within 10% of the
     depgraph_generic_8x8 oracle measured in the same run — i.e. the
     per-destination builder keeps its >= 10x advantage and has not
     re-quadraticized.
  2. Always: depgraph_fast_cmesh must finish within 25% of the
     depgraph_generic_cmesh oracle — the id-native sweep (the non-grid
     dialect the 8x8 mesh guard never exercises) keeps a >= 4x advantage
     on the 8x8 c=4 concentrated mesh. The measured ratio is ~7.7x; the
     looser bound reflects the smaller gap id-native closures leave over
     a 960-port/256-destination product.
  3. Always: campaign_delta_mesh16_single must finish within 20% of
     campaign_rebuild_mesh16_single — the fault-campaign delta builder
     (base-graph edge filtering) keeps a >= 5x advantage over rebuilding
     every variant's dependency graph from scratch. Measured ~35x; the
     loose bound absorbs runner noise on the small 16-variant sample.
  4. With --escape-speedup X (multicore CI only): escape_parallel_64x64
     must be at least X times faster than escape_sequential_64x64 from the
     same run — the destination-sharded escape sweep actually beats the
     sequential lane walk. Skipped by default because the ratio is
     meaningless on single-core runners, where the sharded sweep can only
     tie the sequential one.
  5. With --max-ns NAME=NS (repeatable): the named benchmark's ns_per_op
     must not exceed the absolute ceiling — e.g.
     --max-ns verify_mesh128_xy=2000000000 pins the headline "mesh128
     verifies in under 2 s at 4 threads".
  6. With --max-rss-kb NAME=KB (repeatable): the named benchmark's
     max_rss_kb (peak process RSS when its artifact was written) must not
     exceed the ceiling — the memory gate for the mesh256-xy verify.

Usage: tools/check_bench_guard.py [bench-results-dir] [--escape-speedup X]
           [--max-ns NAME=NS ...] [--max-rss-kb NAME=KB ...]
"""
import argparse
import json
import pathlib
import sys

FAST = "depgraph_fast_8x8"
GENERIC = "depgraph_generic_8x8"
# The fast builder must finish within this fraction of the generic oracle's
# time. The measured ratio is ~15x (fast <= 0.07 * generic); 0.10 leaves
# room for runner noise without letting a real regression through.
LIMIT_FRACTION = 0.10

FAST_CMESH = "depgraph_fast_cmesh"
GENERIC_CMESH = "depgraph_generic_cmesh"
# Measured ~7.7x on the 8x8 c=4 cmesh (fast <= 0.13 * generic); 0.25
# keeps the guard meaningful without flaking on noisy runners.
CMESH_LIMIT_FRACTION = 0.25

DELTA_CAMPAIGN = "campaign_delta_mesh16_single"
REBUILD_CAMPAIGN = "campaign_rebuild_mesh16_single"
# Measured ~35x on the 16-variant single-link mesh16 sample (delta <=
# 0.03 * rebuild); 0.20 pins the >= 5x acceptance bound without flaking.
CAMPAIGN_LIMIT_FRACTION = 0.20

ESCAPE_PARALLEL = "escape_parallel_64x64"
ESCAPE_SEQUENTIAL = "escape_sequential_64x64"


def bench_field(directory: pathlib.Path, name: str, field: str) -> float:
    path = directory / f"BENCH_{name}.json"
    if not path.is_file():
        sys.exit(f"check_bench_guard: missing {path} — run "
                 f"`genoc bench --json` first")
    record = json.loads(path.read_text())
    if field not in record:
        sys.exit(f"check_bench_guard: {path} has no '{field}' field")
    return float(record[field])


def ns_per_op(directory: pathlib.Path, name: str) -> float:
    return bench_field(directory, name, "ns_per_op")


def parse_gate(spec: str, flag: str) -> tuple[str, float]:
    name, sep, value = spec.partition("=")
    if not sep or not name:
        sys.exit(f"check_bench_guard: {flag} expects NAME=VALUE, got "
                 f"'{spec}'")
    try:
        return name, float(value)
    except ValueError:
        sys.exit(f"check_bench_guard: {flag} value in '{spec}' is not a "
                 "number")


def check_absolute(directory: pathlib.Path, name: str, ceiling: float,
                   field: str, unit: str) -> bool:
    measured = bench_field(directory, name, field)
    print(f"{name}: {measured:,.0f} {unit} (ceiling {ceiling:,.0f} {unit})")
    if measured > ceiling:
        print(f"FAIL: {name} exceeds the absolute {field} ceiling")
        return False
    print(f"OK: {name} holds under the {field} ceiling")
    return True


def check_ratio(directory: pathlib.Path, fast_name: str, generic_name: str,
                limit_fraction: float, fail_hint: str) -> bool:
    fast = ns_per_op(directory, fast_name)
    generic = ns_per_op(directory, generic_name)
    limit = limit_fraction * generic
    ratio = generic / fast if fast > 0 else float("inf")
    print(f"{fast_name}: {fast:,.0f} ns/op, {generic_name}: "
          f"{generic:,.0f} ns/op ({ratio:.1f}x, limit {limit:,.0f} ns/op)")
    if fast > limit:
        print(f"FAIL: {fast_name} exceeds {limit_fraction:.0%} of the "
              f"generic baseline — {fail_hint}")
        return False
    print(f"OK: fast builder holds its >= {1 / limit_fraction:.0f}x "
          "advantage")
    return True


def check_depgraph(directory: pathlib.Path) -> bool:
    return check_ratio(directory, FAST, GENERIC, LIMIT_FRACTION,
                       "the per-destination builder re-quadraticized")


def check_cmesh(directory: pathlib.Path) -> bool:
    return check_ratio(directory, FAST_CMESH, GENERIC_CMESH,
                       CMESH_LIMIT_FRACTION,
                       "the id-native sweep lost its edge on the cmesh")


def check_campaign(directory: pathlib.Path) -> bool:
    return check_ratio(directory, DELTA_CAMPAIGN, REBUILD_CAMPAIGN,
                       CAMPAIGN_LIMIT_FRACTION,
                       "the fault-delta builder lost its edge over full "
                       "rebuilds")


def check_escape(directory: pathlib.Path, min_speedup: float) -> bool:
    parallel = ns_per_op(directory, ESCAPE_PARALLEL)
    sequential = ns_per_op(directory, ESCAPE_SEQUENTIAL)
    speedup = sequential / parallel if parallel > 0 else float("inf")
    print(f"{ESCAPE_PARALLEL}: {parallel:,.0f} ns/op, "
          f"{ESCAPE_SEQUENTIAL}: {sequential:,.0f} ns/op "
          f"({speedup:.2f}x, required >= {min_speedup:.2f}x)")
    if speedup < min_speedup:
        print(f"FAIL: the destination-sharded escape sweep is only "
              f"{speedup:.2f}x the sequential analysis — the parallel "
              "escape lane regressed")
        return False
    print("OK: sharded escape sweep beats the sequential analysis")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("directory", nargs="?", default="bench-results",
                        type=pathlib.Path)
    parser.add_argument("--escape-speedup", type=float, default=None,
                        metavar="X",
                        help="additionally require escape_parallel_64x64 to "
                             "be >= X times faster than the sequential "
                             "escape bench (use on multicore runners only)")
    parser.add_argument("--max-ns", action="append", default=[],
                        metavar="NAME=NS",
                        help="absolute ns_per_op ceiling for the named "
                             "benchmark (repeatable)")
    parser.add_argument("--max-rss-kb", action="append", default=[],
                        metavar="NAME=KB",
                        help="absolute max_rss_kb ceiling for the named "
                             "benchmark's artifact (repeatable)")
    parser.add_argument("--skip-ratios", action="store_true",
                        help="only evaluate the --max-ns/--max-rss-kb gates "
                             "(for filtered bench runs that did not produce "
                             "the ratio-guard artifacts)")
    args = parser.parse_args()

    ok = True
    if not args.skip_ratios:
        ok = check_depgraph(args.directory)
        ok = check_cmesh(args.directory) and ok
        ok = check_campaign(args.directory) and ok
        if args.escape_speedup is not None:
            ok = check_escape(args.directory, args.escape_speedup) and ok
    for spec in args.max_ns:
        name, ceiling = parse_gate(spec, "--max-ns")
        ok = check_absolute(args.directory, name, ceiling, "ns_per_op",
                            "ns/op") and ok
    for spec in args.max_rss_kb:
        name, ceiling = parse_gate(spec, "--max-rss-kb")
        ok = check_absolute(args.directory, name, ceiling, "max_rss_kb",
                            "KiB") and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
