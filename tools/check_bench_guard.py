#!/usr/bin/env python3
"""Perf regression guard for the dependency-graph builders.

Reads the BENCH_*.json artifacts `genoc bench --json` wrote into the given
directory and fails (exit 1) when depgraph_fast_8x8 is slower than 10% of
the depgraph_generic_8x8 oracle measured in the same run — i.e. when the
per-destination builder has lost its >= 10x advantage and re-quadraticized.

Usage: tools/check_bench_guard.py [bench-results-dir]
"""
import json
import pathlib
import sys

FAST = "depgraph_fast_8x8"
GENERIC = "depgraph_generic_8x8"
# The fast builder must finish within this fraction of the generic oracle's
# time. The measured ratio is ~15x (fast <= 0.07 * generic); 0.10 leaves
# room for runner noise without letting a real regression through.
LIMIT_FRACTION = 0.10


def ns_per_op(directory: pathlib.Path, name: str) -> float:
    path = directory / f"BENCH_{name}.json"
    if not path.is_file():
        sys.exit(f"check_bench_guard: missing {path} — run "
                 f"`genoc bench --json --filter depgraph` first")
    return float(json.loads(path.read_text())["ns_per_op"])


def main() -> int:
    directory = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else
                             "bench-results")
    fast = ns_per_op(directory, FAST)
    generic = ns_per_op(directory, GENERIC)
    limit = LIMIT_FRACTION * generic
    ratio = generic / fast if fast > 0 else float("inf")
    print(f"{FAST}: {fast:,.0f} ns/op, {GENERIC}: {generic:,.0f} ns/op "
          f"({ratio:.1f}x, limit {limit:,.0f} ns/op)")
    if fast > limit:
        print(f"FAIL: {FAST} exceeds {LIMIT_FRACTION:.0%} of the generic "
              "baseline — the per-destination builder re-quadraticized")
        return 1
    print("OK: fast builder holds its >= 10x advantage")
    return 0


if __name__ == "__main__":
    sys.exit(main())
