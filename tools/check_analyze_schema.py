#!/usr/bin/env python3
"""Schema validation for `genoc analyze ... --json` artifacts.

Validates the schema-versioned report the static model analyzer emits: the
top-level envelope, every per-instance row, the typed per-rule stats and
Diagnostic records. CI runs this over the `analyze --all --json` artifact of
every matrix job so a field rename or shape change fails the build instead
of silently breaking the fault-campaign tooling that pre-screens variants
through the analyzer.

Usage: tools/check_analyze_schema.py report.json [--require-clean]
"""
import argparse
import json
import pathlib
import sys

SCHEMA_VERSION = 1

SEVERITIES = {"info", "warning", "error"}

# The registered rule names, in registry order. A report may select a
# subset via --rules, but may never contain an unknown name.
KNOWN_RULES = ("spec_sanity", "dead_ports", "turns", "uniformity",
               "fault_sanity", "connectivity",
               "totality", "escape")

TOP_LEVEL = {
    "command": str,
    "schema_version": int,
    "mode": str,
    "rules": list,
    "instances_total": int,
    "all_clean": bool,
    "findings_total": int,
    "metrics": dict,
    "instances": list,
}

INSTANCE_ROW = {
    "instance": str,
    "spec": str,
    "topology": str,
    "routing": str,
    "nodes": int,
    "ports": int,
    "clean": bool,
    "findings": int,
    "checks": int,
    "wall_ms": (int, float),
    "rules": list,
    "diagnostics": list,
}

RULE_ROW = {
    "stage": str,
    "ran": bool,
    "passed": bool,
    "skip_reason": str,
    "checks": int,
    "wall_ms": (int, float),
    "cpu_ms": (int, float),
}

DIAGNOSTIC_ROW = {
    "stage": str,
    "severity": str,
    "code": str,
    "message": str,
    "witness": dict,
}


def fail(context: str, message: str) -> None:
    sys.exit(f"check_analyze_schema: {context}: {message}")


def check_fields(obj: dict, spec: dict, context: str) -> None:
    if not isinstance(obj, dict):
        fail(context, f"expected an object, got {type(obj).__name__}")
    for key, kind in spec.items():
        if key not in obj:
            fail(context, f"missing field '{key}'")
        value = obj[key]
        # bool is an int subclass in Python; keep the kinds strict.
        if kind is int and isinstance(value, bool):
            fail(context, f"field '{key}' is a bool, wanted an integer")
        if not isinstance(value, kind):
            fail(context, f"field '{key}' has type {type(value).__name__}")


def check_instance_row(row: dict, selected: list, context: str) -> None:
    """One AnalyzeReport row: header fields, per-rule stats matching the
    envelope's rule selection, typed diagnostics from selected rules only."""
    check_fields(row, INSTANCE_ROW, context)
    if [r["stage"] for r in row["rules"] if isinstance(r, dict)
            and "stage" in r] != selected:
        fail(context, "per-instance rule stats do not match the envelope's "
                      "rule selection (names and order must agree)")
    for j, rule in enumerate(row["rules"]):
        check_fields(rule, RULE_ROW, f"{context}.rules[{j}]")
        if rule["ran"] and rule["skip_reason"]:
            fail(f"{context}.rules[{j}]",
                 "a rule that ran must not carry a skip_reason")
    findings = 0
    for j, diagnostic in enumerate(row["diagnostics"]):
        check_fields(diagnostic, DIAGNOSTIC_ROW,
                     f"{context}.diagnostics[{j}]")
        if diagnostic["severity"] not in SEVERITIES:
            fail(f"{context}.diagnostics[{j}]",
                 f"unknown severity '{diagnostic['severity']}'")
        if diagnostic["stage"] not in selected:
            fail(f"{context}.diagnostics[{j}]",
                 f"diagnostic from unselected rule '{diagnostic['stage']}'")
        if not diagnostic["code"]:
            fail(f"{context}.diagnostics[{j}]", "empty diagnostic code")
        for key, value in diagnostic["witness"].items():
            if not isinstance(value, str):
                fail(f"{context}.diagnostics[{j}]",
                     f"witness '{key}' is not a string")
        findings += diagnostic["severity"] != "info"
    if findings != row["findings"]:
        fail(context, f"findings counter says {row['findings']}, the "
                      f"diagnostics array holds {findings} warning/error "
                      "records")
    if row["clean"] != (findings == 0):
        fail(context, "clean flag contradicts the findings count")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", type=pathlib.Path)
    parser.add_argument("--require-clean", action="store_true",
                        help="additionally fail when any analyzed instance "
                             "has findings (the registry-presets CI gate)")
    args = parser.parse_args()

    try:
        doc = json.loads(args.report.read_text())
    except (OSError, json.JSONDecodeError) as error:
        fail(str(args.report), f"unreadable or invalid JSON: {error}")

    check_fields(doc, TOP_LEVEL, "top level")
    if doc["schema_version"] != SCHEMA_VERSION:
        fail("top level", f"schema_version {doc['schema_version']}, this "
                          f"validator speaks {SCHEMA_VERSION}")
    if doc["command"] != "analyze":
        fail("top level", f"command '{doc['command']}', wanted 'analyze'")
    if doc["mode"] not in ("all", "instance"):
        fail("top level", f"unknown mode '{doc['mode']}'")
    if len(doc["instances"]) != doc["instances_total"]:
        fail("top level", "instances_total does not match the array length")
    selected = doc["rules"]
    for name in selected:
        if name not in KNOWN_RULES:
            fail("top level", f"unknown rule '{name}' in the selection")
    if len(set(selected)) != len(selected):
        fail("top level", "duplicate rule in the selection")
    if not selected:
        fail("top level", "empty rule selection")

    findings_total = 0
    for i, row in enumerate(doc["instances"]):
        check_instance_row(row, selected, f"instances[{i}]")
        findings_total += row["findings"]
    if findings_total != doc["findings_total"]:
        fail("top level", f"findings_total says {doc['findings_total']}, "
                          f"the rows sum to {findings_total}")
    if doc["all_clean"] != (findings_total == 0):
        fail("top level", "all_clean contradicts the per-row findings")
    if "analyze.runs" not in doc["metrics"].get("counters", {}):
        fail("metrics", "counters are missing 'analyze.runs'")

    if args.require_clean and not doc["all_clean"]:
        dirty = [row["instance"] for row in doc["instances"]
                 if not row["clean"]]
        fail("top level", f"--require-clean: findings on {dirty}")

    print(f"check_analyze_schema: OK — schema_version {SCHEMA_VERSION}, "
          f"{doc['instances_total']} instances, {len(selected)} rules, "
          f"{findings_total} findings"
          + (", all clean" if doc["all_clean"] else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
