#include "analyze/analyzer.hpp"

#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"
#include "verify/artifacts.hpp"

namespace genoc {

namespace {

std::string join_names(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) {
      joined += ", ";
    }
    joined += name;
  }
  return joined;
}

}  // namespace

Analyzer::Analyzer(std::vector<const AnalysisRule*> rules)
    : rules_(std::move(rules)) {}

const std::vector<std::string>& Analyzer::default_rule_names() {
  static const std::vector<std::string> names = RuleRegistry::global().names();
  return names;
}

const Analyzer& Analyzer::standard() {
  static const Analyzer analyzer(RuleRegistry::global().rules());
  return analyzer;
}

const std::vector<std::string>& Analyzer::cheap_rule_names() {
  static const std::vector<std::string> names = {"spec_sanity", "dead_ports",
                                                 "turns", "uniformity"};
  return names;
}

const Analyzer& Analyzer::cheap() {
  static const Analyzer analyzer = [] {
    std::string error;
    std::optional<Analyzer> built = from_rule_names(cheap_rule_names(), &error);
    GENOC_REQUIRE(built.has_value(), "cheap analyzer must build: " + error);
    return *std::move(built);
  }();
  return analyzer;
}

std::optional<Analyzer> Analyzer::from_rule_names(
    const std::vector<std::string>& names, std::string* error) {
  if (names.empty()) {
    if (error != nullptr) {
      *error = "empty rule selection";
    }
    return std::nullopt;
  }
  const RuleRegistry& registry = RuleRegistry::global();
  std::vector<const AnalysisRule*> selected;
  selected.reserve(names.size());
  for (const std::string& name : names) {
    const AnalysisRule* rule = registry.find(name);
    if (rule == nullptr) {
      if (error != nullptr) {
        *error = "unknown analysis rule '" + name +
                 "'; registered rules: " + join_names(registry.names());
      }
      return std::nullopt;
    }
    for (const AnalysisRule* earlier : selected) {
      if (earlier == rule) {
        if (error != nullptr) {
          *error = "duplicate analysis rule '" + name + "' in the selection";
        }
        return std::nullopt;
      }
    }
    selected.push_back(rule);
  }
  return Analyzer(std::move(selected));
}

std::vector<std::string> Analyzer::rule_names() const {
  std::vector<std::string> names;
  names.reserve(rules_.size());
  for (const AnalysisRule* rule : rules_) {
    names.emplace_back(rule->name());
  }
  return names;
}

AnalyzeReport Analyzer::run(const InstanceSpec& spec, const Topology& topology,
                            const RoutingFunction& routing,
                            const RoutingFunction* escape,
                            const AnalyzeOptions& options) const {
  obs::TraceSpan run_span("analyze");
  Stopwatch timer;

  AnalyzeReport report;
  report.instance = spec.name.empty() ? to_spec_string(spec) : spec.name;
  report.spec = to_spec_string(spec);
  report.topology = topology.family();
  report.routing = routing.name();
  report.nodes = topology.node_count();
  report.ports = topology.port_count();
  report.rules.reserve(rules_.size());

  AnalyzeContext ctx{spec, topology, routing, escape, options, report};
  for (const AnalysisRule* rule : rules_) {
    obs::TraceSpan rule_span(rule->name());
    Stopwatch rule_timer;
    CpuStopwatch rule_cpu;
    StageStats stats = rule->run(ctx);
    stats.wall_ms = rule_timer.elapsed_ms();
    stats.cpu_ms = rule_cpu.elapsed_ms();
    report.checks += stats.checks;
    report.rules.push_back(std::move(stats));
  }
  report.wall_ms = timer.elapsed_ms();

  {
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
    static obs::Counter& runs = metrics.counter("analyze.runs");
    static obs::Counter& rules_run = metrics.counter("analyze.rules_run");
    static obs::Counter& checks = metrics.counter("analyze.checks");
    static obs::Counter& findings = metrics.counter("analyze.findings");
    runs.add(1);
    checks.add(report.checks);
    findings.add(report.findings());
    std::uint64_t ran = 0;
    for (const StageStats& stats : report.rules) {
      ran += stats.ran ? 1 : 0;
    }
    rules_run.add(ran);
  }
  return report;
}

AnalyzeReport Analyzer::run(const InstanceSpec& spec,
                            AnalysisArtifacts& artifacts,
                            const AnalyzeOptions& options) const {
  return run(spec, artifacts.topology(), artifacts.routing(),
             artifacts.escape_routing(), options);
}

AnalyzeReport Analyzer::run(const InstanceSpec& spec,
                            const AnalyzeOptions& options) const {
  AnalysisArtifacts artifacts(spec);
  return run(spec, artifacts, options);
}

}  // namespace genoc
