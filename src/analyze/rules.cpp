/// \file rules.cpp
/// \brief The built-in analyzer rules: spec sanity, dead-port detection,
///        turn-model conformance, the node-uniformity audit, routing
///        totality/minimality, and escape-lane coverage.
///
/// Every rule is a static lint over the model constituents: read-only,
/// deterministic, budget-bounded (destination sampling with a fixed
/// stride), and emitting the same typed Diagnostic records as the verify
/// pipeline — with stable codes, so tests and tooling match on the code,
/// never on message text.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analyze/rule.hpp"
#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "routing/turns.hpp"
#include "topology/mesh.hpp"
#include "topology/port.hpp"

namespace genoc {

namespace {

Diagnostic make_diagnostic(
    const char* rule, Severity severity, std::string code, std::string message,
    std::vector<std::pair<std::string, std::string>> witness = {}) {
  Diagnostic diag;
  diag.stage = rule;
  diag.severity = severity;
  diag.code = std::move(code);
  diag.message = std::move(message);
  diag.witness = std::move(witness);
  return diag;
}

/// Deterministic destination stride: visiting every stride-th destination
/// keeps count * cost_per within \p budget. Stride 1 == exhaustive.
std::size_t stride_for(std::size_t count, std::uint64_t cost_per,
                       std::uint64_t budget) {
  const std::uint64_t total = static_cast<std::uint64_t>(count) * cost_per;
  if (count == 0 || budget == 0 || total <= budget) {
    return 1;
  }
  return static_cast<std::size_t>((total + budget - 1) / budget);
}

/// Wrap-aware hop distance between two nodes of a grid (the metric a
/// minimal routing must strictly decrease).
std::int64_t grid_distance(const Mesh2D& mesh, const Port& a, const Port& b) {
  std::int64_t dx = std::abs(static_cast<std::int64_t>(a.x) - b.x);
  std::int64_t dy = std::abs(static_cast<std::int64_t>(a.y) - b.y);
  if (mesh.wraps_x()) {
    dx = std::min(dx, mesh.width() - dx);
  }
  if (mesh.wraps_y()) {
    dy = std::min(dy, mesh.height() - dy);
  }
  return dx + dy;
}

/// Rule 6 in registry order 1: structural spec lint. Contradictory or
/// vacuous key combinations become stable-coded diagnostics instead of
/// ad-hoc parse errors — and specs constructed programmatically (bypassing
/// parse_instance_spec) get validate_spec's complaints surfaced the same
/// way.
class SpecSanityRule final : public AnalysisRule {
 public:
  const char* name() const override { return "spec_sanity"; }
  const char* description() const override {
    return "lint the spec for contradictory keys: invalid field "
           "combinations, an escape lane on an expected-deadlock fixture, "
           "escape identical to the primary routing, empty workloads";
  }

  StageStats run(AnalyzeContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    stats.ran = true;
    const InstanceSpec& spec = ctx.spec;
    std::size_t findings = 0;
    const auto emit = [&](Severity severity, std::string code,
                          std::string message) {
      if (severity != Severity::kInfo) {
        ++findings;
      }
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), severity, std::move(code), std::move(message)));
    };

    // Re-run the cross-field validation: a spec built in code (tests,
    // future campaign generators) can carry combinations the parser would
    // have rejected.
    stats.checks = 1;
    if (const std::string complaint = validate_spec(spec);
        !complaint.empty()) {
      emit(Severity::kError, "sanity-invalid-spec", complaint);
    }
    ++stats.checks;
    if (!spec.escape.empty() && !spec.expect_deadlock_free) {
      emit(Severity::kWarning, "sanity-escape-expects-deadlock",
           "spec declares escape lane '" + spec.escape +
               "' yet registers expect=deadlock — an escape lane exists "
               "to make the instance deadlock-free");
    }
    ++stats.checks;
    if (!spec.escape.empty() && spec.escape == spec.routing) {
      emit(Severity::kWarning, "sanity-escape-redundant",
           "escape lane '" + spec.escape +
               "' is the primary routing itself — the lane adds no "
               "deadlock-free sub-network");
    }
    ++stats.checks;
    if (spec.messages == 0 || spec.flits == 0) {
      emit(Severity::kWarning, "sanity-empty-workload",
           "workload is empty (messages=" + std::to_string(spec.messages) +
               " flits=" + std::to_string(spec.flits) +
               ") — simulated verification rows would be vacuous");
    }
    if (!spec.expect_deadlock_free) {
      emit(Severity::kInfo, "sanity-negative-fixture",
           "registered negative fixture: a reproduced deadlock is the "
           "expected verdict");
    }
    stats.passed = findings == 0;
    if (stats.passed) {
      emit(Severity::kInfo, "sanity-ok", "spec is internally consistent");
    }
    return stats;
  }
};

/// Rule 2: dead/unreachable port detection over the Topology port graph
/// alone (routing-agnostic): forward BFS from the terminal IN ports over
/// {in-port -> every out-port of its node, out-port -> link target} and
/// backward BFS from the terminal OUT ports over the inverse relation.
/// O(ports); no sampling.
class DeadPortsRule final : public AnalysisRule {
 public:
  const char* name() const override { return "dead_ports"; }
  const char* description() const override {
    return "flag ports no injection can ever reach (port-unreachable) and "
           "ports from which no ejection is reachable (port-dead-end), "
           "over the topology port graph";
  }

  StageStats run(AnalyzeContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    stats.ran = true;
    const Topology& topo = ctx.topology;
    const std::size_t ports = topo.port_count();
    const std::size_t names = topo.name_count();
    std::vector<char> forward(ports, 0);
    std::vector<char> backward(ports, 0);
    std::vector<PortId> queue;
    queue.reserve(ports);

    const auto visit = [&queue](std::vector<char>& seen, PortId pid) {
      if (pid != kInvalidPort && !seen[pid]) {
        seen[pid] = 1;
        queue.push_back(pid);
      }
    };

    for (const PortId source : topo.source_ids()) {
      visit(forward, source);
    }
    while (!queue.empty()) {
      const PortId pid = queue.back();
      queue.pop_back();
      if (topo.dir_of(pid) == Direction::kIn) {
        const PortId* slots = topo.node_slots(topo.node_of(pid));
        for (std::size_t n = 0; n < names; ++n) {
          visit(forward, slots[n * 2 + static_cast<std::size_t>(
                                           Direction::kOut)]);
        }
      } else {
        visit(forward, topo.link_target(pid));
      }
    }

    for (const PortId dest : topo.destination_ids()) {
      visit(backward, dest);
    }
    while (!queue.empty()) {
      const PortId pid = queue.back();
      queue.pop_back();
      if (topo.dir_of(pid) == Direction::kOut) {
        const PortId* slots = topo.node_slots(topo.node_of(pid));
        for (std::size_t n = 0; n < names; ++n) {
          visit(backward,
                slots[n * 2 + static_cast<std::size_t>(Direction::kIn)]);
        }
      } else {
        visit(backward, topo.link_source(pid));
      }
    }

    std::uint64_t unreachable = 0;
    std::uint64_t dead_ends = 0;
    for (PortId pid = 0; pid < ports; ++pid) {
      stats.checks += 2;
      if (!forward[pid] && ++unreachable <= ctx.options.max_findings_per_code) {
        ctx.report.diagnostics.push_back(make_diagnostic(
            name(), Severity::kWarning, "port-unreachable",
            "port " + topo.port_label(pid) +
                " is unreachable from every injection port",
            {{"port", topo.port_label(pid)}}));
      }
      if (!backward[pid] && ++dead_ends <= ctx.options.max_findings_per_code) {
        ctx.report.diagnostics.push_back(make_diagnostic(
            name(), Severity::kWarning, "port-dead-end",
            "no ejection port is reachable from port " + topo.port_label(pid),
            {{"port", topo.port_label(pid)}}));
      }
    }
    stats.passed = unreachable == 0 && dead_ends == 0;
    if (stats.passed) {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kInfo, "ports-live",
          "all " + std::to_string(ports) +
              " ports lie on some injection-to-ejection path",
          {{"ports", std::to_string(ports)}}));
    } else {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kWarning, "dead-ports-found",
          std::to_string(unreachable) + " unreachable and " +
              std::to_string(dead_ends) + " dead-end ports",
          {{"unreachable", std::to_string(unreachable)},
           {"dead_ends", std::to_string(dead_ends)}}));
    }
    return stats;
  }
};

/// Rule 3: turn-model conformance. Enumerates the turns the routing
/// actually emits on closure-reachable states (travel direction = opposite
/// of the in-port name) and lints them against the discipline's static
/// prohibited-turn set from routing/turns.hpp. Destination-sampled.
class TurnConformanceRule final : public AnalysisRule {
 public:
  const char* name() const override { return "turns"; }
  const char* description() const override {
    return "check that a turn-model/dimension-order routing never emits a "
           "prohibited turn on any reachable state (static turn-set lint)";
  }

  StageStats run(AnalyzeContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    const Mesh2D* mesh = ctx.routing.grid();
    if (mesh == nullptr || !has_turn_discipline(ctx.spec.routing)) {
      stats.ran = false;
      stats.passed = true;
      stats.skip_reason = "routing '" + ctx.spec.routing +
                          "' has no static turn discipline to lint";
      return stats;
    }
    stats.ran = true;
    const Topology& topo = ctx.topology;
    const RoutingFunction& routing = ctx.routing;
    const std::size_t dests = topo.destination_count();
    const std::size_t stride =
        stride_for(dests, topo.port_count(), ctx.options.state_budget);
    const std::size_t words = routing.closure_row_words();
    ClosureRowScratch scratch;
    std::vector<PortId> hops;
    std::vector<Port> port_scratch;
    std::uint64_t violations = 0;

    for (std::size_t d = 0; d < dests; d += stride) {
      const std::uint64_t* row = routing.closure_row(d, scratch);
      const PortId dest_id = topo.destination_id(d);
      const Port dest = mesh->port(dest_id);
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = row[w];
        while (bits != 0) {
          const PortId pid =
              static_cast<PortId>(w * 64 + std::countr_zero(bits));
          bits &= bits - 1;
          if (pid == dest_id || topo.dir_of(pid) != Direction::kIn) {
            continue;
          }
          const Port in = mesh->port(pid);
          if (in.name == PortName::kLocal) {
            continue;  // injection is not a turn
          }
          const PortName travel = opposite(in.name);
          hops.clear();
          routing.next_hop_ids_into(pid, d, hops, port_scratch);
          ++stats.checks;
          for (const PortId hop : hops) {
            if (topo.dir_of(hop) != Direction::kOut ||
                topo.node_of(hop) != topo.node_of(pid)) {
              continue;
            }
            const Port out = mesh->port(hop);
            if (out.name == PortName::kLocal ||
                !turn_prohibited(ctx.spec.routing, in.x, travel, out.name)) {
              continue;
            }
            ++violations;
            if (violations <= ctx.options.max_findings_per_code) {
              ctx.report.diagnostics.push_back(make_diagnostic(
                  name(), Severity::kError,
                  out.name == opposite(travel) ? "turn-reversal"
                                               : "turn-prohibited",
                  std::string("prohibited ") + port_name_letter(travel) +
                      "->" + port_name_letter(out.name) + " turn at " +
                      to_string(in) + " routing to " + to_string(dest),
                  {{"in_port", to_string(in)},
                   {"out_port", to_string(out)},
                   {"destination", to_string(dest)},
                   {"travel", std::string(1, port_name_letter(travel))},
                   {"column", std::to_string(in.x)}}));
            }
          }
        }
      }
    }
    stats.passed = violations == 0;
    if (stats.passed) {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kInfo, "turns-conform",
          "no prohibited turn over " + std::to_string(stats.checks) +
              " reachable states (" + ctx.spec.routing + " discipline)",
          {{"states", std::to_string(stats.checks)},
           {"discipline", ctx.spec.routing}}));
    } else {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kError, "turns-violated",
          std::to_string(violations) + " prohibited turns emitted (" +
              ctx.spec.routing + " discipline)",
          {{"violations", std::to_string(violations)}}));
    }
    return stats;
  }
};

/// Rule 4: the node-uniformity audit. A routing claiming node_uniform()
/// feeds the zero-storage closure tier and the NODE-mode sweeps, where a
/// wrong claim silently corrupts every downstream artifact — so
/// cross-check out_mask_id() against next_hop_ids from EVERY in-port of
/// sampled (node, destination) pairs. The contract covers all pairs, not
/// just closure-reachable ones (the sweeps evaluate masks off-route too).
class UniformityRule final : public AnalysisRule {
 public:
  const char* name() const override { return "uniformity"; }
  const char* description() const override {
    return "audit a node_uniform() claim: the per-node out-mask must equal "
           "the hop set from every in-port of the node (protects the "
           "zero-storage closure tier)";
  }

  StageStats run(AnalyzeContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    if (!ctx.routing.node_uniform()) {
      stats.ran = false;
      stats.passed = true;
      stats.skip_reason =
          "routing does not claim node-uniformity (port-mode closure)";
      return stats;
    }
    stats.ran = true;
    const Topology& topo = ctx.topology;
    const RoutingFunction& routing = ctx.routing;
    const std::size_t dests = topo.destination_count();
    const std::size_t nodes = topo.node_count();
    const std::size_t names = topo.name_count();
    const std::size_t stride = stride_for(
        dests, static_cast<std::uint64_t>(nodes) * names,
        ctx.options.uniformity_budget);
    std::vector<PortId> expected;
    std::vector<PortId> actual;
    std::vector<Port> port_scratch;
    std::uint64_t violations = 0;

    for (std::size_t d = 0; d < dests; d += stride) {
      for (std::size_t node = 0; node < nodes; ++node) {
        std::uint64_t mask =
            routing.out_mask_id(node, d) & topo.out_exists_mask(node);
        expected.clear();
        while (mask != 0) {
          const std::size_t name_index =
              static_cast<std::size_t>(std::countr_zero(mask));
          mask &= mask - 1;
          const PortId out = topo.slot_id(node, name_index, Direction::kOut);
          if (out != kInvalidPort) {
            expected.push_back(out);
          }
        }
        std::sort(expected.begin(), expected.end());
        const PortId* slots = topo.node_slots(node);
        for (std::size_t name_index = 0; name_index < names; ++name_index) {
          const PortId in =
              slots[name_index * 2 + static_cast<std::size_t>(Direction::kIn)];
          if (in == kInvalidPort) {
            continue;
          }
          actual.clear();
          routing.next_hop_ids_into(in, d, actual, port_scratch);
          std::sort(actual.begin(), actual.end());
          ++stats.checks;
          if (actual == expected) {
            continue;
          }
          ++violations;
          if (violations <= ctx.options.max_findings_per_code) {
            ctx.report.diagnostics.push_back(make_diagnostic(
                name(), Severity::kError, "uniformity-violated",
                "hop set from " + topo.port_label(in) + " toward " +
                    topo.port_label(topo.destination_id(d)) +
                    " differs from the node's claimed out-mask",
                {{"in_port", topo.port_label(in)},
                 {"destination", topo.port_label(topo.destination_id(d))},
                 {"node", topo.node_label(node)},
                 {"mask_hops", std::to_string(expected.size())},
                 {"in_port_hops", std::to_string(actual.size())}}));
          }
        }
      }
    }
    stats.passed = violations == 0;
    if (stats.passed) {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kInfo, "uniformity-audited",
          "node-uniformity claim holds on " + std::to_string(stats.checks) +
              " sampled (in-port, destination) pairs",
          {{"pairs", std::to_string(stats.checks)}}));
    } else {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kError, "uniformity-refuted",
          std::to_string(violations) +
              " (in-port, destination) pairs contradict the node_uniform() "
              "claim — the zero-storage closure tier would be corrupt",
          {{"violations", std::to_string(violations)}}));
    }
    return stats;
  }
};

/// Rule 5: routing totality and progress. Every closure-reachable
/// (port, destination) state must yield at least one next hop (a stuck
/// message is a modelling bug Theorem 1 never sees — the dependency graph
/// simply lacks the edge), and a routing claiming is_minimal() must
/// strictly decrease the wrap-aware hop distance on every emitted grid
/// hop. Destination-sampled.
class TotalityRule final : public AnalysisRule {
 public:
  const char* name() const override { return "totality"; }
  const char* description() const override {
    return "every reachable (port, destination) state yields >= 1 next "
           "hop, and minimal routings strictly decrease hop distance";
  }

  StageStats run(AnalyzeContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    stats.ran = true;
    const Topology& topo = ctx.topology;
    const RoutingFunction& routing = ctx.routing;
    const Mesh2D* mesh = routing.grid();
    const bool check_minimal = mesh != nullptr && routing.is_minimal();
    const std::size_t dests = topo.destination_count();
    const std::size_t stride =
        stride_for(dests, topo.port_count(), ctx.options.state_budget);
    const std::size_t words = routing.closure_row_words();
    ClosureRowScratch scratch;
    std::vector<PortId> hops;
    std::vector<Port> port_scratch;
    std::uint64_t dead_ends = 0;
    std::uint64_t nonminimal = 0;
    const std::uint64_t cap = ctx.options.max_findings_per_code;

    for (std::size_t d = 0; d < dests; d += stride) {
      const std::uint64_t* row = routing.closure_row(d, scratch);
      const PortId dest_id = topo.destination_id(d);
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = row[w];
        while (bits != 0) {
          const PortId pid =
              static_cast<PortId>(w * 64 + std::countr_zero(bits));
          bits &= bits - 1;
          if (pid == dest_id) {
            continue;  // arrived
          }
          hops.clear();
          routing.next_hop_ids_into(pid, d, hops, port_scratch);
          ++stats.checks;
          if (hops.empty()) {
            ++dead_ends;
            if (dead_ends <= cap) {
              ctx.report.diagnostics.push_back(make_diagnostic(
                  name(), Severity::kError, "route-dead-end",
                  "reachable state (" + topo.port_label(pid) + ", " +
                      topo.port_label(dest_id) + ") yields no next hop",
                  {{"port", topo.port_label(pid)},
                   {"destination", topo.port_label(dest_id)}}));
            }
            continue;
          }
          if (!check_minimal || topo.dir_of(pid) != Direction::kIn) {
            continue;
          }
          const Port here = mesh->port(pid);
          const Port dest = mesh->port(dest_id);
          const std::int64_t before = grid_distance(*mesh, here, dest);
          for (const PortId hop : hops) {
            if (topo.dir_of(hop) != Direction::kOut ||
                topo.node_of(hop) != topo.node_of(pid)) {
              continue;
            }
            const PortId next = topo.link_target(hop);
            if (next == kInvalidPort) {
              continue;  // terminal hop: delivery
            }
            const std::int64_t after =
                grid_distance(*mesh, mesh->port(next), dest);
            if (after >= before) {
              ++nonminimal;
              if (nonminimal <= cap) {
                ctx.report.diagnostics.push_back(make_diagnostic(
                    name(), Severity::kError, "route-nonminimal",
                    "hop " + topo.port_label(pid) + " -> " +
                        topo.port_label(hop) + " toward " +
                        topo.port_label(dest_id) +
                        " does not decrease hop distance (" +
                        std::to_string(before) + " -> " +
                        std::to_string(after) +
                        ") yet the routing claims is_minimal()",
                    {{"port", topo.port_label(pid)},
                     {"hop", topo.port_label(hop)},
                     {"destination", topo.port_label(dest_id)},
                     {"distance_before", std::to_string(before)},
                     {"distance_after", std::to_string(after)}}));
              }
            }
          }
        }
      }
    }
    stats.passed = dead_ends == 0 && nonminimal == 0;
    if (stats.passed) {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kInfo, "totality-holds",
          "all " + std::to_string(stats.checks) +
              " sampled reachable states progress" +
              (check_minimal ? " and strictly decrease hop distance" : ""),
          {{"states", std::to_string(stats.checks)},
           {"minimality_checked", check_minimal ? "true" : "false"}}));
    } else {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kError, "totality-violated",
          std::to_string(dead_ends) + " dead-end and " +
              std::to_string(nonminimal) + " non-minimal states",
          {{"dead_ends", std::to_string(dead_ends)},
           {"nonminimal", std::to_string(nonminimal)}}));
    }
    return stats;
  }
};

/// Rule 6: escape-lane coverage. An `escape=` spec promises a connected,
/// deadlock-free sub-network: the escape routing's OWN dependency graph
/// must be acyclic (the Duato precondition the verify stage assumes), and
/// every node must select at least one existing escape out-port toward
/// every sampled destination (coverage/connectivity).
class EscapeCoverageRule final : public AnalysisRule {
 public:
  const char* name() const override { return "escape"; }
  const char* description() const override {
    return "escape= lanes declare a connected deadlock-free sub-network: "
           "acyclic escape dependency graph + full node coverage toward "
           "sampled destinations";
  }

  StageStats run(AnalyzeContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    if (ctx.escape == nullptr) {
      stats.ran = false;
      stats.passed = true;
      stats.skip_reason = "spec declares no escape lane";
      return stats;
    }
    stats.ran = true;
    const Topology& topo = ctx.topology;
    const RoutingFunction& escape = *ctx.escape;
    std::size_t findings = 0;

    const PortDepGraph dep = build_dep_graph_fast(escape);
    stats.checks += dep.graph.edge_count();
    const std::optional<CycleWitness> cycle = find_cycle(dep.graph);
    if (cycle.has_value()) {
      ++findings;
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kError, "escape-cyclic",
          "escape lane '" + escape.name() +
              "' has a cyclic dependency graph (length " +
              std::to_string(cycle->size()) +
              ") — it is no deadlock-free sub-network",
          {{"cycle_length", std::to_string(cycle->size())},
           {"through", dep.label(cycle->front())}}));
    }

    std::uint64_t uncovered = 0;
    if (escape.node_uniform()) {
      const std::size_t dests = topo.destination_count();
      const std::size_t nodes = topo.node_count();
      const std::size_t stride =
          stride_for(dests, nodes, ctx.options.state_budget);
      for (std::size_t d = 0; d < dests; d += stride) {
        for (std::size_t node = 0; node < nodes; ++node) {
          ++stats.checks;
          const std::uint64_t mask =
              escape.out_mask_id(node, d) & topo.out_exists_mask(node);
          if (mask != 0) {
            continue;
          }
          ++uncovered;
          if (uncovered <= ctx.options.max_findings_per_code) {
            ctx.report.diagnostics.push_back(make_diagnostic(
                name(), Severity::kError, "escape-partial",
                "escape lane selects no existing out-port at node " +
                    topo.node_label(node) + " toward " +
                    topo.port_label(topo.destination_id(d)),
                {{"node", topo.node_label(node)},
                 {"destination",
                  topo.port_label(topo.destination_id(d))}}));
          }
        }
      }
      findings += uncovered != 0 ? 1 : 0;
    }

    stats.passed = findings == 0;
    if (stats.passed) {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kInfo, "escape-covered",
          "escape lane '" + escape.name() +
              "' is acyclic and covers every sampled (node, destination) "
              "pair",
          {{"escape_edges", std::to_string(dep.graph.edge_count())}}));
    } else if (uncovered != 0) {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kError, "escape-uncovered",
          std::to_string(uncovered) +
              " (node, destination) pairs lack an escape out-port",
          {{"uncovered", std::to_string(uncovered)}}));
    }
    return stats;
  }
};

/// Rule 7: fault-set sanity. A spec's failed= set is the unit the fault
/// campaign enumerates over, so malformed sets deserve stable codes the
/// campaign can screen on instead of contract violations mid-sweep:
/// duplicate faults (the same physical link listed twice — the variant
/// would silently equal a smaller one), non-canonical tokens (the spec
/// names the link by its other directed endpoint, splitting the artifact
/// cache key space), and fault counts large enough that the variant is a
/// different network, not a degraded one.
class FaultSanityRule final : public AnalysisRule {
 public:
  const char* name() const override { return "fault_sanity"; }
  const char* description() const override {
    return "lint a failed= fault set: duplicate faults naming the same "
           "physical link, non-canonical link tokens, and fault counts "
           "past half the topology's links";
  }

  StageStats run(AnalyzeContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    const InstanceSpec& spec = ctx.spec;
    if (spec.failed_links.empty()) {
      stats.ran = false;
      stats.passed = true;
      stats.skip_reason = "spec declares no failed links";
      return stats;
    }
    if (!spec.is_grid()) {
      stats.ran = false;
      stats.passed = true;
      stats.skip_reason =
          "failed= is grid-only; spec_sanity carries the validation error";
      return stats;
    }
    stats.ran = true;
    std::size_t findings = 0;
    const auto emit = [&](Severity severity, std::string code,
                          std::string message,
                          std::vector<std::pair<std::string, std::string>>
                              witness) {
      if (severity != Severity::kInfo) {
        ++findings;
      }
      ctx.report.diagnostics.push_back(
          make_diagnostic(name(), severity, std::move(code),
                          std::move(message), std::move(witness)));
    };

    const bool wrap_x = spec.wrap_x();
    const bool wrap_y = spec.wrap_y();
    std::vector<std::string> canonical;
    canonical.reserve(spec.failed_links.size());
    for (const std::string& token : spec.failed_links) {
      ++stats.checks;
      std::string error;
      const std::optional<LinkFault> fault = parse_link_fault(token, &error);
      if (!fault.has_value() ||
          !link_fault_exists(*fault, spec.width, spec.height, wrap_x,
                             wrap_y)) {
        emit(Severity::kError, "sanity-fault-invalid",
             "failed link '" + token + "' " +
                 (fault.has_value() ? "does not exist in a " +
                                          std::to_string(spec.width) + "x" +
                                          std::to_string(spec.height) +
                                          " topology"
                                    : error),
             {{"token", token}});
        continue;
      }
      const LinkFault canon = canonical_link_fault(
          *fault, spec.width, spec.height, wrap_x, wrap_y);
      const std::string canon_token = link_fault_token(canon);
      if (canon_token != token) {
        emit(Severity::kWarning, "sanity-fault-noncanonical",
             "failed link '" + token + "' names its link by the "
             "non-canonical directed endpoint (canonical: '" +
                 canon_token + "') — canonicalize so equal fault sets "
                 "share one artifact key",
             {{"token", token}, {"canonical", canon_token}});
      }
      canonical.push_back(canon_token);
    }

    std::sort(canonical.begin(), canonical.end());
    std::uint64_t duplicates = 0;
    for (std::size_t i = 1; i < canonical.size(); ++i) {
      ++stats.checks;
      if (canonical[i] == canonical[i - 1]) {
        ++duplicates;
        if (duplicates <= ctx.options.max_findings_per_code) {
          emit(Severity::kError, "sanity-fault-duplicate",
               "failed link '" + canonical[i] +
                   "' is listed more than once — the variant silently "
                   "equals the deduplicated fault set",
               {{"token", canonical[i]}});
        }
      }
    }

    // Fault budget: past half the links the variant is a different network,
    // not a degraded one, and campaign statistics over it mislead.
    const std::int64_t width = spec.width;
    const std::int64_t height = spec.height;
    const std::int64_t total_links = (wrap_x ? width : width - 1) * height +
                                     (wrap_y ? height : height - 1) * width;
    ++stats.checks;
    const std::size_t distinct =
        static_cast<std::size_t>(std::unique(canonical.begin(),
                                             canonical.end()) -
                                 canonical.begin());
    if (total_links > 0 &&
        distinct > static_cast<std::size_t>(total_links) / 2) {
      emit(Severity::kWarning, "sanity-fault-count",
           std::to_string(distinct) + " distinct failed links exceed half "
           "of the topology's " + std::to_string(total_links) +
               " links — the variant is a different network, not a "
               "degraded one",
           {{"faults", std::to_string(distinct)},
            {"links", std::to_string(total_links)}});
    }

    stats.passed = findings == 0;
    if (stats.passed) {
      emit(Severity::kInfo, "sanity-fault-ok",
           "fault set is canonical and duplicate-free (" +
               std::to_string(distinct) + " distinct links)",
           {{"faults", std::to_string(distinct)}});
    }
    return stats;
  }
};

/// Rule 8: connectivity under faults. dead_ports runs its BFS from ALL
/// injection ports jointly, so a network SPLIT by failed links — each half
/// with its own sources and sinks — still shows every port live. This rule
/// asks the campaign's question instead: are all terminal nodes in one
/// component of the surviving link graph (`net-disconnected` screens the
/// variant — the deadlock question is ill-posed on a shattered network),
/// and does the routing still select an existing out-port toward every
/// destination (`route-disconnected`, a WARNING: a minimal routing
/// strands traffic at a fault but the deadlock verdict on what it does
/// route stays well-posed).
class ConnectivityRule final : public AnalysisRule {
 public:
  const char* name() const override { return "connectivity"; }
  const char* description() const override {
    return "failed links must leave all terminal nodes in one connected "
           "component (net-disconnected screens the variant); flags nodes "
           "whose routing selects no surviving out-port toward some "
           "destination (route-disconnected)";
  }

  StageStats run(AnalyzeContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    stats.ran = true;
    const Topology& topo = ctx.topology;
    const std::size_t nodes = topo.node_count();
    const std::size_t names = topo.name_count();

    // Node-level BFS over surviving links. Links are removed in pairs
    // (both directions of a channel), so the node graph is symmetric and
    // one BFS from any terminal node decides mutual connectivity.
    std::vector<char> terminal(nodes, 0);
    for (const PortId source : topo.source_ids()) {
      terminal[topo.node_of(source)] = 1;
    }
    for (const PortId dest : topo.destination_ids()) {
      terminal[topo.node_of(dest)] = 1;
    }
    std::vector<char> seen(nodes, 0);
    std::vector<std::size_t> queue;
    queue.reserve(nodes);
    for (std::size_t node = 0; node < nodes; ++node) {
      if (terminal[node]) {
        seen[node] = 1;
        queue.push_back(node);
        break;
      }
    }
    while (!queue.empty()) {
      const std::size_t node = queue.back();
      queue.pop_back();
      const PortId* slots = topo.node_slots(node);
      for (std::size_t n = 0; n < names; ++n) {
        const PortId out =
            slots[n * 2 + static_cast<std::size_t>(Direction::kOut)];
        if (out == kInvalidPort) {
          continue;
        }
        ++stats.checks;
        const PortId target = topo.link_target(out);
        if (target == kInvalidPort) {
          continue;  // terminal out-port: ejection, not a link
        }
        const std::size_t next = topo.node_of(target);
        if (!seen[next]) {
          seen[next] = 1;
          queue.push_back(next);
        }
      }
    }
    std::uint64_t disconnected = 0;
    for (std::size_t node = 0; node < nodes; ++node) {
      if (!terminal[node] || seen[node]) {
        continue;
      }
      ++disconnected;
      if (disconnected <= ctx.options.max_findings_per_code) {
        ctx.report.diagnostics.push_back(make_diagnostic(
            name(), Severity::kError, "net-disconnected",
            "terminal node " + topo.node_label(node) +
                " is cut off from the rest of the network by the failed "
                "links",
            {{"node", topo.node_label(node)}}));
      }
    }

    // Routing-level coverage: node-uniform routings expose the exact local
    // test "does node n select any surviving out-port toward d". With
    // faults present only the fault-endpoint nodes can have lost coverage
    // (masks are position-based), so those are checked exhaustively over
    // every destination; fault-free models sample destinations instead.
    std::uint64_t uncovered = 0;
    if (ctx.routing.node_uniform()) {
      const std::size_t dests = topo.destination_count();
      const Mesh2D* mesh = ctx.routing.grid();
      std::vector<std::size_t> check_nodes;
      std::size_t stride = 1;
      if (mesh != nullptr && mesh->has_faults()) {
        for (const LinkFault& fault : mesh->failed_links()) {
          const LinkFault peer =
              link_fault_peer(fault, mesh->width(), mesh->height(),
                              mesh->wraps_x(), mesh->wraps_y());
          check_nodes.push_back(static_cast<std::size_t>(fault.node));
          check_nodes.push_back(static_cast<std::size_t>(peer.node));
        }
        std::sort(check_nodes.begin(), check_nodes.end());
        check_nodes.erase(
            std::unique(check_nodes.begin(), check_nodes.end()),
            check_nodes.end());
      } else {
        check_nodes.resize(nodes);
        for (std::size_t node = 0; node < nodes; ++node) {
          check_nodes[node] = node;
        }
        stride = stride_for(dests, nodes, ctx.options.state_budget);
      }
      for (std::size_t d = 0; d < dests; d += stride) {
        const PortId dest_id = topo.destination_id(d);
        const std::size_t dest_node = topo.node_of(dest_id);
        for (const std::size_t node : check_nodes) {
          if (node == dest_node) {
            continue;
          }
          ++stats.checks;
          const std::uint64_t mask =
              ctx.routing.out_mask_id(node, d) & topo.out_exists_mask(node);
          if (mask != 0) {
            continue;
          }
          ++uncovered;
          if (uncovered <= ctx.options.max_findings_per_code) {
            ctx.report.diagnostics.push_back(make_diagnostic(
                name(), Severity::kWarning, "route-disconnected",
                "routing selects no surviving out-port at node " +
                    topo.node_label(node) + " toward " +
                    topo.port_label(dest_id) +
                    " — traffic strands at the fault (deadlock verdict "
                    "on routed traffic stays well-posed)",
                {{"node", topo.node_label(node)},
                 {"destination", topo.port_label(dest_id)}}));
          }
        }
      }
    }

    stats.passed = disconnected == 0 && uncovered == 0;
    if (stats.passed) {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kInfo, "net-connected",
          "all terminal nodes are mutually connected and the routing "
          "covers every checked (node, destination) pair",
          {{"checks", std::to_string(stats.checks)}}));
    } else if (disconnected != 0) {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kError, "connectivity-broken",
          std::to_string(disconnected) +
              " terminal nodes cut off and " + std::to_string(uncovered) +
              " uncovered (node, destination) pairs",
          {{"disconnected", std::to_string(disconnected)},
           {"uncovered", std::to_string(uncovered)}}));
    } else {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kWarning, "route-uncovered",
          std::to_string(uncovered) +
              " (node, destination) pairs lack a surviving out-port",
          {{"uncovered", std::to_string(uncovered)}}));
    }
    return stats;
  }
};

}  // namespace

RuleRegistry::RuleRegistry() {
  // Registry order is run order for Analyzer::standard(): cheap structural
  // lints first, the closure-walking sweeps last; the fault-campaign rules
  // append after the original six so existing --rules selections and
  // reports keep their order.
  owned_.push_back(std::make_unique<SpecSanityRule>());
  owned_.push_back(std::make_unique<DeadPortsRule>());
  owned_.push_back(std::make_unique<TurnConformanceRule>());
  owned_.push_back(std::make_unique<UniformityRule>());
  owned_.push_back(std::make_unique<TotalityRule>());
  owned_.push_back(std::make_unique<EscapeCoverageRule>());
  owned_.push_back(std::make_unique<FaultSanityRule>());
  owned_.push_back(std::make_unique<ConnectivityRule>());
  views_.reserve(owned_.size());
  for (const auto& rule : owned_) {
    views_.push_back(rule.get());
  }
}

const RuleRegistry& RuleRegistry::global() {
  static const RuleRegistry registry;
  return registry;
}

std::vector<std::string> RuleRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(views_.size());
  for (const AnalysisRule* rule : views_) {
    result.emplace_back(rule->name());
  }
  return result;
}

const AnalysisRule* RuleRegistry::find(const std::string& name) const {
  for (const AnalysisRule* rule : views_) {
    if (name == rule->name()) {
      return rule;
    }
  }
  return nullptr;
}

}  // namespace genoc
