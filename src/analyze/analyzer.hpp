/// \file analyzer.hpp
/// \brief Analyzer: an ordered selection of registered AnalysisRules run
///        over one instance's model constituents.
///
/// The static sibling of VerifyPipeline: where the pipeline DECIDES
/// deadlock freedom (Theorem 1 / escape lanes over the artifact cache),
/// the analyzer LINTS the model the decision will run on — routing
/// totality, the node-uniformity claim, turn-model conformance, dead
/// ports, escape coverage, spec sanity — each as a budget-bounded rule
/// with stable diagnostic codes. `genoc analyze` is its CLI front end;
/// `genoc verify --all` runs the cheap subset per instance as a
/// pre-screen (the fault-campaign front door: reject a broken variant for
/// milliseconds before spending a verify on it).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analyze/rule.hpp"

namespace genoc {

class AnalysisArtifacts;

class Analyzer {
 public:
  /// The standard rule order (every registered built-in, cheap first).
  static const std::vector<std::string>& default_rule_names();

  /// The default analyzer over the global registry.
  static const Analyzer& standard();

  /// The cheap pre-screen subset `verify --all` attaches per instance:
  /// spec_sanity, dead_ports, turns and uniformity — the rules whose cost
  /// is O(ports) or destination-sampled, leaving the closure-heavier
  /// totality/escape sweeps to an explicit `genoc analyze`.
  static const Analyzer& cheap();
  static const std::vector<std::string>& cheap_rule_names();

  /// An analyzer of the named rules, in the given order. Unknown names,
  /// duplicates and the empty selection yield nullopt with a message in
  /// *error — the same contract as VerifyPipeline::from_stage_names, so
  /// `analyze --rules` mirrors `verify --stages` (exit 2 at the CLI).
  static std::optional<Analyzer> from_rule_names(
      const std::vector<std::string>& names, std::string* error);

  /// The configured rules, in run order.
  const std::vector<const AnalysisRule*>& rules() const { return rules_; }
  std::vector<std::string> rule_names() const;

  /// Runs every rule over the given model constituents. \p escape may be
  /// nullptr. This is the injection point for seeded-mutant tests: any
  /// RoutingFunction/Topology pair analyzes, registered or not.
  AnalyzeReport run(const InstanceSpec& spec, const Topology& topology,
                    const RoutingFunction& routing,
                    const RoutingFunction* escape,
                    const AnalyzeOptions& options = {}) const;

  /// Runs over an existing artifact context (the `verify --all`
  /// integration: the batch's ArtifactStore already owns the
  /// topology/routing/escape for this spec prefix — analyze the same
  /// objects instead of rebuilding them).
  AnalyzeReport run(const InstanceSpec& spec, AnalysisArtifacts& artifacts,
                    const AnalyzeOptions& options = {}) const;

  /// Convenience: builds the constituents from the spec's analysis prefix
  /// and analyzes them. Requires a valid spec (throws ContractViolation
  /// otherwise, like the owning AnalysisArtifacts constructor it uses).
  AnalyzeReport run(const InstanceSpec& spec,
                    const AnalyzeOptions& options = {}) const;

 private:
  explicit Analyzer(std::vector<const AnalysisRule*> rules);

  std::vector<const AnalysisRule*> rules_;
};

}  // namespace genoc
