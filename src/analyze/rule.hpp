/// \file rule.hpp
/// \brief The AnalysisRule interface — one named, registrable rule of the
///        static model analyzer — and the global registry `genoc analyze
///        --rules` / `genoc list --rules` resolve against.
///
/// The analyzer is the static front half of the paper's thesis: deadlock
/// freedom is decidable from the routing function alone, so the modelling
/// properties the dynamic pipeline RELIES on (routing totality, the
/// node-uniformity claim behind the zero-storage closure tier, turn-model
/// conformance, escape-lane coverage) deserve their own cheap, explicit
/// checks that run BEFORE the SCC machinery — and fail with stable
/// diagnostic codes instead of corrupting a sweep downstream. The shape
/// deliberately mirrors Check/CheckRegistry in src/verify/check.hpp (and
/// chuffed's register-once-look-up-by-name idiom): stateless singleton
/// rules in an immutable registry, each deciding applicability itself, all
/// findings carried by the same typed Diagnostic records the verify
/// pipeline emits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "instance/spec.hpp"
#include "routing/routing.hpp"
#include "topology/topology.hpp"
#include "verify/diagnostics.hpp"

namespace genoc {

/// Work bounds of one analyzer run. Rules that sweep a (port x destination)
/// or (node x destination) product sample destinations with a deterministic
/// stride so the analyzer stays interactive on every registry preset
/// (mesh256-xy included) — a lint pass, not a proof.
struct AnalyzeOptions {
  /// Budget in elementary (port, destination) probes for the sweeping
  /// rules (totality, turn conformance). ~8M keeps the 256x256 mesh under
  /// a second while covering every port of every sampled destination.
  std::uint64_t state_budget = 1ull << 23;
  /// Budget in (node, destination, port-name) probes for the
  /// node-uniformity audit.
  std::uint64_t uniformity_budget = 1ull << 23;
  /// Per-code cap on emitted findings; the summary diagnostic always
  /// carries the full violation count.
  std::uint64_t max_findings_per_code = 8;
};

/// The analyzer's report: per-rule StageStats plus the typed findings.
/// "Clean" means no warning/error finding — info records (positive
/// evidence, negative-fixture notes) do not dirty a model.
struct AnalyzeReport {
  /// Version of the `genoc analyze --json` schema
  /// (tools/check_analyze_schema.py speaks exactly this version).
  static constexpr int kSchemaVersion = 1;

  std::string instance;  ///< registry name, or the spec string when ad hoc
  std::string spec;      ///< canonical key=value spec string
  std::string topology;
  std::string routing;
  std::size_t nodes = 0;
  std::size_t ports = 0;
  std::vector<StageStats> rules;        ///< one entry per configured rule
  std::vector<Diagnostic> diagnostics;  ///< findings, in rule order
  std::uint64_t checks = 0;             ///< elementary probes, summed
  double wall_ms = 0.0;

  /// Warning/error findings (the count `analyze` reports and exits 1 on).
  std::size_t findings() const {
    std::size_t count = 0;
    for (const Diagnostic& diagnostic : diagnostics) {
      if (diagnostic.severity != Severity::kInfo) {
        ++count;
      }
    }
    return count;
  }

  bool clean() const { return findings() == 0; }
};

/// Everything a rule may read or write while running. Unlike CheckContext
/// this carries the model constituents directly (not the artifact cache):
/// rules are read-only consumers of topology/routing, so tests can inject
/// seeded-mutant routings without registering fake instances.
struct AnalyzeContext {
  const InstanceSpec& spec;
  const Topology& topology;
  const RoutingFunction& routing;
  const RoutingFunction* escape = nullptr;  ///< escape lane, or nullptr
  const AnalyzeOptions& options;
  /// The report under construction: rules append to report.diagnostics.
  /// (report.rules is managed by the Analyzer.)
  AnalyzeReport& report;
};

/// One analyzer rule. Implementations are stateless singletons owned by
/// the registry; run() decides applicability itself (returning ran ==
/// false with a skip reason), so a rule selection never needs conditional
/// wiring.
class AnalysisRule {
 public:
  virtual ~AnalysisRule() = default;

  /// Stable registry name (`--rules` token): "spec_sanity", "dead_ports",
  /// "turns", "uniformity", "totality", "escape".
  virtual const char* name() const = 0;

  /// One-line description for `genoc list --rules`.
  virtual const char* description() const = 0;

  /// Runs the rule (or records why it did not apply). The returned stats
  /// carry ran/passed/checks/skip_reason; the Analyzer fills the timings.
  virtual StageStats run(AnalyzeContext& ctx) const = 0;
};

/// The process-wide rule registry (immutable after construction; built-in
/// rules register in its constructor, mirroring CheckRegistry).
class RuleRegistry {
 public:
  static const RuleRegistry& global();

  const std::vector<const AnalysisRule*>& rules() const { return views_; }
  std::vector<std::string> names() const;

  /// The rule named \p name, or nullptr.
  const AnalysisRule* find(const std::string& name) const;

 private:
  RuleRegistry();

  std::vector<std::unique_ptr<AnalysisRule>> owned_;
  std::vector<const AnalysisRule*> views_;
};

}  // namespace genoc
