#include "verify/diagnostics.hpp"

namespace genoc {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "info";
}

bool parse_severity(const std::string& name, Severity* out) {
  if (name == "info") {
    *out = Severity::kInfo;
  } else if (name == "warning") {
    *out = Severity::kWarning;
  } else if (name == "error") {
    *out = Severity::kError;
  } else {
    return false;
  }
  return true;
}

}  // namespace genoc
