/// \file pipeline.hpp
/// \brief VerifyPipeline: an ordered selection of registered Check stages
///        run over one shared AnalysisArtifacts cache.
///
/// The standard pipeline is the paper's decision procedure in stage form:
///
///   build_depgraph  — materialize the channel-dependency graph (Sec. IV.A)
///   scc_acyclicity  — Theorem 1 / (C-3): acyclic => deadlock-free
///   escape          — the Duato escape-lane fallback for cyclic graphs
///   constraints     — (C-1)/(C-2), when requested
///
/// `NetworkInstance::verify` is a thin wrapper over run(); `genoc verify
/// --stages a,b,c` builds a custom selection through from_stage_names().
/// Stages pull their inputs from the artifact cache, so a subset pipeline
/// stays sound — it computes what it needs and skips what does not apply —
/// but only a pipeline containing a deciding stage can conclude
/// deadlock-freedom; otherwise the verdict is "undecided".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "verify/check.hpp"
#include "verify/report.hpp"

namespace genoc {

class NetworkInstance;

class VerifyPipeline {
 public:
  /// The standard stage order above (every registered built-in).
  static const std::vector<std::string>& default_stage_names();

  /// The default pipeline over the global registry.
  static const VerifyPipeline& standard();

  /// A pipeline of the named stages, in the given order. Unknown names
  /// yield nullopt with a message listing the registered stages in *error.
  static std::optional<VerifyPipeline> from_stage_names(
      const std::vector<std::string>& names, std::string* error);

  /// The configured stages, in run order.
  const std::vector<const Check*>& stages() const { return stages_; }
  std::vector<std::string> stage_names() const;

  /// Runs every stage over \p artifacts and renders the report. The
  /// verdict's header fields (names, dimensions, determinism) come from
  /// \p instance; the analysis runs on the artifact context (identical
  /// semantics — for store-shared artifacts, a different but spec-equal
  /// object). cache counters are the DELTA this run caused.
  VerifyReport run(const NetworkInstance& instance,
                   AnalysisArtifacts& artifacts,
                   const InstanceVerifyOptions& options) const;

  /// Convenience: run over the instance's own constituents (or the
  /// options.artifacts store when set) — exactly NetworkInstance::verify
  /// but returning the full report.
  VerifyReport run(const NetworkInstance& instance,
                   const InstanceVerifyOptions& options) const;

 private:
  explicit VerifyPipeline(std::vector<const Check*> stages);

  std::vector<const Check*> stages_;
};

}  // namespace genoc
