/// \file check.hpp
/// \brief The Check interface — one named, registrable stage of the
///        VerifyPipeline — and the global registry the CLI's `--stages` /
///        `list --checks` resolve against.
///
/// The shape follows the exemplars the ROADMAP points at: booksim2 wires
/// components from config-named factories, chuffed registers propagator
/// engines once and looks them up by name. Here every stage of the paper's
/// decision procedure (build the channel-dependency graph, decide
/// acyclicity per Theorem 1/(C-3), fall back to the escape-lane argument,
/// discharge (C-1)/(C-2)) is a Check with a stable registry name, and a
/// pipeline is an ordered selection of them. Stages communicate exclusively
/// through the AnalysisArtifacts cache, so their order constraints are data
/// dependencies, not call-site wiring: a stage that needs the dependency
/// graph gets it from the cache, computing it only if no earlier stage (or
/// batch sibling) already did.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "instance/spec.hpp"
#include "verify/artifacts.hpp"
#include "verify/report.hpp"
#include "verify/verdict.hpp"

namespace genoc {

class ThreadPool;

/// Everything a stage may read or write while running.
struct CheckContext {
  const InstanceSpec& spec;
  AnalysisArtifacts& artifacts;
  const InstanceVerifyOptions& options;
  ThreadPool* pool = nullptr;  ///< options.runner, for sharded computes
  /// The report under construction: stages update report.verdict and append
  /// to report.diagnostics. (report.stages is managed by the pipeline.)
  VerifyReport& report;
};

/// One pipeline stage. Implementations are stateless singletons owned by
/// the registry; run() decides applicability itself (returning ran == false
/// with a skip reason), so a pipeline never needs conditional wiring.
class Check {
 public:
  virtual ~Check() = default;

  /// Stable registry name (`--stages` token): "build_depgraph",
  /// "scc_acyclicity", "escape", "constraints", ...
  virtual const char* name() const = 0;

  /// One-line description for `genoc list --checks`.
  virtual const char* description() const = 0;

  /// Runs the stage (or records why it did not apply). The returned stats
  /// carry ran/passed/checks/skip_reason; the pipeline fills cpu_ms.
  virtual StageStats run(CheckContext& ctx) const = 0;
};

/// The process-wide stage registry (immutable after construction; built-in
/// checks register in its constructor, mirroring InstanceRegistry).
class CheckRegistry {
 public:
  static const CheckRegistry& global();

  const std::vector<const Check*>& checks() const { return views_; }
  std::vector<std::string> names() const;

  /// The check named \p name, or nullptr.
  const Check* find(const std::string& name) const;

 private:
  CheckRegistry();

  std::vector<std::unique_ptr<Check>> owned_;
  std::vector<const Check*> views_;
};

}  // namespace genoc
