/// \file diagnostics.hpp
/// \brief Typed diagnostics and per-stage statistics for the VerifyPipeline.
///
/// The pre-pipeline verifier reported its evidence through two free-text
/// fields (`method`, `note`) that tooling had to regex apart. A Diagnostic
/// is the typed replacement: the stage that spoke, a severity, a stable
/// machine-readable code, the human message, and a key/value witness
/// payload (cycle length, missing-escape state, ...) that survives a JSON
/// round trip. The legacy strings are still rendered — from these records —
/// so existing callers keep bit-identical verdicts.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace genoc {

/// Weight of a Diagnostic. kError findings refute the property under check;
/// kWarning findings are verdict-relevant but non-final (e.g. a cyclic
/// primary graph that the escape stage may still cure); kInfo records the
/// positive evidence.
enum class Severity { kInfo, kWarning, kError };

/// Stable lower-case name ("info" | "warning" | "error") — the JSON form.
const char* severity_name(Severity severity);

/// Inverse of severity_name(); false on an unknown name.
bool parse_severity(const std::string& name, Severity* out);

/// One typed finding of a pipeline stage.
struct Diagnostic {
  std::string stage;     ///< registry name of the emitting stage
  Severity severity = Severity::kInfo;
  /// Machine-readable code, stable across releases: "dep-acyclic",
  /// "dep-cyclic", "no-escape-lane", "escape-verified", "escape-refuted",
  /// "constraint-violated", "constraints-discharged", "undecided".
  std::string code;
  std::string message;   ///< human-readable finding (the old `note` content)
  /// Witness payload: ordered key/value pairs ("cycle_length" -> "32",
  /// "missing_state" -> "<1,0,N,IN> / <5,2,L,OUT>", ...). Strings on
  /// purpose: the payload is evidence for reports, not an API.
  std::vector<std::pair<std::string, std::string>> witness;

  friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// Execution record of one pipeline stage.
struct StageStats {
  std::string stage;
  bool ran = false;     ///< false when the stage decided it did not apply
  bool passed = true;   ///< the stage's own property held (meaningless if !ran)
  std::string skip_reason;    ///< why the stage did not run (when !ran)
  std::uint64_t checks = 0;   ///< elementary checks this stage performed
  double wall_ms = 0.0;       ///< steady_clock wall time of the stage
  /// True CPU burned while the stage ran: process-wide getrusage roll-up,
  /// so a pool-sharded stage reports the work of every participating
  /// thread, not the coordinating thread's wall time.
  double cpu_ms = 0.0;

  friend bool operator==(const StageStats&, const StageStats&) = default;
};

}  // namespace genoc
