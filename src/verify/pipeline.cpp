#include "verify/pipeline.hpp"

#include <algorithm>
#include <utility>

#include "instance/network_instance.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace genoc {

namespace {

/// Counter/stats deltas, so a report shows what ITS run computed or reused
/// rather than the shared cache's lifetime totals.
ArtifactCounter counter_delta(const ArtifactCounter& later,
                              const ArtifactCounter& earlier) {
  return {later.misses - earlier.misses, later.hits - earlier.hits};
}

ArtifactCacheStats stats_delta(const ArtifactCacheStats& later,
                               const ArtifactCacheStats& earlier) {
  ArtifactCacheStats delta;
  delta.contexts = counter_delta(later.contexts, earlier.contexts);
  delta.primed = counter_delta(later.primed, earlier.primed);
  delta.dep_graph = counter_delta(later.dep_graph, earlier.dep_graph);
  delta.acyclicity = counter_delta(later.acyclicity, earlier.acyclicity);
  delta.escape = counter_delta(later.escape, earlier.escape);
  delta.constraints = counter_delta(later.constraints, earlier.constraints);
  return delta;
}

/// Facts every graph-consuming stage re-publishes into the verdict: in a
/// --stages subset that omits build_depgraph/scc_acyclicity, the artifact
/// cache still computes the graph on demand, and the report must carry its
/// real shape rather than zero-initialized defaults. Idempotent — in the
/// standard pipeline this rewrites the values the earlier stages set.
void publish_graph_facts(CheckContext& ctx, const AcyclicityArtifact* acyclicity) {
  const PortDepGraph& dep =
      ctx.artifacts.dep_graph(ctx.options.generic_builder, ctx.pool);
  ctx.report.verdict.edges = dep.graph.edge_count();
  if (acyclicity != nullptr) {
    ctx.report.verdict.dep_acyclic = acyclicity->acyclic;
  }
}

Diagnostic make_diagnostic(
    const char* stage, Severity severity, std::string code,
    std::string message,
    std::vector<std::pair<std::string, std::string>> witness = {}) {
  Diagnostic diag;
  diag.stage = stage;
  diag.severity = severity;
  diag.code = std::move(code);
  diag.message = std::move(message);
  diag.witness = std::move(witness);
  return diag;
}

/// Stage 1: materialize the channel-dependency graph and account the
/// enumeration work — the generic construction's (port, dest) domain plus
/// one check per produced edge, a deterministic count independent of
/// sharding and of which (bit-identical) builder ran.
class BuildDepGraphCheck final : public Check {
 public:
  const char* name() const override { return "build_depgraph"; }
  const char* description() const override {
    return "materialize the channel-dependency graph (Sec. IV.A); "
           "per-destination fast builder, destination-sharded on the pool";
  }

  StageStats run(CheckContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    const PortDepGraph& dep =
        ctx.artifacts.dep_graph(ctx.options.generic_builder, ctx.pool);
    InstanceVerdict& verdict = ctx.report.verdict;
    verdict.edges = dep.graph.edge_count();
    stats.checks = static_cast<std::uint64_t>(
                       ctx.artifacts.topology().port_count()) *
                       ctx.artifacts.topology().destination_count() +
                   verdict.edges;
    verdict.checks += stats.checks;
    stats.ran = true;
    stats.passed = true;
    ctx.report.diagnostics.push_back(make_diagnostic(
        name(), Severity::kInfo, "depgraph-built",
        "dependency graph: " + std::to_string(verdict.edges) + " edges over " +
            std::to_string(verdict.ports) + " ports",
        {{"edges", std::to_string(verdict.edges)},
         {"ports", std::to_string(verdict.ports)}}));
    return stats;
  }
};

/// Stage 2: Theorem 1 / (C-3) — acyclicity of the dependency graph, with a
/// DFS cycle witness on failure (parallel SCC pre-decision on a pool).
class SccAcyclicityCheck final : public Check {
 public:
  const char* name() const override { return "scc_acyclicity"; }
  const char* description() const override {
    return "decide (C-3) acyclicity (Theorem 1) via DFS / parallel SCC, "
           "with a cycle witness on failure";
  }

  StageStats run(CheckContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    const AcyclicityArtifact& acyclicity =
        ctx.artifacts.acyclicity(ctx.options.generic_builder, ctx.pool);
    publish_graph_facts(ctx, &acyclicity);
    InstanceVerdict& verdict = ctx.report.verdict;
    stats.ran = true;
    stats.passed = acyclicity.acyclic;
    if (acyclicity.acyclic) {
      verdict.deadlock_free = true;
      verdict.method = "Theorem 1 (C-3)";
      verdict.note = "dependency graph acyclic";
      ctx.report.diagnostics.push_back(
          make_diagnostic(name(), Severity::kInfo, "dep-acyclic",
                          "dependency graph acyclic"));
    } else {
      const PortDepGraph& dep =
          ctx.artifacts.dep_graph(ctx.options.generic_builder, ctx.pool);
      const CycleWitness& cycle = *acyclicity.cycle;
      // A cyclic primary graph is not final — the escape stage may still
      // cure it — hence a warning, not an error.
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kWarning, "dep-cyclic",
          "dependency cycle of length " + std::to_string(cycle.size()) +
              " through " + dep.label(cycle.front()),
          {{"cycle_length", std::to_string(cycle.size())},
           {"through", dep.label(cycle.front())}}));
    }
    return stats;
  }
};

/// Stage 3: the Duato escape-lane fallback for cyclic primary graphs.
class EscapeCheck final : public Check {
 public:
  const char* name() const override { return "escape"; }
  const char* description() const override {
    return "Duato escape-lane analysis for cyclic graphs: escape "
           "availability on every adaptive-reachable state + acyclic "
           "escape closure";
  }

  StageStats run(CheckContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    const AcyclicityArtifact& acyclicity =
        ctx.artifacts.acyclicity(ctx.options.generic_builder, ctx.pool);
    publish_graph_facts(ctx, &acyclicity);
    if (acyclicity.acyclic) {
      stats.ran = false;
      stats.passed = true;
      // States the stage's applicability fact only: whether Theorem 1
      // DECIDED the verdict is scc_acyclicity's claim to make (a --stages
      // subset may not contain it).
      stats.skip_reason = "dependency graph acyclic — no cycle to escape";
      return stats;
    }
    InstanceVerdict& verdict = ctx.report.verdict;
    stats.ran = true;
    if (ctx.artifacts.escape_routing() == nullptr) {
      const PortDepGraph& dep =
          ctx.artifacts.dep_graph(ctx.options.generic_builder, ctx.pool);
      const CycleWitness& cycle = *acyclicity.cycle;
      verdict.deadlock_free = false;
      verdict.method = "cycle";
      verdict.note = "dependency cycle of length " +
                     std::to_string(cycle.size()) + " through " +
                     dep.label(cycle.front()) +
                     " and no escape lane (Theorem 1: deadlock reachable)";
      stats.passed = false;
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kError, "no-escape-lane", verdict.note,
          {{"cycle_length", std::to_string(cycle.size())},
           {"through", dep.label(cycle.front())}}));
      return stats;
    }
    const EscapeAnalysis& analysis = ctx.artifacts.escape_analysis(ctx.pool);
    verdict.deadlock_free = analysis.deadlock_free;
    verdict.method = "escape(" + ctx.spec.escape + ")";
    verdict.note = analysis.summary();
    verdict.checks += analysis.states_checked;
    stats.checks = analysis.states_checked;
    stats.passed = analysis.deadlock_free;
    std::vector<std::pair<std::string, std::string>> witness = {
        {"states_checked", std::to_string(analysis.states_checked)},
        {"escape_graph_edges",
         std::to_string(analysis.escape_graph.graph.edge_count())},
        {"escape_graph_acyclic", analysis.escape_graph_acyclic ? "true"
                                                               : "false"}};
    if (!analysis.escape_always_available) {
      witness.emplace_back("missing_states",
                           std::to_string(analysis.missing_states));
      witness.emplace_back("first_missing", analysis.missing_escape);
    }
    ctx.report.diagnostics.push_back(make_diagnostic(
        name(),
        analysis.deadlock_free ? Severity::kInfo : Severity::kError,
        analysis.deadlock_free ? "escape-verified" : "escape-refuted",
        analysis.summary(), std::move(witness)));
    return stats;
  }
};

/// Stage 4: (C-1)/(C-2), opt-in via --constraints.
class ConstraintsCheck final : public Check {
 public:
  const char* name() const override { return "constraints"; }
  const char* description() const override {
    return "discharge (C-1)/(C-2): routing dependencies are edges, every "
           "edge is realizable (opt-in: --constraints)";
  }

  StageStats run(CheckContext& ctx) const override {
    StageStats stats;
    stats.stage = name();
    if (!ctx.options.check_constraints) {
      stats.ran = false;
      stats.passed = true;
      stats.skip_reason = "not requested (--constraints)";
      return stats;
    }
    if (!ctx.spec.is_grid()) {
      // (C-1)/(C-2) are stated over the grid Port tuple; the non-grid
      // families are decided by (C-3) alone until the checkers learn the
      // id-based dialect.
      stats.ran = false;
      stats.passed = true;
      stats.skip_reason = "(C-1)/(C-2) are grid-only; " + ctx.spec.topology +
                          " instances are decided by (C-3)";
      return stats;
    }
    const ConstraintsArtifact& reports =
        ctx.artifacts.constraints(ctx.options.generic_builder, ctx.pool);
    publish_graph_facts(ctx, nullptr);
    InstanceVerdict& verdict = ctx.report.verdict;
    verdict.constraints_ok = reports.c1.satisfied && reports.c2.satisfied;
    stats.checks = reports.c1.checks + reports.c2.checks;
    verdict.checks += stats.checks;
    stats.ran = true;
    stats.passed = verdict.constraints_ok;
    if (!verdict.constraints_ok) {
      const std::string summary = reports.c1.satisfied
                                      ? reports.c2.summary()
                                      : reports.c1.summary();
      verdict.deadlock_free = false;
      // In the standard pipeline a deciding stage has already filled
      // method/note and the violation is appended; in a --stages subset
      // where nothing else decided, this refutation IS the verdict — claim
      // it rather than letting the "undecided" fallback mask it.
      if (verdict.method.empty()) {
        verdict.method = "constraints";
      }
      verdict.note += (verdict.note.empty() ? "constraint violation: "
                                            : "; constraint violation: ") +
                      summary;
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kError, "constraint-violated", summary,
          {{"c1_satisfied", reports.c1.satisfied ? "true" : "false"},
           {"c2_satisfied", reports.c2.satisfied ? "true" : "false"}}));
    } else {
      ctx.report.diagnostics.push_back(make_diagnostic(
          name(), Severity::kInfo, "constraints-discharged",
          "(C-1)/(C-2) discharged over " + std::to_string(stats.checks) +
              " checks",
          {{"c1_checks", std::to_string(reports.c1.checks)},
           {"c2_checks", std::to_string(reports.c2.checks)}}));
    }
    return stats;
  }
};

}  // namespace

CheckRegistry::CheckRegistry() {
  owned_.push_back(std::make_unique<BuildDepGraphCheck>());
  owned_.push_back(std::make_unique<SccAcyclicityCheck>());
  owned_.push_back(std::make_unique<EscapeCheck>());
  owned_.push_back(std::make_unique<ConstraintsCheck>());
  views_.reserve(owned_.size());
  for (const auto& check : owned_) {
    views_.push_back(check.get());
  }
}

const CheckRegistry& CheckRegistry::global() {
  static const CheckRegistry registry;
  return registry;
}

std::vector<std::string> CheckRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(views_.size());
  for (const Check* check : views_) {
    result.emplace_back(check->name());
  }
  return result;
}

const Check* CheckRegistry::find(const std::string& name) const {
  for (const Check* check : views_) {
    if (name == check->name()) {
      return check;
    }
  }
  return nullptr;
}

VerifyPipeline::VerifyPipeline(std::vector<const Check*> stages)
    : stages_(std::move(stages)) {}

const std::vector<std::string>& VerifyPipeline::default_stage_names() {
  static const std::vector<std::string> names = CheckRegistry::global().names();
  return names;
}

const VerifyPipeline& VerifyPipeline::standard() {
  static const VerifyPipeline pipeline(CheckRegistry::global().checks());
  return pipeline;
}

std::optional<VerifyPipeline> VerifyPipeline::from_stage_names(
    const std::vector<std::string>& names, std::string* error) {
  const CheckRegistry& registry = CheckRegistry::global();
  std::vector<const Check*> stages;
  stages.reserve(names.size());
  for (const std::string& name : names) {
    const Check* check = registry.find(name);
    if (check == nullptr) {
      if (error != nullptr) {
        *error = "unknown check stage '" + name + "'; registered stages:";
        for (const Check* known : registry.checks()) {
          *error += std::string(" ") + known->name();
        }
      }
      return std::nullopt;
    }
    // A repeated stage would re-run its verdict mutations (double-counting
    // checks, duplicating diagnostics) — reject the typo outright.
    if (std::find(stages.begin(), stages.end(), check) != stages.end()) {
      if (error != nullptr) {
        *error = "duplicate check stage '" + name + "' in the selection";
      }
      return std::nullopt;
    }
    stages.push_back(check);
  }
  if (stages.empty()) {
    if (error != nullptr) {
      *error = "empty stage selection";
    }
    return std::nullopt;
  }
  return VerifyPipeline(std::move(stages));
}

std::vector<std::string> VerifyPipeline::stage_names() const {
  std::vector<std::string> result;
  result.reserve(stages_.size());
  for (const Check* check : stages_) {
    result.emplace_back(check->name());
  }
  return result;
}

VerifyReport VerifyPipeline::run(const NetworkInstance& instance,
                                 AnalysisArtifacts& artifacts,
                                 const InstanceVerifyOptions& options) const {
  obs::TraceSpan run_span("verify_pipeline");
  if (run_span.active()) {
    run_span.set_detail(instance.name());
  }
  Stopwatch timer;
  CpuStopwatch cpu_timer;
  const ArtifactCacheStats before = artifacts.stats();
  VerifyReport report;
  InstanceVerdict& verdict = report.verdict;
  verdict.instance = instance.name();
  verdict.spec = to_spec_string(instance.spec());
  verdict.topology = instance.spec().topology;
  verdict.routing = instance.routing().name();
  verdict.switching = instance.switching().name();
  verdict.nodes = instance.topology().node_count();
  verdict.ports = instance.topology().port_count();
  verdict.deterministic = instance.routing().is_deterministic();
  verdict.expected_deadlock_free = instance.spec().expect_deadlock_free;

  CheckContext ctx{instance.spec(), artifacts, options, options.runner,
                   report};
  report.stages.reserve(stages_.size());
  for (const Check* check : stages_) {
    obs::TraceSpan stage_span(check->name());
    Stopwatch stage_timer;
    CpuStopwatch stage_cpu;
    StageStats stats = check->run(ctx);
    stats.wall_ms = stage_timer.elapsed_ms();
    stats.cpu_ms = stage_cpu.elapsed_ms();
    report.stages.push_back(std::move(stats));
  }

  if (verdict.method.empty()) {
    // Only reachable through a custom --stages selection where no stage
    // decided anything (a passing constraints stage alone does not prove
    // deadlock-freedom): refuse to claim anything rather than mislead.
    verdict.method = "undecided";
    std::string selected;
    for (const Check* check : stages_) {
      selected += (selected.empty() ? "" : ",") + std::string(check->name());
    }
    verdict.note = "no deciding stage ran (selected: " + selected + ")";
    verdict.deadlock_free = false;
    report.diagnostics.push_back(make_diagnostic(
        "pipeline", Severity::kWarning, "undecided", verdict.note,
        {{"selected", selected}}));
  }

  report.cache = stats_delta(artifacts.stats(), before);
  verdict.wall_ms = timer.elapsed_ms();
  verdict.cpu_ms = cpu_timer.elapsed_ms();
  verdict.max_rss_kb = peak_rss_kb();
  {
    // Analysis-layer counters: thread-count-invariant (unlike threadpool.*),
    // so snapshots stay comparable across 1/4/8-thread runs.
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
    static obs::Counter& runs = metrics.counter("verify.pipeline_runs");
    static obs::Counter& stages_run = metrics.counter("verify.stages_run");
    static obs::Counter& checks = metrics.counter("verify.checks");
    runs.increment();
    for (const StageStats& stats : report.stages) {
      if (stats.ran) {
        stages_run.increment();
      }
    }
    checks.add(verdict.checks);
    metrics.gauge("depgraph.max_edges")
        .record_max(static_cast<std::int64_t>(verdict.edges));
    metrics.gauge("depgraph.max_ports")
        .record_max(static_cast<std::int64_t>(verdict.ports));
  }
  return report;
}

VerifyReport VerifyPipeline::run(const NetworkInstance& instance,
                                 const InstanceVerifyOptions& options) const {
  if (options.artifacts != nullptr) {
    const std::shared_ptr<AnalysisArtifacts> shared =
        options.artifacts->acquire(instance.spec());
    return run(instance, *shared, options);
  }
  AnalysisArtifacts local(instance.topology(), instance.routing(),
                          instance.escape());
  return run(instance, local, options);
}

}  // namespace genoc
