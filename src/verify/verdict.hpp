/// \file verdict.hpp
/// \brief The per-instance verification verdict and options — the plain-data
///        interface between the VerifyPipeline and its callers.
///
/// InstanceVerdict is the one-row summary every driver renders (`genoc
/// verify --all` matrix rows, the batch sweep, the test oracles). The
/// pipeline's richer output — typed Diagnostics, per-stage stats, artifact
/// cache counters — lives in VerifyReport (report.hpp); the verdict keeps
/// the legacy `method`/`note` strings, rendered from the same stage
/// decisions, so pre-pipeline callers see bit-identical results.
#pragma once

#include <cstdint>
#include <string>

namespace genoc {

class ThreadPool;
class ArtifactStore;

/// Options for one instance verification (NetworkInstance::verify and the
/// VerifyPipeline behind it).
struct InstanceVerifyOptions {
  /// Shard the dependency-graph construction (per destination), the SCC
  /// stage and the escape-lane analysis across this pool; nullptr runs
  /// sequentially. Results are bit-identical either way. (BatchRunner IS-A
  /// ThreadPool, so batch callers pass their runner unchanged.)
  ThreadPool* runner = nullptr;
  /// Additionally discharge (C-1)/(C-2) (quadratic-ish; off for sweeps).
  bool check_constraints = false;
  /// Build the graph with the quadratic generic oracle instead of the
  /// per-destination fast builder (cross-check escape hatch; the two are
  /// bit-identical, so verdicts never differ).
  bool generic_builder = false;
  /// Batch-wide artifact sharing: when set, the analysis artifacts (dep
  /// graph, primed closure, SCC verdict, escape analysis) are acquired from
  /// this store, keyed by the spec's topology x routing x escape prefix, so
  /// a second instance sharing the prefix reuses them instead of
  /// recomputing. nullptr analyzes the instance's own constituents.
  ArtifactStore* artifacts = nullptr;
};

/// Verdict of one instance verification — one row of the `genoc verify
/// --all` matrix (the Table-I-per-instance shape).
struct InstanceVerdict {
  std::string instance;   ///< display name
  std::string spec;       ///< canonical spec string
  std::string topology;
  std::string routing;    ///< human-readable routing name
  std::string switching;
  std::size_t nodes = 0;
  std::size_t ports = 0;
  std::size_t edges = 0;  ///< dependency-graph edges
  bool deterministic = false;
  bool dep_acyclic = false;
  /// The headline: deadlock-free, either via Theorem 1 directly or via the
  /// escape-lane analysis when the primary graph is cyclic.
  bool deadlock_free = false;
  /// The verdict the spec REGISTERED (expect=deadlock marks negative
  /// fixtures like dragonfly-minimal); batch drivers pass when
  /// deadlock_free == expected_deadlock_free, not when deadlock_free.
  bool expected_deadlock_free = true;
  bool as_expected() const {
    return deadlock_free == expected_deadlock_free;
  }
  /// Rendered from the deciding stage's Diagnostics: "Theorem 1 (C-3)" |
  /// "escape(<name>)" | "cycle" | "undecided" (partial --stages runs).
  std::string method;
  std::string note;    ///< evidence summary / first counterexample
  bool constraints_ok = true;  ///< (C-1)/(C-2), when requested
  std::uint64_t checks = 0;    ///< elementary checks (deterministic count)
  double wall_ms = 0.0;        ///< steady_clock wall time of the whole run
  /// True CPU burned across the run: process-wide getrusage roll-up (all
  /// pool workers included), not the wall time the field used to misreport.
  double cpu_ms = 0.0;
  /// Peak process RSS (getrusage ru_maxrss, KiB) at the end of the run —
  /// a process-lifetime high-water mark, so within a batch it is the max
  /// over this and every earlier instance. Lets --baseline trends catch
  /// memory regressions next to wall_ms.
  std::int64_t max_rss_kb = 0;
};

}  // namespace genoc
