/// \file artifacts.hpp
/// \brief AnalysisArtifacts: the compute-once cache the VerifyPipeline's
///        stages communicate through, and ArtifactStore: the batch-wide map
///        that shares one cache across every instance with the same
///        topology x routing x escape prefix.
///
/// Every stage consumes artifacts (the dependency graph, the primed
/// reachability closure, the SCC/acyclicity verdict, the escape analysis,
/// the (C-1)/(C-2) reports) and none of them may be rebuilt once they
/// exist: a stage that needs an artifact another stage already produced —
/// or a SECOND instance in a batch sweep sharing the same prefix — gets the
/// cached object and a `hits` tick instead of a recompute. The counters
/// make the reuse observable, so tests assert "verify --all primes each
/// distinct closure exactly once" instead of trusting it.
///
/// Thread-safety: accessors take one internal lock for the whole compute,
/// so two batch tasks acquiring the same shared artifacts serialize on the
/// first compute and both read the same object afterwards. A compute may
/// itself shard over the pool (nested parallel_for is work-sharing — the
/// lock holder participates in its own chunks, so a blocked sibling task
/// can never deadlock it).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "deadlock/constraints.hpp"
#include "deadlock/depgraph.hpp"
#include "deadlock/escape.hpp"
#include "graph/cycle.hpp"
#include "instance/spec.hpp"

namespace genoc {

class ThreadPool;

/// Compute-once bookkeeping of one artifact kind: `misses` counts the
/// computes (the guarantee under test: one per distinct context), `hits`
/// every access that found the artifact cached — later stages of the same
/// run included, so hits measure cache traffic, not sharing alone.
struct ArtifactCounter {
  std::uint64_t misses = 0;
  std::uint64_t hits = 0;

  ArtifactCounter& operator+=(const ArtifactCounter& other) {
    misses += other.misses;
    hits += other.hits;
    return *this;
  }
  friend bool operator==(const ArtifactCounter&,
                         const ArtifactCounter&) = default;
};

/// Per-kind counters of one AnalysisArtifacts (or, aggregated, of a whole
/// ArtifactStore — see ArtifactStore::stats()).
struct ArtifactCacheStats {
  ArtifactCounter contexts;     ///< store-level: acquire() builds vs reuses
  ArtifactCounter primed;       ///< reachability-closure prime() passes
  ArtifactCounter dep_graph;    ///< dependency-graph builds
  ArtifactCounter acyclicity;   ///< SCC / cycle-witness decisions
  ArtifactCounter escape;       ///< escape-lane analyses
  ArtifactCounter constraints;  ///< (C-1)/(C-2) discharges

  ArtifactCacheStats& operator+=(const ArtifactCacheStats& other) {
    contexts += other.contexts;
    primed += other.primed;
    dep_graph += other.dep_graph;
    acyclicity += other.acyclicity;
    escape += other.escape;
    constraints += other.constraints;
    return *this;
  }
};

/// The acyclicity artifact: the (C-3) verdict plus the DFS cycle witness
/// backing the "dependency cycle of length N" evidence when it fails.
struct AcyclicityArtifact {
  bool acyclic = false;
  std::optional<CycleWitness> cycle;
};

/// The (C-1)/(C-2) artifact.
struct ConstraintsArtifact {
  ConstraintReport c1;
  ConstraintReport c2;
};

/// The shared artifact cache of one analysis context (a topology + routing
/// + optional escape lane). Two modes:
///
///   - BORROWING an existing instance's constituents (the
///     NetworkInstance::verify compatibility path): nothing is owned, the
///     cache lives for one verification.
///   - OWNING a context built from a spec's analysis prefix (the
///     ArtifactStore path): the artifacts own topology/routing/escape, so
///     the cached dependency graph (whose PortDepGraph points at that
///     topology) stays valid across every instance of the batch that
///     borrows it.
class AnalysisArtifacts {
 public:
  /// Borrowing constructor. \p escape may be nullptr.
  AnalysisArtifacts(const Topology& topology, const RoutingFunction& routing,
                    const RoutingFunction* escape);

  /// Owning constructor: builds topology/routing/escape from the spec's
  /// analysis prefix (topology family + parameters, routing, escape).
  /// Requires a valid spec; throws ContractViolation otherwise.
  explicit AnalysisArtifacts(const InstanceSpec& spec);

  /// Owning constructor for a FAULT VARIANT sharing its unfaulted base
  /// context: when \p spec has failed links, a grid topology and a
  /// node-uniform routing, the dependency graph is built by DELTA from the
  /// base context's graph (build_dep_graph_delta) instead of a full
  /// rebuild — the campaign hot path. \p base must be the context of this
  /// spec with failed_links cleared (same grid, same routing/escape);
  /// passing nullptr, or a spec where the delta does not apply, degrades
  /// to the plain owning constructor.
  AnalysisArtifacts(const InstanceSpec& spec,
                    std::shared_ptr<AnalysisArtifacts> base);

  AnalysisArtifacts(const AnalysisArtifacts&) = delete;
  AnalysisArtifacts& operator=(const AnalysisArtifacts&) = delete;

  /// The canonical sharing key: the fields the analysis artifacts actually
  /// depend on — topology family + its parameters, routing, escape — in
  /// spec-string order. Workload, switching, buffers and the expected
  /// verdict are deliberately absent: two presets differing only there
  /// (mesh8-xy vs mesh8-xy-sf) share every artifact.
  static std::string key(const InstanceSpec& spec);

  const Topology& topology() const { return *topo_; }
  const RoutingFunction& routing() const { return *routing_; }
  /// The escape-lane routing, or nullptr when the context has none.
  const RoutingFunction* escape_routing() const { return escape_; }

  /// The port dependency graph. \p generic_builder selects the quadratic
  /// oracle (bit-identical to the fast builder, so a cached graph is reused
  /// regardless of which builder produced it); \p pool shards the fast
  /// build over destinations.
  const PortDepGraph& dep_graph(bool generic_builder, ThreadPool* pool);

  /// The (C-3) verdict with cycle witness; computes dep_graph on demand.
  const AcyclicityArtifact& acyclicity(bool generic_builder, ThreadPool* pool);

  /// The Duato escape-lane analysis. Requires escape_routing() != nullptr.
  const EscapeAnalysis& escape_analysis(ThreadPool* pool);

  /// The (C-1)/(C-2) reports; computes dep_graph and the closure on demand.
  const ConstraintsArtifact& constraints(bool generic_builder,
                                         ThreadPool* pool);

  /// Snapshot of this cache's hit/miss counters (`contexts` is always zero
  /// here; only the store tracks acquisitions).
  ArtifactCacheStats stats() const;

 private:
  const PortDepGraph& dep_graph_locked(bool generic_builder, ThreadPool* pool);
  const AcyclicityArtifact& acyclicity_locked(bool generic_builder,
                                              ThreadPool* pool);
  /// Primes the routing's (and escape lane's) lazily built reachability
  /// closure exactly once, so subsequent reachable() queries are read-only
  /// and shareable across threads. With a pool, compressed-tier rows are
  /// built destination-sharded in parallel; closed-form and node-granular
  /// routings stay no-op-cheap either way.
  void ensure_primed_locked(ThreadPool* pool);

  // Owning-mode storage (null in borrowing mode); the raw pointers below
  // are the single source of truth either way.
  std::unique_ptr<Topology> owned_topo_;
  std::unique_ptr<RoutingFunction> owned_routing_;
  std::unique_ptr<RoutingFunction> owned_escape_;
  const Topology* topo_ = nullptr;
  const RoutingFunction* routing_ = nullptr;
  const RoutingFunction* escape_ = nullptr;

  // Fault-variant delta state: the unfaulted base context (keeps the base
  // graph alive and shares its compute across every variant of a campaign)
  // and the base-graph ids of the ports this variant's faults removed.
  std::shared_ptr<AnalysisArtifacts> base_;
  std::vector<PortId> removed_base_ports_;

  mutable std::mutex mutex_;
  bool primed_ = false;
  std::optional<PortDepGraph> dep_;
  std::optional<AcyclicityArtifact> acyclicity_;
  std::optional<EscapeAnalysis> escape_analysis_;
  std::optional<ConstraintsArtifact> constraints_;
  ArtifactCacheStats stats_;
};

/// The batch-wide sharing map: one AnalysisArtifacts per distinct
/// AnalysisArtifacts::key() in the sweep. verify_instances() threads a
/// store through every instance so `genoc verify --all` builds each
/// distinct closure/graph exactly once.
class ArtifactStore {
 public:
  ArtifactStore() = default;
  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// The artifacts for \p spec's analysis prefix, building the owned
  /// context on first sight of the key. Thread-safe; the returned pointer
  /// stays valid for the life of the store.
  std::shared_ptr<AnalysisArtifacts> acquire(const InstanceSpec& spec);

  /// Number of distinct analysis contexts materialized so far.
  std::size_t context_count() const;

  /// Aggregated counters: `contexts` from the store's acquire() ledger,
  /// everything else summed over the per-context caches.
  ArtifactCacheStats stats() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, std::shared_ptr<AnalysisArtifacts>>>
      entries_;
  ArtifactCounter contexts_;
};

}  // namespace genoc
