/// \file report.hpp
/// \brief VerifyReport: the full, schema-versioned output of one pipeline
///        run — the legacy one-row verdict plus everything the free-text
///        fields used to flatten away.
#pragma once

#include <vector>

#include "verify/artifacts.hpp"
#include "verify/diagnostics.hpp"
#include "verify/verdict.hpp"

namespace genoc {

/// Everything one VerifyPipeline::run produced. The JSON rendering
/// (cli/verify_json.hpp) carries kSchemaVersion so downstream tooling (the
/// --baseline trend report, CI validation) can reject artifacts written by
/// an incompatible schema.
struct VerifyReport {
  /// Bump when the JSON shape changes incompatibly: field removals or
  /// renames, semantic changes to existing fields. Additions are
  /// backwards-compatible and do not bump it.
  ///
  /// v2: cpu_ms now reports true CPU time (getrusage roll-up) instead of
  /// wall time; wall_ms carries the steady_clock figure; the top-level
  /// report gains a `metrics` section and the baseline trend compares on
  /// wall_ms. Readers (--baseline) still accept v1 artifacts, mapping
  /// their cpu_ms to wall_ms.
  static constexpr std::int64_t kSchemaVersion = 2;

  /// The legacy matrix row; method/note are rendered from the diagnostics'
  /// stage decisions, bit-identical to the pre-pipeline verifier.
  InstanceVerdict verdict;
  /// One entry per configured stage, in pipeline order (skipped stages
  /// included, with ran == false and the skip reason).
  std::vector<StageStats> stages;
  /// Typed findings, in emission order.
  std::vector<Diagnostic> diagnostics;
  /// The artifact-cache counter delta observed across this run. `misses`
  /// are the meaningful metric: one per artifact actually computed. `hits`
  /// count every access that found the artifact cached — including a later
  /// stage of the SAME run re-reading it — so they measure cache traffic,
  /// not cross-instance sharing alone. (For a store-shared PARALLEL batch a
  /// concurrent sibling's compute may also land in the delta — per-run
  /// attribution is best-effort; ArtifactStore::stats() is the exact
  /// batch-level ledger.)
  ArtifactCacheStats cache;
};

}  // namespace genoc
