#include "verify/artifacts.hpp"

#include <algorithm>

#include "graph/tarjan.hpp"
#include "instance/network_instance.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace genoc {

namespace {

/// The legacy ArtifactCacheStats counters stay (the per-run report delta is
/// computed from them); these mirror every tick into the process-wide
/// MetricsRegistry so the cache is observable without threading a report
/// through. References are stable for the process lifetime — call sites
/// cache them in function-local statics.
struct KindCounters {
  obs::Counter& hits;
  obs::Counter& misses;
};

KindCounters kind_counters(const char* kind) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  const std::string prefix = std::string("artifacts.") + kind;
  return KindCounters{metrics.counter(prefix + ".hits"),
                      metrics.counter(prefix + ".misses")};
}

}  // namespace

AnalysisArtifacts::AnalysisArtifacts(const Topology& topology,
                                     const RoutingFunction& routing,
                                     const RoutingFunction* escape)
    : topo_(&topology), routing_(&routing), escape_(escape) {}

AnalysisArtifacts::AnalysisArtifacts(const InstanceSpec& spec) {
  const std::string invalid = validate_spec(spec);
  GENOC_REQUIRE(invalid.empty(), "invalid instance spec: " + invalid);
  owned_topo_ = make_topology(spec);
  owned_routing_ = make_routing(spec.routing, *owned_topo_);
  if (!spec.escape.empty()) {
    owned_escape_ = make_routing(spec.escape, *owned_topo_);
  }
  topo_ = owned_topo_.get();
  routing_ = owned_routing_.get();
  escape_ = owned_escape_.get();
}

AnalysisArtifacts::AnalysisArtifacts(const InstanceSpec& spec,
                                     std::shared_ptr<AnalysisArtifacts> base)
    : AnalysisArtifacts(spec) {
  if (base == nullptr || spec.failed_links.empty() ||
      !routing_->node_uniform()) {
    return;  // nothing to delta from — full builds as usual
  }
  const auto* variant_mesh = dynamic_cast<const Mesh2D*>(topo_);
  const auto* base_mesh = dynamic_cast<const Mesh2D*>(&base->topology());
  if (variant_mesh == nullptr || base_mesh == nullptr) {
    return;  // faults are grid-only; defensive for borrowed bases
  }
  GENOC_REQUIRE(base_mesh->width() == variant_mesh->width() &&
                    base_mesh->height() == variant_mesh->height() &&
                    base_mesh->wraps_x() == variant_mesh->wraps_x() &&
                    base_mesh->wraps_y() == variant_mesh->wraps_y() &&
                    !base_mesh->has_faults(),
                "delta base context does not match the variant's grid");
  // The base-graph ids of the variant's removed ports: four per distinct
  // failed link (both directed channels' OUT + IN). Duplicate faults are
  // idempotent, hence the dedup.
  for (const std::string& token : spec.failed_links) {
    std::string error;
    const std::optional<LinkFault> fault = parse_link_fault(token, &error);
    GENOC_REQUIRE(fault.has_value(), error);
    const LinkFault peer =
        link_fault_peer(*fault, base_mesh->width(), base_mesh->height(),
                        base_mesh->wraps_x(), base_mesh->wraps_y());
    for (const LinkFault& end : {*fault, peer}) {
      const Port in{end.node % base_mesh->width(),
                    end.node / base_mesh->width(), end.name, Direction::kIn};
      removed_base_ports_.push_back(base_mesh->id(in));
      removed_base_ports_.push_back(
          base_mesh->id(Port{in.x, in.y, in.name, Direction::kOut}));
    }
  }
  std::sort(removed_base_ports_.begin(), removed_base_ports_.end());
  removed_base_ports_.erase(
      std::unique(removed_base_ports_.begin(), removed_base_ports_.end()),
      removed_base_ports_.end());
  base_ = std::move(base);
}

std::string AnalysisArtifacts::key(const InstanceSpec& spec) {
  std::string prefix = "topology=" + spec.topology;
  if (spec.topology == "dragonfly") {
    prefix += " routers=" + std::to_string(spec.df_routers) +
              " globals=" + std::to_string(spec.df_globals) +
              " terminals=" + std::to_string(spec.df_terminals) +
              " groups=" + std::to_string(spec.df_groups_resolved());
  } else {
    prefix += " size=" + std::to_string(spec.width) + "x" +
              std::to_string(spec.height);
    if (spec.topology == "cmesh") {
      prefix += " concentration=" + std::to_string(spec.concentration);
    }
  }
  prefix += " routing=" + spec.routing +
            " escape=" + (spec.escape.empty() ? "none" : spec.escape);
  // Fault variants are distinct analysis contexts; the canonical token
  // order (with_failed_links) makes equal fault sets share one key.
  if (!spec.failed_links.empty()) {
    prefix += " failed=" + join_failed_links(spec.failed_links);
  }
  return prefix;
}

void AnalysisArtifacts::ensure_primed_locked(ThreadPool* pool) {
  static KindCounters counters = kind_counters("primed");
  if (primed_) {
    ++stats_.primed.hits;
    counters.hits.increment();
    return;
  }
  obs::TraceSpan span("artifact:prime");
  if (pool != nullptr) {
    routing_->prime(*pool);
    if (escape_ != nullptr) {
      escape_->prime(*pool);
    }
  } else {
    routing_->prime();
    if (escape_ != nullptr) {
      escape_->prime();
    }
  }
  primed_ = true;
  ++stats_.primed.misses;
  counters.misses.increment();
}

const PortDepGraph& AnalysisArtifacts::dep_graph_locked(bool generic_builder,
                                                        ThreadPool* pool) {
  static KindCounters counters = kind_counters("dep_graph");
  if (dep_.has_value()) {
    // Reused regardless of which builder produced it: the generic oracle,
    // the fast builder and the sharded builder are bit-identical (the test
    // suite's standing cross-check), so the graph content cannot differ.
    ++stats_.dep_graph.hits;
    counters.hits.increment();
    return *dep_;
  }
  ++stats_.dep_graph.misses;
  counters.misses.increment();
  obs::TraceSpan span("artifact:dep_graph");
  if (generic_builder) {
    // The oracle walks reachable() per (port, dest); prime first so the
    // closure build is not racing a shared batch sibling.
    ensure_primed_locked(pool);
    dep_ = build_dep_graph(*routing_);
  } else if (base_ != nullptr) {
    // Fault-variant delta: filter the base graph instead of re-sweeping.
    // Lock order is variant -> base only (a base never acquires a
    // variant), so the nested dep_graph() cannot deadlock; concurrent
    // variants serialize on the base's first build and hit thereafter.
    static obs::Counter& delta_builds =
        obs::MetricsRegistry::global().counter("artifacts.dep_graph.delta_builds");
    const PortDepGraph& base_graph = base_->dep_graph(false, pool);
    dep_ = build_dep_graph_delta(base_graph, *routing_, removed_base_ports_);
    delta_builds.increment();
  } else if (pool != nullptr) {
    dep_ = build_dep_graph_parallel(*routing_, *pool);
  } else {
    dep_ = build_dep_graph_fast(*routing_);
  }
  return *dep_;
}

const PortDepGraph& AnalysisArtifacts::dep_graph(bool generic_builder,
                                                 ThreadPool* pool) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return dep_graph_locked(generic_builder, pool);
}

const AcyclicityArtifact& AnalysisArtifacts::acyclicity_locked(
    bool generic_builder, ThreadPool* pool) {
  static KindCounters counters = kind_counters("acyclicity");
  if (acyclicity_.has_value()) {
    ++stats_.acyclicity.hits;
    counters.hits.increment();
    return *acyclicity_;
  }
  const PortDepGraph& dep = dep_graph_locked(generic_builder, pool);
  ++stats_.acyclicity.misses;
  counters.misses.increment();
  obs::TraceSpan span("artifact:acyclicity");
  AcyclicityArtifact result;
  result.cycle = find_cycle(dep.graph, pool);
  result.acyclic = !result.cycle.has_value();
  acyclicity_ = std::move(result);
  return *acyclicity_;
}

const AcyclicityArtifact& AnalysisArtifacts::acyclicity(bool generic_builder,
                                                        ThreadPool* pool) {
  const std::lock_guard<std::mutex> lock(mutex_);
  return acyclicity_locked(generic_builder, pool);
}

const EscapeAnalysis& AnalysisArtifacts::escape_analysis(ThreadPool* pool) {
  const std::lock_guard<std::mutex> lock(mutex_);
  GENOC_REQUIRE(escape_ != nullptr,
                "escape_analysis() on a context without an escape lane");
  static KindCounters counters = kind_counters("escape");
  if (escape_analysis_.has_value()) {
    ++stats_.escape.hits;
    counters.hits.increment();
    return *escape_analysis_;
  }
  // analyze_escape reads closure rows per destination; priming here keeps
  // any eager closure build inside this cache's compute-once accounting
  // (node-granular tiers build nothing — the escape shards materialize
  // their own rows with thread locality).
  ensure_primed_locked(pool);
  ++stats_.escape.misses;
  counters.misses.increment();
  obs::TraceSpan span("artifact:escape_analysis");
  escape_analysis_ = analyze_escape(*routing_, *escape_, pool);
  return *escape_analysis_;
}

const ConstraintsArtifact& AnalysisArtifacts::constraints(bool generic_builder,
                                                          ThreadPool* pool) {
  const std::lock_guard<std::mutex> lock(mutex_);
  static KindCounters counters = kind_counters("constraints");
  if (constraints_.has_value()) {
    ++stats_.constraints.hits;
    counters.hits.increment();
    return *constraints_;
  }
  const PortDepGraph& dep = dep_graph_locked(generic_builder, pool);
  ensure_primed_locked(pool);  // (C-1)/(C-2) enumerate reachable() heavily
  ++stats_.constraints.misses;
  counters.misses.increment();
  obs::TraceSpan span("artifact:constraints");
  ConstraintsArtifact result;
  result.c1 = check_c1(*routing_, dep);
  result.c2 = check_c2(*routing_, dep);
  constraints_ = std::move(result);
  return *constraints_;
}

ArtifactCacheStats AnalysisArtifacts::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::shared_ptr<AnalysisArtifacts> ArtifactStore::acquire(
    const InstanceSpec& spec) {
  static KindCounters counters = kind_counters("contexts");
  const std::string key = AnalysisArtifacts::key(spec);
  const auto find = [this, &key] {
    return std::find_if(
        entries_.begin(), entries_.end(),
        [&key](const auto& entry) { return entry.first == key; });
  };
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = find(); it != entries_.end()) {
      ++contexts_.hits;
      counters.hits.increment();
      return it->second;
    }
  }
  // Build outside the lock: a fault variant first acquires its unfaulted
  // BASE context (recursively, so campaigns share one base graph across
  // every variant), and context construction itself is the expensive part.
  std::shared_ptr<AnalysisArtifacts> base;
  if (!spec.failed_links.empty() && spec.is_grid()) {
    InstanceSpec base_spec = spec;
    base_spec.failed_links.clear();
    base = acquire(base_spec);
  }
  obs::TraceSpan span("artifact:context_build");
  auto artifacts = base != nullptr
                       ? std::make_shared<AnalysisArtifacts>(spec, base)
                       : std::make_shared<AnalysisArtifacts>(spec);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = find(); it != entries_.end()) {
    // Lost a build race; the first-published context wins so every caller
    // shares one cache.
    ++contexts_.hits;
    counters.hits.increment();
    return it->second;
  }
  ++contexts_.misses;
  counters.misses.increment();
  entries_.emplace_back(key, artifacts);
  return artifacts;
}

std::size_t ArtifactStore::context_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

ArtifactCacheStats ArtifactStore::stats() const {
  std::vector<std::shared_ptr<AnalysisArtifacts>> contexts;
  ArtifactCacheStats total;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    total.contexts = contexts_;
    contexts.reserve(entries_.size());
    for (const auto& [key, artifacts] : entries_) {
      contexts.push_back(artifacts);
    }
  }
  for (const auto& artifacts : contexts) {
    total += artifacts->stats();
  }
  return total;
}

}  // namespace genoc
