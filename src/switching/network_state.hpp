/// \file network_state.hpp
/// \brief The network state ST of a configuration: every port with its
///        1-flit buffers (paper Sec. III.B), plus the flit positions of all
///        packets.
///
/// Model summary (matching the paper's HERMES abstraction, Fig. 1b):
///  - Each existing port has a FIFO of 1-flit buffers (capacity >= 1,
///    configurable per port; the paper leaves the number uninterpreted).
///  - A port only holds flits of at most one packet at a time; it is
///    released when the packet's last flit leaves it.
///  - A packet (worm) follows a fixed pre-computed route (port sequence).
///    Flit positions are indices into that route; kFlitOutside means the
///    flit still waits at the source core, kFlitDelivered that it left the
///    network through the destination's Local OUT port.
///  - Consumption is guaranteed: a flit moving into the final route port
///    (the destination Local OUT) is delivered immediately and occupies no
///    buffer. This reflects the Local OUT port's role of "removing messages
///    from the network" and is the standard assumption that makes
///    destination nodes sinks of the dependency graph.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "routing/route.hpp"
#include "switching/flit.hpp"
#include "topology/mesh.hpp"

namespace genoc {

/// Immutable description of one packet: its id, its full route (from the
/// port where it starts — normally the source's Local IN — to the
/// destination's Local OUT), and how many flits it carries.
struct PacketSpec {
  TravelId id = 0;
  Route route;
  std::uint32_t flit_count = 1;
};

/// The mutable network state ST. Owns packet progress and port buffers;
/// switching policies mutate it exclusively through move_flit().
class NetworkState {
 public:
  /// Creates an empty state over \p mesh where every port has
  /// \p default_capacity buffers. Requires default_capacity >= 1.
  NetworkState(const Mesh2D& mesh, std::size_t default_capacity);

  const Mesh2D& mesh() const { return *mesh_; }

  /// Overrides the buffer count of one existing port. Only allowed while no
  /// packet is registered (capacities are part of the network, not of a run).
  void set_capacity(const Port& port, std::size_t capacity);

  std::size_t capacity(PortId pid) const;

  /// Registers a packet whose flits all start outside the network (the
  /// normal case: it will enter through route.front(), its Local IN port).
  /// Requires: unique id, flit_count >= 1, a structurally valid route (all
  /// ports exist, length >= 2, last port is a Local OUT).
  void register_packet(PacketSpec spec);

  /// Registers a packet and places all its flits directly into
  /// route.front()'s buffers — the deadlock-witness construction of
  /// Theorem 1 (each port of the cycle is "filled with messages").
  /// Requires additionally: flit_count <= free space of route.front(), and
  /// route.front() currently holds no other packet's flits.
  void place_packet(PacketSpec spec);

  // ---- Packet queries -----------------------------------------------------

  std::size_t packet_count() const { return packets_.size(); }
  const std::vector<TravelId>& packet_ids() const { return ids_; }
  bool has_packet(TravelId id) const;
  const PacketSpec& packet(TravelId id) const;

  /// Route index of flit \p k of packet \p id (or kFlitOutside /
  /// kFlitDelivered).
  std::int32_t flit_pos(TravelId id, std::uint32_t k) const;

  /// True iff all flits of the packet have been delivered.
  bool packet_delivered(TravelId id) const;

  /// True iff at least one flit of the packet is inside the network.
  bool packet_in_network(TravelId id) const;

  /// The port currently holding the header flit, if it is in the network.
  std::optional<Port> header_port(TravelId id) const;

  /// Number of packets not yet fully delivered.
  std::size_t undelivered_count() const;

  /// Ids of packets not yet fully delivered, ascending.
  std::vector<TravelId> undelivered_ids() const;

  // ---- Port queries -------------------------------------------------------

  std::size_t occupancy(PortId pid) const;
  bool port_full(PortId pid) const;

  /// The packet currently occupying the port, if any.
  std::optional<TravelId> port_owner(PortId pid) const;

  /// The FIFO content of a port, front first.
  const std::deque<FlitRef>& buffer(PortId pid) const;

  /// Total number of flits currently buffered in the network.
  std::size_t flits_in_flight() const;

  // ---- Movement (used by switching policies) ------------------------------

  /// True iff flit \p k of packet \p id can advance one hop right now:
  ///  - not delivered;
  ///  - if outside: it is the next flit to enter (predecessor already in),
  ///    and the entry port accepts it;
  ///  - if inside: it is at the head of its port's FIFO and the next route
  ///    port accepts it (free buffer + single-packet ownership), or the next
  ///    route port is the final Local OUT (guaranteed consumption).
  bool can_flit_move(TravelId id, std::uint32_t k) const;

  /// Advances flit \p k of packet \p id by one hop. Requires
  /// can_flit_move(id, k). Returns true iff the move delivered the flit.
  bool move_flit(TravelId id, std::uint32_t k);

  /// Total remaining hop count over all flits: the flit-granular
  /// termination measure (strictly decreased by every move_flit()).
  std::uint64_t total_remaining_hops() const;

  /// Checks every structural invariant of the state (FIFO/positions
  /// consistency, single-packet ports, capacity bounds, worm ordering).
  /// Throws ContractViolation on the first violation. Used by the failure-
  /// injection tests and after witness construction.
  void validate() const;

  /// Order-independent fingerprint of the whole state (flit positions,
  /// buffer contents, capacities). Equal states have equal digests; used by
  /// the (C-4) checker to verify that identity injection leaves the
  /// configuration untouched.
  std::uint64_t digest() const;

 private:
  struct PacketData {
    PacketSpec spec;
    std::vector<std::int32_t> pos;  // per flit
    std::uint32_t delivered = 0;    // count of delivered flits
  };

  const PacketData& data(TravelId id) const;
  PacketData& data(TravelId id);
  void check_route(const PacketSpec& spec) const;

  /// True iff port \p pid can accept a flit of packet \p id now.
  bool port_accepts(PortId pid, TravelId id) const;

  const Mesh2D* mesh_;
  std::vector<std::size_t> capacity_;        // per port id
  std::vector<std::deque<FlitRef>> buffers_;  // per port id
  std::vector<TravelId> ids_;                 // registration order
  std::unordered_map<TravelId, PacketData> packets_;
};

}  // namespace genoc
