/// \file policy.hpp
/// \brief The generic switching-policy constituent S : Σ -> Σ.
///
/// A switching policy computes the configuration after one switching step:
/// "each message that can make progression has advanced by at most one hop"
/// (paper Sec. III.B). A configuration is a deadlock (Ω) iff no message can
/// make progression; that predicate lives here because it is defined in
/// terms of the policy.
#pragma once

#include <string>
#include <vector>

#include "switching/network_state.hpp"

namespace genoc {

/// What happened during one application of S.
struct StepResult {
  std::size_t flits_moved = 0;
  /// Packets whose header entered the network this step.
  std::vector<TravelId> entered;
  /// Packets fully delivered this step (tail consumed at destination).
  std::vector<TravelId> delivered;

  bool anything_moved() const { return flits_moved > 0; }
};

/// Abstract switching policy. Implementations are deterministic: equal
/// states produce equal successor states (mirroring the ACL2 functions).
class SwitchingPolicy {
 public:
  virtual ~SwitchingPolicy() = default;

  virtual std::string name() const = 0;

  /// Applies one switching step, mutating \p state in place.
  virtual StepResult step(NetworkState& state) const = 0;

  /// True iff at least one flit could move in \p state. step() moves at
  /// least one flit iff this returns true (the test suite checks this
  /// equivalence), so Ω can be evaluated without mutating the state.
  virtual bool can_any_move(const NetworkState& state) const = 0;
};

/// The deadlock predicate Ω(σ): there are undelivered messages and none of
/// them can make progression under \p policy.
bool is_deadlock(const SwitchingPolicy& policy, const NetworkState& state);

}  // namespace genoc
