/// \file flit.hpp
/// \brief Flits: the wormhole switching unit (paper Sec. II).
///
/// HERMES uses wormhole switching: messages are decomposed into flits. The
/// header flit carries the routing information (here: the pre-computed route,
/// held by the packet), and the data flits follow in a pipelined fashion.
#pragma once

#include <compare>
#include <cstdint>

namespace genoc {

/// Identifier of a travel/packet. Unique within a configuration.
using TravelId = std::uint32_t;

/// A reference to one flit: which packet it belongs to and its index within
/// the worm (0 = header, flit_count-1 = tail).
struct FlitRef {
  TravelId travel = 0;
  std::uint32_t index = 0;

  friend auto operator<=>(const FlitRef&, const FlitRef&) = default;
};

/// Position sentinel: the flit has not yet entered the network (it waits at
/// the source core behind the Local IN port).
inline constexpr std::int32_t kFlitOutside = -1;

/// Position sentinel: the flit has been consumed at the destination Local
/// OUT port and left the network.
inline constexpr std::int32_t kFlitDelivered = -2;

}  // namespace genoc
