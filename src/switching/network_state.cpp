#include "switching/network_state.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace genoc {

NetworkState::NetworkState(const Mesh2D& mesh, std::size_t default_capacity)
    : mesh_(&mesh) {
  GENOC_REQUIRE(default_capacity >= 1,
                "ports need at least one buffer (paper Fig. 1b)");
  capacity_.assign(mesh.port_count(), default_capacity);
  buffers_.resize(mesh.port_count());
}

void NetworkState::set_capacity(const Port& port, std::size_t capacity) {
  GENOC_REQUIRE(packets_.empty(),
                "capacities must be set before packets are registered");
  GENOC_REQUIRE(capacity >= 1, "ports need at least one buffer");
  capacity_[mesh_->id(port)] = capacity;
}

std::size_t NetworkState::capacity(PortId pid) const {
  GENOC_REQUIRE(pid < capacity_.size(), "port id out of range");
  return capacity_[pid];
}

void NetworkState::check_route(const PacketSpec& spec) const {
  GENOC_REQUIRE(spec.flit_count >= 1, "a packet has at least one flit");
  GENOC_REQUIRE(spec.route.size() >= 2,
                "a route has at least two ports (entry and Local OUT)");
  for (const Port& p : spec.route) {
    GENOC_REQUIRE(mesh_->exists(p),
                  "route visits non-existent port " + to_string(p));
  }
  const Port& last = spec.route.back();
  GENOC_REQUIRE(
      last.name == PortName::kLocal && last.dir == Direction::kOut,
      "routes must end at a Local OUT port, got " + to_string(last));
  for (std::size_t i = 0; i + 1 < spec.route.size(); ++i) {
    GENOC_REQUIRE(spec.route[i] != spec.route[i + 1],
                  "route repeats a port consecutively");
  }
  GENOC_REQUIRE(!packets_.contains(spec.id),
                "duplicate travel id " + std::to_string(spec.id));
}

void NetworkState::register_packet(PacketSpec spec) {
  check_route(spec);
  PacketData pd;
  pd.pos.assign(spec.flit_count, kFlitOutside);
  pd.spec = std::move(spec);
  const TravelId id = pd.spec.id;
  ids_.push_back(id);
  packets_.emplace(id, std::move(pd));
}

void NetworkState::place_packet(PacketSpec spec) {
  check_route(spec);
  const PortId entry = mesh_->id(spec.route.front());
  GENOC_REQUIRE(buffers_[entry].empty() ||
                    buffers_[entry].front().travel == spec.id,
                "witness placement into a port owned by another packet");
  GENOC_REQUIRE(buffers_[entry].size() + spec.flit_count <= capacity_[entry],
                "witness placement exceeds buffer capacity of " +
                    to_string(spec.route.front()));
  PacketData pd;
  pd.pos.assign(spec.flit_count, 0);
  for (std::uint32_t k = 0; k < spec.flit_count; ++k) {
    buffers_[entry].push_back(FlitRef{spec.id, k});
  }
  pd.spec = std::move(spec);
  const TravelId id = pd.spec.id;
  ids_.push_back(id);
  packets_.emplace(id, std::move(pd));
}

bool NetworkState::has_packet(TravelId id) const {
  return packets_.contains(id);
}

const PacketSpec& NetworkState::packet(TravelId id) const {
  return data(id).spec;
}

const NetworkState::PacketData& NetworkState::data(TravelId id) const {
  const auto it = packets_.find(id);
  GENOC_REQUIRE(it != packets_.end(),
                "unknown travel id " + std::to_string(id));
  return it->second;
}

NetworkState::PacketData& NetworkState::data(TravelId id) {
  const auto it = packets_.find(id);
  GENOC_REQUIRE(it != packets_.end(),
                "unknown travel id " + std::to_string(id));
  return it->second;
}

std::int32_t NetworkState::flit_pos(TravelId id, std::uint32_t k) const {
  const PacketData& pd = data(id);
  GENOC_REQUIRE(k < pd.pos.size(), "flit index out of range");
  return pd.pos[k];
}

bool NetworkState::packet_delivered(TravelId id) const {
  const PacketData& pd = data(id);
  return pd.delivered == pd.spec.flit_count;
}

bool NetworkState::packet_in_network(TravelId id) const {
  const PacketData& pd = data(id);
  for (const std::int32_t p : pd.pos) {
    if (p >= 0) {
      return true;
    }
  }
  return false;
}

std::optional<Port> NetworkState::header_port(TravelId id) const {
  const PacketData& pd = data(id);
  if (pd.pos[0] < 0) {
    return std::nullopt;
  }
  return pd.spec.route[static_cast<std::size_t>(pd.pos[0])];
}

std::size_t NetworkState::undelivered_count() const {
  std::size_t n = 0;
  for (const TravelId id : ids_) {
    if (!packet_delivered(id)) {
      ++n;
    }
  }
  return n;
}

std::vector<TravelId> NetworkState::undelivered_ids() const {
  std::vector<TravelId> result;
  for (const TravelId id : ids_) {
    if (!packet_delivered(id)) {
      result.push_back(id);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::size_t NetworkState::occupancy(PortId pid) const {
  GENOC_REQUIRE(pid < buffers_.size(), "port id out of range");
  return buffers_[pid].size();
}

bool NetworkState::port_full(PortId pid) const {
  return occupancy(pid) >= capacity(pid);
}

std::optional<TravelId> NetworkState::port_owner(PortId pid) const {
  GENOC_REQUIRE(pid < buffers_.size(), "port id out of range");
  if (buffers_[pid].empty()) {
    return std::nullopt;
  }
  return buffers_[pid].front().travel;
}

const std::deque<FlitRef>& NetworkState::buffer(PortId pid) const {
  GENOC_REQUIRE(pid < buffers_.size(), "port id out of range");
  return buffers_[pid];
}

std::size_t NetworkState::flits_in_flight() const {
  std::size_t n = 0;
  for (const auto& fifo : buffers_) {
    n += fifo.size();
  }
  return n;
}

bool NetworkState::port_accepts(PortId pid, TravelId id) const {
  if (buffers_[pid].size() >= capacity_[pid]) {
    return false;
  }
  // "a port can only accept flits of at most one packet" (paper Sec. V.4).
  return buffers_[pid].empty() || buffers_[pid].front().travel == id;
}

bool NetworkState::can_flit_move(TravelId id, std::uint32_t k) const {
  const PacketData& pd = data(id);
  GENOC_REQUIRE(k < pd.pos.size(), "flit index out of range");
  const std::int32_t pos = pd.pos[k];
  if (pos == kFlitDelivered) {
    return false;
  }
  const auto route_len = static_cast<std::int32_t>(pd.spec.route.size());
  std::int32_t target_idx = 0;
  if (pos == kFlitOutside) {
    // Entry: flits enter in worm order.
    if (k > 0 && pd.pos[k - 1] == kFlitOutside) {
      return false;
    }
    target_idx = 0;
  } else {
    // In-network: only the FIFO head of its port may leave it.
    const PortId here = mesh_->id(pd.spec.route[static_cast<std::size_t>(pos)]);
    const auto& fifo = buffers_[here];
    GENOC_ASSERT(!fifo.empty(), "position table points at an empty port");
    if (fifo.front() != FlitRef{id, k}) {
      return false;
    }
    target_idx = pos + 1;
  }
  GENOC_ASSERT(target_idx < route_len, "flit already at route end");
  if (target_idx == route_len - 1) {
    return true;  // destination Local OUT: consumption is guaranteed
  }
  const PortId target =
      mesh_->id(pd.spec.route[static_cast<std::size_t>(target_idx)]);
  return port_accepts(target, id);
}

bool NetworkState::move_flit(TravelId id, std::uint32_t k) {
  GENOC_REQUIRE(can_flit_move(id, k),
                "move_flit requires can_flit_move (travel " +
                    std::to_string(id) + ", flit " + std::to_string(k) + ")");
  PacketData& pd = data(id);
  const std::int32_t pos = pd.pos[k];
  const auto route_len = static_cast<std::int32_t>(pd.spec.route.size());
  if (pos >= 0) {
    const PortId here = mesh_->id(pd.spec.route[static_cast<std::size_t>(pos)]);
    buffers_[here].pop_front();
  }
  const std::int32_t target_idx = (pos == kFlitOutside) ? 0 : pos + 1;
  if (target_idx == route_len - 1) {
    pd.pos[k] = kFlitDelivered;
    ++pd.delivered;
    return true;
  }
  const PortId target =
      mesh_->id(pd.spec.route[static_cast<std::size_t>(target_idx)]);
  buffers_[target].push_back(FlitRef{id, k});
  pd.pos[k] = target_idx;
  return false;
}

std::uint64_t NetworkState::total_remaining_hops() const {
  std::uint64_t total = 0;
  for (const auto& [id, pd] : packets_) {
    (void)id;
    const auto route_len = static_cast<std::uint64_t>(pd.spec.route.size());
    for (const std::int32_t pos : pd.pos) {
      if (pos == kFlitDelivered) {
        continue;
      }
      if (pos == kFlitOutside) {
        total += route_len;  // entry move + (route_len - 1) hops
      } else {
        total += route_len - 1 - static_cast<std::uint64_t>(pos);
      }
    }
  }
  return total;
}

std::uint64_t NetworkState::digest() const {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = 0xD1B54A32D192ED03ULL;
  h = mix(h, capacity_.size());
  for (PortId pid = 0; pid < buffers_.size(); ++pid) {
    h = mix(h, capacity_[pid]);
    for (const FlitRef& f : buffers_[pid]) {
      h = mix(h, (static_cast<std::uint64_t>(f.travel) << 32) | f.index);
    }
    h = mix(h, 0xA5A5A5A5ULL);  // port boundary marker
  }
  // Packets in id order so the digest is independent of map iteration.
  std::vector<TravelId> ids = ids_;
  std::sort(ids.begin(), ids.end());
  for (const TravelId id : ids) {
    const PacketData& pd = packets_.at(id);
    h = mix(h, id);
    h = mix(h, pd.spec.flit_count);
    for (const std::int32_t pos : pd.pos) {
      h = mix(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(pos)));
    }
  }
  return h;
}

void NetworkState::validate() const {
  // Port-side invariants.
  for (PortId pid = 0; pid < buffers_.size(); ++pid) {
    const auto& fifo = buffers_[pid];
    GENOC_ASSERT(fifo.size() <= capacity_[pid],
                 "buffer overflow at " + to_string(mesh_->port(pid)));
    for (std::size_t i = 0; i < fifo.size(); ++i) {
      GENOC_ASSERT(fifo[i].travel == fifo.front().travel,
                   "port " + to_string(mesh_->port(pid)) +
                       " holds flits of two packets");
      if (i > 0) {
        GENOC_ASSERT(fifo[i].index == fifo[i - 1].index + 1,
                     "non-contiguous flit order in port " +
                         to_string(mesh_->port(pid)));
      }
      const auto it = packets_.find(fifo[i].travel);
      GENOC_ASSERT(it != packets_.end(), "port holds flit of unknown packet");
      const PacketData& pd = it->second;
      GENOC_ASSERT(fifo[i].index < pd.spec.flit_count,
                   "port holds out-of-range flit index");
      const std::int32_t pos = pd.pos[fifo[i].index];
      GENOC_ASSERT(pos >= 0 && pd.spec.route[static_cast<std::size_t>(pos)] ==
                                   mesh_->port(pid),
                   "flit position table disagrees with port content");
    }
  }
  // Packet-side invariants.
  for (const auto& [id, pd] : packets_) {
    GENOC_ASSERT(pd.pos.size() == pd.spec.flit_count,
                 "position table size mismatch");
    std::uint32_t delivered = 0;
    for (std::size_t k = 0; k < pd.pos.size(); ++k) {
      const std::int32_t pos = pd.pos[k];
      if (pos == kFlitDelivered) {
        ++delivered;
      }
      if (k > 0) {
        // The worm never reorders: flit k is never ahead of flit k-1.
        const std::int32_t prev = pd.pos[k - 1];
        const auto effective = [&](std::int32_t p) {
          if (p == kFlitDelivered) {
            return static_cast<std::int32_t>(pd.spec.route.size());
          }
          return p;  // kFlitOutside == -1 orders naturally below 0
        };
        GENOC_ASSERT(effective(prev) >= effective(pos),
                     "worm order violated for travel " + std::to_string(id));
      }
      if (pos >= 0) {
        const PortId here =
            mesh_->id(pd.spec.route[static_cast<std::size_t>(pos)]);
        bool found = false;
        for (const FlitRef& f : buffers_[here]) {
          if (f == FlitRef{id, static_cast<std::uint32_t>(k)}) {
            found = true;
            break;
          }
        }
        GENOC_ASSERT(found, "flit position table points at a port that does "
                            "not hold the flit");
      }
    }
    GENOC_ASSERT(delivered == pd.delivered, "delivered count out of sync");
  }
}

}  // namespace genoc
