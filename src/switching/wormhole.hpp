/// \file wormhole.hpp
/// \brief The wormhole switching policy Swh (paper Sec. V.4, after Borrione
///        et al.).
///
/// One step processes every travel in list order (mirroring the ACL2 list
/// recursion) and, within a travel, its flits from header to tail. A flit
/// advances one hop iff its port's FIFO discipline and the next port's
/// buffer availability/single-packet ownership allow it; processing
/// header-first lets a worm pipeline — the header vacates a buffer that the
/// first body flit immediately reuses, so the whole worm advances by (at
/// most) one hop per step.
#pragma once

#include "switching/policy.hpp"

namespace genoc {

class WormholeSwitching final : public SwitchingPolicy {
 public:
  std::string name() const override { return "wormhole"; }

  StepResult step(NetworkState& state) const override;

  bool can_any_move(const NetworkState& state) const override;
};

}  // namespace genoc
