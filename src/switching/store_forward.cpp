#include "switching/store_forward.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace genoc {

namespace {

/// Transfer state of a store-and-forward packet: which flit (if any) may
/// move this step. A link transmits one flit per step, so a hop costs
/// flit_count steps; a new hop only begins once the whole packet has
/// accumulated at one port AND the next port can hold all of it.
struct SfMove {
  bool movable = false;
  std::uint32_t flit = 0;
};

SfMove next_move(const NetworkState& state, TravelId id) {
  if (state.packet_delivered(id)) {
    return {};
  }
  const PacketSpec& spec = state.packet(id);
  // Partition the undelivered flits by position; store-and-forward keeps
  // them within two adjacent positions (back group still at the previous
  // port, front group already across).
  std::int32_t back = std::numeric_limits<std::int32_t>::max();
  std::int32_t front = std::numeric_limits<std::int32_t>::min();
  std::uint32_t back_flit = 0;
  for (std::uint32_t k = 0; k < spec.flit_count; ++k) {
    const std::int32_t pos = state.flit_pos(id, k);
    if (pos == kFlitDelivered) {
      continue;
    }
    if (pos < back) {
      back = pos;
      back_flit = k;
    }
    front = std::max(front, pos);
    if (pos == back && k < back_flit) {
      back_flit = k;
    }
  }
  GENOC_ASSERT(front - back <= 1, "store-and-forward packet torn apart");

  const Mesh2D& mesh = state.mesh();
  const auto route_len = static_cast<std::int32_t>(spec.route.size());
  if (front != back) {
    // Transfer in progress: the next flit of the back group crosses. The
    // target was reserved when the transfer started, so it always fits.
    return {true, back_flit};
  }
  // Whole packet at one position: may a new hop begin?
  const std::int32_t target_idx = back + 1;
  GENOC_ASSERT(target_idx < route_len, "undelivered packet at route end");
  if (target_idx == route_len - 1) {
    return {true, back_flit};  // consumption at the destination Local OUT
  }
  const PortId target =
      mesh.id(spec.route[static_cast<std::size_t>(target_idx)]);
  if (state.port_owner(target).has_value()) {
    return {};  // the whole target buffer must be claimable
  }
  if (state.capacity(target) < spec.flit_count) {
    return {};  // the packet will never fit: permanently blocked here
  }
  return {true, back_flit};
}

}  // namespace

bool StoreForwardSwitching::packet_can_advance(const NetworkState& state,
                                               TravelId id) const {
  return next_move(state, id).movable;
}

StepResult StoreForwardSwitching::step(NetworkState& state) const {
  StepResult result;
  for (const TravelId id : state.packet_ids()) {
    const SfMove move = next_move(state, id);
    if (!move.movable) {
      continue;
    }
    const bool was_outside = !state.packet_in_network(id);
    GENOC_ASSERT(state.can_flit_move(id, move.flit),
                 "store-and-forward move rejected by the state");
    const bool delivered_flit = state.move_flit(id, move.flit);
    ++result.flits_moved;
    if (delivered_flit && move.flit == state.packet(id).flit_count - 1) {
      result.delivered.push_back(id);
    }
    if (was_outside && state.packet_in_network(id)) {
      result.entered.push_back(id);
    }
  }
  return result;
}

bool StoreForwardSwitching::can_any_move(const NetworkState& state) const {
  for (const TravelId id : state.packet_ids()) {
    if (packet_can_advance(state, id)) {
      return true;
    }
  }
  return false;
}

}  // namespace genoc
