#include "switching/wormhole.hpp"

namespace genoc {

StepResult WormholeSwitching::step(NetworkState& state) const {
  StepResult result;
  for (const TravelId id : state.packet_ids()) {
    if (state.packet_delivered(id)) {
      continue;
    }
    const std::uint32_t flit_count = state.packet(id).flit_count;
    const bool was_outside = !state.packet_in_network(id);
    for (std::uint32_t k = 0; k < flit_count; ++k) {
      if (!state.can_flit_move(id, k)) {
        continue;
      }
      const bool delivered_flit = state.move_flit(id, k);
      ++result.flits_moved;
      if (delivered_flit && k == flit_count - 1) {
        result.delivered.push_back(id);
      }
    }
    if (was_outside && state.packet_in_network(id)) {
      result.entered.push_back(id);
    }
  }
  return result;
}

bool WormholeSwitching::can_any_move(const NetworkState& state) const {
  for (const TravelId id : state.packet_ids()) {
    if (state.packet_delivered(id)) {
      continue;
    }
    const std::uint32_t flit_count = state.packet(id).flit_count;
    for (std::uint32_t k = 0; k < flit_count; ++k) {
      if (state.can_flit_move(id, k)) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace genoc
