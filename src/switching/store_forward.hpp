/// \file store_forward.hpp
/// \brief Store-and-forward switching baseline.
///
/// The whole packet is buffered at each port before moving on: a hop may
/// begin only when the next port can hold ALL of the packet's flits, and a
/// link transmits one flit per step, so each hop costs flit_count steps —
/// no pipelining across hops. Included as the classical comparison point
/// for the wormhole policy (the paper's Sec. II motivates wormhole as
/// HERMES' choice); it requires flit_count <= buffer capacity along the
/// route to make progress at all.
#pragma once

#include "switching/policy.hpp"

namespace genoc {

class StoreForwardSwitching final : public SwitchingPolicy {
 public:
  std::string name() const override { return "store-and-forward"; }

  StepResult step(NetworkState& state) const override;

  bool can_any_move(const NetworkState& state) const override;

 private:
  /// A packet can move a flit iff a transfer to the next port is already in
  /// progress, or all its undelivered flits sit together and the next route
  /// port has room for the entire packet (or is the destination Local OUT).
  bool packet_can_advance(const NetworkState& state, TravelId id) const;
};

}  // namespace genoc
