#include "switching/policy.hpp"

namespace genoc {

bool is_deadlock(const SwitchingPolicy& policy, const NetworkState& state) {
  return state.undelivered_count() > 0 && !policy.can_any_move(state);
}

}  // namespace genoc
