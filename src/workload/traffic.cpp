#include "workload/traffic.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace genoc {

namespace {

NodeCoord node_at(const Mesh2D& mesh, std::size_t index) {
  const auto width = static_cast<std::size_t>(mesh.width());
  return NodeCoord{static_cast<std::int32_t>(index % width),
                   static_cast<std::int32_t>(index / width)};
}

std::size_t index_of(const Mesh2D& mesh, NodeCoord node) {
  return static_cast<std::size_t>(node.y) *
             static_cast<std::size_t>(mesh.width()) +
         static_cast<std::size_t>(node.x);
}

NodeCoord random_node(const Mesh2D& mesh, Rng& rng) {
  return node_at(mesh, static_cast<std::size_t>(rng.below(mesh.node_count())));
}

}  // namespace

std::vector<TrafficPair> uniform_random_traffic(const Mesh2D& mesh,
                                                std::size_t count, Rng& rng,
                                                bool allow_self) {
  std::vector<TrafficPair> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const NodeCoord src = random_node(mesh, rng);
    const NodeCoord dst = random_node(mesh, rng);
    if (!allow_self && src == dst) {
      continue;
    }
    pairs.push_back(TrafficPair{src, dst});
  }
  return pairs;
}

std::vector<TrafficPair> transpose_traffic(const Mesh2D& mesh) {
  std::vector<TrafficPair> pairs;
  for (const NodeCoord node : mesh.nodes()) {
    const NodeCoord dst{node.y % mesh.width(), node.x % mesh.height()};
    if (dst != node) {
      pairs.push_back(TrafficPair{node, dst});
    }
  }
  return pairs;
}

std::vector<TrafficPair> bit_reversal_traffic(const Mesh2D& mesh) {
  const std::size_t n = mesh.node_count();
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) {
    ++bits;
  }
  std::vector<TrafficPair> pairs;
  for (const NodeCoord node : mesh.nodes()) {
    const std::size_t index = index_of(mesh, node);
    std::size_t reversed = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if ((index >> b) & 1U) {
        reversed |= std::size_t{1} << (bits - 1 - b);
      }
    }
    reversed %= n;
    const NodeCoord dst = node_at(mesh, reversed);
    if (dst != node) {
      pairs.push_back(TrafficPair{node, dst});
    }
  }
  return pairs;
}

std::vector<TrafficPair> hotspot_traffic(const Mesh2D& mesh, std::size_t count,
                                         NodeCoord hotspot,
                                         double hotspot_fraction, Rng& rng) {
  GENOC_REQUIRE(mesh.contains_node(hotspot.x, hotspot.y),
                "hotspot outside mesh");
  GENOC_REQUIRE(hotspot_fraction >= 0.0 && hotspot_fraction <= 1.0,
                "hotspot fraction must be a probability");
  std::vector<TrafficPair> pairs;
  pairs.reserve(count);
  while (pairs.size() < count) {
    const NodeCoord src = random_node(mesh, rng);
    const NodeCoord dst =
        rng.chance(hotspot_fraction) ? hotspot : random_node(mesh, rng);
    if (src == dst) {
      continue;
    }
    pairs.push_back(TrafficPair{src, dst});
  }
  return pairs;
}

std::vector<TrafficPair> all_to_one_traffic(const Mesh2D& mesh,
                                            NodeCoord target) {
  GENOC_REQUIRE(mesh.contains_node(target.x, target.y), "target outside mesh");
  std::vector<TrafficPair> pairs;
  for (const NodeCoord node : mesh.nodes()) {
    if (node != target) {
      pairs.push_back(TrafficPair{node, target});
    }
  }
  return pairs;
}

std::vector<TrafficPair> one_to_all_traffic(const Mesh2D& mesh,
                                            NodeCoord source) {
  GENOC_REQUIRE(mesh.contains_node(source.x, source.y), "source outside mesh");
  std::vector<TrafficPair> pairs;
  for (const NodeCoord node : mesh.nodes()) {
    if (node != source) {
      pairs.push_back(TrafficPair{source, node});
    }
  }
  return pairs;
}

std::vector<TrafficPair> neighbor_traffic(const Mesh2D& mesh) {
  std::vector<TrafficPair> pairs;
  for (const NodeCoord node : mesh.nodes()) {
    const NodeCoord dst{(node.x + 1) % mesh.width(), node.y};
    if (dst != node) {
      pairs.push_back(TrafficPair{node, dst});
    }
  }
  return pairs;
}

std::vector<TrafficPair> permutation_traffic(const Mesh2D& mesh, Rng& rng) {
  const std::size_t n = mesh.node_count();
  const std::vector<std::size_t> perm = rng.permutation(n);
  std::vector<TrafficPair> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    if (perm[i] != i) {
      pairs.push_back(TrafficPair{node_at(mesh, i), node_at(mesh, perm[i])});
    }
  }
  return pairs;
}

std::vector<TrafficPair> ring_traffic(const Mesh2D& mesh, std::size_t stride) {
  GENOC_REQUIRE(stride >= 1, "ring stride must be positive");
  // Collect the perimeter clockwise starting at (0, 0).
  std::vector<NodeCoord> ring;
  const std::int32_t w = mesh.width();
  const std::int32_t h = mesh.height();
  for (std::int32_t x = 0; x < w; ++x) {
    ring.push_back(NodeCoord{x, 0});
  }
  for (std::int32_t y = 1; y < h; ++y) {
    ring.push_back(NodeCoord{w - 1, y});
  }
  if (h > 1) {
    for (std::int32_t x = w - 2; x >= 0; --x) {
      ring.push_back(NodeCoord{x, h - 1});
    }
  }
  if (w > 1) {
    for (std::int32_t y = h - 2; y >= 1; --y) {
      ring.push_back(NodeCoord{0, y});
    }
  }
  std::vector<TrafficPair> pairs;
  for (std::size_t i = 0; i < ring.size(); ++i) {
    const NodeCoord dst = ring[(i + stride) % ring.size()];
    if (dst != ring[i]) {
      pairs.push_back(TrafficPair{ring[i], dst});
    }
  }
  return pairs;
}

const char* traffic_pattern_name(TrafficPattern pattern) {
  switch (pattern) {
    case TrafficPattern::kUniformRandom:
      return "uniform-random";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kBitReversal:
      return "bit-reversal";
    case TrafficPattern::kHotspot:
      return "hotspot";
    case TrafficPattern::kAllToOne:
      return "all-to-one";
    case TrafficPattern::kNeighbor:
      return "neighbor";
    case TrafficPattern::kPermutation:
      return "permutation";
    case TrafficPattern::kRing:
      return "ring";
  }
  return "?";
}

std::optional<TrafficPattern> parse_traffic_pattern(const std::string& name) {
  std::string canon = name;
  std::replace(canon.begin(), canon.end(), '_', '-');
  if (canon == "uniform" || canon == "bitrev") {
    canon = canon == "uniform" ? "uniform-random" : "bit-reversal";
  }
  for (const TrafficPattern pattern :
       {TrafficPattern::kUniformRandom, TrafficPattern::kTranspose,
        TrafficPattern::kBitReversal, TrafficPattern::kHotspot,
        TrafficPattern::kAllToOne, TrafficPattern::kNeighbor,
        TrafficPattern::kPermutation, TrafficPattern::kRing}) {
    if (canon == traffic_pattern_name(pattern)) {
      return pattern;
    }
  }
  return std::nullopt;
}

std::vector<TrafficPair> generate_traffic(TrafficPattern pattern,
                                          const Mesh2D& mesh,
                                          std::size_t count, Rng& rng) {
  const NodeCoord centre{mesh.width() / 2, mesh.height() / 2};
  switch (pattern) {
    case TrafficPattern::kUniformRandom:
      return uniform_random_traffic(mesh, count, rng);
    case TrafficPattern::kTranspose:
      return transpose_traffic(mesh);
    case TrafficPattern::kBitReversal:
      return bit_reversal_traffic(mesh);
    case TrafficPattern::kHotspot:
      return hotspot_traffic(mesh, count, centre, 0.5, rng);
    case TrafficPattern::kAllToOne:
      return all_to_one_traffic(mesh, centre);
    case TrafficPattern::kNeighbor:
      return neighbor_traffic(mesh);
    case TrafficPattern::kPermutation:
      return permutation_traffic(mesh, rng);
    case TrafficPattern::kRing:
      return ring_traffic(mesh, std::max<std::size_t>(1, mesh.node_count() / 4));
  }
  GENOC_REQUIRE(false, "unknown traffic pattern");
}

}  // namespace genoc
