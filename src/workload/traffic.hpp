/// \file traffic.hpp
/// \brief Traffic-pattern generators: the travel lists fed to GeNoC2D.
///
/// The paper considers "an initial list — of arbitrary size — of messages".
/// These generators produce the (source, destination) pair lists used by
/// the evacuation experiments, the Table I obligation runs, and the
/// routing-comparison ablations. All generators are deterministic given
/// their Rng seed.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "topology/mesh.hpp"
#include "util/rng.hpp"

namespace genoc {

/// A (source node, destination node) pair — the unit of traffic generation.
struct TrafficPair {
  NodeCoord source;
  NodeCoord dest;
};

/// \p count pairs with source and destination drawn uniformly; self-pairs
/// (source == dest) allowed iff \p allow_self (they exercise the two-port
/// Local IN -> Local OUT route).
std::vector<TrafficPair> uniform_random_traffic(const Mesh2D& mesh,
                                                std::size_t count, Rng& rng,
                                                bool allow_self = false);

/// Every node (x, y) sends one message to its transpose. On a W x H mesh the
/// destination is (y mod W, x mod H); nodes mapping to themselves are
/// skipped.
std::vector<TrafficPair> transpose_traffic(const Mesh2D& mesh);

/// Every node sends to the node whose row-major index has its bits
/// reversed (within ceil(log2(node_count)) bits, wrapped into range);
/// self-pairs are skipped.
std::vector<TrafficPair> bit_reversal_traffic(const Mesh2D& mesh);

/// \p count pairs; each destination is \p hotspot with probability
/// \p hotspot_fraction, uniform otherwise. Models the congested-ejection
/// scenario that stresses wormhole buffer chains.
std::vector<TrafficPair> hotspot_traffic(const Mesh2D& mesh, std::size_t count,
                                         NodeCoord hotspot,
                                         double hotspot_fraction, Rng& rng);

/// Every node except \p target sends one message to \p target.
std::vector<TrafficPair> all_to_one_traffic(const Mesh2D& mesh,
                                            NodeCoord target);

/// \p source sends one message to every other node.
std::vector<TrafficPair> one_to_all_traffic(const Mesh2D& mesh,
                                            NodeCoord source);

/// Every node sends to its east neighbour (wrapping around the row):
/// maximal pressure on the horizontal flows.
std::vector<TrafficPair> neighbor_traffic(const Mesh2D& mesh);

/// A uniformly random permutation: every node sends to a distinct node
/// (fixed points removed).
std::vector<TrafficPair> permutation_traffic(const Mesh2D& mesh, Rng& rng);

/// Boundary-ring traffic: the nodes on the mesh perimeter each send to the
/// node \p stride positions further along the ring (clockwise). This is the
/// classic pattern whose *channel* demands form a ring — harmless under XY
/// (which breaks the ring), but it maximizes contention and is the natural
/// stress input for the adaptive-routing ablation.
std::vector<TrafficPair> ring_traffic(const Mesh2D& mesh, std::size_t stride);

/// Named patterns for parameter sweeps.
enum class TrafficPattern {
  kUniformRandom,
  kTranspose,
  kBitReversal,
  kHotspot,
  kAllToOne,
  kNeighbor,
  kPermutation,
  kRing,
};

const char* traffic_pattern_name(TrafficPattern pattern);

/// Inverse of traffic_pattern_name, tolerant of spelling variants: accepts
/// the canonical dashed names plus '_' for '-' ("bit_reversal"), the
/// shorthands "uniform" and "bitrev". Returns nullopt for unknown names.
/// Shared by `genoc sim --pattern` and the instance spec parser.
std::optional<TrafficPattern> parse_traffic_pattern(const std::string& name);

/// Dispatches to the generator for \p pattern. \p count is used by the
/// randomized patterns (uniform, hotspot); structured patterns derive their
/// size from the mesh. Hotspot/all-to-one target the mesh centre.
std::vector<TrafficPair> generate_traffic(TrafficPattern pattern,
                                          const Mesh2D& mesh,
                                          std::size_t count, Rng& rng);

}  // namespace genoc
