#include "instance/spec.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <tuple>

#include "topology/mesh.hpp"
#include "topology/topology.hpp"
#include "workload/traffic.hpp"

namespace genoc {

namespace {

std::string normalize(std::string value) {
  std::transform(value.begin(), value.end(), value.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  std::replace(value.begin(), value.end(), '-', '_');
  return value;
}

bool contains(const std::vector<std::string>& values,
              const std::string& value) {
  return std::find(values.begin(), values.end(), value) != values.end();
}

/// Parses an unsigned integer in [lo, hi]; complains into *error.
bool parse_uint(const std::string& key, const std::string& value,
                std::uint64_t lo, std::uint64_t hi, std::uint64_t* out,
                std::string* error) {
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    *error = "bad value for " + key + ": '" + value + "' is not a number";
    return false;
  }
  if (parsed < lo || parsed > hi) {
    *error = "bad value for " + key + ": " + value + " is outside [" +
             std::to_string(lo) + ", " + std::to_string(hi) + "]";
    return false;
  }
  *out = parsed;
  return true;
}

/// Parses `size=N` (square) or `size=WxH`.
bool parse_size(const std::string& value, InstanceSpec* spec,
                std::string* error) {
  const std::size_t cross = value.find('x');
  std::uint64_t w = 0;
  std::uint64_t h = 0;
  if (cross == std::string::npos) {
    if (!parse_uint("size", value, 1, 512, &w, error)) {
      return false;
    }
    h = w;
  } else {
    if (!parse_uint("size", value.substr(0, cross), 1, 512, &w, error) ||
        !parse_uint("size", value.substr(cross + 1), 1, 512, &h, error)) {
      return false;
    }
  }
  spec->width = static_cast<std::int32_t>(w);
  spec->height = static_cast<std::int32_t>(h);
  return true;
}

/// Splits the comma-separated value of a `failed=` token. Empty segments
/// (trailing or doubled commas) surface as empty tokens the per-token
/// parser rejects with a precise message.
std::vector<std::string> split_failed_links(const std::string& value) {
  std::vector<std::string> tokens;
  std::size_t begin = 0;
  while (begin <= value.size()) {
    const std::size_t comma = value.find(',', begin);
    const std::size_t end = comma == std::string::npos ? value.size() : comma;
    tokens.push_back(value.substr(begin, end - begin));
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return tokens;
}

/// The registered topology family names, comma-joined for error messages.
std::string family_name_list() {
  std::string joined;
  for (const TopologyFamilyInfo& family : topology_families()) {
    if (!joined.empty()) {
      joined += ", ";
    }
    joined += family.name;
  }
  return joined;
}

}  // namespace

const std::vector<std::string>& known_topologies() {
  static const std::vector<std::string> values = [] {
    std::vector<std::string> names;
    for (const TopologyFamilyInfo& family : topology_families()) {
      names.push_back(family.name);
    }
    return names;
  }();
  return values;
}

const std::vector<std::string>& known_routings() {
  static const std::vector<std::string> values = {
      "xy",         "yx",             "torus_xy", "west_first",
      "north_last", "negative_first", "odd_even", "fully_adaptive",
      "cmesh_dor",  "dragonfly_min"};
  return values;
}

const std::vector<std::string>& known_switchings() {
  static const std::vector<std::string> values = {"wormhole",
                                                  "store_forward"};
  return values;
}

const std::vector<std::string>& turn_model_routings() {
  static const std::vector<std::string> values = {
      "west_first", "north_last", "negative_first", "odd_even"};
  return values;
}

std::optional<InstanceSpec> parse_instance_spec(const std::string& text,
                                                std::string* error) {
  InstanceSpec spec;
  std::string local_error;
  std::string* err = error != nullptr ? error : &local_error;
  std::istringstream tokens(text);
  std::string token;
  bool any = false;
  while (tokens >> token) {
    any = true;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == token.size()) {
      *err = "malformed token '" + token + "': expected key=value";
      return std::nullopt;
    }
    const std::string key = normalize(token.substr(0, eq));
    const std::string raw = token.substr(eq + 1);
    std::uint64_t number = 0;
    if (key == "topology") {
      spec.topology = normalize(raw);
      if (!contains(known_topologies(), spec.topology)) {
        *err = "unknown topology '" + raw +
               "' (registered families: " + family_name_list() + ")";
        return std::nullopt;
      }
    } else if (key == "size") {
      if (!parse_size(normalize(raw), &spec, err)) {
        return std::nullopt;
      }
    } else if (key == "width") {
      if (!parse_uint(key, raw, 1, 512, &number, err)) {
        return std::nullopt;
      }
      spec.width = static_cast<std::int32_t>(number);
    } else if (key == "height") {
      if (!parse_uint(key, raw, 1, 512, &number, err)) {
        return std::nullopt;
      }
      spec.height = static_cast<std::int32_t>(number);
    } else if (key == "routing") {
      spec.routing = normalize(raw);
      if (!contains(known_routings(), spec.routing)) {
        *err = "unknown routing '" + raw + "'";
        return std::nullopt;
      }
    } else if (key == "switching") {
      std::string value = normalize(raw);
      if (value == "sf" || value == "store_and_forward") {
        value = "store_forward";
      }
      spec.switching = value;
      if (!contains(known_switchings(), spec.switching)) {
        *err = "unknown switching '" + raw +
               "' (try: wormhole, store_forward)";
        return std::nullopt;
      }
    } else if (key == "buffers") {
      if (!parse_uint(key, raw, 1, 64, &number, err)) {
        return std::nullopt;
      }
      spec.buffers = static_cast<std::uint32_t>(number);
    } else if (key == "concentration") {
      if (!parse_uint(key, raw, 1, 8, &number, err)) {
        return std::nullopt;
      }
      spec.concentration = static_cast<std::uint32_t>(number);
    } else if (key == "routers") {
      if (!parse_uint(key, raw, 2, 16, &number, err)) {
        return std::nullopt;
      }
      spec.df_routers = static_cast<std::uint32_t>(number);
    } else if (key == "globals") {
      if (!parse_uint(key, raw, 1, 8, &number, err)) {
        return std::nullopt;
      }
      spec.df_globals = static_cast<std::uint32_t>(number);
    } else if (key == "terminals") {
      if (!parse_uint(key, raw, 1, 8, &number, err)) {
        return std::nullopt;
      }
      spec.df_terminals = static_cast<std::uint32_t>(number);
    } else if (key == "groups") {
      if (!parse_uint(key, raw, 2, 129, &number, err)) {
        return std::nullopt;
      }
      spec.df_groups = static_cast<std::uint32_t>(number);
    } else if (key == "expect") {
      const std::string value = normalize(raw);
      if (value == "free" || value == "deadlock_free") {
        spec.expect_deadlock_free = true;
      } else if (value == "deadlock" || value == "cycle") {
        spec.expect_deadlock_free = false;
      } else {
        *err = "bad value for expect: '" + raw + "' (try: free, deadlock)";
        return std::nullopt;
      }
    } else if (key == "escape") {
      const std::string value = normalize(raw);
      spec.escape = value == "none" ? "" : value;
      if (!spec.escape.empty() && !contains(known_routings(), spec.escape)) {
        *err = "unknown escape routing '" + raw + "'";
        return std::nullopt;
      }
    } else if (key == "failed") {
      // Later tokens override earlier ones, like every other key; tokens
      // are syntax-checked here and canonicalized after the loop (the
      // geometry keys they canonicalize against may come later).
      spec.failed_links.clear();
      if (normalize(raw) != "none") {
        for (const std::string& fault_token : split_failed_links(raw)) {
          if (!parse_link_fault(fault_token, err)) {
            return std::nullopt;
          }
          spec.failed_links.push_back(fault_token);
        }
      }
    } else if (key == "pattern") {
      const auto pattern = parse_traffic_pattern(normalize(raw));
      if (!pattern) {
        *err = "unknown pattern '" + raw + "'";
        return std::nullopt;
      }
      spec.pattern = traffic_pattern_name(*pattern);
    } else if (key == "messages") {
      if (!parse_uint(key, raw, 0, 1000000, &number, err)) {
        return std::nullopt;
      }
      spec.messages = static_cast<std::uint32_t>(number);
    } else if (key == "flits") {
      if (!parse_uint(key, raw, 1, 1024, &number, err)) {
        return std::nullopt;
      }
      spec.flits = static_cast<std::uint32_t>(number);
    } else if (key == "seed") {
      if (!parse_uint(key, raw, 0, UINT64_MAX, &number, err)) {
        return std::nullopt;
      }
      spec.seed = number;
    } else {
      *err = "unknown key '" + key +
             "' (known: topology size width height concentration routers "
             "globals terminals groups routing switching buffers escape "
             "failed expect pattern messages flits seed)";
      return std::nullopt;
    }
  }
  if (!any) {
    *err = "empty instance spec";
    return std::nullopt;
  }
  // Canonicalize the fault set against the FINAL geometry so equal fault
  // sets parse to equal specs (and equal artifact-store keys) regardless
  // of token order or which channel endpoint named each link.
  if (!spec.failed_links.empty()) {
    spec = spec.with_failed_links(spec.failed_links);
  }
  const std::string invalid = validate_spec(spec);
  if (!invalid.empty()) {
    *err = invalid;
    return std::nullopt;
  }
  return spec;
}

std::string to_spec_string(const InstanceSpec& spec) {
  std::ostringstream os;
  os << "topology=" << spec.topology;
  if (spec.topology == "dragonfly") {
    os << " routers=" << spec.df_routers << " globals=" << spec.df_globals
       << " terminals=" << spec.df_terminals;
    if (spec.df_groups != 0) {
      os << " groups=" << spec.df_groups;
    }
  } else {
    os << " size=" << spec.width << "x" << spec.height;
    if (spec.topology == "cmesh") {
      os << " concentration=" << spec.concentration;
    }
  }
  os << " routing=" << spec.routing << " switching=" << spec.switching
     << " buffers=" << spec.buffers;
  if (!spec.escape.empty()) {
    os << " escape=" << spec.escape;
  }
  if (!spec.failed_links.empty()) {
    os << " failed=" << join_failed_links(spec.failed_links);
  }
  if (!spec.expect_deadlock_free) {
    os << " expect=deadlock";
  }
  os << " pattern=" << spec.pattern << " messages=" << spec.messages
     << " flits=" << spec.flits << " seed=" << spec.seed;
  return os.str();
}

std::string join_failed_links(const std::vector<std::string>& links) {
  std::string joined;
  for (const std::string& token : links) {
    if (!joined.empty()) {
      joined += ",";
    }
    joined += token;
  }
  return joined;
}

InstanceSpec InstanceSpec::with_failed_links(
    const std::vector<std::string>& links) const {
  InstanceSpec result = *this;
  result.failed_links.clear();
  result.failed_links.reserve(links.size());
  // Sort key: parsed tokens by their canonical (node, name) pair, with the
  // rendered token as tiebreaker; unparsable tokens sort after every valid
  // one (lexicographically) and survive verbatim for validate_spec to
  // reject with a real message.
  std::vector<std::tuple<int, std::int32_t, int, std::string>> keyed;
  keyed.reserve(links.size());
  for (const std::string& token : links) {
    const std::optional<LinkFault> fault = parse_link_fault(token, nullptr);
    if (!fault) {
      keyed.emplace_back(1, 0, 0, token);
      continue;
    }
    const LinkFault canonical = canonical_link_fault(
        *fault, width, height, wrap_x(), wrap_y());
    keyed.emplace_back(0, canonical.node, static_cast<int>(canonical.name),
                       link_fault_token(canonical));
  }
  std::sort(keyed.begin(), keyed.end());
  for (const auto& [unparsable, node, name, token] : keyed) {
    result.failed_links.push_back(token);
  }
  return result;
}

std::string validate_spec(const InstanceSpec& spec) {
  if (!contains(known_topologies(), spec.topology)) {
    return "unknown topology '" + spec.topology +
           "' (registered families: " + family_name_list() + ")";
  }
  if (spec.topology != "dragonfly") {
    if (spec.width < 1 || spec.width > 512 || spec.height < 1 ||
        spec.height > 512) {
      return "dimensions must be within 1..512";
    }
    if (static_cast<std::int64_t>(spec.width) * spec.height < 2) {
      return "a 1x1 network has no interconnect to verify";
    }
  }
  if (spec.wrap_x() && spec.width < 2) {
    return "wrapping x requires width >= 2";
  }
  if (spec.wrap_y() && spec.height < 2) {
    return "wrapping y requires height >= 2";
  }
  if (!contains(known_routings(), spec.routing)) {
    return "unknown routing '" + spec.routing + "'";
  }
  if (spec.routing == "torus_xy" && !spec.wrap_x() && !spec.wrap_y()) {
    return "routing torus_xy requires a wrapped topology (torus or ring)";
  }
  // Each non-grid family pairs with its own routing function, and the grid
  // functions speak the Port tuple only a grid provides.
  if (spec.topology == "cmesh" && spec.routing != "cmesh_dor") {
    return "topology cmesh requires routing cmesh_dor";
  }
  if (spec.topology == "dragonfly" && spec.routing != "dragonfly_min") {
    return "topology dragonfly requires routing dragonfly_min";
  }
  if (spec.routing == "cmesh_dor" && spec.topology != "cmesh") {
    return "routing cmesh_dor requires topology cmesh";
  }
  if (spec.routing == "dragonfly_min" && spec.topology != "dragonfly") {
    return "routing dragonfly_min requires topology dragonfly";
  }
  if (spec.topology == "cmesh" &&
      (spec.concentration < 1 || spec.concentration > 8)) {
    return "concentration must be within 1..8";
  }
  if (spec.topology == "dragonfly") {
    if (spec.df_routers < 2 || spec.df_routers > 16) {
      return "routers must be within 2..16";
    }
    if (spec.df_globals < 1 || spec.df_globals > 8) {
      return "globals must be within 1..8";
    }
    if (spec.df_terminals < 1 || spec.df_terminals > 8) {
      return "terminals must be within 1..8";
    }
    const std::uint32_t max_groups = spec.df_routers * spec.df_globals + 1;
    if (spec.df_groups_resolved() < 2 ||
        spec.df_groups_resolved() > max_groups) {
      return "groups must be within 2.." + std::to_string(max_groups) +
             " (routers*globals+1)";
    }
  }
  if (!spec.failed_links.empty()) {
    if (!spec.is_grid()) {
      return "failed links are grid-only (faults name mesh/torus/ring "
             "channels)";
    }
    if (spec.failed_links.size() > 4096) {
      return "at most 4096 failed links per instance";
    }
    for (const std::string& token : spec.failed_links) {
      std::string fault_error;
      const std::optional<LinkFault> fault =
          parse_link_fault(token, &fault_error);
      if (!fault) {
        return fault_error;
      }
      if (!link_fault_exists(*fault, spec.width, spec.height, spec.wrap_x(),
                             spec.wrap_y())) {
        return "failed link '" + token + "' does not exist in a " +
               std::to_string(spec.width) + "x" + std::to_string(spec.height) +
               " " + spec.topology + " (node out of range or boundary port)";
      }
    }
  }
  if (!spec.escape.empty() && !spec.is_grid()) {
    return "escape lanes are grid-only (the Duato analysis runs over the "
           "Port tuple)";
  }
  if (!spec.escape.empty() && spec.escape != "xy" && spec.escape != "yx") {
    return "escape must be a deterministic deadlock-free routing (xy or yx)";
  }
  if (!contains(known_switchings(), spec.switching)) {
    return "unknown switching '" + spec.switching + "'";
  }
  if (!parse_traffic_pattern(spec.pattern)) {
    return "unknown pattern '" + spec.pattern + "'";
  }
  if (spec.buffers < 1 || spec.buffers > 64) {
    return "buffers must be within 1..64";
  }
  if (spec.flits < 1 || spec.flits > 1024) {
    return "flits must be within 1..1024";
  }
  if (spec.switching == "store_forward" && spec.flits > spec.buffers) {
    return "store_forward needs flits <= buffers (whole-packet buffering)";
  }
  return "";
}

}  // namespace genoc
