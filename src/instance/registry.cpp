#include "instance/registry.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace genoc {

namespace {

InstanceSpec preset(const std::string& name, const std::string& summary,
                    const std::string& spec_text) {
  std::string error;
  std::optional<InstanceSpec> spec = parse_instance_spec(spec_text, &error);
  GENOC_REQUIRE(spec.has_value(),
                "invalid preset '" + name + "': " + error);
  spec->name = name;
  spec->summary = summary;
  return *spec;
}

}  // namespace

InstanceRegistry::InstanceRegistry() {
  presets_ = {
      preset("hermes", "the paper's GeNoC2D: 4x4 HERMES mesh, XY wormhole",
             "topology=mesh size=4x4 routing=xy switching=wormhole "
             "buffers=2 pattern=uniform messages=48 flits=4 seed=2010"),
      preset("mesh8-xy", "XY on an 8x8 mesh (the bench baseline)",
             "topology=mesh size=8x8 routing=xy pattern=uniform "
             "messages=128"),
      preset("mesh8-yx", "YX (vertical-first mirror) on an 8x8 mesh",
             "topology=mesh size=8x8 routing=yx pattern=transpose"),
      preset("mesh8-westfirst", "West-First turn model on an 8x8 mesh",
             "topology=mesh size=8x8 routing=west_first pattern=uniform "
             "messages=96"),
      preset("mesh8-northlast", "North-Last turn model on an 8x8 mesh",
             "topology=mesh size=8x8 routing=north_last pattern=hotspot "
             "messages=96"),
      preset("mesh8-negfirst", "Negative-First turn model on an 8x8 mesh",
             "topology=mesh size=8x8 routing=negative_first "
             "pattern=permutation"),
      preset("mesh16-oddeven", "Odd-Even turn model on a 16x16 mesh",
             "topology=mesh size=16x16 routing=odd_even pattern=transpose"),
      preset("mesh16-xy", "XY on a 16x16 mesh (parallel-build showcase)",
             "topology=mesh size=16x16 routing=xy pattern=bit-reversal"),
      preset("mesh8-adaptive",
             "fully-adaptive lanes cured by a Duato XY escape lane",
             "topology=mesh size=8x8 routing=fully_adaptive escape=xy "
             "pattern=uniform messages=96"),
      preset("hermes-torus",
             "HERMES wrapped into a 4x4 torus: torus-XY with XY escape lane",
             "topology=torus size=4x4 routing=torus_xy escape=xy "
             "pattern=neighbor flits=2"),
      preset("torus8-xy",
             "8x8 torus, shortest-way dimension order, XY escape lane",
             "topology=torus size=8x8 routing=torus_xy escape=xy "
             "pattern=uniform messages=128 flits=2"),
      preset("mesh8-xy-sf", "store-and-forward baseline on an 8x8 mesh",
             "topology=mesh size=8x8 routing=xy switching=store_forward "
             "buffers=4 pattern=uniform messages=64"),
      preset("mesh64-xy",
             "XY on a 64x64 mesh — the per-destination fast-builder scale",
             "topology=mesh size=64x64 routing=xy pattern=uniform "
             "messages=512"),
      preset("torus64-xy-escape",
             "64x64 torus, shortest-way dimension order, XY escape lane",
             "topology=torus size=64x64 routing=torus_xy escape=xy "
             "pattern=uniform messages=256 flits=2"),
      preset("mesh128-xy",
             "XY on a 128x128 mesh (the largest sweep preset)",
             "topology=mesh size=128x128 routing=xy pattern=uniform "
             "messages=512"),
      preset("cmesh4-dor",
             "concentrated 4x4 mesh, 4 cores per router, DOR",
             "topology=cmesh size=4x4 concentration=4 routing=cmesh_dor"),
      preset("cmesh8-dor",
             "concentrated 8x8 mesh, 4 cores per router, DOR",
             "topology=cmesh size=8x8 concentration=4 routing=cmesh_dor"),
      preset("cmesh8-c2",
             "concentrated 8x8 mesh, 2 cores per router, DOR",
             "topology=cmesh size=8x8 concentration=2 routing=cmesh_dor"),
      preset("dragonfly9-min",
             "9-group dragonfly, minimal routing, no VCs: the flagship "
             "negative fixture (Theorem 1 finds the l-g-l cycle)",
             "topology=dragonfly routers=4 globals=2 terminals=2 groups=9 "
             "routing=dragonfly_min expect=deadlock"),
      preset("mesh256-xy",
             "XY on a 256x256 mesh — the compressed-closure scale target "
             "(first verifiable via the analytic dep graph + node-granular "
             "closure; heavy: excluded from `verify --all`)",
             "topology=mesh size=256x256 routing=xy pattern=uniform "
             "messages=512"),
  };
  // mesh256-xy is a dedicated CI smoke (with an RSS gate), not a sweep
  // member: its ~327k-port simulation stage would dominate every `verify
  // --all` run. Everything else joins the sweep by default — with the
  // analytic dep-graph build and the tiered closure even mesh128-xy
  // verifies well under 2 s at 4 threads.
  heavy_ = {"mesh256-xy"};
}

const InstanceRegistry& InstanceRegistry::global() {
  static const InstanceRegistry registry;
  return registry;
}

std::vector<std::string> InstanceRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(presets_.size());
  for (const InstanceSpec& spec : presets_) {
    result.push_back(spec.name);
  }
  return result;
}

bool InstanceRegistry::heavy(const std::string& name) const {
  return std::find(heavy_.begin(), heavy_.end(), name) != heavy_.end();
}

std::vector<InstanceSpec> InstanceRegistry::sweep_presets() const {
  std::vector<InstanceSpec> result;
  result.reserve(presets_.size());
  for (const InstanceSpec& spec : presets_) {
    if (!heavy(spec.name)) {
      result.push_back(spec);
    }
  }
  return result;
}

const InstanceSpec* InstanceRegistry::find(const std::string& name) const {
  const auto it =
      std::find_if(presets_.begin(), presets_.end(),
                   [&name](const InstanceSpec& spec) {
                     return spec.name == name;
                   });
  return it == presets_.end() ? nullptr : &*it;
}

std::optional<InstanceSpec> InstanceRegistry::resolve(
    const std::string& text, std::string* error) const {
  if (text.find('=') != std::string::npos) {
    return parse_instance_spec(text, error);
  }
  if (const InstanceSpec* spec = find(text)) {
    return *spec;
  }
  if (error != nullptr) {
    *error = "unknown instance '" + text + "'; registered instances:";
    for (const InstanceSpec& spec : presets_) {
      *error += " " + spec.name;
    }
    *error += " (or pass a key=value spec)";
  }
  return std::nullopt;
}

}  // namespace genoc
