/// \file network_instance.hpp
/// \brief NetworkInstance: an InstanceSpec brought to life — topology,
///        routing function, optional escape lane, switching policy and
///        workload bound into one verifiable/simulable object.
///
/// This is the layer the paper implies between the generic theory and the
/// drivers: `genoc verify/sim/export-dot` all operate on NetworkInstances
/// now, so every topology x routing x switching combination the spec
/// grammar can express goes through one code path instead of a hand-wired
/// main per experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "deadlock/depgraph.hpp"
#include "instance/spec.hpp"
#include "routing/routing.hpp"
#include "sim/simulator.hpp"
#include "switching/policy.hpp"
#include "topology/mesh.hpp"
#include "workload/traffic.hpp"

namespace genoc {

class BatchRunner;

/// Routing-function factory over the canonical names of known_routings().
/// Throws ContractViolation on unknown names — validate specs first.
std::unique_ptr<RoutingFunction> make_routing(const std::string& name,
                                              const Mesh2D& mesh);

/// Switching-policy factory over known_switchings().
std::unique_ptr<SwitchingPolicy> make_switching(const std::string& name);

/// Options for NetworkInstance::verify().
struct InstanceVerifyOptions {
  /// Shard the dependency-graph construction (per destination), the SCC
  /// stage and the escape-lane analysis across this pool; nullptr runs
  /// sequentially. Results are bit-identical either way.
  BatchRunner* runner = nullptr;
  /// Additionally discharge (C-1)/(C-2) (quadratic-ish; off for sweeps).
  bool check_constraints = false;
  /// Build the graph with the quadratic generic oracle instead of the
  /// per-destination fast builder (cross-check escape hatch; the two are
  /// bit-identical, so verdicts never differ).
  bool generic_builder = false;
};

/// Verdict of one instance verification — one row of the `genoc verify
/// --all` matrix (the Table-I-per-instance shape).
struct InstanceVerdict {
  std::string instance;   ///< display name
  std::string spec;       ///< canonical spec string
  std::string topology;
  std::string routing;    ///< human-readable routing name
  std::string switching;
  std::size_t nodes = 0;
  std::size_t ports = 0;
  std::size_t edges = 0;  ///< dependency-graph edges
  bool deterministic = false;
  bool dep_acyclic = false;
  /// The headline: deadlock-free, either via Theorem 1 directly or via the
  /// escape-lane analysis when the primary graph is cyclic.
  bool deadlock_free = false;
  std::string method;  ///< "Theorem 1 (C-3)" | "escape(<name>)" | "cycle"
  std::string note;    ///< evidence summary / first counterexample
  bool constraints_ok = true;  ///< (C-1)/(C-2), when requested
  std::uint64_t checks = 0;    ///< elementary checks (deterministic count)
  double cpu_ms = 0.0;
};

class NetworkInstance {
 public:
  /// Builds every constituent. Requires validate_spec(spec).empty();
  /// throws ContractViolation otherwise.
  explicit NetworkInstance(const InstanceSpec& spec);

  NetworkInstance(NetworkInstance&&) = default;
  NetworkInstance& operator=(NetworkInstance&&) = default;

  const InstanceSpec& spec() const { return spec_; }
  /// spec().name for presets; the canonical spec string for ad-hoc specs.
  const std::string& name() const { return display_name_; }
  const Mesh2D& mesh() const { return *mesh_; }
  const RoutingFunction& routing() const { return *routing_; }
  /// The escape-lane routing, or nullptr when the spec has none.
  const RoutingFunction* escape() const { return escape_.get(); }
  const SwitchingPolicy& switching() const { return *switching_; }

  /// The spec's workload (pattern/messages/seed), deterministically.
  std::vector<TrafficPair> make_traffic() const;

  /// The port dependency graph of the instance's routing function, built
  /// by the per-destination fast builder — sharded over destinations on
  /// \p runner when given. Bit-identical to the generic construction.
  PortDepGraph dependency_graph(BatchRunner* runner = nullptr) const;

  /// Verifies deadlock freedom: builds the dependency graph, checks (C-3);
  /// on a cyclic graph falls back to the Duato escape-lane analysis when
  /// the spec names an escape routing. Deterministic modulo cpu_ms.
  InstanceVerdict verify(const InstanceVerifyOptions& options = {}) const;

  /// Simulates \p pairs under the instance's switching policy (adaptive
  /// routes sampled from the spec seed). Audits CorrThm/EvacThm/(C-5).
  SimulationReport simulate(const std::vector<TrafficPair>& pairs,
                            const SimulationOptions& options = {}) const;

 private:
  InstanceSpec spec_;
  std::string display_name_;
  std::unique_ptr<Mesh2D> mesh_;
  std::unique_ptr<RoutingFunction> routing_;
  std::unique_ptr<RoutingFunction> escape_;
  std::unique_ptr<SwitchingPolicy> switching_;
};

}  // namespace genoc
