/// \file network_instance.hpp
/// \brief NetworkInstance: an InstanceSpec brought to life — topology,
///        routing function, optional escape lane, switching policy and
///        workload bound into one verifiable/simulable object.
///
/// This is the layer the paper implies between the generic theory and the
/// drivers: `genoc verify/sim/export-dot` all operate on NetworkInstances
/// now, so every topology x routing x switching combination the spec
/// grammar can express goes through one code path instead of a hand-wired
/// main per experiment.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "deadlock/depgraph.hpp"
#include "instance/spec.hpp"
#include "routing/routing.hpp"
#include "sim/simulator.hpp"
#include "switching/policy.hpp"
#include "topology/mesh.hpp"
#include "verify/verdict.hpp"
#include "workload/traffic.hpp"

namespace genoc {

class ThreadPool;

/// Topology factory over the registered families of known_topologies():
/// grids map to Mesh2D with the spec's wrap flags, cmesh/dragonfly to their
/// own classes. Throws ContractViolation on invalid specs.
std::unique_ptr<Topology> make_topology(const InstanceSpec& spec);

/// Routing-function factory over the canonical names of known_routings().
/// Each function REQUIRE-downcasts \p topology to the family it routes
/// (the eight grid functions need a Mesh2D, cmesh_dor a CMeshTopology,
/// dragonfly_min a DragonflyTopology) — validate specs first.
std::unique_ptr<RoutingFunction> make_routing(const std::string& name,
                                              const Topology& topology);

/// Switching-policy factory over known_switchings().
std::unique_ptr<SwitchingPolicy> make_switching(const std::string& name);

class NetworkInstance {
 public:
  /// Builds every constituent. Requires validate_spec(spec).empty();
  /// throws ContractViolation otherwise.
  explicit NetworkInstance(const InstanceSpec& spec);

  NetworkInstance(NetworkInstance&&) = default;
  NetworkInstance& operator=(NetworkInstance&&) = default;

  const InstanceSpec& spec() const { return spec_; }
  /// spec().name for presets; the canonical spec string for ad-hoc specs.
  const std::string& name() const { return display_name_; }
  /// The port graph, whatever its family.
  const Topology& topology() const { return *topo_; }
  /// The grid view; REQUIREs spec().is_grid(). The Port-tuple consumers
  /// (simulator, escape lanes, constraints) go through this accessor.
  const Mesh2D& mesh() const;
  const RoutingFunction& routing() const { return *routing_; }
  /// The escape-lane routing, or nullptr when the spec has none.
  const RoutingFunction* escape() const { return escape_.get(); }
  const SwitchingPolicy& switching() const { return *switching_; }

  /// The spec's workload (pattern/messages/seed), deterministically.
  /// Grid-only: the traffic patterns address the Port-tuple grid.
  std::vector<TrafficPair> make_traffic() const;

  /// The port dependency graph of the instance's routing function, built
  /// by the per-destination fast builder — sharded over destinations on
  /// \p runner when given. Bit-identical to the generic construction.
  PortDepGraph dependency_graph(ThreadPool* runner = nullptr) const;

  /// Verifies deadlock freedom: builds the dependency graph, checks (C-3);
  /// on a cyclic graph falls back to the Duato escape-lane analysis when
  /// the spec names an escape routing. Deterministic modulo cpu_ms.
  ///
  /// Compatibility wrapper: runs VerifyPipeline::standard() (verify/) over
  /// this instance's constituents — or over options.artifacts' shared
  /// context when a batch store is given — and returns the verdict row.
  /// Callers that want the typed Diagnostics, per-stage stats or cache
  /// counters use VerifyPipeline::run directly.
  InstanceVerdict verify(const InstanceVerifyOptions& options = {}) const;

  /// Simulates \p pairs under the instance's switching policy (adaptive
  /// routes sampled from the spec seed). Audits CorrThm/EvacThm/(C-5).
  SimulationReport simulate(const std::vector<TrafficPair>& pairs,
                            const SimulationOptions& options = {}) const;

 private:
  InstanceSpec spec_;
  std::string display_name_;
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<RoutingFunction> routing_;
  std::unique_ptr<RoutingFunction> escape_;
  std::unique_ptr<SwitchingPolicy> switching_;
};

}  // namespace genoc
