#include "instance/network_instance.hpp"

#include "deadlock/constraints.hpp"
#include "deadlock/escape.hpp"
#include "graph/cycle.hpp"
#include "graph/tarjan.hpp"
#include "instance/batch_runner.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/negative_first.hpp"
#include "routing/north_last.hpp"
#include "routing/odd_even.hpp"
#include "routing/torus_xy.hpp"
#include "routing/west_first.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"
#include "switching/store_forward.hpp"
#include "switching/wormhole.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace genoc {

std::unique_ptr<RoutingFunction> make_routing(const std::string& name,
                                              const Mesh2D& mesh) {
  if (name == "xy") {
    return std::make_unique<XYRouting>(mesh);
  }
  if (name == "yx") {
    return std::make_unique<YXRouting>(mesh);
  }
  if (name == "torus_xy") {
    return std::make_unique<TorusXYRouting>(mesh);
  }
  if (name == "west_first") {
    return std::make_unique<WestFirstRouting>(mesh);
  }
  if (name == "north_last") {
    return std::make_unique<NorthLastRouting>(mesh);
  }
  if (name == "negative_first") {
    return std::make_unique<NegativeFirstRouting>(mesh);
  }
  if (name == "odd_even") {
    return std::make_unique<OddEvenRouting>(mesh);
  }
  if (name == "fully_adaptive") {
    return std::make_unique<FullyAdaptiveRouting>(mesh);
  }
  GENOC_REQUIRE(false, "unknown routing function '" + name + "'");
  return nullptr;
}

std::unique_ptr<SwitchingPolicy> make_switching(const std::string& name) {
  if (name == "wormhole") {
    return std::make_unique<WormholeSwitching>();
  }
  if (name == "store_forward") {
    return std::make_unique<StoreForwardSwitching>();
  }
  GENOC_REQUIRE(false, "unknown switching policy '" + name + "'");
  return nullptr;
}

NetworkInstance::NetworkInstance(const InstanceSpec& spec) : spec_(spec) {
  const std::string invalid = validate_spec(spec_);
  GENOC_REQUIRE(invalid.empty(), "invalid instance spec: " + invalid);
  display_name_ = spec_.name.empty() ? to_spec_string(spec_) : spec_.name;
  mesh_ = std::make_unique<Mesh2D>(spec_.width, spec_.height, spec_.wrap_x(),
                                   spec_.wrap_y());
  routing_ = make_routing(spec_.routing, *mesh_);
  if (!spec_.escape.empty()) {
    escape_ = make_routing(spec_.escape, *mesh_);
  }
  switching_ = make_switching(spec_.switching);
}

std::vector<TrafficPair> NetworkInstance::make_traffic() const {
  const auto pattern = parse_traffic_pattern(spec_.pattern);
  GENOC_REQUIRE(pattern.has_value(),
                "invalid pattern survived validation: " + spec_.pattern);
  Rng rng(spec_.seed);
  return generate_traffic(*pattern, *mesh_, spec_.messages, rng);
}

PortDepGraph NetworkInstance::dependency_graph(BatchRunner* runner) const {
  return runner != nullptr ? build_dep_graph_parallel(*routing_, *runner)
                           : build_dep_graph_fast(*routing_);
}

InstanceVerdict NetworkInstance::verify(
    const InstanceVerifyOptions& options) const {
  Stopwatch timer;
  InstanceVerdict verdict;
  verdict.instance = display_name_;
  verdict.spec = to_spec_string(spec_);
  verdict.topology = spec_.topology;
  verdict.routing = routing_->name();
  verdict.switching = switching_->name();
  verdict.nodes = mesh_->node_count();
  verdict.ports = mesh_->port_count();
  verdict.deterministic = routing_->is_deterministic();

  const PortDepGraph dep = options.generic_builder
                               ? build_dep_graph(*routing_)
                               : dependency_graph(options.runner);
  verdict.edges = dep.graph.edge_count();
  // The enumeration domain of the generic construction plus one check per
  // produced edge: a deterministic count, independent of sharding and of
  // which (bit-identical) builder produced the graph.
  verdict.checks = static_cast<std::uint64_t>(mesh_->port_count()) *
                       mesh_->node_count() +
                   verdict.edges;

  // Acyclicity: parallel SCC when a pool is available, else the linear
  // DFS. On a cyclic graph find_cycle supplies the witness either way, so
  // the verdict and note are identical across all modes.
  std::optional<CycleWitness> cycle;
  if (options.runner != nullptr) {
    if (has_nontrivial_scc(dep.graph, *options.runner)) {
      cycle = find_cycle(dep.graph);
    }
  } else {
    cycle = find_cycle(dep.graph);
  }
  verdict.dep_acyclic = !cycle.has_value();
  if (verdict.dep_acyclic) {
    verdict.deadlock_free = true;
    verdict.method = "Theorem 1 (C-3)";
    verdict.note = "dependency graph acyclic";
  } else if (escape_ != nullptr) {
    // The escape sweep shards over destinations on the same pool as the
    // graph build and the SCC stage; verdicts are bit-identical either way.
    const EscapeAnalysis analysis =
        analyze_escape(*routing_, *escape_, options.runner);
    verdict.deadlock_free = analysis.deadlock_free;
    verdict.method = "escape(" + spec_.escape + ")";
    verdict.note = analysis.summary();
    verdict.checks += analysis.states_checked;
  } else {
    verdict.deadlock_free = false;
    verdict.method = "cycle";
    verdict.note = "dependency cycle of length " +
                   std::to_string(cycle->size()) + " through " +
                   dep.label(cycle->front()) +
                   " and no escape lane (Theorem 1: deadlock reachable)";
  }

  if (options.check_constraints) {
    const ConstraintReport c1 = check_c1(*routing_, dep);
    const ConstraintReport c2 = check_c2(*routing_, dep);
    verdict.constraints_ok = c1.satisfied && c2.satisfied;
    verdict.checks += c1.checks + c2.checks;
    if (!verdict.constraints_ok) {
      verdict.deadlock_free = false;
      verdict.note += "; constraint violation: " +
                      (c1.satisfied ? c2.summary() : c1.summary());
    }
  }
  verdict.cpu_ms = timer.elapsed_ms();
  return verdict;
}

SimulationReport NetworkInstance::simulate(
    const std::vector<TrafficPair>& pairs,
    const SimulationOptions& options) const {
  SimulationOptions opts = options;
  opts.flit_count = spec_.flits;
  Rng rng(spec_.seed);
  return simulate_routing(*mesh_, *routing_, pairs, spec_.buffers, rng, opts,
                          switching_.get());
}

}  // namespace genoc
