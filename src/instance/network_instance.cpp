#include "instance/network_instance.hpp"

#include "routing/cmesh_dor.hpp"
#include "routing/dragonfly_min.hpp"
#include "routing/fully_adaptive.hpp"
#include "routing/negative_first.hpp"
#include "routing/north_last.hpp"
#include "routing/odd_even.hpp"
#include "routing/torus_xy.hpp"
#include "routing/west_first.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"
#include "switching/store_forward.hpp"
#include "switching/wormhole.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"
#include "verify/pipeline.hpp"

namespace genoc {

namespace {

/// Downcast helper for the factory: each routing function routes exactly
/// one topology family, so a mismatched spec is a contract violation.
template <typename T>
const T& family_cast(const Topology& topology, const std::string& name) {
  const T* cast = dynamic_cast<const T*>(&topology);
  GENOC_REQUIRE(cast != nullptr, "routing '" + name +
                                     "' cannot route a " + topology.family() +
                                     " topology");
  return *cast;
}

}  // namespace

std::unique_ptr<Topology> make_topology(const InstanceSpec& spec) {
  if (spec.topology == "cmesh") {
    return std::make_unique<CMeshTopology>(spec.width, spec.height,
                                           spec.concentration);
  }
  if (spec.topology == "dragonfly") {
    return std::make_unique<DragonflyTopology>(
        spec.df_routers, spec.df_globals, spec.df_terminals,
        spec.df_groups_resolved());
  }
  GENOC_REQUIRE(spec.is_grid(),
                "unknown topology family '" + spec.topology + "'");
  std::vector<LinkFault> faults;
  faults.reserve(spec.failed_links.size());
  for (const std::string& token : spec.failed_links) {
    std::string error;
    const std::optional<LinkFault> fault = parse_link_fault(token, &error);
    GENOC_REQUIRE(fault.has_value(), error);
    faults.push_back(*fault);
  }
  return std::make_unique<Mesh2D>(spec.width, spec.height, spec.wrap_x(),
                                  spec.wrap_y(), faults);
}

std::unique_ptr<RoutingFunction> make_routing(const std::string& name,
                                              const Topology& topology) {
  if (name == "cmesh_dor") {
    return std::make_unique<CMeshDORRouting>(
        family_cast<CMeshTopology>(topology, name));
  }
  if (name == "dragonfly_min") {
    return std::make_unique<DragonflyMinRouting>(
        family_cast<DragonflyTopology>(topology, name));
  }
  const Mesh2D& mesh = family_cast<Mesh2D>(topology, name);
  if (name == "xy") {
    return std::make_unique<XYRouting>(mesh);
  }
  if (name == "yx") {
    return std::make_unique<YXRouting>(mesh);
  }
  if (name == "torus_xy") {
    return std::make_unique<TorusXYRouting>(mesh);
  }
  if (name == "west_first") {
    return std::make_unique<WestFirstRouting>(mesh);
  }
  if (name == "north_last") {
    return std::make_unique<NorthLastRouting>(mesh);
  }
  if (name == "negative_first") {
    return std::make_unique<NegativeFirstRouting>(mesh);
  }
  if (name == "odd_even") {
    return std::make_unique<OddEvenRouting>(mesh);
  }
  if (name == "fully_adaptive") {
    return std::make_unique<FullyAdaptiveRouting>(mesh);
  }
  GENOC_REQUIRE(false, "unknown routing function '" + name + "'");
  return nullptr;
}

std::unique_ptr<SwitchingPolicy> make_switching(const std::string& name) {
  if (name == "wormhole") {
    return std::make_unique<WormholeSwitching>();
  }
  if (name == "store_forward") {
    return std::make_unique<StoreForwardSwitching>();
  }
  GENOC_REQUIRE(false, "unknown switching policy '" + name + "'");
  return nullptr;
}

NetworkInstance::NetworkInstance(const InstanceSpec& spec) : spec_(spec) {
  const std::string invalid = validate_spec(spec_);
  GENOC_REQUIRE(invalid.empty(), "invalid instance spec: " + invalid);
  display_name_ = spec_.name.empty() ? to_spec_string(spec_) : spec_.name;
  topo_ = make_topology(spec_);
  routing_ = make_routing(spec_.routing, *topo_);
  if (!spec_.escape.empty()) {
    escape_ = make_routing(spec_.escape, *topo_);
  }
  switching_ = make_switching(spec_.switching);
}

const Mesh2D& NetworkInstance::mesh() const {
  const Mesh2D* grid = dynamic_cast<const Mesh2D*>(topo_.get());
  GENOC_REQUIRE(grid != nullptr, "instance '" + display_name_ +
                                     "' is a " + topo_->family() +
                                     ", not a grid");
  return *grid;
}

std::vector<TrafficPair> NetworkInstance::make_traffic() const {
  const auto pattern = parse_traffic_pattern(spec_.pattern);
  GENOC_REQUIRE(pattern.has_value(),
                "invalid pattern survived validation: " + spec_.pattern);
  Rng rng(spec_.seed);
  return generate_traffic(*pattern, mesh(), spec_.messages, rng);
}

PortDepGraph NetworkInstance::dependency_graph(ThreadPool* runner) const {
  return runner != nullptr ? build_dep_graph_parallel(*routing_, *runner)
                           : build_dep_graph_fast(*routing_);
}

InstanceVerdict NetworkInstance::verify(
    const InstanceVerifyOptions& options) const {
  return VerifyPipeline::standard().run(*this, options).verdict;
}

SimulationReport NetworkInstance::simulate(
    const std::vector<TrafficPair>& pairs,
    const SimulationOptions& options) const {
  SimulationOptions opts = options;
  opts.flit_count = spec_.flits;
  Rng rng(spec_.seed);
  return simulate_routing(mesh(), *routing_, pairs, spec_.buffers, rng, opts,
                          switching_.get());
}

}  // namespace genoc
