#include "instance/network_instance.hpp"

#include "routing/fully_adaptive.hpp"
#include "routing/negative_first.hpp"
#include "routing/north_last.hpp"
#include "routing/odd_even.hpp"
#include "routing/torus_xy.hpp"
#include "routing/west_first.hpp"
#include "routing/xy.hpp"
#include "routing/yx.hpp"
#include "switching/store_forward.hpp"
#include "switching/wormhole.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"
#include "verify/pipeline.hpp"

namespace genoc {

std::unique_ptr<RoutingFunction> make_routing(const std::string& name,
                                              const Mesh2D& mesh) {
  if (name == "xy") {
    return std::make_unique<XYRouting>(mesh);
  }
  if (name == "yx") {
    return std::make_unique<YXRouting>(mesh);
  }
  if (name == "torus_xy") {
    return std::make_unique<TorusXYRouting>(mesh);
  }
  if (name == "west_first") {
    return std::make_unique<WestFirstRouting>(mesh);
  }
  if (name == "north_last") {
    return std::make_unique<NorthLastRouting>(mesh);
  }
  if (name == "negative_first") {
    return std::make_unique<NegativeFirstRouting>(mesh);
  }
  if (name == "odd_even") {
    return std::make_unique<OddEvenRouting>(mesh);
  }
  if (name == "fully_adaptive") {
    return std::make_unique<FullyAdaptiveRouting>(mesh);
  }
  GENOC_REQUIRE(false, "unknown routing function '" + name + "'");
  return nullptr;
}

std::unique_ptr<SwitchingPolicy> make_switching(const std::string& name) {
  if (name == "wormhole") {
    return std::make_unique<WormholeSwitching>();
  }
  if (name == "store_forward") {
    return std::make_unique<StoreForwardSwitching>();
  }
  GENOC_REQUIRE(false, "unknown switching policy '" + name + "'");
  return nullptr;
}

NetworkInstance::NetworkInstance(const InstanceSpec& spec) : spec_(spec) {
  const std::string invalid = validate_spec(spec_);
  GENOC_REQUIRE(invalid.empty(), "invalid instance spec: " + invalid);
  display_name_ = spec_.name.empty() ? to_spec_string(spec_) : spec_.name;
  mesh_ = std::make_unique<Mesh2D>(spec_.width, spec_.height, spec_.wrap_x(),
                                   spec_.wrap_y());
  routing_ = make_routing(spec_.routing, *mesh_);
  if (!spec_.escape.empty()) {
    escape_ = make_routing(spec_.escape, *mesh_);
  }
  switching_ = make_switching(spec_.switching);
}

std::vector<TrafficPair> NetworkInstance::make_traffic() const {
  const auto pattern = parse_traffic_pattern(spec_.pattern);
  GENOC_REQUIRE(pattern.has_value(),
                "invalid pattern survived validation: " + spec_.pattern);
  Rng rng(spec_.seed);
  return generate_traffic(*pattern, *mesh_, spec_.messages, rng);
}

PortDepGraph NetworkInstance::dependency_graph(ThreadPool* runner) const {
  return runner != nullptr ? build_dep_graph_parallel(*routing_, *runner)
                           : build_dep_graph_fast(*routing_);
}

InstanceVerdict NetworkInstance::verify(
    const InstanceVerifyOptions& options) const {
  return VerifyPipeline::standard().run(*this, options).verdict;
}

SimulationReport NetworkInstance::simulate(
    const std::vector<TrafficPair>& pairs,
    const SimulationOptions& options) const {
  SimulationOptions opts = options;
  opts.flit_count = spec_.flits;
  Rng rng(spec_.seed);
  return simulate_routing(*mesh_, *routing_, pairs, spec_.buffers, rng, opts,
                          switching_.get());
}

}  // namespace genoc
