/// \file batch_runner.hpp
/// \brief BatchRunner: the shared worker pool that fans the dependency-graph
///        sweeps and instance verifications across threads.
///
/// Two axes parallelize independently and compose:
///
///   1. WITHIN one instance: build_dep_graph_parallel shards the
///      per-DESTINATION route sweeps (RouteSweeper) across the pool, each
///      shard collecting its edge list locally; the shards are merged and
///      canonicalized by Digraph::finalize() (sort + dedup), so the
///      parallel graph is BIT-IDENTICAL to the sequential one — and to the
///      generic oracle's.
///   2. ACROSS instances: `genoc verify --all` verifies every registered
///      instance, each writing its verdict into a fixed slot, so the
///      report order is deterministic too.
///
/// The pool mechanics live in util/ThreadPool (so graph-level algorithms
/// like parallel_scc can run on the same pool without depending on this
/// subsystem); parallel_for is work-sharing, hence nested calls (an
/// instance task sharding its own graph build) cannot deadlock the pool.
#pragma once

#include <cstddef>
#include <vector>

#include "deadlock/depgraph.hpp"
#include "instance/network_instance.hpp"
#include "instance/spec.hpp"
#include "util/thread_pool.hpp"

namespace genoc {

class BatchRunner : public ThreadPool {
 public:
  using ThreadPool::ThreadPool;
};

/// The destination-sharded fast construction (axis 1 above). Each shard
/// owns a RouteSweeper, so the routing function is only entered through
/// its stateless const interface (node_out_mask / append_next_hops) —
/// no prime() warm-up needed. The result is bit-identical to
/// build_dep_graph(routing) and build_dep_graph_fast(routing).
PortDepGraph build_dep_graph_parallel(const RoutingFunction& routing,
                                      BatchRunner& runner);

/// The instance sweep (axis 2): verifies every spec — each instance's own
/// graph build sharded on the same pool — and returns verdicts in spec
/// order. \p runner == nullptr degrades to the sequential loop. Verdicts
/// are identical to per-instance NetworkInstance::verify() modulo cpu_ms.
std::vector<InstanceVerdict> verify_instances(
    const std::vector<InstanceSpec>& specs, BatchRunner* runner,
    const InstanceVerifyOptions& base = {});

}  // namespace genoc
