/// \file batch_runner.hpp
/// \brief BatchRunner: the shared worker pool that fans the dependency-graph
///        sweeps and instance verifications across threads.
///
/// Two axes parallelize independently and compose:
///
///   1. WITHIN one instance: build_dep_graph_parallel (deadlock/depgraph.hpp)
///      shards the per-DESTINATION route sweeps (RouteSweeper) across the
///      pool, each shard collecting its edge list locally; the shards are
///      merged and canonicalized by Digraph::finalize() (sort + dedup), so
///      the parallel graph is BIT-IDENTICAL to the sequential one — and to
///      the generic oracle's.
///   2. ACROSS instances: `genoc verify --all` verifies every registered
///      instance, each writing its verdict into a fixed slot, so the
///      report order is deterministic too.
///
/// The sweep additionally shares analysis ARTIFACTS across instances: every
/// batch threads an ArtifactStore (verify/artifacts.hpp) keyed by the
/// canonical topology x routing x escape spec prefix, so two instances that
/// differ only in workload or switching (mesh8-xy vs mesh8-xy-sf) build the
/// dependency graph, prime the reachability closure and decide acyclicity
/// exactly once between them.
///
/// The pool mechanics live in util/ThreadPool (so graph-level algorithms
/// like parallel_scc can run on the same pool without depending on this
/// subsystem); parallel_for is work-sharing, hence nested calls (an
/// instance task sharding its own graph build) cannot deadlock the pool.
#pragma once

#include <cstddef>
#include <vector>

#include "deadlock/depgraph.hpp"
#include "instance/network_instance.hpp"
#include "instance/spec.hpp"
#include "util/thread_pool.hpp"
#include "verify/pipeline.hpp"
#include "verify/report.hpp"

namespace genoc {

class BatchRunner : public ThreadPool {
 public:
  using ThreadPool::ThreadPool;
};

/// The instance sweep: runs \p pipeline over every spec — each instance's
/// own graph build sharded on the same pool — and returns full reports in
/// spec order. \p runner == nullptr degrades to the sequential loop.
/// Artifacts are acquired from base.artifacts when set, else from a
/// store local to this call, so duplicate spec prefixes are computed once
/// either way. Verdicts are identical to per-instance
/// NetworkInstance::verify() modulo cpu_ms.
std::vector<VerifyReport> verify_instance_reports(
    const std::vector<InstanceSpec>& specs, const VerifyPipeline& pipeline,
    BatchRunner* runner, const InstanceVerifyOptions& base = {});

/// Verdict-only convenience over verify_instance_reports with the standard
/// pipeline (the pre-pipeline API, kept source-compatible).
std::vector<InstanceVerdict> verify_instances(
    const std::vector<InstanceSpec>& specs, BatchRunner* runner,
    const InstanceVerifyOptions& base = {});

}  // namespace genoc
