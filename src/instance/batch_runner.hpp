/// \file batch_runner.hpp
/// \brief BatchRunner: a shared worker pool that fans the generic
///        dependency-graph construction and instance sweeps across threads.
///
/// The generic build_dep_graph enumerates every (port, destination) pair —
/// the ROADMAP's scaling bottleneck (quadratic in nodes for each of the
/// O(nodes) ports). Two axes parallelize independently and compose:
///
///   1. WITHIN one instance: the port range is sharded across the pool,
///      each shard collecting its edge list locally; the shards are merged
///      and canonicalized by Digraph::finalize() (sort + dedup), so the
///      parallel graph is BIT-IDENTICAL to the sequential one.
///   2. ACROSS instances: `genoc verify --all` verifies every registered
///      instance, each writing its verdict into a fixed slot, so the
///      report order is deterministic too.
///
/// parallel_for is work-sharing: the calling thread claims chunks alongside
/// the workers and completion never depends on a worker picking up the
/// task, so nested calls (an instance task sharding its own graph build)
/// cannot deadlock the pool.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "deadlock/depgraph.hpp"
#include "instance/network_instance.hpp"
#include "instance/spec.hpp"

namespace genoc {

class BatchRunner {
 public:
  /// Spawns \p threads - 1 workers (the caller is the remaining thread);
  /// 0 means hardware concurrency.
  explicit BatchRunner(std::size_t threads = 0);
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Total parallelism: workers + the calling thread.
  std::size_t thread_count() const { return workers_.size() + 1; }

  /// Runs body(begin, end) over consecutive chunks of ~\p grain indices
  /// covering [0, count); blocks until every chunk has run. The caller
  /// participates, so this is safe to call from inside another
  /// parallel_for body. The first exception thrown by a chunk is
  /// rethrown here (remaining chunks still run).
  void parallel_for(
      std::size_t count, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();
  void enqueue(std::function<void()> task);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> tasks_;
  bool stopping_ = false;
};

/// The sharded generic construction (axis 1 above). Requires nothing of
/// the caller beyond build_dep_graph's contract; calls routing.prime()
/// first so the enumeration is read-only across threads. The result is
/// bit-identical to build_dep_graph(routing).
PortDepGraph build_dep_graph_parallel(const RoutingFunction& routing,
                                      BatchRunner& runner);

/// The instance sweep (axis 2): verifies every spec — each instance's own
/// graph build sharded on the same pool — and returns verdicts in spec
/// order. \p runner == nullptr degrades to the sequential loop. Verdicts
/// are identical to per-instance NetworkInstance::verify() modulo cpu_ms.
std::vector<InstanceVerdict> verify_instances(
    const std::vector<InstanceSpec>& specs, BatchRunner* runner,
    const InstanceVerifyOptions& base = {});

}  // namespace genoc
