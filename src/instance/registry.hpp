/// \file registry.hpp
/// \brief The global registry of named network instances — the booksim2
///        idea of "one simulator, hundreds of configurations" applied to
///        the paper's verification pipeline.
///
/// Every preset is an InstanceSpec with a name and a one-line summary:
/// `genoc verify --instance hermes`, `genoc sim --instance torus8-xy` and
/// `genoc verify --all` all resolve through here. Ad-hoc specs
/// ("topology=torus size=16x16 routing=odd_even") bypass the registry via
/// the same resolve() entry point, so the CLI accepts either form
/// everywhere an instance is expected.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "instance/spec.hpp"

namespace genoc {

class InstanceRegistry {
 public:
  /// The node count of the largest preset (the 64x64 scale) whose
  /// quadratic-oracle cross-checks and demo sweeps stay smoke-friendly;
  /// tests and examples bound their populations with
  /// `spec.node_count() <= kOracleNodeLimit` so the boundary lives in one
  /// place. Presets above it (mesh128-xy) are vouched for by
  /// fast-vs-parallel cross-checks instead of oracle runs.
  static constexpr std::size_t kOracleNodeLimit = 64 * 64;

  /// The process-wide registry (immutable after construction).
  static const InstanceRegistry& global();

  const std::vector<InstanceSpec>& presets() const { return presets_; }
  std::vector<std::string> names() const;

  /// True for presets excluded from whole-registry sweeps by default
  /// (`verify --all`, the registry bench) because one pass costs seconds;
  /// they stay addressable by name and `verify --all --heavy` includes
  /// them.
  bool heavy(const std::string& name) const;

  /// presets() minus the heavy ones — the default sweep population.
  std::vector<InstanceSpec> sweep_presets() const;

  /// The preset named \p name, or nullptr.
  const InstanceSpec* find(const std::string& name) const;

  /// Resolves a CLI argument: a `key=value` spec when \p text contains
  /// '=', otherwise a preset name. On failure returns nullopt and stores
  /// a message (listing the known names for a bad preset) in *error.
  std::optional<InstanceSpec> resolve(const std::string& text,
                                      std::string* error) const;

 private:
  InstanceRegistry();

  std::vector<InstanceSpec> presets_;
  std::vector<std::string> heavy_;
};

}  // namespace genoc
