#include "instance/batch_runner.hpp"

#include <memory>
#include <utility>

#include "obs/trace.hpp"
#include "verify/artifacts.hpp"

namespace genoc {

std::vector<VerifyReport> verify_instance_reports(
    const std::vector<InstanceSpec>& specs, const VerifyPipeline& pipeline,
    BatchRunner* runner, const InstanceVerifyOptions& base) {
  std::vector<VerifyReport> reports(specs.size());
  InstanceVerifyOptions options = base;
  options.runner = runner;
  // Batch-wide artifact sharing: default to a store scoped to this sweep so
  // duplicate topology x routing x escape prefixes are analyzed once even
  // when the caller did not bring a store of its own.
  ArtifactStore local_store;
  ArtifactStore* store =
      base.artifacts != nullptr ? base.artifacts : &local_store;
  options.artifacts = store;

  const auto verify_one = [&](std::size_t i) {
    // Covers instance construction too, so a trace shows the full cost of
    // the row, not just the pipeline stages inside it.
    obs::TraceSpan span("verify_instance");
    if (span.active()) {
      span.set_detail(specs[i].name);
    }
    const NetworkInstance instance(specs[i]);
    const std::shared_ptr<AnalysisArtifacts> artifacts =
        store->acquire(specs[i]);
    reports[i] = pipeline.run(instance, *artifacts, options);
  };

  if (runner == nullptr) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      verify_one(i);
    }
    return reports;
  }
  runner->parallel_for(specs.size(), 1,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           verify_one(i);
                         }
                       });
  return reports;
}

std::vector<InstanceVerdict> verify_instances(
    const std::vector<InstanceSpec>& specs, BatchRunner* runner,
    const InstanceVerifyOptions& base) {
  std::vector<VerifyReport> reports =
      verify_instance_reports(specs, VerifyPipeline::standard(), runner, base);
  std::vector<InstanceVerdict> verdicts;
  verdicts.reserve(reports.size());
  for (VerifyReport& report : reports) {
    verdicts.push_back(std::move(report.verdict));
  }
  return verdicts;
}

}  // namespace genoc
