#include "instance/batch_runner.hpp"

#include <algorithm>
#include <utility>

#include "routing/sweep.hpp"
#include "util/require.hpp"

namespace genoc {

PortDepGraph build_dep_graph_parallel(const RoutingFunction& routing,
                                      BatchRunner& runner) {
  const Mesh2D& mesh = routing.mesh();
  const std::size_t dest_count = mesh.node_count();
  const std::size_t grain = runner.recommended_grain(dest_count);
  const std::size_t shard_total = (dest_count + grain - 1) / grain;
  std::vector<std::vector<RouteSweeper::Edge>> shards(shard_total);

  runner.parallel_for(
      dest_count, grain, [&](std::size_t begin, std::size_t end) {
        auto& local = shards[begin / grain];
        // A sweeper per shard: the emitted-edge dedup cache is sweeper-
        // local, so shards may re-emit edges another shard saw — merge
        // order and duplicates are both erased by finalize().
        RouteSweeper sweeper(routing);
        local.reserve(mesh.port_count() / 2);
        for (std::size_t dest = begin; dest < end; ++dest) {
          sweeper.sweep(dest, &local, nullptr);
        }
      });

  PortDepGraph result;
  result.mesh = &mesh;
  result.graph = Digraph(mesh.port_count());
  std::size_t total = 0;
  for (const auto& shard : shards) {
    total += shard.size();
  }
  result.graph.reserve_edges(total);
  for (const auto& shard : shards) {
    for (const auto& [from, to] : shard) {
      result.graph.add_edge(from, to);
    }
  }
  result.graph.finalize();
  return result;
}

std::vector<InstanceVerdict> verify_instances(
    const std::vector<InstanceSpec>& specs, BatchRunner* runner,
    const InstanceVerifyOptions& base) {
  std::vector<InstanceVerdict> verdicts(specs.size());
  InstanceVerifyOptions options = base;
  options.runner = runner;
  if (runner == nullptr) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      verdicts[i] = NetworkInstance(specs[i]).verify(options);
    }
    return verdicts;
  }
  runner->parallel_for(specs.size(), 1,
                       [&](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           verdicts[i] =
                               NetworkInstance(specs[i]).verify(options);
                         }
                       });
  return verdicts;
}

}  // namespace genoc
