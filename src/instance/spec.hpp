/// \file spec.hpp
/// \brief The instance specification: one plain-data record naming a
///        topology, a routing function, a switching policy and a workload —
///        everything needed to construct a verifiable/simulable network.
///
/// The paper's contribution is a *generic* deadlock-freedom condition that
/// is instantiated per network; InstanceSpec is the executable form of "one
/// instantiation". Specs come from two sources: the registry of named
/// presets (registry.hpp) and a booksim2-style `key=value` string
/// ("topology=torus size=16x16 routing=odd_even"), so arbitrary instances
/// are constructible straight from the CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace genoc {

/// A fully parsed description of a network instance. Plain data: the
/// factory that turns it into live objects is NetworkInstance.
struct InstanceSpec {
  std::string name;     ///< registry name; empty for ad-hoc CLI specs
  std::string summary;  ///< one-line description (presets only)

  // ---- network -----------------------------------------------------------
  std::string topology = "mesh";  ///< mesh | torus | ring (wrap-x only)
  std::int32_t width = 4;
  std::int32_t height = 4;
  std::string routing = "xy";  ///< see known_routings()
  std::string switching = "wormhole";  ///< wormhole | store_forward
  std::uint32_t buffers = 2;   ///< 1-flit buffers per port
  /// Escape-lane routing for Duato-style verification of instances whose
  /// own dependency graph is cyclic (torus dimension-order, fully
  /// adaptive); empty = no escape lane.
  std::string escape;

  // ---- workload (genoc sim / the simulated verification rows) ------------
  std::string pattern = "uniform-random";  ///< see parse_traffic_pattern()
  std::uint32_t messages = 64;  ///< count for the randomized patterns
  std::uint32_t flits = 4;
  std::uint64_t seed = 2010;

  /// Nodes of the spec'd mesh — the size tests/examples bound sweep
  /// populations by (e.g. "everything up to 64x64").
  std::size_t node_count() const {
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }

  bool wrap_x() const { return topology == "torus" || topology == "ring"; }
  bool wrap_y() const { return topology == "torus"; }

  friend bool operator==(const InstanceSpec&, const InstanceSpec&) = default;
};

/// The accepted values of the enumerated keys, for validation and usage
/// text. Routing names are the canonical underscore forms.
const std::vector<std::string>& known_topologies();
const std::vector<std::string>& known_routings();
const std::vector<std::string>& known_switchings();

/// The turn-model subfamily of known_routings() (paper Sec. IX).
const std::vector<std::string>& turn_model_routings();

/// Parses a booksim2-style spec: whitespace-separated `key=value` tokens.
/// Keys: topology, size (N or WxH), width, height, routing, switching,
/// buffers, escape (routing name or "none"), pattern, messages, flits,
/// seed. Later tokens override earlier ones. Values are normalized
/// ('-' == '_' for routing/switching, pattern aliases resolved) and
/// validated, including cross-field consistency via validate_spec().
/// On failure returns nullopt and stores a human-readable message naming
/// the offending token in *error.
std::optional<InstanceSpec> parse_instance_spec(const std::string& text,
                                                std::string* error);

/// Canonical `key=value` rendering: parse_instance_spec() round-trips it
/// (name/summary are registry metadata and are not part of the string).
std::string to_spec_string(const InstanceSpec& spec);

/// Cross-field validation: dimension ranges (wrapped dimensions need >= 2
/// nodes), torus_xy requires a wrapped topology, escape must name a
/// deterministic routing, and every enumerated field must be known.
/// Returns the empty string when the spec is valid, else the complaint.
std::string validate_spec(const InstanceSpec& spec);

}  // namespace genoc
