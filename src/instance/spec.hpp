/// \file spec.hpp
/// \brief The instance specification: one plain-data record naming a
///        topology, a routing function, a switching policy and a workload —
///        everything needed to construct a verifiable/simulable network.
///
/// The paper's contribution is a *generic* deadlock-freedom condition that
/// is instantiated per network; InstanceSpec is the executable form of "one
/// instantiation". Specs come from two sources: the registry of named
/// presets (registry.hpp) and a booksim2-style `key=value` string
/// ("topology=torus size=16x16 routing=odd_even"), so arbitrary instances
/// are constructible straight from the CLI.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace genoc {

/// A fully parsed description of a network instance. Plain data: the
/// factory that turns it into live objects is NetworkInstance.
struct InstanceSpec {
  std::string name;     ///< registry name; empty for ad-hoc CLI specs
  std::string summary;  ///< one-line description (presets only)

  // ---- network -----------------------------------------------------------
  std::string topology = "mesh";  ///< see known_topologies()
  std::int32_t width = 4;
  std::int32_t height = 4;
  std::string routing = "xy";  ///< see known_routings()
  std::string switching = "wormhole";  ///< wormhole | store_forward
  std::uint32_t buffers = 2;   ///< 1-flit buffers per port
  /// Escape-lane routing for Duato-style verification of instances whose
  /// own dependency graph is cyclic (torus dimension-order, fully
  /// adaptive); empty = no escape lane.
  std::string escape;

  /// Failed bidirectional links (fault campaigns): each token names one
  /// directed channel "node:NAME" (row-major node index, cardinal name
  /// E/W/N/S) and removes BOTH channels of that link — all four ports —
  /// from the topology. Terminal (L) links never fail: fault campaigns
  /// honor the injection/ejection-port exclusions. Grid families only.
  /// Canonical form (what parse_instance_spec and with_failed_links
  /// store): each token is anchored at the endpoint with the smaller
  /// (node, name) pair and the list is sorted, so two fault sets naming
  /// the same physical links render the same spec string and share one
  /// AnalysisArtifacts::key(). Duplicates are preserved (the fault_sanity
  /// analyzer rule flags them).
  std::vector<std::string> failed_links;

  // ---- family parameters (non-grid topologies) ---------------------------
  std::uint32_t concentration = 2;  ///< cmesh: terminals per router
  std::uint32_t df_routers = 4;     ///< dragonfly: routers per group (a)
  std::uint32_t df_globals = 2;     ///< dragonfly: globals per router (h)
  std::uint32_t df_terminals = 2;   ///< dragonfly: terminals per router (p)
  std::uint32_t df_groups = 0;      ///< dragonfly: groups (0 = a*h + 1)

  /// The verdict this instance is REGISTERED to produce. Deadlock-free for
  /// every positive fixture; negative fixtures (dragonfly-minimal without
  /// VCs) set `expect=deadlock` and `verify --all` passes when the computed
  /// verdict matches the expectation.
  bool expect_deadlock_free = true;

  /// groups with the canonical a*h + 1 default applied.
  std::uint32_t df_groups_resolved() const {
    return df_groups != 0 ? df_groups : df_routers * df_globals + 1;
  }

  /// True for the 2D-grid families (mesh/torus/ring) the Port-tuple API,
  /// the escape lanes and the simulator are defined over.
  bool is_grid() const {
    return topology == "mesh" || topology == "torus" || topology == "ring";
  }

  // ---- workload (genoc sim / the simulated verification rows) ------------
  std::string pattern = "uniform-random";  ///< see parse_traffic_pattern()
  std::uint32_t messages = 64;  ///< count for the randomized patterns
  std::uint32_t flits = 4;
  std::uint64_t seed = 2010;

  /// Routers of the spec'd network — the size tests/examples bound sweep
  /// populations by (e.g. "everything up to 64x64").
  std::size_t node_count() const {
    if (topology == "dragonfly") {
      return static_cast<std::size_t>(df_groups_resolved()) * df_routers;
    }
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }

  bool wrap_x() const { return topology == "torus" || topology == "ring"; }
  bool wrap_y() const { return topology == "torus"; }

  /// Returns a copy of this spec whose failed_links are the canonical form
  /// of \p links: every "node:NAME" token re-anchored to the directed
  /// endpoint with the smaller (node, name) pair under THIS spec's
  /// geometry, then sorted. Tokens that do not parse are kept verbatim
  /// (validate_spec rejects them later), so the function is total.
  InstanceSpec with_failed_links(const std::vector<std::string>& links) const;

  friend bool operator==(const InstanceSpec&, const InstanceSpec&) = default;
};

/// The canonical comma-joined rendering of a failed-link list (the value of
/// the `failed=` spec key). Shared by to_spec_string(),
/// AnalysisArtifacts::key() and the campaign report so the three can never
/// drift apart.
std::string join_failed_links(const std::vector<std::string>& links);

/// The accepted values of the enumerated keys, for validation and usage
/// text. Routing names are the canonical underscore forms.
const std::vector<std::string>& known_topologies();
const std::vector<std::string>& known_routings();
const std::vector<std::string>& known_switchings();

/// The turn-model subfamily of known_routings() (paper Sec. IX).
const std::vector<std::string>& turn_model_routings();

/// Parses a booksim2-style spec: whitespace-separated `key=value` tokens.
/// Keys: topology, size (N or WxH), width, height, routing, switching,
/// buffers, escape (routing name or "none"), failed (comma-separated
/// failed-link tokens or "none"), pattern, messages, flits, seed. Later
/// tokens override earlier ones. Values are normalized
/// ('-' == '_' for routing/switching, pattern aliases resolved) and
/// validated, including cross-field consistency via validate_spec().
/// On failure returns nullopt and stores a human-readable message naming
/// the offending token in *error.
std::optional<InstanceSpec> parse_instance_spec(const std::string& text,
                                                std::string* error);

/// Canonical `key=value` rendering: parse_instance_spec() round-trips it
/// (name/summary are registry metadata and are not part of the string).
std::string to_spec_string(const InstanceSpec& spec);

/// Cross-field validation: dimension ranges (wrapped dimensions need >= 2
/// nodes), torus_xy requires a wrapped topology, escape must name a
/// deterministic routing, and every enumerated field must be known.
/// Returns the empty string when the spec is valid, else the complaint.
std::string validate_spec(const InstanceSpec& spec);

}  // namespace genoc
