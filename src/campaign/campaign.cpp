#include "campaign/campaign.hpp"

#include <algorithm>
#include <map>

#include "analyze/analyzer.hpp"
#include "instance/batch_runner.hpp"
#include "instance/network_instance.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"
#include "verify/pipeline.hpp"

namespace genoc {

namespace {

/// The screening subset: the rules that decide "is this variant worth a
/// verify" in O(ports) — spec-level sanity, fault-set sanity, and
/// connectivity under the failed links. The heavier cheap() rules
/// (dead_ports, turns, uniformity) re-derive per-variant facts the delta
/// machinery already guarantees, so the campaign skips them.
const Analyzer& screen_analyzer() {
  static const Analyzer analyzer = [] {
    std::string error;
    auto built = Analyzer::from_rule_names(
        {"spec_sanity", "fault_sanity", "connectivity"}, &error);
    GENOC_REQUIRE(built.has_value(), "campaign screen rules: " + error);
    return *built;
  }();
  return analyzer;
}

}  // namespace

CampaignReport run_campaign(const InstanceSpec& base,
                            const CampaignOptions& options) {
  obs::TraceSpan span("campaign");
  Stopwatch timer;
  const FaultModel model(base);  // validates grid / unfaulted / spec
  const std::vector<InstanceSpec> variants = model.variants(options.plan);

  CampaignReport report;
  report.instance = base.name.empty() ? to_spec_string(base) : base.name;
  report.spec = to_spec_string(base);
  report.plan = to_string(options.plan);
  report.links = model.links().size();
  report.variants_total = variants.size();
  report.variants.resize(variants.size());

  BatchRunner pool(options.threads);
  report.threads = pool.thread_count();

  // One store for the whole campaign: the base context (topology, routing,
  // closure, dependency graph) is built exactly once, up front and sharded
  // over the pool; every variant's delta build reads it as a cache hit.
  ArtifactStore store;
  std::shared_ptr<AnalysisArtifacts> base_artifacts = store.acquire(base);
  {
    obs::TraceSpan base_span("campaign:base");
    base_artifacts->dep_graph(false, &pool);
  }

  const Analyzer& screen = screen_analyzer();
  const VerifyPipeline& pipeline = VerifyPipeline::standard();
  pool.parallel_for(
      variants.size(), pool.recommended_grain(variants.size()),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          obs::TraceSpan variant_span("campaign:variant");
          Stopwatch variant_timer;
          const InstanceSpec& vspec = variants[i];
          VariantOutcome& out = report.variants[i];
          out.faults = join_failed_links(vspec.failed_links);
          if (variant_span.active()) {
            variant_span.set_detail("failed=" + out.faults);
          }
          // Variant artifacts stay LOCAL (a campaign-wide store entry per
          // variant would hold thousands of dead contexts); only the base
          // is shared, through the explicit wiring.
          AnalysisArtifacts artifacts(vspec, base_artifacts);
          const AnalyzeReport screen_report =
              screen.run(vspec, artifacts, options.analyze);
          out.checks = screen_report.checks;
          for (const Diagnostic& diagnostic : screen_report.diagnostics) {
            if (diagnostic.severity == Severity::kError) {
              out.screen_codes.push_back(diagnostic.code);
            }
          }
          std::sort(out.screen_codes.begin(), out.screen_codes.end());
          out.screen_codes.erase(
              std::unique(out.screen_codes.begin(), out.screen_codes.end()),
              out.screen_codes.end());
          if (!out.screen_codes.empty()) {
            // Screened: the variant is structurally broken (shattered
            // network, malformed fault set) — the deadlock question is not
            // worth a verify. Warnings (route-disconnected) do NOT screen:
            // a minimal routing strands traffic at every fault, yet its
            // deadlock verdict on routed traffic stays well-posed.
            out.screened = true;
            out.wall_ms = variant_timer.elapsed_ms();
            continue;
          }
          NetworkInstance instance(vspec);
          InstanceVerifyOptions verify_options;  // sequential: the shard
                                                 // parallelism is across
                                                 // variants, not within one
          const VerifyReport verified =
              pipeline.run(instance, artifacts, verify_options);
          out.deadlock_free = verified.verdict.deadlock_free;
          out.method = verified.verdict.method;
          out.edges = verified.verdict.edges;
          out.checks += verified.verdict.checks;
          out.wall_ms = variant_timer.elapsed_ms();
        }
      });

  // Sequential aggregation in variant order: counts, the screen-code
  // histogram, and the metric mirrors — all deterministic at any thread
  // count.
  std::map<std::string, std::uint64_t> code_counts;
  for (const VariantOutcome& out : report.variants) {
    if (out.screened) {
      ++report.screened;
      for (const std::string& code : out.screen_codes) {
        ++code_counts[code];
      }
    } else {
      ++report.verified;
      ++(out.deadlock_free ? report.deadlock_free : report.deadlocked);
    }
  }
  report.screen_code_counts.assign(code_counts.begin(), code_counts.end());
  report.cache = store.stats();
  report.wall_ms = timer.elapsed_ms();

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.counter("campaign.variants").add(report.variants_total);
  metrics.counter("campaign.screened").add(report.screened);
  metrics.counter("campaign.verified").add(report.verified);
  metrics.counter("campaign.deadlocked").add(report.deadlocked);
  return report;
}

}  // namespace genoc
