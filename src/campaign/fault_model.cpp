#include "campaign/fault_model.hpp"

#include <algorithm>
#include <charconv>

#include "topology/mesh.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace genoc {

namespace {

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc() && ptr == text.data() + text.size() &&
         !text.empty();
}

}  // namespace

std::optional<FaultPlan> parse_fault_plan(const std::string& text,
                                          std::string* error) {
  FaultPlan plan;
  if (text == "single") {
    plan.kind = FaultPlan::Kind::kSingle;
    return plan;
  }
  if (text == "double") {
    plan.kind = FaultPlan::Kind::kDouble;
    return plan;
  }
  const std::string prefix = "random:";
  if (text.rfind(prefix, 0) == 0) {
    const std::string rest = text.substr(prefix.size());
    const std::size_t comma = rest.find(',');
    std::uint64_t count = 0;
    std::uint64_t seed = 0;
    if (comma == std::string::npos ||
        !parse_u64(std::string_view(rest).substr(0, comma), count) ||
        !parse_u64(std::string_view(rest).substr(comma + 1), seed)) {
      if (error != nullptr) {
        *error = "malformed fault plan '" + text +
                 "': random takes 'random:<k>,<seed>' with two integers";
      }
      return std::nullopt;
    }
    if (count == 0) {
      if (error != nullptr) {
        *error = "fault plan '" + text + "' would fail zero links; k >= 1";
      }
      return std::nullopt;
    }
    plan.kind = FaultPlan::Kind::kRandom;
    plan.count = static_cast<std::size_t>(count);
    plan.seed = seed;
    return plan;
  }
  if (error != nullptr) {
    *error = "unknown fault plan '" + text +
             "' (expected single, double, or random:<k>,<seed>)";
  }
  return std::nullopt;
}

std::string to_string(const FaultPlan& plan) {
  switch (plan.kind) {
    case FaultPlan::Kind::kSingle:
      return "single";
    case FaultPlan::Kind::kDouble:
      return "double";
    case FaultPlan::Kind::kRandom:
      return "random:" + std::to_string(plan.count) + "," +
             std::to_string(plan.seed);
  }
  return "single";
}

FaultModel::FaultModel(const InstanceSpec& base) : base_(base) {
  const std::string invalid = validate_spec(base_);
  GENOC_REQUIRE(invalid.empty(), "invalid campaign base spec: " + invalid);
  GENOC_REQUIRE(base_.is_grid(),
                "fault campaigns are grid-only; '" + base_.topology +
                    "' has no link-fault model");
  GENOC_REQUIRE(base_.failed_links.empty(),
                "campaign base already declares failed links — faults are "
                "enumerated by the campaign, not stacked on a faulted base");
  // Enumerate fabric links from geometry alone: every existing directed
  // channel, canonicalized to its smaller endpoint and deduplicated, is one
  // bidirectional link. Terminal (L) links are not in the fault grammar.
  const bool wrap_x = base_.wrap_x();
  const bool wrap_y = base_.wrap_y();
  std::vector<LinkFault> faults;
  const std::int32_t nodes = base_.width * base_.height;
  for (std::int32_t node = 0; node < nodes; ++node) {
    for (const PortName name : {PortName::kEast, PortName::kWest,
                                PortName::kNorth, PortName::kSouth}) {
      const LinkFault fault{node, name};
      if (link_fault_exists(fault, base_.width, base_.height, wrap_x,
                            wrap_y)) {
        faults.push_back(canonical_link_fault(fault, base_.width,
                                              base_.height, wrap_x, wrap_y));
      }
    }
  }
  std::sort(faults.begin(), faults.end());
  faults.erase(std::unique(faults.begin(), faults.end()), faults.end());
  links_.reserve(faults.size());
  for (const LinkFault& fault : faults) {
    links_.push_back(link_fault_token(fault));
  }
}

std::size_t FaultModel::variant_count(const FaultPlan& plan) const {
  const std::size_t n = links_.size();
  switch (plan.kind) {
    case FaultPlan::Kind::kSingle:
      return n;
    case FaultPlan::Kind::kDouble:
      return n * (n - 1) / 2;
    case FaultPlan::Kind::kRandom:
      return 1;
  }
  return 0;
}

std::vector<InstanceSpec> FaultModel::variants(const FaultPlan& plan) const {
  // The preset name is cleared so each variant's display name is its
  // canonical spec string (fault set included) instead of N copies of the
  // base's name.
  InstanceSpec proto = base_;
  proto.name.clear();
  std::vector<InstanceSpec> result;
  switch (plan.kind) {
    case FaultPlan::Kind::kSingle:
      result.reserve(links_.size());
      for (const std::string& link : links_) {
        result.push_back(proto.with_failed_links({link}));
      }
      break;
    case FaultPlan::Kind::kDouble:
      result.reserve(variant_count(plan));
      for (std::size_t i = 0; i < links_.size(); ++i) {
        for (std::size_t j = i + 1; j < links_.size(); ++j) {
          result.push_back(proto.with_failed_links({links_[i], links_[j]}));
        }
      }
      break;
    case FaultPlan::Kind::kRandom: {
      GENOC_REQUIRE(plan.count <= links_.size(),
                    "random fault plan draws " + std::to_string(plan.count) +
                        " links but the base has only " +
                        std::to_string(links_.size()));
      Rng rng(plan.seed);
      const std::vector<std::size_t> order = rng.permutation(links_.size());
      std::vector<std::string> drawn;
      drawn.reserve(plan.count);
      for (std::size_t i = 0; i < plan.count; ++i) {
        drawn.push_back(links_[order[i]]);
      }
      result.push_back(proto.with_failed_links(drawn));
      break;
    }
  }
  return result;
}

}  // namespace genoc
