/// \file campaign.hpp
/// \brief CampaignRunner: the fault-injection campaign engine — enumerate
///        link-failure variants of a base instance, screen each through the
///        cheap analyzer rules, and verify the survivors against one shared
///        artifact store.
///
/// The campaign is the paper's decision procedure applied in bulk: Theorem 1
/// decides each variant from its routing function alone, so a sweep over
/// every single-link failure of a mesh is thousands of cheap static
/// decisions, not thousands of simulations. Three mechanisms keep it cheap:
///
///   1. ANALYZE-FIRST: each variant runs the spec_sanity / fault_sanity /
///      connectivity rule subset first; a variant with an error-severity
///      finding (a shattered network, a duplicate fault) is SCREENED on its
///      stable diagnostic codes without spending a verify.
///   2. BATCH-SHARED ARTIFACTS: one ArtifactStore holds the unfaulted BASE
///      context; its dependency graph and closure are built once, and every
///      variant keeps only a LOCAL artifact cache wired to that base (the
///      store's hit counters make the sharing assertable).
///   3. DELTA GRAPHS: for link faults on node-uniform routings the variant
///      dependency graph is built by build_dep_graph_delta — filtering the
///      base graph — instead of a per-destination re-sweep; bit-identical
///      to the full builder and an order of magnitude cheaper.
///
/// Variants shard over the existing BatchRunner pool into fixed result
/// slots, so the report is byte-identical at any --threads value (timing
/// fields excluded).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analyze/rule.hpp"
#include "campaign/fault_model.hpp"
#include "verify/artifacts.hpp"

namespace genoc {

struct CampaignOptions {
  FaultPlan plan;
  /// Worker threads for the variant shard (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Budgets for the screening rules (analyzer defaults are fine).
  AnalyzeOptions analyze;
};

/// Outcome of one variant: screened on analyzer codes, or verified through
/// the standard pipeline.
struct VariantOutcome {
  std::string faults;      ///< canonical failed= value of the variant
  bool screened = false;   ///< rejected by the pre-screen; no verify spent
  /// Error-severity diagnostic codes that screened the variant, sorted and
  /// deduplicated (empty for verified variants).
  std::vector<std::string> screen_codes;
  bool deadlock_free = false;  ///< verified variants only
  std::string method;          ///< deciding stage ("Theorem 1 (C-3)", ...)
  std::size_t edges = 0;       ///< variant dependency-graph edges
  std::uint64_t checks = 0;    ///< elementary checks, screen + verify
  double wall_ms = 0.0;        ///< per-variant wall time (timing-only)
};

/// The campaign report `genoc campaign` renders and serializes.
struct CampaignReport {
  /// Version of the `genoc campaign --json` schema
  /// (tools/check_campaign_schema.py speaks exactly this version).
  static constexpr std::int64_t kSchemaVersion = 1;

  std::string instance;  ///< base display name (preset name or spec string)
  std::string spec;      ///< canonical base spec string
  std::string plan;      ///< canonical fault plan ("single", "random:3,7")
  std::size_t links = 0;           ///< fabric links of the base
  std::size_t variants_total = 0;  ///< == screened + verified
  std::size_t screened = 0;
  std::size_t verified = 0;
  std::size_t deadlock_free = 0;   ///< of the verified variants
  std::size_t deadlocked = 0;      ///< of the verified variants
  /// Screen-code histogram over all screened variants, sorted by code.
  std::vector<std::pair<std::string, std::uint64_t>> screen_code_counts;
  std::vector<VariantOutcome> variants;  ///< in variant order
  /// The campaign store's ledger: base context misses/hits and the base
  /// dependency graph's build/reuse counters (the sharing guarantee tests
  /// assert on).
  ArtifactCacheStats cache;
  std::size_t threads = 1;  ///< timing-only (varies with --threads)
  double wall_ms = 0.0;     ///< timing-only

  bool all_accounted() const { return screened + verified == variants_total; }
  bool any_deadlock() const { return deadlocked != 0; }
};

/// Runs the campaign: enumerate, screen, verify. \p base must be a valid
/// unfaulted grid spec (throws ContractViolation otherwise — the CLI
/// validates first and exits 2). Deterministic modulo the timing fields.
CampaignReport run_campaign(const InstanceSpec& base,
                            const CampaignOptions& options);

}  // namespace genoc
