/// \file fault_model.hpp
/// \brief FaultModel: deterministic, seeded enumeration of link-failure
///        variants of a base instance — the population a fault-injection
///        campaign sweeps.
///
/// The model works on the SPEC level: links are enumerated from the base
/// spec's grid geometry alone (no topology is built), each variant is the
/// base spec plus a canonical `failed=` fault set, and equal seeds produce
/// equal variant lists on every platform and at every thread count. The
/// injection/ejection exclusion is inherited from the fault grammar itself:
/// terminal (L) links are not links of the mesh fabric and cannot fail.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "instance/spec.hpp"

namespace genoc {

/// A parsed `--faults` plan: which variants of the base the campaign runs.
struct FaultPlan {
  enum class Kind {
    kSingle,  ///< every single-link failure, in canonical link order
    kDouble,  ///< every unordered pair of distinct link failures
    kRandom,  ///< one variant of `count` distinct links drawn from `seed`
  };
  Kind kind = Kind::kSingle;
  std::size_t count = 0;    ///< kRandom: number of links to fail (>= 1)
  std::uint64_t seed = 0;   ///< kRandom: Rng seed
};

/// Parses "single" | "double" | "random:<k>,<seed>". Returns nullopt with a
/// message in *error on anything else (including k == 0 or a malformed
/// number) — the CLI maps that to exit 2.
std::optional<FaultPlan> parse_fault_plan(const std::string& text,
                                          std::string* error);

/// Canonical rendering ("single", "double", "random:3,7") — round-trips
/// through parse_fault_plan.
std::string to_string(const FaultPlan& plan);

/// The fault population of one base instance: its fabric links in canonical
/// (node, port-name) order, and the variant specs a plan induces over them.
class FaultModel {
 public:
  /// Requires a valid grid spec with no failed links of its own (a
  /// campaign enumerates faults; it does not stack them on a pre-faulted
  /// base). Throws ContractViolation otherwise.
  explicit FaultModel(const InstanceSpec& base);

  const InstanceSpec& base() const { return base_; }

  /// Every bidirectional fabric link of the base, as canonical fault
  /// tokens, sorted by (node, name). Terminal links are excluded by
  /// construction.
  const std::vector<std::string>& links() const { return links_; }

  /// Number of variants \p plan induces without materializing them.
  std::size_t variant_count(const FaultPlan& plan) const;

  /// The variant specs of \p plan, in deterministic order: link order for
  /// kSingle, lexicographic pair order (i < j) for kDouble, one spec for
  /// kRandom. Each variant is the base with `failed_links` set (and the
  /// preset name cleared, so display names show the fault set). kRandom
  /// requires count <= links().size().
  std::vector<InstanceSpec> variants(const FaultPlan& plan) const;

 private:
  InstanceSpec base_;
  std::vector<std::string> links_;
};

}  // namespace genoc
