/// \file channel_dep.hpp
/// \brief The Dally–Seitz channel dependency graph baseline (paper
///        Sec. IV.A: "Dally and Seitz define their function at the level of
///        processing nodes. We define our routing function at the level of
///        ports.").
///
/// A channel is a unidirectional inter-switch link, i.e. exactly a cardinal
/// OUT port of our mesh. There is a dependency c1 -> c2 when a packet that
/// holds c1 can request c2 next: some reachable destination routes the
/// packet from the in-port at c1's far end onto c2.
///
/// For the comparison ablation (A2 in DESIGN.md): the channel graph is the
/// projection of the port graph onto OUT ports, so the two agree on
/// acyclicity — the test suite verifies this for every routing function —
/// while the port graph carries the finer buffer-level structure the
/// paper's switching proofs need.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "routing/routing.hpp"
#include "topology/mesh.hpp"

namespace genoc {

/// Dependency graph whose vertices are channels (cardinal OUT ports).
struct ChannelDepGraph {
  const Mesh2D* mesh = nullptr;
  /// channels[v] is the OUT port of vertex v.
  std::vector<Port> channels;
  Digraph graph;

  std::string label(std::size_t v) const { return to_string(channels[v]); }

  /// Graphviz rendering.
  std::string to_dot(const std::string& name) const;
};

/// Builds the Dally–Seitz channel dependency graph of \p routing.
ChannelDepGraph build_channel_dep_graph(const RoutingFunction& routing);

}  // namespace genoc
