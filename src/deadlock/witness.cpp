#include "deadlock/witness.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/require.hpp"

namespace genoc {

namespace {

/// Finds a destination d with p0 R d and p1 ∈ R(p0, d) — the (C-2) witness
/// for edge (p0, p1) — by brute force over all destinations.
Port find_edge_witness(const RoutingFunction& routing, const Port& p0,
                       const Port& p1) {
  for (const Port& d : routing.mesh().destinations()) {
    if (!routing.reachable(p0, d)) {
      continue;
    }
    for (const Port& q : routing.next_hops(p0, d)) {
      if (q == p1) {
        return d;
      }
    }
  }
  GENOC_REQUIRE(false, "no (C-2) witness destination for edge (" +
                           to_string(p0) + " -> " + to_string(p1) +
                           "): the cycle is not realizable");
}

/// Builds a route from p0 to d whose second port is p1; after the forced
/// first hop it follows the routing function, taking the first choice at
/// every adaptive branch (all our adaptive functions are minimal, so every
/// branch terminates at d).
Route route_across_edge(const RoutingFunction& routing, const Port& p0,
                        const Port& p1, const Port& d) {
  const std::size_t bound = routing.mesh().port_count() + 1;
  Route route{p0, p1};
  Port current = p1;
  while (current != d) {
    const std::vector<Port> hops = routing.next_hops(current, d);
    GENOC_REQUIRE(!hops.empty(), "routing dead-ends at " + to_string(current) +
                                     " toward " + to_string(d));
    current = hops.front();
    route.push_back(current);
    GENOC_REQUIRE(route.size() <= bound,
                  "routing does not terminate while building witness route");
  }
  return route;
}

}  // namespace

DeadlockConstruction build_deadlock_from_cycle(const RoutingFunction& routing,
                                               const PortDepGraph& dep,
                                               const CycleWitness& cycle,
                                               std::size_t capacity) {
  GENOC_REQUIRE(is_valid_cycle(dep.graph, cycle),
                "build_deadlock_from_cycle requires a valid cycle of the "
                "dependency graph");
  GENOC_REQUIRE(capacity >= 1, "ports need at least one buffer");
  const Mesh2D& mesh = routing.mesh();

  DeadlockConstruction result{NetworkState(mesh, capacity), {}, {}};
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const Port& p0 = dep.port_of(cycle[i]);
    const Port& p1 = dep.port_of(cycle[(i + 1) % cycle.size()]);
    const Port d = find_edge_witness(routing, p0, p1);
    const Route route = route_across_edge(routing, p0, p1, d);

    PacketSpec spec;
    spec.id = static_cast<TravelId>(i + 1);
    spec.route = route;
    // Fill every buffer of p0 so the port is unavailable to everyone else.
    spec.flit_count = static_cast<std::uint32_t>(capacity);
    result.state.place_packet(spec);
    result.packets.push_back(std::move(spec));
    result.destinations.push_back(d);
  }
  result.state.validate();
  return result;
}

DeadlockCycle extract_cycle_from_deadlock(const SwitchingPolicy& policy,
                                          const NetworkState& state) {
  GENOC_REQUIRE(is_deadlock(policy, state),
                "extract_cycle_from_deadlock requires a deadlocked "
                "configuration (Ω)");
  const Mesh2D& mesh = state.mesh();

  // Start from any occupied port and follow the blocked-by relation: the
  // head flit of each port waits for exactly one port (its next route hop).
  PortId start = 0;
  bool found = false;
  for (PortId pid = 0; pid < mesh.port_count(); ++pid) {
    if (state.occupancy(pid) > 0) {
      start = pid;
      found = true;
      break;
    }
  }
  GENOC_REQUIRE(found, "deadlocked state has no buffered flit; all packets "
                       "are blocked at entry by in-network packets — "
                       "impossible under Ω");

  std::unordered_map<PortId, std::size_t> visit_index;
  std::vector<PortId> walk;
  std::vector<TravelId> owners;
  PortId current = start;
  for (;;) {
    const auto it = visit_index.find(current);
    if (it != visit_index.end()) {
      // Cycle found: the walk suffix starting at the first visit of
      // `current`.
      DeadlockCycle cycle;
      for (std::size_t i = it->second; i < walk.size(); ++i) {
        cycle.ports.push_back(mesh.port(walk[i]));
        cycle.packets.push_back(owners[i]);
      }
      return cycle;
    }
    visit_index.emplace(current, walk.size());
    walk.push_back(current);

    const FlitRef head = state.buffer(current).front();
    owners.push_back(head.travel);
    const PacketSpec& spec = state.packet(head.travel);
    const std::int32_t pos = state.flit_pos(head.travel, head.index);
    GENOC_ASSERT(pos >= 0, "buffered flit has no position");
    const auto next_idx = static_cast<std::size_t>(pos) + 1;
    GENOC_ASSERT(next_idx < spec.route.size(), "head flit beyond route end");
    // In a deadlock the next hop cannot be the destination Local OUT
    // (consumption is guaranteed there), so it is a real blocked port.
    GENOC_ASSERT(next_idx + 1 < spec.route.size(),
                 "head flit facing the destination cannot be blocked");
    const PortId target = mesh.id(spec.route[next_idx]);
    GENOC_ASSERT(state.occupancy(target) > 0,
                 "blocking port is empty — state is not actually deadlocked");
    current = target;
  }
}

bool cycle_lies_in_dep_graph(const PortDepGraph& dep,
                             const std::vector<Port>& ports) {
  if (ports.empty()) {
    return false;
  }
  for (std::size_t i = 0; i < ports.size(); ++i) {
    const Port& from = ports[i];
    const Port& to = ports[(i + 1) % ports.size()];
    if (!dep.mesh->exists(from) || !dep.mesh->exists(to)) {
      return false;
    }
    if (!dep.graph.has_edge(dep.mesh->id(from), dep.mesh->id(to))) {
      return false;
    }
  }
  return true;
}

}  // namespace genoc
