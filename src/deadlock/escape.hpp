/// \file escape.hpp
/// \brief Escape-channel (Duato-style) deadlock-freedom analysis — the
///        paper's Sec. IX future-work direction, executed at graph level.
///
/// The paper restricts Theorem 1 to deterministic routing and cites Duato
/// [19] for adaptive routing. Duato's classic recipe: give every port an
/// extra *escape* virtual lane routed by a deterministic deadlock-free
/// function; a packet blocked in the adaptive lanes can always fall back to
/// the escape lane. Deadlock-freedom then requires only that
///
///   (1) an escape hop is AVAILABLE from every state the adaptive function
///       can reach (every adaptive-reachable (in-port, destination) pair
///       has an escape next hop that exists in the mesh), and
///   (2) the escape lane's own dependency graph — the closure of the escape
///       function over all states reachable once a packet has escaped — is
///       ACYCLIC.
///
/// This module builds that escape closure and checks both conditions. The
/// decisive subtlety is that the escape function is applied from states the
/// escape function itself would never create (e.g. a packet that travelled
/// South under fully-adaptive routing and now needs to go East sits in a
/// North IN port — an XY-impossible state): availability and acyclicity
/// must therefore be evaluated over the ADAPTIVE reachability relation, not
/// the escape function's own.
#pragma once

#include <cstdint>
#include <string>

#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "routing/routing.hpp"

namespace genoc {

class ThreadPool;

/// Outcome of the escape analysis.
struct EscapeAnalysis {
  /// (1): every adaptive-reachable in-port state has an escape hop.
  bool escape_always_available = false;
  /// Number of (in-port, destination) states checked for availability.
  std::uint64_t states_checked = 0;
  /// Number of states WITHOUT an escape hop (0 when (1) holds).
  std::uint64_t missing_states = 0;
  /// The FIRST state without an escape hop in canonical (destination-major,
  /// in-port-minor) sweep order, if any ("<port> / <dest>"). Sharding never
  /// changes this witness: every shard reports its locally first state and
  /// the merge keeps the globally smallest (destination, port) pair.
  std::string missing_escape;
  /// (2): the escape-lane dependency graph (over the escape closure).
  PortDepGraph escape_graph;
  bool escape_graph_acyclic = false;
  /// Verdict: (1) and (2) — the network is deadlock-free with one escape
  /// lane per port, regardless of cycles in the adaptive lanes.
  bool deadlock_free = false;

  /// One bounded line: the verdict, the state counts, the first missing
  /// witness (if any; never the full list) and the graph shape.
  std::string summary() const;
};

/// Runs the analysis: \p adaptive is the (possibly cyclic) routing function
/// packets normally use; \p escape is a deterministic function whose
/// next-hop *formula* is total on in-ports (like the paper's Rxy case
/// split). Both must live on the same mesh.
///
/// With a \p pool the per-destination sweeps are sharded across its
/// threads, each shard on private scratch (stamp epochs, frontier, hop
/// buffer, edge-dedup cache); the merged result is BIT-IDENTICAL to the
/// sequential analysis at every thread count (Digraph::finalize
/// canonicalizes the edge set, counters are order-free sums, and the
/// missing-escape witness is the canonical minimum). pool == nullptr runs
/// the classic sequential sweep.
EscapeAnalysis analyze_escape(const RoutingFunction& adaptive,
                              const RoutingFunction& escape,
                              ThreadPool* pool = nullptr);

}  // namespace genoc
