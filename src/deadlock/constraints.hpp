/// \file constraints.hpp
/// \brief The proof obligations for deadlock-free routing: (C-1), (C-2),
///        (C-3) of Section IV.A, as certifying checkers.
///
/// (C-1)  ∀s,d ∀p ∈ R(s,d) · s R d ⟹ (s,p) ∈ E_dep
///        — every pair of ports connected by the routing function (for a
///        reachable destination) is an edge of the dependency graph.
/// (C-2)  ∀(p0,p1) ∈ E_dep ∃d · p0 R d ∧ p1 ∈ R(p0,d)
///        — every edge is realizable: some reachable destination routes
///        across it.
/// (C-3)  no cycle in the dependency graph.
///
/// Each checker returns a ConstraintReport with the number of elementary
/// checks performed (the executable analog of the ACL2 case splits counted
/// in Table I) and explicit violation witnesses on failure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "routing/routing.hpp"

namespace genoc {

/// Outcome of discharging one proof obligation on a concrete instance.
struct ConstraintReport {
  std::string constraint;   ///< e.g. "(C-1)xy"
  bool satisfied = false;
  std::uint64_t checks = 0;  ///< elementary checks performed (case splits)
  double cpu_ms = 0.0;
  /// Human-readable violation descriptions (capped at kMaxViolations).
  std::vector<std::string> violations;

  static constexpr std::size_t kMaxViolations = 16;

  /// One-line summary for reports.
  std::string summary() const;
};

/// Discharges (C-1): routing-induced dependencies are edges of \p dep.
/// Also flags routing outputs that do not exist in the mesh (a malformed
/// routing function can never satisfy (C-1)).
ConstraintReport check_c1(const RoutingFunction& routing,
                          const PortDepGraph& dep);

/// Discharges (C-2) by brute-force witness search over all destinations.
ConstraintReport check_c2(const RoutingFunction& routing,
                          const PortDepGraph& dep);

/// The paper's find_dest-style witness for XY routing: for an edge
/// (p0, p1) of Exy_dep, the nearest destination d such that p0 R d and
/// p1 ∈ Rxy(p0, d):
///   - p1 a Local OUT port: d = p1;
///   - p1 any other OUT port (p0 is an in-port): d = trans(next_in(p1), L,OUT);
///   - p1 an IN port (p0 is an out-port):        d = trans(p1, L,OUT).
Port xy_edge_witness(const Mesh2D& mesh, const Port& p0, const Port& p1);

/// Discharges (C-2) for XY using the closed-form witness above instead of
/// brute force (checks the witness really works for every edge).
ConstraintReport check_c2_xy_closed_form(const RoutingFunction& routing,
                                         const PortDepGraph& dep);

/// Discharges (C-3): no cycle in the dependency graph (linear-time DFS,
/// as sanctioned by the paper's Sec. VII for fixed instances). On failure
/// the report carries the cycle, also available via last_cycle.
ConstraintReport check_c3(const PortDepGraph& dep,
                          std::optional<CycleWitness>* cycle_out = nullptr);

}  // namespace genoc
