/// \file scc_checker.hpp
/// \brief Taktak-style deadlock detection via strongly connected components
///        (paper Sec. VIII: "This work focuses on deadlock detection and
///        first extracts the strongly connected components of the
///        dependency graph. Then, it looks for cycles between these
///        components.").
///
/// For deterministic routing, a non-trivial SCC is equivalent to a cycle,
/// so this analyzer is an alternative (C-3) discharge strategy; for the
/// adaptive extensions it additionally reports *where* the cyclic
/// dependencies concentrate and samples concrete cycles from each
/// component for the witness builder.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"

namespace genoc {

class ThreadPool;

/// Result of the SCC-based dependency analysis.
struct SccAnalysis {
  std::size_t scc_count = 0;
  std::size_t nontrivial_scc_count = 0;
  std::size_t largest_scc_size = 0;
  /// Ports involved in some non-trivial SCC (cyclically dependent ports).
  std::size_t ports_in_cycles = 0;
  /// Verdict: true iff no non-trivial SCC exists (graph acyclic).
  bool deadlock_free = false;
  /// Up to max_cycles sample cycles, each drawn from a non-trivial SCC.
  std::vector<CycleWitness> sample_cycles;
  double cpu_ms = 0.0;

  std::string summary() const;
};

/// Runs the analysis on a port dependency graph, sampling at most
/// \p max_cycles concrete cycles across the non-trivial components. With a
/// \p pool the SCC stage runs parallel_scc (same partition; canonical
/// component order, so results are identical for every thread count);
/// without one it runs sequential Tarjan as before.
SccAnalysis analyze_dependencies(const PortDepGraph& dep,
                                 std::size_t max_cycles,
                                 ThreadPool* pool = nullptr);

}  // namespace genoc
