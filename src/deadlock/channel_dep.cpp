#include "deadlock/channel_dep.hpp"

#include <unordered_map>

#include "util/dot.hpp"
#include "util/require.hpp"

namespace genoc {

std::string ChannelDepGraph::to_dot(const std::string& name) const {
  DotOptions options;
  options.graph_name = name;
  return genoc::to_dot(
      graph.vertex_count(), graph.edges(),
      [this](std::size_t v) { return label(v); }, options);
}

ChannelDepGraph build_channel_dep_graph(const RoutingFunction& routing) {
  const Mesh2D& mesh = routing.mesh();
  ChannelDepGraph result;
  result.mesh = &mesh;

  std::unordered_map<Port, std::size_t> index;
  for (const Port& p : mesh.ports()) {
    if (p.dir == Direction::kOut && p.name != PortName::kLocal) {
      index.emplace(p, result.channels.size());
      result.channels.push_back(p);
    }
  }
  result.graph = Digraph(result.channels.size());

  for (std::size_t v = 0; v < result.channels.size(); ++v) {
    const Port& c1 = result.channels[v];
    const Port far_in = mesh.next_in(c1);
    GENOC_ASSERT(mesh.exists(far_in), "channel without far-end in-port");
    for (const Port& d : mesh.destinations()) {
      // A packet holds c1 en route to d iff c1 itself is reachability-
      // consistent with d; it then sits in far_in and requests R(far_in, d).
      if (!routing.reachable(c1, d)) {
        continue;
      }
      for (const Port& q : routing.next_hops(far_in, d)) {
        const auto it = index.find(q);
        if (it != index.end()) {
          result.graph.add_edge(v, it->second);
        }
        // Local OUT ports are consumption, not channels: no dependency.
      }
    }
  }
  result.graph.finalize();
  return result;
}

}  // namespace genoc
