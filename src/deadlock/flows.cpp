#include "deadlock/flows.hpp"

#include <sstream>

#include "graph/toposort.hpp"
#include "util/require.hpp"

namespace genoc {

const char* flow_class_name(FlowClass flow) {
  switch (flow) {
    case FlowClass::kEastern:
      return "Eastern";
    case FlowClass::kWestern:
      return "Western";
    case FlowClass::kNorthern:
      return "Northern";
    case FlowClass::kSouthern:
      return "Southern";
    case FlowClass::kLocalSource:
      return "Local-source";
    case FlowClass::kLocalSink:
      return "Local-sink";
  }
  return "?";
}

FlowClass classify_flow(const Port& p) {
  switch (p.name) {
    case PortName::kLocal:
      return p.dir == Direction::kIn ? FlowClass::kLocalSource
                                     : FlowClass::kLocalSink;
    case PortName::kWest:
      // West-IN carries eastbound traffic; West-OUT carries westbound.
      return p.dir == Direction::kIn ? FlowClass::kEastern
                                     : FlowClass::kWestern;
    case PortName::kEast:
      return p.dir == Direction::kIn ? FlowClass::kWestern
                                     : FlowClass::kEastern;
    case PortName::kSouth:
      // South-IN carries northbound traffic (y decreasing): Northern flow.
      return p.dir == Direction::kIn ? FlowClass::kNorthern
                                     : FlowClass::kSouthern;
    case PortName::kNorth:
      return p.dir == Direction::kIn ? FlowClass::kSouthern
                                     : FlowClass::kNorthern;
  }
  return FlowClass::kLocalSink;
}

std::int64_t xy_flow_rank(const Mesh2D& mesh, const Port& p) {
  const std::int64_t width = mesh.width();
  const std::int64_t height = mesh.height();
  const std::int64_t vertical_base = 2 * width + 1;
  const std::int64_t out_bump = (p.dir == Direction::kOut) ? 1 : 0;
  switch (classify_flow(p)) {
    case FlowClass::kLocalSource:
      return 0;
    case FlowClass::kEastern:
      return 2 * static_cast<std::int64_t>(p.x) + out_bump;
    case FlowClass::kWestern:
      return 2 * (width - 1 - static_cast<std::int64_t>(p.x)) + out_bump;
    case FlowClass::kSouthern:
      return vertical_base + 2 * static_cast<std::int64_t>(p.y) + out_bump;
    case FlowClass::kNorthern:
      return vertical_base + 2 * (height - 1 - static_cast<std::int64_t>(p.y)) +
             out_bump;
    case FlowClass::kLocalSink:
      return vertical_base + 2 * height + 1;
  }
  GENOC_REQUIRE(false, "unreachable");
}

std::string FlowDecomposition::summary() const {
  std::ostringstream os;
  os << "flows:";
  for (int f = 0; f < 6; ++f) {
    os << ' ' << flow_class_name(static_cast<FlowClass>(f)) << '='
       << ports_per_flow[f];
  }
  os << "; intra-flow edges=" << intra_flow_edges
     << ", horizontal->vertical escapes=" << horizontal_to_vertical
     << ", local-sink escapes=" << into_local_sink
     << ", source edges=" << out_of_local_source
     << ", violations=" << violating_edges;
  return os.str();
}

namespace {

bool is_horizontal(FlowClass f) {
  return f == FlowClass::kEastern || f == FlowClass::kWestern;
}

bool is_vertical(FlowClass f) {
  return f == FlowClass::kNorthern || f == FlowClass::kSouthern;
}

}  // namespace

FlowDecomposition decompose_flows(const PortDepGraph& dep) {
  GENOC_REQUIRE(dep.mesh != nullptr, "uninitialized dependency graph");
  FlowDecomposition result;
  for (const Port& p : dep.mesh->ports()) {
    ++result.ports_per_flow[static_cast<int>(classify_flow(p))];
  }
  for (const auto& [from, to] : dep.graph.edges()) {
    const FlowClass a = classify_flow(dep.port_of(from));
    const FlowClass b = classify_flow(dep.port_of(to));
    if (a == FlowClass::kLocalSource) {
      ++result.out_of_local_source;
    } else if (b == FlowClass::kLocalSink) {
      ++result.into_local_sink;
    } else if (a == b && a != FlowClass::kLocalSink) {
      ++result.intra_flow_edges;
    } else if (is_horizontal(a) && is_vertical(b)) {
      ++result.horizontal_to_vertical;
    } else {
      // Anything else (vertical->horizontal, flow reversal, edges out of a
      // sink) breaks the flow discipline.
      ++result.violating_edges;
    }
  }
  return result;
}

std::int64_t yx_flow_rank(const Mesh2D& mesh, const Port& p) {
  const std::int64_t width = mesh.width();
  const std::int64_t height = mesh.height();
  // Mirror of xy_flow_rank: the vertical flows are phase 1, the horizontal
  // flows phase 2 (offset past every vertical rank), Local OUT last.
  const std::int64_t horizontal_base = 2 * height + 1;
  const std::int64_t out_bump = (p.dir == Direction::kOut) ? 1 : 0;
  switch (classify_flow(p)) {
    case FlowClass::kLocalSource:
      return 0;
    case FlowClass::kSouthern:
      return 2 * static_cast<std::int64_t>(p.y) + out_bump;
    case FlowClass::kNorthern:
      return 2 * (height - 1 - static_cast<std::int64_t>(p.y)) + out_bump;
    case FlowClass::kEastern:
      return horizontal_base + 2 * static_cast<std::int64_t>(p.x) + out_bump;
    case FlowClass::kWestern:
      return horizontal_base + 2 * (width - 1 - static_cast<std::int64_t>(p.x)) +
             out_bump;
    case FlowClass::kLocalSink:
      return horizontal_base + 2 * width + 1;
  }
  GENOC_REQUIRE(false, "unreachable");
}

bool verify_flow_certificate(const PortDepGraph& dep) {
  return verify_flow_certificate(dep, &xy_flow_rank);
}

bool verify_flow_certificate(const PortDepGraph& dep, FlowRank rank_fn) {
  GENOC_REQUIRE(dep.mesh != nullptr, "uninitialized dependency graph");
  GENOC_REQUIRE(rank_fn != nullptr, "a rank function is required");
  std::vector<std::int64_t> rank(dep.graph.vertex_count());
  for (std::size_t v = 0; v < rank.size(); ++v) {
    rank[v] = rank_fn(*dep.mesh, dep.port_of(v));
  }
  return verify_rank_certificate(dep.graph, rank);
}

}  // namespace genoc
