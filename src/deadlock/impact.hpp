/// \file impact.hpp
/// \brief Deadlock impact analysis: which packets are IN the cyclic wait
///        (the core of the Theorem-1 necessity argument) and which are
///        merely stuck behind it.
///
/// Useful as a diagnostic on top of extract_cycle_from_deadlock(): in a
/// real design flow the cycle packets identify the routing bug, while the
/// blocked-behind count quantifies the blast radius.
#pragma once

#include <string>
#include <vector>

#include "switching/network_state.hpp"
#include "switching/policy.hpp"
#include "topology/port.hpp"

namespace genoc {

/// Classification of every undelivered packet in a deadlocked state.
struct DeadlockImpact {
  /// Packets occupying a port of the recovered dependency cycle.
  std::vector<TravelId> cycle_packets;
  /// In-network packets transitively waiting on the cycle.
  std::vector<TravelId> blocked_behind;
  /// Packets that never entered the network (stuck at their source).
  std::vector<TravelId> never_entered;
  /// The cycle the classification is based on.
  std::vector<Port> cycle_ports;

  std::string summary() const;
};

/// Analyzes a deadlocked state (requires is_deadlock(policy, state)).
DeadlockImpact analyze_deadlock_impact(const SwitchingPolicy& policy,
                                       const NetworkState& state);

}  // namespace genoc
