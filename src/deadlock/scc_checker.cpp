#include "deadlock/scc_checker.hpp"

#include <algorithm>
#include <sstream>

#include "graph/johnson.hpp"
#include "graph/tarjan.hpp"
#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace genoc {

std::string SccAnalysis::summary() const {
  std::ostringstream os;
  os << (deadlock_free ? "deadlock-free" : "CYCLIC") << ": " << scc_count
     << " SCCs, " << nontrivial_scc_count << " non-trivial (largest "
     << largest_scc_size << " ports, " << ports_in_cycles
     << " ports cyclically dependent), " << sample_cycles.size()
     << " sample cycles, " << cpu_ms << " ms";
  return os.str();
}

SccAnalysis analyze_dependencies(const PortDepGraph& dep,
                                 std::size_t max_cycles, ThreadPool* pool) {
  GENOC_REQUIRE(dep.mesh != nullptr, "uninitialized dependency graph");
  Stopwatch timer;
  SccAnalysis result;

  const SccResult scc =
      pool != nullptr ? parallel_scc(dep.graph, *pool) : tarjan_scc(dep.graph);
  result.scc_count = scc.components.size();
  for (const auto& comp : scc.components) {
    const bool nontrivial =
        comp.size() >= 2 || dep.graph.has_edge(comp.front(), comp.front());
    if (!nontrivial) {
      continue;
    }
    ++result.nontrivial_scc_count;
    result.largest_scc_size = std::max(result.largest_scc_size, comp.size());
    result.ports_in_cycles += comp.size();

    if (result.sample_cycles.size() < max_cycles) {
      // Sample cycles from this component only: induce the subgraph and
      // enumerate a few simple cycles.
      std::vector<std::uint8_t> keep(dep.graph.vertex_count(), 0);
      for (const std::size_t v : comp) {
        keep[v] = 1;
      }
      const Digraph sub = dep.graph.induced(keep);
      const std::size_t budget = max_cycles - result.sample_cycles.size();
      for (CycleWitness& cycle : enumerate_cycles(sub, budget)) {
        result.sample_cycles.push_back(std::move(cycle));
      }
    }
  }
  result.deadlock_free = (result.nontrivial_scc_count == 0);
  result.cpu_ms = timer.elapsed_ms();
  return result;
}

}  // namespace genoc
