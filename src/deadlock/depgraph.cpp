#include "deadlock/depgraph.hpp"

#include <bit>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/sweep.hpp"
#include "util/dot.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace genoc {

namespace {

/// Post-finalize edge count: deterministic at any thread count (finalize
/// dedups the shards' repeat emissions), so the counter stays comparable
/// across 1/4/8-thread runs.
void count_built_edges(const PortDepGraph& result) {
  static obs::Counter& edges =
      obs::MetricsRegistry::global().counter("depgraph.edges_built");
  edges.add(result.graph.edge_count());
}

/// Stamps the vertex-naming references of a result graph: the topology
/// always, the grid view when the topology is one (Port-tuple consumers —
/// constraints, witness replay, flows — stay grid-only).
void bind_topology(PortDepGraph& result, const Topology& topo) {
  result.topo = &topo;
  result.mesh = dynamic_cast<const Mesh2D*>(&topo);
}

}  // namespace

std::string PortDepGraph::to_dot(const std::string& name) const {
  GENOC_REQUIRE(topo != nullptr, "uninitialized dependency graph");
  DotOptions options;
  options.graph_name = name;
  return genoc::to_dot(
      graph.vertex_count(), graph.edges(),
      [this](std::size_t v) { return label(v); }, options);
}

PortDepGraph build_dep_graph(const RoutingFunction& routing) {
  obs::TraceSpan span("build_dep_graph_generic");
  const Topology& topo = routing.topology();
  PortDepGraph result;
  bind_topology(result, topo);
  result.graph = Digraph(topo.port_count());
  std::vector<PortId> hop_ids;
  std::vector<Port> scratch;
  for (PortId p = 0; p < topo.port_count(); ++p) {
    for (std::size_t di = 0; di < topo.destination_count(); ++di) {
      // reachable_id dispatches through the virtual reachable() on grids,
      // so closed-form (and deliberately broken) overrides stay
      // authoritative — this is what makes the generic build the oracle.
      if (!routing.reachable_id(p, di)) {
        continue;
      }
      hop_ids.clear();
      // Existence of every hop for reachable inputs is a (C-1) concern;
      // the generic graph only ranges over real ports (the id layer
      // filters non-existent hops).
      routing.next_hop_ids_into(p, di, hop_ids, scratch);
      for (const PortId q : hop_ids) {
        result.graph.add_edge(p, q);
      }
    }
  }
  result.graph.finalize();
  count_built_edges(result);
  return result;
}

PortDepGraph build_dep_graph_analytic(const RoutingFunction& routing) {
  obs::TraceSpan span("build_dep_graph_analytic");
  const Topology& topo = routing.topology();
  const std::uint64_t terminal = topo.terminal_name_mask();
  constexpr auto kOut = static_cast<std::size_t>(Direction::kOut);
  constexpr auto kIn = static_cast<std::size_t>(Direction::kIn);
  PortDepGraph result;
  bind_topology(result, topo);
  result.graph = Digraph(topo.port_count());
  result.graph.reserve_edges(topo.port_count() * 3);
  const std::size_t spn = topo.slots_per_node();
  const PortId* slots = topo.node_slots(0);
  for (std::size_t node = 0; node < topo.node_count(); ++node, slots += spn) {
    const std::uint64_t exists = topo.out_exists_mask(node);
    // The out-ports any destination ever selects at this node: terminal
    // in-ports can hold every destination, so their unions cover the lot.
    std::uint64_t used = 0;
    std::uint64_t term = terminal;
    while (term != 0) {
      const auto tname = static_cast<unsigned>(std::countr_zero(term));
      term &= term - 1;
      if (slots[tname * 2 + kIn] != kInvalidPort) {
        used |= routing.in_port_union(node, tname);
      }
    }
    used &= exists;
    for (std::size_t name = 0; name < topo.name_count(); ++name) {
      const PortId in = slots[name * 2 + kIn];
      if (in != kInvalidPort) {
        std::uint64_t mask = routing.in_port_union(node, name) & exists;
        while (mask != 0) {
          const auto out_name = static_cast<unsigned>(std::countr_zero(mask));
          mask &= mask - 1;
          result.graph.add_edge(in, slots[out_name * 2 + kOut]);
        }
      }
      const PortId out = slots[name * 2 + kOut];
      if (out != kInvalidPort && ((terminal >> name) & 1u) == 0 &&
          ((used >> name) & 1u) != 0) {
        result.graph.add_edge(out, topo.link_target(out));
      }
    }
  }
  result.graph.finalize();
  count_built_edges(result);
  return result;
}

PortDepGraph build_dep_graph_fast(const RoutingFunction& routing) {
  if (routing.has_in_port_unions()) {
    return build_dep_graph_analytic(routing);
  }
  obs::TraceSpan span("build_dep_graph_fast");
  const Topology& topo = routing.topology();
  RouteSweeper sweeper(routing);
  std::vector<RouteSweeper::Edge> edges;
  // The sweeper suppresses repeat emissions, so the buffer stays near the
  // final edge count; ~3 edges per port covers every routing here.
  edges.reserve(topo.port_count() * 3);
  for (std::size_t dest = 0; dest < topo.destination_count(); ++dest) {
    sweeper.sweep(dest, &edges, nullptr);
  }
  PortDepGraph result;
  bind_topology(result, topo);
  result.graph = Digraph(topo.port_count());
  result.graph.reserve_edges(edges.size());
  for (const auto& [from, to] : edges) {
    result.graph.add_edge(from, to);
  }
  result.graph.finalize();
  count_built_edges(result);
  return result;
}

PortDepGraph build_dep_graph_parallel(const RoutingFunction& routing,
                                      ThreadPool& pool) {
  if (routing.has_in_port_unions()) {
    // The analytic build is O(ports) with no per-destination work to
    // shard; running it on the calling thread beats any fan-out.
    return build_dep_graph_analytic(routing);
  }
  obs::TraceSpan span("build_dep_graph_parallel");
  const Topology& topo = routing.topology();
  const std::size_t dest_count = topo.destination_count();
  const std::size_t grain = pool.recommended_grain(dest_count);
  const std::size_t shard_total = (dest_count + grain - 1) / grain;
  std::vector<std::vector<RouteSweeper::Edge>> shards(shard_total);

  pool.parallel_for(
      dest_count, grain, [&](std::size_t begin, std::size_t end) {
        obs::TraceSpan shard_span("depgraph_shard");
        if (shard_span.active()) {
          shard_span.set_detail("dests " + std::to_string(begin) + ".." +
                                std::to_string(end));
        }
        auto& local = shards[begin / grain];
        // A sweeper per shard: the emitted-edge dedup cache is sweeper-
        // local, so shards may re-emit edges another shard saw — merge
        // order and duplicates are both erased by finalize().
        RouteSweeper sweeper(routing);
        local.reserve(topo.port_count() / 2);
        for (std::size_t dest = begin; dest < end; ++dest) {
          sweeper.sweep(dest, &local, nullptr);
        }
      });

  obs::TraceSpan merge_span("depgraph_merge");
  PortDepGraph result;
  bind_topology(result, topo);
  result.graph = Digraph(topo.port_count());
  std::size_t total = 0;
  for (const auto& shard : shards) {
    total += shard.size();
  }
  result.graph.reserve_edges(total);
  for (const auto& shard : shards) {
    for (const auto& [from, to] : shard) {
      result.graph.add_edge(from, to);
    }
  }
  result.graph.finalize();
  count_built_edges(result);
  return result;
}

PortDepGraph build_dep_graph_delta(
    const PortDepGraph& base, const RoutingFunction& routing,
    const std::vector<PortId>& removed_base_ports) {
  obs::TraceSpan span("build_dep_graph_delta");
  const Topology& topo = routing.topology();
  GENOC_REQUIRE(routing.node_uniform(),
                "delta dependency-graph build requires a node-uniform "
                "routing; " + routing.name() + " must rebuild from scratch");
  const std::size_t base_count = base.graph.vertex_count();
  GENOC_REQUIRE(
      topo.port_count() + removed_base_ports.size() == base_count,
      "removed-port set does not reconcile the variant against its base");
  // Monotone id translation: variant id = rank of the surviving base id.
  std::vector<PortId> to_variant(base_count);
  {
    std::size_t next_removed = 0;
    PortId next_id = 0;
    for (std::size_t v = 0; v < base_count; ++v) {
      if (next_removed < removed_base_ports.size() &&
          removed_base_ports[next_removed] == static_cast<PortId>(v)) {
        to_variant[v] = kInvalidPort;
        ++next_removed;
      } else {
        to_variant[v] = next_id++;
      }
    }
    GENOC_REQUIRE(next_removed == removed_base_ports.size(),
                  "removed base port id out of range (ids must be sorted "
                  "and deduplicated)");
  }
  PortDepGraph result;
  bind_topology(result, topo);
  result.graph = Digraph(topo.port_count());
  result.graph.reserve_edges(base.graph.edge_count());
  // The base CSR is sorted by (from, to) and the translation is monotone,
  // so the surviving edges come out pre-sorted — finalize() skips its sort.
  for (std::size_t v = 0; v < base_count; ++v) {
    const PortId from = to_variant[v];
    if (from == kInvalidPort) {
      continue;
    }
    for (const std::uint32_t w : base.graph.out(v)) {
      const PortId to = to_variant[w];
      if (to != kInvalidPort) {
        result.graph.add_edge(from, to);
      }
    }
  }
  result.graph.finalize();
  count_built_edges(result);
  return result;
}

std::vector<Port> next_outs_xy(const Mesh2D& mesh, const Port& p) {
  GENOC_REQUIRE(p.dir == Direction::kIn,
                "next_outs is defined on in-ports, got " + to_string(p));
  std::vector<Port> outs;
  auto add_if_exists = [&](PortName name) {
    const Port candidate = trans(p, name, Direction::kOut);
    if (mesh.exists(candidate)) {
      outs.push_back(candidate);
    }
  };
  // Paper Sec. V.6, verbatim case structure:
  //   next_outs(p) = { trans(p, L,OUT) }
  //                ∪ { trans(p, W,OUT) iff port(p) ∈ {E, L} }
  //                ∪ { trans(p, E,OUT) iff port(p) ∈ {W, L} }
  //                ∪ { trans(p, N,OUT) iff port(p) ≠ N }
  //                ∪ { trans(p, S,OUT) iff port(p) ≠ S }
  add_if_exists(PortName::kLocal);
  if (p.name == PortName::kEast || p.name == PortName::kLocal) {
    add_if_exists(PortName::kWest);
  }
  if (p.name == PortName::kWest || p.name == PortName::kLocal) {
    add_if_exists(PortName::kEast);
  }
  if (p.name != PortName::kNorth) {
    add_if_exists(PortName::kNorth);
  }
  if (p.name != PortName::kSouth) {
    add_if_exists(PortName::kSouth);
  }
  return outs;
}

PortDepGraph build_exy_dep(const Mesh2D& mesh) {
  PortDepGraph result;
  bind_topology(result, mesh);
  result.graph = Digraph(mesh.port_count());
  for (const Port& p : mesh.ports()) {
    if (p.dir == Direction::kIn) {
      for (const Port& q : next_outs_xy(mesh, p)) {
        result.graph.add_edge(mesh.id(p), mesh.id(q));
      }
    } else if (p.name != PortName::kLocal) {
      // Cardinal out-ports connect to the neighbour's in-port; the port
      // exists, hence so does its neighbour.
      result.graph.add_edge(mesh.id(p), mesh.id(mesh.next_in(p)));
    }
    // Local OUT ports deliver to the core: sinks of the dependency graph.
  }
  result.graph.finalize();
  return result;
}

}  // namespace genoc
