/// \file witness.hpp
/// \brief Executable witness constructions for both directions of
///        Theorem 1 ("R is deadlock-free iff there is no cycle in its port
///        dependency graph", paper Sec. IV.A).
///
/// Sufficiency (cycle ⟹ deadlock): "Each port of the cycle is filled with
/// messages with these destinations … the configuration is in deadlock."
/// build_deadlock_from_cycle() performs exactly that construction on the
/// concrete network state; callers then assert Ω with is_deadlock().
///
/// Necessity (deadlock ⟹ cycle): "The witness for P is the set of
/// unavailable ports in the deadlock configuration … From P we construct a
/// graph … any such graph contains at least one cycle."
/// extract_cycle_from_deadlock() walks the blocked-by relation of a
/// deadlocked state and returns the cycle it must contain.
#pragma once

#include <vector>

#include "deadlock/depgraph.hpp"
#include "graph/cycle.hpp"
#include "routing/routing.hpp"
#include "switching/network_state.hpp"
#include "switching/policy.hpp"

namespace genoc {

/// The deadlock configuration built from a dependency-graph cycle.
struct DeadlockConstruction {
  NetworkState state;
  /// One packet per cycle port, in cycle order; packet i fills cycle port i
  /// and its next hop is cycle port i+1 (mod n).
  std::vector<PacketSpec> packets;
  /// The witness destination chosen for each packet (via (C-2)).
  std::vector<Port> destinations;
};

/// Builds the Theorem-1 sufficiency witness: for every port p_i of
/// \p cycle (vertex ids of \p dep), finds a destination d_i with
/// p_{i+1} ∈ R(p_i, d_i) (constraint (C-2) guarantees one exists), computes
/// a route from p_i to d_i crossing that edge, and fills all of p_i's
/// buffers with a packet on that route. The resulting state satisfies the
/// deadlock predicate Ω under wormhole switching.
///
/// \param routing   the routing function under test (deterministic or
///                  adaptive).
/// \param dep       its dependency graph (used for labels/validation).
/// \param cycle     a valid cycle of dep.graph (see is_valid_cycle()).
/// \param capacity  buffers per port in the constructed state.
/// Throws ContractViolation if some edge has no witness destination — i.e.
/// if (C-2) does not hold, in which case the cycle is not realizable.
DeadlockConstruction build_deadlock_from_cycle(const RoutingFunction& routing,
                                               const PortDepGraph& dep,
                                               const CycleWitness& cycle,
                                               std::size_t capacity);

/// A cycle recovered from a deadlocked configuration.
struct DeadlockCycle {
  /// The ports of the cycle, in blocked-by order: port i's head flit waits
  /// for a buffer of port i+1 (mod n).
  std::vector<Port> ports;
  /// The packet occupying each port of the cycle.
  std::vector<TravelId> packets;
};

/// Builds the Theorem-1 necessity witness: from a configuration that is in
/// deadlock under \p policy, extracts a cycle of mutually blocked ports by
/// following each blocked head flit to the port it waits for. Requires
/// is_deadlock(policy, state).
DeadlockCycle extract_cycle_from_deadlock(const SwitchingPolicy& policy,
                                          const NetworkState& state);

/// True iff every consecutive pair of \p ports (cyclically) is an edge of
/// \p dep — i.e. the recovered deadlock cycle is a dependency-graph cycle,
/// which is what makes the necessity proof go through (constraint (C-1)).
bool cycle_lies_in_dep_graph(const PortDepGraph& dep,
                             const std::vector<Port>& ports);

}  // namespace genoc
