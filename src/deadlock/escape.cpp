#include "deadlock/escape.hpp"

#include <limits>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "routing/sweep.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace genoc {

std::string EscapeAnalysis::summary() const {
  std::ostringstream os;
  os << (deadlock_free ? "deadlock-free with escape lane"
                       : "NOT proven deadlock-free")
     << ": escape available on " << states_checked << " states (";
  if (escape_always_available) {
    os << "all";
  } else {
    // Bounded on purpose: the first witness in canonical sweep order plus
    // the total count — never one entry per missing state (a broken escape
    // formula on a 64x64 torus misses tens of thousands of states).
    os << "missing at " << missing_escape;
    if (missing_states > 1) {
      os << " and " << (missing_states - 1) << " more";
    }
  }
  os << "), escape graph " << escape_graph.graph.vertex_count() << " ports / "
     << escape_graph.graph.edge_count() << " edges, "
     << (escape_graph_acyclic ? "acyclic" : "CYCLIC");
  return os.str();
}

namespace {

/// Scratch + partial results of one shard of the destination-sharded escape
/// sweep. Every member is private to the shard's worker, so the sweep body
/// runs lock-free; the deterministic merge happens after the fan-in.
struct EscapeShard {
  explicit EscapeShard(std::size_t port_count)
      : stamp(port_count, 0), emitted(port_count) {}

  // Flat per-destination scratch: epoch stamps instead of a rebuilt hash
  // set, an index-walked frontier instead of std::queue, one reused hop
  // vector instead of a fresh allocation per next_hops call. The closure
  // scratch makes reachability row-granular AND shard-local: each shard
  // materializes the rows of exactly the destinations it owns (lazy,
  // locality-aware priming — no eager whole-closure build up front).
  ClosureRowScratch reach;
  std::vector<std::uint32_t> stamp;
  std::uint32_t epoch = 0;
  std::vector<PortId> frontier;
  std::vector<Port> hops;      // grid Port-tuple scratch
  std::vector<PortId> hop_ids;  // next_hop_ids_into sink
  // Escape-graph edges repeat across destinations (the lane is the same
  // deterministic function every time); the sweep engines' shared filter
  // keeps each shard's edge buffer near the final edge count. Shards may
  // re-emit edges another shard saw — Digraph::finalize (sort + dedup)
  // erases both the duplicates and the merge order.
  EdgeDedupCache emitted;

  std::vector<std::pair<PortId, PortId>> edges;
  std::uint64_t states_checked = 0;
  std::uint64_t missing_states = 0;
  // The shard's FIRST missing-escape state in (destination, in-port) sweep
  // order; dests/ports are indices into the canonical enumeration, so the
  // global minimum over shards is exactly the sequential witness.
  std::size_t missing_dest = std::numeric_limits<std::size_t>::max();
  std::size_t missing_port = std::numeric_limits<std::size_t>::max();
  std::string missing_witness;
};

/// Explores every escape-lane state for destination \p dest_index:
/// availability of the escape entries from the adaptive-reachable in-ports,
/// then the lane's own closure and dependency edges. Identical to one
/// iteration of the original sequential loop.
void sweep_escape_destination(const RoutingFunction& adaptive,
                              const RoutingFunction& escape,
                              const Topology& topo,
                              const std::vector<PortId>& in_ports,
                              std::size_t dest_index, EscapeShard& shard) {
  ++shard.epoch;
  shard.frontier.clear();
  const std::uint32_t epoch = shard.epoch;
  auto seed = [&shard, epoch](PortId pid) {
    if (shard.stamp[pid] != epoch) {
      shard.stamp[pid] = epoch;
      shard.frontier.push_back(pid);
    }
  };

  // Escape entries: every adaptive-reachable in-port state. A packet
  // transfers into the escape lane at the out-port the escape function
  // picks from its current (adaptive-lane) in-port; that transfer is not a
  // dependency between escape resources — the escape-lane graph contains
  // only the dependencies among escape-lane ports themselves, which is
  // what Duato's condition constrains. The entry hops seed the closure.
  // One row read per destination replaces |in_ports| virtual reachability
  // calls (84M of them on torus64); the row is built on first touch by
  // this shard, for the destinations this shard owns.
  const std::uint64_t* reach_row =
      adaptive.closure_row(dest_index, shard.reach);
  for (std::size_t pi = 0; pi < in_ports.size(); ++pi) {
    const PortId p = in_ports[pi];
    if (((reach_row[p >> 6] >> (p & 63)) & 1u) == 0) {
      continue;
    }
    ++shard.states_checked;
    shard.hop_ids.clear();
    // The id layer filters non-existent hops, so every returned id is an
    // available escape entry.
    escape.next_hop_ids_into(p, dest_index, shard.hop_ids, shard.hops);
    for (const PortId hid : shard.hop_ids) {
      seed(hid);
    }
    if (shard.hop_ids.empty()) {
      ++shard.missing_states;
      if (shard.missing_witness.empty()) {
        shard.missing_dest = dest_index;
        shard.missing_port = pi;
        shard.missing_witness =
            topo.port_label(p) + " / " +
            topo.port_label(topo.destination_id(dest_index));
      }
    }
  }

  // Escape continuation: follow the (deterministic) escape function from
  // every escape-lane state until consumption, collecting the lane's own
  // dependency edges.
  for (std::size_t head = 0; head < shard.frontier.size(); ++head) {
    const PortId pid = shard.frontier[head];
    if (topo.dir_of(pid) == Direction::kOut &&
        ((topo.terminal_name_mask() >> topo.name_of(pid)) & 1) != 0) {
      continue;  // consumed
    }
    shard.hop_ids.clear();
    // Malformed mid-lane hops (non-existent ports) are filtered by the id
    // layer and surface as missing edges.
    escape.next_hop_ids_into(pid, dest_index, shard.hop_ids, shard.hops);
    for (const PortId hid : shard.hop_ids) {
      if (shard.emitted.fresh(pid, hid)) {
        shard.edges.emplace_back(pid, hid);
      }
      seed(hid);
    }
  }
}

}  // namespace

EscapeAnalysis analyze_escape(const RoutingFunction& adaptive,
                              const RoutingFunction& escape,
                              ThreadPool* pool) {
  obs::TraceSpan span("escape_analysis");
  GENOC_REQUIRE(&adaptive.topology() == &escape.topology(),
                "adaptive and escape functions must share a topology");
  GENOC_REQUIRE(escape.is_deterministic(),
                "the escape function must be deterministic");
  const Topology& topo = adaptive.topology();
  const std::size_t port_count = topo.port_count();

  EscapeAnalysis result;
  result.escape_graph.topo = &topo;
  result.escape_graph.mesh = dynamic_cast<const Mesh2D*>(&topo);
  result.escape_graph.graph = Digraph(port_count);

  // The adaptive-lane in-ports (the escape entry states), shared read-only
  // by every shard.
  std::vector<PortId> in_ports;
  for (PortId pid = 0; pid < port_count; ++pid) {
    if (topo.dir_of(pid) == Direction::kIn) {
      in_ports.push_back(pid);
    }
  }
  const std::size_t dest_count = topo.destination_count();
  std::vector<EscapeShard> shards;
  if (pool == nullptr) {
    // Sequential: one shard sweeps every destination in order.
    obs::TraceSpan sweep_span("escape_sweep");
    shards.emplace_back(port_count);
    for (std::size_t dest = 0; dest < dest_count; ++dest) {
      sweep_escape_destination(adaptive, escape, topo, in_ports, dest,
                               shards.front());
    }
  } else {
    const std::size_t grain = pool->recommended_grain(dest_count);
    const std::size_t shard_total = (dest_count + grain - 1) / grain;
    shards.reserve(shard_total);
    for (std::size_t i = 0; i < shard_total; ++i) {
      shards.emplace_back(port_count);
    }
    pool->parallel_for(
        dest_count, grain, [&](std::size_t begin, std::size_t end) {
          obs::TraceSpan shard_span("escape_shard");
          if (shard_span.active()) {
            shard_span.set_detail("dests " + std::to_string(begin) + ".." +
                                  std::to_string(end));
          }
          EscapeShard& shard = shards[begin / grain];
          for (std::size_t dest = begin; dest < end; ++dest) {
            sweep_escape_destination(adaptive, escape, topo, in_ports, dest,
                                     shard);
          }
        });
  }

  // Deterministic merge: counters are sums, the witness is the minimum in
  // (destination, in-port) order, and the edge union is canonicalized by
  // finalize() — the result never depends on shard count or interleaving.
  obs::TraceSpan merge_span("escape_merge");
  std::size_t total_edges = 0;
  for (const EscapeShard& shard : shards) {
    total_edges += shard.edges.size();
  }
  result.escape_graph.graph.reserve_edges(total_edges);
  const EscapeShard* first_missing = nullptr;
  for (const EscapeShard& shard : shards) {
    result.states_checked += shard.states_checked;
    result.missing_states += shard.missing_states;
    for (const auto& [from, to] : shard.edges) {
      result.escape_graph.graph.add_edge(from, to);
    }
    if (shard.missing_states != 0 &&
        (first_missing == nullptr ||
         std::pair(shard.missing_dest, shard.missing_port) <
             std::pair(first_missing->missing_dest,
                       first_missing->missing_port))) {
      first_missing = &shard;
    }
  }
  result.escape_always_available = result.missing_states == 0;
  if (first_missing != nullptr) {
    result.missing_escape = first_missing->missing_witness;
  }

  result.escape_graph.graph.finalize();
  result.escape_graph_acyclic = is_acyclic(result.escape_graph.graph);
  result.deadlock_free =
      result.escape_always_available && result.escape_graph_acyclic;
  {
    // Shard sums are deterministic at any thread count — safe to compare
    // across 1/4/8-thread snapshots.
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
    static obs::Counter& states =
        metrics.counter("escape.states_checked");
    states.add(result.states_checked);
    metrics.gauge("escape.max_states")
        .record_max(static_cast<std::int64_t>(result.states_checked));
  }
  return result;
}

}  // namespace genoc
