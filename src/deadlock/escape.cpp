#include "deadlock/escape.hpp"

#include <queue>
#include <sstream>
#include <unordered_set>

#include "util/require.hpp"

namespace genoc {

std::string EscapeAnalysis::summary() const {
  std::ostringstream os;
  os << (deadlock_free ? "deadlock-free with escape lane"
                       : "NOT proven deadlock-free")
     << ": escape available on " << states_checked << " states ("
     << (escape_always_available ? "all" : ("missing at " + missing_escape))
     << "), escape graph " << escape_graph.graph.vertex_count() << " ports / "
     << escape_graph.graph.edge_count() << " edges, "
     << (escape_graph_acyclic ? "acyclic" : "CYCLIC");
  return os.str();
}

EscapeAnalysis analyze_escape(const RoutingFunction& adaptive,
                              const RoutingFunction& escape) {
  GENOC_REQUIRE(&adaptive.mesh() == &escape.mesh(),
                "adaptive and escape functions must share a mesh");
  GENOC_REQUIRE(escape.is_deterministic(),
                "the escape function must be deterministic");
  const Mesh2D& mesh = adaptive.mesh();

  EscapeAnalysis result;
  result.escape_graph.mesh = &mesh;
  result.escape_graph.graph = Digraph(mesh.port_count());
  result.escape_always_available = true;

  // Explore, per destination, every state of the escape LANE. A packet
  // transfers into the escape lane at the out-port the escape function
  // picks from its current (adaptive-lane) in-port; that transfer is not a
  // dependency between escape resources — the escape-lane graph contains
  // only the dependencies among escape-lane ports themselves, which is
  // what Duato's condition constrains. The entry hops seed the closure.
  for (const Port& d : mesh.destinations()) {
    std::unordered_set<Port> seen;
    std::queue<Port> frontier;

    auto seed = [&](const Port& hop) {
      if (seen.insert(hop).second) {
        frontier.push(hop);
      }
    };

    // Escape entries: every adaptive-reachable in-port state. Availability
    // means the escape formula yields an existing port.
    for (const Port& p : mesh.ports()) {
      if (p.dir != Direction::kIn || !adaptive.reachable(p, d)) {
        continue;
      }
      if (p == d) {
        continue;
      }
      ++result.states_checked;
      const std::vector<Port> hops = escape.next_hops(p, d);
      bool available = false;
      for (const Port& hop : hops) {
        if (mesh.exists(hop)) {
          available = true;
          seed(hop);
        }
      }
      if (!available && result.escape_always_available) {
        result.escape_always_available = false;
        result.missing_escape = to_string(p) + " / " + to_string(d);
      }
    }

    // Escape continuation: follow the (deterministic) escape function from
    // every escape-lane state until consumption, collecting the lane's own
    // dependency edges.
    while (!frontier.empty()) {
      const Port p = frontier.front();
      frontier.pop();
      if (p.name == PortName::kLocal && p.dir == Direction::kOut) {
        continue;  // consumed
      }
      for (const Port& hop : escape.next_hops(p, d)) {
        if (!mesh.exists(hop)) {
          continue;  // malformed mid-lane hop: surfaces as missing edge
        }
        result.escape_graph.graph.add_edge(mesh.id(p), mesh.id(hop));
        seed(hop);
      }
    }
  }

  result.escape_graph.graph.finalize();
  result.escape_graph_acyclic = is_acyclic(result.escape_graph.graph);
  result.deadlock_free =
      result.escape_always_available && result.escape_graph_acyclic;
  return result;
}

}  // namespace genoc
