#include "deadlock/escape.hpp"

#include <sstream>

#include "routing/sweep.hpp"
#include "util/require.hpp"

namespace genoc {

std::string EscapeAnalysis::summary() const {
  std::ostringstream os;
  os << (deadlock_free ? "deadlock-free with escape lane"
                       : "NOT proven deadlock-free")
     << ": escape available on " << states_checked << " states ("
     << (escape_always_available ? "all" : ("missing at " + missing_escape))
     << "), escape graph " << escape_graph.graph.vertex_count() << " ports / "
     << escape_graph.graph.edge_count() << " edges, "
     << (escape_graph_acyclic ? "acyclic" : "CYCLIC");
  return os.str();
}

EscapeAnalysis analyze_escape(const RoutingFunction& adaptive,
                              const RoutingFunction& escape) {
  GENOC_REQUIRE(&adaptive.mesh() == &escape.mesh(),
                "adaptive and escape functions must share a mesh");
  GENOC_REQUIRE(escape.is_deterministic(),
                "the escape function must be deterministic");
  const Mesh2D& mesh = adaptive.mesh();
  const std::size_t port_count = mesh.port_count();

  EscapeAnalysis result;
  result.escape_graph.mesh = &mesh;
  result.escape_graph.graph = Digraph(port_count);
  result.escape_always_available = true;

  // The adaptive-lane in-ports (the escape entry states) and the flat
  // per-destination scratch: epoch stamps instead of a rebuilt hash set,
  // an index-walked frontier instead of std::queue, one reused hop vector
  // instead of a fresh allocation per next_hops call.
  std::vector<Port> in_ports;
  for (const Port& p : mesh.ports()) {
    if (p.dir == Direction::kIn) {
      in_ports.push_back(p);
    }
  }
  adaptive.prime();  // all reachable() queries below hit the bitset closure
  std::vector<std::uint32_t> stamp(port_count, 0);
  std::uint32_t epoch = 0;
  std::vector<PortId> frontier;
  std::vector<Port> hops;
  // Escape-graph edges repeat across destinations (the lane is the same
  // deterministic function every time); the sweep engines' shared filter
  // keeps the Digraph build buffer near the final edge count.
  EdgeDedupCache emitted(port_count);

  // Explore, per destination, every state of the escape LANE. A packet
  // transfers into the escape lane at the out-port the escape function
  // picks from its current (adaptive-lane) in-port; that transfer is not a
  // dependency between escape resources — the escape-lane graph contains
  // only the dependencies among escape-lane ports themselves, which is
  // what Duato's condition constrains. The entry hops seed the closure.
  for (const Port& d : mesh.destinations()) {
    ++epoch;
    frontier.clear();
    auto seed = [&](PortId pid) {
      if (stamp[pid] != epoch) {
        stamp[pid] = epoch;
        frontier.push_back(pid);
      }
    };

    // Escape entries: every adaptive-reachable in-port state. Availability
    // means the escape formula yields an existing port.
    for (const Port& p : in_ports) {
      if (!adaptive.reachable(p, d)) {
        continue;
      }
      ++result.states_checked;
      hops.clear();
      escape.append_next_hops(p, d, hops);
      bool available = false;
      for (const Port& hop : hops) {
        const std::int32_t hid = mesh.try_id(hop);
        if (hid >= 0) {
          available = true;
          seed(static_cast<PortId>(hid));
        }
      }
      if (!available && result.escape_always_available) {
        result.escape_always_available = false;
        result.missing_escape = to_string(p) + " / " + to_string(d);
      }
    }

    // Escape continuation: follow the (deterministic) escape function from
    // every escape-lane state until consumption, collecting the lane's own
    // dependency edges.
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const PortId pid = frontier[head];
      const Port& p = mesh.port(pid);
      if (p.name == PortName::kLocal && p.dir == Direction::kOut) {
        continue;  // consumed
      }
      hops.clear();
      escape.append_next_hops(p, d, hops);
      for (const Port& hop : hops) {
        const std::int32_t hid = mesh.try_id(hop);
        if (hid < 0) {
          continue;  // malformed mid-lane hop: surfaces as missing edge
        }
        if (emitted.fresh(pid, static_cast<PortId>(hid))) {
          result.escape_graph.graph.add_edge(pid, static_cast<PortId>(hid));
        }
        seed(static_cast<PortId>(hid));
      }
    }
  }

  result.escape_graph.graph.finalize();
  result.escape_graph_acyclic = is_acyclic(result.escape_graph.graph);
  result.deadlock_free =
      result.escape_always_available && result.escape_graph_acyclic;
  return result;
}

}  // namespace genoc
