#include "deadlock/constraints.hpp"

#include <sstream>

#include "util/require.hpp"
#include "util/stopwatch.hpp"

namespace genoc {

std::string ConstraintReport::summary() const {
  std::ostringstream os;
  os << constraint << ": " << (satisfied ? "DISCHARGED" : "VIOLATED") << " ("
     << checks << " checks, " << cpu_ms << " ms";
  if (!violations.empty()) {
    os << ", first violation: " << violations.front();
  }
  os << ")";
  return os.str();
}

namespace {

void record_violation(ConstraintReport& report, const std::string& text) {
  report.satisfied = false;
  if (report.violations.size() < ConstraintReport::kMaxViolations) {
    report.violations.push_back(text);
  }
}

}  // namespace

ConstraintReport check_c1(const RoutingFunction& routing,
                          const PortDepGraph& dep) {
  Stopwatch timer;
  ConstraintReport report;
  report.constraint = "(C-1)" + routing.name();
  report.satisfied = true;
  const Mesh2D& mesh = routing.mesh();
  for (const Port& s : mesh.ports()) {
    for (const Port& d : mesh.destinations()) {
      if (!routing.reachable(s, d)) {
        continue;
      }
      for (const Port& p : routing.next_hops(s, d)) {
        ++report.checks;
        if (!mesh.exists(p)) {
          record_violation(report, "R(" + to_string(s) + ", " + to_string(d) +
                                       ") yields non-existent port " +
                                       to_string(p));
          continue;
        }
        if (!dep.graph.has_edge(mesh.id(s), mesh.id(p))) {
          record_violation(report, "dependency (" + to_string(s) + " -> " +
                                       to_string(p) + ") for destination " +
                                       to_string(d) +
                                       " is not an edge of the graph");
        }
      }
    }
  }
  report.cpu_ms = timer.elapsed_ms();
  return report;
}

ConstraintReport check_c2(const RoutingFunction& routing,
                          const PortDepGraph& dep) {
  Stopwatch timer;
  ConstraintReport report;
  report.constraint = "(C-2)" + routing.name();
  report.satisfied = true;
  const Mesh2D& mesh = routing.mesh();
  for (const auto& [from, to] : dep.graph.edges()) {
    const Port& p0 = dep.port_of(from);
    const Port& p1 = dep.port_of(to);
    bool witnessed = false;
    for (const Port& d : mesh.destinations()) {
      ++report.checks;
      if (!routing.reachable(p0, d)) {
        continue;
      }
      for (const Port& q : routing.next_hops(p0, d)) {
        if (q == p1) {
          witnessed = true;
          break;
        }
      }
      if (witnessed) {
        break;
      }
    }
    if (!witnessed) {
      record_violation(report, "edge (" + to_string(p0) + " -> " +
                                   to_string(p1) +
                                   ") has no witness destination");
    }
  }
  report.cpu_ms = timer.elapsed_ms();
  return report;
}

Port xy_edge_witness(const Mesh2D& mesh, const Port& p0, const Port& p1) {
  GENOC_REQUIRE(mesh.exists(p0) && mesh.exists(p1),
                "witness endpoints must exist");
  if (p1.name == PortName::kLocal && p1.dir == Direction::kOut) {
    return p1;
  }
  if (p1.dir == Direction::kOut) {
    // p0 is an in-port turning into cardinal out-port p1: the nearest
    // destination lies just across p1's link.
    return trans(mesh.next_in(p1), PortName::kLocal, Direction::kOut);
  }
  // p0 is an out-port and p1 = next_in(p0): the nearest destination is
  // p1's own node.
  return trans(p1, PortName::kLocal, Direction::kOut);
}

ConstraintReport check_c2_xy_closed_form(const RoutingFunction& routing,
                                         const PortDepGraph& dep) {
  Stopwatch timer;
  ConstraintReport report;
  report.constraint = "(C-2)" + routing.name() + "/find_dest";
  report.satisfied = true;
  const Mesh2D& mesh = routing.mesh();
  for (const auto& [from, to] : dep.graph.edges()) {
    const Port& p0 = dep.port_of(from);
    const Port& p1 = dep.port_of(to);
    ++report.checks;
    const Port d = xy_edge_witness(mesh, p0, p1);
    if (!mesh.exists(d) || !routing.reachable(p0, d)) {
      record_violation(report, "find_dest witness " + to_string(d) +
                                   " for edge (" + to_string(p0) + " -> " +
                                   to_string(p1) + ") is not reachable");
      continue;
    }
    bool routes_across = false;
    for (const Port& q : routing.next_hops(p0, d)) {
      if (q == p1) {
        routes_across = true;
        break;
      }
    }
    if (!routes_across) {
      record_violation(report, "find_dest witness " + to_string(d) +
                                   " does not route " + to_string(p0) +
                                   " across edge to " + to_string(p1));
    }
  }
  report.cpu_ms = timer.elapsed_ms();
  return report;
}

ConstraintReport check_c3(const PortDepGraph& dep,
                          std::optional<CycleWitness>* cycle_out) {
  Stopwatch timer;
  ConstraintReport report;
  report.constraint = "(C-3)";
  report.satisfied = true;
  report.checks = dep.graph.vertex_count() + dep.graph.edge_count();
  const std::optional<CycleWitness> cycle = find_cycle(dep.graph);
  if (cycle) {
    std::ostringstream os;
    os << "cycle of length " << cycle->size() << ":";
    for (const std::size_t v : *cycle) {
      os << ' ' << dep.label(v);
    }
    record_violation(report, os.str());
  }
  if (cycle_out != nullptr) {
    *cycle_out = cycle;
  }
  report.cpu_ms = timer.elapsed_ms();
  return report;
}

}  // namespace genoc
