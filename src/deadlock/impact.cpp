#include "deadlock/impact.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "deadlock/witness.hpp"
#include "util/require.hpp"

namespace genoc {

std::string DeadlockImpact::summary() const {
  std::ostringstream os;
  os << cycle_packets.size() << " packets in the cyclic wait, "
     << blocked_behind.size() << " blocked behind it, " << never_entered.size()
     << " never entered (cycle of " << cycle_ports.size() << " ports)";
  return os.str();
}

DeadlockImpact analyze_deadlock_impact(const SwitchingPolicy& policy,
                                       const NetworkState& state) {
  DeadlockImpact impact;
  const DeadlockCycle cycle = extract_cycle_from_deadlock(policy, state);
  impact.cycle_ports = cycle.ports;

  std::unordered_set<TravelId> in_cycle(cycle.packets.begin(),
                                        cycle.packets.end());
  for (const TravelId id : state.undelivered_ids()) {
    if (in_cycle.contains(id)) {
      impact.cycle_packets.push_back(id);
    } else if (state.packet_in_network(id)) {
      impact.blocked_behind.push_back(id);
    } else {
      impact.never_entered.push_back(id);
    }
  }
  std::sort(impact.cycle_packets.begin(), impact.cycle_packets.end());
  return impact;
}

}  // namespace genoc
