/// \file depgraph.hpp
/// \brief The port dependency graph (paper Sec. IV.A and V.6).
///
/// Vertices are the ports of the interconnection network; edges are the
/// pairs of ports connected by the routing function. Theorem 1: a
/// (deterministic) routing function is deadlock-free iff this graph is
/// acyclic. The graph is built in three independent ways:
///
///  1. build_dep_graph(): the *generic* construction — enumerate every pair
///     (p, d) with p R d and add an edge (p, q) for every q in R(p, d).
///     This works for any routing function, including the adaptive
///     extensions, and serves as the oracle for the fast builder.
///  2. build_dep_graph_fast(): the *per-destination* construction
///     (routing/sweep.hpp) — one sweep per destination over the ports its
///     routes visit; bit-identical to 1. and what every driver uses.
///  3. build_exy_dep(): the paper's *closed-form* Exy_dep for XY routing
///     (function next_outs, Sec. V.6), restricted to ports that exist.
///
/// Their pairwise equality on every mesh is the executable content of
/// constraints (C-1) and (C-2) for HERMES, and the test suite checks it.
#pragma once

#include <string>

#include "graph/digraph.hpp"
#include "routing/routing.hpp"
#include "topology/mesh.hpp"

namespace genoc {

class ThreadPool;

/// A dependency graph whose vertex v is the port topo->port_label(v) names.
struct PortDepGraph {
  const Topology* topo = nullptr;
  /// The topology as a grid, for the Port-tuple consumers (constraints,
  /// witness replay, flows); nullptr for non-grid families.
  const Mesh2D* mesh = nullptr;
  Digraph graph;

  /// Port tuple of vertex \p v. Grid graphs only.
  const Port& port_of(std::size_t v) const { return mesh->port(static_cast<PortId>(v)); }

  /// Human-readable vertex label ("<x,y,P,D>" on grids).
  std::string label(std::size_t v) const {
    return topo->port_label(static_cast<PortId>(v));
  }

  /// Graphviz rendering (reproduces the paper's Fig. 3 for a 2x2 mesh).
  std::string to_dot(const std::string& name) const;
};

/// Generic construction from the routing function and its reachability
/// relation (works for deterministic and adaptive functions alike).
/// Enumerates the full (port, destination) product — O(|ports| · |dests| ·
/// route-walk) — and therefore serves as the ORACLE the fast builder is
/// tested against; use build_dep_graph_fast() everywhere speed matters.
PortDepGraph build_dep_graph(const RoutingFunction& routing);

/// The per-destination construction (RouteSweeper): one sweep per
/// destination over the ports routes to it actually visit, so total work
/// is O(Σ_d |ports reaching d| · degree) instead of the full product.
///
/// Precondition: the routing's reachable() must equal the semantic
/// closure (closure_reachable) — the documented invariant every honest
/// RoutingFunction satisfies and the test suite cross-validates. The
/// sweeps enumerate exactly the closure, so a routing that deliberately
/// CLAIMS reachability beyond it (the broken-reachability mutants in
/// tests/test_mutations.cpp do, to model mis-stated invariants) must be
/// analyzed with the generic oracle, which honours the claim. Under that
/// precondition the finalized Digraph is bit-identical to
/// build_dep_graph()'s on every routing function (the test suite checks
/// all registry presets).
PortDepGraph build_dep_graph_fast(const RoutingFunction& routing);

/// The O(ports) ANALYTIC construction, for routings that publish their
/// exact per-in-port out-name unions (RoutingFunction::in_port_union — the
/// generalization of the paper's next_outs table beyond XY): an in-port
/// connects to its node's union ∩ existing out-ports, a cardinal out-port
/// connects to its link target iff any destination ever selects it. No
/// per-destination sweep at all, so a 256x256 mesh builds in milliseconds
/// instead of hundreds of millions of mask evaluations. Bit-identical to
/// the generic oracle and the sweeps wherever has_in_port_unions() holds
/// (pinned per preset by the standing equality tests);
/// build_dep_graph_fast/_parallel dispatch here automatically.
PortDepGraph build_dep_graph_analytic(const RoutingFunction& routing);

/// The destination-sharded fast construction: per-destination RouteSweeper
/// sweeps fanned over \p pool, each shard collecting its edge list locally;
/// the shards are merged and canonicalized by Digraph::finalize() (sort +
/// dedup), so the result is BIT-IDENTICAL to build_dep_graph_fast() and to
/// the generic oracle. Each shard owns its RouteSweeper, so the routing
/// function is only entered through its stateless const interface
/// (node_out_mask / append_next_hops) — no prime() warm-up needed.
PortDepGraph build_dep_graph_parallel(const RoutingFunction& routing,
                                      ThreadPool& pool);

/// The fault-variant DELTA construction: the dependency graph of a faulted
/// grid built by filtering its unfaulted BASE graph instead of re-sweeping.
/// \p routing is the VARIANT's routing (over the faulted topology), \p base
/// the unfaulted base context's graph over the same grid geometry, and
/// \p removed_base_ports the sorted, deduplicated base-graph ids of the
/// ports the faults removed (four per failed link: both directed channels'
/// OUT + IN).
///
/// Exact for NODE-UNIFORM routings (enforced): the per-destination sweep
/// seeds every node's terminal in-ports unconditionally, selects out-ports
/// by position-based masks intersected with existence, and emits link edges
/// only from existing cardinal out-ports — so removing a link's four ports
/// removes exactly the base edges incident to them and perturbs no other
/// emission. Variant ids are the monotone reindexing of surviving base ids
/// (the grid enumerates ports in base order, skipping removed slots), so
/// translating the base CSR in order yields a pre-sorted edge list and the
/// result is BIT-IDENTICAL to build_dep_graph_fast() on the variant (the
/// test suite checks every grid preset x every single-link fault).
PortDepGraph build_dep_graph_delta(const PortDepGraph& base,
                                   const RoutingFunction& routing,
                                   const std::vector<PortId>& removed_base_ports);

/// The paper's function next_outs(p): the set of out-ports an in-port p
/// depends on under XY routing (Sec. V.6), filtered to existing ports.
std::vector<Port> next_outs_xy(const Mesh2D& mesh, const Port& p);

/// The paper's closed-form Exy_dep: in-ports connect to next_outs_xy,
/// cardinal out-ports connect to next_in, Local OUT ports are sinks.
PortDepGraph build_exy_dep(const Mesh2D& mesh);

}  // namespace genoc
