/// \file flows.hpp
/// \brief The paper's "flows" argument for (C-3) on arbitrary-size meshes
///        (Section VI.A, Fig. 4), made executable.
///
/// A flow is a sequence of ports which continually in- or decreases a
/// coordinate:
///   - the Northern flow consists of South-IN and North-OUT ports and
///     continually decreases y;
///   - the Southern flow (North-IN, South-OUT) increases y;
///   - the Eastern flow (West-IN, East-OUT) increases x;
///   - the Western flow (East-IN, West-OUT) decreases x.
/// Local IN ports are pure sources, Local OUT ports pure sinks. Horizontal
/// flows can escape only into vertical flows or a local sink; vertical
/// flows only into a local sink — so no dependency path can return to its
/// origin and the graph is acyclic.
///
/// The executable shadow of this argument is the closed-form rank
/// xy_flow_rank(): a function of the port alone (and the mesh dimensions)
/// that strictly increases along EVERY edge of Exy_dep, for every mesh size.
/// Verifying the rank over the edges of a concrete graph is O(E) — this is
/// the flow *certificate* for (C-3), stronger than a cycle search because
/// the same formula works for all W x H.
#pragma once

#include <cstdint>
#include <string>

#include "deadlock/depgraph.hpp"

namespace genoc {

/// The flow a port belongs to.
enum class FlowClass : std::uint8_t {
  kEastern,      ///< West-IN / East-OUT: x increases
  kWestern,      ///< East-IN / West-OUT: x decreases
  kNorthern,     ///< South-IN / North-OUT: y decreases
  kSouthern,     ///< North-IN / South-OUT: y increases
  kLocalSource,  ///< Local IN: dependency source only
  kLocalSink,    ///< Local OUT: dependency sink only
};

const char* flow_class_name(FlowClass flow);

/// Classifies a port into its flow (paper Fig. 4).
FlowClass classify_flow(const Port& p);

/// The closed-form topological rank implementing the flow argument:
///   Local IN          -> 0
///   Eastern flow      -> 2x (+1 for the OUT port)        in [1, 2W-1]
///   Western flow      -> 2(W-1-x) (+1 for the OUT port)  in [1, 2W-1]
///   Southern flow     -> V + 2y (+1)                     in [V, V+2H-1]
///   Northern flow     -> V + 2(H-1-y) (+1)               in [V, V+2H-1]
///   Local OUT         -> V + 2H + 1                      (maximum)
/// with V = 2W + 1. Every edge of Exy_dep strictly increases this value.
std::int64_t xy_flow_rank(const Mesh2D& mesh, const Port& p);

/// Statistics of the flow decomposition of a dependency graph, used to
/// reproduce the shape of Fig. 4.
struct FlowDecomposition {
  std::size_t ports_per_flow[6] = {};
  /// Edges that stay within one (non-local) flow — the monotone chains.
  std::size_t intra_flow_edges = 0;
  /// Escapes from a horizontal flow into a vertical flow.
  std::size_t horizontal_to_vertical = 0;
  /// Escapes into a Local OUT sink.
  std::size_t into_local_sink = 0;
  /// Edges out of Local IN sources.
  std::size_t out_of_local_source = 0;
  /// Edges that violate the flow discipline (must be 0 for Exy_dep;
  /// non-zero for cyclic routing functions).
  std::size_t violating_edges = 0;

  std::string summary() const;
};

/// Decomposes the edges of \p dep along the flow classification.
FlowDecomposition decompose_flows(const PortDepGraph& dep);

/// The mirror rank for YX routing (vertical flows first, then horizontal,
/// then the Local sink): strictly increases along every edge of YX's
/// dependency graph, for every mesh size. Demonstrates that the flow
/// argument — like the whole GeNoC method — is generic in the instance.
std::int64_t yx_flow_rank(const Mesh2D& mesh, const Port& p);

/// A closed-form port rank: any function of the port and mesh dimensions.
using FlowRank = std::int64_t (*)(const Mesh2D&, const Port&);

/// The flow certificate: verifies that xy_flow_rank strictly increases
/// along every edge of \p dep (O(E)). Returns true iff it does — which
/// proves (C-3) without any graph search. For Exy_dep this holds on every
/// mesh; for cyclic graphs it necessarily fails.
bool verify_flow_certificate(const PortDepGraph& dep);

/// Same check with an arbitrary closed-form rank (e.g. yx_flow_rank for
/// the YX instance).
bool verify_flow_certificate(const PortDepGraph& dep, FlowRank rank);

}  // namespace genoc
