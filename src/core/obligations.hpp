/// \file obligations.hpp
/// \brief The proof-obligation harness: discharges every user obligation of
///        the paper for a concrete HERMES instance and reports per-row
///        statistics in the shape of the paper's Table I.
///
/// Table I of the paper records, for each proof artifact (Rxy; Iid,(C-4);
/// Swh,(C-5); (C-1)xy; (C-2)xy; (C-3)xy; generic definitions; CorrThm;
/// Dead/EvacThm), the ACL2 effort: lines, theorems, functions, CPU minutes
/// and human days. Human proof effort has no runtime counterpart in a C++
/// reproduction; what is preserved is the *shape* — which obligations
/// require many case splits ((C-1), (C-2)), which one is the real work
/// ((C-3)), and that everything discharges. Each row here reports the
/// number of elementary checks performed, the number of distinct properties
/// verified, CPU time and the verdict; the paper's original numbers are
/// bundled alongside for side-by-side printing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hermes.hpp"

namespace genoc {

/// One row of the obligation run (one row of Table I).
struct ObligationRow {
  std::string label;          ///< paper row name, e.g. "(C-3)xy"
  std::uint64_t checks = 0;   ///< elementary checks performed
  std::uint64_t properties = 0;  ///< distinct verified properties
  double cpu_ms = 0.0;
  bool satisfied = false;
  std::string note;  ///< what was verified / first failure
};

/// The paper's published Table I numbers for the matching row (for
/// side-by-side output).
struct PaperEffortRow {
  std::string label;
  int lines = 0;
  int theorems = 0;
  int functions = 0;
  int cpu_minutes = 0;
  int human_days = -1;  ///< -1 renders as "N/A"
};

/// The paper's Table I, verbatim.
const std::vector<PaperEffortRow>& paper_table1();

/// Options for the obligation run.
struct ObligationOptions {
  std::uint32_t flit_count = 4;    ///< worm length for the simulation rows
  std::size_t workloads = 3;       ///< simulated workloads for Swh/CorrThm rows
  std::size_t messages_per_workload = 32;
  std::uint64_t seed = 2010;       ///< DATE 2010 :-)
};

/// Result of the full suite.
struct ObligationSuite {
  std::vector<ObligationRow> rows;
  bool all_satisfied() const;
  ObligationRow overall() const;  ///< column sums, label "Overall"
};

/// Runs every obligation of Sections V–VI on the given HERMES instance:
///   Rxy        — route computation total/correct/minimal/deterministic
///   Iid,(C-4)  — injection is the identity (digest comparison)
///   Swh,(C-5)  — simulated workloads with per-step measure auditing
///   (C-1)xy    — routing dependencies are edges
///   (C-2)xy    — every edge witnessed (brute force AND find_dest form)
///   (C-3)xy    — acyclicity (DFS + SCC cross-check + flow certificate)
///   Generic Defs — generic dep graph ≡ closed-form Exy_dep; state
///                  invariants on constructed configurations
///   CorrThm    — arrival audit on the simulated workloads
///   Dead/EvacThm — evacuation equality on the runs, plus the Theorem-1
///                  witness round-trip (cycle -> deadlock -> cycle) on the
///                  deadlock-prone fully-adaptive baseline
ObligationSuite run_hermes_obligations(const HermesInstance& hermes,
                                       const ObligationOptions& options = {});

}  // namespace genoc
