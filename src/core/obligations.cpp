#include "core/obligations.hpp"

#include <algorithm>

#include "deadlock/constraints.hpp"
#include "deadlock/flows.hpp"
#include "deadlock/scc_checker.hpp"
#include "deadlock/witness.hpp"
#include "routing/fully_adaptive.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace genoc {

const std::vector<PaperEffortRow>& paper_table1() {
  static const std::vector<PaperEffortRow> kTable = {
      {"Rxy", 1173, 97, 42, 16, 4},
      {"Iid, (C-4)", 47, 4, 2, 1, 0},
      {"Swh, (C-5)", 1434, 151, 25, 17, 6},
      {"(C-1)xy", 483, 40, 7, 17, 2},
      {"(C-2)xy", 435, 51, 0, 51, 2},
      {"(C-3)xy", 1018, 81, 10, 28, 4},
      {"Generic Defs", 3127, 234, 85, 2, -1},
      {"CorrThm", 2267, 65, 11, 6, -1},
      {"Dead/EvacThm", 3277, 285, 125, 6, -1},
      {"Overall", 13261, 1008, 307, 144, 20},
  };
  return kTable;
}

bool ObligationSuite::all_satisfied() const {
  return std::all_of(rows.begin(), rows.end(),
                     [](const ObligationRow& r) { return r.satisfied; });
}

ObligationRow ObligationSuite::overall() const {
  ObligationRow total;
  total.label = "Overall";
  total.satisfied = all_satisfied();
  for (const ObligationRow& r : rows) {
    total.checks += r.checks;
    total.properties += r.properties;
    total.cpu_ms += r.cpu_ms;
  }
  total.note = total.satisfied ? "all obligations discharged"
                               : "some obligation VIOLATED";
  return total;
}

namespace {

/// Sample workloads shared by the Swh/(C-5) and CorrThm rows.
std::vector<std::vector<TrafficPair>> sample_workloads(
    const HermesInstance& hermes, const ObligationOptions& options) {
  Rng rng(options.seed);
  std::vector<std::vector<TrafficPair>> workloads;
  const Mesh2D& mesh = hermes.mesh();
  for (std::size_t w = 0; w < options.workloads; ++w) {
    switch (w % 3) {
      case 0:
        workloads.push_back(uniform_random_traffic(
            mesh, options.messages_per_workload, rng));
        break;
      case 1:
        workloads.push_back(transpose_traffic(mesh));
        break;
      default:
        workloads.push_back(hotspot_traffic(
            mesh, options.messages_per_workload,
            NodeCoord{mesh.width() / 2, mesh.height() / 2}, 0.5, rng));
        break;
    }
  }
  return workloads;
}

ObligationRow row_rxy(const HermesInstance& hermes) {
  Stopwatch timer;
  ObligationRow row;
  row.label = "Rxy";
  row.satisfied = true;
  const Mesh2D& mesh = hermes.mesh();
  const XYRouting& routing = hermes.routing();
  // For every node pair: the route exists, terminates, is minimal, ends at
  // the destination, and the function is deterministic along it.
  for (const NodeCoord src : mesh.nodes()) {
    for (const NodeCoord dst : mesh.nodes()) {
      const Port from = mesh.local_in(src.x, src.y);
      const Port to = mesh.local_out(dst.x, dst.y);
      const Route route = compute_route(routing, from, to);
      ++row.checks;
      if (route.front() != from || route.back() != to) {
        row.satisfied = false;
        row.note = "route endpoints wrong";
      }
      ++row.checks;
      if (route.size() != minimal_route_length(from, to)) {
        row.satisfied = false;
        row.note = "route not minimal";
      }
      ++row.checks;
      if (!is_valid_route(routing, route, from, to)) {
        row.satisfied = false;
        row.note = "route not sanctioned by Rxy";
      }
      // Determinism at every port of the route.
      for (std::size_t i = 0; i + 1 < route.size(); ++i) {
        ++row.checks;
        if (routing.next_hops(route[i], to).size() != 1) {
          row.satisfied = false;
          row.note = "Rxy not deterministic";
        }
      }
    }
  }
  row.properties = 4;
  if (row.satisfied) {
    row.note = "routes terminate, minimal, deterministic, correct endpoint";
  }
  row.cpu_ms = timer.elapsed_ms();
  return row;
}

ObligationRow row_c4(const HermesInstance& hermes,
                     const ObligationOptions& options) {
  Stopwatch timer;
  ObligationRow row;
  row.label = "Iid, (C-4)";
  row.satisfied = true;
  Rng rng(options.seed ^ 0xC4C4C4C4ULL);
  const Mesh2D& mesh = hermes.mesh();
  // I(σ) = σ on a spread of configurations: empty, mid-run, finished.
  for (std::size_t trial = 0; trial < 8; ++trial) {
    const std::size_t messages = 1 + trial * 3;
    Config config =
        hermes.make_config(uniform_random_traffic(mesh, messages, rng),
                           options.flit_count);
    // Advance a random number of steps to reach a mid-flight state.
    const std::size_t warmup = static_cast<std::size_t>(rng.below(8));
    for (std::size_t s = 0; s < warmup; ++s) {
      if (is_deadlock(hermes.switching(), config.state())) {
        break;
      }
      const StepResult step = hermes.switching().step(config.state());
      config.record_arrivals(step.delivered);
      config.advance_step();
    }
    const std::uint64_t before = config.digest();
    hermes.injection().inject(config);
    const std::uint64_t after = config.digest();
    ++row.checks;
    if (before != after) {
      row.satisfied = false;
      row.note = "Iid changed the configuration";
    }
  }
  row.properties = 1;
  if (row.satisfied) {
    row.note = "Iid is the identity on all sampled configurations";
  }
  row.cpu_ms = timer.elapsed_ms();
  return row;
}

ObligationRow row_c5(const HermesInstance& hermes,
                     const std::vector<std::vector<TrafficPair>>& workloads,
                     const ObligationOptions& options,
                     std::vector<std::pair<Config, GenocRunResult>>* runs_out) {
  Stopwatch timer;
  ObligationRow row;
  row.label = "Swh, (C-5)";
  row.satisfied = true;
  for (const auto& workload : workloads) {
    Config config = hermes.make_config(workload, options.flit_count);
    GenocOptions genoc_options;
    genoc_options.audit_measure = true;
    const GenocRunResult result = hermes.run(config, genoc_options);
    row.checks += result.steps;  // every step is one (C-5) check
    if (result.measure_violations != 0) {
      row.satisfied = false;
      row.note = "measure failed to decrease on some step";
    }
    if (result.deadlocked) {
      row.satisfied = false;
      row.note = "wormhole run deadlocked under XY routing";
    }
    if (runs_out != nullptr) {
      runs_out->emplace_back(std::move(config), result);
    }
  }
  row.properties = 2;  // strict decrease + no deadlock
  if (row.satisfied) {
    row.note = "measure strictly decreased on every audited step";
  }
  row.cpu_ms = timer.elapsed_ms();
  return row;
}

ObligationRow from_constraint(const ConstraintReport& report,
                              std::string label) {
  ObligationRow row;
  row.label = std::move(label);
  row.checks = report.checks;
  row.properties = 1;
  row.cpu_ms = report.cpu_ms;
  row.satisfied = report.satisfied;
  row.note = report.satisfied
                 ? "discharged"
                 : (report.violations.empty() ? "violated"
                                              : report.violations.front());
  return row;
}

ObligationRow row_c3(const HermesInstance& hermes, const PortDepGraph& dep) {
  Stopwatch timer;
  ObligationRow row;
  row.label = "(C-3)xy";
  row.satisfied = true;
  // Three independent discharge strategies must agree:
  const ConstraintReport dfs = check_c3(dep);
  row.checks += dfs.checks;
  const SccAnalysis scc = analyze_dependencies(dep, 4);
  row.checks += dep.graph.vertex_count() + dep.graph.edge_count();
  const bool flow_ok = verify_flow_certificate(dep);
  row.checks += dep.graph.edge_count();
  (void)hermes;
  if (!dfs.satisfied) {
    row.satisfied = false;
    row.note = "DFS found a cycle";
  } else if (!scc.deadlock_free) {
    row.satisfied = false;
    row.note = "SCC analysis found a non-trivial component";
  } else if (!flow_ok) {
    row.satisfied = false;
    row.note = "flow rank certificate violated";
  } else {
    row.note = "acyclic by DFS, SCC and the flow certificate";
  }
  row.properties = 3;
  row.cpu_ms = timer.elapsed_ms();
  return row;
}

ObligationRow row_generic_defs(const HermesInstance& hermes,
                               const PortDepGraph& closed_form) {
  Stopwatch timer;
  ObligationRow row;
  row.label = "Generic Defs";
  row.satisfied = true;
  const Mesh2D& mesh = hermes.mesh();

  // Generic construction over (p, d) pairs equals the paper's closed form.
  const PortDepGraph generic = build_dep_graph(hermes.routing());
  const auto generic_edges = generic.graph.edges();
  const auto closed_edges = closed_form.graph.edges();
  row.checks += generic_edges.size() + closed_edges.size();
  if (generic_edges != closed_edges) {
    row.satisfied = false;
    row.note = "generic dependency graph differs from Exy_dep";
  }

  // Closed-form reachability agrees with semantic route-closure
  // reachability for every (port, destination) pair.
  for (const Port& p : mesh.ports()) {
    for (const Port& d : mesh.destinations()) {
      ++row.checks;
      if (hermes.routing().reachable(p, d) !=
          hermes.routing().closure_reachable(p, d)) {
        row.satisfied = false;
        row.note = "closed-form s R d disagrees with route closure at " +
                   to_string(p) + " / " + to_string(d);
      }
    }
  }

  // Structural sanity of the state machinery.
  NetworkState probe(mesh, 2);
  probe.validate();
  ++row.checks;

  row.properties = 3;
  if (row.satisfied) {
    row.note = "generic ≡ closed-form graph; s R d closed form ≡ closure";
  }
  row.cpu_ms = timer.elapsed_ms();
  return row;
}

ObligationRow row_corr(const HermesInstance& hermes,
                       const std::vector<std::pair<Config, GenocRunResult>>&
                           runs) {
  Stopwatch timer;
  ObligationRow row;
  row.label = "CorrThm";
  row.satisfied = true;
  for (const auto& [config, result] : runs) {
    (void)result;
    const TheoremReport report = check_correctness(config, hermes.routing());
    row.checks += report.checks;
    if (!report.holds) {
      row.satisfied = false;
      row.note = report.failures.empty() ? "failed" : report.failures.front();
    }
  }
  row.properties = 1;
  if (row.satisfied) {
    row.note = "every arrival was emitted, destined and validly routed";
  }
  row.cpu_ms = timer.elapsed_ms();
  return row;
}

ObligationRow row_dead_evac(const HermesInstance& hermes,
                            const PortDepGraph& dep,
                            const std::vector<std::pair<Config, GenocRunResult>>&
                                runs) {
  Stopwatch timer;
  ObligationRow row;
  row.label = "Dead/EvacThm";
  row.satisfied = true;

  // DeadThm for the instance (aggregates C-1..C-3).
  const TheoremReport dead = check_deadlock_theorem(hermes.routing(), dep);
  row.checks += dead.checks;
  if (!dead.holds) {
    row.satisfied = false;
    row.note = "DeadThm: " +
               (dead.failures.empty() ? std::string("failed")
                                      : dead.failures.front());
  }

  // EvacThm on every simulated run.
  for (const auto& [config, result] : runs) {
    const TheoremReport evac = check_evacuation(config, result);
    row.checks += evac.checks;
    if (!evac.holds) {
      row.satisfied = false;
      row.note = "EvacThm: " +
                 (evac.failures.empty() ? std::string("failed")
                                        : evac.failures.front());
    }
  }

  // Theorem 1 witness round-trip on the deadlock-prone baseline: find a
  // cycle, build the deadlock, confirm Ω, and recover a dependency cycle
  // from it — exercising both proof directions end-to-end.
  const FullyAdaptiveRouting adaptive(hermes.mesh());
  const PortDepGraph adaptive_dep = build_dep_graph(adaptive);
  const auto cycle = find_cycle(adaptive_dep.graph);
  ++row.checks;
  if (!cycle) {
    row.satisfied = false;
    row.note = "fully-adaptive baseline unexpectedly acyclic";
  } else {
    DeadlockConstruction witness = build_deadlock_from_cycle(
        adaptive, adaptive_dep, *cycle, hermes.buffers_per_port());
    ++row.checks;
    if (!is_deadlock(hermes.switching(), witness.state)) {
      row.satisfied = false;
      row.note = "constructed configuration is not a deadlock";
    } else {
      const DeadlockCycle recovered =
          extract_cycle_from_deadlock(hermes.switching(), witness.state);
      ++row.checks;
      if (!cycle_lies_in_dep_graph(adaptive_dep, recovered.ports)) {
        row.satisfied = false;
        row.note = "recovered cycle is not a dependency cycle";
      }
    }
  }

  row.properties = 4;
  if (row.satisfied) {
    row.note = "DeadThm + EvacThm + Theorem-1 witness round-trip";
  }
  row.cpu_ms = timer.elapsed_ms();
  return row;
}

}  // namespace

ObligationSuite run_hermes_obligations(const HermesInstance& hermes,
                                       const ObligationOptions& options) {
  ObligationSuite suite;
  const PortDepGraph dep = hermes.dependency_graph();
  const auto workloads = sample_workloads(hermes, options);

  suite.rows.push_back(row_rxy(hermes));
  suite.rows.push_back(row_c4(hermes, options));

  std::vector<std::pair<Config, GenocRunResult>> runs;
  suite.rows.push_back(row_c5(hermes, workloads, options, &runs));

  suite.rows.push_back(
      from_constraint(check_c1(hermes.routing(), dep), "(C-1)xy"));
  {
    // Both the brute-force and the paper's find_dest discharge of (C-2).
    ConstraintReport brute = check_c2(hermes.routing(), dep);
    const ConstraintReport closed =
        check_c2_xy_closed_form(hermes.routing(), dep);
    ObligationRow row = from_constraint(brute, "(C-2)xy");
    row.checks += closed.checks;
    row.cpu_ms += closed.cpu_ms;
    row.properties = 2;
    if (!closed.satisfied) {
      row.satisfied = false;
      row.note = closed.violations.empty() ? "find_dest witness failed"
                                           : closed.violations.front();
    } else if (row.satisfied) {
      row.note = "every edge witnessed (brute force and find_dest)";
    }
    suite.rows.push_back(std::move(row));
  }
  suite.rows.push_back(row_c3(hermes, dep));
  suite.rows.push_back(row_generic_defs(hermes, dep));
  suite.rows.push_back(row_corr(hermes, runs));
  suite.rows.push_back(row_dead_evac(hermes, dep, runs));
  return suite;
}

}  // namespace genoc
