/// \file config.hpp
/// \brief Configurations σ = <T, ST, A> (paper Sec. III.B).
///
/// T is the list of travels sent across the network, ST the network state,
/// and A the list of travels that have arrived. The interpreter (genoc.hpp)
/// recursively applies the constituents to a configuration until T is empty
/// or a deadlock is reached.
#pragma once

#include <cstddef>
#include <vector>

#include "core/travel.hpp"
#include "switching/network_state.hpp"

namespace genoc {

/// A travel that reached its destination, with the step at which its tail
/// flit left the network.
struct Arrival {
  TravelId id = 0;
  std::size_t step = 0;
};

/// The configuration σ. Owns the travel list, the network state and the
/// arrival log; constituents and the interpreter mutate it through the
/// narrow API below.
class Config {
 public:
  /// Creates a configuration over \p mesh with \p buffers_per_port 1-flit
  /// buffers at every port (paper: "Each port has an arbitrary number of
  /// 1-flit buffers").
  Config(const Mesh2D& mesh, std::size_t buffers_per_port);

  const Mesh2D& mesh() const { return state_.mesh(); }

  /// Adds a travel to T and registers its packet with the network state
  /// (flits start outside, i.e. queued at the source core). This models the
  /// paper's "initial list — of arbitrary size — of messages that are
  /// immediately injected": all travels are committed at step 0; their
  /// flits physically enter as Local IN buffers free up.
  void add_travel(Travel travel);

  /// Adds a travel that only becomes visible to the network at
  /// \p release_step (the staged-injection extension of Sec. IX). Released
  /// by StagedInjection::inject().
  void add_staged_travel(Travel travel, std::size_t release_step);

  // ---- σ.T ------------------------------------------------------------

  /// All travels ever added (the initial T of the evacuation theorem).
  const std::vector<Travel>& travels() const { return travels_; }

  const Travel& travel(TravelId id) const;

  /// Travels not yet arrived (the current T), ascending ids. Staged travels
  /// not yet released are included — they have been "sent" but not injected.
  std::vector<TravelId> pending() const;

  /// True iff every travel has arrived (T = ∅).
  bool all_arrived() const;

  // ---- σ.ST -----------------------------------------------------------

  NetworkState& state() { return state_; }
  const NetworkState& state() const { return state_; }

  // ---- σ.A ------------------------------------------------------------

  const std::vector<Arrival>& arrived() const { return arrived_; }

  /// Entry log: the step at which each travel's header flit entered the
  /// network (its Local IN port). Supports the injection-time-bound
  /// analysis of the paper's Sec. IX.
  const std::vector<Arrival>& entered() const { return entered_; }

  // ---- Interpreter hooks ------------------------------------------------

  /// Records arrivals reported by the switching policy at the current step.
  void record_arrivals(const std::vector<TravelId>& ids);

  /// Records network entries reported by the switching policy.
  void record_entries(const std::vector<TravelId>& ids);

  /// Current step number (number of switching steps applied so far).
  std::size_t step() const { return step_; }
  void advance_step() { ++step_; }

  /// Staged travels due at or before the current step; releasing one
  /// registers its packet. Used by StagedInjection.
  std::vector<TravelId> release_due_travels();

  /// Number of staged travels not yet released into the network state.
  std::size_t staged_remaining() const;

  /// Order-independent fingerprint of <T, ST, A> for the (C-4) identity
  /// check.
  std::uint64_t digest() const;

 private:
  struct Staged {
    Travel travel;
    std::size_t release_step = 0;
  };

  NetworkState state_;
  std::vector<Travel> travels_;
  std::vector<Staged> staged_;  // not yet released
  std::vector<Arrival> arrived_;
  std::vector<Arrival> entered_;
  std::size_t step_ = 0;
};

}  // namespace genoc
