/// \file injection_time.hpp
/// \brief Injection-time bounds — the paper's Sec. IX program: "We are
///        working on the proof that all messages are eventually injected.
///        This proof entails a generic bound on the injection time of each
///        message … Deadlock-freedom is necessary."
///
/// Two bounds are computed per travel:
///   - the GENERIC bound μ(σ0): while a travel waits outside, the network
///     is never in deadlock, so every step strictly decreases the flit
///     measure; the header must therefore enter within μ(σ0) steps. This
///     bound is sound for every instance that satisfies (C-5), which is
///     exactly the paper's point that deadlock-freedom is necessary.
///   - a LOCAL estimate: the travel enters once the earlier travels sharing
///     its Local IN port have cleared it; absent cross-traffic that takes
///     at most Σ (|route| + flits) over those predecessors. Reported for
///     comparison; congestion can exceed it, the generic bound cannot be
///     exceeded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/genoc.hpp"

namespace genoc {

/// Per-travel injection-time record.
struct InjectionTime {
  TravelId id = 0;
  std::size_t entry_step = 0;
  std::uint64_t local_estimate = 0;
  bool within_local_estimate = false;
};

/// Result of the analysis over a finished run.
struct InjectionBoundReport {
  /// The generic bound μ(σ0) (see file comment).
  std::uint64_t generic_bound = 0;
  /// True iff every travel entered within the generic bound. Guaranteed
  /// for (C-5)-satisfying instances; a failure indicates a broken policy.
  bool all_within_generic_bound = false;
  /// Fraction of travels that also met their (non-guaranteed) local
  /// estimate.
  double local_estimate_hit_rate = 0.0;
  std::size_t max_entry_step = 0;
  std::vector<InjectionTime> per_travel;

  std::string summary() const;
};

/// Analyzes the entry log of a finished (evacuated) run.
/// Requires: the run evacuated and every travel has an entry record.
InjectionBoundReport check_injection_bound(const Config& config,
                                           const GenocRunResult& run);

}  // namespace genoc
