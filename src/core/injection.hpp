/// \file injection.hpp
/// \brief The injection constituent I : Σ -> Σ.
///
/// The paper assumes all messages are injected at time 0, so its injection
/// method is the identity function Iid and constraint (C-4) is I(σ) = σ.
/// The staged-injection extension implements the future-work direction of
/// Sec. IX ("all messages are eventually injected"), releasing travels at
/// their scheduled steps.
#pragma once

#include <string>

#include "core/config.hpp"

namespace genoc {

/// Abstract injection method.
class InjectionMethod {
 public:
  virtual ~InjectionMethod() = default;

  virtual std::string name() const = 0;

  /// Decides which travels are ready for departure and injects them.
  virtual void inject(Config& config) const = 0;
};

/// The paper's Iid: the identity function (constraint (C-4): I(σ) = σ).
class IdentityInjection final : public InjectionMethod {
 public:
  std::string name() const override { return "Iid"; }
  void inject(Config& config) const override;
};

/// Staged injection: travels added via Config::add_staged_travel become
/// visible to the network at their release step. With no staged travels it
/// degenerates to the identity.
class StagedInjection final : public InjectionMethod {
 public:
  std::string name() const override { return "staged"; }
  void inject(Config& config) const override;
};

}  // namespace genoc
