#include "core/injection_time.hpp"

#include <algorithm>
#include <sstream>

#include "util/require.hpp"

namespace genoc {

std::string InjectionBoundReport::summary() const {
  std::ostringstream os;
  os << "injection bound: generic μ(σ0) = " << generic_bound << " ("
     << (all_within_generic_bound ? "all travels within it"
                                  : "VIOLATED — policy broken")
     << "), max entry step = " << max_entry_step
     << ", local-estimate hit rate = " << local_estimate_hit_rate * 100.0
     << "%";
  return os.str();
}

InjectionBoundReport check_injection_bound(const Config& config,
                                           const GenocRunResult& run) {
  GENOC_REQUIRE(run.evacuated,
                "injection-bound analysis requires an evacuated run");
  InjectionBoundReport report;
  report.generic_bound = run.initial_measure;
  report.all_within_generic_bound = true;

  // Entry step per travel.
  std::vector<std::pair<TravelId, std::size_t>> entries;
  for (const Arrival& e : config.entered()) {
    entries.emplace_back(e.id, e.step);
  }
  GENOC_REQUIRE(entries.size() == config.travels().size(),
                "every travel of an evacuated run must have entered");

  auto entry_step_of = [&](TravelId id) {
    for (const auto& [eid, step] : entries) {
      if (eid == id) {
        return step;
      }
    }
    GENOC_REQUIRE(false, "missing entry record");
  };

  std::size_t local_hits = 0;
  for (const Travel& t : config.travels()) {
    InjectionTime record;
    record.id = t.id;
    record.entry_step = entry_step_of(t.id);
    report.max_entry_step =
        std::max(report.max_entry_step, record.entry_step);

    // Local estimate: earlier travels sharing the source must clear the
    // Local IN port; uncontended, each needs |route| + flits steps.
    for (const Travel& other : config.travels()) {
      if (other.id < t.id && other.source == t.source) {
        record.local_estimate += other.route.size() + other.flit_count;
      }
    }
    record.within_local_estimate =
        record.entry_step <= record.local_estimate ||
        record.local_estimate == 0;
    if (record.within_local_estimate) {
      ++local_hits;
    }
    if (record.entry_step > report.generic_bound) {
      report.all_within_generic_bound = false;
    }
    report.per_travel.push_back(record);
  }
  report.local_estimate_hit_rate =
      report.per_travel.empty()
          ? 1.0
          : static_cast<double>(local_hits) /
                static_cast<double>(report.per_travel.size());
  return report;
}

}  // namespace genoc
