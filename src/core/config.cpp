#include "core/config.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace genoc {

Config::Config(const Mesh2D& mesh, std::size_t buffers_per_port)
    : state_(mesh, buffers_per_port) {}

void Config::add_travel(Travel travel) {
  PacketSpec spec;
  spec.id = travel.id;
  spec.route = travel.route;
  spec.flit_count = travel.flit_count;
  state_.register_packet(std::move(spec));  // validates route and id
  travels_.push_back(std::move(travel));
}

void Config::add_staged_travel(Travel travel, std::size_t release_step) {
  for (const Travel& t : travels_) {
    GENOC_REQUIRE(t.id != travel.id,
                  "duplicate travel id " + std::to_string(travel.id));
  }
  travels_.push_back(travel);
  staged_.push_back(Staged{std::move(travel), release_step});
}

const Travel& Config::travel(TravelId id) const {
  for (const Travel& t : travels_) {
    if (t.id == id) {
      return t;
    }
  }
  GENOC_REQUIRE(false, "unknown travel id " + std::to_string(id));
}

std::vector<TravelId> Config::pending() const {
  std::vector<TravelId> result;
  for (const Travel& t : travels_) {
    const bool in_state = state_.has_packet(t.id);
    if (!in_state || !state_.packet_delivered(t.id)) {
      result.push_back(t.id);
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

bool Config::all_arrived() const {
  if (!staged_.empty()) {
    return false;
  }
  for (const Travel& t : travels_) {
    if (!state_.has_packet(t.id) || !state_.packet_delivered(t.id)) {
      return false;
    }
  }
  return true;
}

void Config::record_arrivals(const std::vector<TravelId>& ids) {
  for (const TravelId id : ids) {
    GENOC_REQUIRE(state_.packet_delivered(id),
                  "recording arrival of undelivered travel " +
                      std::to_string(id));
    arrived_.push_back(Arrival{id, step_});
  }
}

void Config::record_entries(const std::vector<TravelId>& ids) {
  for (const TravelId id : ids) {
    GENOC_REQUIRE(state_.has_packet(id) && state_.packet_in_network(id),
                  "recording entry of a travel that is not in the network");
    entered_.push_back(Arrival{id, step_});
  }
}

std::vector<TravelId> Config::release_due_travels() {
  std::vector<TravelId> released;
  auto it = staged_.begin();
  while (it != staged_.end()) {
    if (it->release_step <= step_) {
      PacketSpec spec;
      spec.id = it->travel.id;
      spec.route = it->travel.route;
      spec.flit_count = it->travel.flit_count;
      state_.register_packet(std::move(spec));
      released.push_back(it->travel.id);
      it = staged_.erase(it);
    } else {
      ++it;
    }
  }
  return released;
}

std::size_t Config::staged_remaining() const { return staged_.size(); }

std::uint64_t Config::digest() const {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return h;
  };
  std::uint64_t h = state_.digest();
  h = mix(h, travels_.size());
  h = mix(h, staged_.size());
  h = mix(h, arrived_.size());
  for (const Arrival& a : arrived_) {
    h = mix(h, (static_cast<std::uint64_t>(a.id) << 32) ^ a.step);
  }
  h = mix(h, step_);
  return h;
}

}  // namespace genoc
