#include "core/measure.hpp"

#include "switching/flit.hpp"

namespace genoc {

std::uint64_t RouteLengthMeasure::value(const Config& config) const {
  const NetworkState& state = config.state();
  std::uint64_t total = 0;
  for (const Travel& t : config.travels()) {
    if (!state.has_packet(t.id)) {
      // Staged and unreleased: its whole route is still ahead of it.
      total += t.route.size();
      continue;
    }
    if (state.packet_delivered(t.id)) {
      continue;
    }
    const std::int32_t pos = state.flit_pos(t.id, 0);
    if (pos == kFlitOutside) {
      total += t.route.size();
    } else if (pos != kFlitDelivered) {
      total += t.route.size() - 1 - static_cast<std::uint64_t>(pos);
    }
    // Header delivered but tail still draining: remaining route length 0;
    // the flit-level measure keeps decreasing through that phase.
  }
  return total;
}

std::uint64_t FlitLevelMeasure::value(const Config& config) const {
  std::uint64_t total = config.state().total_remaining_hops();
  // Unreleased staged travels still owe their full journey.
  for (const Travel& t : config.travels()) {
    if (!config.state().has_packet(t.id)) {
      total += static_cast<std::uint64_t>(t.route.size()) * t.flit_count;
    }
  }
  return total;
}

}  // namespace genoc
