#include "core/injection.hpp"

namespace genoc {

void IdentityInjection::inject(Config& config) const {
  // I(σ) = σ — deliberately nothing. The (C-4) checker verifies this by
  // comparing configuration digests around the call.
  (void)config;
}

void StagedInjection::inject(Config& config) const {
  config.release_due_travels();
}

}  // namespace genoc
