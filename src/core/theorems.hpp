/// \file theorems.hpp
/// \brief The three global GeNoC theorems (paper Fig. 2) as certifying
///        checkers: CorrThm, DeadThm, EvacThm.
///
/// In ACL2 these are proven once for all instances from the proof
/// obligations; in this executable reproduction each checker verifies the
/// theorem's statement on a concrete instance/run and reports the evidence.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/genoc.hpp"
#include "deadlock/depgraph.hpp"
#include "routing/routing.hpp"

namespace genoc {

/// Verdict of one theorem check.
struct TheoremReport {
  std::string theorem;
  bool holds = false;
  std::uint64_t checks = 0;
  double cpu_ms = 0.0;
  std::vector<std::string> failures;  // capped

  static constexpr std::size_t kMaxFailures = 16;

  std::string summary() const;
};

/// CorrThm: "when message m reaches destination node d, message m was
/// emitted at a valid source node, was actually destined to node d, and
/// followed a valid path to d." Checked over the arrival log of a finished
/// configuration: every arrived id is a travel of the initial T, its route
/// starts at its source, ends at its destination, and every step of the
/// route is sanctioned by the routing function.
TheoremReport check_correctness(const Config& config,
                                const RoutingFunction& routing);

/// DeadThm: the routing function is deadlock-free. Discharged via its
/// proof obligations (C-1), (C-2), (C-3) on the given dependency graph
/// (Theorem 1 reduces the theorem to them).
TheoremReport check_deadlock_theorem(const RoutingFunction& routing,
                                     const PortDepGraph& dep);

/// EvacThm: GeNoC(σ).A = σ.T — all messages eventually leave the network.
/// Checked on a finished run: it evacuated (no deadlock, T emptied), the
/// arrival log contains exactly the ids of the initial travel list, each
/// exactly once, and the audited measure never failed to decrease ((C-5)).
TheoremReport check_evacuation(const Config& config,
                               const GenocRunResult& run);

}  // namespace genoc
