#include "core/hermes.hpp"

#include "util/require.hpp"

namespace genoc {

HermesInstance::HermesInstance(std::int32_t width, std::int32_t height,
                               std::size_t buffers_per_port,
                               std::size_t local_buffers)
    : mesh_(width, height),
      routing_(mesh_),
      buffers_per_port_(buffers_per_port),
      local_buffers_(local_buffers == 0 ? buffers_per_port : local_buffers) {
  GENOC_REQUIRE(buffers_per_port >= 1, "ports need at least one buffer");
}

Config HermesInstance::make_config(const std::vector<TrafficPair>& pairs,
                                   std::uint32_t flit_count) const {
  Config config(mesh_, buffers_per_port_);
  if (local_buffers_ != buffers_per_port_) {
    for (const NodeCoord n : mesh_.nodes()) {
      config.state().set_capacity(mesh_.local_in(n.x, n.y), local_buffers_);
      config.state().set_capacity(mesh_.local_out(n.x, n.y), local_buffers_);
    }
  }
  TravelId next_id = 1;
  for (const TrafficPair& pair : pairs) {
    config.add_travel(
        make_travel(next_id++, routing_, pair.source, pair.dest, flit_count));
  }
  return config;
}

GenocRunResult HermesInstance::run(Config& config,
                                   const GenocOptions& options) const {
  const GenocInterpreter interpreter(injection_, switching_, measure_);
  return interpreter.run(config, options);
}

PortDepGraph HermesInstance::dependency_graph() const {
  return build_exy_dep(mesh_);
}

TheoremReport HermesInstance::verify_deadlock_free() const {
  const PortDepGraph dep = dependency_graph();
  return check_deadlock_theorem(routing_, dep);
}

}  // namespace genoc
