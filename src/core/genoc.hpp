/// \file genoc.hpp
/// \brief The GeNoC interpreter (paper Sec. III.B):
///
///   GeNoC(σ) = σ                    iff σ.T = ∅
///            | σ                    iff Ω(R(I(σ)))
///            | GeNoC(S(R(I(σ))))    otherwise
///
/// The routing generalization R : Σ -> Σ is performed once up front (routes
/// are pre-computed in the travels — the GeNoC2D optimization), so the loop
/// body is I; Ω-test; S, exactly like the paper's GeNoC2D. The interpreter
/// additionally audits constraint (C-5) at runtime: the termination measure
/// must strictly decrease on every step that is not a deadlock; violations
/// are counted (and fail the evacuation theorem checker).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/config.hpp"
#include "core/injection.hpp"
#include "core/measure.hpp"
#include "switching/policy.hpp"

namespace genoc {

/// Options for one interpreter run.
struct GenocOptions {
  /// Audit (C-5): record the measure each step and count non-decreases.
  bool audit_measure = true;
  /// Keep the full per-step measure trace in the result (costs memory on
  /// long runs; the audit works without it).
  bool keep_measure_trace = false;
  /// Hard step bound; 0 = derive from the initial measure (μ(σ0) steps
  /// suffice when (C-5) holds, plus slack for staged injection).
  std::size_t max_steps = 0;
  /// Called after every switching step with the post-step configuration
  /// and what the step did (used by the trace recorder).
  std::function<void(const Config&, const StepResult&)> observer;
};

/// Outcome of GeNoC(σ).
struct GenocRunResult {
  std::size_t steps = 0;
  bool deadlocked = false;
  /// True iff σ.T emptied — every travel arrived (the Evacuation Theorem's
  /// conclusion for this run).
  bool evacuated = false;
  std::uint64_t initial_measure = 0;
  std::uint64_t final_measure = 0;
  std::size_t total_flit_moves = 0;
  /// Steps on which the audited measure failed to strictly decrease
  /// (must stay 0 — a non-zero value falsifies (C-5) for the instance).
  std::size_t measure_violations = 0;
  /// μ after every step, starting with μ(σ0) (only if keep_measure_trace).
  std::vector<std::uint64_t> measure_trace;
};

/// The generic interpreter, parameterized by the three constituents
/// (R is folded into the pre-computed travel routes).
class GenocInterpreter {
 public:
  GenocInterpreter(const InjectionMethod& injection,
                   const SwitchingPolicy& switching,
                   const TerminationMeasure& measure)
      : injection_(&injection), switching_(&switching), measure_(&measure) {}

  /// Runs GeNoC to completion (evacuation or deadlock), mutating σ.
  /// Throws ContractViolation if the step bound is exceeded — which cannot
  /// happen while (C-5) holds and exists precisely to catch instances
  /// violating it.
  GenocRunResult run(Config& config, const GenocOptions& options = {}) const;

  const InjectionMethod& injection() const { return *injection_; }
  const SwitchingPolicy& switching() const { return *switching_; }
  const TerminationMeasure& measure() const { return *measure_; }

 private:
  const InjectionMethod* injection_;
  const SwitchingPolicy* switching_;
  const TerminationMeasure* measure_;
};

}  // namespace genoc
