/// \file measure.hpp
/// \brief Termination measures μ(σ) for the evacuation theorem (paper
///        Sec. IV.B and VI.B).
///
/// Constraint (C-5): σ.T ≠ ∅ ∧ ¬Ω(σ) ⟹ μ(S(R(σ))) < μ(σ) — the measure
/// strictly decreases with every switching step as long as there is no
/// deadlock. The paper's μxy sums the lengths of the remaining routes of
/// all messages; at the paper's whole-worm step granularity one header
/// always advances and the measure drops.
///
/// Our network model refines steps to flit granularity, where a step may
/// advance only body flits (the header being momentarily blocked); the
/// route-length measure is then only non-increasing. The flit-level measure
/// (sum of remaining hops over ALL flits, plus one entry move per flit
/// still outside) strictly decreases under every flit movement and is the
/// measure the interpreter audits for (C-5). Both are provided; DESIGN.md
/// documents the substitution.
#pragma once

#include <cstdint>
#include <string>

#include "core/config.hpp"

namespace genoc {

/// Abstract termination measure over configurations.
class TerminationMeasure {
 public:
  virtual ~TerminationMeasure() = default;

  virtual std::string name() const = 0;

  /// μ(σ). Zero iff every travel has evacuated.
  virtual std::uint64_t value(const Config& config) const = 0;
};

/// The paper's μxy: Σ { |m.r| : m ∈ σ.T } — the remaining route length of
/// every pending message, measured at its header. Non-increasing under
/// wormhole switching; strictly decreasing whenever some header advances.
class RouteLengthMeasure final : public TerminationMeasure {
 public:
  std::string name() const override { return "mu_xy (route lengths)"; }
  std::uint64_t value(const Config& config) const override;
};

/// Flit-granular refinement: Σ over all flits of their remaining hop count
/// (entry move included). Strictly decreases under every flit movement —
/// the (C-5) witness for our refined switching model.
class FlitLevelMeasure final : public TerminationMeasure {
 public:
  std::string name() const override { return "mu_flit (remaining hops)"; }
  std::uint64_t value(const Config& config) const override;
};

}  // namespace genoc
