#include "core/theorems.hpp"

#include <algorithm>
#include <sstream>

#include "deadlock/constraints.hpp"
#include "routing/route.hpp"
#include "util/stopwatch.hpp"

namespace genoc {

std::string TheoremReport::summary() const {
  std::ostringstream os;
  os << theorem << ": " << (holds ? "HOLDS" : "FAILS") << " (" << checks
     << " checks, " << cpu_ms << " ms";
  if (!failures.empty()) {
    os << ", first failure: " << failures.front();
  }
  os << ")";
  return os.str();
}

namespace {

void record_failure(TheoremReport& report, const std::string& text) {
  report.holds = false;
  if (report.failures.size() < TheoremReport::kMaxFailures) {
    report.failures.push_back(text);
  }
}

}  // namespace

TheoremReport check_correctness(const Config& config,
                                const RoutingFunction& routing) {
  Stopwatch timer;
  TheoremReport report;
  report.theorem = "CorrThm";
  report.holds = true;

  for (const Arrival& arrival : config.arrived()) {
    ++report.checks;
    // m was emitted at a valid source node, destined to d.
    bool known = false;
    for (const Travel& t : config.travels()) {
      if (t.id == arrival.id) {
        known = true;
        if (t.route.empty() || t.route.front() != t.source) {
          record_failure(report, "travel " + std::to_string(t.id) +
                                     " route does not start at its source");
        }
        if (t.route.empty() || t.route.back() != t.dest) {
          record_failure(report, "travel " + std::to_string(t.id) +
                                     " route does not end at its destination");
        }
        if (t.source.name != PortName::kLocal ||
            t.source.dir != Direction::kIn ||
            !routing.mesh().exists(t.source)) {
          record_failure(report, "travel " + std::to_string(t.id) +
                                     " has an invalid source port");
        }
        // m followed a valid path to d.
        if (!is_valid_route(routing, t.route, t.source, t.dest)) {
          record_failure(report, "travel " + std::to_string(t.id) +
                                     " followed a path not sanctioned by " +
                                     routing.name());
        }
        if (!config.state().packet_delivered(t.id)) {
          record_failure(report, "arrival logged for undelivered travel " +
                                     std::to_string(t.id));
        }
        break;
      }
    }
    if (!known) {
      record_failure(report, "arrived id " + std::to_string(arrival.id) +
                                 " was never emitted");
    }
  }
  report.cpu_ms = timer.elapsed_ms();
  return report;
}

TheoremReport check_deadlock_theorem(const RoutingFunction& routing,
                                     const PortDepGraph& dep) {
  Stopwatch timer;
  TheoremReport report;
  report.theorem = "DeadThm (" + routing.name() + ")";
  report.holds = true;

  const ConstraintReport c1 = check_c1(routing, dep);
  const ConstraintReport c2 = check_c2(routing, dep);
  const ConstraintReport c3 = check_c3(dep);
  report.checks = c1.checks + c2.checks + c3.checks;
  for (const ConstraintReport* c : {&c1, &c2, &c3}) {
    if (!c->satisfied) {
      record_failure(report, c->summary());
    }
  }
  report.cpu_ms = timer.elapsed_ms();
  return report;
}

TheoremReport check_evacuation(const Config& config,
                               const GenocRunResult& run) {
  Stopwatch timer;
  TheoremReport report;
  report.theorem = "EvacThm";
  report.holds = true;

  if (run.deadlocked) {
    record_failure(report, "run ended in deadlock");
  }
  if (!run.evacuated) {
    record_failure(report, "run did not empty σ.T");
  }
  if (run.measure_violations != 0) {
    record_failure(report, std::to_string(run.measure_violations) +
                               " steps violated (C-5)");
  }
  // GeNoC(σ).A = σ.T: same ids, each exactly once.
  std::vector<TravelId> sent;
  for (const Travel& t : config.travels()) {
    sent.push_back(t.id);
  }
  std::vector<TravelId> arrived;
  for (const Arrival& a : config.arrived()) {
    arrived.push_back(a.id);
  }
  std::sort(sent.begin(), sent.end());
  std::sort(arrived.begin(), arrived.end());
  report.checks = sent.size() + arrived.size();
  if (sent != arrived) {
    record_failure(report,
                   "arrival log does not equal the sent list (|T| = " +
                       std::to_string(sent.size()) + ", |A| = " +
                       std::to_string(arrived.size()) + ")");
  }
  if (run.evacuated && run.final_measure != 0) {
    record_failure(report, "evacuated but final measure is non-zero");
  }
  report.cpu_ms = timer.elapsed_ms();
  return report;
}

}  // namespace genoc
