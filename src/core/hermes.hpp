/// \file hermes.hpp
/// \brief The full HERMES instantiation of GeNoC (paper Sections V–VI):
///        arbitrary-size 2D mesh, XY routing, wormhole switching, identity
///        injection — wired together as the executable GeNoC2D.
///
/// This is the library's main convenience entry point: construct an
/// instance, build configurations from (source, destination) node pairs,
/// run them, and discharge the full proof-obligation suite.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/genoc.hpp"
#include "core/injection.hpp"
#include "core/measure.hpp"
#include "core/theorems.hpp"
#include "core/travel.hpp"
#include "deadlock/depgraph.hpp"
#include "routing/xy.hpp"
#include "switching/wormhole.hpp"
#include "workload/traffic.hpp"

namespace genoc {

/// The HERMES NoC instance: GeNoC2D.
class HermesInstance {
 public:
  /// \param width,height    mesh dimensions (paper: arbitrary size).
  /// \param buffers_per_port  1-flit buffers at every port (Fig. 1b shows
  ///                          2; the paper leaves it uninterpreted).
  /// \param local_buffers   buffer depth of the Local IN/OUT ports; 0 means
  ///                        "same as buffers_per_port". Real HERMES designs
  ///                        often give the injection/ejection queues more
  ///                        depth than the switch-to-switch ports; the
  ///                        paper's "arbitrary number of buffers at each
  ///                        node" covers this heterogeneity.
  HermesInstance(std::int32_t width, std::int32_t height,
                 std::size_t buffers_per_port = 2,
                 std::size_t local_buffers = 0);

  const Mesh2D& mesh() const { return mesh_; }
  const XYRouting& routing() const { return routing_; }
  const WormholeSwitching& switching() const { return switching_; }
  const InjectionMethod& injection() const { return injection_; }
  const TerminationMeasure& measure() const { return measure_; }
  std::size_t buffers_per_port() const { return buffers_per_port_; }
  std::size_t local_buffers() const { return local_buffers_; }

  /// Builds a configuration with one travel per pair (ids 1..n, in order),
  /// each of \p flit_count flits, routes pre-computed by Rxy (GeNoC2D).
  Config make_config(const std::vector<TrafficPair>& pairs,
                     std::uint32_t flit_count) const;

  /// Runs GeNoC2D on the configuration (with (C-5) auditing on).
  GenocRunResult run(Config& config, const GenocOptions& options = {}) const;

  /// The port dependency graph Exy_dep (closed form, Sec. V.6).
  PortDepGraph dependency_graph() const;

  /// Discharges DeadThm for this instance via (C-1)–(C-3).
  TheoremReport verify_deadlock_free() const;

 private:
  Mesh2D mesh_;
  XYRouting routing_;
  WormholeSwitching switching_;
  IdentityInjection injection_;
  FlitLevelMeasure measure_;
  std::size_t buffers_per_port_;
  std::size_t local_buffers_;
};

}  // namespace genoc
