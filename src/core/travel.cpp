#include "core/travel.hpp"

#include "util/require.hpp"

namespace genoc {

Travel make_travel(TravelId id, const RoutingFunction& routing,
                   NodeCoord source_node, NodeCoord dest_node,
                   std::uint32_t flit_count) {
  const Mesh2D& mesh = routing.mesh();
  Travel t;
  t.id = id;
  t.source = mesh.local_in(source_node.x, source_node.y);
  t.dest = mesh.local_out(dest_node.x, dest_node.y);
  t.flit_count = flit_count;
  t.route = compute_route(routing, t.source, t.dest);
  return t;
}

Travel make_travel_with_route(TravelId id, const RoutingFunction& routing,
                              Route route, std::uint32_t flit_count) {
  GENOC_REQUIRE(route.size() >= 2, "a route has at least two ports");
  const Port from = route.front();
  const Port to = route.back();
  GENOC_REQUIRE(is_valid_route(routing, route, from, to),
                "route is not valid for routing function " + routing.name());
  Travel t;
  t.id = id;
  t.source = from;
  t.dest = to;
  t.route = std::move(route);
  t.flit_count = flit_count;
  return t;
}

}  // namespace genoc
