#include "core/genoc.hpp"

#include "util/require.hpp"

namespace genoc {

GenocRunResult GenocInterpreter::run(Config& config,
                                     const GenocOptions& options) const {
  GenocRunResult result;
  result.initial_measure = measure_->value(config);

  std::size_t max_steps = options.max_steps;
  if (max_steps == 0) {
    // When (C-5) holds each step strictly decreases the measure, so μ(σ0)
    // steps suffice; staged travels may idle-wait before release, so add
    // their release horizon via a generous constant factor.
    max_steps = static_cast<std::size_t>(result.initial_measure) * 2 + 64;
  }

  if (options.keep_measure_trace) {
    result.measure_trace.push_back(result.initial_measure);
  }

  std::uint64_t previous_measure = result.initial_measure;
  while (!config.all_arrived()) {
    injection_->inject(config);
    // R : Σ -> Σ is the identity here: routes were pre-computed when the
    // travels were built (GeNoC2D, paper Sec. V.5).
    if (is_deadlock(*switching_, config.state())) {
      result.deadlocked = true;
      break;
    }
    const StepResult step = switching_->step(config.state());
    config.record_entries(step.entered);
    config.record_arrivals(step.delivered);
    config.advance_step();
    result.total_flit_moves += step.flits_moved;
    ++result.steps;
    if (options.observer) {
      options.observer(config, step);
    }

    if (options.audit_measure) {
      const std::uint64_t current = measure_->value(config);
      // (C-5): σ.T ≠ ∅ ∧ ¬Ω(σ) ⟹ μ(S(R(σ))) < μ(σ). A step with zero
      // movement while staged travels wait for release is not a (C-5)
      // context (T was injected-empty); only audit steps that moved or
      // should have moved.
      if (step.flits_moved > 0 || config.staged_remaining() == 0) {
        if (!(current < previous_measure)) {
          ++result.measure_violations;
        }
      }
      previous_measure = current;
      if (options.keep_measure_trace) {
        result.measure_trace.push_back(current);
      }
    }

    GENOC_REQUIRE(result.steps <= max_steps,
                  "GeNoC exceeded its termination bound — the instance "
                  "violates constraint (C-5)");
  }

  result.evacuated = config.all_arrived();
  result.final_measure = measure_->value(config);
  return result;
}

}  // namespace genoc
