/// \file travel.hpp
/// \brief Travels: the paper's <id, c, d> triples, extended with the
///        pre-computed route t.r (paper Sec. V.5: "We extend travels to
///        store a route as well").
#pragma once

#include "routing/route.hpp"
#include "switching/flit.hpp"
#include "topology/mesh.hpp"

namespace genoc {

/// One message to send across the network. The current location c of the
/// paper's triple is not stored here — it lives in the network state (the
/// header flit's port); Travel carries the immutable part.
struct Travel {
  TravelId id = 0;
  Port source;                  ///< the Local IN port where the travel enters
  Port dest;                    ///< the Local OUT port where it leaves
  Route route;                  ///< t.r: pre-computed port sequence source..dest
  std::uint32_t flit_count = 1; ///< worm length (header + data flits)
};

/// Builds a travel between two nodes with its route pre-computed by a
/// deterministic routing function (the GeNoC2D optimization: "since
/// xy-routing is deterministic, the routes can be pre-computed").
Travel make_travel(TravelId id, const RoutingFunction& routing,
                   NodeCoord source_node, NodeCoord dest_node,
                   std::uint32_t flit_count);

/// Builds a travel with an explicitly chosen route (used for adaptive
/// functions, where a concrete route is selected from the route set, and
/// for adversarial placements). The route must be valid for \p routing.
Travel make_travel_with_route(TravelId id, const RoutingFunction& routing,
                              Route route, std::uint32_t flit_count);

}  // namespace genoc
