#include "graph/reach.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/require.hpp"

namespace genoc {

std::vector<std::uint8_t> reachable_from(const Digraph& graph,
                                         std::size_t source) {
  GENOC_REQUIRE(graph.finalized(), "reachable_from requires a finalized graph");
  GENOC_REQUIRE(source < graph.vertex_count(), "source out of range");
  std::vector<std::uint8_t> seen(graph.vertex_count(), 0);
  std::vector<std::size_t> frontier;
  frontier.reserve(64);
  seen[source] = 1;
  frontier.push_back(source);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const std::size_t v = frontier[head];
    for (std::uint32_t w : graph.out(v)) {
      if (seen[w] == 0) {
        seen[w] = 1;
        frontier.push_back(w);
      }
    }
  }
  return seen;
}

bool is_reachable(const Digraph& graph, std::size_t source,
                  std::size_t target) {
  GENOC_REQUIRE(target < graph.vertex_count(), "target out of range");
  return reachable_from(graph, source)[target] != 0;
}

std::vector<std::size_t> shortest_path(const Digraph& graph,
                                       std::size_t source,
                                       std::size_t target) {
  GENOC_REQUIRE(graph.finalized(), "shortest_path requires a finalized graph");
  GENOC_REQUIRE(source < graph.vertex_count() && target < graph.vertex_count(),
                "endpoint out of range");
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> parent(graph.vertex_count(), kNone);
  std::queue<std::size_t> frontier;
  parent[source] = source;
  frontier.push(source);
  while (!frontier.empty() && parent[target] == kNone) {
    const std::size_t v = frontier.front();
    frontier.pop();
    for (std::uint32_t w : graph.out(v)) {
      if (parent[w] == kNone) {
        parent[w] = v;
        frontier.push(w);
      }
    }
  }
  if (parent[target] == kNone) {
    return {};
  }
  std::vector<std::size_t> path;
  for (std::size_t v = target;; v = parent[v]) {
    path.push_back(v);
    if (v == source) {
      break;
    }
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace genoc
