/// \file toposort.hpp
/// \brief Topological ordering and rank certificates.
///
/// The paper's (C-3) proof for arbitrary-size meshes is the "flows" argument
/// (Fig. 4): every dependency edge makes monotone progress, so no cycle can
/// close. The executable shadow of that argument is a *rank certificate*: a
/// function rank(v) with rank(u) < rank(v) for every edge (u, v). This module
/// computes ranks (Kahn's algorithm) and, crucially, *verifies* externally
/// supplied closed-form ranks, which is how the flow certifier discharges
/// (C-3) in O(E) for any mesh size.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace genoc {

/// A topological order of all vertices, or std::nullopt if the graph has a
/// cycle. O(V + E), Kahn's algorithm; ties broken by vertex id so the result
/// is deterministic.
std::optional<std::vector<std::size_t>> topological_order(const Digraph& graph);

/// Longest-path ranks: rank[v] = length of the longest edge-path ending at v.
/// Defined only for acyclic graphs (std::nullopt otherwise). Every edge
/// (u, v) satisfies rank[u] < rank[v].
std::optional<std::vector<std::size_t>> longest_path_ranks(const Digraph& graph);

/// Verifies a rank certificate: returns true iff rank[u] < rank[v] for every
/// edge (u, v). A valid certificate proves acyclicity (any cycle would need
/// rank strictly increasing around a loop). O(E).
bool verify_rank_certificate(const Digraph& graph,
                             const std::vector<std::int64_t>& rank);

/// The first edge violating the certificate, if any (for diagnostics).
std::optional<std::pair<std::size_t, std::size_t>> find_rank_violation(
    const Digraph& graph, const std::vector<std::int64_t>& rank);

}  // namespace genoc
