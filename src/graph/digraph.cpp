#include "graph/digraph.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace genoc {

Digraph::Digraph(std::size_t vertex_count) : vertex_count_(vertex_count) {}

std::size_t Digraph::edge_count() const {
  return finalized_ ? targets_.size() : build_edges_.size();
}

void Digraph::add_edge(std::size_t from, std::size_t to) {
  GENOC_REQUIRE(!finalized_, "cannot add edges to a finalized Digraph");
  GENOC_REQUIRE(from < vertex_count_ && to < vertex_count_,
                "edge endpoint out of range");
  build_edges_.emplace_back(static_cast<std::uint32_t>(from),
                            static_cast<std::uint32_t>(to));
}

void Digraph::reserve_edges(std::size_t edge_count) {
  GENOC_REQUIRE(!finalized_, "cannot reserve edges on a finalized Digraph");
  build_edges_.reserve(edge_count);
}

void Digraph::finalize() {
  if (finalized_) {
    return;
  }
  // Bulk builders that translate an already-finalized graph (the fault-delta
  // dependency-graph path) emit edges in CSR order; the linear is_sorted
  // check spares them the O(E log E) re-sort.
  if (!std::is_sorted(build_edges_.begin(), build_edges_.end())) {
    std::sort(build_edges_.begin(), build_edges_.end());
  }
  build_edges_.erase(std::unique(build_edges_.begin(), build_edges_.end()),
                     build_edges_.end());

  offsets_.assign(vertex_count_ + 1, 0);
  for (const auto& [from, to] : build_edges_) {
    (void)to;
    ++offsets_[from + 1];
  }
  for (std::size_t v = 0; v < vertex_count_; ++v) {
    offsets_[v + 1] += offsets_[v];
  }
  targets_.resize(build_edges_.size());
  // build_edges_ is sorted by (from, to), so targets can be copied in order.
  for (std::size_t i = 0; i < build_edges_.size(); ++i) {
    targets_[i] = build_edges_[i].second;
  }
  build_edges_.clear();
  build_edges_.shrink_to_fit();
  finalized_ = true;
}

std::span<const std::uint32_t> Digraph::out(std::size_t v) const {
  GENOC_REQUIRE(finalized_, "Digraph::out requires a finalized graph");
  GENOC_REQUIRE(v < vertex_count_, "vertex out of range");
  return {targets_.data() + offsets_[v],
          static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
}

std::size_t Digraph::out_degree(std::size_t v) const { return out(v).size(); }

bool Digraph::has_edge(std::size_t from, std::size_t to) const {
  const auto succ = out(from);
  return std::binary_search(succ.begin(), succ.end(),
                            static_cast<std::uint32_t>(to));
}

std::vector<std::pair<std::size_t, std::size_t>> Digraph::edges() const {
  GENOC_REQUIRE(finalized_, "Digraph::edges requires a finalized graph");
  std::vector<std::pair<std::size_t, std::size_t>> result;
  result.reserve(targets_.size());
  for (std::size_t v = 0; v < vertex_count_; ++v) {
    for (std::uint32_t w : out(v)) {
      result.emplace_back(v, w);
    }
  }
  return result;
}

Digraph Digraph::reversed() const {
  GENOC_REQUIRE(finalized_, "Digraph::reversed requires a finalized graph");
  Digraph rev(vertex_count_);
  for (std::size_t v = 0; v < vertex_count_; ++v) {
    for (std::uint32_t w : out(v)) {
      rev.add_edge(w, v);
    }
  }
  rev.finalize();
  return rev;
}

Digraph Digraph::induced(const std::vector<std::uint8_t>& keep) const {
  GENOC_REQUIRE(finalized_, "Digraph::induced requires a finalized graph");
  GENOC_REQUIRE(keep.size() == vertex_count_,
                "keep mask size must equal vertex count");
  Digraph sub(vertex_count_);
  for (std::size_t v = 0; v < vertex_count_; ++v) {
    if (keep[v] == 0) {
      continue;
    }
    for (std::uint32_t w : out(v)) {
      if (keep[w] != 0) {
        sub.add_edge(v, w);
      }
    }
  }
  sub.finalize();
  return sub;
}

}  // namespace genoc
