/// \file reach.hpp
/// \brief Reachability queries on directed graphs.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace genoc {

/// Vertices reachable from \p source (including source itself), as a mask.
std::vector<bool> reachable_from(const Digraph& graph, std::size_t source);

/// True iff \p target is reachable from \p source (BFS, O(V + E)).
bool is_reachable(const Digraph& graph, std::size_t source, std::size_t target);

/// A shortest path (by hop count) from source to target, empty if none.
/// The returned sequence starts with source and ends with target.
std::vector<std::size_t> shortest_path(const Digraph& graph,
                                       std::size_t source, std::size_t target);

}  // namespace genoc
