/// \file reach.hpp
/// \brief Reachability queries on directed graphs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace genoc {

/// Vertices reachable from \p source (including source itself), as a flat
/// 0/1 mask. std::vector<std::uint8_t> rather than std::vector<bool>: the
/// byte-per-vertex layout plus an index-based frontier is the same
/// constant-factor pattern the per-destination route sweeps use, and it
/// avoids the proxy-reference bit fiddling on the BFS hot path. The mask
/// feeds Digraph::induced() directly (same byte-mask convention).
std::vector<std::uint8_t> reachable_from(const Digraph& graph,
                                         std::size_t source);

/// True iff \p target is reachable from \p source (BFS, O(V + E)).
bool is_reachable(const Digraph& graph, std::size_t source, std::size_t target);

/// A shortest path (by hop count) from source to target, empty if none.
/// The returned sequence starts with source and ends with target.
std::vector<std::size_t> shortest_path(const Digraph& graph,
                                       std::size_t source, std::size_t target);

}  // namespace genoc
