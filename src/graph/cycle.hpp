/// \file cycle.hpp
/// \brief Cycle detection with explicit witnesses.
///
/// Theorem 1 of the paper states that a routing function is deadlock-free iff
/// its port dependency graph has no cycle. Constraint (C-3) is therefore a
/// cycle search; this module provides the linear-time DFS search the paper's
/// Section VII refers to, returning the cycle itself so that the witness
/// construction (cycle -> concrete deadlock configuration) can run on it.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace genoc {

class ThreadPool;

/// A cycle witness: the vertex sequence v0 -> v1 -> ... -> vk -> v0.
/// The closing edge back to front() is implicit (not repeated).
using CycleWitness = std::vector<std::size_t>;

/// Finds some cycle via iterative DFS (white/grey/black colouring).
/// Returns std::nullopt iff the graph is acyclic. O(V + E).
std::optional<CycleWitness> find_cycle(const Digraph& graph);

/// Pool-aware acyclicity-with-witness: with a \p pool, decides acyclicity
/// through the parallel SCC decomposition first and only runs the witness
/// DFS on cyclic graphs; without one it is plain find_cycle(). Either way
/// the returned witness is find_cycle()'s — identical at every thread
/// count — so callers get one deterministic (C-3) artifact regardless of
/// execution mode.
std::optional<CycleWitness> find_cycle(const Digraph& graph, ThreadPool* pool);

/// Verifies that \p cycle is a genuine cycle of \p graph: non-empty, every
/// consecutive pair (and the closing pair) is an edge, vertices distinct.
bool is_valid_cycle(const Digraph& graph, const CycleWitness& cycle);

/// Convenience: true iff the graph contains no cycle.
bool is_acyclic(const Digraph& graph);

}  // namespace genoc
