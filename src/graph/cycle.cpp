#include "graph/cycle.hpp"

#include <algorithm>

#include "graph/tarjan.hpp"
#include "util/require.hpp"

namespace genoc {

namespace {
enum class Colour : unsigned char { kWhite, kGrey, kBlack };
}  // namespace

std::optional<CycleWitness> find_cycle(const Digraph& graph) {
  GENOC_REQUIRE(graph.finalized(), "find_cycle requires a finalized graph");
  const std::size_t n = graph.vertex_count();
  std::vector<Colour> colour(n, Colour::kWhite);

  // Iterative DFS keeping the grey path explicitly so the cycle can be
  // reconstructed without parent pointers.
  struct Frame {
    std::size_t vertex;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  std::vector<std::size_t> path;  // grey vertices, in DFS order
  std::vector<std::size_t> pos_in_path(n, 0);

  for (std::size_t root = 0; root < n; ++root) {
    if (colour[root] != Colour::kWhite) {
      continue;
    }
    stack.push_back({root, 0});
    colour[root] = Colour::kGrey;
    pos_in_path[root] = path.size();
    path.push_back(root);

    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto succ = graph.out(frame.vertex);
      if (frame.next_child < succ.size()) {
        const std::size_t child = succ[frame.next_child++];
        if (colour[child] == Colour::kGrey) {
          // Found a back edge: the cycle is the grey path suffix from child.
          CycleWitness cycle(path.begin() +
                                 static_cast<std::ptrdiff_t>(pos_in_path[child]),
                             path.end());
          return cycle;
        }
        if (colour[child] == Colour::kWhite) {
          colour[child] = Colour::kGrey;
          pos_in_path[child] = path.size();
          path.push_back(child);
          stack.push_back({child, 0});
        }
      } else {
        colour[frame.vertex] = Colour::kBlack;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

bool is_valid_cycle(const Digraph& graph, const CycleWitness& cycle) {
  if (!graph.finalized() || cycle.empty()) {
    return false;
  }
  for (std::size_t v : cycle) {
    if (v >= graph.vertex_count()) {
      return false;
    }
  }
  // Distinctness.
  CycleWitness sorted = cycle;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return false;
  }
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const std::size_t from = cycle[i];
    const std::size_t to = cycle[(i + 1) % cycle.size()];
    if (!graph.has_edge(from, to)) {
      return false;
    }
  }
  return true;
}

std::optional<CycleWitness> find_cycle(const Digraph& graph,
                                       ThreadPool* pool) {
  if (pool != nullptr) {
    if (!has_nontrivial_scc(graph, *pool)) {
      return std::nullopt;
    }
  }
  return find_cycle(graph);
}

bool is_acyclic(const Digraph& graph) { return !find_cycle(graph).has_value(); }

}  // namespace genoc
