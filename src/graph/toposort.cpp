#include "graph/toposort.hpp"

#include <algorithm>
#include <queue>

#include "util/require.hpp"

namespace genoc {

std::optional<std::vector<std::size_t>> topological_order(
    const Digraph& graph) {
  GENOC_REQUIRE(graph.finalized(),
                "topological_order requires a finalized graph");
  const std::size_t n = graph.vertex_count();
  std::vector<std::size_t> in_degree(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::uint32_t w : graph.out(v)) {
      ++in_degree[w];
    }
  }
  // Min-heap on vertex id for deterministic output.
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      ready;
  for (std::size_t v = 0; v < n; ++v) {
    if (in_degree[v] == 0) {
      ready.push(v);
    }
  }
  std::vector<std::size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t v = ready.top();
    ready.pop();
    order.push_back(v);
    for (std::uint32_t w : graph.out(v)) {
      if (--in_degree[w] == 0) {
        ready.push(w);
      }
    }
  }
  if (order.size() != n) {
    return std::nullopt;  // a cycle prevented completion
  }
  return order;
}

std::optional<std::vector<std::size_t>> longest_path_ranks(
    const Digraph& graph) {
  const auto order = topological_order(graph);
  if (!order) {
    return std::nullopt;
  }
  std::vector<std::size_t> rank(graph.vertex_count(), 0);
  for (const std::size_t v : *order) {
    for (std::uint32_t w : graph.out(v)) {
      rank[w] = std::max(rank[w], rank[v] + 1);
    }
  }
  return rank;
}

bool verify_rank_certificate(const Digraph& graph,
                             const std::vector<std::int64_t>& rank) {
  return !find_rank_violation(graph, rank).has_value();
}

std::optional<std::pair<std::size_t, std::size_t>> find_rank_violation(
    const Digraph& graph, const std::vector<std::int64_t>& rank) {
  GENOC_REQUIRE(graph.finalized(),
                "rank verification requires a finalized graph");
  GENOC_REQUIRE(rank.size() == graph.vertex_count(),
                "rank vector size must equal vertex count");
  for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
    for (std::uint32_t w : graph.out(v)) {
      if (!(rank[v] < rank[w])) {
        return std::make_pair(v, static_cast<std::size_t>(w));
      }
    }
  }
  return std::nullopt;
}

}  // namespace genoc
