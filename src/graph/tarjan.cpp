#include "graph/tarjan.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <string>

#include "obs/trace.hpp"
#include "util/require.hpp"
#include "util/thread_pool.hpp"

namespace genoc {

SccResult tarjan_scc(const Digraph& graph) {
  GENOC_REQUIRE(graph.finalized(), "tarjan_scc requires a finalized graph");
  const std::size_t n = graph.vertex_count();
  constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();

  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> scc_stack;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t vertex;
    std::size_t next_child;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) {
      continue;
    }
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t v = frame.vertex;
      const auto succ = graph.out(v);
      if (frame.next_child < succ.size()) {
        const std::size_t w = succ[frame.next_child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          std::vector<std::size_t> comp;
          for (;;) {
            const std::size_t w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.components.size();
            comp.push_back(w);
            if (w == v) {
              break;
            }
          }
          std::sort(comp.begin(), comp.end());
          result.components.push_back(std::move(comp));
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const std::size_t parent = call_stack.back().vertex;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return result;
}

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

/// Reverse adjacency in CSR form, built by counting sort (no comparison
/// sort — reversed() would pay an O(E log E) finalize).
struct ReverseAdj {
  std::vector<std::uint32_t> offsets;  // size n + 1
  std::vector<std::uint32_t> sources;

  explicit ReverseAdj(const Digraph& graph) {
    const std::size_t n = graph.vertex_count();
    offsets.assign(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::uint32_t w : graph.out(v)) {
        ++offsets[w + 1];
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      offsets[v + 1] += offsets[v];
    }
    sources.resize(graph.edge_count());
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::uint32_t w : graph.out(v)) {
        sources[cursor[w]++] = static_cast<std::uint32_t>(v);
      }
    }
  }

  std::span<const std::uint32_t> in(std::size_t v) const {
    return {sources.data() + offsets[v],
            static_cast<std::size_t>(offsets[v + 1] - offsets[v])};
  }
};

/// Shared scratch of one parallel_scc run. The per-vertex arrays are
/// written without locks: the trim phase runs before the pool fans out,
/// and afterwards every vertex belongs to exactly one weakly-connected
/// bucket, so tasks touch disjoint entries. Tokens (region labels and
/// reachability stamps) come from one atomic counter, so no two uses ever
/// collide.
struct SccScratch {
  const Digraph* graph = nullptr;
  const ReverseAdj* rev = nullptr;
  std::vector<std::uint32_t> region;   // current FW-BW region label
  std::vector<std::uint32_t> fwstamp;  // forward-reachable stamp
  std::vector<std::uint32_t> bwstamp;  // backward-reachable stamp
  std::vector<std::size_t> index;      // Tarjan DFS numbers
  std::vector<std::size_t> lowlink;
  std::vector<std::uint8_t> on_stack;
  std::atomic<std::uint32_t> next_token{1};

  explicit SccScratch(const Digraph& g, const ReverseAdj& r)
      : graph(&g),
        rev(&r),
        region(g.vertex_count(), 0),
        fwstamp(g.vertex_count(), 0),
        bwstamp(g.vertex_count(), 0),
        index(g.vertex_count(), kNone),
        lowlink(g.vertex_count(), 0),
        on_stack(g.vertex_count(), 0) {}

  std::uint32_t token() {
    return next_token.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Iterative Tarjan restricted to the vertices labelled \p rid, appending
/// each SCC (sorted) to *out.
void tarjan_region(SccScratch& s, const std::vector<std::uint32_t>& verts,
                   std::uint32_t rid,
                   std::vector<std::vector<std::size_t>>* out) {
  const Digraph& graph = *s.graph;
  struct Frame {
    std::size_t vertex;
    std::size_t next_child;
  };
  std::vector<Frame> call_stack;
  std::vector<std::size_t> scc_stack;
  std::size_t next_index = 0;

  for (const std::uint32_t root : verts) {
    if (s.index[root] != kNone) {
      continue;
    }
    call_stack.push_back({root, 0});
    s.index[root] = s.lowlink[root] = next_index++;
    scc_stack.push_back(root);
    s.on_stack[root] = 1;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t v = frame.vertex;
      const auto succ = graph.out(v);
      if (frame.next_child < succ.size()) {
        const std::size_t w = succ[frame.next_child++];
        if (s.region[w] != rid) {
          continue;  // trimmed vertex or another FW-BW sub-region
        }
        if (s.index[w] == kNone) {
          s.index[w] = s.lowlink[w] = next_index++;
          scc_stack.push_back(w);
          s.on_stack[w] = 1;
          call_stack.push_back({w, 0});
        } else if (s.on_stack[w] != 0) {
          s.lowlink[v] = std::min(s.lowlink[v], s.index[w]);
        }
      } else {
        if (s.lowlink[v] == s.index[v]) {
          std::vector<std::size_t> comp;
          for (;;) {
            const std::size_t w = scc_stack.back();
            scc_stack.pop_back();
            s.on_stack[w] = 0;
            comp.push_back(w);
            if (w == v) {
              break;
            }
          }
          std::sort(comp.begin(), comp.end());
          out->push_back(std::move(comp));
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const std::size_t parent = call_stack.back().vertex;
          s.lowlink[parent] = std::min(s.lowlink[parent], s.lowlink[v]);
        }
      }
    }
  }
}

/// Forward-backward reachability coloring on one weakly-connected bucket:
/// the pivot's forward ∩ backward reach is an SCC; the three remaining
/// parts recurse. Median-by-id pivots keep chain-shaped regions balanced;
/// past kMaxDepth (or below kFwbwMin) the region falls back to Tarjan.
void fwbw_region(SccScratch& s, std::vector<std::uint32_t> verts,
                 std::uint32_t rid,
                 std::vector<std::vector<std::size_t>>* out) {
  constexpr std::size_t kFwbwMin = 2048;
  constexpr int kMaxDepth = 64;

  struct Region {
    std::vector<std::uint32_t> verts;
    std::uint32_t rid;
    int depth;
  };
  std::vector<Region> work;
  work.push_back({std::move(verts), rid, 0});
  std::vector<std::uint32_t> queue;

  while (!work.empty()) {
    Region region = std::move(work.back());
    work.pop_back();
    if (region.verts.size() < kFwbwMin || region.depth > kMaxDepth) {
      tarjan_region(s, region.verts, region.rid, out);
      continue;
    }
    // Median-by-id pivot: for chain-like DAG-of-SCCs shapes this splits
    // the region near the middle instead of peeling one SCC per level.
    const std::size_t mid = region.verts.size() / 2;
    std::nth_element(region.verts.begin(), region.verts.begin() + mid,
                     region.verts.end());
    const std::uint32_t pivot = region.verts[mid];

    const std::uint32_t ftoken = s.token();
    queue.clear();
    s.fwstamp[pivot] = ftoken;
    queue.push_back(pivot);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const std::uint32_t w : s.graph->out(queue[head])) {
        if (s.region[w] == region.rid && s.fwstamp[w] != ftoken) {
          s.fwstamp[w] = ftoken;
          queue.push_back(w);
        }
      }
    }
    const std::uint32_t btoken = s.token();
    queue.clear();
    s.bwstamp[pivot] = btoken;
    queue.push_back(pivot);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const std::uint32_t w : s.rev->in(queue[head])) {
        if (s.region[w] == region.rid && s.bwstamp[w] != btoken) {
          s.bwstamp[w] = btoken;
          queue.push_back(w);
        }
      }
    }

    std::vector<std::size_t> scc;
    Region fw_only{{}, s.token(), region.depth + 1};
    Region bw_only{{}, s.token(), region.depth + 1};
    Region rest{{}, s.token(), region.depth + 1};
    for (const std::uint32_t v : region.verts) {
      const bool in_fw = s.fwstamp[v] == ftoken;
      const bool in_bw = s.bwstamp[v] == btoken;
      if (in_fw && in_bw) {
        scc.push_back(v);
      } else if (in_fw) {
        s.region[v] = fw_only.rid;
        fw_only.verts.push_back(v);
      } else if (in_bw) {
        s.region[v] = bw_only.rid;
        bw_only.verts.push_back(v);
      } else {
        s.region[v] = rest.rid;
        rest.verts.push_back(v);
      }
    }
    std::sort(scc.begin(), scc.end());
    out->push_back(std::move(scc));
    for (Region* part : {&fw_only, &bw_only, &rest}) {
      if (!part->verts.empty()) {
        work.push_back(std::move(*part));
      }
    }
  }
}

/// One level-synchronous Kahn peel over \p pool: every vertex whose live
/// degree (out-degree when \p forward, else in-degree over live sources)
/// reaches zero is trimmed. Each Kahn frontier round decrements degrees
/// with a SHARDED pass over the current frontier instead of the classic
/// single-threaded worklist walk: a vertex enters the next frontier exactly
/// when its atomic degree makes the 1 -> 0 transition, so no vertex is
/// trimmed twice and no locks are needed. Already-dead vertices sit at
/// degree 0 and merely wrap around (defined for unsigned), never
/// re-entering a frontier. Trimmed vertices are appended to *trimmed and
/// their alive flag cleared (each vertex is written by exactly one chunk).
void trim_peel_parallel(const Digraph& graph, const ReverseAdj& rev,
                        ThreadPool& pool, bool forward,
                        std::vector<std::uint8_t>& alive,
                        std::vector<std::uint32_t>* trimmed) {
  obs::TraceSpan peel_span(forward ? "trim_peel_forward"
                                   : "trim_peel_backward");
  const std::size_t n = graph.vertex_count();
  std::vector<std::atomic<std::uint32_t>> deg(n);

  // Degree census + initial frontier, sharded over the vertex range. Only
  // edges between live vertices count: a forward peel at entry sees every
  // vertex alive (out_degree is exact), the backward peel must ignore the
  // vertices the forward peel already stripped.
  const std::size_t census_grain = pool.recommended_grain(n);
  std::vector<std::vector<std::uint32_t>> seeds(
      (n + census_grain - 1) / census_grain);
  {
    obs::TraceSpan census_span("trim_census");
    pool.parallel_for(n, census_grain,
                      [&](std::size_t begin, std::size_t end) {
      auto& local = seeds[begin / census_grain];
      for (std::size_t v = begin; v < end; ++v) {
        if (alive[v] == 0) {
          deg[v].store(0, std::memory_order_relaxed);
          continue;
        }
        std::uint32_t d = 0;
        if (forward) {
          d = static_cast<std::uint32_t>(graph.out_degree(v));
        } else {
          for (const std::uint32_t u : rev.in(v)) {
            if (alive[u] != 0) {
              ++d;
            }
          }
        }
        deg[v].store(d, std::memory_order_relaxed);
        if (d == 0) {
          local.push_back(static_cast<std::uint32_t>(v));
        }
      }
    });
  }
  std::vector<std::uint32_t> frontier;
  for (const auto& local : seeds) {
    frontier.insert(frontier.end(), local.begin(), local.end());
  }

  // Kahn rounds: each round retires the whole current frontier and collects
  // the vertices its decrements drove to zero. The barrier between rounds
  // is parallel_for's own completion — level-synchronous by construction.
  while (!frontier.empty()) {
    obs::TraceSpan round_span("trim_round");
    if (round_span.active()) {
      round_span.set_detail("frontier " + std::to_string(frontier.size()));
    }
    const std::size_t grain = pool.recommended_grain(frontier.size(), 4);
    const std::size_t shard_total = (frontier.size() + grain - 1) / grain;
    std::vector<std::vector<std::uint32_t>> next(shard_total);
    pool.parallel_for(
        frontier.size(), grain, [&](std::size_t begin, std::size_t end) {
          auto& local = next[begin / grain];
          for (std::size_t i = begin; i < end; ++i) {
            const std::uint32_t v = frontier[i];
            alive[v] = 0;
            const auto neighbours = forward ? rev.in(v) : graph.out(v);
            for (const std::uint32_t u : neighbours) {
              if (deg[u].fetch_sub(1, std::memory_order_acq_rel) == 1) {
                local.push_back(u);
              }
            }
          }
        });
    trimmed->insert(trimmed->end(), frontier.begin(), frontier.end());
    frontier.clear();
    for (auto& local : next) {
      frontier.insert(frontier.end(), local.begin(), local.end());
    }
  }
}

/// The classic sequential dual peel (out-degree side, then in-degree side)
/// — still the fastest shape for small graphs, and the oracle the parallel
/// rounds must agree with.
void trim_peel_sequential(const Digraph& graph, const ReverseAdj& rev,
                          std::vector<std::uint8_t>& alive,
                          std::vector<std::uint32_t>* trimmed) {
  const std::size_t n = graph.vertex_count();
  std::vector<std::uint32_t> deg(n);
  std::vector<std::uint32_t> peel;
  for (std::size_t v = 0; v < n; ++v) {
    deg[v] = static_cast<std::uint32_t>(graph.out_degree(v));
    if (deg[v] == 0) {
      peel.push_back(static_cast<std::uint32_t>(v));
    }
  }
  for (std::size_t head = 0; head < peel.size(); ++head) {
    const std::uint32_t v = peel[head];
    alive[v] = 0;
    trimmed->push_back(v);
    for (const std::uint32_t u : rev.in(v)) {
      if (alive[u] != 0 && --deg[u] == 0) {
        peel.push_back(u);
      }
    }
  }
  std::fill(deg.begin(), deg.end(), 0);
  peel.clear();
  for (std::size_t v = 0; v < n; ++v) {
    if (alive[v] == 0) {
      continue;
    }
    for (const std::uint32_t w : graph.out(v)) {
      if (alive[w] != 0) {
        ++deg[w];
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (alive[v] != 0 && deg[v] == 0) {
      peel.push_back(static_cast<std::uint32_t>(v));
    }
  }
  for (std::size_t head = 0; head < peel.size(); ++head) {
    const std::uint32_t v = peel[head];
    alive[v] = 0;
    trimmed->push_back(v);
    for (const std::uint32_t w : graph.out(v)) {
      if (alive[w] != 0 && --deg[w] == 0) {
        peel.push_back(w);
      }
    }
  }
}

/// Below this vertex count the parallel trim's per-round parallel_for and
/// atomic census cost more than the whole sequential peel.
constexpr std::size_t kParallelTrimMin = 1 << 14;

}  // namespace

SccResult parallel_scc(const Digraph& graph, ThreadPool& pool) {
  obs::TraceSpan span("parallel_scc");
  GENOC_REQUIRE(graph.finalized(), "parallel_scc requires a finalized graph");
  const std::size_t n = graph.vertex_count();
  SccResult result;
  result.component.assign(n, kNone);
  if (n == 0) {
    return result;
  }
  const ReverseAdj rev(graph);
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<std::vector<std::size_t>> comps;

  // Stage 1 — TRIM. A vertex whose live out-degree (then: in-degree) hits
  // zero cannot lie on a cycle: it is a singleton SCC. Self-loops keep
  // their vertex's degree positive, so they survive to the Tarjan stage.
  // Every trimmed vertex is a singleton component regardless of the order
  // it peeled in, so the level-synchronous rounds and the sequential
  // worklist produce the same decomposition (ids are canonicalized below).
  {
    obs::TraceSpan trim_span("scc_trim");
    std::vector<std::uint32_t> trimmed;
    trimmed.reserve(n);
    if (pool.thread_count() > 1 && n >= kParallelTrimMin) {
      trim_peel_parallel(graph, rev, pool, /*forward=*/true, alive, &trimmed);
      trim_peel_parallel(graph, rev, pool, /*forward=*/false, alive, &trimmed);
    } else {
      trim_peel_sequential(graph, rev, alive, &trimmed);
    }
    for (const std::uint32_t v : trimmed) {
      comps.push_back({v});
    }
  }

  // Stage 2 — weakly-connected buckets of the cyclic remainder (no edge
  // between live vertices crosses a bucket, so stage 3's shards write
  // disjoint scratch entries).
  std::vector<std::vector<std::uint32_t>> buckets;
  {
    obs::TraceSpan bucket_span("scc_wcc_buckets");
    std::vector<std::uint32_t> parent(n);
    for (std::size_t v = 0; v < n; ++v) {
      parent[v] = static_cast<std::uint32_t>(v);
    }
    auto find = [&parent](std::uint32_t v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];  // path halving
        v = parent[v];
      }
      return v;
    };
    for (std::size_t v = 0; v < n; ++v) {
      if (alive[v] == 0) {
        continue;
      }
      for (const std::uint32_t w : graph.out(v)) {
        if (alive[w] != 0) {
          const std::uint32_t a = find(static_cast<std::uint32_t>(v));
          const std::uint32_t b = find(w);
          if (a != b) {
            parent[std::max(a, b)] = std::min(a, b);
          }
        }
      }
    }
    std::vector<std::uint32_t> bucket_of(n,
                                         std::numeric_limits<std::uint32_t>::max());
    for (std::size_t v = 0; v < n; ++v) {
      if (alive[v] == 0) {
        continue;
      }
      const std::uint32_t root = find(static_cast<std::uint32_t>(v));
      if (bucket_of[root] == std::numeric_limits<std::uint32_t>::max()) {
        bucket_of[root] = static_cast<std::uint32_t>(buckets.size());
        buckets.emplace_back();
      }
      buckets[bucket_of[root]].push_back(static_cast<std::uint32_t>(v));
    }
  }

  // Stage 3 — per-bucket SCCs on the pool.
  std::vector<std::vector<std::vector<std::size_t>>> bucket_comps(
      buckets.size());
  if (!buckets.empty()) {
    SccScratch scratch(graph, rev);
    constexpr std::size_t kFwbwBucket = 4096;
    pool.parallel_for(
        buckets.size(), 1, [&](std::size_t begin, std::size_t end) {
          for (std::size_t b = begin; b < end; ++b) {
            obs::TraceSpan bucket_span("scc_bucket");
            if (bucket_span.active()) {
              bucket_span.set_detail(
                  "bucket " + std::to_string(b) + ", " +
                  std::to_string(buckets[b].size()) + " vertices");
            }
            const std::uint32_t rid = scratch.token();
            for (const std::uint32_t v : buckets[b]) {
              scratch.region[v] = rid;
            }
            if (buckets[b].size() >= kFwbwBucket) {
              fwbw_region(scratch, buckets[b], rid, &bucket_comps[b]);
            } else {
              tarjan_region(scratch, buckets[b], rid, &bucket_comps[b]);
            }
          }
        });
  }
  for (auto& list : bucket_comps) {
    for (auto& comp : list) {
      comps.push_back(std::move(comp));
    }
  }

  // Canonical ids: components ordered by their smallest vertex, so every
  // thread count produces the identical SccResult.
  std::sort(comps.begin(), comps.end(),
            [](const std::vector<std::size_t>& a,
               const std::vector<std::size_t>& b) {
              return a.front() < b.front();
            });
  for (std::size_t i = 0; i < comps.size(); ++i) {
    for (const std::size_t v : comps[i]) {
      result.component[v] = i;
    }
  }
  result.components = std::move(comps);
  return result;
}

bool has_nontrivial_scc(const Digraph& graph, ThreadPool& pool) {
  const SccResult scc = parallel_scc(graph, pool);
  for (const auto& comp : scc.components) {
    if (comp.size() >= 2 || graph.has_edge(comp.front(), comp.front())) {
      return true;
    }
  }
  return false;
}

bool has_nontrivial_scc(const Digraph& graph) {
  const SccResult scc = tarjan_scc(graph);
  for (const auto& comp : scc.components) {
    if (comp.size() >= 2) {
      return true;
    }
    if (graph.has_edge(comp.front(), comp.front())) {
      return true;  // self-loop
    }
  }
  return false;
}

Digraph condensation(const Digraph& graph, const SccResult& scc) {
  GENOC_REQUIRE(scc.component.size() == graph.vertex_count(),
                "SCC result does not match graph");
  Digraph dag(scc.components.size());
  for (const auto& [from, to] : graph.edges()) {
    const std::size_t cf = scc.component[from];
    const std::size_t ct = scc.component[to];
    if (cf != ct) {
      dag.add_edge(cf, ct);
    }
  }
  dag.finalize();
  return dag;
}

}  // namespace genoc
