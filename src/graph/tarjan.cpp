#include "graph/tarjan.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace genoc {

SccResult tarjan_scc(const Digraph& graph) {
  GENOC_REQUIRE(graph.finalized(), "tarjan_scc requires a finalized graph");
  const std::size_t n = graph.vertex_count();
  constexpr std::size_t kUnvisited = std::numeric_limits<std::size_t>::max();

  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> scc_stack;
  std::size_t next_index = 0;

  struct Frame {
    std::size_t vertex;
    std::size_t next_child;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) {
      continue;
    }
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::size_t v = frame.vertex;
      const auto succ = graph.out(v);
      if (frame.next_child < succ.size()) {
        const std::size_t w = succ[frame.next_child++];
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          std::vector<std::size_t> comp;
          for (;;) {
            const std::size_t w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.components.size();
            comp.push_back(w);
            if (w == v) {
              break;
            }
          }
          std::sort(comp.begin(), comp.end());
          result.components.push_back(std::move(comp));
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const std::size_t parent = call_stack.back().vertex;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return result;
}

bool has_nontrivial_scc(const Digraph& graph) {
  const SccResult scc = tarjan_scc(graph);
  for (const auto& comp : scc.components) {
    if (comp.size() >= 2) {
      return true;
    }
    if (graph.has_edge(comp.front(), comp.front())) {
      return true;  // self-loop
    }
  }
  return false;
}

Digraph condensation(const Digraph& graph, const SccResult& scc) {
  GENOC_REQUIRE(scc.component.size() == graph.vertex_count(),
                "SCC result does not match graph");
  Digraph dag(scc.components.size());
  for (const auto& [from, to] : graph.edges()) {
    const std::size_t cf = scc.component[from];
    const std::size_t ct = scc.component[to];
    if (cf != ct) {
      dag.add_edge(cf, ct);
    }
  }
  dag.finalize();
  return dag;
}

}  // namespace genoc
