/// \file johnson.hpp
/// \brief Bounded enumeration of simple cycles (Johnson's algorithm).
///
/// Theorem 1's sufficiency direction turns *each* dependency-graph cycle into
/// a distinct deadlock configuration. Enumerating several cycles (rather than
/// finding just one) lets tests and the adaptive-routing ablation construct
/// multiple independent deadlock witnesses and report how many distinct
/// cyclic dependencies a routing function exhibits.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/cycle.hpp"
#include "graph/digraph.hpp"

namespace genoc {

/// Enumerates simple cycles of \p graph with Johnson's algorithm, stopping
/// after \p max_cycles cycles (the enumeration can be exponential in full).
/// Each returned cycle satisfies is_valid_cycle(). Deterministic order.
std::vector<CycleWitness> enumerate_cycles(const Digraph& graph,
                                           std::size_t max_cycles);

/// Counts simple cycles up to \p max_cycles (saturating).
std::size_t count_cycles(const Digraph& graph, std::size_t max_cycles);

}  // namespace genoc
