/// \file digraph.hpp
/// \brief Directed-graph substrate underlying every dependency-graph analysis
///        in the library (port dependency graphs, channel dependency graphs,
///        SCC condensations).
///
/// The paper reduces deadlock-freedom to acyclicity of a port dependency
/// graph (Theorem 1) and notes that on concrete instances "a simple search
/// for a cycle suffices … in linear time". Digraph stores edges in
/// compressed-sparse-row form after a build phase, so all algorithms in this
/// module run in O(V + E).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace genoc {

/// A directed graph over vertices 0..n-1 with a two-phase lifecycle:
/// add_edge() while mutable, then finalize() freezes it into CSR form.
/// Algorithms require a finalized graph. Parallel edges are coalesced by
/// finalize(); self-loops are kept (they are genuine 1-cycles).
class Digraph {
 public:
  /// Creates a graph with \p vertex_count vertices and no edges.
  explicit Digraph(std::size_t vertex_count = 0);

  /// Number of vertices.
  std::size_t vertex_count() const { return vertex_count_; }

  /// Number of (distinct) edges. Before finalize(), counts raw insertions.
  std::size_t edge_count() const;

  /// Adds edge from -> to. Requires both endpoints in range and the graph
  /// not yet finalized.
  void add_edge(std::size_t from, std::size_t to);

  /// Reserves capacity for \p edge_count insertions, so bulk builders (the
  /// dependency-graph sweeps, shard merges) avoid reallocation churn.
  /// Requires the graph not yet finalized.
  void reserve_edges(std::size_t edge_count);

  /// Freezes the graph: sorts adjacency, removes duplicate edges, and builds
  /// the CSR arrays. Idempotent.
  void finalize();

  /// True once finalize() has run.
  bool finalized() const { return finalized_; }

  /// Successors of \p v in ascending order. Requires finalized().
  std::span<const std::uint32_t> out(std::size_t v) const;

  /// Out-degree of \p v. Requires finalized().
  std::size_t out_degree(std::size_t v) const;

  /// True if edge (from, to) exists. Requires finalized(). O(log deg).
  bool has_edge(std::size_t from, std::size_t to) const;

  /// All edges as (from, to) pairs in CSR order. Requires finalized().
  std::vector<std::pair<std::size_t, std::size_t>> edges() const;

  /// The reverse graph (finalized). Requires finalized().
  Digraph reversed() const;

  /// The subgraph induced by \p keep (keep[v] != 0 retains v); vertex ids
  /// are preserved, edges touching dropped vertices are removed. Finalized.
  /// Byte-mask like reachable_from() returns — no vector<bool> proxy
  /// references on the hot path, and callers compose the two directly.
  Digraph induced(const std::vector<std::uint8_t>& keep) const;

 private:
  std::size_t vertex_count_ = 0;
  bool finalized_ = false;
  // Build phase: raw edge list. Frozen phase: CSR.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> build_edges_;
  std::vector<std::uint32_t> offsets_;  // size vertex_count_ + 1
  std::vector<std::uint32_t> targets_;
};

}  // namespace genoc
