/// \file tarjan.hpp
/// \brief Tarjan strongly-connected-components, used by the Taktak-style
///        adaptive-routing deadlock detector (paper Sec. VIII) and as an
///        alternative (C-3) discharge strategy.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace genoc {

class ThreadPool;

/// Result of an SCC decomposition.
struct SccResult {
  /// component[v] = id of v's SCC; ids are in reverse topological order
  /// (an edge u->v between different SCCs implies component[u] < ... is NOT
  /// guaranteed; use condensation() for ordering needs).
  std::vector<std::size_t> component;
  /// components[i] = the vertices of SCC i.
  std::vector<std::vector<std::size_t>> components;
};

/// Computes the SCCs of \p graph with Tarjan's algorithm (iterative,
/// O(V + E)). Requires a finalized graph.
SccResult tarjan_scc(const Digraph& graph);

/// True iff some SCC is "non-trivial": it has >= 2 vertices, or is a single
/// vertex with a self-loop. A digraph has a cycle iff this holds.
bool has_nontrivial_scc(const Digraph& graph);

/// Parallel SCC decomposition for the large dependency graphs the
/// per-destination builders unlock (64x64+). Three stages:
///
///   1. TRIM: Kahn-style peels from the zero-out-degree and then the
///      zero-in-degree side strip every vertex that cannot lie on a cycle
///      (for an acyclic graph this is the whole decomposition), O(V + E).
///      Above a size threshold the peels run LEVEL-SYNCHRONOUSLY: each
///      Kahn frontier round is a sharded atomic degree-decrement pass over
///      \p pool instead of a single-threaded worklist walk, so the trim —
///      formerly the sequential prefix of every large acyclic
///      verification — scales with the pool too.
///   2. The cyclic remainder splits into weakly-connected components,
///      sharded across \p pool.
///   3. Each component runs iterative Tarjan; components too large for one
///      task go through forward-backward reachability coloring
///      (Fleischer-Hendrickson-Pinar) with a median-id pivot, falling back
///      to Tarjan past a recursion-depth guard.
///
/// The partition equals tarjan_scc()'s. Component ids are CANONICAL —
/// assigned in increasing order of each component's smallest vertex — so
/// the result is identical for every thread count (tarjan_scc's ids are
/// DFS-order instead; compare partitions up to relabeling).
SccResult parallel_scc(const Digraph& graph, ThreadPool& pool);

/// True iff some SCC is non-trivial, decided on \p pool.
bool has_nontrivial_scc(const Digraph& graph, ThreadPool& pool);

/// The condensation: one vertex per SCC of \p graph, with an edge between
/// distinct components whenever some original edge crosses them. Always a
/// DAG.
Digraph condensation(const Digraph& graph, const SccResult& scc);

}  // namespace genoc
