/// \file tarjan.hpp
/// \brief Tarjan strongly-connected-components, used by the Taktak-style
///        adaptive-routing deadlock detector (paper Sec. VIII) and as an
///        alternative (C-3) discharge strategy.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace genoc {

/// Result of an SCC decomposition.
struct SccResult {
  /// component[v] = id of v's SCC; ids are in reverse topological order
  /// (an edge u->v between different SCCs implies component[u] < ... is NOT
  /// guaranteed; use condensation() for ordering needs).
  std::vector<std::size_t> component;
  /// components[i] = the vertices of SCC i.
  std::vector<std::vector<std::size_t>> components;
};

/// Computes the SCCs of \p graph with Tarjan's algorithm (iterative,
/// O(V + E)). Requires a finalized graph.
SccResult tarjan_scc(const Digraph& graph);

/// True iff some SCC is "non-trivial": it has >= 2 vertices, or is a single
/// vertex with a self-loop. A digraph has a cycle iff this holds.
bool has_nontrivial_scc(const Digraph& graph);

/// The condensation: one vertex per SCC of \p graph, with an edge between
/// distinct components whenever some original edge crosses them. Always a
/// DAG.
Digraph condensation(const Digraph& graph, const SccResult& scc);

}  // namespace genoc
