#include "graph/johnson.hpp"

#include <algorithm>

#include "graph/tarjan.hpp"
#include "util/require.hpp"

namespace genoc {

namespace {

/// Recursive core of Johnson's algorithm restricted to the subgraph induced
/// by vertices >= start within one SCC. Kept as an explicit class to hold the
/// blocked sets and output limit.
class JohnsonState {
 public:
  JohnsonState(const Digraph& graph, std::size_t max_cycles)
      : graph_(graph),
        max_cycles_(max_cycles),
        blocked_(graph.vertex_count(), false),
        block_map_(graph.vertex_count()) {}

  std::vector<CycleWitness> run() {
    const std::size_t n = graph_.vertex_count();
    for (std::size_t start = 0; start < n && cycles_.size() < max_cycles_;
         ++start) {
      start_ = start;
      std::fill(blocked_.begin(), blocked_.end(), false);
      for (auto& set : block_map_) {
        set.clear();
      }
      circuit(start);
    }
    return std::move(cycles_);
  }

 private:
  bool circuit(std::size_t v) {
    if (cycles_.size() >= max_cycles_) {
      return true;  // saturate: pretend we found something to unwind quickly
    }
    bool found = false;
    path_.push_back(v);
    blocked_[v] = true;
    for (std::uint32_t w : graph_.out(v)) {
      if (w < start_) {
        continue;  // only consider the subgraph induced by ids >= start_
      }
      if (w == start_) {
        cycles_.push_back(path_);
        found = true;
        if (cycles_.size() >= max_cycles_) {
          break;
        }
      } else if (!blocked_[w]) {
        if (circuit(w)) {
          found = true;
          if (cycles_.size() >= max_cycles_) {
            break;
          }
        }
      }
    }
    if (found) {
      unblock(v);
    } else {
      for (std::uint32_t w : graph_.out(v)) {
        if (w < start_) {
          continue;
        }
        auto& lst = block_map_[w];
        if (std::find(lst.begin(), lst.end(), v) == lst.end()) {
          lst.push_back(v);
        }
      }
    }
    path_.pop_back();
    return found;
  }

  void unblock(std::size_t v) {
    blocked_[v] = false;
    auto pending = std::move(block_map_[v]);
    block_map_[v].clear();
    for (std::size_t w : pending) {
      if (blocked_[w]) {
        unblock(w);
      }
    }
  }

  const Digraph& graph_;
  std::size_t max_cycles_;
  std::size_t start_ = 0;
  std::vector<bool> blocked_;
  std::vector<std::vector<std::size_t>> block_map_;
  std::vector<std::size_t> path_;
  std::vector<CycleWitness> cycles_;
};

}  // namespace

std::vector<CycleWitness> enumerate_cycles(const Digraph& graph,
                                           std::size_t max_cycles) {
  GENOC_REQUIRE(graph.finalized(),
                "enumerate_cycles requires a finalized graph");
  if (max_cycles == 0) {
    return {};
  }
  JohnsonState state(graph, max_cycles);
  return state.run();
}

std::size_t count_cycles(const Digraph& graph, std::size_t max_cycles) {
  return enumerate_cycles(graph, max_cycles).size();
}

}  // namespace genoc
