#include "topology/cmesh.hpp"

#include <vector>

#include "topology/port.hpp"
#include "util/require.hpp"

namespace genoc {

namespace {

// Cardinal name indices, mirroring the grid PortName order so cmesh masks
// read like mesh masks in a debugger.
constexpr std::size_t kEast = 0;
constexpr std::size_t kWest = 1;
constexpr std::size_t kNorth = 2;
constexpr std::size_t kSouth = 3;

}  // namespace

CMeshTopology::CMeshTopology(std::int32_t width, std::int32_t height,
                             std::uint32_t concentration)
    : width_(width), height_(height), concentration_(concentration) {
  GENOC_REQUIRE(width >= 1 && height >= 1 && width <= 512 && height <= 512,
                "cmesh dimensions must be in 1..512");
  GENOC_REQUIRE(static_cast<std::int64_t>(width) * height >= 2,
                "a cmesh needs at least two routers");
  GENOC_REQUIRE(concentration >= 1 && concentration <= 8,
                "cmesh concentration must be in 1..8");

  std::vector<std::string> names = {"E", "W", "N", "S"};
  for (std::uint32_t t = 0; t < concentration_; ++t) {
    names.push_back("T" + std::to_string(t));
  }
  const std::uint64_t terminal_mask =
      ((std::uint64_t{1} << concentration_) - 1) << 4;
  const auto nodes =
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  begin_topology(nodes, std::move(names), terminal_mask);

  // Routers enumerate row-major like the grid; cardinal ports exist iff the
  // neighbour does (no wrap), terminal ports always.
  for (std::int32_t y = 0; y < height_; ++y) {
    for (std::int32_t x = 0; x < width_; ++x) {
      const auto node = static_cast<std::size_t>(y) *
                            static_cast<std::size_t>(width_) +
                        static_cast<std::size_t>(x);
      const bool has[4] = {x + 1 < width_, x > 0, y > 0, y + 1 < height_};
      for (std::size_t name = 0; name < 4; ++name) {
        if (!has[name]) {
          continue;
        }
        add_port(node, name, Direction::kIn);
        add_port(node, name, Direction::kOut);
      }
      for (std::uint32_t t = 0; t < concentration_; ++t) {
        add_port(node, terminal_name(t), Direction::kIn);
        add_port(node, terminal_name(t), Direction::kOut);
      }
    }
  }

  // Cardinal links run to the opposite port of the neighbour router.
  for (std::int32_t y = 0; y < height_; ++y) {
    for (std::int32_t x = 0; x < width_; ++x) {
      const auto node = static_cast<std::size_t>(y) *
                            static_cast<std::size_t>(width_) +
                        static_cast<std::size_t>(x);
      const auto w = static_cast<std::size_t>(width_);
      struct Hop {
        std::size_t name;
        std::size_t neighbour;
        std::size_t back;
      };
      const Hop hops[4] = {
          {kEast, node + 1, kWest},
          {kWest, node - 1, kEast},
          {kNorth, node - w, kSouth},  // North decreases y
          {kSouth, node + w, kNorth},
      };
      for (const Hop& hop : hops) {
        const PortId out = slot_id(node, hop.name, Direction::kOut);
        if (out == kInvalidPort) {
          continue;
        }
        set_link(out, slot_id(hop.neighbour, hop.back, Direction::kIn));
      }
    }
  }
  finish_topology();
}

std::string CMeshTopology::node_label(std::size_t node) const {
  return std::to_string(router_x(node)) + "," + std::to_string(router_y(node));
}

}  // namespace genoc
