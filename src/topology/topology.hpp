/// \file topology.hpp
/// \brief The port-graph abstraction the paper's decision procedure is
///        actually defined over.
///
/// Theorem 1 and the escape-lane argument never mention meshes: they are
/// stated over an arbitrary set of ports, a routing relation and the link
/// relation between out-ports and the in-ports they drive. Topology captures
/// exactly that interface — node/port enumeration with dense PortIds, a
/// per-topology port-name table (replacing the global kPortSlotsPerNode
/// layout that hard-wired the five HERMES names), slot()-style per-node
/// lookup, link targets, and label rendering — so the sweeper, the dep-graph
/// builders, the escape analysis and the CLI can run unchanged over any
/// family. Mesh2D/Torus2D implement it bit-identically (same PortIds, same
/// dep graphs); CMeshTopology and DragonflyTopology are the first non-grid
/// clients.
///
/// Port-name tables are capped at 64 names so a routing function's per-node
/// out-port choice fits one uint64 mask (the NODE-mode sweep contract);
/// families with more radix than that still verify through the PORT-mode
/// BFS, which only needs append_next_hop_ids().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace genoc {

/// Dense index of an existing port within a Topology.
using PortId = std::uint32_t;

/// Sentinel for "no port": empty slot() entries and terminal link targets.
inline constexpr PortId kInvalidPort = 0xFFFFFFFFu;

/// Sentinel for "not a destination" in dest_index_of().
inline constexpr std::size_t kNotADestination = static_cast<std::size_t>(-1);

// Direction lives in port.hpp together with the grid Port tuple; forward
// users of this header still need it for dir_of().
enum class Direction : std::uint8_t;

/// Parameter schema of one registered topology family, for
/// `genoc list --topologies` and spec parse errors.
struct TopologyFamilyInfo {
  const char* name;
  const char* params;
  const char* summary;
};

/// The registered families, in spec-error order.
const std::vector<TopologyFamilyInfo>& topology_families();

/// True iff \p family is one of the 2D-grid families (mesh/torus/ring) the
/// Port-tuple API, the escape lanes and the simulator are defined over.
bool is_grid_family(const std::string& family);

/// An immutable port graph. Subclass constructors describe themselves
/// through begin_topology()/add_port()/set_link()/finish_topology(); all
/// queries afterwards are flat table lookups, shared by every RouteSweeper
/// over the topology instead of being rebuilt per sweeper.
///
/// Enumeration contract: ports are added node-major (all ports of node 0,
/// then node 1, ...), and within a node in name-major, direction-minor
/// order. The sweepers and the closure rely on destination ids (terminal
/// OUT ports) being ascending in node order, which this implies.
class Topology {
 public:
  virtual ~Topology() = default;

  /// Registered family name: "mesh", "torus", "ring", "cmesh", "dragonfly".
  virtual std::string family() const = 0;

  /// Human label of a node, e.g. "3,1" (grid) or "g2r0" (dragonfly).
  virtual std::string node_label(std::size_t node) const = 0;

  /// Human label of a port. The default renders "<node_label,NAME,DIR>";
  /// Mesh2D overrides it with the paper's "<x,y,P,D>" tuple so grid labels
  /// and witnesses stay bit-identical.
  virtual std::string port_label(PortId pid) const;

  std::size_t node_count() const { return node_count_; }
  std::size_t port_count() const { return port_info_.size(); }

  /// The per-topology port-name table. names().size() <= 64.
  const std::vector<std::string>& port_names() const { return names_; }
  std::size_t name_count() const { return names_.size(); }

  /// Bitmask over name indices of the terminal (injection/ejection) names —
  /// kLocal for grids, T0..T(c-1) for concentrated families.
  std::uint64_t terminal_name_mask() const { return terminal_mask_; }

  std::size_t node_of(PortId pid) const { return port_info_[pid].node; }
  std::size_t name_of(PortId pid) const { return port_info_[pid].name; }
  Direction dir_of(PortId pid) const {
    return static_cast<Direction>(port_info_[pid].dir);
  }

  /// Slots per node in the node-major, name-major, dir-minor lookup table:
  /// name_count() x 2 (the generalization of kPortSlotsPerNode).
  std::size_t slots_per_node() const { return names_.size() * 2; }

  /// Dense id of (node, name, dir), or kInvalidPort when that port does not
  /// exist. One table lookup — the hot path of every sweep.
  PortId slot_id(std::size_t node, std::size_t name, Direction dir) const {
    return slot_ids_[node * slots_per_node() + name * 2 +
                     static_cast<std::size_t>(dir)];
  }

  /// The node's slots_per_node()-wide slice of the slot table, for sweep
  /// inner loops.
  const PortId* node_slots(std::size_t node) const {
    return slot_ids_.data() + node * slots_per_node();
  }

  /// The in-port this out-port drives (next_in of the paper), or
  /// kInvalidPort for terminal out-ports (they drain into the IP core).
  PortId link_target(PortId out) const { return link_to_[out]; }

  /// The inverse link relation: the out-port whose link drives this
  /// in-port, or kInvalidPort for terminal in-ports (fed by the IP core).
  /// Node-granular reachability queries derive "was this in-port visited"
  /// from the driving out-port's selection mask through this table.
  PortId link_source(PortId in) const { return link_from_[in]; }

  /// Per-node bitmask over name indices of the OUT ports that exist —
  /// ANDed into routing masks so boundary nodes never emit off-topology.
  std::uint64_t out_exists_mask(std::size_t node) const {
    return exist_out_[node];
  }

  /// The legal travel destinations: all terminal OUT ports, ascending by id
  /// (node-major by the enumeration contract). Their position in this list
  /// is the dest_index the routing/closure layer is keyed on.
  const std::vector<PortId>& destination_ids() const { return dest_ids_; }
  std::size_t destination_count() const { return dest_ids_.size(); }
  PortId destination_id(std::size_t dest_index) const {
    return dest_ids_[dest_index];
  }

  /// dest_index of a terminal OUT port, or kNotADestination.
  std::size_t dest_index_of(PortId pid) const { return dest_index_[pid]; }

  /// The legal travel sources: all terminal IN ports, ascending by id.
  const std::vector<PortId>& source_ids() const { return source_ids_; }

 protected:
  Topology() = default;
  Topology(const Topology&) = default;
  Topology& operator=(const Topology&) = default;

  /// Starts the description: \p nodes nodes, the port-name table and the
  /// bitmask (over name indices) of the terminal names.
  void begin_topology(std::size_t nodes, std::vector<std::string> names,
                      std::uint64_t terminal_mask);

  /// Adds the port (node, name, dir) and returns its dense id. Ports must
  /// arrive node-major, name-major, dir-minor.
  PortId add_port(std::size_t node, std::size_t name, Direction dir);

  /// Declares that out-port \p out drives in-port \p in.
  void set_link(PortId out, PortId in);

  /// Seals the description: derives destination/source ids, the per-node
  /// exist masks, and validates the link relation (every non-terminal OUT
  /// port must drive an IN port).
  void finish_topology();

 private:
  struct PortInfo {
    std::uint32_t node = 0;
    std::uint8_t name = 0;
    std::uint8_t dir = 0;
  };

  std::size_t node_count_ = 0;
  std::vector<std::string> names_;
  std::uint64_t terminal_mask_ = 0;
  std::vector<PortInfo> port_info_;       // id -> (node, name, dir)
  std::vector<PortId> slot_ids_;          // slot -> id, or kInvalidPort
  std::vector<PortId> link_to_;           // out id -> in id, or kInvalidPort
  std::vector<PortId> link_from_;         // in id -> out id, or kInvalidPort
  std::vector<std::uint64_t> exist_out_;  // node -> existing OUT name bits
  std::vector<PortId> dest_ids_;          // terminal OUT ids, ascending
  std::vector<std::size_t> dest_index_;   // id -> dest index, or sentinel
  std::vector<PortId> source_ids_;        // terminal IN ids, ascending
};

}  // namespace genoc
