#include "topology/topology.hpp"

#include "topology/port.hpp"
#include "util/require.hpp"

namespace genoc {

const std::vector<TopologyFamilyInfo>& topology_families() {
  static const std::vector<TopologyFamilyInfo> kFamilies = {
      {"mesh", "size=WxH (dims 1..512, >= 2 nodes)",
       "HERMES 2D mesh, five ports per switch (paper Fig. 1)"},
      {"torus", "size=WxH (wrapped dims >= 2)",
       "2D mesh with both dimensions wrapped (dateline deadlock fixture)"},
      {"ring", "size=WxH (width >= 2)",
       "2D mesh with the x dimension wrapped"},
      {"cmesh", "size=WxH concentration=C (C in 1..8)",
       "concentrated mesh: C terminals share each router"},
      {"dragonfly", "routers=A globals=H terminals=P groups=G "
       "(A in 2..16, H/P in 1..8, G in 2..A*H+1, default A*H+1)",
       "hierarchical groups, complete local graph + global channels"},
  };
  return kFamilies;
}

bool is_grid_family(const std::string& family) {
  return family == "mesh" || family == "torus" || family == "ring";
}

std::string Topology::port_label(PortId pid) const {
  GENOC_REQUIRE(pid < port_count(), "port id out of range");
  return "<" + node_label(node_of(pid)) + "," + names_[name_of(pid)] + "," +
         direction_name(dir_of(pid)) + ">";
}

void Topology::begin_topology(std::size_t nodes,
                              std::vector<std::string> names,
                              std::uint64_t terminal_mask) {
  GENOC_REQUIRE(nodes >= 2, "a topology needs at least two nodes");
  GENOC_REQUIRE(!names.empty() && names.size() <= 64,
                "port-name table must hold 1..64 names");
  GENOC_REQUIRE(terminal_mask != 0 &&
                    (names.size() == 64 ||
                     terminal_mask < (std::uint64_t{1} << names.size())),
                "terminal mask must select port-name table entries");
  node_count_ = nodes;
  names_ = std::move(names);
  terminal_mask_ = terminal_mask;
  port_info_.clear();
  slot_ids_.assign(node_count_ * slots_per_node(), kInvalidPort);
  link_to_.clear();
}

PortId Topology::add_port(std::size_t node, std::size_t name, Direction dir) {
  GENOC_REQUIRE(node < node_count_ && name < names_.size(),
                "add_port outside the declared topology");
  const std::size_t slot =
      node * slots_per_node() + name * 2 + static_cast<std::size_t>(dir);
  GENOC_REQUIRE(slot_ids_[slot] == kInvalidPort, "duplicate port");
  if (!port_info_.empty()) {
    // Enforce the node-major, name-major, dir-minor enumeration contract
    // destination ordering (and thus dest_index stability) rests on.
    const PortInfo& prev = port_info_.back();
    const auto prev_key = (static_cast<std::uint64_t>(prev.node) << 16) |
                          (static_cast<std::uint64_t>(prev.name) << 1) |
                          prev.dir;
    const auto key = (static_cast<std::uint64_t>(node) << 16) |
                     (static_cast<std::uint64_t>(name) << 1) |
                     static_cast<std::uint64_t>(dir);
    GENOC_REQUIRE(key > prev_key,
                  "ports must be added node-major, name-major, dir-minor");
  }
  const auto pid = static_cast<PortId>(port_info_.size());
  slot_ids_[slot] = pid;
  port_info_.push_back(PortInfo{static_cast<std::uint32_t>(node),
                                static_cast<std::uint8_t>(name),
                                static_cast<std::uint8_t>(dir)});
  link_to_.push_back(kInvalidPort);
  return pid;
}

void Topology::set_link(PortId out, PortId in) {
  GENOC_REQUIRE(out < port_info_.size() && in < port_info_.size(),
                "link endpoints must be existing ports");
  GENOC_REQUIRE(dir_of(out) == Direction::kOut && dir_of(in) == Direction::kIn,
                "links run from an OUT port to an IN port");
  link_to_[out] = in;
}

void Topology::finish_topology() {
  dest_ids_.clear();
  source_ids_.clear();
  dest_index_.assign(port_info_.size(), kNotADestination);
  exist_out_.assign(node_count_, 0);
  link_from_.assign(port_info_.size(), kInvalidPort);
  for (PortId out = 0; out < port_info_.size(); ++out) {
    if (link_to_[out] != kInvalidPort) {
      link_from_[link_to_[out]] = out;
    }
  }
  for (PortId pid = 0; pid < port_info_.size(); ++pid) {
    const std::size_t name = name_of(pid);
    const bool terminal = (terminal_mask_ >> name) & 1;
    if (dir_of(pid) == Direction::kOut) {
      exist_out_[node_of(pid)] |= std::uint64_t{1} << name;
      if (terminal) {
        dest_index_[pid] = dest_ids_.size();
        dest_ids_.push_back(pid);
      } else {
        GENOC_REQUIRE(link_to_[pid] != kInvalidPort,
                      "non-terminal OUT port " + port_label(pid) +
                          " has no link target");
      }
    } else if (terminal) {
      source_ids_.push_back(pid);
    }
  }
  GENOC_REQUIRE(!dest_ids_.empty(), "topology has no terminal OUT ports");
}

}  // namespace genoc
