/// \file dragonfly.hpp
/// \brief Dragonfly: hierarchical groups of routers, complete local graph
///        inside each group, one global channel between every router pair
///        of groups (the canonical a/h/p/g parameterization).
///
/// The stress test for the Topology abstraction: port counts vary per
/// router (unused global ports do not exist, like grid edge ports), names
/// split into three classes (terminals, group-local links, globals), and
/// minimal routing is hierarchical rather than dimension-ordered. Without
/// virtual channels the local->global->local dependency chains of minimal
/// routing close cycles through the groups, so the dependency graph is
/// expected CYCLIC — the flagship negative fixture that motivates the
/// ROADMAP's VC/dateline follow-up.
#pragma once

#include <cstdint>
#include <string>

#include "topology/topology.hpp"

namespace genoc {

/// groups() groups of routers_per_group() routers. Each router hosts
/// terminals() terminal pairs and global_ports() global-channel ports.
///
/// Global wiring follows the canonical palmtree arrangement: the group-level
/// channels are numbered k = 0..g-2; channel k of group i runs to group
/// (i + k + 1) mod g, is owned by router k / h through its global port
/// G(k mod h), and coincides with channel g-2-k of the target group (an
/// involution, so every channel is one physical bidirectional link).
/// Channels with k >= g-1 (possible when g < a*h + 1) leave their global
/// ports non-existent.
///
/// Port-name table: T0..T(p-1), L0..L(a-2), G0..G(h-1). The local port of
/// router u toward router v is L(v) when v < u, else L(v-1) — the complete
/// graph on a routers needs only a-1 ports per router.
class DragonflyTopology final : public Topology {
 public:
  DragonflyTopology(std::uint32_t routers_per_group,
                    std::uint32_t global_ports, std::uint32_t terminals,
                    std::uint32_t groups);

  std::string family() const override { return "dragonfly"; }

  /// "g<group>r<router>".
  std::string node_label(std::size_t node) const override;

  std::uint32_t routers_per_group() const { return routers_; }
  std::uint32_t global_ports() const { return globals_; }
  std::uint32_t terminals() const { return terminals_; }
  std::uint32_t groups() const { return groups_; }

  std::size_t group_of(std::size_t node) const { return node / routers_; }
  std::size_t router_of(std::size_t node) const { return node % routers_; }

  /// Name index of terminal \p t.
  std::size_t terminal_name(std::uint32_t t) const { return t; }

  /// Name index of the local port of router \p from toward router \p to of
  /// the same group (from != to).
  std::size_t local_name(std::size_t from, std::size_t to) const {
    return terminals_ + (to < from ? to : to - 1);
  }

  /// Name index of global port G\p j.
  std::size_t global_name(std::size_t j) const {
    return terminals_ + routers_ - 1 + j;
  }

  /// The group-level channel index toward \p to_group as seen from
  /// \p from_group (both in 0..g-1, different).
  std::size_t channel_to(std::size_t from_group, std::size_t to_group) const {
    return (to_group + groups_ - from_group - 1) % groups_;
  }

  /// The router of the group owning group-level channel \p k.
  std::size_t channel_owner(std::size_t k) const { return k / globals_; }

 private:
  std::uint32_t routers_;
  std::uint32_t globals_;
  std::uint32_t terminals_;
  std::uint32_t groups_;
};

}  // namespace genoc
