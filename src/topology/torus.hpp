/// \file torus.hpp
/// \brief The k-ary 2D torus topology: a Mesh2D whose boundary switches keep
///        their outward ports and whose links wrap around.
///
/// Mesh2D already carries the wrap machinery (wrap_x / wrap_y); this module
/// gives the torus a first-class name and the torus-specific queries the
/// instance layer and the tests need: the wrap-around link set (the edges
/// that close the ring dependency cycles Theorem 1 detects) and convenience
/// constructors for the full torus and the single-dimension ring.
#pragma once

#include <utility>
#include <vector>

#include "topology/mesh.hpp"

namespace genoc {

/// A W x H torus. Wraps both dimensions by default; pass wrap flags to get
/// partial wraps (a wrap-x-only "ring of columns" etc.). Requires at least
/// 2 nodes along every wrapped dimension.
class Torus2D final : public Mesh2D {
 public:
  Torus2D(std::int32_t width, std::int32_t height, bool wrap_x = true,
          bool wrap_y = true)
      : Mesh2D(width, height, wrap_x, wrap_y) {}

  /// Square k-ary torus (k x k, both dimensions wrapped).
  explicit Torus2D(std::int32_t radix) : Torus2D(radix, radix) {}
};

/// Builds the plain-value Mesh2D for a torus/ring — what NetworkInstance
/// stores (it holds topologies by value as Mesh2D).
Mesh2D make_torus(std::int32_t width, std::int32_t height, bool wrap_x = true,
                  bool wrap_y = true);

/// The directed wrap-around links of \p mesh: every (cardinal OUT port,
/// IN port) pair whose link crosses a dateline. Empty on an unwrapped mesh.
/// These are exactly the edges that close each ring's dependency cycle
/// under dimension-order routing (see routing/torus_xy.hpp).
std::vector<std::pair<Port, Port>> wrap_links(const Mesh2D& mesh);

}  // namespace genoc
