/// \file mesh.hpp
/// \brief The parametric HERMES 2D-mesh topology (paper Fig. 1).
///
/// Every node carries a switch with five bidirectional ports (E, W, N, S, L).
/// Edge and corner switches omit the cardinal ports that would face off-mesh
/// (a 2x2 mesh therefore has 6 ports per node rather than 10). Local ports
/// always exist: L,IN injects messages, L,OUT removes them (Fig. 1b).
///
/// Mesh2D assigns every existing port a dense PortId so dependency graphs can
/// be built over ports directly (the paper's key departure from Dally &
/// Seitz, who work at channel level).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "topology/port.hpp"
#include "topology/topology.hpp"

namespace genoc {

/// Slots per node in the (name, direction) port-lookup layout of the grid
/// families: 5 names x 2 directions. The generalized layout is
/// Topology::slots_per_node(); this constant only remains for the grid
/// Port-tuple fast path (Mesh2D::slot()).
inline constexpr std::size_t kPortSlotsPerNode = 10;

/// Slot of (name, dir) within a node's kPortSlotsPerNode-slot block.
inline constexpr std::size_t port_slot(PortName name, Direction dir) {
  return static_cast<std::size_t>(name) * 2 + static_cast<std::size_t>(dir);
}

/// Node coordinates within the mesh.
struct NodeCoord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend auto operator<=>(const NodeCoord&, const NodeCoord&) = default;
};

/// One failed bidirectional link of a grid, named by a directed channel
/// endpoint: the cardinal OUT port (node, name). Removing the link removes
/// all four ports of the channel pair — (node, name, OUT/IN) and the
/// neighbour's opposite-name OUT/IN — so the link relation stays closed
/// (every surviving cardinal OUT port still has a surviving target).
/// Terminal (Local) links cannot fail.
struct LinkFault {
  std::int32_t node = 0;  ///< row-major node index
  PortName name = PortName::kEast;

  friend auto operator<=>(const LinkFault&, const LinkFault&) = default;
};

/// Parses a failed-link token "node:NAME" (NAME one of E/W/N/S, case
/// insensitive). On failure returns nullopt and stores a complaint naming
/// the token in *error (which may be null).
std::optional<LinkFault> parse_link_fault(const std::string& token,
                                          std::string* error);

/// The canonical token of \p fault: "<node>:<NAME>".
std::string link_fault_token(const LinkFault& fault);

/// True iff the fault names a link that physically exists in a
/// width x height grid with the given wraps: the node is in range and the
/// named side has a neighbour (or the dimension wraps).
bool link_fault_exists(const LinkFault& fault, std::int32_t width,
                       std::int32_t height, bool wrap_x, bool wrap_y);

/// The OTHER directed endpoint of the fault's bidirectional link — the
/// neighbour node and the opposite port name, wraps applied. Requires
/// link_fault_exists().
LinkFault link_fault_peer(const LinkFault& fault, std::int32_t width,
                          std::int32_t height, bool wrap_x, bool wrap_y);

/// The canonical representative of the fault's bidirectional link: of the
/// two directed endpoints, the one with the smaller (node, name) pair.
/// Faults that do not exist in the geometry are returned unchanged (their
/// rejection is a validation concern). Canonicalization is what lets two
/// fault sets naming the same physical links share one artifact-store key.
LinkFault canonical_link_fault(const LinkFault& fault, std::int32_t width,
                               std::int32_t height, bool wrap_x, bool wrap_y);

/// A W x H HERMES mesh, optionally wrapped into a torus in either
/// dimension. Immutable after construction.
///
/// With wrap enabled, boundary switches keep their outward ports and the
/// links wrap around (e.g. on a wrap-x mesh, next_in(<W-1,y,E,OUT>) =
/// <0,y,W,IN>). Wrap links create ring dependencies, which is exactly the
/// classic topology-induced deadlock Theorem 1 detects — see
/// routing/torus_xy.hpp and tests/test_torus.cpp.
class Mesh2D : public Topology {
 public:
  /// Builds a mesh with \p width columns and \p height rows. Requires
  /// width >= 1, height >= 1 and at least 2 nodes in total (a 1x1 "mesh" has
  /// no interconnect to specify). Wrapping a dimension requires at least 2
  /// nodes along it.
  Mesh2D(std::int32_t width, std::int32_t height, bool wrap_x = false,
         bool wrap_y = false);

  /// Builds a mesh with the given \p failed_links removed: every fault's
  /// four channel ports are skipped during port enumeration, exactly like
  /// the off-mesh boundary ports — surviving ids stay dense and every
  /// downstream consumer (masks, sweeps, closures) sees the faults through
  /// the ordinary existence filter. Requires every fault to name an
  /// existing non-terminal link; duplicate faults are idempotent.
  Mesh2D(std::int32_t width, std::int32_t height, bool wrap_x, bool wrap_y,
         const std::vector<LinkFault>& failed_links);

  /// "torus" when y wraps, "ring" when only x wraps, else "mesh".
  std::string family() const override;

  /// "x,y" of the node in row-major order.
  std::string node_label(std::size_t node) const override;

  /// The paper's "<x,y,P,D>" tuple — identical to to_string(port(pid)), so
  /// grid dep-graph labels and witnesses are unchanged by the abstraction.
  std::string port_label(PortId pid) const override;

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  bool wraps_x() const { return wrap_x_; }
  bool wraps_y() const { return wrap_y_; }

  /// True iff the mesh was built with failed links removed. Routings with
  /// full-grid closed forms (XY/YX reachability, the analytic in-port
  /// unions) gate on this and fall back to the semantic closure/sweeps.
  bool has_faults() const { return !failed_links_.empty(); }

  /// The failed links this mesh was built with, as given (not
  /// canonicalized, duplicates preserved).
  const std::vector<LinkFault>& failed_links() const { return failed_links_; }

  /// Topology-aware counterpart of the free next_in(): follows the link an
  /// OUT port drives, wrapping around torus dimensions. Requires
  /// exists(p) and a cardinal OUT port.
  Port next_in(const Port& p) const;

  /// True iff (x, y) is a node of the mesh.
  bool contains_node(std::int32_t x, std::int32_t y) const;

  /// True iff the port physically exists: its node is in the mesh, and a
  /// cardinal port additionally has a neighbour on that side. Local ports of
  /// in-mesh nodes always exist.
  bool exists(const Port& p) const;

  /// Dense id of an existing port. Requires exists(p).
  PortId id(const Port& p) const;

  /// Dense id of \p p, or -1 when the port does not exist. One table
  /// lookup — the hot-path fusion of exists() + id() the per-destination
  /// sweeps thread PortIds through.
  std::int32_t try_id(const Port& p) const {
    if (!contains_node(p.x, p.y)) {
      return -1;
    }
    return id_table_[slot(p)];
  }

  /// The port with dense id \p pid. Requires pid < port_count().
  const Port& port(PortId pid) const;

  /// All existing ports, ordered by id.
  const std::vector<Port>& ports() const { return ports_; }

  /// All node coordinates in row-major order.
  std::vector<NodeCoord> nodes() const;

  /// The local in-port (injection point) of node (x, y).
  Port local_in(std::int32_t x, std::int32_t y) const;

  /// The local out-port (ejection point) of node (x, y).
  Port local_out(std::int32_t x, std::int32_t y) const;

  /// All L,OUT ports — the legal destinations of travels.
  std::vector<Port> destinations() const;

  /// All L,IN ports — the legal sources of travels.
  std::vector<Port> sources() const;

 private:
  /// Slot of p in the (node-major, name-major, dir-minor) lookup table,
  /// defined for any port whose node is in the mesh. Inline: this is the
  /// innermost step of every port-id lookup on the sweep hot path.
  std::size_t slot(const Port& p) const {
    const auto node_index = static_cast<std::size_t>(p.y) *
                                static_cast<std::size_t>(width_) +
                            static_cast<std::size_t>(p.x);
    return node_index * kPortSlotsPerNode + port_slot(p.name, p.dir);
  }

  std::int32_t width_;
  std::int32_t height_;
  bool wrap_x_;
  bool wrap_y_;
  std::vector<LinkFault> failed_links_;
  std::vector<Port> ports_;           // id -> port
  std::vector<std::int32_t> id_table_;  // slot -> id, or -1 if non-existent
};

}  // namespace genoc
