#include "topology/torus.hpp"

namespace genoc {

Mesh2D make_torus(std::int32_t width, std::int32_t height, bool wrap_x,
                  bool wrap_y) {
  return Mesh2D(width, height, wrap_x, wrap_y);
}

std::vector<std::pair<Port, Port>> wrap_links(const Mesh2D& mesh) {
  std::vector<std::pair<Port, Port>> links;
  const std::int32_t west_edge = 0;
  const std::int32_t east_edge = mesh.width() - 1;
  const std::int32_t north_edge = 0;
  const std::int32_t south_edge = mesh.height() - 1;
  if (mesh.wraps_x()) {
    for (std::int32_t y = 0; y < mesh.height(); ++y) {
      const Port east_out{east_edge, y, PortName::kEast, Direction::kOut};
      const Port west_out{west_edge, y, PortName::kWest, Direction::kOut};
      links.emplace_back(east_out, mesh.next_in(east_out));
      links.emplace_back(west_out, mesh.next_in(west_out));
    }
  }
  if (mesh.wraps_y()) {
    for (std::int32_t x = 0; x < mesh.width(); ++x) {
      const Port south_out{x, south_edge, PortName::kSouth, Direction::kOut};
      const Port north_out{x, north_edge, PortName::kNorth, Direction::kOut};
      links.emplace_back(south_out, mesh.next_in(south_out));
      links.emplace_back(north_out, mesh.next_in(north_out));
    }
  }
  return links;
}

}  // namespace genoc
