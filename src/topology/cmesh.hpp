/// \file cmesh.hpp
/// \brief Concentrated 2D mesh: c terminals share each router.
///
/// The classic NoC cost reduction (and the first non-grid client of the
/// Topology abstraction): a W x H router grid wired exactly like Mesh2D's
/// cardinal fabric, but with `concentration` terminal port pairs per router
/// instead of the single Local pair. Destinations are therefore terminals,
/// not routers — W*H*c of them — which breaks both the one-terminal-per-node
/// assumption and the 10-slot port layout of the grid code, while remaining
/// deadlock-free under dimension-ordered routing (routing/cmesh_dor.hpp):
/// the extra terminals only add sink/source edges to the dependency graph.
#pragma once

#include <cstdint>
#include <string>

#include "topology/topology.hpp"

namespace genoc {

/// A width x height router grid, `concentration` terminals per router.
/// Port-name table: E, W, N, S (indices 0..3, same cardinal convention as
/// the grid: North decreases y), then T0..T(c-1).
class CMeshTopology final : public Topology {
 public:
  CMeshTopology(std::int32_t width, std::int32_t height,
                std::uint32_t concentration);

  std::string family() const override { return "cmesh"; }
  std::string node_label(std::size_t node) const override;

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  std::uint32_t concentration() const { return concentration_; }

  /// Name index of terminal \p t (0 <= t < concentration).
  std::size_t terminal_name(std::uint32_t t) const { return 4 + t; }

  std::size_t router_x(std::size_t node) const {
    return node % static_cast<std::size_t>(width_);
  }
  std::size_t router_y(std::size_t node) const {
    return node / static_cast<std::size_t>(width_);
  }

 private:
  std::int32_t width_;
  std::int32_t height_;
  std::uint32_t concentration_;
};

}  // namespace genoc
