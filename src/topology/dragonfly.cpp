#include "topology/dragonfly.hpp"

#include <vector>

#include "topology/port.hpp"
#include "util/require.hpp"

namespace genoc {

DragonflyTopology::DragonflyTopology(std::uint32_t routers_per_group,
                                     std::uint32_t global_ports,
                                     std::uint32_t terminals,
                                     std::uint32_t groups)
    : routers_(routers_per_group),
      globals_(global_ports),
      terminals_(terminals),
      groups_(groups) {
  GENOC_REQUIRE(routers_ >= 2 && routers_ <= 16,
                "dragonfly routers per group must be in 2..16");
  GENOC_REQUIRE(globals_ >= 1 && globals_ <= 8,
                "dragonfly global ports per router must be in 1..8");
  GENOC_REQUIRE(terminals_ >= 1 && terminals_ <= 8,
                "dragonfly terminals per router must be in 1..8");
  GENOC_REQUIRE(groups_ >= 2 && groups_ <= routers_ * globals_ + 1,
                "dragonfly group count must be in 2..routers*globals+1");

  std::vector<std::string> names;
  for (std::uint32_t t = 0; t < terminals_; ++t) {
    names.push_back("T" + std::to_string(t));
  }
  for (std::uint32_t m = 0; m + 1 < routers_; ++m) {
    names.push_back("L" + std::to_string(m));
  }
  for (std::uint32_t j = 0; j < globals_; ++j) {
    names.push_back("G" + std::to_string(j));
  }
  const std::uint64_t terminal_mask = (std::uint64_t{1} << terminals_) - 1;
  const std::size_t nodes =
      static_cast<std::size_t>(groups_) * static_cast<std::size_t>(routers_);
  begin_topology(nodes, std::move(names), terminal_mask);

  // Enumerate group-major, router-minor; per router terminals, then local
  // ports (the complete graph needs a-1, always present), then the global
  // ports whose group-level channel is actually wired (k <= g-2).
  for (std::size_t node = 0; node < nodes; ++node) {
    const std::size_t rr = router_of(node);
    for (std::uint32_t t = 0; t < terminals_; ++t) {
      add_port(node, terminal_name(t), Direction::kIn);
      add_port(node, terminal_name(t), Direction::kOut);
    }
    for (std::uint32_t m = 0; m + 1 < routers_; ++m) {
      add_port(node, terminals_ + m, Direction::kIn);
      add_port(node, terminals_ + m, Direction::kOut);
    }
    for (std::uint32_t j = 0; j < globals_; ++j) {
      const std::size_t channel = rr * globals_ + j;
      if (channel + 1 >= groups_) {
        continue;  // unwired channel: the port does not exist
      }
      add_port(node, global_name(j), Direction::kIn);
      add_port(node, global_name(j), Direction::kOut);
    }
  }

  // Local links: the complete graph on each group's routers. Router u's
  // port L(m) runs toward router v = m < u ? m : m + 1 and lands on v's
  // local port back toward u.
  for (std::size_t node = 0; node < nodes; ++node) {
    const std::size_t group = group_of(node);
    const std::size_t u = router_of(node);
    for (std::size_t m = 0; m + 1 < routers_; ++m) {
      const std::size_t v = m < u ? m : m + 1;
      const std::size_t peer = group * routers_ + v;
      set_link(slot_id(node, terminals_ + m, Direction::kOut),
               slot_id(peer, local_name(v, u), Direction::kIn));
    }
  }

  // Global links: channel k of group i runs to group (i + k + 1) mod g and
  // coincides with that group's channel g-2-k (the palmtree involution).
  for (std::size_t i = 0; i < groups_; ++i) {
    for (std::size_t k = 0; k + 1 < groups_; ++k) {
      const std::size_t j = (i + k + 1) % groups_;
      const std::size_t back = groups_ - 2 - k;
      const std::size_t from = i * routers_ + channel_owner(k);
      const std::size_t to = j * routers_ + channel_owner(back);
      set_link(slot_id(from, global_name(k % globals_), Direction::kOut),
               slot_id(to, global_name(back % globals_), Direction::kIn));
    }
  }
  finish_topology();
}

std::string DragonflyTopology::node_label(std::size_t node) const {
  return "g" + std::to_string(group_of(node)) + "r" +
         std::to_string(router_of(node));
}

}  // namespace genoc
