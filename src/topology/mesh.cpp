#include "topology/mesh.hpp"

#include <cctype>
#include <charconv>

#include "util/require.hpp"

namespace genoc {

namespace {

/// A cardinal port exists iff the neighbour it would connect to is inside
/// the mesh — or the dimension wraps (torus links keep boundary ports
/// alive); Local ports always exist (Fig. 1b: edge switches of HERMES
/// simply lack the off-mesh links).
bool port_physically_exists(const Port& p, std::int32_t width,
                            std::int32_t height, bool wrap_x, bool wrap_y) {
  switch (p.name) {
    case PortName::kEast:
      return wrap_x || p.x + 1 < width;
    case PortName::kWest:
      return wrap_x || p.x > 0;
    case PortName::kNorth:
      return wrap_y || p.y > 0;  // North decreases y
    case PortName::kSouth:
      return wrap_y || p.y + 1 < height;
    case PortName::kLocal:
      return true;
  }
  return false;
}

}  // namespace

std::optional<LinkFault> parse_link_fault(const std::string& token,
                                          std::string* error) {
  const auto complain = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "bad failed-link token '" + token + "': " + why +
               " (expected <node>:<E|W|N|S>)";
    }
    return std::nullopt;
  };
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 2 != token.size()) {
    return complain("expected one ':' followed by a single port letter");
  }
  std::uint32_t node = 0;
  const char* begin = token.data();
  const auto [ptr, ec] = std::from_chars(begin, begin + colon, node);
  if (ec != std::errc{} || ptr != begin + colon) {
    return complain("the node index is not a number");
  }
  LinkFault fault;
  fault.node = static_cast<std::int32_t>(node);
  switch (std::toupper(static_cast<unsigned char>(token[colon + 1]))) {
    case 'E': fault.name = PortName::kEast; break;
    case 'W': fault.name = PortName::kWest; break;
    case 'N': fault.name = PortName::kNorth; break;
    case 'S': fault.name = PortName::kSouth; break;
    case 'L':
      return complain("terminal (L) links cannot fail — fault campaigns "
                      "honor the injection/ejection exclusions");
    default:
      return complain("unknown port letter");
  }
  return fault;
}

std::string link_fault_token(const LinkFault& fault) {
  return std::to_string(fault.node) + ":" + port_name_letter(fault.name);
}

bool link_fault_exists(const LinkFault& fault, std::int32_t width,
                       std::int32_t height, bool wrap_x, bool wrap_y) {
  if (fault.node < 0 ||
      static_cast<std::int64_t>(fault.node) >=
          static_cast<std::int64_t>(width) * height ||
      fault.name == PortName::kLocal) {
    return false;
  }
  const Port out{fault.node % width, fault.node / width, fault.name,
                 Direction::kOut};
  return port_physically_exists(out, width, height, wrap_x, wrap_y);
}

LinkFault link_fault_peer(const LinkFault& fault, std::int32_t width,
                          std::int32_t height, bool wrap_x, bool wrap_y) {
  GENOC_REQUIRE(link_fault_exists(fault, width, height, wrap_x, wrap_y),
                "peer of a non-existent link fault: " +
                    link_fault_token(fault));
  const Port out{fault.node % width, fault.node / width, fault.name,
                 Direction::kOut};
  Port in = next_in(out);
  if (wrap_x) {
    in.x = (in.x + width) % width;
  }
  if (wrap_y) {
    in.y = (in.y + height) % height;
  }
  return LinkFault{in.y * width + in.x, opposite(fault.name)};
}

LinkFault canonical_link_fault(const LinkFault& fault, std::int32_t width,
                               std::int32_t height, bool wrap_x,
                               bool wrap_y) {
  if (!link_fault_exists(fault, width, height, wrap_x, wrap_y)) {
    return fault;
  }
  const LinkFault peer =
      link_fault_peer(fault, width, height, wrap_x, wrap_y);
  return peer < fault ? peer : fault;
}

Mesh2D::Mesh2D(std::int32_t width, std::int32_t height, bool wrap_x,
               bool wrap_y)
    : Mesh2D(width, height, wrap_x, wrap_y, {}) {}

Mesh2D::Mesh2D(std::int32_t width, std::int32_t height, bool wrap_x,
               bool wrap_y, const std::vector<LinkFault>& failed_links)
    : width_(width),
      height_(height),
      wrap_x_(wrap_x),
      wrap_y_(wrap_y),
      failed_links_(failed_links) {
  GENOC_REQUIRE(width >= 1 && height >= 1, "mesh dimensions must be positive");
  GENOC_REQUIRE(static_cast<std::int64_t>(width) * height >= 2,
                "a mesh needs at least two nodes");
  GENOC_REQUIRE(!wrap_x || width >= 2, "wrapping x needs at least 2 columns");
  GENOC_REQUIRE(!wrap_y || height >= 2, "wrapping y needs at least 2 rows");
  const auto nodes =
      static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  begin_topology(nodes, {"E", "W", "N", "S", "L"},
                 std::uint64_t{1} << static_cast<std::size_t>(PortName::kLocal));
  id_table_.assign(nodes * kPortSlotsPerNode, -1);

  // Failed links remove their four channel ports (both directed channels'
  // OUT + IN) before enumeration, so fault handling is literally the same
  // machinery as boundary nodes: the ports never get ids, and removal is
  // closed under the link pairing (a surviving cardinal OUT port always
  // keeps its surviving target).
  std::vector<char> removed;
  if (!failed_links_.empty()) {
    removed.assign(nodes * kPortSlotsPerNode, 0);
    for (const LinkFault& fault : failed_links_) {
      GENOC_REQUIRE(
          link_fault_exists(fault, width_, height_, wrap_x_, wrap_y_),
          "failed link does not exist in this mesh: " +
              link_fault_token(fault));
      const LinkFault peer =
          link_fault_peer(fault, width_, height_, wrap_x_, wrap_y_);
      for (const LinkFault& end : {fault, peer}) {
        const Port base{end.node % width_, end.node / width_, end.name,
                        Direction::kIn};
        removed[slot(base)] = 1;
        removed[slot(Port{base.x, base.y, base.name, Direction::kOut})] = 1;
      }
    }
  }

  // Enumerate ports node-major so ids are stable and human-predictable.
  // add_port mirrors every port into the generalized Topology tables with
  // the same dense id (the slot layouts coincide: 5 names x 2 directions).
  for (std::int32_t y = 0; y < height_; ++y) {
    for (std::int32_t x = 0; x < width_; ++x) {
      for (PortName name : {PortName::kEast, PortName::kWest, PortName::kNorth,
                            PortName::kSouth, PortName::kLocal}) {
        for (Direction direction : {Direction::kIn, Direction::kOut}) {
          const Port p{x, y, name, direction};
          if (!port_physically_exists(p, width_, height_, wrap_x_, wrap_y_)) {
            continue;
          }
          if (!removed.empty() && removed[slot(p)] != 0) {
            continue;
          }
          id_table_[slot(p)] = static_cast<std::int32_t>(ports_.size());
          ports_.push_back(p);
          const auto node_index = static_cast<std::size_t>(y) *
                                      static_cast<std::size_t>(width_) +
                                  static_cast<std::size_t>(x);
          const PortId pid =
              add_port(node_index, static_cast<std::size_t>(name), direction);
          GENOC_ASSERT(pid + 1 == ports_.size(),
                       "Topology ids must mirror Mesh2D ids");
        }
      }
    }
  }
  for (PortId pid = 0; pid < ports_.size(); ++pid) {
    const Port& p = ports_[pid];
    if (p.dir == Direction::kOut && p.name != PortName::kLocal) {
      set_link(pid, id(next_in(p)));
    }
  }
  finish_topology();
}

std::string Mesh2D::family() const {
  if (wrap_y_) {
    return "torus";
  }
  return wrap_x_ ? "ring" : "mesh";
}

std::string Mesh2D::node_label(std::size_t node) const {
  const auto width = static_cast<std::size_t>(width_);
  return std::to_string(node % width) + "," + std::to_string(node / width);
}

std::string Mesh2D::port_label(PortId pid) const {
  return to_string(port(pid));
}

bool Mesh2D::contains_node(std::int32_t x, std::int32_t y) const {
  return x >= 0 && x < width_ && y >= 0 && y < height_;
}

Port Mesh2D::next_in(const Port& p) const {
  GENOC_REQUIRE(exists(p), "next_in of a non-existent port: " + to_string(p));
  GENOC_REQUIRE(has_next_in(p),
                "next_in requires a cardinal OUT port, got " + to_string(p));
  Port q = genoc::next_in(p);
  if (wrap_x_) {
    q.x = (q.x + width_) % width_;
  }
  if (wrap_y_) {
    q.y = (q.y + height_) % height_;
  }
  GENOC_ASSERT(exists(q), "wrapped link target does not exist");
  return q;
}

bool Mesh2D::exists(const Port& p) const {
  if (!contains_node(p.x, p.y)) {
    return false;
  }
  return id_table_[slot(p)] >= 0;
}

PortId Mesh2D::id(const Port& p) const {
  GENOC_REQUIRE(contains_node(p.x, p.y),
                "port node outside mesh: " + to_string(p));
  const std::int32_t pid = id_table_[slot(p)];
  GENOC_REQUIRE(pid >= 0, "port does not exist in mesh: " + to_string(p));
  return static_cast<PortId>(pid);
}

const Port& Mesh2D::port(PortId pid) const {
  GENOC_REQUIRE(pid < ports_.size(), "port id out of range");
  return ports_[pid];
}

std::vector<NodeCoord> Mesh2D::nodes() const {
  std::vector<NodeCoord> result;
  result.reserve(node_count());
  for (std::int32_t y = 0; y < height_; ++y) {
    for (std::int32_t x = 0; x < width_; ++x) {
      result.push_back(NodeCoord{x, y});
    }
  }
  return result;
}

Port Mesh2D::local_in(std::int32_t x, std::int32_t y) const {
  GENOC_REQUIRE(contains_node(x, y), "node outside mesh");
  return Port{x, y, PortName::kLocal, Direction::kIn};
}

Port Mesh2D::local_out(std::int32_t x, std::int32_t y) const {
  GENOC_REQUIRE(contains_node(x, y), "node outside mesh");
  return Port{x, y, PortName::kLocal, Direction::kOut};
}

std::vector<Port> Mesh2D::destinations() const {
  std::vector<Port> result;
  result.reserve(node_count());
  for (const NodeCoord node : nodes()) {
    result.push_back(local_out(node.x, node.y));
  }
  return result;
}

std::vector<Port> Mesh2D::sources() const {
  std::vector<Port> result;
  result.reserve(node_count());
  for (const NodeCoord node : nodes()) {
    result.push_back(local_in(node.x, node.y));
  }
  return result;
}

}  // namespace genoc
