#include "topology/port.hpp"

#include <sstream>

#include "util/require.hpp"

namespace genoc {

char port_name_letter(PortName name) {
  switch (name) {
    case PortName::kEast:
      return 'E';
    case PortName::kWest:
      return 'W';
    case PortName::kNorth:
      return 'N';
    case PortName::kSouth:
      return 'S';
    case PortName::kLocal:
      return 'L';
  }
  return '?';
}

const char* direction_name(Direction dir) {
  return dir == Direction::kIn ? "IN" : "OUT";
}

PortName opposite(PortName name) {
  switch (name) {
    case PortName::kEast:
      return PortName::kWest;
    case PortName::kWest:
      return PortName::kEast;
    case PortName::kNorth:
      return PortName::kSouth;
    case PortName::kSouth:
      return PortName::kNorth;
    case PortName::kLocal:
      break;
  }
  GENOC_REQUIRE(false, "opposite() requires a cardinal port name");
}

bool has_next_in(const Port& p) {
  return p.dir == Direction::kOut && p.name != PortName::kLocal;
}

Port next_in(const Port& p) {
  GENOC_REQUIRE(has_next_in(p),
                "next_in requires a cardinal OUT port, got " + to_string(p));
  switch (p.name) {
    case PortName::kEast:
      return Port{p.x + 1, p.y, PortName::kWest, Direction::kIn};
    case PortName::kWest:
      return Port{p.x - 1, p.y, PortName::kEast, Direction::kIn};
    case PortName::kNorth:
      // North decreases y (paper Sec. V: Rxy uses NO iff y(d) < y(p)).
      return Port{p.x, p.y - 1, PortName::kSouth, Direction::kIn};
    case PortName::kSouth:
      return Port{p.x, p.y + 1, PortName::kNorth, Direction::kIn};
    case PortName::kLocal:
      break;
  }
  GENOC_REQUIRE(false, "unreachable");
}

std::string to_string(const Port& p) {
  std::ostringstream os;
  os << '<' << p.x << ',' << p.y << ',' << port_name_letter(p.name) << ','
     << direction_name(p.dir) << '>';
  return os.str();
}

}  // namespace genoc
