/// \file port.hpp
/// \brief The paper's port model (Section V.1).
///
/// A port is the tuple <x, y, P, D>: the coordinates of its processing node,
/// the port name P in {E, W, N, S, L} and the direction D in {IN, OUT}.
/// Coordinate convention follows the paper exactly: East increases x, West
/// decreases x, North DECREASES y, South INCREASES y; e.g.
/// next_in(<0,0,E,OUT>) = <1,0,W,IN>.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace genoc {

/// Port name P of the paper's tuple: four cardinal ports plus Local.
enum class PortName : std::uint8_t { kEast = 0, kWest, kNorth, kSouth, kLocal };

/// Port direction D: IN receives flits, OUT emits them.
enum class Direction : std::uint8_t { kIn = 0, kOut };

/// One-letter name used in rendered port labels ("E", "W", "N", "S", "L").
char port_name_letter(PortName name);

/// "IN" / "OUT".
const char* direction_name(Direction dir);

/// The opposite cardinal name (East<->West, North<->South). Requires a
/// cardinal (non-Local) name.
PortName opposite(PortName name);

/// The paper's port tuple <x, y, P, D>. Plain value type (Core Guidelines
/// C.1: use struct for data without invariants beyond field ranges).
struct Port {
  std::int32_t x = 0;
  std::int32_t y = 0;
  PortName name = PortName::kLocal;
  Direction dir = Direction::kIn;

  friend auto operator<=>(const Port&, const Port&) = default;
};

/// Function dir(p) of the paper.
inline Direction dir(const Port& p) { return p.dir; }

/// Function port(p) of the paper.
inline PortName port_name(const Port& p) { return p.name; }

/// Functions x(p), y(p) of the paper.
inline std::int32_t x_of(const Port& p) { return p.x; }
inline std::int32_t y_of(const Port& p) { return p.y; }

/// Function trans(p, PD): the port with name/direction PD in the same
/// processing node as p (paper Sec. V.1).
inline Port trans(const Port& p, PortName name, Direction direction) {
  return Port{p.x, p.y, name, direction};
}

/// Function next_in(p): the in-port of the neighbouring node that out-port p
/// connects to, e.g. next_in(<0,0,E,OUT>) = <1,0,W,IN>. Requires p to be a
/// cardinal OUT port (Local out-ports connect to the IP core, not a switch).
Port next_in(const Port& p);

/// True if \p p is a cardinal OUT port, i.e. next_in(p) is defined.
bool has_next_in(const Port& p);

/// Renders a port as "<x,y,P,D>", mirroring the paper's notation.
std::string to_string(const Port& p);

}  // namespace genoc

template <>
struct std::hash<genoc::Port> {
  std::size_t operator()(const genoc::Port& p) const noexcept {
    // Pack the port into 64 bits, then mix (splitmix64 finalizer).
    std::uint64_t v = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.x))
                       << 32) ^
                      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(p.y))
                       << 8) ^
                      (static_cast<std::uint64_t>(p.name) << 4) ^
                      static_cast<std::uint64_t>(p.dir);
    v = (v ^ (v >> 30)) * 0xBF58476D1CE4E5B9ULL;
    v = (v ^ (v >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(v ^ (v >> 31));
  }
};
