#include "routing/turns.hpp"

namespace genoc {

namespace {

bool vertical(PortName name) {
  return name == PortName::kNorth || name == PortName::kSouth;
}

bool horizontal(PortName name) {
  return name == PortName::kEast || name == PortName::kWest;
}

/// The negative directions under the paper's coordinate convention
/// (East increases x, North DECREASES y): West and North.
bool negative_direction(PortName name) {
  return name == PortName::kWest || name == PortName::kNorth;
}

}  // namespace

bool has_turn_discipline(const std::string& routing) {
  return routing == "xy" || routing == "yx" || routing == "torus_xy" ||
         routing == "west_first" || routing == "north_last" ||
         routing == "negative_first" || routing == "odd_even";
}

bool turn_prohibited(const std::string& routing, std::int32_t x,
                     PortName travel, PortName out) {
  if (travel == out) {
    return false;  // continuing straight is not a turn
  }
  if (out == opposite(travel)) {
    return true;  // 180-degree reversal: no minimal discipline emits one
  }
  if (routing == "xy" || routing == "torus_xy") {
    // Dimension order, x first: once travelling vertically, every
    // horizontal turn is forbidden (the paper's Rxy and its shortest-way
    // torus variant share the discipline; wrap links only change which
    // neighbour a hop reaches, not the turn it takes).
    return vertical(travel) && horizontal(out);
  }
  if (routing == "yx") {
    return horizontal(travel) && vertical(out);
  }
  if (routing == "west_first") {
    // All west hops come first, so no later leg may turn (back) to West.
    return out == PortName::kWest;
  }
  if (routing == "north_last") {
    // North is taken last: once travelling North nothing else follows.
    return travel == PortName::kNorth;
  }
  if (routing == "negative_first") {
    // Negative hops (West, North) come first: a positive-travelling
    // message (East, South) may never turn into a negative direction.
    return !negative_direction(travel) && negative_direction(out);
  }
  if (routing == "odd_even") {
    // Chiu: EN/ES turns are legal only in odd columns, NW/SW turns only
    // in even columns (see routing/odd_even.cpp).
    const bool odd_column = (x % 2) != 0;
    if (travel == PortName::kEast && vertical(out)) {
      return !odd_column;
    }
    if (vertical(travel) && out == PortName::kWest) {
      return odd_column;
    }
    return false;
  }
  return false;
}

}  // namespace genoc
