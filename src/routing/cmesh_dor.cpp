#include "routing/cmesh_dor.hpp"

namespace genoc {

namespace {

constexpr std::size_t kEast = 0;
constexpr std::size_t kWest = 1;
constexpr std::size_t kNorth = 2;
constexpr std::size_t kSouth = 3;

}  // namespace

std::size_t CMeshDORRouting::route_name(std::size_t node, PortId dest) const {
  const CMeshTopology& t = *cmesh_;
  const std::size_t dnode = t.node_of(dest);
  if (node == dnode) {
    return t.name_of(dest);  // eject at the destination terminal
  }
  const std::size_t x = t.router_x(node);
  const std::size_t dx = t.router_x(dnode);
  if (x < dx) {
    return kEast;
  }
  if (x > dx) {
    return kWest;
  }
  // North decreases y, same convention as the grid.
  return t.router_y(node) > t.router_y(dnode) ? kNorth : kSouth;
}

std::uint64_t CMeshDORRouting::out_mask_id(std::size_t node,
                                           std::size_t dest_index) const {
  return std::uint64_t{1}
         << route_name(node, topology().destination_id(dest_index));
}

void CMeshDORRouting::append_next_hop_ids(PortId current,
                                          std::size_t dest_index,
                                          std::vector<PortId>& out) const {
  const CMeshTopology& t = *cmesh_;
  const PortId dest = t.destination_id(dest_index);
  if (t.dir_of(current) == Direction::kOut) {
    if (current != dest) {
      const PortId target = t.link_target(current);
      if (target != kInvalidPort) {
        out.push_back(target);  // forward along the link
      }
    }
    return;  // arrived, or a terminal out-port draining into its core
  }
  out.push_back(
      t.slot_id(t.node_of(current), route_name(t.node_of(current), dest),
                Direction::kOut));
}

}  // namespace genoc
