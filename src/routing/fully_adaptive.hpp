/// \file fully_adaptive.hpp
/// \brief Unrestricted minimal fully-adaptive routing — the deliberately
///        deadlock-PRONE baseline.
///
/// Every productive direction is allowed at every switch. Its port
/// dependency graph contains cycles on any mesh with a 2x2 sub-block, so
/// Theorem 1's sufficiency direction applies: from any such cycle the
/// witness builder constructs a concrete deadlock configuration, which the
/// simulator confirms (Ω holds). This closes the loop on the paper's
/// "deadlock-free iff acyclic" equivalence from the negative side.
#pragma once

#include "routing/adaptive.hpp"

namespace genoc {

class FullyAdaptiveRouting final : public AdaptiveRouting {
 public:
  explicit FullyAdaptiveRouting(const Mesh2D& mesh) : AdaptiveRouting(mesh) {}

  std::string name() const override { return "Fully-Adaptive"; }

  /// Every productive direction from every in-port: node-level by
  /// definition.
  bool node_uniform() const override { return true; }
  std::uint8_t node_out_mask(std::int32_t x, std::int32_t y,
                             const Port& dest) const override;

 protected:
  void append_out_choices(const Port& current, const Port& dest,
                          std::vector<Port>& out) const override;
};

}  // namespace genoc
