/// \file sweep.hpp
/// \brief RouteSweeper: per-destination enumeration of the routing relation.
///
/// The generic dependency-graph construction enumerates the full
/// (port, destination) product and re-walks routes per pair — quadratic per
/// port and the ROADMAP's scaling bottleneck. The sweeper replaces it with
/// one pass per destination d over the ports that routes to d actually
/// visit, so total work is O(Σ_d |ports reaching d| · degree). Two modes:
///
///  - NODE mode (RoutingFunction::node_uniform()): one node_out_mask()
///    call per (node, dest) decides the out-ports for every in-port of the
///    node at once; link targets mark the in-ports the route tree visits.
///    O(nodes) per destination with a handful of ns per node.
///  - PORT mode (the generic fallback, e.g. Odd-Even whose turns depend on
///    the in-port name): a BFS from the Local IN seeds following
///    append_next_hops, identical to the semantic closure fixpoint.
///
/// Both modes emit exactly the edge set of build_dep_graph() — every
/// (p, q) with p route-reachable for d, q in R(p, d) and q existing — and
/// the same visited-port rows the reachability closure stores, so one
/// engine backs build_dep_graph_fast(), build_dep_graph_parallel() and
/// RoutingFunction::prime(). Repeat edge emissions are suppressed by a
/// per-sweeper cache (Digraph::finalize would coalesce them anyway, this
/// keeps the merge buffers near the size of the final edge set).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "routing/routing.hpp"
#include "topology/mesh.hpp"

namespace genoc {

/// First-N-distinct-targets edge filter shared by the sweep engines (the
/// port-mode dependency sweep, the escape-lane analysis): a port emits at
/// most 5 distinct out-targets (its node's out-ports, or one link target),
/// so kSlots slots suppress virtually every repeat emission across
/// destinations; on the (theoretical) overflow the edge is simply emitted
/// again and Digraph::finalize coalesces it.
class EdgeDedupCache {
 public:
  explicit EdgeDedupCache(std::size_t port_count)
      : slots_(port_count), counts_(port_count, 0) {}

  /// True exactly when (from, to) was not seen before (caller emits then).
  bool fresh(PortId from, PortId to) {
    auto& slots = slots_[from];
    auto& count = counts_[from];
    for (int i = 0; i < count; ++i) {
      if (slots[static_cast<std::size_t>(i)] == to) {
        return false;
      }
    }
    if (count < kSlots) {
      slots[static_cast<std::size_t>(count)] = to;
      ++count;
    }
    return true;
  }

 private:
  static constexpr int kSlots = 6;

  std::vector<std::array<PortId, kSlots>> slots_;
  std::vector<std::uint8_t> counts_;
};

class RouteSweeper {
 public:
  using Edge = std::pair<PortId, PortId>;

  explicit RouteSweeper(const RoutingFunction& routing);

  /// True when the node-uniform sweep is active.
  bool node_mode() const { return node_mode_; }

  /// Forces the generic port-level BFS even for node-uniform functions;
  /// tests cross-validate both paths against the oracle on every preset.
  void force_port_mode() { node_mode_ = false; }

  /// 64-bit words per closure row (one bit per existing port).
  std::size_t row_words() const { return (port_count_ + 63) / 64; }

  /// Sweeps destination node \p dest_node (row-major index). Dependency
  /// edges are appended to *edges (first emission per sweeper only);
  /// visited-port bits are OR-ed into \p row (row_words() words, caller
  /// zeroed). Either sink may be nullptr.
  void sweep(std::size_t dest_node, std::vector<Edge>* edges,
             std::uint64_t* row);

 private:
  static constexpr PortId kNoPort = 0xFFFFFFFFu;
  static constexpr std::uint8_t kLinkEmitted = 1;  // emitted_ bit, OUT ports

  void sweep_nodes(const Port& dest, std::vector<Edge>* edges,
                   std::uint64_t* row);
  void sweep_ports(const Port& dest, std::vector<Edge>* edges,
                   std::uint64_t* row);

  /// Edges from in-port \p pid to the (existing) out-ports selected at its
  /// node, deduplicated by the per-port emitted-name mask. \p slots points
  /// at the node's 10-entry id table.
  void emit_in_edges(PortId pid, const PortId* slots, std::uint8_t mask,
                     std::vector<Edge>& edges);

  const RoutingFunction* routing_;
  const Mesh2D* mesh_;
  std::size_t port_count_ = 0;
  std::size_t node_count_ = 0;
  bool node_mode_ = false;

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_;  // per port: epoch of the current dest
  std::vector<PortId> frontier_;      // BFS worklist / marked in-ports
  std::vector<Port> hops_;            // append_next_hops scratch (port mode)

  // Node-mode tables, built once per sweeper: dense port ids by
  // (node, name, dir) slot, the link target of each cardinal OUT port, and
  // per node the mask of out names that physically exist.
  std::vector<PortId> slot_ids_;  // node * 10 + name * 2 + dir
  std::vector<PortId> link_to_;
  std::vector<std::uint8_t> exist_out_;
  std::vector<std::uint8_t> mask_;     // per node: current dest's out mask
  std::vector<std::uint8_t> emitted_;  // per port: emitted out-name bits

  // Port-mode edge filter, allocated on first port-mode sweep.
  std::unique_ptr<EdgeDedupCache> cache_;
};

}  // namespace genoc
