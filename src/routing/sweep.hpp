/// \file sweep.hpp
/// \brief RouteSweeper: per-destination enumeration of the routing relation.
///
/// The generic dependency-graph construction enumerates the full
/// (port, destination) product and re-walks routes per pair — quadratic per
/// port and the ROADMAP's scaling bottleneck. The sweeper replaces it with
/// one pass per destination d over the ports that routes to d actually
/// visit, so total work is O(Σ_d |ports reaching d| · degree). Two modes:
///
///  - NODE mode (RoutingFunction::node_uniform(), port-name tables of <= 64
///    names): one out_mask_id() call per (node, dest) decides the out-ports
///    for every in-port of the node at once; link targets mark the in-ports
///    the route tree visits. O(nodes) per destination with a handful of ns
///    per node.
///  - PORT mode (the universal fallback, e.g. Odd-Even whose turns depend
///    on the in-port name, or any hierarchical routing that opts out of
///    node uniformity): a BFS from the terminal IN seeds following
///    next_hop_ids_into, identical to the semantic closure fixpoint.
///
/// Both modes are topology-agnostic — they read the Topology's shared slot,
/// link and existence tables instead of rebuilding grid tables per sweeper —
/// and emit exactly the edge set of build_dep_graph(): every (p, q) with p
/// route-reachable for d, q in R(p, d) and q existing, plus the same
/// visited-port rows the reachability closure stores. One engine therefore
/// backs build_dep_graph_fast(), build_dep_graph_parallel() and
/// RoutingFunction::prime(). Repeat edge emissions are suppressed by a
/// per-sweeper cache (Digraph::finalize would coalesce them anyway, this
/// keeps the merge buffers near the size of the final edge set).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "routing/routing.hpp"
#include "topology/topology.hpp"

namespace genoc {

/// First-N-distinct-targets edge filter shared by the sweep engines (the
/// port-mode dependency sweep, the escape-lane analysis): a port emits at
/// most a node's worth of distinct out-targets (or one link target), so
/// kSlots slots suppress virtually every repeat emission across
/// destinations; on overflow the edge is simply emitted again and
/// Digraph::finalize coalesces it.
class EdgeDedupCache {
 public:
  explicit EdgeDedupCache(std::size_t port_count)
      : slots_(port_count), counts_(port_count, 0) {}

  /// True exactly when (from, to) was not seen before (caller emits then).
  bool fresh(PortId from, PortId to) {
    auto& slots = slots_[from];
    auto& count = counts_[from];
    for (int i = 0; i < count; ++i) {
      if (slots[static_cast<std::size_t>(i)] == to) {
        return false;
      }
    }
    if (count < kSlots) {
      slots[static_cast<std::size_t>(count)] = to;
      ++count;
    }
    return true;
  }

 private:
  static constexpr int kSlots = 6;

  std::vector<std::array<PortId, kSlots>> slots_;
  std::vector<std::uint8_t> counts_;
};

class RouteSweeper {
 public:
  using Edge = std::pair<PortId, PortId>;

  explicit RouteSweeper(const RoutingFunction& routing);

  /// True when the node-uniform sweep is active.
  bool node_mode() const { return node_mode_; }

  /// Forces the generic port-level BFS even for node-uniform functions;
  /// tests cross-validate both paths against the oracle on every preset.
  void force_port_mode() { node_mode_ = false; }

  /// 64-bit words per closure row (one bit per existing port).
  std::size_t row_words() const { return (port_count_ + 63) / 64; }

  /// Sweeps destination \p dest_index (position in the topology's
  /// destination_ids(); the row-major node index on grids). Dependency
  /// edges are appended to *edges (first emission per sweeper only);
  /// visited-port bits are OR-ed into \p row (row_words() words, caller
  /// zeroed). Either sink may be nullptr.
  void sweep(std::size_t dest_index, std::vector<Edge>* edges,
             std::uint64_t* row);

 private:
  static constexpr std::uint64_t kLinkEmitted = 1;  // emitted_ bit, OUT ports

  void sweep_nodes(std::size_t dest_index, std::vector<Edge>* edges,
                   std::uint64_t* row);
  void sweep_ports(std::size_t dest_index, std::vector<Edge>* edges,
                   std::uint64_t* row);

  /// Edges from in-port \p pid to the (existing) out-ports selected at its
  /// node, deduplicated by the per-port emitted-name mask. \p slots points
  /// at the node's slots_per_node()-entry id table.
  void emit_in_edges(PortId pid, const PortId* slots, std::uint64_t mask,
                     std::vector<Edge>& edges);

  const RoutingFunction* routing_;
  const Topology* topo_;
  std::size_t port_count_ = 0;
  std::size_t node_count_ = 0;
  bool node_mode_ = false;

  std::uint32_t epoch_ = 0;
  std::vector<std::uint32_t> stamp_;  // per port: epoch of the current dest
  std::vector<PortId> frontier_;      // BFS worklist / marked in-ports
  std::vector<Port> hops_;            // grid Port-tuple scratch (port mode)
  std::vector<PortId> hop_ids_;       // next_hop_ids_into sink (port mode)

  std::vector<std::uint64_t> mask_;     // per node: current dest's out mask
  std::vector<std::uint64_t> emitted_;  // per port: emitted out-name bits

  // Port-mode edge filter, allocated on first port-mode sweep.
  std::unique_ptr<EdgeDedupCache> cache_;
};

}  // namespace genoc
