/// \file adaptive.hpp
/// \brief Base class for adaptive (multi-choice) routing functions.
///
/// The paper restricts its deadlock condition to deterministic routing and
/// names adaptive routing as future work (Section IX: "The main tasks will
/// be to define a different dependency graph and formally check the
/// condition"). This module implements that extension: adaptive functions
/// return hop *sets*, their dependency graphs are built by the same generic
/// enumeration, and acyclicity (or the SCC-based Taktak check, Sec. VIII) is
/// applied to the result.
///
/// All adaptive functions here are *minimal*: every choice strictly reduces
/// the Manhattan distance to the destination, so the positional (memoryless)
/// formulation below coincides with the history-aware turn-model definitions
/// on all reachable states — the turn already taken is implied by which
/// coordinates still differ.
#pragma once

#include "routing/routing.hpp"

namespace genoc {

/// Adaptive routing base: OUT ports forward deterministically along the link
/// (next_in), Local OUT ports terminate, and the per-switch choice happens at
/// IN ports via out_choices().
class AdaptiveRouting : public RoutingFunction {
 public:
  explicit AdaptiveRouting(const Mesh2D& mesh) : RoutingFunction(mesh) {}

  bool is_deterministic() const override { return false; }

  void append_next_hops(const Port& current, const Port& dest,
                        std::vector<Port>& out) const final;

 protected:
  /// Appends the set of OUT ports (within current's node) the message may
  /// take, given that it sits in IN port \p current with destination
  /// \p dest. current is never at the destination node (the base class
  /// handles delivery).
  virtual void append_out_choices(const Port& current, const Port& dest,
                                  std::vector<Port>& out) const = 0;

  /// Helper: true iff current's node is the destination node.
  static bool at_destination_node(const Port& current, const Port& dest) {
    return current.x == dest.x && current.y == dest.y;
  }
};

}  // namespace genoc
