#include "routing/route.hpp"

#include <cstdlib>

#include "util/require.hpp"

namespace genoc {

namespace {

/// Upper bound on route length used to detect non-terminating routing
/// functions: no simple port path can exceed the port count.
std::size_t route_length_bound(const Mesh2D& mesh) {
  return mesh.port_count() + 1;
}

}  // namespace

Route compute_route(const RoutingFunction& routing, const Port& from,
                    const Port& to) {
  GENOC_REQUIRE(routing.is_deterministic(),
                "compute_route requires a deterministic routing function; "
                "use enumerate_routes for adaptive ones");
  GENOC_REQUIRE(routing.reachable(from, to),
                "compute_route requires reachable endpoints: " +
                    to_string(from) + " R " + to_string(to));
  const std::size_t bound = route_length_bound(routing.mesh());
  Route route{from};
  Port current = from;
  while (current != to) {
    const std::vector<Port> hops = routing.next_hops(current, to);
    GENOC_REQUIRE(hops.size() == 1,
                  "deterministic routing returned " +
                      std::to_string(hops.size()) + " hops at " +
                      to_string(current));
    current = hops.front();
    route.push_back(current);
    GENOC_REQUIRE(route.size() <= bound,
                  "routing function does not terminate (route exceeds port "
                  "count) — toward " + to_string(to));
  }
  return route;
}

std::vector<Route> enumerate_routes(const RoutingFunction& routing,
                                    const Port& from, const Port& to,
                                    std::size_t max_routes) {
  GENOC_REQUIRE(routing.reachable(from, to),
                "enumerate_routes requires reachable endpoints");
  std::vector<Route> routes;
  if (max_routes == 0) {
    return routes;
  }
  const std::size_t bound = route_length_bound(routing.mesh());
  Route prefix{from};

  // Depth-first over the hop choices; minimal routing functions cannot
  // revisit ports, so no visited set is needed, but the length bound guards
  // against broken instances.
  auto dfs = [&](auto&& self, const Port& current) -> bool {
    if (current == to) {
      routes.push_back(prefix);
      return routes.size() >= max_routes;
    }
    if (prefix.size() >= bound) {
      GENOC_REQUIRE(false, "routing function does not terminate (route "
                           "exceeds port count)");
    }
    for (const Port& hop : routing.next_hops(current, to)) {
      prefix.push_back(hop);
      const bool saturated = self(self, hop);
      prefix.pop_back();
      if (saturated) {
        return true;
      }
    }
    return false;
  };
  dfs(dfs, from);
  return routes;
}

bool is_valid_route(const RoutingFunction& routing, const Route& route,
                    const Port& from, const Port& to) {
  if (route.empty() || route.front() != from || route.back() != to) {
    return false;
  }
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    const std::vector<Port> hops = routing.next_hops(route[i], to);
    bool found = false;
    for (const Port& hop : hops) {
      if (hop == route[i + 1]) {
        found = true;
        break;
      }
    }
    if (!found) {
      return false;
    }
  }
  return true;
}

std::size_t manhattan_distance(const Port& a, const Port& b) {
  return static_cast<std::size_t>(std::abs(a.x - b.x)) +
         static_cast<std::size_t>(std::abs(a.y - b.y));
}

std::size_t minimal_route_length(const Port& src, const Port& dst) {
  return 2 + 2 * manhattan_distance(src, dst);
}

}  // namespace genoc
