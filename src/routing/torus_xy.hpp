/// \file torus_xy.hpp
/// \brief Dimension-order routing on a torus: XY with shortest-way wrap.
///
/// On wrapped dimensions the packet takes the shorter ring direction (ties
/// break East/South, keeping the function deterministic). This is the
/// textbook example of a TOPOLOGY-induced deadlock: even though the routing
/// is dimension-ordered, the wrap links close each ring's dependency cycle,
/// so (C-3) fails and Theorem 1's sufficiency direction yields concrete
/// wormhole deadlocks. The classic fixes are dateline virtual channels or —
/// in this library's terms — an escape lane routed by plain (non-wrapping)
/// mesh XY, which analyze_escape() proves sufficient.
#pragma once

#include "routing/routing.hpp"

namespace genoc {

class TorusXYRouting final : public RoutingFunction {
 public:
  /// Requires the mesh to wrap in at least one dimension (otherwise this
  /// is exactly XYRouting — use that instead).
  explicit TorusXYRouting(const Mesh2D& mesh);

  std::string name() const override { return "Torus-XY"; }
  bool is_deterministic() const override { return true; }

  void append_next_hops(const Port& current, const Port& dest,
                        std::vector<Port>& out) const override;

  /// Shortest-way dimension order decides from the node coordinates alone.
  bool node_uniform() const override { return true; }
  std::uint8_t node_out_mask(std::int32_t x, std::int32_t y,
                             const Port& dest) const override;

 private:
  /// Signed shortest displacement from \p from to \p to along a dimension
  /// of size \p extent (wrapping): result in (-extent/2, extent/2], ties
  /// toward the positive direction.
  static std::int32_t shortest_delta(std::int32_t from, std::int32_t to,
                                     std::int32_t extent, bool wrap);
};

}  // namespace genoc
