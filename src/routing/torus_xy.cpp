#include "routing/torus_xy.hpp"

#include "util/require.hpp"

namespace genoc {

TorusXYRouting::TorusXYRouting(const Mesh2D& mesh) : RoutingFunction(mesh) {
  GENOC_REQUIRE(mesh.wraps_x() || mesh.wraps_y(),
                "TorusXYRouting needs a wrapped dimension; use XYRouting on "
                "plain meshes");
}

std::int32_t TorusXYRouting::shortest_delta(std::int32_t from,
                                            std::int32_t to,
                                            std::int32_t extent, bool wrap) {
  if (!wrap) {
    return to - from;
  }
  std::int32_t forward = (to - from) % extent;
  if (forward < 0) {
    forward += extent;
  }
  // forward in [0, extent); take the shorter way, ties forward (positive).
  return forward <= extent / 2 ? forward : forward - extent;
}

std::vector<Port> TorusXYRouting::next_hops(const Port& current,
                                            const Port& dest) const {
  if (current.dir == Direction::kOut) {
    if (current.name == PortName::kLocal) {
      return {};
    }
    return {mesh().next_in(current)};
  }
  const std::int32_t dx = shortest_delta(current.x, dest.x, mesh().width(),
                                         mesh().wraps_x());
  const std::int32_t dy = shortest_delta(current.y, dest.y, mesh().height(),
                                         mesh().wraps_y());
  if (dx < 0) {
    return {trans(current, PortName::kWest, Direction::kOut)};
  }
  if (dx > 0) {
    return {trans(current, PortName::kEast, Direction::kOut)};
  }
  if (dy < 0) {
    return {trans(current, PortName::kNorth, Direction::kOut)};
  }
  if (dy > 0) {
    return {trans(current, PortName::kSouth, Direction::kOut)};
  }
  return {trans(current, PortName::kLocal, Direction::kOut)};
}

}  // namespace genoc
