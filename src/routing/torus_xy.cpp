#include "routing/torus_xy.hpp"

#include "util/require.hpp"

namespace genoc {

TorusXYRouting::TorusXYRouting(const Mesh2D& mesh) : RoutingFunction(mesh) {
  GENOC_REQUIRE(mesh.wraps_x() || mesh.wraps_y(),
                "TorusXYRouting needs a wrapped dimension; use XYRouting on "
                "plain meshes");
}

std::int32_t TorusXYRouting::shortest_delta(std::int32_t from,
                                            std::int32_t to,
                                            std::int32_t extent, bool wrap) {
  if (!wrap) {
    return to - from;
  }
  std::int32_t forward = (to - from) % extent;
  if (forward < 0) {
    forward += extent;
  }
  // forward in [0, extent); take the shorter way, ties forward (positive).
  return forward <= extent / 2 ? forward : forward - extent;
}

void TorusXYRouting::append_next_hops(const Port& current, const Port& dest,
                                      std::vector<Port>& out) const {
  if (current.dir == Direction::kOut) {
    if (current.name != PortName::kLocal) {
      out.push_back(mesh().next_in(current));
    }
    return;
  }
  const PortName choice = [&] {
    const std::int32_t dx = shortest_delta(current.x, dest.x, mesh().width(),
                                           mesh().wraps_x());
    const std::int32_t dy = shortest_delta(current.y, dest.y, mesh().height(),
                                           mesh().wraps_y());
    if (dx < 0) {
      return PortName::kWest;
    }
    if (dx > 0) {
      return PortName::kEast;
    }
    if (dy < 0) {
      return PortName::kNorth;
    }
    if (dy > 0) {
      return PortName::kSouth;
    }
    return PortName::kLocal;
  }();
  out.push_back(trans(current, choice, Direction::kOut));
}

std::uint8_t TorusXYRouting::node_out_mask(std::int32_t x, std::int32_t y,
                                           const Port& dest) const {
  const std::int32_t dx =
      shortest_delta(x, dest.x, mesh().width(), mesh().wraps_x());
  const std::int32_t dy =
      shortest_delta(y, dest.y, mesh().height(), mesh().wraps_y());
  if (dx < 0) {
    return port_name_bit(PortName::kWest);
  }
  if (dx > 0) {
    return port_name_bit(PortName::kEast);
  }
  if (dy < 0) {
    return port_name_bit(PortName::kNorth);
  }
  if (dy > 0) {
    return port_name_bit(PortName::kSouth);
  }
  return port_name_bit(PortName::kLocal);
}

}  // namespace genoc
