#include "routing/yx.hpp"

namespace genoc {

std::vector<Port> YXRouting::next_hops(const Port& current,
                                       const Port& dest) const {
  if (current.dir == Direction::kOut) {
    if (current.name == PortName::kLocal) {
      return {};
    }
    return {mesh().next_in(current)};
  }
  if (dest.y < current.y) {
    return {trans(current, PortName::kNorth, Direction::kOut)};
  }
  if (dest.y > current.y) {
    return {trans(current, PortName::kSouth, Direction::kOut)};
  }
  if (dest.x < current.x) {
    return {trans(current, PortName::kWest, Direction::kOut)};
  }
  if (dest.x > current.x) {
    return {trans(current, PortName::kEast, Direction::kOut)};
  }
  return {trans(current, PortName::kLocal, Direction::kOut)};
}

bool YXRouting::reachable(const Port& s, const Port& d) const {
  if (!valid_endpoints(s, d)) {
    return false;
  }
  switch (s.name) {
    case PortName::kLocal:
      return s.dir == Direction::kIn ? true : s == d;
    case PortName::kNorth:
      // N,IN holds southbound traffic (y increases toward destination).
      return s.dir == Direction::kIn ? d.y >= s.y : d.y <= s.y - 1;
    case PortName::kSouth:
      return s.dir == Direction::kIn ? d.y <= s.y : d.y >= s.y + 1;
    case PortName::kWest:
      return d.y == s.y &&
             (s.dir == Direction::kIn ? d.x >= s.x : d.x <= s.x - 1);
    case PortName::kEast:
      return d.y == s.y &&
             (s.dir == Direction::kIn ? d.x <= s.x : d.x >= s.x + 1);
  }
  return false;
}

}  // namespace genoc
