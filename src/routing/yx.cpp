#include "routing/yx.hpp"

namespace genoc {

void YXRouting::append_next_hops(const Port& current, const Port& dest,
                                 std::vector<Port>& out) const {
  if (current.dir == Direction::kOut) {
    if (current.name != PortName::kLocal) {
      out.push_back(mesh().next_in(current));
    }
    return;
  }
  if (dest.y < current.y) {
    out.push_back(trans(current, PortName::kNorth, Direction::kOut));
  } else if (dest.y > current.y) {
    out.push_back(trans(current, PortName::kSouth, Direction::kOut));
  } else if (dest.x < current.x) {
    out.push_back(trans(current, PortName::kWest, Direction::kOut));
  } else if (dest.x > current.x) {
    out.push_back(trans(current, PortName::kEast, Direction::kOut));
  } else {
    out.push_back(trans(current, PortName::kLocal, Direction::kOut));
  }
}

std::uint8_t YXRouting::node_out_mask(std::int32_t x, std::int32_t y,
                                      const Port& dest) const {
  if (dest.y < y) {
    return port_name_bit(PortName::kNorth);
  }
  if (dest.y > y) {
    return port_name_bit(PortName::kSouth);
  }
  if (dest.x < x) {
    return port_name_bit(PortName::kWest);
  }
  if (dest.x > x) {
    return port_name_bit(PortName::kEast);
  }
  return port_name_bit(PortName::kLocal);
}

bool YXRouting::reachable(const Port& s, const Port& d) const {
  if (!valid_endpoints(s, d)) {
    return false;
  }
  switch (s.name) {
    case PortName::kLocal:
      return s.dir == Direction::kIn ? true : s == d;
    case PortName::kNorth:
      // N,IN holds southbound traffic (y increases toward destination).
      return s.dir == Direction::kIn ? d.y >= s.y : d.y <= s.y - 1;
    case PortName::kSouth:
      return s.dir == Direction::kIn ? d.y <= s.y : d.y >= s.y + 1;
    case PortName::kWest:
      return d.y == s.y &&
             (s.dir == Direction::kIn ? d.x >= s.x : d.x <= s.x - 1);
    case PortName::kEast:
      return d.y == s.y &&
             (s.dir == Direction::kIn ? d.x <= s.x : d.x >= s.x + 1);
  }
  return false;
}

}  // namespace genoc
