#include "routing/yx.hpp"

namespace genoc {

void YXRouting::append_next_hops(const Port& current, const Port& dest,
                                 std::vector<Port>& out) const {
  if (current.dir == Direction::kOut) {
    if (current.name != PortName::kLocal) {
      out.push_back(mesh().next_in(current));
    }
    return;
  }
  if (dest.y < current.y) {
    out.push_back(trans(current, PortName::kNorth, Direction::kOut));
  } else if (dest.y > current.y) {
    out.push_back(trans(current, PortName::kSouth, Direction::kOut));
  } else if (dest.x < current.x) {
    out.push_back(trans(current, PortName::kWest, Direction::kOut));
  } else if (dest.x > current.x) {
    out.push_back(trans(current, PortName::kEast, Direction::kOut));
  } else {
    out.push_back(trans(current, PortName::kLocal, Direction::kOut));
  }
}

std::uint8_t YXRouting::node_out_mask(std::int32_t x, std::int32_t y,
                                      const Port& dest) const {
  if (dest.y < y) {
    return port_name_bit(PortName::kNorth);
  }
  if (dest.y > y) {
    return port_name_bit(PortName::kSouth);
  }
  if (dest.x < x) {
    return port_name_bit(PortName::kWest);
  }
  if (dest.x > x) {
    return port_name_bit(PortName::kEast);
  }
  return port_name_bit(PortName::kLocal);
}

std::uint64_t YXRouting::in_port_union(std::size_t node,
                                       std::size_t in_name) const {
  // Mirror of XYRouting::in_port_union: vertical phase first, so the
  // horizontal in-ports have a locked row and only continue horizontally
  // or deliver. Position-exact like the XY table.
  const Mesh2D& m = mesh();
  const auto width = static_cast<std::size_t>(m.width());
  const auto height = static_cast<std::size_t>(m.height());
  const std::size_t x = node % width;
  const std::size_t y = node / width;
  const std::uint64_t west = x > 0 ? port_name_bit(PortName::kWest) : 0;
  const std::uint64_t east = x + 1 < width ? port_name_bit(PortName::kEast) : 0;
  const std::uint64_t north = y > 0 ? port_name_bit(PortName::kNorth) : 0;
  const std::uint64_t south =
      y + 1 < height ? port_name_bit(PortName::kSouth) : 0;
  const std::uint64_t local = port_name_bit(PortName::kLocal);
  switch (static_cast<PortName>(in_name)) {
    case PortName::kLocal:  // any destination
      return west | east | north | south | local;
    case PortName::kNorth:  // southbound: y(d) >= y
      return south | west | east | local;
    case PortName::kSouth:  // northbound: y(d) <= y
      return north | west | east | local;
    case PortName::kWest:  // eastbound, row locked: only E or deliver
      return east | local;
    case PortName::kEast:  // westbound, row locked
      return west | local;
  }
  return 0;
}

bool YXRouting::reachable(const Port& s, const Port& d) const {
  // Mirror of XYRouting::reachable: the closed form is a full-grid claim,
  // so faulted meshes fall back to the semantic closure.
  if (mesh().has_faults()) {
    return closure_reachable(s, d);
  }
  if (!valid_endpoints(s, d)) {
    return false;
  }
  switch (s.name) {
    case PortName::kLocal:
      return s.dir == Direction::kIn ? true : s == d;
    case PortName::kNorth:
      // N,IN holds southbound traffic (y increases toward destination).
      return s.dir == Direction::kIn ? d.y >= s.y : d.y <= s.y - 1;
    case PortName::kSouth:
      return s.dir == Direction::kIn ? d.y <= s.y : d.y >= s.y + 1;
    case PortName::kWest:
      return d.y == s.y &&
             (s.dir == Direction::kIn ? d.x >= s.x : d.x <= s.x - 1);
    case PortName::kEast:
      return d.y == s.y &&
             (s.dir == Direction::kIn ? d.x <= s.x : d.x >= s.x + 1);
  }
  return false;
}

}  // namespace genoc
