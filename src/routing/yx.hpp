/// \file yx.hpp
/// \brief YX routing: the mirror of the paper's Rxy (vertical phase first,
///        then horizontal). Also deterministic, minimal, and deadlock-free;
///        used by the routing-comparison ablation and as a second instance
///        exercising the generic proof obligations.
#pragma once

#include "routing/routing.hpp"

namespace genoc {

class YXRouting final : public RoutingFunction {
 public:
  explicit YXRouting(const Mesh2D& mesh) : RoutingFunction(mesh) {}

  std::string name() const override { return "YX"; }
  bool is_deterministic() const override { return true; }

  void append_next_hops(const Port& current, const Port& dest,
                        std::vector<Port>& out) const override;

  /// Vertical-first mirror of XY: same node-level decision structure.
  bool node_uniform() const override { return true; }
  std::uint8_t node_out_mask(std::int32_t x, std::int32_t y,
                             const Port& dest) const override;

  /// Closed-form s R d, the exact mirror of XYRouting::reachable (vertical
  /// ports are unconstrained in x-history, horizontal in-ports pin y).
  bool reachable(const Port& s, const Port& d) const override;

  /// reachable() is closed-form and node-granular queries are storage-free:
  /// nothing to pre-build for parallel use.
  bool needs_prime() const override { return false; }

  /// Mirror of XY's next_outs table (vertical phase first): the exact
  /// over-all-dests union of out-names per in-name. Pure meshes only, for
  /// the same wrap-port reason as XYRouting.
  bool has_in_port_unions() const override {
    return topology().family() == "mesh" && !mesh().has_faults();
  }
  std::uint64_t in_port_union(std::size_t node,
                              std::size_t in_name) const override;
};

}  // namespace genoc
