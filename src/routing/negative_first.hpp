/// \file negative_first.hpp
/// \brief Negative-First turn-model routing (Glass & Ni), minimal variant.
///
/// All hops in the negative directions (West = -x and, in the paper's
/// convention, North = -y) are taken first, adaptively interleaved; then the
/// non-negative directions (East, South) are taken, again adaptively. The
/// prohibited turns are the two from a non-negative into a negative
/// direction.
#pragma once

#include "routing/adaptive.hpp"

namespace genoc {

class NegativeFirstRouting final : public AdaptiveRouting {
 public:
  explicit NegativeFirstRouting(const Mesh2D& mesh) : AdaptiveRouting(mesh) {}

  std::string name() const override { return "Negative-First"; }

  /// Choice depends only on the node coordinates.
  bool node_uniform() const override { return true; }
  std::uint8_t node_out_mask(std::int32_t x, std::int32_t y,
                             const Port& dest) const override;

 protected:
  void append_out_choices(const Port& current, const Port& dest,
                          std::vector<Port>& out) const override;
};

}  // namespace genoc
